// Custom UDFs: the paper's flexibility claim in action.
//
// FeatGraph's two-granularity interface separates WHAT each edge computes
// (the UDF) from HOW the graph is traversed (the template + schedule). This
// example builds two kernels no vendor library ships:
//   1. an MLP-aggregation kernel (paper Fig. 3b) through the builtin
//      compiled path, with a custom FDS tiling both UDF dimensions;
//   2. a fully custom "gated distance" message via the generic UDF escape
//      hatch, demonstrating that arbitrary per-edge tensor computations
//      compose with every reducer and schedule.
//
//   $ ./custom_udf
#include <cmath>
#include <cstdio>

#include "featgraph.hpp"
#include "support/timer.hpp"

namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::tensor::Tensor;

int main() {
  fg::graph::Graph g(fg::graph::gen_lognormal(20000, 30.0, 1.0, /*seed=*/1));
  const std::int64_t d1 = 8, d2 = 128;
  const Tensor x = Tensor::randn({g.num_vertices(), d1}, 2);
  const Tensor w = Tensor::randn({d1, d2}, 3);

  // --- 1. MLP aggregation: ReLU((x_u + x_v) W), max-reduced ----------------
  // FDS: tile the d2 axis (like Fig. 8's split of out.axis[0]); the template
  // contributes graph partitioning.
  CpuSpmmSchedule fds;
  fds.feat_tile = 32;
  fds.num_partitions = 8;
  fds.num_threads = 2;
  fg::support::Timer t1;
  const Tensor mlp = fg::core::spmm(g.in_csr(), "mlp", "max", fds,
                                    {&x, nullptr, &w});
  std::printf("MLP aggregation: %lld x %lld in %.1f ms (fused, never "
              "materializes %lld x %lld messages)\n",
              static_cast<long long>(mlp.rows()),
              static_cast<long long>(mlp.row_size()), t1.millis(),
              static_cast<long long>(g.num_edges()),
              static_cast<long long>(d2));

  // --- 2. A message function no builtin covers ----------------------------
  // msg_j = sigmoid(x_u[0]) * |x_u[j] - x_v[j]|   (a gated feature distance)
  fg::core::GenericMsgFn gated = [&](fg::graph::vid_t u, fg::graph::eid_t,
                                     fg::graph::vid_t v, float* out) {
    const float gate = 1.0f / (1.0f + std::exp(-x.at(u, 0)));
    for (std::int64_t j = 0; j < d1; ++j)
      out[j] = gate * std::fabs(x.at(u, j) - x.at(v, j));
  };
  fg::support::Timer t2;
  const Tensor gated_out = fg::core::spmm_generic(g.in_csr(), gated, "mean",
                                                  d1, fds);
  std::printf("custom gated-distance UDF with mean reducer: %.1f ms, "
              "out[0][0..2] = %.3f %.3f %.3f\n",
              t2.millis(), gated_out.at(0, 0), gated_out.at(0, 1),
              gated_out.at(0, 2));

  // --- 3. Custom edge function via generic SDDMM ---------------------------
  // att_e = cosine similarity between endpoint features.
  fg::core::GenericEdgeFn cosine = [&](fg::graph::vid_t u, fg::graph::eid_t,
                                       fg::graph::vid_t v, float* out) {
    float dot = 0, nu = 0, nv = 0;
    for (std::int64_t j = 0; j < d1; ++j) {
      dot += x.at(u, j) * x.at(v, j);
      nu += x.at(u, j) * x.at(u, j);
      nv += x.at(v, j) * x.at(v, j);
    }
    out[0] = dot / (std::sqrt(nu) * std::sqrt(nv) + 1e-6f);
  };
  fg::core::CpuSddmmSchedule sfds;
  sfds.num_threads = 2;
  sfds.hilbert_order = true;
  const Tensor cos = fg::core::sddmm_generic(g.coo(), cosine, 1, sfds);
  std::printf("custom cosine edge UDF on %lld edges, cos[0] = %.3f\n",
              static_cast<long long>(cos.numel()), cos.at(0));
  return 0;
}
