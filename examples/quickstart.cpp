// Quickstart: express GCN aggregation with the FeatGraph API and tune its
// schedule — the C++ rendering of the paper's Fig. 3a.
//
//   $ ./quickstart
#include <cstdio>

#include "featgraph.hpp"

namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::tensor::Tensor;

int main() {
  // 1. A graph: 10K vertices with community structure, ~40 edges each.
  fg::graph::Graph g(fg::graph::gen_community(10000, 40.0, 10, 0.7, /*seed=*/1));
  std::printf("graph: %d vertices, %lld edges\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()));

  // 2. Vertex features: 10K x 128.
  const Tensor x = Tensor::randn({g.num_vertices(), 128}, /*seed=*/2);

  // 3. GCN aggregation = SpMM template + copy_u message + sum reducer.
  //    The schedule is the two-level optimization handle: graph partitions
  //    (template half) and feature tiling (FDS half).
  CpuSpmmSchedule fds;
  fds.num_partitions = 4;
  fds.feat_tile = 64;
  fds.num_threads = 2;
  const Tensor h = fg::core::spmm(g.in_csr(), "copy_u", "sum", fds,
                                  {&x, nullptr, nullptr});
  std::printf("aggregated features: %lld x %lld, h[0][0..3] = %.3f %.3f %.3f %.3f\n",
              static_cast<long long>(h.rows()),
              static_cast<long long>(h.row_size()), h.at(0, 0), h.at(0, 1),
              h.at(0, 2), h.at(0, 3));

  // 4. Let the grid-search tuner pick the best schedule for this topology
  //    and feature length (paper Sec. IV-A).
  const auto tuned = fg::core::tuned_spmm_schedule(g.in_csr(), "copy_u", "sum",
                                                   {&x, nullptr, nullptr},
                                                   /*num_threads=*/2);
  std::printf("tuned schedule: %d graph partitions, feature tile %lld\n",
              tuned.num_partitions, static_cast<long long>(tuned.feat_tile));

  // 5. Edge-wise computation: dot-product attention (Fig. 4a) via SDDMM.
  fg::core::CpuSddmmSchedule sfds;
  sfds.hilbert_order = true;
  sfds.num_threads = 2;
  const Tensor att = fg::core::sddmm(g.coo(), "dot", sfds, {&x, nullptr});
  std::printf("attention scores on %lld edges, att[0] = %.3f\n",
              static_cast<long long>(att.numel()), att.at(0));
  return 0;
}
