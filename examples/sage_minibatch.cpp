// End-to-end minibatch serving with the sampling subsystem: train a
// GraphSage model full-batch, then serve inference through the pipelined
// neighbor-sampling loop (src/sample) — sampled fanouts for throughput, and
// a full-fanout run demonstrating the bit-exactness contract against
// full-graph inference.
//
//   $ ./example_sage_minibatch
#include <cmath>
#include <cstdio>

#include "minidgl/train.hpp"
#include "support/timer.hpp"

namespace fg = featgraph;
using fg::minidgl::ExecContext;
using fg::minidgl::MinibatchInferOptions;
using fg::minidgl::Model;
using fg::minidgl::Trainer;

int main() {
  const auto data = fg::minidgl::make_sbm_classification(
      /*n=*/4000, /*avg_degree=*/20.0, /*num_classes=*/6, /*p_in=*/0.85,
      /*feat_dim=*/32, /*signal=*/1.5f, /*seed=*/11);
  std::printf("task: %d vertices, %lld edges, %zu test seeds\n",
              data.graph.num_vertices(),
              static_cast<long long>(data.graph.num_edges()),
              data.test_rows.size());

  ExecContext ctx;
  ctx.num_threads = 2;
  Trainer trainer(data, Model("sage-mean", 32, 64, 6, /*seed=*/1), ctx,
                  /*lr=*/0.05f);
  for (int epoch = 0; epoch < 15; ++epoch) trainer.train_epoch();
  const double full_acc = trainer.test_accuracy();
  std::printf("trained 2-layer GraphSage; full-graph test accuracy %.3f\n\n",
              full_acc);

  // Serving mode: sampled fanouts, batches flowing through the pipelined
  // loop (sample+gather of batch i+1 overlaps block compute of batch i).
  MinibatchInferOptions opts;
  opts.sampler.fanouts = {10, 10};
  opts.sampler.seed = 7;
  opts.batch_size = 256;
  const auto sampled = trainer.infer_minibatch(opts);
  std::printf(
      "minibatch inference, fanout 10x10, batch 256:\n"
      "  accuracy %.3f (full-graph %.3f)  %.0f ms over %lld batches\n"
      "  pipeline: overlapped=%s  produce %.0f ms / consume %.0f ms  "
      "queue depth <= %d\n"
      "  schedule cache: %lld hits / %lld misses\n\n",
      sampled.accuracy, full_acc, sampled.seconds * 1e3,
      static_cast<long long>(sampled.pipeline.batches),
      sampled.pipeline.overlapped ? "yes" : "no",
      sampled.pipeline.produce_seconds * 1e3,
      sampled.pipeline.consume_seconds * 1e3,
      sampled.pipeline.max_queue_depth,
      static_cast<long long>(sampled.schedule_cache_hits),
      static_cast<long long>(sampled.schedule_cache_misses));

  // Full fanout: minibatch inference must reproduce full-graph inference
  // exactly — same kernels, same edge order, same bits.
  MinibatchInferOptions full;
  full.sampler.fanouts = {-1, -1};
  const auto exact = trainer.infer_minibatch(full);
  std::printf("full-fanout minibatch accuracy %.3f — %s full-graph\n",
              exact.accuracy,
              std::fabs(exact.accuracy - full_acc) < 1e-12 ? "matches"
                                                           : "DIFFERS FROM");
  return exact.accuracy == full_acc ? 0 : 1;
}
