// Traditional graph workloads on the same substrate — the paper's framing
// (Sec. II-B, VI): BFS and PageRank are what existing systems were built
// for (scalar per vertex), and they map onto frontier engines (Ligra) or
// sparse linear algebra (GraphBLAS-style SpMV). GNN workloads differ by the
// feature dimension; FeatGraph's SpMM degenerates to exactly these classics
// when the feature length is 1.
//
//   $ ./traditional_workloads
#include <cstdio>
#include <numeric>

#include "baselines/ligra.hpp"
#include "baselines/vendor_spmm.hpp"
#include "featgraph.hpp"
#include "graph/stats.hpp"
#include "support/timer.hpp"

namespace fg = featgraph;

int main() {
  fg::graph::Graph g(fg::graph::gen_community(50000, 16.0, 25, 0.6, /*seed=*/3));
  const auto stats = fg::graph::source_degree_stats(g.in_csr());
  std::printf("graph: %d vertices, %lld edges; %s\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()),
              fg::graph::describe(stats).c_str());

  // 1. BFS on the Ligra-style frontier engine (push/pull switching).
  fg::support::Timer t1;
  const auto levels = fg::baselines::ligra::bfs(g, /*root=*/0, /*threads=*/2);
  std::int64_t reached = 0;
  std::int32_t max_level = 0;
  for (auto l : levels) {
    if (l >= 0) {
      ++reached;
      max_level = std::max(max_level, l);
    }
  }
  std::printf("BFS: reached %lld vertices, eccentricity %d, %.1f ms\n",
              static_cast<long long>(reached), max_level, t1.millis());

  // 2. PageRank, vertex-centric (Ligra-style pull iterations).
  fg::support::Timer t2;
  const auto pr = fg::baselines::ligra::pagerank(g, /*iters=*/20, 0.85, 2);
  const auto top = std::max_element(pr.begin(), pr.end()) - pr.begin();
  std::printf("PageRank (vertex-centric): top vertex %lld (%.2e), %.1f ms\n",
              static_cast<long long>(top), pr[static_cast<std::size_t>(top)],
              t2.millis());

  // 3. PageRank as sparse linear algebra (GraphBLAS formulation): each
  //    iteration is one SpMV — r' = (1-d)/n + d * A^T (r / outdeg).
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<float> rank(n, 1.0f / static_cast<float>(n));
  fg::support::Timer t3;
  for (int it = 0; it < 20; ++it) {
    std::vector<float> contrib(n, 0.0f);
    for (fg::graph::vid_t u = 0; u < g.num_vertices(); ++u) {
      const auto deg = g.out_csr().degree(u);
      if (deg > 0)
        contrib[static_cast<std::size_t>(u)] =
            rank[static_cast<std::size_t>(u)] / static_cast<float>(deg);
    }
    const auto agg = fg::baselines::vendor::csr_spmv(g.in_csr(), contrib, 2);
    for (std::size_t v = 0; v < n; ++v)
      rank[v] = 0.15f / static_cast<float>(n) + 0.85f * agg[v];
  }
  std::printf("PageRank (SpMV formulation):   top vertex %lld (%.2e), %.1f ms\n",
              static_cast<long long>(
                  std::max_element(rank.begin(), rank.end()) - rank.begin()),
              *std::max_element(rank.begin(), rank.end()), t3.millis());

  // 4. The same computation through FeatGraph's generalized SpMM with
  //    feature length 1 — the degenerate case where GNN kernels meet
  //    traditional workloads (u_mul_e aggregates rank/deg over in-edges).
  fg::tensor::Tensor r({g.num_vertices(), 1});
  for (std::size_t v = 0; v < n; ++v) r.at(static_cast<std::int64_t>(v)) = 1.0f / n;
  fg::tensor::Tensor inv_deg({g.num_edges()});
  for (fg::graph::eid_t e = 0; e < g.num_edges(); ++e) {
    const auto deg = g.out_csr().degree(g.coo().src[static_cast<std::size_t>(e)]);
    inv_deg.at(e) = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
  }
  fg::support::Timer t4;
  for (int it = 0; it < 20; ++it) {
    auto agg = fg::core::spmm(g.in_csr(), "u_mul_e", "sum",
                              {.num_partitions = 1, .feat_tile = 0,
                               .num_threads = 2},
                              {&r, &inv_deg, nullptr});
    for (std::size_t v = 0; v < n; ++v)
      r.at(static_cast<std::int64_t>(v)) =
          0.15f / static_cast<float>(n) +
          0.85f * agg.at(static_cast<std::int64_t>(v));
  }
  std::printf("PageRank (FeatGraph d=1):      top vertex %lld (%.2e), %.1f ms\n",
              static_cast<long long>(
                  std::max_element(r.data(), r.data() + n) - r.data()),
              *std::max_element(r.data(), r.data() + n), t4.millis());
  return 0;
}
