// Graph-attention inference pipeline: the paper's edge-wise computation
// story end to end (Sec. II-A, Fig. 4), composed AND fused.
//
// A single GAT-style attention layer without the training framework:
//   1. project features              (dense matmul)
//   2. attention logits per edge     (generalized SDDMM: dot / multi-head)
//   3. normalize per destination     (fused edge softmax)
//   4. attention-weighted aggregate  (generalized SpMM: u_mul_e + sum)
// ...and then steps 2-4 again as ONE launch of the fused attention kernel
// (core/attention.hpp): per destination row the logits, the numerically-
// stable softmax, and the alpha-weighted aggregation all happen while the
// row is hot — no logits tensor, no separate softmax sweep, no third
// traversal. The same SDDMM -> softmax -> SpMM chain is what GAT training
// differentiates through; minidgl's kFused backend runs this fused kernel.
//
//   $ ./gat_attention
#include <cmath>
#include <cstdio>

#include "featgraph.hpp"
#include "support/timer.hpp"

namespace fg = featgraph;
using fg::tensor::Tensor;

int main() {
  fg::graph::Graph g(fg::graph::gen_community(15000, 25.0, 15, 0.8, /*seed=*/4));
  const std::int64_t d_in = 64, d_out = 64;
  const Tensor x = Tensor::randn({g.num_vertices(), d_in}, 5);
  const Tensor w = Tensor::randn({d_in, d_out}, 6, 0.1f);

  // 1. Dense projection z = x W.
  const Tensor z = fg::tensor::matmul(x, w, /*threads=*/2);

  // --- composed pipeline (three launches, two |E| intermediates) -----------
  fg::support::Timer composed_timer;

  // 2. Edge logits via SDDMM (dot-product attention, Fig. 4a).
  fg::core::CpuSddmmSchedule sddmm_fds;
  sddmm_fds.num_threads = 2;
  sddmm_fds.hilbert_order = true;   // locality over both endpoints
  sddmm_fds.reduce_tile = 32;       // FDS: tile the reduction axis
  const Tensor logits = fg::core::sddmm(g.coo(), "dot", sddmm_fds, {&z, nullptr});

  // 3. Per-destination softmax over in-edges (fused threaded segment pass).
  const Tensor alpha = fg::core::edge_softmax(g.in_csr(), logits, 2);

  // 4. Attention-weighted aggregation via generalized SpMM (u_mul_e + sum) —
  //    the |E| x d weighted messages are never materialized.
  fg::core::CpuSpmmSchedule spmm_fds;
  spmm_fds.num_threads = 2;
  spmm_fds.num_partitions = 8;
  spmm_fds.feat_tile = 32;
  const Tensor h = fg::core::spmm(g.in_csr(), "u_mul_e", "sum", spmm_fds,
                                  {&z, &alpha, nullptr});
  const double composed_ms = composed_timer.millis();

  // --- fused pipeline (steps 2-4 in one per-row pass) ----------------------
  fg::support::Timer fused_timer;
  fg::core::AttentionOperands attn_ops;
  attn_ops.src_feat = &z;  // values AND dot-product logits (self-attention)
  fg::core::CpuSpmmSchedule attn_fds;
  attn_fds.num_threads = 2;
  const fg::core::AttentionResult fused =
      fg::core::attention(g.in_csr(), "copy_u", attn_fds, attn_ops);
  const double fused_ms = fused_timer.millis();

  float max_diff = 0.0f;
  for (std::int64_t i = 0; i < h.numel(); ++i)
    max_diff = std::max(max_diff, std::fabs(h.at(i) - fused.out.at(i)));

  std::printf("GAT attention layer over %d vertices / %lld edges\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()));
  std::printf("  composed (SDDMM -> softmax -> SpMM): %.1f ms\n", composed_ms);
  std::printf("  fused attention kernel:              %.1f ms (%.2fx)\n",
              fused_ms, composed_ms / fused_ms);
  std::printf("  max |composed - fused| = %.2e\n", max_diff);
  std::printf("h[0][0..3] = %.4f %.4f %.4f %.4f\n", h.at(0, 0), h.at(0, 1),
              h.at(0, 2), h.at(0, 3));

  // Multi-head variant of step 2 (Fig. 4b): 4 heads over the same features.
  const Tensor z4 = z.reshape({g.num_vertices(), 4, d_out / 4});
  const Tensor mh = fg::core::sddmm(g.coo(), "multihead_dot", sddmm_fds,
                                    {&z4, nullptr});
  std::printf("multi-head logits: %lld edges x %lld heads, mh[0] = %.4f\n",
              static_cast<long long>(mh.rows()),
              static_cast<long long>(mh.row_size()), mh.at(0, 0));
  return 0;
}
