// Graph-attention inference pipeline: the paper's edge-wise computation
// story end to end (Sec. II-A, Fig. 4).
//
// A single GAT-style attention layer without the training framework:
//   1. project features              (dense matmul)
//   2. attention logits per edge     (generalized SDDMM: dot / multi-head)
//   3. normalize per destination     (edge softmax)
//   4. attention-weighted aggregate  (generalized SpMM: u_mul_e + sum)
// The same SDDMM -> softmax -> SpMM chain is what GAT training differentiates
// through — the gradient of each sparse op is the other sparse pattern.
//
//   $ ./gat_attention
#include <cstdio>

#include "featgraph.hpp"
#include "support/timer.hpp"

namespace fg = featgraph;
using fg::tensor::Tensor;

int main() {
  fg::graph::Graph g(fg::graph::gen_community(15000, 25.0, 15, 0.8, /*seed=*/4));
  const std::int64_t d_in = 64, d_out = 64;
  const Tensor x = Tensor::randn({g.num_vertices(), d_in}, 5);
  const Tensor w = Tensor::randn({d_in, d_out}, 6, 0.1f);

  fg::support::Timer timer;

  // 1. Dense projection z = x W.
  const Tensor z = fg::tensor::matmul(x, w, /*threads=*/2);

  // 2. Edge logits via SDDMM (dot-product attention, Fig. 4a).
  fg::core::CpuSddmmSchedule sddmm_fds;
  sddmm_fds.num_threads = 2;
  sddmm_fds.hilbert_order = true;   // locality over both endpoints
  sddmm_fds.reduce_tile = 32;       // FDS: tile the reduction axis
  const Tensor logits = fg::core::sddmm(g.coo(), "dot", sddmm_fds, {&z, nullptr});

  // 3. Per-destination softmax over in-edges (deterministic segment pass).
  Tensor alpha({g.num_edges()});
  const auto& in = g.in_csr();
  for (fg::graph::vid_t v = 0; v < in.num_rows; ++v) {
    const std::int64_t lo = in.indptr[v], hi = in.indptr[v + 1];
    if (lo == hi) continue;
    float mx = -1e30f;
    for (std::int64_t i = lo; i < hi; ++i)
      mx = std::max(mx, logits.at(in.edge_ids[static_cast<std::size_t>(i)]));
    float denom = 0;
    for (std::int64_t i = lo; i < hi; ++i)
      denom += std::exp(logits.at(in.edge_ids[static_cast<std::size_t>(i)]) - mx);
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto e = in.edge_ids[static_cast<std::size_t>(i)];
      alpha.at(e) = std::exp(logits.at(e) - mx) / denom;
    }
  }

  // 4. Attention-weighted aggregation via generalized SpMM (u_mul_e + sum) —
  //    fused: the |E| x d weighted messages are never materialized.
  fg::core::CpuSpmmSchedule spmm_fds;
  spmm_fds.num_threads = 2;
  spmm_fds.num_partitions = 8;
  spmm_fds.feat_tile = 32;
  const Tensor h = fg::core::spmm(g.in_csr(), "u_mul_e", "sum", spmm_fds,
                                  {&z, &alpha, nullptr});

  std::printf("GAT attention layer over %d vertices / %lld edges in %.1f ms\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              timer.millis());
  std::printf("h[0][0..3] = %.4f %.4f %.4f %.4f\n", h.at(0, 0), h.at(0, 1),
              h.at(0, 2), h.at(0, 3));

  // Multi-head variant of step 2 (Fig. 4b): 4 heads over the same features.
  const Tensor z4 = z.reshape({g.num_vertices(), 4, d_out / 4});
  const Tensor mh = fg::core::sddmm(g.coo(), "multihead_dot", sddmm_fds,
                                    {&z4, nullptr});
  std::printf("multi-head logits: %lld edges x %lld heads, mh[0] = %.4f\n",
              static_cast<long long>(mh.rows()),
              static_cast<long long>(mh.row_size()), mh.at(0, 0));
  return 0;
}
