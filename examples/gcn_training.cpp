// End-to-end GCN training with minidgl on FeatGraph kernels — the paper's
// Sec. V-E experiment in miniature, including the fused-vs-materialized
// backend comparison that Table VI quantifies.
//
//   $ ./gcn_training
#include <cstdio>

#include "minidgl/train.hpp"
#include "obs/metrics.hpp"
#include "support/timer.hpp"

namespace fg = featgraph;
using fg::minidgl::Device;
using fg::minidgl::ExecContext;
using fg::minidgl::Model;
using fg::minidgl::SparseBackend;
using fg::minidgl::Trainer;

int main() {
  // A synthetic classification task: communities are both graph structure
  // and label, features carry a noisy class signal.
  const auto data = fg::minidgl::make_sbm_classification(
      /*n=*/4000, /*avg_degree=*/20.0, /*num_classes=*/6, /*p_in=*/0.85,
      /*feat_dim=*/32, /*signal=*/1.5f, /*seed=*/11);
  std::printf("task: %d vertices, %lld edges, %zu train / %zu val / %zu test\n",
              data.graph.num_vertices(),
              static_cast<long long>(data.graph.num_edges()),
              data.train_rows.size(), data.val_rows.size(),
              data.test_rows.size());

  ExecContext ctx;
  ctx.backend = SparseBackend::kFused;  // FeatGraph kernels
  ctx.num_threads = 2;

  Trainer trainer(data, Model("gcn", 32, 64, 6, /*seed=*/1), ctx, /*lr=*/0.05f);
  std::printf("\ntraining 2-layer GCN (hidden 64) with the fused backend:\n");
  for (int epoch = 0; epoch < 19; ++epoch) {
    const auto r = trainer.train_epoch();
    if (epoch % 4 == 0)
      std::printf("  epoch %2d  loss %.4f  train acc %.3f  (%.0f ms)\n", epoch,
                  r.loss, r.train_accuracy, r.seconds * 1e3);
  }
  // Final epoch under a metrics window: the diff attributes every kernel
  // launch, fusion, and buffer reuse to THIS epoch, and the profile report
  // renders them (run with FEATGRAPH_TRACE=trace.json for the span view).
  const auto obs_baseline = fg::obs::Registry::global().snapshot();
  const auto last = trainer.train_epoch();
  std::printf("  epoch 19  loss %.4f  train acc %.3f  (%.0f ms)\n", last.loss,
              last.train_accuracy, last.seconds * 1e3);
  std::printf("test accuracy: %.3f\n", trainer.test_accuracy());
  std::printf("\none-epoch profile:\n%s\n",
              fg::obs::render_profile_report(
                  fg::obs::Registry::global().snapshot().since(obs_baseline))
                  .c_str());

  // The same model trained on the materialize backend (DGL-without-
  // FeatGraph): identical semantics, measurably slower, and it allocates
  // |E| x d message tensors every epoch.
  ExecContext mat = ctx;
  mat.backend = SparseBackend::kMaterialize;
  Trainer baseline(data, Model("gcn", 32, 64, 6, /*seed=*/1), mat, 0.05f);
  const auto fused_epoch = trainer.train_epoch();
  const auto mat_epoch = baseline.train_epoch();
  std::printf("\nper-epoch comparison: fused %.0f ms vs materialize %.0f ms "
              "(%.1fx); materialized %.1f MB of messages\n",
              fused_epoch.seconds * 1e3, mat_epoch.seconds * 1e3,
              mat_epoch.seconds / fused_epoch.seconds,
              mat_epoch.materialized_bytes / 1e6);
  return 0;
}
