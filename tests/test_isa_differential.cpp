// End-to-end ISA differential tests (GNNBENCH's lesson: backend speedups
// hide correctness drift unless every backend is validated against one
// oracle, not just against each other).
//
// Random R-MAT SpMM/SDDMM results under ScopedIsa for EVERY available ISA
// level must match the naive tests/reference.hpp oracle, for all builtin
// UDFs x reducers x both load_balance modes — and, on accumulation paths,
// must additionally be bit-for-bit identical to the scalar backend (the
// simd.hpp rounding contract observed through the full kernel stack).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/attention.hpp"
#include "core/schedule_ir.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "graph/generators.hpp"
#include "reference.hpp"

namespace fg = featgraph;
using fg::core::CpuSddmmSchedule;
using fg::core::CpuSpmmSchedule;
using fg::core::LoadBalance;
using fg::graph::Coo;
using fg::graph::Csr;
using fg::simd::Isa;
using fg::tensor::Tensor;

namespace {

// d = 19: not a multiple of 8 or 16, so every backend's tail path (scalar
// peel on AVX2, lane mask on AVX-512) runs on every edge visit.
constexpr std::int64_t kDim = 19;
constexpr std::int64_t kMlpD1 = 6;

struct Fixture {
  Coo coo;
  Csr in_csr;
  Tensor x;       // vertex features, n x kDim
  Tensor xsmall;  // mlp input, n x kMlpD1
  Tensor w;       // mlp weight, kMlpD1 x kDim
  Tensor e_vec;   // vector edge features, nnz x kDim
  Tensor e_scal;  // scalar edge features, nnz

  Fixture()
      : coo(fg::graph::gen_rmat(500, 8.0, 91)),
        in_csr(fg::graph::coo_to_in_csr(coo)),
        x(Tensor::randn({in_csr.num_cols, kDim}, 92)),
        xsmall(Tensor::randn({in_csr.num_cols, kMlpD1}, 93)),
        w(Tensor::randn({kMlpD1, kDim}, 94)),
        e_vec(Tensor::randn({in_csr.nnz(), kDim}, 95)),
        e_scal(Tensor::randn({in_csr.nnz()}, 96)) {}

  static const Fixture& get() {
    static const Fixture f;
    return f;
  }
};

bool bit_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

fg::core::SpmmOperands operands_for(const std::string& op, const Fixture& f,
                                    bool scalar_edge) {
  fg::core::SpmmOperands ops{nullptr, nullptr, nullptr};
  if (op == "mlp") {
    ops.src_feat = &f.xsmall;
    ops.weight = &f.w;
    return ops;
  }
  ops.src_feat = &f.x;
  if (op == "copy_e" || op == "u_add_e" || op == "u_mul_e") {
    ops.edge_feat = scalar_edge ? &f.e_scal : &f.e_vec;
  }
  return ops;
}

/// The blackbox oracle for one builtin msg op (mirrors the kernel's math in
/// the naive per-element form).
fg::testing::RefMsgFn ref_msg_for(const std::string& op, const Fixture& f,
                                  bool scalar_edge) {
  return [&, op, scalar_edge](fg::graph::vid_t u, fg::graph::eid_t e,
                              fg::graph::vid_t v, std::vector<float>& msg) {
    if (op == "mlp") {
      for (std::int64_t j = 0; j < kDim; ++j) {
        float acc = 0.0f;
        for (std::int64_t k = 0; k < kMlpD1; ++k)
          acc += (f.xsmall.at(u, k) + f.xsmall.at(v, k)) * f.w.at(k, j);
        msg[static_cast<std::size_t>(j)] = acc > 0.0f ? acc : 0.0f;
      }
      return;
    }
    for (std::int64_t j = 0; j < kDim; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const float xu = f.x.at(u, j);
      if (op == "copy_u") {
        msg[ju] = xu;
      } else if (op == "copy_e") {
        msg[ju] = scalar_edge ? f.e_scal.at(e) : f.e_vec.at(e, j);
      } else if (op == "u_add_v") {
        msg[ju] = xu + f.x.at(v, j);
      } else if (op == "u_sub_v") {
        msg[ju] = xu - f.x.at(v, j);
      } else if (op == "u_mul_v") {
        msg[ju] = xu * f.x.at(v, j);
      } else if (op == "u_div_v") {
        msg[ju] = xu / f.x.at(v, j);
      } else if (op == "u_add_e") {
        msg[ju] = xu + (scalar_edge ? f.e_scal.at(e) : f.e_vec.at(e, j));
      } else {  // u_mul_e
        msg[ju] = xu * (scalar_edge ? f.e_scal.at(e) : f.e_vec.at(e, j));
      }
    }
  };
}

}  // namespace

TEST(IsaDifferential, SpmmAllUdfsReducersBalancesMatchOracleOnEveryIsa) {
  const Fixture& f = Fixture::get();
  const auto isas = fg::simd::supported_isas();
  ASSERT_GE(isas.size(), 1u);
  const char* msg_ops[] = {"copy_u", "copy_e",  "u_add_v",
                           "u_sub_v", "u_mul_v", "u_div_v",
                           "u_add_e", "u_mul_e", "mlp"};
  const char* reducers[] = {"sum", "max", "min", "mean"};
  for (const char* op : msg_ops) {
    // u_op_e supports scalar-broadcast and vector edge features; copy_e's
    // vector form suffices (scalar copy_e is d_out == 1).
    const bool scalar_edge =
        std::string(op) == "u_add_e" || std::string(op) == "u_mul_e";
    const auto operands = operands_for(op, f, scalar_edge);
    const auto ref_msg = ref_msg_for(op, f, scalar_edge);
    for (const char* red : reducers) {
      const std::int64_t d_out = kDim;
      const Tensor oracle =
          fg::testing::reference_spmm(f.in_csr, ref_msg, red, d_out);
      Tensor scalar_out;
      for (const Isa isa : isas) {
        fg::simd::ScopedIsa pin(isa);
        for (const LoadBalance lb :
             {LoadBalance::kStaticRows, LoadBalance::kNnzBalanced}) {
          CpuSpmmSchedule sched;
          sched.num_threads = 3;
          sched.load_balance = lb;
          const Tensor got = fg::core::spmm(f.in_csr, op, red, sched, operands);
          // The mlp UDF's rank-1-update k-loop reassociates vs the oracle's
          // per-element dot; everything else runs the oracle's exact
          // reduction order (one partition, row-owned threads).
          const float tol = std::string(op) == "mlp" ? 1e-4f : 2e-5f;
          EXPECT_LT(fg::tensor::max_abs_diff(got, oracle), tol)
              << op << "/" << red << " isa=" << fg::simd::isa_name(isa)
              << " lb=" << static_cast<int>(lb);
          // Accumulation paths: bit-for-bit with the scalar backend.
          if (isa == Isa::kScalar && lb == LoadBalance::kStaticRows) {
            scalar_out = got.clone();
          } else {
            EXPECT_TRUE(bit_equal(got, scalar_out))
                << op << "/" << red << " isa=" << fg::simd::isa_name(isa)
                << " lb=" << static_cast<int>(lb)
                << " not bit-equal to scalar backend";
          }
        }
      }
    }
  }
}

TEST(IsaDifferential, SpmmLegalIrProgramsBitIdenticalToDefaultOnEveryIsa) {
  // The Schedule-IR bit-identity contract observed through the full kernel
  // stack: every ORDER-PRESERVING program — chunking, register-blocked
  // tiles, nnz-splitting — produces output bit-for-bit identical to the
  // default schedule on the SAME backend, for every msg op x reducer.
  // partition(P) regroups each destination row's in-edges by source bucket
  // (an intentional fold reorder, same as the flat num_partitions knob), so
  // partitioned programs are pinned against their flat-knob spelling
  // instead: same code path, bit-identical. (Cross-backend identity is the
  // previous test; composing both gives program x ISA identity.)
  const Fixture& f = Fixture::get();
  const auto isas = fg::simd::supported_isas();
  using fg::core::ScheduleIr;
  // d_out = kDim = 19: tile widths 8 and 16 are legal on every backend
  // (scalar takes any width; AVX2 is 8-lane; AVX-512 reroutes 8 and takes
  // 16 natively). flat_parts == 1 compares against the default schedule;
  // flat_parts > 1 compares against {num_partitions, feat_tile} flat knobs.
  struct Case {
    ScheduleIr prog;
    int flat_parts = 1;
    std::int64_t flat_tile = 0;
  };
  const std::vector<Case> cases = {
      {ScheduleIr().chunk(64)},
      {ScheduleIr().tile(8)},
      {ScheduleIr().tile(16).unroll(4)},
      {ScheduleIr().tile(8).unroll(2).chunk(100)},
      {ScheduleIr().split_nnz(LoadBalance::kStaticRows).tile(8).unroll(4)},
      {ScheduleIr().partition(4).tile(16).unroll(4), 4, 16},
      {ScheduleIr().partition(4).tile(16).override_partition(1, 8), 4, 16},
  };
  const char* msg_ops[] = {"copy_u", "copy_e", "u_add_v", "u_sub_v",
                           "u_mul_v", "u_div_v", "u_add_e", "u_mul_e", "mlp"};
  const char* reducers[] = {"sum", "max", "min", "mean"};
  for (const char* op : msg_ops) {
    const bool scalar_edge =
        std::string(op) == "u_add_e" || std::string(op) == "u_mul_e";
    const auto operands = operands_for(op, f, scalar_edge);
    for (const char* red : reducers) {
      for (const Isa isa : isas) {
        fg::simd::ScopedIsa pin(isa);
        for (const Case& c : cases) {
          ASSERT_EQ(fg::core::validate_spmm_ir(c.prog, f.in_csr.num_rows,
                                               kDim, isa),
                    "")
              << c.prog.describe();
          CpuSpmmSchedule baseline;
          baseline.num_threads = 3;
          if (c.flat_parts > 1) {
            baseline.num_partitions = c.flat_parts;
            baseline.feat_tile = c.flat_tile;
          }
          const Tensor want =
              fg::core::spmm(f.in_csr, op, red, baseline, operands);
          CpuSpmmSchedule s;
          s.num_threads = 3;
          s.ir = std::make_shared<const ScheduleIr>(c.prog);
          const Tensor got = fg::core::spmm(f.in_csr, op, red, s, operands);
          EXPECT_TRUE(bit_equal(got, want))
              << op << "/" << red << " isa=" << fg::simd::isa_name(isa)
              << " program=" << c.prog.describe();
        }
      }
    }
  }
}

TEST(IsaDifferential, AttentionIrProgramsBitIdenticalToDefaultOnEveryIsa) {
  // Fused attention interprets the same lowered plan (including the
  // weighted register-blocked path for copy_u); softmax spans are
  // degree-length regardless of the program, so bit-identity holds.
  // Order-preserving programs pin against the default schedule; the
  // partitioned program pins against its flat-knob spelling (partitioning
  // regroups each row's edge fold by source bucket, exactly like the flat
  // num_partitions knob).
  const Fixture& f = Fixture::get();
  const auto isas = fg::simd::supported_isas();
  using fg::core::ScheduleIr;
  fg::core::AttentionOperands ops;
  ops.src_feat = &f.x;
  ops.logit_scale = 0.25f;
  struct Case {
    ScheduleIr prog;
    int flat_parts = 1;
    std::int64_t flat_tile = 0;
  };
  const std::vector<Case> cases = {
      {ScheduleIr().chunk(64)},
      {ScheduleIr().tile(16).unroll(4)},
      {ScheduleIr().tile(8).unroll(2).chunk(100)},
      {ScheduleIr().partition(2).tile(8), 2, 8},
  };
  for (const Isa isa : isas) {
    fg::simd::ScopedIsa pin(isa);
    for (const Case& c : cases) {
      CpuSpmmSchedule baseline;
      baseline.num_threads = 3;
      if (c.flat_parts > 1) {
        baseline.num_partitions = c.flat_parts;
        baseline.feat_tile = c.flat_tile;
      }
      const auto want = fg::core::attention(f.in_csr, "copy_u", baseline, ops);
      CpuSpmmSchedule s;
      s.num_threads = 3;
      s.ir = std::make_shared<const ScheduleIr>(c.prog);
      const auto got = fg::core::attention(f.in_csr, "copy_u", s, ops);
      EXPECT_TRUE(bit_equal(got.out, want.out))
          << "out isa=" << fg::simd::isa_name(isa)
          << " program=" << c.prog.describe();
      EXPECT_TRUE(bit_equal(got.alpha, want.alpha))
          << "alpha isa=" << fg::simd::isa_name(isa)
          << " program=" << c.prog.describe();
    }
  }
}

TEST(IsaDifferential, SddmmIrProgramsBitIdenticalToFlatOnEveryIsa) {
  // SDDMM programs: chunk(C) is a pure split of the per-thread edge loop
  // (bit-identical to untiled flat), and tile(W) runs the identical code
  // path as the flat reduce_tile knob.
  const Fixture& f = Fixture::get();
  const auto isas = fg::simd::supported_isas();
  using fg::core::ScheduleIr;
  for (const Isa isa : isas) {
    fg::simd::ScopedIsa pin(isa);
    CpuSddmmSchedule def;
    def.num_threads = 3;
    const Tensor want = fg::core::sddmm(f.coo, "dot", def, {&f.x, nullptr});

    CpuSddmmSchedule chunked = def;
    chunked.ir = std::make_shared<const ScheduleIr>(ScheduleIr().chunk(128));
    EXPECT_TRUE(bit_equal(
        fg::core::sddmm(f.coo, "dot", chunked, {&f.x, nullptr}), want))
        << "chunk isa=" << fg::simd::isa_name(isa);

    CpuSddmmSchedule flat_tiled = def;
    flat_tiled.reduce_tile = 8;
    CpuSddmmSchedule ir_tiled = def;
    ir_tiled.ir = std::make_shared<const ScheduleIr>(ScheduleIr().tile(8));
    EXPECT_TRUE(bit_equal(
        fg::core::sddmm(f.coo, "dot", ir_tiled, {&f.x, nullptr}),
        fg::core::sddmm(f.coo, "dot", flat_tiled, {&f.x, nullptr})))
        << "tile isa=" << fg::simd::isa_name(isa);
  }
}

TEST(IsaDifferential, SddmmAllEdgeOpsMatchOracleOnEveryIsa) {
  const Fixture& f = Fixture::get();
  const auto isas = fg::simd::supported_isas();

  // dot / u_add_v / u_mul_v over n x kDim features.
  struct Case {
    const char* op;
    std::int64_t d_out;
  };
  for (const Case c : {Case{"dot", 1}, Case{"u_add_v", kDim},
                       Case{"u_mul_v", kDim}}) {
    const fg::testing::RefEdgeFn ref_fn =
        [&](fg::graph::vid_t u, fg::graph::eid_t, fg::graph::vid_t v,
            std::vector<float>& out) {
          if (std::string(c.op) == "dot") {
            float acc = 0.0f;
            for (std::int64_t k = 0; k < kDim; ++k)
              acc += f.x.at(u, k) * f.x.at(v, k);
            out[0] = acc;
          } else {
            for (std::int64_t j = 0; j < kDim; ++j) {
              const auto ju = static_cast<std::size_t>(j);
              out[ju] = std::string(c.op) == "u_add_v"
                            ? f.x.at(u, j) + f.x.at(v, j)
                            : f.x.at(u, j) * f.x.at(v, j);
            }
          }
        };
    const Tensor oracle = fg::testing::reference_sddmm(f.coo, ref_fn, c.d_out);
    for (const Isa isa : isas) {
      fg::simd::ScopedIsa pin(isa);
      for (const bool hilbert : {false, true}) {
        CpuSddmmSchedule sched;
        sched.num_threads = 3;
        sched.hilbert_order = hilbert;
        const Tensor got = fg::core::sddmm(f.coo, c.op, sched, {&f.x, nullptr});
        EXPECT_LT(fg::tensor::max_abs_diff(got, oracle), 1e-4f)
            << c.op << " isa=" << fg::simd::isa_name(isa)
            << " hilbert=" << hilbert;
      }
    }
  }

  // multihead_dot over (n x heads x head_dim) with head_dim not a multiple
  // of any vector width.
  const std::int64_t heads = 3, head_dim = 5;
  Tensor a3 = Tensor::randn({f.in_csr.num_cols, heads, head_dim}, 97);
  const fg::testing::RefEdgeFn ref_mh =
      [&](fg::graph::vid_t u, fg::graph::eid_t, fg::graph::vid_t v,
          std::vector<float>& out) {
        for (std::int64_t h = 0; h < heads; ++h) {
          float acc = 0.0f;
          for (std::int64_t k = 0; k < head_dim; ++k)
            acc += a3.at((u * heads + h) * head_dim + k) *
                   a3.at((v * heads + h) * head_dim + k);
          out[static_cast<std::size_t>(h)] = acc;
        }
      };
  const Tensor oracle = fg::testing::reference_sddmm(f.coo, ref_mh, heads);
  for (const Isa isa : isas) {
    fg::simd::ScopedIsa pin(isa);
    const Tensor got =
        fg::core::sddmm(f.coo, "multihead_dot", {}, {&a3, nullptr});
    EXPECT_LT(fg::tensor::max_abs_diff(got, oracle), 1e-4f)
        << "multihead_dot isa=" << fg::simd::isa_name(isa);
  }
}
