// Algebraic property tests on the sparse templates — invariants that must
// hold for every graph and schedule, checked over randomized instances.
#include <gtest/gtest.h>

#include <vector>

#include "core/attention.hpp"
#include "core/sddmm.hpp"
#include "core/simd.hpp"
#include "core/spmm.hpp"
#include "graph/generators.hpp"
#include "tensor/ops.hpp"

namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::graph::Coo;
using fg::graph::Csr;
using fg::tensor::Tensor;

namespace {

Tensor spmm_sum(const Csr& adj, const Tensor& x,
                const CpuSpmmSchedule& sched = {}) {
  return fg::core::spmm(adj, "copy_u", "sum", sched, {&x, nullptr, nullptr});
}

}  // namespace

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Coo coo_ = fg::graph::gen_lognormal(250, 6.0, 1.0, GetParam());
  Csr in_ = fg::graph::coo_to_in_csr(coo_);
  Csr out_ = fg::graph::coo_to_out_csr(coo_);
  Tensor x_ = Tensor::randn({250, 12}, GetParam() + 1);
  Tensor y_ = Tensor::randn({250, 12}, GetParam() + 2);
};

TEST_P(PropertyTest, SpmmSumIsLinearInFeatures) {
  // A(x + 2y) == Ax + 2Ay.
  Tensor x2y = fg::tensor::add(x_, fg::tensor::scale(y_, 2.0f));
  Tensor lhs = spmm_sum(in_, x2y);
  Tensor rhs = fg::tensor::add(spmm_sum(in_, x_),
                               fg::tensor::scale(spmm_sum(in_, y_), 2.0f));
  EXPECT_LT(fg::tensor::max_abs_diff(lhs, rhs), 1e-3f);
}

TEST_P(PropertyTest, SumOverInEdgesPreservesMass) {
  // sum_v (A x)[v][j] == sum_u out_degree(u) * x[u][j].
  Tensor agg = spmm_sum(in_, x_);
  const auto counts = fg::graph::column_counts(in_);
  for (std::int64_t j = 0; j < 3; ++j) {
    double lhs = 0.0, rhs = 0.0;
    for (fg::graph::vid_t v = 0; v < in_.num_rows; ++v) lhs += agg.at(v, j);
    for (fg::graph::vid_t u = 0; u < in_.num_cols; ++u)
      rhs += static_cast<double>(counts[static_cast<std::size_t>(u)]) *
             x_.at(u, j);
    EXPECT_NEAR(lhs, rhs, 1e-2);
  }
}

TEST_P(PropertyTest, TransposeDuality) {
  // <A x, y> == <x, A^T y>: aggregation over in-edges is adjoint to
  // aggregation over out-edges (the identity the gradient kernels rely on).
  Tensor ax = spmm_sum(in_, x_);
  Tensor aty = spmm_sum(out_, y_);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < ax.numel(); ++i) lhs += ax.at(i) * y_.at(i);
  for (std::int64_t i = 0; i < aty.numel(); ++i) rhs += aty.at(i) * x_.at(i);
  EXPECT_NEAR(lhs, rhs, std::abs(lhs) * 1e-4 + 1e-2);
}

TEST_P(PropertyTest, MaxDominatesMeanDominatesMin) {
  const fg::core::SpmmOperands ops{&x_, nullptr, nullptr};
  Tensor mx = fg::core::spmm(in_, "copy_u", "max", {}, ops);
  Tensor mn = fg::core::spmm(in_, "copy_u", "min", {}, ops);
  Tensor mean = fg::core::spmm(in_, "copy_u", "mean", {}, ops);
  for (std::int64_t i = 0; i < mx.numel(); ++i) {
    EXPECT_LE(mn.at(i), mean.at(i) + 1e-4f);
    EXPECT_LE(mean.at(i), mx.at(i) + 1e-4f);
  }
}

TEST_P(PropertyTest, UAddVEqualsCopyUPlusDegreeScaledDst) {
  // sum_e (x_u + x_v) over in-edges of v == (A x)[v] + deg(v) * x[v].
  const fg::core::SpmmOperands ops{&x_, nullptr, nullptr};
  Tensor lhs = fg::core::spmm(in_, "u_add_v", "sum", {}, ops);
  Tensor ax = spmm_sum(in_, x_);
  for (fg::graph::vid_t v = 0; v < in_.num_rows; ++v) {
    const auto deg = static_cast<float>(in_.degree(v));
    for (std::int64_t j = 0; j < 12; ++j)
      EXPECT_NEAR(lhs.at(v, j), ax.at(v, j) + deg * x_.at(v, j), 1e-3f);
  }
}

TEST_P(PropertyTest, ScheduleAndBackendNeverChangeResults) {
  // The paper's central correctness property extended to the new knobs: for
  // any schedule (partitions x tile x threads x load_balance) and either
  // SIMD backend, results are bit-for-bit identical — schedules move work,
  // never arithmetic.
  const fg::core::SpmmOperands ops{&x_, nullptr, nullptr};
  CpuSpmmSchedule ref_sched;
  ref_sched.load_balance = fg::core::LoadBalance::kStaticRows;
  Tensor ref;
  {
    fg::simd::ScopedIsa pin(fg::simd::Isa::kScalar);
    ref = fg::core::spmm(in_, "copy_u", "sum", ref_sched, ops);
  }
  // Every compiled-and-supported backend joins the sweep (scalar always,
  // avx2/avx512 when the CPU has them).
  const auto isas = fg::simd::supported_isas();
  for (auto isa : isas) {
    fg::simd::ScopedIsa pin(isa);
    for (int parts : {1, 4}) {
      for (auto lb : {fg::core::LoadBalance::kStaticRows,
                      fg::core::LoadBalance::kNnzBalanced}) {
        CpuSpmmSchedule sched;
        sched.num_partitions = parts;
        sched.feat_tile = 5;
        sched.num_threads = 3;
        sched.load_balance = lb;
        const Tensor got = fg::core::spmm(in_, "copy_u", "sum", sched, ops);
        // Partitioning reorders the per-row edge visits, which reassociates
        // the sum; unpartitioned schedules must stay bit-exact, partitioned
        // ones within float tolerance.
        if (parts == 1) {
          EXPECT_EQ(fg::tensor::max_abs_diff(got, ref), 0.0f)
              << fg::simd::isa_name(isa) << " lb=" << static_cast<int>(lb);
        } else {
          EXPECT_LT(fg::tensor::max_abs_diff(got, ref), 1e-3f);
        }
      }
    }
  }
}

TEST_P(PropertyTest, SddmmDotIsSymmetricOnReversedEdges) {
  // dot(x_u, x_v) is symmetric in the endpoints: evaluating on the reversed
  // COO permutes nothing.
  Coo reversed = coo_;
  std::swap(reversed.src, reversed.dst);
  Tensor fwd = fg::core::sddmm(coo_, "dot", {}, {&x_, nullptr});
  Tensor bwd = fg::core::sddmm(reversed, "dot", {}, {&x_, nullptr});
  EXPECT_LT(fg::tensor::max_abs_diff(fwd, bwd), 1e-4f);
}

TEST_P(PropertyTest, SddmmUMulVRowSumEqualsDot) {
  // sum_j (x_u * x_v)[j] == <x_u, x_v>.
  Tensor prod = fg::core::sddmm(coo_, "u_mul_v", {}, {&x_, nullptr});
  Tensor dot = fg::core::sddmm(coo_, "dot", {}, {&x_, nullptr});
  for (fg::graph::eid_t e = 0; e < coo_.num_edges(); ++e) {
    float s = 0.0f;
    for (std::int64_t j = 0; j < 12; ++j) s += prod.at(e, j);
    EXPECT_NEAR(s, dot.at(e), 1e-3f);
  }
}

TEST_P(PropertyTest, SpmmGradIsSddmmPattern) {
  // Sec. II-A: d/dw <A_w x, y> where A_w has value w_e on edge e equals
  // x_u . y_v — the SDDMM of the operands. Check via finite differences on
  // a few random edges.
  Tensor w = Tensor::uniform({coo_.num_edges()}, GetParam() + 3, 0.5f, 1.5f);
  auto loss = [&](const Tensor& wt) {
    Tensor out = fg::core::spmm(in_, "u_mul_e", "sum", {},
                                {&x_, &wt, nullptr});
    double acc = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) acc += out.at(i) * y_.at(i);
    return acc;
  };
  Tensor sddmm_grad = fg::core::sddmm(coo_, "dot", {}, {&x_, &y_});
  for (fg::graph::eid_t e = 0; e < coo_.num_edges();
       e += coo_.num_edges() / 5 + 1) {
    const float eps = 1e-2f;
    Tensor wp = w.clone();
    wp.at(e) += eps;
    Tensor wm = w.clone();
    wm.at(e) -= eps;
    const double fd = (loss(wp) - loss(wm)) / (2 * eps);
    EXPECT_NEAR(fd, sddmm_grad.at(e), 5e-2 + 0.02 * std::abs(fd))
        << "edge " << e;
  }
}

TEST_P(PropertyTest, AttentionAlphaSumsToOnePerDestination) {
  // The defining softmax invariant, over random skewed graphs and every
  // supported backend: each destination's in-edge weights are a probability
  // distribution (empty rows contribute no weights at all).
  fg::core::AttentionOperands ops;
  ops.src_feat = &x_;
  for (const auto isa : fg::simd::supported_isas()) {
    fg::simd::ScopedIsa pin(isa);
    const fg::core::AttentionResult r =
        fg::core::attention(in_, "copy_u", {}, ops);
    for (fg::graph::vid_t v = 0; v < in_.num_rows; ++v) {
      if (in_.degree(v) == 0) continue;
      float sum = 0.0f;
      for (std::int64_t i = in_.indptr[v]; i < in_.indptr[v + 1]; ++i)
        sum += r.alpha.at(in_.edge_ids[static_cast<std::size_t>(i)]);
      EXPECT_NEAR(sum, 1.0f, 1e-4f)
          << fg::simd::isa_name(isa) << " row " << v;
    }
  }
}

TEST_P(PropertyTest, AttentionOutputIsAConvexCombinationOfMessages) {
  // alpha in [0,1] summing to 1 per row makes each output element a convex
  // combination of its in-neighbors' features: min_u x_u[j] <= out[v][j] <=
  // max_u x_u[j] — i.e. the copy_u/min and copy_u/max SpMMs bound attention.
  fg::core::AttentionOperands ops;
  ops.src_feat = &x_;
  const fg::core::AttentionResult r =
      fg::core::attention(in_, "copy_u", {}, ops);
  const fg::core::SpmmOperands sops{&x_, nullptr, nullptr};
  Tensor mx = fg::core::spmm(in_, "copy_u", "max", {}, sops);
  Tensor mn = fg::core::spmm(in_, "copy_u", "min", {}, sops);
  for (fg::graph::vid_t v = 0; v < in_.num_rows; ++v) {
    if (in_.degree(v) == 0) continue;
    for (std::int64_t j = 0; j < 12; ++j) {
      EXPECT_GE(r.out.at(v, j), mn.at(v, j) - 1e-4f);
      EXPECT_LE(r.out.at(v, j), mx.at(v, j) + 1e-4f);
    }
  }
}

TEST_P(PropertyTest, AttentionScheduleNeverChangesAlpha) {
  // The schedule axes move aggregation work only; the softmax half of the
  // fused kernel is schedule-invariant bit-for-bit (test_attention.cpp pins
  // the full matrix; this re-checks on every random-seed instance).
  fg::core::AttentionOperands ops;
  ops.src_feat = &x_;
  Tensor ref;
  for (int parts : {1, 4}) {
    for (auto lb : {fg::core::LoadBalance::kStaticRows,
                    fg::core::LoadBalance::kNnzBalanced}) {
      CpuSpmmSchedule sched;
      sched.num_partitions = parts;
      sched.num_threads = 3;
      sched.load_balance = lb;
      const fg::core::AttentionResult r =
          fg::core::attention(in_, "copy_u", sched, ops);
      if (!ref.defined()) {
        ref = r.alpha.clone();
      } else {
        EXPECT_EQ(fg::tensor::max_abs_diff(r.alpha, ref), 0.0f)
            << "parts=" << parts << " lb=" << static_cast<int>(lb);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));
