// Tests for the extension modules: the budgeted smart tuner (the paper's
// future-work item), graph statistics, binary graph I/O, symmetric GCN
// normalization, and multi-head GAT.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>

#include "core/smart_tuner.hpp"
#include "core/tuner.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "minidgl/train.hpp"
#include "support/timer.hpp"

namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::core::SmartTuneOptions;
using fg::graph::Coo;
using fg::tensor::Tensor;

// --- smart tuner -----------------------------------------------------------

namespace {

/// Synthetic unimodal cost surface with minimum at (parts=8, tile=32).
double synthetic_cost(const CpuSpmmSchedule& s) {
  const double lp = std::log2(static_cast<double>(s.num_partitions));
  const double lt = s.feat_tile == 0
                        ? 7.0  // "untiled" sits past the largest tile
                        : std::log2(static_cast<double>(s.feat_tile));
  return 1.0 + 0.3 * (lp - 3.0) * (lp - 3.0) + 0.2 * (lt - 5.0) * (lt - 5.0);
}

}  // namespace

TEST(SmartTuner, FindsUnimodalOptimumWithinBudget) {
  // The (partitions x tiles) lattice for d=256 has 7x6 = 42 points; the
  // climber must find the global optimum (8, 32) with under half as many
  // measurements.
  int calls = 0;
  const auto result = fg::core::smart_tune_spmm(
      256, 1,
      [&](const CpuSpmmSchedule& s) {
        ++calls;
        return synthetic_cost(s);
      },
      SmartTuneOptions{.max_trials = 20, .num_seeds = 3, .seed = 7});
  EXPECT_EQ(result.best.num_partitions, 8);
  EXPECT_EQ(result.best.feat_tile, 32);
  EXPECT_LE(result.trials_used, 20);
  EXPECT_EQ(calls, result.trials_used);
}

TEST(SmartTuner, RespectsHardBudget) {
  const auto result = fg::core::smart_tune_spmm(
      512, 1, [](const CpuSpmmSchedule& s) { return synthetic_cost(s); },
      SmartTuneOptions{.max_trials = 4});
  EXPECT_LE(result.trials_used, 4);
  EXPECT_TRUE(std::isfinite(result.best_seconds));
}

TEST(SmartTuner, DeterministicForFixedSeed) {
  auto run = [] {
    return fg::core::smart_tune_spmm(
        128, 2, [](const CpuSpmmSchedule& s) { return synthetic_cost(s); },
        SmartTuneOptions{.max_trials = 10, .seed = 42});
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.best.num_partitions, b.best.num_partitions);
  EXPECT_EQ(a.best.feat_tile, b.best.feat_tile);
  EXPECT_EQ(a.trials_used, b.trials_used);
}

TEST(SmartTuner, NeedsFewerTrialsThanGridOnRealKernel) {
  // The future-work claim: reach (close to) the grid winner in a fraction
  // of the measurements on a real cost surface.
  const Coo coo = fg::graph::gen_uniform(3000, 24.0, 5);
  const auto in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({3000, 64}, 6);
  const fg::core::SpmmOperands ops{&x, nullptr, nullptr};

  auto measure = [&](const CpuSpmmSchedule& s) {
    return fg::support::time_mean_seconds(
        [&] { (void)fg::core::spmm(in, "copy_u", "sum", s, ops); }, 1);
  };

  const auto grid = fg::core::default_spmm_candidates(64, 1);
  const auto grid_result =
      fg::core::tune_spmm(in, "copy_u", "sum", ops, grid, 1);
  const auto smart = fg::core::smart_tune_spmm(
      64, 1, measure, SmartTuneOptions{.max_trials = 10});

  EXPECT_LT(smart.trials_used, static_cast<int>(grid.size()));
  // Within 60% of the grid winner (timing noise on a busy box is real).
  EXPECT_LT(smart.best_seconds, grid_result.best_seconds * 1.6 + 1e-4);
}

// --- graph statistics --------------------------------------------------

TEST(Stats, UniformGraphHasLowGini) {
  const Coo coo = fg::graph::gen_uniform(5000, 20.0, 8);
  const auto stats =
      fg::graph::source_degree_stats(fg::graph::coo_to_in_csr(coo));
  EXPECT_NEAR(stats.mean, 20.0, 0.5);
  EXPECT_LT(stats.gini, 0.2);
}

TEST(Stats, TwoClassGraphHasHighGiniAndHeavyTail) {
  const Coo coo = fg::graph::gen_two_class(100, 500, 900, 5, 9);
  const auto stats =
      fg::graph::source_degree_stats(fg::graph::coo_to_in_csr(coo));
  EXPECT_GT(stats.gini, 0.4);
  EXPECT_EQ(stats.max, 500);
  EXPECT_EQ(stats.median, 5);
  EXPECT_GT(stats.p99, 100);
}

TEST(Stats, HighDegreeEdgeFractionMatchesConstruction) {
  // 100 hubs at degree 500 own 500*100 / (500*100 + 900*5) = 91.7% of edges.
  const Coo coo = fg::graph::gen_two_class(100, 500, 900, 5, 10);
  const double frac =
      fg::graph::high_degree_edge_fraction(fg::graph::coo_to_in_csr(coo), 0.9);
  EXPECT_NEAR(frac, 0.917, 0.02);
}

TEST(Stats, DescribeMentionsKeyFields) {
  const Coo coo = fg::graph::gen_uniform(100, 4.0, 11);
  const auto s =
      fg::graph::describe(fg::graph::source_degree_stats(fg::graph::coo_to_in_csr(coo)));
  EXPECT_NE(s.find("mean"), std::string::npos);
  EXPECT_NE(s.find("gini"), std::string::npos);
}

// --- graph I/O -----------------------------------------------------------

TEST(GraphIo, RoundTripsEdgeLists) {
  const Coo original = fg::graph::gen_lognormal(500, 8.0, 1.0, 12);
  const std::string path = ::testing::TempDir() + "/roundtrip.fgc";
  fg::graph::save_coo(original, path);
  EXPECT_TRUE(fg::graph::is_featgraph_file(path));
  const Coo loaded = fg::graph::load_coo(path);
  EXPECT_EQ(loaded.num_src, original.num_src);
  EXPECT_EQ(loaded.num_dst, original.num_dst);
  EXPECT_EQ(loaded.src, original.src);
  EXPECT_EQ(loaded.dst, original.dst);
  std::remove(path.c_str());
}

TEST(GraphIo, RoundTripsEmptyGraph) {
  Coo empty;
  empty.num_src = empty.num_dst = 7;
  const std::string path = ::testing::TempDir() + "/empty.fgc";
  fg::graph::save_coo(empty, path);
  const Coo loaded = fg::graph::load_coo(path);
  EXPECT_EQ(loaded.num_src, 7);
  EXPECT_EQ(loaded.num_edges(), 0);
  std::remove(path.c_str());
}

TEST(GraphIo, RejectsNonFeatgraphFiles) {
  const std::string path = ::testing::TempDir() + "/not_a_graph.txt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("hello world, definitely not a graph", f);
  std::fclose(f);
  EXPECT_FALSE(fg::graph::is_featgraph_file(path));
  EXPECT_DEATH((void)fg::graph::load_coo(path), "magic");
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileIsNotAFeatgraphFile) {
  EXPECT_FALSE(fg::graph::is_featgraph_file("/nonexistent/path.fgc"));
}

// --- symmetric GCN normalization -----------------------------------------

TEST(GcnNorm, WeightsMatchDegreesAndAggregationIsBounded) {
  fg::graph::Graph g(fg::graph::gen_uniform(200, 6.0, 13));
  const Tensor w = fg::minidgl::symmetric_norm_weights(g);
  ASSERT_EQ(w.numel(), g.num_edges());
  const auto& coo = g.coo();
  for (fg::graph::eid_t e = 0; e < g.num_edges(); e += 17) {
    const auto du = g.out_csr().degree(coo.src[static_cast<std::size_t>(e)]);
    const auto dv = g.in_csr().degree(coo.dst[static_cast<std::size_t>(e)]);
    EXPECT_NEAR(w.at(e),
                1.0f / std::sqrt(static_cast<float>(du) * dv), 1e-5f);
  }
}

TEST(GcnNorm, SymLayerTrainsOnSbm) {
  const auto data = fg::minidgl::make_sbm_classification(500, 10.0, 4, 0.9,
                                                         16, 2.0f, 14);
  fg::minidgl::ExecContext ctx;
  ctx.num_threads = 2;
  fg::minidgl::GcnLayer l1(16, 24, false, 1, "sym");
  fg::minidgl::GcnLayer l2(24, 4, true, 2, "sym");
  std::vector<fg::minidgl::Var> params = l1.parameters();
  for (auto& p : l2.parameters()) params.push_back(p);
  fg::minidgl::Adam adam(params, 0.05f);

  float first = 0, last = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    auto x = fg::minidgl::make_leaf(data.features.clone(), false);
    auto h = l2.forward(ctx, data.graph, l1.forward(ctx, data.graph, x));
    auto lp = fg::minidgl::log_softmax(ctx, h);
    auto loss = fg::minidgl::nll_loss(ctx, lp, data.labels, data.train_rows);
    adam.zero_grad();
    fg::minidgl::backward(loss);
    adam.step();
    if (epoch == 0) first = loss->value().at(0);
    last = loss->value().at(0);
  }
  EXPECT_LT(last, first * 0.7f);
}

TEST(GcnNormDeathTest, RejectsUnknownNormalization) {
  EXPECT_DEATH(fg::minidgl::GcnLayer(4, 4, false, 1, "l2"), "normalization");
}

// --- multi-head GAT --------------------------------------------------------

TEST(MultiHeadGat, ParameterCountScalesWithHeads) {
  fg::minidgl::GatLayer one(8, 4, false, 1, 1);
  fg::minidgl::GatLayer four(8, 4, false, 1, 4);
  EXPECT_EQ(one.parameters().size(), 2u);
  EXPECT_EQ(four.parameters().size(), 8u);
  EXPECT_EQ(four.num_heads(), 4);
}

TEST(MultiHeadGat, OutputShapeIndependentOfHeads) {
  fg::graph::Graph g(fg::graph::gen_uniform(80, 5.0, 15));
  fg::minidgl::ExecContext ctx;
  auto x = fg::minidgl::make_leaf(Tensor::randn({80, 8}, 16), false);
  for (int heads : {1, 2, 4}) {
    fg::minidgl::GatLayer layer(8, 6, true, 17, heads);
    auto h = layer.forward(ctx, g, x);
    EXPECT_EQ(h->value().shape(0), 80);
    EXPECT_EQ(h->value().shape(1), 6);
  }
}

TEST(MultiHeadGat, GradientsFlowThroughAllHeads) {
  fg::graph::Graph g(fg::graph::gen_uniform(40, 4.0, 18));
  fg::minidgl::ExecContext ctx;
  fg::minidgl::GatLayer layer(6, 4, true, 19, 3);
  auto x = fg::minidgl::make_leaf(Tensor::randn({40, 6}, 20), true);
  auto h = layer.forward(ctx, g, x);
  fg::minidgl::backward(h);
  for (const auto& p : layer.parameters()) {
    EXPECT_TRUE(p->has_grad());
    float norm = 0.0f;
    for (std::int64_t i = 0; i < p->grad().numel(); ++i)
      norm += std::fabs(p->grad().at(i));
    // Weight matrices must receive nonzero gradient (bias may be zero-ish).
    if (p->value().rank() == 2) EXPECT_GT(norm, 0.0f);
  }
}
