#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "graph/generators.hpp"
#include "minidgl/autograd.hpp"
#include "minidgl/modules.hpp"
#include "minidgl/ops.hpp"
#include "tensor/ops.hpp"

namespace fg = featgraph;
using fg::graph::Graph;
using fg::minidgl::backward;
using fg::minidgl::ExecContext;
using fg::minidgl::make_leaf;
using fg::minidgl::Var;
using fg::tensor::Tensor;

namespace {

/// Numeric gradient check: `loss_of` rebuilds the computation from raw
/// tensors, `build` produces (loss, leaf) for analytic gradients. Probes a
/// few indices with central differences.
void check_gradient(
    const Tensor& x0,
    const std::function<float(const Tensor&)>& loss_of,
    const std::function<std::pair<Var, Var>(const Tensor&)>& build,
    float eps = 1e-2f, float tol = 2e-2f) {
  auto [loss, leaf] = build(x0);
  backward(loss);
  ASSERT_TRUE(leaf->has_grad());
  const Tensor& grad = leaf->grad();

  const std::int64_t probes = std::min<std::int64_t>(x0.numel(), 7);
  for (std::int64_t p = 0; p < probes; ++p) {
    const std::int64_t i = (p * 131) % x0.numel();
    Tensor plus = x0.clone();
    plus.at(i) += eps;
    Tensor minus = x0.clone();
    minus.at(i) -= eps;
    const float fd = (loss_of(plus) - loss_of(minus)) / (2 * eps);
    EXPECT_NEAR(grad.at(i), fd, tol + 0.05f * std::fabs(fd))
        << "flat index " << i;
  }
}

/// Deterministic "project to scalar" weights so every output element
/// contributes to the loss.
Tensor projection(const std::vector<std::int64_t>& shape) {
  return Tensor::uniform(shape, 999, 0.1f, 1.0f);
}

float weighted_sum(const Tensor& t, const Tensor& w) {
  float acc = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i) acc += t.at(i) * w.at(i);
  return acc;
}

Var project_to_scalar(ExecContext& ctx, const Var& v, const Tensor& w) {
  // loss = sum(v * w) expressed via existing ops: scale rows then nll-like
  // reduction is overkill; use a manual op node.
  Tensor value({1});
  value.at(0) = weighted_sum(v->value(), w);
  (void)ctx;
  return fg::minidgl::make_op(
      std::move(value), {v},
      [v, w](fg::minidgl::Node& node) {
        Tensor g(w.shape());
        const float seed = node.grad().at(0);
        for (std::int64_t i = 0; i < w.numel(); ++i) g.at(i) = w.at(i) * seed;
        v->accumulate_grad(g);
      },
      "project");
}

}  // namespace

TEST(Autograd, LeafAccumulatesAcrossPaths) {
  ExecContext ctx;
  Var x = make_leaf(Tensor::full({2, 2}, 3.0f), true);
  Var y = fg::minidgl::add(ctx, x, x);  // y = 2x
  backward(y);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x->grad().at(i), 2.0f);
}

TEST(Autograd, NoGradForFrozenLeaves) {
  ExecContext ctx;
  Var x = make_leaf(Tensor::full({2, 2}, 1.0f), false);
  Var y = fg::minidgl::relu(ctx, x);
  backward(y);
  EXPECT_FALSE(x->has_grad());
}

TEST(Autograd, DiamondGraphGradientIsCorrect) {
  // z = relu(x) + scale(x, 2): dz/dx = 1{x>0} + 2.
  ExecContext ctx;
  Tensor x0({3});
  x0.at(0) = -1;
  x0.at(1) = 0.5f;
  x0.at(2) = 2;
  Var x = make_leaf(x0.clone(), true);
  Var z = fg::minidgl::add(ctx, fg::minidgl::relu(ctx, x),
                           fg::minidgl::scale(ctx, x, 2.0f));
  backward(z);
  EXPECT_FLOAT_EQ(x->grad().at(0), 2.0f);
  EXPECT_FLOAT_EQ(x->grad().at(1), 3.0f);
  EXPECT_FLOAT_EQ(x->grad().at(2), 3.0f);
}

TEST(Autograd, MatmulGradient) {
  ExecContext ctx;
  const Tensor a0 = Tensor::randn({4, 5}, 1);
  const Tensor b0 = Tensor::randn({5, 3}, 2);
  const Tensor w = projection({4, 3});

  check_gradient(
      a0,
      [&](const Tensor& a) {
        return weighted_sum(fg::tensor::matmul(a, b0), w);
      },
      [&](const Tensor& a) {
        Var av = make_leaf(a.clone(), true);
        Var bv = make_leaf(b0.clone(), false);
        Var y = fg::minidgl::matmul(ctx, av, bv);
        return std::make_pair(project_to_scalar(ctx, y, w), av);
      });

  check_gradient(
      b0,
      [&](const Tensor& b) {
        return weighted_sum(fg::tensor::matmul(a0, b), w);
      },
      [&](const Tensor& b) {
        Var av = make_leaf(a0.clone(), false);
        Var bv = make_leaf(b.clone(), true);
        Var y = fg::minidgl::matmul(ctx, av, bv);
        return std::make_pair(project_to_scalar(ctx, y, w), bv);
      });
}

TEST(Autograd, AddBiasGradient) {
  ExecContext ctx;
  const Tensor x0 = Tensor::randn({4, 3}, 3);
  const Tensor b0 = Tensor::randn({3}, 4);
  const Tensor w = projection({4, 3});
  check_gradient(
      b0,
      [&](const Tensor& b) {
        return weighted_sum(fg::tensor::add_bias(x0, b), w);
      },
      [&](const Tensor& b) {
        Var xv = make_leaf(x0.clone(), false);
        Var bv = make_leaf(b.clone(), true);
        Var y = fg::minidgl::add_bias(ctx, xv, bv);
        return std::make_pair(project_to_scalar(ctx, y, w), bv);
      });
}

TEST(Autograd, ActivationsGradient) {
  ExecContext ctx;
  const Tensor x0 = Tensor::randn({5, 4}, 5);
  const Tensor w = projection({5, 4});
  check_gradient(
      x0,
      [&](const Tensor& x) { return weighted_sum(fg::tensor::relu(x), w); },
      [&](const Tensor& x) {
        Var xv = make_leaf(x.clone(), true);
        return std::make_pair(
            project_to_scalar(ctx, fg::minidgl::relu(ctx, xv), w), xv);
      });
  check_gradient(
      x0,
      [&](const Tensor& x) {
        return weighted_sum(fg::tensor::leaky_relu(x, 0.2f), w);
      },
      [&](const Tensor& x) {
        Var xv = make_leaf(x.clone(), true);
        return std::make_pair(
            project_to_scalar(ctx, fg::minidgl::leaky_relu(ctx, xv, 0.2f), w),
            xv);
      });
}

TEST(Autograd, LogSoftmaxNllGradient) {
  ExecContext ctx;
  const Tensor x0 = Tensor::randn({6, 4}, 6);
  const std::vector<std::int32_t> labels = {0, 1, 2, 3, 1, 2};
  const std::vector<std::int64_t> rows = {0, 2, 4, 5};

  check_gradient(
      x0,
      [&](const Tensor& x) {
        Tensor lp = fg::tensor::log_softmax_rows(x);
        return fg::tensor::nll_loss_masked(lp, rows, labels, nullptr);
      },
      [&](const Tensor& x) {
        Var xv = make_leaf(x.clone(), true);
        Var lp = fg::minidgl::log_softmax(ctx, xv);
        Var loss = fg::minidgl::nll_loss(ctx, lp, labels, rows);
        return std::make_pair(loss, xv);
      },
      /*eps=*/1e-2f, /*tol=*/1e-2f);
}

// --- sparse op gradients: fused vs materialize equality + numeric probes ---

class SparseGradTest : public ::testing::TestWithParam<const char*> {
 protected:
  Graph g_{fg::graph::gen_uniform(60, 4.0, 20)};
  Tensor x0_ = Tensor::randn({60, 6}, 21);
  Tensor w_ = projection({60, 6});
};

TEST_P(SparseGradTest, SpmmCopyUNumericGradient) {
  const std::string reduce = GetParam();
  ExecContext ctx;
  check_gradient(
      x0_,
      [&](const Tensor& x) {
        ExecContext c2;
        Var xv = make_leaf(x.clone(), false);
        Var y = fg::minidgl::spmm_copy_u(c2, g_, xv, reduce);
        return weighted_sum(y->value(), w_);
      },
      [&](const Tensor& x) {
        Var xv = make_leaf(x.clone(), true);
        Var y = fg::minidgl::spmm_copy_u(ctx, g_, xv, reduce);
        return std::make_pair(project_to_scalar(ctx, y, w_), xv);
      });
}

TEST_P(SparseGradTest, FusedAndMaterializeGradientsAgree) {
  const std::string reduce = GetParam();
  Tensor grads[2];
  for (int b = 0; b < 2; ++b) {
    ExecContext ctx;
    ctx.backend = b == 0 ? fg::minidgl::SparseBackend::kFused
                         : fg::minidgl::SparseBackend::kMaterialize;
    Var xv = make_leaf(x0_.clone(), true);
    Var y = fg::minidgl::spmm_copy_u(ctx, g_, xv, reduce);
    Var loss = project_to_scalar(ctx, y, w_);
    backward(loss);
    grads[b] = xv->grad().clone();
  }
  EXPECT_LT(fg::tensor::max_abs_diff(grads[0], grads[1]), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Reducers, SparseGradTest,
                         ::testing::Values("sum", "mean", "max"));

TEST(Autograd, SpmmUMulEGradients) {
  Graph g(fg::graph::gen_uniform(40, 3.0, 22));
  const Tensor x0 = Tensor::randn({40, 5}, 23);
  Tensor e0 = Tensor::randn({g.num_edges()}, 24);
  const Tensor w = projection({40, 5});

  for (auto backend : {fg::minidgl::SparseBackend::kFused,
                       fg::minidgl::SparseBackend::kMaterialize}) {
    ExecContext ctx;
    ctx.backend = backend;
    // Gradient w.r.t. x.
    check_gradient(
        x0,
        [&](const Tensor& x) {
          ExecContext c2;
          c2.backend = backend;
          Var xv = make_leaf(x.clone(), false);
          Var ev = make_leaf(e0.clone(), false);
          Var y = fg::minidgl::spmm_u_mul_e(c2, g, xv, ev);
          return weighted_sum(y->value(), w);
        },
        [&](const Tensor& x) {
          Var xv = make_leaf(x.clone(), true);
          Var ev = make_leaf(e0.clone(), false);
          Var y = fg::minidgl::spmm_u_mul_e(ctx, g, xv, ev);
          return std::make_pair(project_to_scalar(ctx, y, w), xv);
        });
    // Gradient w.r.t. the edge weights (the SDDMM-shaped gradient).
    check_gradient(
        e0,
        [&](const Tensor& e) {
          ExecContext c2;
          c2.backend = backend;
          Var xv = make_leaf(x0.clone(), false);
          Var ev = make_leaf(e.clone(), false);
          Var y = fg::minidgl::spmm_u_mul_e(c2, g, xv, ev);
          return weighted_sum(y->value(), w);
        },
        [&](const Tensor& e) {
          Var xv = make_leaf(x0.clone(), false);
          Var ev = make_leaf(e.clone(), true);
          Var y = fg::minidgl::spmm_u_mul_e(ctx, g, xv, ev);
          return std::make_pair(project_to_scalar(ctx, y, w), ev);
        });
  }
}

TEST(Autograd, SddmmDotGradient) {
  Graph g(fg::graph::gen_uniform(30, 3.0, 25));
  const Tensor x0 = Tensor::randn({30, 4}, 26);
  const Tensor w = projection({g.num_edges()});

  for (auto backend : {fg::minidgl::SparseBackend::kFused,
                       fg::minidgl::SparseBackend::kMaterialize}) {
    ExecContext ctx;
    ctx.backend = backend;
    check_gradient(
        x0,
        [&](const Tensor& x) {
          ExecContext c2;
          c2.backend = backend;
          Var xv = make_leaf(x.clone(), false);
          Var y = fg::minidgl::sddmm_dot(c2, g, xv);
          return weighted_sum(y->value(), w);
        },
        [&](const Tensor& x) {
          Var xv = make_leaf(x.clone(), true);
          Var y = fg::minidgl::sddmm_dot(ctx, g, xv);
          return std::make_pair(project_to_scalar(ctx, y, w), xv);
        });
  }
}

TEST(Autograd, EdgeSoftmaxGradientAndNormalization) {
  Graph g(fg::graph::gen_uniform(25, 4.0, 27));
  const Tensor l0 = Tensor::randn({g.num_edges()}, 28);
  const Tensor w = projection({g.num_edges()});
  ExecContext ctx;

  // Property: per-destination alpha sums to 1.
  Var lv = make_leaf(l0.clone(), true);
  Var alpha = fg::minidgl::edge_softmax(ctx, g, lv);
  const auto& in = g.in_csr();
  for (fg::graph::vid_t v = 0; v < in.num_rows; ++v) {
    if (in.degree(v) == 0) continue;
    float sum = 0;
    for (std::int64_t i = in.indptr[v]; i < in.indptr[v + 1]; ++i)
      sum += alpha->value().at(in.edge_ids[static_cast<std::size_t>(i)]);
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }

  check_gradient(
      l0,
      [&](const Tensor& l) {
        ExecContext c2;
        Var lv2 = make_leaf(l.clone(), false);
        Var a = fg::minidgl::edge_softmax(c2, g, lv2);
        return weighted_sum(a->value(), w);
      },
      [&](const Tensor& l) {
        Var lv2 = make_leaf(l.clone(), true);
        Var a = fg::minidgl::edge_softmax(ctx, g, lv2);
        return std::make_pair(project_to_scalar(ctx, a, w), lv2);
      },
      /*eps=*/5e-3f, /*tol=*/1e-2f);
}

TEST(Autograd, GatAttentionNumericGradient) {
  // Finite-difference gradcheck through the WHOLE fused pipeline: logits ->
  // softmax -> weighted aggregation, against the fused op's analytic
  // backward (three u_mul_e SpMMs + an SDDMM dot + the fused softmax
  // backward, the Sec. II-A duality).
  Graph g(fg::graph::gen_uniform(30, 3.0, 57));
  const Tensor z0 = Tensor::randn({30, 5}, 58);
  const Tensor w = projection({30, 5});
  const float s = 1.0f / std::sqrt(5.0f);
  ExecContext ctx;
  check_gradient(
      z0,
      [&](const Tensor& z) {
        ExecContext c2;
        Var zv = make_leaf(z.clone(), false);
        Var y = fg::minidgl::gat_attention(c2, g, zv, s);
        return weighted_sum(y->value(), w);
      },
      [&](const Tensor& z) {
        Var zv = make_leaf(z.clone(), true);
        Var y = fg::minidgl::gat_attention(ctx, g, zv, s);
        return std::make_pair(project_to_scalar(ctx, y, w), zv);
      },
      /*eps=*/5e-3f, /*tol=*/1e-2f);
}

TEST(Autograd, GatAttentionAgreesWithComposedChain) {
  // The fused op and the composed sddmm_dot -> scale -> edge_softmax ->
  // spmm_u_mul_e chain compute the same function: forward values and z
  // gradients must coincide.
  Graph g(fg::graph::gen_uniform(40, 4.0, 59));
  const Tensor z0 = Tensor::randn({40, 6}, 60);
  const Tensor w = projection({40, 6});
  const float s = 1.0f / std::sqrt(6.0f);
  Tensor vals[2], grads[2];
  for (int fused = 0; fused < 2; ++fused) {
    ExecContext ctx;
    Var zv = make_leaf(z0.clone(), true);
    Var y;
    if (fused == 1) {
      y = fg::minidgl::gat_attention(ctx, g, zv, s);
    } else {
      Var logits =
          fg::minidgl::scale(ctx, fg::minidgl::sddmm_dot(ctx, g, zv), s);
      Var alpha = fg::minidgl::edge_softmax(ctx, g, logits);
      y = fg::minidgl::spmm_u_mul_e(ctx, g, zv, alpha);
    }
    vals[fused] = y->value().clone();
    backward(project_to_scalar(ctx, y, w));
    grads[fused] = zv->grad().clone();
  }
  EXPECT_LT(fg::tensor::max_abs_diff(vals[0], vals[1]), 1e-5f);
  EXPECT_LT(fg::tensor::max_abs_diff(grads[0], grads[1]), 1e-4f);
}

TEST(Autograd, FusedGatPathMaterializesNoMessageBytes) {
  // The acceptance assertion: forward AND backward of the fused GAT path
  // book zero |E| x d message bytes (the paper's GAT-OOM story resolved).
  Graph g(fg::graph::gen_uniform(50, 4.0, 61));
  const Tensor z0 = Tensor::randn({50, 8}, 62);
  const Tensor w = projection({50, 8});
  ExecContext ctx;
  Var zv = make_leaf(z0.clone(), true);
  Var y = fg::minidgl::gat_attention(ctx, g, zv, 0.5f);
  backward(project_to_scalar(ctx, y, w));
  ASSERT_TRUE(zv->has_grad());
  EXPECT_EQ(ctx.materialized_bytes, 0.0);
}

TEST(Autograd, FusedAndMaterializeForwardValuesAgree) {
  Graph g(fg::graph::gen_uniform(80, 5.0, 29));
  const Tensor x0 = Tensor::randn({80, 8}, 30);
  for (const char* reduce : {"sum", "mean", "max"}) {
    Tensor vals[2];
    for (int b = 0; b < 2; ++b) {
      ExecContext ctx;
      ctx.backend = b == 0 ? fg::minidgl::SparseBackend::kFused
                           : fg::minidgl::SparseBackend::kMaterialize;
      Var xv = make_leaf(x0.clone(), false);
      vals[b] = fg::minidgl::spmm_copy_u(ctx, g, xv, reduce)->value().clone();
    }
    EXPECT_LT(fg::tensor::max_abs_diff(vals[0], vals[1]), 1e-4f) << reduce;
  }
}

// --- DAG-derived backward: whole-model numeric gradchecks -------------------
//
// Every model forward is now ONE recorded lazy graph whose backward is
// derived by walking the DAG (lazy_graph.cpp's vjp switch) — there are no
// hand-written per-op tape closures left. These checks pin the derived
// backward against central differences through the full 2-layer model, for
// both the fused and the eager execution plan.

namespace {

void check_model_dag_gradient(const std::string& kind, bool fuse) {
  Graph g(fg::graph::gen_uniform(24, 3.0, 37));
  const std::int64_t d = 6, hidden = 5, classes = 3;
  const Tensor x0 = Tensor::randn({g.num_vertices(), d}, 38, 0.5f);
  std::vector<std::int32_t> labels(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<std::int32_t>(i % classes);
  std::vector<std::int64_t> rows;
  for (std::int64_t r = 0; r < g.num_vertices(); r += 3) rows.push_back(r);
  fg::minidgl::Model model(kind, d, hidden, classes, 40);

  // The backward runs after `build` returns, and the recorded graph's
  // backward reads the ExecContext — so the context must outlive the
  // check, not live on the lambda's stack.
  ExecContext bctx;
  bctx.fuse_epilogues = fuse;

  check_gradient(
      x0,
      [&](const Tensor& x) {
        ExecContext ctx;
        ctx.fuse_epilogues = fuse;
        Var xv = make_leaf(x.clone(), false);
        return fg::minidgl::nll_loss(ctx, model.forward(ctx, g, xv), labels,
                                     rows)
            ->value()
            .at(0);
      },
      [&](const Tensor& x) {
        Var xv = make_leaf(x.clone(), true);
        Var loss = fg::minidgl::nll_loss(bctx, model.forward(bctx, g, xv),
                                         labels, rows);
        return std::make_pair(loss, xv);
      });
}

}  // namespace

TEST(DagBackward, GcnModelNumericGradient) {
  check_model_dag_gradient("gcn", true);
  check_model_dag_gradient("gcn", false);
}

TEST(DagBackward, SageMeanModelNumericGradient) {
  check_model_dag_gradient("sage-mean", true);
  check_model_dag_gradient("sage-mean", false);
}

TEST(DagBackward, SageMaxModelNumericGradient) {
  check_model_dag_gradient("sage-max", true);
  check_model_dag_gradient("sage-max", false);
}

TEST(DagBackward, GatModelNumericGradient) {
  check_model_dag_gradient("gat", true);
  check_model_dag_gradient("gat", false);
}

TEST(DagBackward, GcnParameterNumericGradient) {
  // Gradcheck a PARAMETER leaf (the first layer's weight) through the
  // fused plan: the weight feeds a matmul whose consumer chain folds into
  // the SpMM epilogue, so this exercises the matmul vjp against a fused
  // anchor's materialized output.
  Graph g(fg::graph::gen_uniform(20, 3.0, 43));
  const std::int64_t d = 5, hidden = 4, classes = 3;
  const Tensor x0 = Tensor::randn({g.num_vertices(), d}, 44, 0.5f);
  std::vector<std::int32_t> labels(static_cast<std::size_t>(g.num_vertices()),
                                   1);
  const std::vector<std::int64_t> rows = {0, 4, 8, 12, 16};
  fg::minidgl::Model model("gcn", d, hidden, classes, 45);
  Var wvar = model.parameters()[0];
  const Tensor w0 = wvar->value().clone();

  ExecContext ctx;  // outlives the deferred backward
  auto run_loss = [&](const Tensor& w) {
    std::memcpy(wvar->mutable_value().data(), w.data(),
                static_cast<std::size_t>(w.numel()) * sizeof(float));
    Var xv = make_leaf(x0.clone(), false);
    return fg::minidgl::nll_loss(ctx, model.forward(ctx, g, xv), labels, rows);
  };

  check_gradient(
      w0, [&](const Tensor& w) { return run_loss(w)->value().at(0); },
      [&](const Tensor& w) {
        Var loss = run_loss(w);
        return std::make_pair(loss, wvar);
      });
}

TEST(Autograd, MaterializeBackendBooksMessageMemory) {
  Graph g(fg::graph::gen_uniform(50, 4.0, 31));
  const Tensor x0 = Tensor::randn({50, 16}, 32);

  ExecContext fused;
  Var x1 = make_leaf(x0.clone(), false);
  (void)fg::minidgl::spmm_copy_u(fused, g, x1, "sum");
  EXPECT_EQ(fused.materialized_bytes, 0.0);

  ExecContext mat;
  mat.backend = fg::minidgl::SparseBackend::kMaterialize;
  Var x2 = make_leaf(x0.clone(), false);
  (void)fg::minidgl::spmm_copy_u(mat, g, x2, "sum");
  EXPECT_DOUBLE_EQ(mat.materialized_bytes,
                   static_cast<double>(g.num_edges()) * 16 * 4);
}
