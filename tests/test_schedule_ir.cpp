// Composable loop-nest Schedule-IR (core/schedule_ir.hpp): builder +
// describe(), legality diagnostics (string-returning validator so the error
// TEXT is testable), lowering semantics (empty program == flat fast path,
// programs authoritative over flat knobs), program hashing, and the tuner
// seeding contract — the first candidate / first seed point of both widened
// tuners reproduces the default schedule bit-for-bit.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/schedule_ir.hpp"
#include "core/smart_tuner.hpp"
#include "core/spmm.hpp"
#include "core/tuner.hpp"
#include "graph/generators.hpp"
#include "tensor/tensor.hpp"

namespace fg = featgraph;
using fg::core::CpuSddmmSchedule;
using fg::core::CpuSpmmSchedule;
using fg::core::LoadBalance;
using fg::core::LoweredSpmmPlan;
using fg::core::ScheduleIr;
using fg::simd::Isa;

namespace {

constexpr std::int64_t kRows = 1000;
constexpr std::int64_t kD = 64;

std::string err_spmm(const ScheduleIr& ir, std::int64_t rows = kRows,
                     std::int64_t d = kD, Isa isa = Isa::kScalar) {
  return fg::core::validate_spmm_ir(ir, rows, d, isa);
}

}  // namespace

TEST(ScheduleIr, BuilderKeepsOrderAndDescribes) {
  const ScheduleIr ir = ScheduleIr()
                            .chunk(256)
                            .tile(32)
                            .unroll(4)
                            .split_nnz(LoadBalance::kStaticRows);
  ASSERT_EQ(ir.transforms().size(), 4u);
  EXPECT_EQ(ir.describe(), "chunk(256).tile(32).unroll(4).split_nnz(rows)");
  EXPECT_EQ(ScheduleIr().partition(4).override_partition(1, 16).describe(),
            "partition(4).override_partition(1, 16)");
  EXPECT_TRUE(ScheduleIr().empty());
  EXPECT_EQ(ScheduleIr().describe(), "");
}

TEST(ScheduleIr, LegalProgramsValidate) {
  EXPECT_EQ(err_spmm(ScheduleIr()), "");
  EXPECT_EQ(err_spmm(ScheduleIr().chunk(kRows)), "");
  EXPECT_EQ(err_spmm(ScheduleIr().tile(32).unroll(4)), "");
  EXPECT_EQ(err_spmm(ScheduleIr().partition(8).tile(16).unroll(2).chunk(64)),
            "");
  EXPECT_EQ(err_spmm(ScheduleIr()
                         .partition(4)
                         .tile(32)
                         .override_partition(0, 16)
                         .override_partition(3, 64)),
            "");
  // Scalar backend: any width in [1, d] is a multiple of its 1-wide lanes.
  EXPECT_EQ(err_spmm(ScheduleIr().tile(13)), "");
}

TEST(ScheduleIr, IllegalProgramsReportClearErrors) {
  // Duplicate transforms are an error, not last-wins.
  EXPECT_NE(err_spmm(ScheduleIr().tile(16).tile(32))
                .find("duplicate transform: tile"),
            std::string::npos);
  EXPECT_NE(err_spmm(ScheduleIr().chunk(8).chunk(16))
                .find("duplicate transform: chunk"),
            std::string::npos);
  // Chunk past the row count.
  EXPECT_NE(
      err_spmm(ScheduleIr().chunk(kRows + 1)).find("exceeds row count"),
      std::string::npos);
  EXPECT_NE(err_spmm(ScheduleIr().chunk(0)).find("must be >= 1"),
            std::string::npos);
  // Tile wider than the feature vector, or misaligned for the backend.
  EXPECT_NE(err_spmm(ScheduleIr().tile(kD + 8)).find("exceeds feature width"),
            std::string::npos);
  if (fg::simd::isa_supported(Isa::kAvx2)) {
    EXPECT_NE(err_spmm(ScheduleIr().tile(12), kRows, kD, Isa::kAvx2)
                  .find("not a multiple of the 8-lane vector width"),
              std::string::npos);
  }
  if (fg::simd::isa_supported(Isa::kAvx512)) {
    // 8 is legal on AVX-512 (the narrow-span reroute executes it 8-wide),
    // but 24 fills one-and-a-half 512-bit vectors — rejected.
    EXPECT_EQ(err_spmm(ScheduleIr().tile(8), kRows, kD, Isa::kAvx512), "");
    EXPECT_NE(err_spmm(ScheduleIr().tile(24), kRows, kD, Isa::kAvx512)
                  .find("not a multiple of the 16-lane vector width"),
              std::string::npos);
  }
  // Unroll needs a tile and a sane factor.
  EXPECT_NE(err_spmm(ScheduleIr().unroll(4))
                .find("unroll requires a feature tile"),
            std::string::npos);
  EXPECT_NE(err_spmm(ScheduleIr().tile(16).unroll(9))
                .find("unroll factor must be in [1, 8]"),
            std::string::npos);
  // Override legality: needs partition, in-range index, no duplicates.
  EXPECT_NE(err_spmm(ScheduleIr().override_partition(0, 16))
                .find("requires a partition transform"),
            std::string::npos);
  EXPECT_NE(err_spmm(ScheduleIr().partition(2).override_partition(2, 16))
                .find("out of range for partition(2)"),
            std::string::npos);
  EXPECT_NE(err_spmm(ScheduleIr()
                         .partition(4)
                         .override_partition(1, 16)
                         .override_partition(1, 32))
                .find("duplicate transform: override_partition"),
            std::string::npos);
}

TEST(ScheduleIr, SddmmValidatorAcceptsOnlyTileAndChunk) {
  const std::int64_t edges = 500, len = 32;
  EXPECT_EQ(fg::core::validate_sddmm_ir(ScheduleIr().tile(5).chunk(100),
                                        edges, len, Isa::kScalar),
            "");
  // The reduce axis reassociates (tolerance-class dot) — no lane alignment.
  EXPECT_EQ(fg::core::validate_sddmm_ir(ScheduleIr().tile(13), edges, len,
                                        Isa::kAvx512),
            "");
  EXPECT_NE(fg::core::validate_sddmm_ir(ScheduleIr().tile(len + 1), edges,
                                        len, Isa::kScalar)
                .find("exceeds reduce length"),
            std::string::npos);
  EXPECT_NE(fg::core::validate_sddmm_ir(ScheduleIr().chunk(edges + 1), edges,
                                        len, Isa::kScalar)
                .find("exceeds edge count"),
            std::string::npos);
  EXPECT_NE(fg::core::validate_sddmm_ir(ScheduleIr().unroll(2), edges, len,
                                        Isa::kScalar)
                .find("not a legal SDDMM transform"),
            std::string::npos);
  EXPECT_NE(fg::core::validate_sddmm_ir(ScheduleIr().partition(4), edges, len,
                                        Isa::kScalar)
                .find("not a legal SDDMM transform"),
            std::string::npos);
}

TEST(ScheduleIr, EmptyProgramLowersToFlatFastPath) {
  // Null IR and empty IR both pass the flat knobs through untouched and
  // stay on the pre-IR fast path.
  CpuSpmmSchedule flat;
  flat.feat_tile = 32;
  flat.num_partitions = 4;
  flat.num_threads = 3;
  flat.load_balance = LoadBalance::kStaticRows;
  for (const bool attach_empty : {false, true}) {
    CpuSpmmSchedule s = flat;
    if (attach_empty) s.ir = std::make_shared<const ScheduleIr>();
    const LoweredSpmmPlan plan =
        fg::core::lower_spmm_schedule(s, kRows, kD, Isa::kScalar);
    EXPECT_FALSE(plan.needs_interpreter());
    EXPECT_EQ(plan.feat_tile, 32);
    EXPECT_EQ(plan.num_partitions, 4);
    EXPECT_EQ(plan.num_threads, 3);
    EXPECT_EQ(plan.load_balance, LoadBalance::kStaticRows);
    EXPECT_FALSE(plan.register_block);
  }
}

TEST(ScheduleIr, ProgramIsAuthoritativeOverFlatKnobs) {
  CpuSpmmSchedule s;
  s.feat_tile = 128;  // ignored: the program decides
  s.num_partitions = 16;
  s.num_threads = 2;
  s.ir = std::make_shared<const ScheduleIr>(ScheduleIr()
                                                .chunk(256)
                                                .tile(32)
                                                .unroll(4)
                                                .partition(2)
                                                .split_nnz(
                                                    LoadBalance::kStaticRows));
  const LoweredSpmmPlan plan =
      fg::core::lower_spmm_schedule(s, kRows, kD, Isa::kScalar);
  EXPECT_TRUE(plan.needs_interpreter());
  EXPECT_EQ(plan.row_chunk, 256);
  EXPECT_EQ(plan.feat_tile, 32);
  EXPECT_EQ(plan.unroll, 4);
  EXPECT_TRUE(plan.register_block);
  EXPECT_EQ(plan.num_partitions, 2);
  EXPECT_EQ(plan.load_balance, LoadBalance::kStaticRows);
  EXPECT_EQ(plan.num_threads, 2);  // the one flat knob programs never own
  EXPECT_EQ(fg::core::schedule_num_partitions(s), 2);

  // Per-partition overrides resolve through tile_for / max_tile.
  CpuSpmmSchedule o;
  o.ir = std::make_shared<const ScheduleIr>(
      ScheduleIr().partition(4).tile(16).override_partition(2, 64));
  const LoweredSpmmPlan oplan =
      fg::core::lower_spmm_schedule(o, kRows, kD, Isa::kScalar);
  EXPECT_TRUE(oplan.needs_interpreter());
  EXPECT_EQ(oplan.tile_for(kD, 0), 16);
  EXPECT_EQ(oplan.tile_for(kD, 2), 64);
  EXPECT_EQ(oplan.tile_for(kD, -1), 16);
  EXPECT_EQ(oplan.max_tile(kD), 64);
}

TEST(ScheduleIr, ProgramHashTracksProgramNotThreads) {
  // Flat knobs and their IR spelling hash identically (the thin-view
  // contract); distinct programs hash apart; num_threads never matters.
  CpuSpmmSchedule flat;
  flat.feat_tile = 32;
  flat.num_partitions = 4;
  CpuSpmmSchedule spelled;
  spelled.ir = std::make_shared<const ScheduleIr>(
      ScheduleIr().partition(4).tile(32));
  EXPECT_EQ(fg::core::schedule_program_hash(flat),
            fg::core::schedule_program_hash(spelled));

  CpuSpmmSchedule a, b;
  a.num_threads = 1;
  b.num_threads = 8;
  EXPECT_EQ(fg::core::schedule_program_hash(a),
            fg::core::schedule_program_hash(b));

  CpuSpmmSchedule blocked = a;
  blocked.ir = std::make_shared<const ScheduleIr>(
      ScheduleIr().tile(32).unroll(4));
  EXPECT_NE(fg::core::schedule_program_hash(a),
            fg::core::schedule_program_hash(blocked));
  CpuSpmmSchedule blocked2 = a;
  blocked2.ir = std::make_shared<const ScheduleIr>(
      ScheduleIr().tile(32).unroll(2));
  EXPECT_NE(fg::core::schedule_program_hash(blocked),
            fg::core::schedule_program_hash(blocked2));
}

TEST(ScheduleIr, GridTunerFirstCandidateIsTheDefaultSchedule) {
  const auto grid = fg::core::default_spmm_ir_candidates(kD, kRows, 1);
  ASSERT_GT(grid.size(), 4u);
  // Candidate #0: no program — lowers to the flat fast path, i.e. the
  // untuned default schedule bit-for-bit.
  EXPECT_EQ(grid[0].ir, nullptr);
  EXPECT_EQ(grid[0].feat_tile, 0);
  EXPECT_EQ(grid[0].num_partitions, 1);
  // Every other candidate carries a LEGAL program for the active backend.
  const Isa isa = fg::simd::active_isa();
  bool any_blocked = false;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    ASSERT_NE(grid[i].ir, nullptr) << "candidate " << i;
    EXPECT_EQ(fg::core::validate_spmm_ir(*grid[i].ir, kRows, kD, isa), "")
        << "candidate " << i << ": " << grid[i].ir->describe();
    const auto plan = fg::core::lower_spmm_schedule(grid[i], kRows, kD, isa);
    any_blocked = any_blocked || plan.register_block;
  }
  EXPECT_TRUE(any_blocked);  // the grid must reach the register-blocked path
}

TEST(ScheduleIr, SmartTunerFirstSeedIsTheDefaultSchedule) {
  std::vector<CpuSpmmSchedule> measured;
  fg::core::SmartTuneOptions opts;
  opts.max_trials = 6;
  const auto result = fg::core::smart_tune_spmm_ir(
      kD, kRows, 1,
      [&](const CpuSpmmSchedule& s) {
        measured.push_back(s);
        return 1.0;  // flat cost surface: the seed point stays the winner
      },
      opts);
  ASSERT_FALSE(measured.empty());
  EXPECT_LE(result.trials_used, opts.max_trials);
  // First measurement = the empty program = the default schedule.
  EXPECT_EQ(measured[0].ir, nullptr);
  EXPECT_EQ(fg::core::schedule_program_hash(measured[0]),
            fg::core::schedule_program_hash(CpuSpmmSchedule{}));
  // Every point the climber visits is a legal program.
  const Isa isa = fg::simd::active_isa();
  for (const auto& s : measured) {
    if (s.ir != nullptr) {
      EXPECT_EQ(fg::core::validate_spmm_ir(*s.ir, kRows, kD, isa), "")
          << s.ir->describe();
    }
  }
}

TEST(ScheduleIr, IllegalProgramAtLaunchAborts) {
  // Lowering FG_CHECKs the validator: API misuse dies with the message.
  const auto coo = fg::graph::gen_rmat(64, 4.0, 3);
  const auto csr = fg::graph::coo_to_in_csr(coo);
  const fg::tensor::Tensor x = fg::tensor::Tensor::randn({csr.num_cols, 8}, 1);
  CpuSpmmSchedule s;
  s.ir = std::make_shared<const ScheduleIr>(ScheduleIr().unroll(4));
  fg::core::SpmmOperands ops;
  ops.src_feat = &x;
  EXPECT_DEATH((void)fg::core::spmm(csr, "copy_u", "sum", s, ops),
               "unroll requires a feature tile");
}
