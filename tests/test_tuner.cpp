#include <gtest/gtest.h>

#include "core/smart_tuner.hpp"
#include "core/tuner.hpp"
#include "graph/generators.hpp"

namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::graph::Csr;
using fg::tensor::Tensor;

namespace {

struct Fixture {
  fg::graph::Coo coo = fg::graph::gen_uniform(800, 16.0, 1000);
  Csr in_csr = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({800, 32}, 1001);
};

}  // namespace

TEST(Tuner, DefaultGridCoversPartitionTileAndBalanceAxes) {
  const auto grid = fg::core::default_spmm_candidates(128, 2);
  EXPECT_GE(grid.size(), 20u);
  bool has_unpartitioned = false, has_partitioned = false;
  bool has_untiled = false, has_tiled = false;
  bool has_static = false, has_nnz = false;
  for (const auto& s : grid) {
    has_unpartitioned |= s.num_partitions == 1;
    has_partitioned |= s.num_partitions > 1;
    has_untiled |= s.feat_tile == 0;
    has_tiled |= s.feat_tile > 0;
    has_static |= s.load_balance == fg::core::LoadBalance::kStaticRows;
    has_nnz |= s.load_balance == fg::core::LoadBalance::kNnzBalanced;
    EXPECT_EQ(s.num_threads, 2);
    EXPECT_LE(s.feat_tile, 128);
  }
  EXPECT_TRUE(has_unpartitioned && has_partitioned && has_untiled && has_tiled);
  EXPECT_TRUE(has_static && has_nnz);
}

TEST(Tuner, SingleThreadGridSkipsRedundantBalanceAxis) {
  // At one thread both row-split policies run the identical sweep; the grid
  // should not double itself for nothing.
  for (const auto& s : fg::core::default_spmm_candidates(128, 1))
    EXPECT_EQ(s.load_balance, fg::core::LoadBalance::kNnzBalanced);
}

TEST(Tuner, GridRespectsSmallFeatureLengths) {
  for (const auto& s : fg::core::default_spmm_candidates(8, 1))
    EXPECT_LE(s.feat_tile, 8);
}

TEST(Tuner, ReturnsBestTrial) {
  Fixture f;
  std::vector<CpuSpmmSchedule> cands;
  for (int parts : {1, 4}) {
    CpuSpmmSchedule s;
    s.num_partitions = parts;
    cands.push_back(s);
  }
  const auto result = fg::core::tune_spmm(f.in_csr, "copy_u", "sum",
                                          {&f.x, nullptr, nullptr}, cands);
  ASSERT_EQ(result.trials.size(), 2u);
  double best = std::min(result.trials[0].seconds, result.trials[1].seconds);
  EXPECT_DOUBLE_EQ(result.best_seconds, best);
  EXPECT_GT(result.best_seconds, 0.0);
}

TEST(Tuner, CachedScheduleIsStable) {
  Fixture f;
  const auto s1 = fg::core::tuned_spmm_schedule(f.in_csr, "copy_u", "sum",
                                                {&f.x, nullptr, nullptr}, 1);
  const auto s2 = fg::core::tuned_spmm_schedule(f.in_csr, "copy_u", "sum",
                                                {&f.x, nullptr, nullptr}, 1);
  EXPECT_EQ(s1.num_partitions, s2.num_partitions);
  EXPECT_EQ(s1.feat_tile, s2.feat_tile);
  EXPECT_EQ(s1.num_threads, 1);
}

TEST(Tuner, HeuristicPartitionsGrowWithGraphSize) {
  Fixture f;
  // Tiny source set: one partition suffices.
  const auto small = fg::core::heuristic_spmm_schedule(f.in_csr, 64, 1);
  EXPECT_EQ(small.num_partitions, 1);

  // Fake a huge column count by constructing a wide CSR header.
  Csr wide;
  wide.num_rows = 10;
  wide.num_cols = 4 * 1000 * 1000;
  wide.indptr.assign(11, 0);
  const auto big = fg::core::heuristic_spmm_schedule(wide, 512, 1);
  EXPECT_GT(big.num_partitions, 1);
}

TEST(Tuner, AttentionAxisTunesOverTheSameGrid) {
  // The fused attention kernel joins the grid tuner: every trial runs the
  // real kernel, the winner is the fastest trial, and the cached schedule is
  // stable across queries (keyed separately from the plain SpMM entries).
  Fixture f;
  fg::core::AttentionOperands ops;
  ops.src_feat = &f.x;
  std::vector<CpuSpmmSchedule> cands;
  for (int parts : {1, 4}) {
    CpuSpmmSchedule s;
    s.num_partitions = parts;
    cands.push_back(s);
  }
  const auto result = fg::core::tune_attention(f.in_csr, "copy_u", ops, cands);
  ASSERT_EQ(result.trials.size(), 2u);
  EXPECT_DOUBLE_EQ(
      result.best_seconds,
      std::min(result.trials[0].seconds, result.trials[1].seconds));
  EXPECT_GT(result.best_seconds, 0.0);

  const auto s1 = fg::core::tuned_attention_schedule(f.in_csr, "copy_u", ops, 1);
  const auto s2 = fg::core::tuned_attention_schedule(f.in_csr, "copy_u", ops, 1);
  EXPECT_EQ(s1.num_partitions, s2.num_partitions);
  EXPECT_EQ(s1.feat_tile, s2.feat_tile);
  EXPECT_EQ(s1.num_threads, 1);
}

TEST(Tuner, SmartTunerClimbsTheAttentionAxis) {
  // The budgeted hill climber is kernel-agnostic through MeasureFn;
  // attention_measure_fn plugs the fused kernel in. The search must respect
  // its budget and return a measured (finite, positive) winner.
  Fixture f;
  fg::core::AttentionOperands ops;
  ops.src_feat = &f.x;
  const auto measure = fg::core::attention_measure_fn(f.in_csr, "copy_u", ops);
  fg::core::SmartTuneOptions opts;
  opts.max_trials = 6;
  const auto result = fg::core::smart_tune_spmm(f.x.row_size(), 1, measure, opts);
  EXPECT_LE(result.trials_used, 6);
  EXPECT_GE(result.trials_used, 1);
  EXPECT_GT(result.best_seconds, 0.0);
  EXPECT_GE(result.best.num_partitions, 1);
}

TEST(Tuner, TransfersAcrossFeatureLengthByCacheKey) {
  // Different feature lengths tune independently (Fig. 14: optimal feature
  // partitions scale with feature length).
  Fixture f;
  Tensor x64 = Tensor::randn({800, 64}, 1002);
  const auto a = fg::core::tuned_spmm_schedule(f.in_csr, "copy_u", "sum",
                                               {&f.x, nullptr, nullptr}, 1);
  const auto b = fg::core::tuned_spmm_schedule(f.in_csr, "copy_u", "sum",
                                               {&x64, nullptr, nullptr}, 1);
  // Keys differ, so both entries exist; re-querying returns each unchanged.
  const auto a2 = fg::core::tuned_spmm_schedule(f.in_csr, "copy_u", "sum",
                                                {&f.x, nullptr, nullptr}, 1);
  EXPECT_EQ(a.num_partitions, a2.num_partitions);
  EXPECT_EQ(a.feat_tile, a2.feat_tile);
  (void)b;
}
