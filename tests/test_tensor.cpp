#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace fg = featgraph;
using fg::tensor::Tensor;

TEST(Tensor, ShapeAndSizeBookkeeping) {
  Tensor t({3, 4});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.numel(), 12);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.row_size(), 4);
  Tensor v({5});
  EXPECT_EQ(v.rows(), 1);
  EXPECT_EQ(v.row_size(), 5);
  Tensor r3({2, 3, 4});
  EXPECT_EQ(r3.rows(), 2);
  EXPECT_EQ(r3.row_size(), 12);
}

TEST(Tensor, ZerosAndFullInitialize) {
  Tensor z = Tensor::zeros({2, 2});
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(z.at(i), 0.0f);
  Tensor f = Tensor::full({2, 2}, 7.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(f.at(i), 7.5f);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Tensor a = Tensor::randn({4, 4}, 42);
  Tensor b = Tensor::randn({4, 4}, 42);
  Tensor c = Tensor::randn({4, 4}, 43);
  EXPECT_EQ(fg::tensor::max_abs_diff(a, b), 0.0f);
  EXPECT_GT(fg::tensor::max_abs_diff(a, c), 0.0f);
}

TEST(Tensor, CloneIsDeep) {
  Tensor a = Tensor::full({2, 2}, 1.0f);
  Tensor b = a.clone();
  b.at(0) = 9.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor a = Tensor::zeros({2, 6});
  Tensor b = a.reshape({3, 4});
  b.at(0) = 5.0f;
  EXPECT_EQ(a.at(0), 5.0f);
  EXPECT_EQ(b.rows(), 3);
}

TEST(TensorDeathTest, ReshapeMustPreserveNumel) {
  Tensor a = Tensor::zeros({2, 6});
  EXPECT_DEATH((void)a.reshape({5, 5}), "reshape");
}

TEST(Tensor, RowPointerAddressesRowMajorData) {
  Tensor a({2, 3});
  for (std::int64_t i = 0; i < 6; ++i) a.at(i) = static_cast<float>(i);
  EXPECT_EQ(a.row(1)[0], 3.0f);
  EXPECT_EQ(a.at(1, 2), 5.0f);
}

// --- ops ---------------------------------------------------------------

namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.shape(0), k = a.shape(1), n = b.shape(1);
  Tensor c = Tensor::zeros({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += a.at(i, p) * b.at(p, j);
      c.at(i, j) = acc;
    }
  return c;
}

}  // namespace

struct MatmulCase {
  std::int64_t m, k, n;
  int threads;
};

class MatmulTest : public ::testing::TestWithParam<MatmulCase> {};

TEST_P(MatmulTest, MatchesNaiveTripleLoop) {
  const auto p = GetParam();
  Tensor a = Tensor::randn({p.m, p.k}, 1);
  Tensor b = Tensor::randn({p.k, p.n}, 2);
  Tensor got = fg::tensor::matmul(a, b, p.threads);
  Tensor want = naive_matmul(a, b);
  EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulTest,
    ::testing::Values(MatmulCase{1, 1, 1, 1}, MatmulCase{3, 5, 7, 1},
                      MatmulCase{16, 16, 16, 1}, MatmulCase{33, 65, 17, 1},
                      MatmulCase{64, 100, 32, 2}, MatmulCase{128, 64, 96, 2},
                      MatmulCase{70, 130, 50, 4}));

TEST(Ops, MatmulTransposedMatchesMatmul) {
  Tensor a = Tensor::randn({20, 30}, 3);
  Tensor b = Tensor::randn({30, 25}, 4);
  Tensor bt = fg::tensor::transpose(b);
  Tensor got = fg::tensor::matmul_transposed(a, bt, 2);
  Tensor want = fg::tensor::matmul(a, b);
  EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-3f);
}

TEST(Ops, ElementwiseAddSubMul) {
  Tensor a = Tensor::full({2, 3}, 4.0f);
  Tensor b = Tensor::full({2, 3}, 2.0f);
  EXPECT_EQ(fg::tensor::add(a, b).at(0), 6.0f);
  EXPECT_EQ(fg::tensor::sub(a, b).at(0), 2.0f);
  EXPECT_EQ(fg::tensor::mul(a, b).at(0), 8.0f);
  EXPECT_EQ(fg::tensor::scale(a, 0.5f).at(0), 2.0f);
}

TEST(Ops, AddBiasBroadcastsAlongRows) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor bias({3});
  bias.at(0) = 1;
  bias.at(1) = 2;
  bias.at(2) = 3;
  Tensor out = fg::tensor::add_bias(a, bias);
  EXPECT_EQ(out.at(0, 0), 1.0f);
  EXPECT_EQ(out.at(1, 2), 3.0f);
}

TEST(Ops, ReluAndBackward) {
  Tensor x({4});
  x.at(0) = -1;
  x.at(1) = 0;
  x.at(2) = 2;
  x.at(3) = -3;
  Tensor y = fg::tensor::relu(x);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(2), 2.0f);
  Tensor dy = Tensor::full({4}, 1.0f);
  Tensor dx = fg::tensor::relu_backward(dy, x);
  EXPECT_EQ(dx.at(0), 0.0f);
  EXPECT_EQ(dx.at(2), 1.0f);
}

TEST(Ops, LeakyReluAndBackward) {
  Tensor x({2});
  x.at(0) = -2;
  x.at(1) = 2;
  Tensor y = fg::tensor::leaky_relu(x, 0.1f);
  EXPECT_FLOAT_EQ(y.at(0), -0.2f);
  EXPECT_FLOAT_EQ(y.at(1), 2.0f);
  Tensor dy = Tensor::full({2}, 3.0f);
  Tensor dx = fg::tensor::leaky_relu_backward(dy, x, 0.1f);
  EXPECT_FLOAT_EQ(dx.at(0), 0.3f);
  EXPECT_FLOAT_EQ(dx.at(1), 3.0f);
}

TEST(Ops, LogSoftmaxRowsSumToOneInProbSpace) {
  Tensor a = Tensor::randn({5, 7}, 9);
  Tensor ls = fg::tensor::log_softmax_rows(a);
  for (std::int64_t i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) sum += std::exp(ls.at(i, j));
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, LogSoftmaxIsShiftInvariant) {
  Tensor a = Tensor::randn({3, 4}, 10);
  Tensor shifted = a.clone();
  for (std::int64_t i = 0; i < shifted.numel(); ++i) shifted.at(i) += 100.0f;
  EXPECT_LT(fg::tensor::max_abs_diff(fg::tensor::log_softmax_rows(a),
                                     fg::tensor::log_softmax_rows(shifted)),
            1e-4f);
}

TEST(Ops, NllLossGradientMatchesFiniteDifference) {
  Tensor logits = Tensor::randn({4, 3}, 11);
  std::vector<std::int64_t> rows = {0, 2, 3};
  std::vector<std::int32_t> labels = {1, 0, 2, 1};

  auto loss_of = [&](const Tensor& lg) {
    Tensor lp = fg::tensor::log_softmax_rows(lg);
    return fg::tensor::nll_loss_masked(lp, rows, labels, nullptr);
  };

  Tensor lp = fg::tensor::log_softmax_rows(logits);
  Tensor grad;
  fg::tensor::nll_loss_masked(lp, rows, labels, &grad);

  const float eps = 1e-2f;
  for (std::int64_t i : {std::int64_t{0}, std::int64_t{5}, std::int64_t{10}}) {
    Tensor plus = logits.clone();
    plus.at(i) += eps;
    Tensor minus = logits.clone();
    minus.at(i) -= eps;
    const float fd = (loss_of(plus) - loss_of(minus)) / (2 * eps);
    EXPECT_NEAR(grad.at(i), fd, 5e-3f) << "at flat index " << i;
  }
}

TEST(Ops, TransposeIsInvolution) {
  Tensor a = Tensor::randn({6, 9}, 12);
  Tensor tt = fg::tensor::transpose(fg::tensor::transpose(a));
  EXPECT_EQ(fg::tensor::max_abs_diff(a, tt), 0.0f);
}

TEST(Ops, SumAddsAllElements) {
  Tensor a = Tensor::full({10, 10}, 0.5f);
  EXPECT_FLOAT_EQ(fg::tensor::sum(a), 50.0f);
}
