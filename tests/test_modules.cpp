// Unit tests for minidgl layers, optimizers and the SBM dataset.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "minidgl/data.hpp"
#include "minidgl/modules.hpp"
#include "minidgl/optim.hpp"

namespace fg = featgraph;
using fg::graph::Graph;
using fg::minidgl::ExecContext;
using fg::minidgl::make_leaf;
using fg::minidgl::Model;
using fg::minidgl::Var;
using fg::tensor::Tensor;

namespace {

Graph test_graph() { return Graph(fg::graph::gen_uniform(50, 4.0, 7)); }

}  // namespace

TEST(Modules, LinearShapesAndBias) {
  ExecContext ctx;
  fg::minidgl::Linear lin(8, 5, 1);
  Var x = make_leaf(Tensor::zeros({10, 8}), false);
  Var y = lin.forward(ctx, x);
  EXPECT_EQ(y->value().shape(0), 10);
  EXPECT_EQ(y->value().shape(1), 5);
  // Zero input -> bias only, and bias initializes to zero.
  for (std::int64_t i = 0; i < y->value().numel(); ++i)
    EXPECT_EQ(y->value().at(i), 0.0f);
  EXPECT_EQ(lin.parameters().size(), 2u);
}

TEST(Modules, GcnLayerShapesAndActivation) {
  ExecContext ctx;
  Graph g = test_graph();
  fg::minidgl::GcnLayer hidden(6, 4, /*final_layer=*/false, 2);
  fg::minidgl::GcnLayer final(6, 4, /*final_layer=*/true, 2);
  Var x = make_leaf(Tensor::randn({50, 6}, 3), false);
  Var h = hidden.forward(ctx, g, x);
  Var f = final.forward(ctx, g, x);
  EXPECT_EQ(h->value().shape(1), 4);
  // Hidden layers apply ReLU: all outputs non-negative.
  for (std::int64_t i = 0; i < h->value().numel(); ++i)
    EXPECT_GE(h->value().at(i), 0.0f);
  // Final layers don't: some negative logits expected.
  bool any_negative = false;
  for (std::int64_t i = 0; i < f->value().numel(); ++i)
    any_negative |= f->value().at(i) < 0.0f;
  EXPECT_TRUE(any_negative);
}

TEST(Modules, SageLayerHasFourParameters) {
  fg::minidgl::SageLayer layer(6, 4, "mean", false, 4);
  EXPECT_EQ(layer.parameters().size(), 4u);  // 2 linears x (W, b)
}

TEST(ModulesDeathTest, SageRejectsUnknownAggregator) {
  EXPECT_DEATH(fg::minidgl::SageLayer(4, 4, "median", false, 1), "aggregator");
}

TEST(Modules, GatLayerOutputsFiniteValues) {
  ExecContext ctx;
  Graph g = test_graph();
  fg::minidgl::GatLayer layer(6, 4, false, 5);
  Var x = make_leaf(Tensor::randn({50, 6}, 6), false);
  Var h = layer.forward(ctx, g, x);
  EXPECT_EQ(h->value().shape(0), 50);
  EXPECT_EQ(h->value().shape(1), 4);
  for (std::int64_t i = 0; i < h->value().numel(); ++i)
    EXPECT_TRUE(std::isfinite(h->value().at(i)));
}

TEST(Modules, ModelForwardGivesLogProbabilities) {
  ExecContext ctx;
  Graph g = test_graph();
  for (const char* kind : {"gcn", "sage-mean", "sage-max", "gat"}) {
    Model model(kind, 6, 8, 3, 7);
    Var x = make_leaf(Tensor::randn({50, 6}, 8), false);
    Var lp = model.forward(ctx, g, x);
    ASSERT_EQ(lp->value().shape(1), 3) << kind;
    for (std::int64_t v = 0; v < 50; ++v) {
      double p = 0.0;
      for (std::int64_t c = 0; c < 3; ++c) p += std::exp(lp->value().at(v, c));
      EXPECT_NEAR(p, 1.0, 1e-4) << kind;
    }
  }
}

TEST(ModulesDeathTest, ModelRejectsUnknownKind) {
  EXPECT_DEATH(Model("transformer", 4, 4, 2, 1), "model kind");
}

TEST(Optim, SgdMovesAgainstGradient) {
  Var p = make_leaf(Tensor::full({3}, 1.0f), true);
  fg::minidgl::Sgd sgd({p}, 0.5f);
  Tensor g = Tensor::full({3}, 2.0f);
  p->accumulate_grad(g);
  sgd.step();
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(p->value().at(i), 0.0f);
  sgd.zero_grad();
  EXPECT_FALSE(p->has_grad());
}

TEST(Optim, AdamFirstStepIsLrSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Var p = make_leaf(Tensor::full({2}, 0.0f), true);
  fg::minidgl::Adam adam({p}, 0.1f);
  Tensor g({2});
  g.at(0) = 3.0f;
  g.at(1) = -0.5f;
  p->accumulate_grad(g);
  adam.step();
  EXPECT_NEAR(p->value().at(0), -0.1f, 1e-4f);
  EXPECT_NEAR(p->value().at(1), 0.1f, 1e-4f);
}

TEST(Optim, AdamSkipsParametersWithoutGrad) {
  Var p = make_leaf(Tensor::full({2}, 5.0f), true);
  fg::minidgl::Adam adam({p}, 0.1f);
  adam.step();  // no grad accumulated
  EXPECT_FLOAT_EQ(p->value().at(0), 5.0f);
}

TEST(Data, SbmFeaturesCarryClassSignal) {
  const auto data = fg::minidgl::make_sbm_classification(400, 8.0, 4, 0.9, 8,
                                                         3.0f, 9);
  // Average feature value at the label coordinate must exceed the average
  // elsewhere by roughly the signal strength.
  double on = 0.0, off = 0.0;
  for (fg::graph::vid_t v = 0; v < 400; ++v) {
    for (std::int64_t j = 0; j < 8; ++j) {
      if (j == data.labels[static_cast<std::size_t>(v)]) {
        on += data.features.at(v, j);
      } else {
        off += data.features.at(v, j);
      }
    }
  }
  EXPECT_GT(on / 400 - off / (400 * 7), 2.0);
}

TEST(Data, SplitsArePartition) {
  const auto data = fg::minidgl::make_sbm_classification(300, 6.0, 3, 0.8, 6,
                                                         1.0f, 10);
  std::vector<int> seen(300, 0);
  for (auto v : data.train_rows) ++seen[static_cast<std::size_t>(v)];
  for (auto v : data.val_rows) ++seen[static_cast<std::size_t>(v)];
  for (auto v : data.test_rows) ++seen[static_cast<std::size_t>(v)];
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Data, AccuracyOfPerfectAndWorstPredictions) {
  Tensor lp = Tensor::zeros({4, 3});
  // argmax = label for rows 0,1; wrong for 2,3.
  lp.at(0, 1) = 1.0f;
  lp.at(1, 2) = 1.0f;
  lp.at(2, 0) = 1.0f;
  lp.at(3, 0) = 1.0f;
  std::vector<std::int32_t> labels = {1, 2, 1, 2};
  EXPECT_DOUBLE_EQ(
      fg::minidgl::accuracy(lp, labels, {0, 1, 2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(fg::minidgl::accuracy(lp, labels, {0, 1}), 1.0);
}
