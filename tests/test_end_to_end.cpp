// End-to-end training/inference integration tests (paper Sec. V-E): models
// learn, the FeatGraph backend does not change semantics (the paper's
// accuracy sanity check), and the GPU simulation accounts time and
// materialized memory.
#include <gtest/gtest.h>

#include "minidgl/train.hpp"

namespace fg = featgraph;
using fg::minidgl::ClassificationData;
using fg::minidgl::Device;
using fg::minidgl::ExecContext;
using fg::minidgl::Model;
using fg::minidgl::SparseBackend;
using fg::minidgl::Trainer;

namespace {

const ClassificationData& small_data() {
  static const ClassificationData data = fg::minidgl::make_sbm_classification(
      /*n=*/600, /*avg_degree=*/10.0, /*num_classes=*/4, /*p_in=*/0.9,
      /*feat_dim=*/16, /*signal=*/2.0f, /*seed=*/77);
  return data;
}

ExecContext ctx_of(SparseBackend backend, Device device = Device::kCpu) {
  ExecContext ctx;
  ctx.backend = backend;
  ctx.device = device;
  ctx.num_threads = 2;
  return ctx;
}

}  // namespace

TEST(EndToEnd, DatasetIsWellFormed) {
  const auto& d = small_data();
  EXPECT_EQ(d.graph.num_vertices(), 600);
  EXPECT_EQ(d.num_classes, 4);
  EXPECT_GT(d.train_rows.size(), 300u);
  EXPECT_GT(d.val_rows.size(), 20u);
  EXPECT_GT(d.test_rows.size(), 80u);
  // Labels cover all classes.
  std::vector<int> counts(4, 0);
  for (auto y : d.labels) ++counts[static_cast<std::size_t>(y)];
  for (int c : counts) EXPECT_GT(c, 50);
}

TEST(EndToEnd, GcnLearnsTheSbmTask) {
  Trainer trainer(small_data(), Model("gcn", 16, 32, 4, /*seed=*/1),
                  ctx_of(SparseBackend::kFused), /*lr=*/0.05f);
  const auto history = fg::minidgl::train(trainer, 25);
  EXPECT_LT(history.back().loss, history.front().loss * 0.5f);
  EXPECT_GT(trainer.test_accuracy(), 0.9);
}

TEST(EndToEnd, SageMaxLearnsTheSbmTask) {
  Trainer trainer(small_data(), Model("sage-max", 16, 32, 4, 2),
                  ctx_of(SparseBackend::kFused), 0.05f);
  const auto history = fg::minidgl::train(trainer, 25);
  EXPECT_LT(history.back().loss, history.front().loss * 0.6f);
  EXPECT_GT(trainer.test_accuracy(), 0.85);
}

TEST(EndToEnd, GatLearnsTheSbmTask) {
  Trainer trainer(small_data(), Model("gat", 16, 32, 4, 3),
                  ctx_of(SparseBackend::kFused), 0.05f);
  const auto history = fg::minidgl::train(trainer, 25);
  EXPECT_LT(history.back().loss, history.front().loss * 0.6f);
  EXPECT_GT(trainer.test_accuracy(), 0.85);
}

// The paper's accuracy check (Sec. V-E): FeatGraph "is for performance
// optimization without changing the semantics of GNN models". The fused and
// materialized backends must produce the same training trajectory.
class BackendEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendEquivalence, LossTrajectoriesMatch) {
  const std::string kind = GetParam();
  std::vector<float> losses[2];
  double final_acc[2] = {0, 0};
  for (int b = 0; b < 2; ++b) {
    Trainer trainer(small_data(), Model(kind, 16, 24, 4, /*seed=*/42),
                    ctx_of(b == 0 ? SparseBackend::kFused
                                  : SparseBackend::kMaterialize),
                    0.05f);
    for (int e = 0; e < 6; ++e)
      losses[b].push_back(trainer.train_epoch().loss);
    final_acc[b] = trainer.test_accuracy();
  }
  for (std::size_t e = 0; e < losses[0].size(); ++e)
    EXPECT_NEAR(losses[0][e], losses[1][e], 2e-3f) << "epoch " << e;
  EXPECT_NEAR(final_acc[0], final_acc[1], 0.02);
}

INSTANTIATE_TEST_SUITE_P(Models, BackendEquivalence,
                         ::testing::Values("gcn", "sage-mean", "sage-max",
                                           "gat"));

TEST(EndToEnd, GpuSimProducesSameResultsAndAccountsTime) {
  std::vector<float> losses[2];
  for (int dev = 0; dev < 2; ++dev) {
    Trainer trainer(small_data(), Model("gcn", 16, 24, 4, 7),
                    ctx_of(SparseBackend::kFused,
                           dev == 0 ? Device::kCpu : Device::kGpuSim),
                    0.05f);
    for (int e = 0; e < 4; ++e) {
      const auto r = trainer.train_epoch();
      losses[dev].push_back(r.loss);
      if (dev == 1) EXPECT_GT(r.seconds, 0.0);  // simulated seconds
    }
  }
  for (std::size_t e = 0; e < losses[0].size(); ++e)
    EXPECT_NEAR(losses[0][e], losses[1][e], 1e-4f);
}

TEST(EndToEnd, MaterializeBackendBooksMemoryFusedDoesNot) {
  for (int b = 0; b < 2; ++b) {
    Trainer trainer(small_data(), Model("gat", 16, 24, 4, 8),
                    ctx_of(b == 0 ? SparseBackend::kFused
                                  : SparseBackend::kMaterialize),
                    0.05f);
    const auto r = trainer.train_epoch();
    if (b == 0) {
      EXPECT_EQ(r.materialized_bytes, 0.0);
    } else {
      EXPECT_GT(r.materialized_bytes, 0.0);
    }
  }
}

TEST(EndToEnd, InferenceReportsTestAccuracy) {
  Trainer trainer(small_data(), Model("gcn", 16, 32, 4, 9),
                  ctx_of(SparseBackend::kFused), 0.05f);
  fg::minidgl::train(trainer, 15);
  const auto inf = trainer.infer();
  EXPECT_GT(inf.train_accuracy, 0.8);  // holds test accuracy for infer()
  EXPECT_GT(inf.seconds, 0.0);
}

TEST(EndToEnd, SgdAlsoDecreasesLoss) {
  const auto& d = small_data();
  Model model("gcn", 16, 24, 4, 10);
  ExecContext ctx = ctx_of(SparseBackend::kFused);
  fg::minidgl::Sgd sgd(model.parameters(), 0.1f);
  float first = 0, last = 0;
  for (int e = 0; e < 10; ++e) {
    auto x = fg::minidgl::make_leaf(d.features.clone(), false);
    auto lp = model.forward(ctx, d.graph, x);
    auto loss = fg::minidgl::nll_loss(ctx, lp, d.labels, d.train_rows);
    sgd.zero_grad();
    fg::minidgl::backward(loss);
    sgd.step();
    if (e == 0) first = loss->value().at(0);
    last = loss->value().at(0);
  }
  EXPECT_LT(last, first);
}
