#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/scaling_model.hpp"
#include "parallel/thread_pool.hpp"

namespace fg = featgraph;
using fg::parallel::ThreadPool;

TEST(ThreadPool, SingleLaneRunsInline) {
  int calls = 0;
  ThreadPool::global().launch(1, [&](int tid, int lanes) {
    EXPECT_EQ(tid, 0);
    EXPECT_EQ(lanes, 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, AllLanesRunExactlyOnce) {
  for (int lanes : {2, 3, 8, 16}) {
    std::vector<std::atomic<int>> counts(static_cast<std::size_t>(lanes));
    for (auto& c : counts) c = 0;
    ThreadPool::global().launch(lanes, [&](int tid, int total) {
      EXPECT_EQ(total, lanes);
      counts[static_cast<std::size_t>(tid)].fetch_add(1);
    });
    for (auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossManyLaunches) {
  std::atomic<int> total{0};
  for (int i = 0; i < 200; ++i)
    ThreadPool::global().launch(4, [&](int, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPool, OversubscriptionIsFunctionallyCorrect) {
  // More lanes than cores must still run every lane.
  std::atomic<int> total{0};
  ThreadPool::global().launch(64, [&](int, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 64);
}

// --- dual-slot pool (attached vs detached jobs) ---------------------------

TEST(ThreadPool, DetachedJobDoesNotStarveAttachedLaunches) {
  // Regression: the single-job-slot pool treated a live DETACHED serving
  // lane as "busy", degrading EVERY launch() to inline serial for the
  // lane's whole lifetime — the server ran all its kernels single-threaded.
  // The dual-slot pool must keep attached lanes genuinely concurrent while
  // a detached job blocks one worker.
  ThreadPool pool(2);
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(pool.launch_detached_if_idle(1, [&](int, int) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  }));

  // Rendezvous: each attached lane waits (bounded) for the other to arrive.
  // Only lanes that overlap IN TIME can both observe arrived == 2; a serial
  // inline fallback has the first lane time out before the second starts.
  std::mutex rm;
  std::condition_variable rcv;
  int arrived = 0;
  int observed = 0;
  pool.launch(2, [&](int, int) {
    std::unique_lock<std::mutex> lock(rm);
    ++arrived;
    rcv.notify_all();
    if (rcv.wait_for(lock, std::chrono::seconds(10),
                     [&] { return arrived == 2; }))
      ++observed;
  });
  EXPECT_EQ(observed, 2) << "attached lanes did not overlap in time while a "
                            "detached job was live";

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  pool.wait_detached_drained();
}

TEST(ThreadPool, LaunchIfIdleNeedsAWorkerBeyondDetachedLanes) {
  // launch_if_idle promises GENUINE lane concurrency. With the pool's only
  // worker consumed by an unfinished detached lane, the caller alone cannot
  // overlap two lanes — the claim must decline without running anything,
  // and succeed again once the detached job drains.
  ThreadPool pool(1);
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(pool.launch_detached_if_idle(1, [&](int, int) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  }));

  std::atomic<int> ran{0};
  EXPECT_FALSE(pool.launch_if_idle(2, [&](int, int) { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 0) << "a declined claim must not execute any lane";

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  pool.wait_detached_drained();
  EXPECT_TRUE(pool.launch_if_idle(2, [&](int, int) { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, DetachedLaneRunsNestedParallelKernels) {
  // A serving lane must be able to run parallel kernels: its nested
  // launch() claims the SEPARATE attached slot — no self-deadlock, and no
  // silent serial degradation (the payoff of the dual-slot fix).
  ThreadPool pool(2);
  std::promise<std::int64_t> result;
  ASSERT_TRUE(pool.launch_detached_if_idle(1, [&](int, int) {
    std::atomic<std::int64_t> sum{0};
    pool.launch(4, [&](int tid, int) { sum.fetch_add(tid + 1); });
    result.set_value(sum.load());
  }));
  auto fut = result.get_future();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(fut.get(), 1 + 2 + 3 + 4);
  pool.wait_detached_drained();
}

TEST(ThreadPool, DetachedSlotIsExclusiveUntilDrained) {
  ThreadPool pool(2);
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(pool.launch_detached_if_idle(1, [&](int, int) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  }));
  int ran = 0;
  EXPECT_FALSE(pool.launch_detached_if_idle(1, [&](int, int) { ++ran; }));
  EXPECT_EQ(ran, 0);
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  pool.wait_detached_drained();
  std::atomic<bool> reran{false};
  ASSERT_TRUE(pool.launch_detached_if_idle(1, [&](int, int) {
    reran.store(true);
  }));
  pool.wait_detached_drained();
  EXPECT_TRUE(reran.load());
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    fg::parallel::parallel_for(0, 100, threads, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  fg::parallel::parallel_for(5, 5, 4, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForRanges, RangesPartitionTheInterval) {
  std::mutex m;
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  fg::parallel::parallel_for_ranges(
      0, 103, 4, [&](std::int64_t lo, std::int64_t hi) {
        std::lock_guard<std::mutex> lock(m);
        ranges.emplace_back(lo, hi);
      });
  std::sort(ranges.begin(), ranges.end());
  std::int64_t covered = 0;
  std::int64_t expected_next = 0;
  for (auto [lo, hi] : ranges) {
    EXPECT_EQ(lo, expected_next);
    EXPECT_LT(lo, hi);
    covered += hi - lo;
    expected_next = hi;
  }
  EXPECT_EQ(covered, 103);
}

// --- nnz-balanced range splitting ---------------------------------------

namespace {

/// indptr for a row-degree list.
std::vector<std::int64_t> indptr_of(const std::vector<std::int64_t>& degs) {
  std::vector<std::int64_t> p(degs.size() + 1, 0);
  for (std::size_t i = 0; i < degs.size(); ++i) p[i + 1] = p[i] + degs[i];
  return p;
}

}  // namespace

TEST(NnzSplit, BoundariesTileTheInterval) {
  const auto indptr = indptr_of({3, 0, 7, 1, 0, 0, 12, 2, 0, 5});
  const std::int64_t n = 10;
  for (int lanes : {1, 2, 3, 4, 8, 16}) {
    std::int64_t prev = 0;
    EXPECT_EQ(fg::parallel::nnz_split_point(indptr.data(), 0, n, 0, lanes), 0);
    for (int k = 1; k <= lanes; ++k) {
      const std::int64_t b =
          fg::parallel::nnz_split_point(indptr.data(), 0, n, k, lanes);
      EXPECT_GE(b, prev) << "lanes=" << lanes << " k=" << k;
      EXPECT_LE(b, n);
      prev = b;
    }
    EXPECT_EQ(prev, n) << "last boundary must be end (lanes=" << lanes << ")";
  }
}

TEST(NnzSplit, RangesCoverEveryRowExactlyOnce) {
  const auto indptr = indptr_of({0, 50, 1, 1, 0, 1, 1, 1, 0, 0, 45});
  for (int threads : {1, 2, 4, 8}) {
    std::mutex m;
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    fg::parallel::parallel_for_nnz_ranges(
        indptr.data(), 0, 11, threads,
        [&](std::int64_t lo, std::int64_t hi) {
          std::lock_guard<std::mutex> lock(m);
          ranges.emplace_back(lo, hi);
        });
    std::sort(ranges.begin(), ranges.end());
    std::int64_t expected_next = 0;
    for (auto [lo, hi] : ranges) {
      EXPECT_GE(lo, expected_next);
      EXPECT_LT(lo, hi);
      // Gaps are impossible: boundaries are monotone and tile [0, 11).
      EXPECT_EQ(lo, expected_next);
      expected_next = hi;
    }
    EXPECT_EQ(expected_next, 11);
  }
}

TEST(NnzSplit, BalancesSkewedDegreesWithinOneRow) {
  // One hub of 1000 edges among 999 degree-1 rows: a static row split gives
  // lane 0 over half the edges; the nnz split must keep every lane within
  // total/lanes + max_row_degree.
  std::vector<std::int64_t> degs(1000, 1);
  degs[0] = 1000;
  const auto indptr = indptr_of(degs);
  const std::int64_t total = indptr.back();
  for (int lanes : {2, 4, 8}) {
    const std::int64_t cap = total / lanes + 1000;
    for (int k = 0; k < lanes; ++k) {
      const std::int64_t lo =
          fg::parallel::nnz_split_point(indptr.data(), 0, 1000, k, lanes);
      const std::int64_t hi =
          fg::parallel::nnz_split_point(indptr.data(), 0, 1000, k + 1, lanes);
      EXPECT_LE(indptr[static_cast<std::size_t>(hi)] -
                    indptr[static_cast<std::size_t>(lo)],
                cap)
          << "lanes=" << lanes << " k=" << k;
    }
  }
}

TEST(NnzSplit, AllEmptyRowsGoToOneLane) {
  const auto indptr = indptr_of({0, 0, 0, 0, 0});
  int calls = 0;
  std::int64_t lo_seen = -1, hi_seen = -1;
  std::mutex m;
  fg::parallel::parallel_for_nnz_ranges(indptr.data(), 0, 5, 4,
                                        [&](std::int64_t lo, std::int64_t hi) {
                                          std::lock_guard<std::mutex> lock(m);
                                          ++calls;
                                          lo_seen = lo;
                                          hi_seen = hi;
                                        });
  // Zero-nnz prefix sums put every interior boundary at row 0; only the
  // final lane [0, 5) is non-empty.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(lo_seen, 0);
  EXPECT_EQ(hi_seen, 5);
}

TEST(NnzSplit, ExtremeNnzTotalsDoNotOverflow) {
  // Satellite fix: the boundary target used to be computed as
  // total * k / lanes, which overflows int64 once nnz x lanes passes 2^63
  // (billion-edge shards split across many lanes). 8 rows of ~2^59 edges
  // each put the total near 2^62, so the old product overflowed for every
  // k >= 4 — check each boundary against a 128-bit reference.
  const std::int64_t big = std::int64_t{1} << 59;
  std::vector<std::int64_t> indptr(9);
  indptr[0] = 0;
  for (std::size_t i = 1; i < indptr.size(); ++i)
    indptr[i] = indptr[i - 1] + big + static_cast<std::int64_t>(i) * 7919;
  const std::int64_t n = 8;
  for (int lanes : {3, 7, 16, 61}) {
    std::int64_t prev = 0;
    for (int k = 0; k <= lanes; ++k) {
      const std::int64_t got =
          fg::parallel::nnz_split_point(indptr.data(), 0, n, k, lanes);
      std::int64_t want;
      if (k == 0) {
        want = 0;
      } else if (k == lanes) {
        want = n;
      } else {
        const auto target = static_cast<std::int64_t>(
            static_cast<__int128>(indptr[static_cast<std::size_t>(n)]) * k /
            lanes);
        want = std::lower_bound(indptr.data(), indptr.data() + n, target) -
               indptr.data();
      }
      EXPECT_EQ(got, want) << "lanes=" << lanes << " k=" << k;
      EXPECT_GE(got, prev);
      prev = got;
    }
    EXPECT_EQ(prev, n);
  }
}

TEST(NnzSplit, EmptyIntervalIsNoop) {
  const auto indptr = indptr_of({4, 4});
  int calls = 0;
  fg::parallel::parallel_for_nnz_ranges(indptr.data(), 1, 1, 4,
                                        [&](std::int64_t, std::int64_t) {
                                          ++calls;
                                        });
  EXPECT_EQ(calls, 0);
}

TEST(CooperativeChunks, EveryChunkProcessedOnce) {
  for (int threads : {1, 2, 4}) {
    std::vector<std::atomic<int>> hits(37);
    for (auto& h : hits) h = 0;
    fg::parallel::cooperative_chunks(37, threads, [&](std::int64_t c) {
      hits[static_cast<std::size_t>(c)].fetch_add(1);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

// --- work stealing --------------------------------------------------------

TEST(WorkStealingChunks, DrainsEveryItemExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    for (std::int64_t grain : {1, 3, 8}) {
      constexpr std::int64_t kItems = 103;
      std::vector<std::atomic<int>> hits(kItems);
      for (auto& h : hits) h = 0;
      const auto stats = fg::parallel::work_stealing_chunks(
          kItems, threads, grain, [&](std::int64_t i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1);
          });
      for (std::int64_t i = 0; i < kItems; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "item " << i << " threads=" << threads << " grain=" << grain;
      EXPECT_EQ(stats.executed, kItems);
    }
  }
}

TEST(WorkStealingChunks, SerialPathRunsInOrderWithNoSteals) {
  std::vector<std::int64_t> order;
  const auto stats = fg::parallel::work_stealing_chunks(
      9, 1, 4, [&](std::int64_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 9u);
  for (std::int64_t i = 0; i < 9; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(stats.executed, 9);
  EXPECT_EQ(stats.stolen, 0);
}

TEST(WorkStealingChunks, ImbalanceMigratesAcrossSlices) {
  // Lane 0's slice is made pathologically slow while the other slices are
  // trivial: whether lanes run truly concurrently (multi-worker pool) or
  // one thread multiplexes them (1-core CI), items outside the running
  // lane's own slice must be drained by STEALING — and still exactly once.
  constexpr std::int64_t kItems = 16;
  constexpr int kThreads = 4;
  std::vector<std::atomic<int>> hits(kItems);
  for (auto& h : hits) h = 0;
  const auto stats = fg::parallel::work_stealing_chunks(
      kItems, kThreads, 1, [&](std::int64_t i) {
        if (i < kItems / kThreads)
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
  for (std::int64_t i = 0; i < kItems; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  EXPECT_EQ(stats.executed, kItems);
  EXPECT_GT(stats.stolen, 0);
}

TEST(WorkStealingChunks, OversubscribedLanesStillDrainEverySlice) {
  // More logical lanes than the pool has workers: slices of lanes that
  // never get a worker must be drained by whoever scans past them.
  constexpr std::int64_t kItems = 57;
  std::vector<std::atomic<int>> hits(kItems);
  for (auto& h : hits) h = 0;
  const auto stats = fg::parallel::work_stealing_chunks(
      kItems, 16, 2, [&](std::int64_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
  for (std::int64_t i = 0; i < kItems; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  EXPECT_EQ(stats.executed, kItems);
}

// --- scaling model -----------------------------------------------------

using fg::parallel::predict_parallel_seconds;
using fg::parallel::SchedulingMode;
using fg::parallel::WorkChunk;

namespace {

std::vector<WorkChunk> uniform_chunks(int n, double secs, double bytes) {
  return std::vector<WorkChunk>(static_cast<std::size_t>(n),
                                WorkChunk{secs, bytes});
}

}  // namespace

TEST(ScalingModel, OneThreadMatchesTotalWork) {
  const auto chunks = uniform_chunks(16, 0.1, 1e6);
  const double t =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kIndependent);
  EXPECT_NEAR(t, 1.6, 0.01);
}

TEST(ScalingModel, MoreThreadsNeverSlower) {
  const auto chunks = uniform_chunks(64, 0.05, 1e6);
  for (auto mode :
       {SchedulingMode::kIndependent, SchedulingMode::kCooperative}) {
    double prev = predict_parallel_seconds(chunks, 1, mode);
    for (int k : {2, 4, 8, 16}) {
      const double t = predict_parallel_seconds(chunks, k, mode);
      EXPECT_LE(t, prev * 1.0001);
      prev = t;
    }
  }
}

TEST(ScalingModel, SpeedupBoundedByThreadCount) {
  const auto chunks = uniform_chunks(64, 0.05, 1e6);
  const double t1 =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kCooperative);
  const double t16 =
      predict_parallel_seconds(chunks, 16, SchedulingMode::kCooperative);
  EXPECT_LE(t1 / t16, 16.0 + 1e-6);
  EXPECT_GT(t1 / t16, 8.0);  // near-linear when chunks fit the LLC
}

TEST(ScalingModel, CooperativeDodgesLlcContention) {
  // Chunks of 8 MB: 16 independent chunks blow past a 25 MB LLC while the
  // cooperative mode keeps one chunk resident, so cooperative must win.
  const auto chunks = uniform_chunks(64, 0.05, 8e6);
  const double indep =
      predict_parallel_seconds(chunks, 16, SchedulingMode::kIndependent);
  const double coop =
      predict_parallel_seconds(chunks, 16, SchedulingMode::kCooperative);
  EXPECT_LT(coop, indep);
}

TEST(ScalingModel, BandwidthRooflineCapsSpeedup) {
  // A purely bandwidth-bound workload (huge bytes, little compute) cannot
  // scale past socket_bw / per_thread_bw regardless of thread count.
  fg::parallel::ScalingModelParams params;
  std::vector<WorkChunk> chunks(64, WorkChunk{0.001, 2e9});  // 128 GB total
  const double t1 =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kCooperative, params);
  const double t16 = predict_parallel_seconds(chunks, 16,
                                              SchedulingMode::kCooperative,
                                              params);
  const double max_speedup =
      params.socket_bw_bytes_per_s / params.per_thread_bw_bytes_per_s;
  EXPECT_LT(t1 / t16, max_speedup + 0.01);
  EXPECT_GT(t1 / t16, max_speedup * 0.75);
}

TEST(ScalingModel, ComputeBoundWorkloadsScaleLinearly) {
  // Negligible bytes: the bandwidth floor never binds and cooperative
  // scheduling reaches ideal speedup.
  std::vector<WorkChunk> chunks(64, WorkChunk{0.01, 1e3});
  const double t1 =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kCooperative);
  const double t16 =
      predict_parallel_seconds(chunks, 16, SchedulingMode::kCooperative);
  EXPECT_NEAR(t1 / t16, 16.0, 0.5);
}

TEST(ScalingModel, SkewedChunksScaleWorse) {
  auto uniform = uniform_chunks(16, 0.1, 1e6);
  std::vector<WorkChunk> skewed = uniform;
  // Same total work, but one chunk dominates.
  for (auto& c : skewed) c.seconds = 0.02;
  skewed[0].seconds = 0.1 * 16 - 0.02 * 15;
  const double tu =
      predict_parallel_seconds(uniform, 8, SchedulingMode::kIndependent);
  const double ts =
      predict_parallel_seconds(skewed, 8, SchedulingMode::kIndependent);
  EXPECT_GT(ts, tu);
}

TEST(ScalingModel, CooperativeChargesBarrierPerChunkPerExtraThread) {
  // Satellite fix: cooperative scheduling synchronizes ALL k threads at
  // every chunk boundary, so the rendezvous cost must scale with
  // (k - 1) x chunks. The old model charged only the flat per-chunk
  // dispatch cost — identical to independent mode — and was optimistic
  // exactly where the shard engine operates: many small chunks, high k.
  fg::parallel::ScalingModelParams params;
  params.per_chunk_overhead_s = 1e-4;
  const auto chunks = uniform_chunks(200, 1e-6, 0.0);
  const double coop1 =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kCooperative,
                               params);
  const double coop4 =
      predict_parallel_seconds(chunks, 4, SchedulingMode::kCooperative,
                               params);
  // Work shrinks 200us -> 50us; everything else added is the barrier term
  // 3 threads x 200 barriers x 1e-4 s.
  EXPECT_NEAR(coop4 - coop1, 3 * 200 * 1e-4, 2e-4);
}

TEST(ScalingModel, OneThreadCooperativePaysNoBarrier) {
  // k == 1 has no rendezvous: cooperative and independent predictions
  // coincide regardless of how expensive a barrier would be.
  fg::parallel::ScalingModelParams params;
  params.per_chunk_overhead_s = 1e-2;
  const auto chunks = uniform_chunks(64, 1e-3, 0.0);
  const double coop =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kCooperative,
                               params);
  const double indep =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kIndependent,
                               params);
  EXPECT_NEAR(coop, indep, 1e-12);
}

TEST(ScalingModel, BarriersMakeCooperativeLoseOnManyTinyChunks) {
  // The regime the fix exposes: slicing tiny chunks across k threads costs
  // more in barriers than it saves in work — independent (steal-style)
  // scheduling must predict faster there.
  fg::parallel::ScalingModelParams params;
  params.per_chunk_overhead_s = 1e-4;
  const auto chunks = uniform_chunks(200, 1e-6, 0.0);
  const double coop =
      predict_parallel_seconds(chunks, 4, SchedulingMode::kCooperative,
                               params);
  const double indep =
      predict_parallel_seconds(chunks, 4, SchedulingMode::kIndependent,
                               params);
  EXPECT_GT(coop, indep);
}
