#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/scaling_model.hpp"
#include "parallel/thread_pool.hpp"

namespace fg = featgraph;
using fg::parallel::ThreadPool;

TEST(ThreadPool, SingleLaneRunsInline) {
  int calls = 0;
  ThreadPool::global().launch(1, [&](int tid, int lanes) {
    EXPECT_EQ(tid, 0);
    EXPECT_EQ(lanes, 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, AllLanesRunExactlyOnce) {
  for (int lanes : {2, 3, 8, 16}) {
    std::vector<std::atomic<int>> counts(static_cast<std::size_t>(lanes));
    for (auto& c : counts) c = 0;
    ThreadPool::global().launch(lanes, [&](int tid, int total) {
      EXPECT_EQ(total, lanes);
      counts[static_cast<std::size_t>(tid)].fetch_add(1);
    });
    for (auto& c : counts) EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossManyLaunches) {
  std::atomic<int> total{0};
  for (int i = 0; i < 200; ++i)
    ThreadPool::global().launch(4, [&](int, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPool, OversubscriptionIsFunctionallyCorrect) {
  // More lanes than cores must still run every lane.
  std::atomic<int> total{0};
  ThreadPool::global().launch(64, [&](int, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    fg::parallel::parallel_for(0, 100, threads, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  fg::parallel::parallel_for(5, 5, 4, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForRanges, RangesPartitionTheInterval) {
  std::mutex m;
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  fg::parallel::parallel_for_ranges(
      0, 103, 4, [&](std::int64_t lo, std::int64_t hi) {
        std::lock_guard<std::mutex> lock(m);
        ranges.emplace_back(lo, hi);
      });
  std::sort(ranges.begin(), ranges.end());
  std::int64_t covered = 0;
  std::int64_t expected_next = 0;
  for (auto [lo, hi] : ranges) {
    EXPECT_EQ(lo, expected_next);
    EXPECT_LT(lo, hi);
    covered += hi - lo;
    expected_next = hi;
  }
  EXPECT_EQ(covered, 103);
}

// --- nnz-balanced range splitting ---------------------------------------

namespace {

/// indptr for a row-degree list.
std::vector<std::int64_t> indptr_of(const std::vector<std::int64_t>& degs) {
  std::vector<std::int64_t> p(degs.size() + 1, 0);
  for (std::size_t i = 0; i < degs.size(); ++i) p[i + 1] = p[i] + degs[i];
  return p;
}

}  // namespace

TEST(NnzSplit, BoundariesTileTheInterval) {
  const auto indptr = indptr_of({3, 0, 7, 1, 0, 0, 12, 2, 0, 5});
  const std::int64_t n = 10;
  for (int lanes : {1, 2, 3, 4, 8, 16}) {
    std::int64_t prev = 0;
    EXPECT_EQ(fg::parallel::nnz_split_point(indptr.data(), 0, n, 0, lanes), 0);
    for (int k = 1; k <= lanes; ++k) {
      const std::int64_t b =
          fg::parallel::nnz_split_point(indptr.data(), 0, n, k, lanes);
      EXPECT_GE(b, prev) << "lanes=" << lanes << " k=" << k;
      EXPECT_LE(b, n);
      prev = b;
    }
    EXPECT_EQ(prev, n) << "last boundary must be end (lanes=" << lanes << ")";
  }
}

TEST(NnzSplit, RangesCoverEveryRowExactlyOnce) {
  const auto indptr = indptr_of({0, 50, 1, 1, 0, 1, 1, 1, 0, 0, 45});
  for (int threads : {1, 2, 4, 8}) {
    std::mutex m;
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
    fg::parallel::parallel_for_nnz_ranges(
        indptr.data(), 0, 11, threads,
        [&](std::int64_t lo, std::int64_t hi) {
          std::lock_guard<std::mutex> lock(m);
          ranges.emplace_back(lo, hi);
        });
    std::sort(ranges.begin(), ranges.end());
    std::int64_t expected_next = 0;
    for (auto [lo, hi] : ranges) {
      EXPECT_GE(lo, expected_next);
      EXPECT_LT(lo, hi);
      // Gaps are impossible: boundaries are monotone and tile [0, 11).
      EXPECT_EQ(lo, expected_next);
      expected_next = hi;
    }
    EXPECT_EQ(expected_next, 11);
  }
}

TEST(NnzSplit, BalancesSkewedDegreesWithinOneRow) {
  // One hub of 1000 edges among 999 degree-1 rows: a static row split gives
  // lane 0 over half the edges; the nnz split must keep every lane within
  // total/lanes + max_row_degree.
  std::vector<std::int64_t> degs(1000, 1);
  degs[0] = 1000;
  const auto indptr = indptr_of(degs);
  const std::int64_t total = indptr.back();
  for (int lanes : {2, 4, 8}) {
    const std::int64_t cap = total / lanes + 1000;
    for (int k = 0; k < lanes; ++k) {
      const std::int64_t lo =
          fg::parallel::nnz_split_point(indptr.data(), 0, 1000, k, lanes);
      const std::int64_t hi =
          fg::parallel::nnz_split_point(indptr.data(), 0, 1000, k + 1, lanes);
      EXPECT_LE(indptr[static_cast<std::size_t>(hi)] -
                    indptr[static_cast<std::size_t>(lo)],
                cap)
          << "lanes=" << lanes << " k=" << k;
    }
  }
}

TEST(NnzSplit, AllEmptyRowsGoToOneLane) {
  const auto indptr = indptr_of({0, 0, 0, 0, 0});
  int calls = 0;
  std::int64_t lo_seen = -1, hi_seen = -1;
  std::mutex m;
  fg::parallel::parallel_for_nnz_ranges(indptr.data(), 0, 5, 4,
                                        [&](std::int64_t lo, std::int64_t hi) {
                                          std::lock_guard<std::mutex> lock(m);
                                          ++calls;
                                          lo_seen = lo;
                                          hi_seen = hi;
                                        });
  // Zero-nnz prefix sums put every interior boundary at row 0; only the
  // final lane [0, 5) is non-empty.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(lo_seen, 0);
  EXPECT_EQ(hi_seen, 5);
}

TEST(NnzSplit, EmptyIntervalIsNoop) {
  const auto indptr = indptr_of({4, 4});
  int calls = 0;
  fg::parallel::parallel_for_nnz_ranges(indptr.data(), 1, 1, 4,
                                        [&](std::int64_t, std::int64_t) {
                                          ++calls;
                                        });
  EXPECT_EQ(calls, 0);
}

TEST(CooperativeChunks, EveryChunkProcessedOnce) {
  for (int threads : {1, 2, 4}) {
    std::vector<std::atomic<int>> hits(37);
    for (auto& h : hits) h = 0;
    fg::parallel::cooperative_chunks(37, threads, [&](std::int64_t c) {
      hits[static_cast<std::size_t>(c)].fetch_add(1);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

// --- scaling model -----------------------------------------------------

using fg::parallel::predict_parallel_seconds;
using fg::parallel::SchedulingMode;
using fg::parallel::WorkChunk;

namespace {

std::vector<WorkChunk> uniform_chunks(int n, double secs, double bytes) {
  return std::vector<WorkChunk>(static_cast<std::size_t>(n),
                                WorkChunk{secs, bytes});
}

}  // namespace

TEST(ScalingModel, OneThreadMatchesTotalWork) {
  const auto chunks = uniform_chunks(16, 0.1, 1e6);
  const double t =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kIndependent);
  EXPECT_NEAR(t, 1.6, 0.01);
}

TEST(ScalingModel, MoreThreadsNeverSlower) {
  const auto chunks = uniform_chunks(64, 0.05, 1e6);
  for (auto mode :
       {SchedulingMode::kIndependent, SchedulingMode::kCooperative}) {
    double prev = predict_parallel_seconds(chunks, 1, mode);
    for (int k : {2, 4, 8, 16}) {
      const double t = predict_parallel_seconds(chunks, k, mode);
      EXPECT_LE(t, prev * 1.0001);
      prev = t;
    }
  }
}

TEST(ScalingModel, SpeedupBoundedByThreadCount) {
  const auto chunks = uniform_chunks(64, 0.05, 1e6);
  const double t1 =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kCooperative);
  const double t16 =
      predict_parallel_seconds(chunks, 16, SchedulingMode::kCooperative);
  EXPECT_LE(t1 / t16, 16.0 + 1e-6);
  EXPECT_GT(t1 / t16, 8.0);  // near-linear when chunks fit the LLC
}

TEST(ScalingModel, CooperativeDodgesLlcContention) {
  // Chunks of 8 MB: 16 independent chunks blow past a 25 MB LLC while the
  // cooperative mode keeps one chunk resident, so cooperative must win.
  const auto chunks = uniform_chunks(64, 0.05, 8e6);
  const double indep =
      predict_parallel_seconds(chunks, 16, SchedulingMode::kIndependent);
  const double coop =
      predict_parallel_seconds(chunks, 16, SchedulingMode::kCooperative);
  EXPECT_LT(coop, indep);
}

TEST(ScalingModel, BandwidthRooflineCapsSpeedup) {
  // A purely bandwidth-bound workload (huge bytes, little compute) cannot
  // scale past socket_bw / per_thread_bw regardless of thread count.
  fg::parallel::ScalingModelParams params;
  std::vector<WorkChunk> chunks(64, WorkChunk{0.001, 2e9});  // 128 GB total
  const double t1 =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kCooperative, params);
  const double t16 = predict_parallel_seconds(chunks, 16,
                                              SchedulingMode::kCooperative,
                                              params);
  const double max_speedup =
      params.socket_bw_bytes_per_s / params.per_thread_bw_bytes_per_s;
  EXPECT_LT(t1 / t16, max_speedup + 0.01);
  EXPECT_GT(t1 / t16, max_speedup * 0.75);
}

TEST(ScalingModel, ComputeBoundWorkloadsScaleLinearly) {
  // Negligible bytes: the bandwidth floor never binds and cooperative
  // scheduling reaches ideal speedup.
  std::vector<WorkChunk> chunks(64, WorkChunk{0.01, 1e3});
  const double t1 =
      predict_parallel_seconds(chunks, 1, SchedulingMode::kCooperative);
  const double t16 =
      predict_parallel_seconds(chunks, 16, SchedulingMode::kCooperative);
  EXPECT_NEAR(t1 / t16, 16.0, 0.5);
}

TEST(ScalingModel, SkewedChunksScaleWorse) {
  auto uniform = uniform_chunks(16, 0.1, 1e6);
  std::vector<WorkChunk> skewed = uniform;
  // Same total work, but one chunk dominates.
  for (auto& c : skewed) c.seconds = 0.02;
  skewed[0].seconds = 0.1 * 16 - 0.02 * 15;
  const double tu =
      predict_parallel_seconds(uniform, 8, SchedulingMode::kIndependent);
  const double ts =
      predict_parallel_seconds(skewed, 8, SchedulingMode::kIndependent);
  EXPECT_GT(ts, tu);
}
