#include <gtest/gtest.h>

#include <numeric>
#include <queue>

#include "baselines/ligra.hpp"
#include "baselines/vendor_spmm.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "graph/generators.hpp"

namespace fg = featgraph;
namespace ligra = fg::baselines::ligra;
using fg::graph::Coo;
using fg::graph::Graph;
using fg::graph::vid_t;
using fg::tensor::Tensor;

namespace {

/// Reference BFS levels by std::queue.
std::vector<std::int32_t> bfs_reference(const Graph& g, vid_t root) {
  std::vector<std::int32_t> level(static_cast<std::size_t>(g.num_vertices()),
                                  -1);
  std::queue<vid_t> q;
  q.push(root);
  level[static_cast<std::size_t>(root)] = 0;
  const auto& out = g.out_csr();
  while (!q.empty()) {
    const vid_t u = q.front();
    q.pop();
    for (std::int64_t i = out.indptr[u]; i < out.indptr[u + 1]; ++i) {
      const vid_t v = out.indices[static_cast<std::size_t>(i)];
      if (level[static_cast<std::size_t>(v)] == -1) {
        level[static_cast<std::size_t>(v)] =
            level[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

Graph chain_graph(vid_t n) {
  Coo coo;
  coo.num_src = coo.num_dst = n;
  for (vid_t v = 0; v + 1 < n; ++v) {
    coo.src.push_back(v);
    coo.dst.push_back(v + 1);
  }
  return Graph(std::move(coo));
}

}  // namespace

TEST(LigraEngine, BfsOnChain) {
  Graph g = chain_graph(10);
  const auto level = ligra::bfs(g, 0);
  for (vid_t v = 0; v < 10; ++v)
    EXPECT_EQ(level[static_cast<std::size_t>(v)], v);
}

TEST(LigraEngine, BfsMatchesReferenceOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Graph g(fg::graph::gen_uniform(500, 3.0, seed));
    for (int threads : {1, 2}) {
      const auto got = ligra::bfs(g, 0, threads);
      const auto want = bfs_reference(g, 0);
      EXPECT_EQ(got, want) << "seed " << seed;
    }
  }
}

TEST(LigraEngine, PushAndPullDirectionsAgree) {
  Graph g(fg::graph::gen_uniform(300, 4.0, 7));
  ligra::Engine engine(g, 2);
  auto frontier = ligra::VertexSubset::of(g.num_vertices(), {0, 5, 17});
  std::vector<std::uint8_t> seen_push, seen_pull;
  for (int den : {1000000, 1}) {  // force push, then force pull
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(g.num_vertices()),
                                   0);
    auto next = engine.edge_map(
        frontier, [&](vid_t, vid_t v, fg::graph::eid_t) {
          seen[static_cast<std::size_t>(v)] = 1;
          return true;
        },
        [](vid_t) { return true; }, den);
    // The produced frontier is the set of destinations reachable from the
    // input frontier in one hop, independent of direction.
    std::vector<std::uint8_t> flags(static_cast<std::size_t>(g.num_vertices()),
                                    0);
    for (vid_t v : next.ids()) flags[static_cast<std::size_t>(v)] = 1;
    if (den == 1000000) {
      seen_push = flags;
    } else {
      seen_pull = flags;
    }
  }
  EXPECT_EQ(seen_push, seen_pull);
}

TEST(LigraEngine, VertexMapFilters) {
  Graph g = chain_graph(10);
  ligra::Engine engine(g);
  auto all = ligra::VertexSubset::all(10);
  auto evens = engine.vertex_map(all, [](vid_t v) { return v % 2 == 0; });
  EXPECT_EQ(evens.size(), 5);
  EXPECT_TRUE(evens.contains(4));
  EXPECT_FALSE(evens.contains(3));
}

TEST(LigraEngine, PagerankSumsToOneAndRanksHubs) {
  // Star graph: everyone points to vertex 0.
  Coo coo;
  coo.num_src = coo.num_dst = 20;
  for (vid_t v = 1; v < 20; ++v) {
    coo.src.push_back(v);
    coo.dst.push_back(0);
  }
  Graph g(std::move(coo));
  const auto pr = ligra::pagerank(g, 30, 0.85, 2);
  const double total = std::accumulate(pr.begin(), pr.end(), 0.0);
  // Vertex 0 is dangling (no out-edges), so its mass leaks each iteration —
  // total stays in (0, 1] rather than exactly 1 (Ligra's example PageRank
  // behaves the same way).
  EXPECT_GT(total, 0.0);
  EXPECT_LE(total, 1.0 + 1e-9);
  for (std::size_t v = 1; v < 20; ++v) EXPECT_GT(pr[0], pr[v]);
}

TEST(LigraKernels, GcnAggregationMatchesFeatGraph) {
  Graph g(fg::graph::gen_uniform(300, 6.0, 9));
  Tensor x = Tensor::randn({300, 24}, 10);
  for (int threads : {1, 2}) {
    const Tensor got = ligra::gcn_aggregate(g, x, threads);
    const Tensor want =
        fg::core::spmm(g.in_csr(), "copy_u", "sum", {}, {&x, nullptr, nullptr});
    EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-4f);
  }
}

TEST(LigraKernels, MlpAggregationMatchesFeatGraph) {
  Graph g(fg::graph::gen_uniform(200, 5.0, 11));
  Tensor x = Tensor::randn({200, 8}, 12);
  Tensor w = Tensor::randn({8, 32}, 13);
  const Tensor got = ligra::mlp_aggregate(g, x, w, 2);
  const Tensor want =
      fg::core::spmm(g.in_csr(), "mlp", "max", {}, {&x, nullptr, &w});
  EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-4f);
}

TEST(LigraKernels, DotAttentionMatchesFeatGraph) {
  Graph g(fg::graph::gen_uniform(250, 5.0, 14));
  Tensor x = Tensor::randn({250, 16}, 15);
  const Tensor got = ligra::dot_attention(g, x, 2);
  const Tensor want = fg::core::sddmm(g.coo(), "dot", {}, {&x, nullptr});
  EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-4f);
}

TEST(VendorSpmm, MatchesFeatGraphVanillaSpmm) {
  Coo coo = fg::graph::gen_uniform(400, 8.0, 16);
  const auto in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({400, 48}, 17);
  for (int threads : {1, 2}) {
    const Tensor got = fg::baselines::vendor::csr_spmm(in, x, threads);
    const Tensor want =
        fg::core::spmm(in, "copy_u", "sum", {}, {&x, nullptr, nullptr});
    EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-4f);
  }
}

TEST(VendorSpmm, SpmvMatchesSpmmWithWidthOne) {
  Coo coo = fg::graph::gen_uniform(300, 6.0, 18);
  const auto in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({300, 1}, 19);
  std::vector<float> xv(static_cast<std::size_t>(300));
  for (vid_t v = 0; v < 300; ++v) xv[static_cast<std::size_t>(v)] = x.at(v, 0);
  const auto got = fg::baselines::vendor::csr_spmv(in, xv, 2);
  const Tensor want = fg::baselines::vendor::csr_spmm(in, x, 1);
  for (vid_t v = 0; v < 300; ++v)
    EXPECT_NEAR(got[static_cast<std::size_t>(v)], want.at(v, 0), 1e-4f);
}

TEST(VendorSpmm, HandlesEmptyRows) {
  Coo coo;
  coo.num_src = coo.num_dst = 4;
  coo.src = {0};
  coo.dst = {1};
  const auto in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::full({4, 3}, 2.0f);
  const Tensor out = fg::baselines::vendor::csr_spmm(in, x, 1);
  EXPECT_EQ(out.at(0, 0), 0.0f);
  EXPECT_EQ(out.at(1, 0), 2.0f);
}
