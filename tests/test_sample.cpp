// Sampler / block invariants and the full-fanout differential (ISSUE 5):
// fanout bounds, no duplicate neighbors without replacement, relabeling
// bijectivity, per-segment degree-slice caches, and bit-for-bit agreement of
// full-fanout minibatch inference with full-graph kernels and models —
// pinned per supported ISA.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <unordered_set>

#include "core/simd.hpp"
#include "core/spmm.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "minidgl/train.hpp"
#include "sample/feature_loader.hpp"
#include "sample/neighbor_sampler.hpp"
#include "support/rng.hpp"

namespace fg = featgraph;
using fg::graph::Csr;
using fg::graph::vid_t;
using fg::sample::Block;
using fg::sample::MinibatchBlocks;
using fg::sample::NeighborSampler;
using fg::sample::SamplerConfig;
using fg::tensor::Tensor;

namespace {

Csr rmat_csr(vid_t n, double avg_degree, std::uint64_t seed) {
  return fg::graph::coo_to_in_csr(fg::graph::gen_rmat(n, avg_degree, seed));
}

std::vector<vid_t> all_vertices(const Csr& csr) {
  std::vector<vid_t> v(static_cast<std::size_t>(csr.num_rows));
  for (vid_t i = 0; i < csr.num_rows; ++i)
    v[static_cast<std::size_t>(i)] = i;
  return v;
}

bool tensors_bit_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Structural equality of two sampled minibatches.
bool blocks_equal(const MinibatchBlocks& a, const MinibatchBlocks& b) {
  if (a.blocks.size() != b.blocks.size()) return false;
  for (std::size_t l = 0; l < a.blocks.size(); ++l) {
    const Block& x = a.blocks[l];
    const Block& y = b.blocks[l];
    if (x.src_nodes != y.src_nodes || x.dst_nodes != y.dst_nodes ||
        x.adj.indptr != y.adj.indptr || x.adj.indices != y.adj.indices ||
        x.adj.edge_ids != y.adj.edge_ids) {
      return false;
    }
  }
  return true;
}

}  // namespace

TEST(Sample, FanoutBoundsRespected) {
  const Csr csr = rmat_csr(1024, 8.0, 5);
  for (const bool replace : {false, true}) {
    NeighborSampler sampler(csr, {{4, 7}, replace, 42});
    const auto mfg = sampler.sample({3, 99, 512, 700}, 0);
    ASSERT_EQ(mfg.blocks.size(), 2u);
    const std::int64_t fanouts[2] = {4, 7};
    for (int l = 0; l < 2; ++l) {
      const Block& b = mfg.blocks[static_cast<std::size_t>(l)];
      for (vid_t v = 0; v < b.num_dst(); ++v) {
        const std::int64_t deg_orig =
            csr.degree(b.dst_nodes[static_cast<std::size_t>(v)]);
        const std::int64_t deg_block = b.adj.degree(v);
        EXPECT_LE(deg_block, fanouts[l]);
        if (replace) {
          // Exactly fanout draws on non-empty rows.
          EXPECT_EQ(deg_block, deg_orig == 0 ? 0 : fanouts[l]);
        } else {
          EXPECT_EQ(deg_block, std::min(deg_orig, fanouts[l]));
        }
      }
    }
  }
}

TEST(Sample, NoDuplicateNeighborsWithoutReplacement) {
  const Csr csr = rmat_csr(2048, 16.0, 9);
  NeighborSampler sampler(csr, {{5, 11}, /*replace=*/false, 17});
  const auto mfg = sampler.sample(all_vertices(csr), 3);
  for (const Block& b : mfg.blocks) {
    for (vid_t v = 0; v < b.num_dst(); ++v) {
      std::set<fg::graph::eid_t> seen;
      for (std::int64_t i = b.adj.indptr[static_cast<std::size_t>(v)];
           i < b.adj.indptr[static_cast<std::size_t>(v) + 1]; ++i) {
        EXPECT_TRUE(seen.insert(b.adj.edge_ids[static_cast<std::size_t>(i)])
                        .second)
            << "duplicate sampled edge in row " << v;
      }
    }
  }
}

TEST(Sample, RelabelingIsBijective) {
  const Csr csr = rmat_csr(1024, 12.0, 21);
  NeighborSampler sampler(csr, {{6, 6}, false, 4});
  const auto mfg = sampler.sample({0, 5, 17, 100, 900}, 1);
  const auto coo = fg::graph::gen_rmat(1024, 12.0, 21);
  for (const Block& b : mfg.blocks) {
    // dst-then-src: the first num_dst sources ARE the destinations.
    ASSERT_GE(b.num_src(), b.num_dst());
    for (vid_t i = 0; i < b.num_dst(); ++i)
      EXPECT_EQ(b.src_nodes[static_cast<std::size_t>(i)],
                b.dst_nodes[static_cast<std::size_t>(i)]);
    // Local -> original is injective (a bijection onto its image).
    std::unordered_set<vid_t> uniq(b.src_nodes.begin(), b.src_nodes.end());
    EXPECT_EQ(uniq.size(), b.src_nodes.size());
    // Every edge maps back to a real edge of the original graph with the
    // endpoints the relabeling names.
    EXPECT_EQ(b.adj.num_rows, b.num_dst());
    EXPECT_EQ(b.adj.num_cols, b.num_src());
    for (vid_t v = 0; v < b.num_dst(); ++v) {
      for (std::int64_t i = b.adj.indptr[static_cast<std::size_t>(v)];
           i < b.adj.indptr[static_cast<std::size_t>(v) + 1]; ++i) {
        const vid_t u_local = b.adj.indices[static_cast<std::size_t>(i)];
        ASSERT_GE(u_local, 0);
        ASSERT_LT(u_local, b.num_src());
        const auto e = b.adj.edge_ids[static_cast<std::size_t>(i)];
        ASSERT_GE(e, 0);
        ASSERT_LT(e, coo.num_edges());
        EXPECT_EQ(coo.src[static_cast<std::size_t>(e)],
                  b.src_nodes[static_cast<std::size_t>(u_local)]);
        EXPECT_EQ(coo.dst[static_cast<std::size_t>(e)],
                  b.dst_nodes[static_cast<std::size_t>(v)]);
      }
    }
  }
}

TEST(Sample, SamplerIsDeterministicAndStreamsAreIndependent) {
  const Csr csr = rmat_csr(1024, 10.0, 33);
  const auto seeds = all_vertices(csr);
  NeighborSampler sampler(csr, {{3, 3}, false, 7});
  // Same (seed, batch) => identical blocks, call order irrelevant.
  const auto a0 = sampler.sample(seeds, 0);
  const auto a1 = sampler.sample(seeds, 1);
  const auto b1 = sampler.sample(seeds, 1);
  const auto b0 = sampler.sample(seeds, 0);
  EXPECT_TRUE(blocks_equal(a0, b0));
  EXPECT_TRUE(blocks_equal(a1, b1));
  // Different batch streams genuinely differ.
  EXPECT_FALSE(blocks_equal(a0, a1));
  // Different base seeds genuinely differ.
  NeighborSampler other(csr, {{3, 3}, false, 8});
  EXPECT_FALSE(blocks_equal(a0, other.sample(seeds, 0)));
}

TEST(Sample, FullFanoutReproducesFullGraphSpmmBitForBit) {
  // The block is a drop-in adjacency for generalized_spmm: with full fanout
  // over every vertex, gathering features by src_nodes and running the
  // block SpMM must reproduce the full-graph SpMM to the bit, for every
  // reducer and every supported ISA.
  const Csr csr = rmat_csr(512, 9.0, 77);
  const Tensor x = Tensor::randn({csr.num_cols, 24}, 11);
  NeighborSampler sampler(csr, {{-1}, false, 1});
  const auto mfg = sampler.sample(all_vertices(csr), 0);
  const Block& b = mfg.blocks[0];
  const Tensor gathered = fg::sample::gather_rows(x, b.src_nodes);
  for (const auto isa : fg::simd::supported_isas()) {
    fg::simd::ScopedIsa pin(isa);
    for (const char* reduce : {"sum", "mean", "max"}) {
      const Tensor full =
          fg::core::spmm(csr, "copy_u", reduce, {}, {&x, nullptr, nullptr});
      const Tensor block = fg::core::spmm(b.adj, "copy_u", reduce, {},
                                          {&gathered, nullptr, nullptr});
      EXPECT_TRUE(tensors_bit_equal(full, block))
          << reduce << " under " << fg::simd::isa_name(isa);
    }
  }
}

TEST(Sample, FullFanoutMinibatchMatchesFullGraphInferenceBitForBit) {
  // The acceptance differential: full-fanout minibatch inference ==
  // full-graph minidgl inference, bit for bit, for GCN and GraphSage (mean
  // and max aggregators) on an R-MAT-backed SBM task, per supported ISA.
  const auto data = fg::minidgl::make_sbm_classification(
      /*n=*/600, /*avg_degree=*/10.0, /*num_classes=*/4, /*p_in=*/0.9,
      /*feat_dim=*/16, /*signal=*/2.0f, /*seed=*/77);
  std::vector<std::int64_t> rows(static_cast<std::size_t>(
      data.graph.num_vertices()));
  for (std::size_t i = 0; i < rows.size(); ++i)
    rows[i] = static_cast<std::int64_t>(i);

  for (const char* kind : {"gcn", "sage-mean", "sage-max"}) {
    for (const auto isa : fg::simd::supported_isas()) {
      fg::simd::ScopedIsa pin(isa);
      fg::minidgl::ExecContext ctx;
      ctx.num_threads = 2;
      fg::minidgl::Trainer trainer(
          data, fg::minidgl::Model(kind, 16, 24, 4, /*seed=*/42), ctx, 0.05f);
      // A couple of training steps so the compared forward runs on
      // non-initialization weights.
      trainer.train_epoch();
      trainer.train_epoch();

      fg::minidgl::Var x =
          fg::minidgl::make_leaf(data.features.clone(), false, "features");
      const Tensor full =
          trainer.model().forward(trainer.context(), data.graph, x)->value();

      fg::minidgl::MinibatchInferOptions opts;
      opts.sampler.fanouts = {-1, -1};
      opts.batch_size = 128;  // several batches, not one giant block
      const auto mb = trainer.infer_minibatch(opts, rows);
      EXPECT_TRUE(tensors_bit_equal(full, mb.log_probs))
          << kind << " under " << fg::simd::isa_name(isa);
    }
  }
}

TEST(Sample, GatherRowsMatchesSourceRows) {
  const Tensor x = Tensor::randn({100, 19}, 3);
  std::vector<vid_t> rows = {99, 0, 42, 42, 7};
  for (const int threads : {1, 3}) {
    const Tensor g = fg::sample::gather_rows(x, rows, threads);
    ASSERT_EQ(g.rows(), 5);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(std::memcmp(g.row(static_cast<std::int64_t>(i)),
                            x.row(rows[i]), 19 * sizeof(float)),
                0);
    }
  }
}

TEST(Sample, SegmentDegreeSlicesMatchCsrDegrees) {
  // The per-segment degree-slice cache (ROADMAP item): slices must agree
  // with recomputation, sum to the unpartitioned CSR's cached degrees, and
  // the partitioning's reassembled row_degrees must be that sum exactly.
  const Csr csr = rmat_csr(512, 14.0, 3);
  for (const int parts : {2, 5}) {
    const auto p = fg::graph::partition_by_source(csr, parts);
    std::vector<std::int64_t> sum(static_cast<std::size_t>(csr.num_rows), 0);
    for (const auto& seg : p.parts) {
      const auto& slice = seg.degrees();  // seeded by partition_by_source
      ASSERT_EQ(slice.size(), static_cast<std::size_t>(csr.num_rows));
      for (vid_t v = 0; v < csr.num_rows; ++v) {
        EXPECT_EQ(slice[static_cast<std::size_t>(v)],
                  seg.indptr[static_cast<std::size_t>(v) + 1] -
                      seg.indptr[static_cast<std::size_t>(v)]);
        sum[static_cast<std::size_t>(v)] += slice[static_cast<std::size_t>(v)];
      }
    }
    EXPECT_EQ(sum, csr.degrees());
    EXPECT_EQ(p.row_degrees(), csr.degrees());
  }
}

TEST(Sample, EmptyAndEdgeCaseRows) {
  // A vertex with no in-edges yields an empty block row; sampling it alone
  // still produces a well-formed (possibly self-only) block.
  fg::graph::Coo coo;
  coo.num_src = coo.num_dst = 4;
  coo.src = {1, 2};
  coo.dst = {0, 0};
  const Csr csr = fg::graph::coo_to_in_csr(coo);
  NeighborSampler sampler(csr, {{2}, false, 1});
  const auto mfg = sampler.sample({3, 0}, 0);
  const Block& b = mfg.blocks[0];
  EXPECT_EQ(b.num_dst(), 2);
  EXPECT_EQ(b.adj.degree(0), 0);  // vertex 3 has no in-edges
  EXPECT_EQ(b.adj.degree(1), 2);  // vertex 0 has exactly 2
  EXPECT_EQ(b.src_nodes[0], 3);
  EXPECT_EQ(b.src_nodes[1], 0);
}
