#include <gtest/gtest.h>

#include "baselines/cusparse_sim.hpp"
#include "baselines/gunrock_sim.hpp"
#include "core/spmm.hpp"
#include "gpusim/sddmm_gpu.hpp"
#include "gpusim/spmm_gpu.hpp"
#include "graph/generators.hpp"

namespace fg = featgraph;
using fg::core::GpuSddmmSchedule;
using fg::core::GpuSpmmSchedule;
using fg::graph::Coo;
using fg::graph::Csr;
using fg::tensor::Tensor;

namespace {

struct Fixture {
  Coo coo;
  Csr in_csr;
  Tensor x;

  explicit Fixture(std::uint64_t seed = 1, fg::graph::vid_t n = 400,
                   double deg = 8.0, std::int64_t d = 32)
      : coo(fg::graph::gen_uniform(n, deg, seed)),
        in_csr(fg::graph::coo_to_in_csr(coo)),
        x(Tensor::randn({n, d}, seed + 1)) {}
};

Tensor cpu_reference(const Csr& adj, const Tensor& x, const char* red) {
  return fg::core::spmm(adj, "copy_u", red, {}, {&x, nullptr, nullptr});
}

}  // namespace

TEST(GpuSpmm, OutputMatchesCpuKernelAllReducers) {
  Fixture f;
  for (const char* red : {"sum", "max", "mean"}) {
    const auto r = fg::gpusim::spmm_gpu(f.in_csr, "copy_u", red, {},
                                        {&f.x, nullptr, nullptr});
    EXPECT_LT(fg::tensor::max_abs_diff(r.out, cpu_reference(f.in_csr, f.x, red)),
              1e-4f)
        << red;
    EXPECT_GT(r.cost.total_s, 0.0);
  }
}

TEST(GpuSpmm, HybridPartitioningPreservesOutput) {
  // Hybrid partitioning is a traversal/staging optimization; results must be
  // bit-compatible with the plain kernel.
  const Coo coo = fg::graph::gen_two_class(40, 200, 400, 4, 3);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({440, 64}, 4);
  GpuSpmmSchedule plain;
  GpuSpmmSchedule hybrid;
  hybrid.hybrid_partition = true;
  hybrid.num_blocks = 16;
  const auto a =
      fg::gpusim::spmm_gpu(in, "copy_u", "sum", plain, {&x, nullptr, nullptr});
  const auto b =
      fg::gpusim::spmm_gpu(in, "copy_u", "sum", hybrid, {&x, nullptr, nullptr});
  EXPECT_EQ(fg::tensor::max_abs_diff(a.out, b.out), 0.0f);
}

TEST(GpuSpmm, HybridWinsOnSkewedGraphLosesNothingElsewhere) {
  // rand-100K-style skew: high-degree sources are re-read hundreds of times;
  // staging them in shared memory must cut global load transactions
  // (Fig. 13's mechanism).
  const Coo skewed = fg::graph::gen_two_class(60, 500, 600, 5, 5);
  const Csr in = fg::graph::coo_to_in_csr(skewed);
  Tensor x = Tensor::randn({660, 128}, 6);
  GpuSpmmSchedule plain;
  plain.num_blocks = 32;
  GpuSpmmSchedule hybrid = plain;
  hybrid.hybrid_partition = true;
  const auto a =
      fg::gpusim::spmm_gpu(in, "copy_u", "sum", plain, {&x, nullptr, nullptr});
  const auto b =
      fg::gpusim::spmm_gpu(in, "copy_u", "sum", hybrid, {&x, nullptr, nullptr});
  EXPECT_LT(b.stats.global_load_transactions, a.stats.global_load_transactions);
  EXPECT_LT(b.cost.total_s, a.cost.total_s);
}

TEST(GpuSpmm, HybridSmemOverflowPaysMergeCost) {
  // When a block's staged high-degree rows exceed the shared-memory budget,
  // the sweep splits into column partitions, re-reading the adjacency and
  // merging output tiles (the Sec. III-C-3 trade-off). Shrinking the smem
  // budget must therefore increase the simulated traffic.
  const Coo skewed = fg::graph::gen_two_class(200, 400, 1800, 4, 21);
  const Csr in = fg::graph::coo_to_in_csr(skewed);
  Tensor x = Tensor::randn({2000, 256}, 22);
  GpuSpmmSchedule hybrid;
  hybrid.hybrid_partition = true;
  hybrid.hybrid_rows_per_tile = 64;

  fg::gpusim::DeviceSpec roomy;
  fg::gpusim::DeviceSpec cramped;
  cramped.smem_bytes_per_block = 8 * 1024;  // 8 KB instead of 96 KB
  const auto a =
      fg::gpusim::spmm_gpu(in, "copy_u", "sum", hybrid, {&x, nullptr, nullptr},
                           roomy);
  const auto b =
      fg::gpusim::spmm_gpu(in, "copy_u", "sum", hybrid, {&x, nullptr, nullptr},
                           cramped);
  EXPECT_EQ(fg::tensor::max_abs_diff(a.out, b.out), 0.0f);
  EXPECT_GT(b.stats.global_load_transactions, a.stats.global_load_transactions);
}

TEST(GpuSpmm, UMulEChargesEdgeScalarTraffic) {
  Fixture f(20, 300, 8.0, 64);
  Tensor w = Tensor::randn({f.in_csr.nnz()}, 23);
  const auto weighted = fg::gpusim::spmm_gpu(f.in_csr, "u_mul_e", "sum", {},
                                             {&f.x, &w, nullptr});
  const auto plain = fg::gpusim::spmm_gpu(f.in_csr, "copy_u", "sum", {},
                                          {&f.x, nullptr, nullptr});
  EXPECT_GT(weighted.stats.global_load_transactions,
            plain.stats.global_load_transactions);
  EXPECT_GT(weighted.stats.flops, plain.stats.flops);
  // Functional check against the CPU kernel.
  const Tensor want =
      fg::core::spmm(f.in_csr, "u_mul_e", "sum", {}, {&f.x, &w, nullptr});
  EXPECT_LT(fg::tensor::max_abs_diff(weighted.out, want), 1e-4f);
}

TEST(GpuSpmm, CostGrowsWithFeatureLength) {
  Fixture f32(1, 400, 8.0, 32);
  Fixture f256(1, 400, 8.0, 256);
  const auto a = fg::gpusim::spmm_gpu(f32.in_csr, "copy_u", "sum", {},
                                      {&f32.x, nullptr, nullptr});
  const auto b = fg::gpusim::spmm_gpu(f256.in_csr, "copy_u", "sum", {},
                                      {&f256.x, nullptr, nullptr});
  EXPECT_GT(b.cost.total_s, a.cost.total_s);
}

TEST(GpuSpmm, SmallGridsUnderutilizeTheDevice) {
  // Fig. 15: more CUDA blocks -> better utilization until saturation.
  Fixture f(2, 2000, 16.0, 128);
  double prev = 1e30;
  for (int blocks : {8, 64, 4096}) {
    GpuSpmmSchedule sched;
    sched.num_blocks = blocks;
    sched.threads_per_block = 128;
    const auto r = fg::gpusim::spmm_gpu(f.in_csr, "copy_u", "sum", sched,
                                        {&f.x, nullptr, nullptr});
    EXPECT_LE(r.cost.total_s, prev * 1.0001) << blocks;
    prev = r.cost.total_s;
  }
}

TEST(GpuSpmm, MlpAggregationMatchesCpu) {
  Fixture f(7, 300, 6.0, 8);
  Tensor w = Tensor::randn({8, 48}, 8);
  const auto r = fg::gpusim::spmm_gpu(f.in_csr, "mlp", "max", {},
                                      {&f.x, nullptr, &w});
  const Tensor want =
      fg::core::spmm(f.in_csr, "mlp", "max", {}, {&f.x, nullptr, &w});
  EXPECT_LT(fg::tensor::max_abs_diff(r.out, want), 1e-4f);
  EXPECT_GT(r.stats.flops, 0.0);
}

TEST(GpuSddmm, OutputMatchesCpuKernel) {
  Fixture f(9, 300, 6.0, 64);
  for (bool tree : {false, true}) {
    GpuSddmmSchedule sched;
    sched.tree_reduce = tree;
    const auto r = fg::gpusim::sddmm_gpu(f.coo, "dot", sched, {&f.x, nullptr});
    const Tensor want = fg::core::sddmm(f.coo, "dot", {}, {&f.x, nullptr});
    EXPECT_LT(fg::tensor::max_abs_diff(r.out, want), 1e-4f);
  }
}

TEST(GpuSddmm, TreeReductionWinsAtLargeFeatureLengths) {
  // Fig. 12's mechanism: serial per-thread dots lose occupancy as the
  // feature length grows; tree reduction keeps full occupancy.
  Fixture small(10, 300, 6.0, 32);
  Fixture large(10, 300, 6.0, 512);
  GpuSddmmSchedule tree, serial;
  serial.tree_reduce = false;

  const auto t32 = fg::gpusim::sddmm_gpu(small.coo, "dot", tree, {&small.x, nullptr});
  const auto s32 = fg::gpusim::sddmm_gpu(small.coo, "dot", serial, {&small.x, nullptr});
  const auto t512 = fg::gpusim::sddmm_gpu(large.coo, "dot", tree, {&large.x, nullptr});
  const auto s512 = fg::gpusim::sddmm_gpu(large.coo, "dot", serial, {&large.x, nullptr});

  const double gap32 = s32.cost.total_s / t32.cost.total_s;
  const double gap512 = s512.cost.total_s / t512.cost.total_s;
  EXPECT_GT(gap512, gap32);
  EXPECT_GT(gap512, 1.5);  // "up to 2x" in Fig. 12
  EXPECT_LT(gap32, 1.3);
}

TEST(GpuSddmm, SerialOccupancyModelIsMonotone) {
  EXPECT_DOUBLE_EQ(fg::gpusim::serial_dot_occupancy(16), 1.0);
  EXPECT_GT(fg::gpusim::serial_dot_occupancy(128),
            fg::gpusim::serial_dot_occupancy(512) - 1e-12);
  EXPECT_GE(fg::gpusim::serial_dot_occupancy(100000), 0.45);
}

// --- GPU row assignment (nnz_split_point reuse) ----------------------------

namespace {

/// Max and min per-tile nnz under the given boundaries.
std::pair<std::int64_t, std::int64_t> tile_nnz_spread(
    const Csr& adj, const std::vector<std::int64_t>& tiles) {
  std::int64_t hi = 0, lo = adj.nnz();
  for (std::size_t t = 0; t + 1 < tiles.size(); ++t) {
    const std::int64_t nnz = adj.indptr[static_cast<std::size_t>(tiles[t + 1])] -
                             adj.indptr[static_cast<std::size_t>(tiles[t])];
    hi = std::max(hi, nnz);
    lo = std::min(lo, nnz);
  }
  return {hi, lo};
}

}  // namespace

TEST(GpuSpmm, RowTileBoundariesTileTheRowRange) {
  const Coo coo = fg::graph::gen_rmat(777, 9.0, 31);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  for (const auto lb : {fg::core::LoadBalance::kStaticRows,
                        fg::core::LoadBalance::kNnzBalanced}) {
    const auto tiles = fg::gpusim::gpu_row_tile_boundaries(in, 32, lb);
    // Same tile COUNT for both policies, boundaries monotone, exact cover.
    // (R-MAT rounds the vertex count up to a power of two.)
    EXPECT_EQ(static_cast<std::int64_t>(tiles.size()),
              (in.num_rows + 31) / 32 + 1);
    EXPECT_EQ(tiles.front(), 0);
    EXPECT_EQ(tiles.back(), in.num_rows);
    for (std::size_t t = 0; t + 1 < tiles.size(); ++t)
      EXPECT_LE(tiles[t], tiles[t + 1]);
  }
}

TEST(GpuSpmm, NnzBalancedRowAssignmentEvensTileWork) {
  // The ROADMAP item: GPU-sim staging tiles reuse the CPU kernels'
  // nnz_split_point. On a skewed R-MAT graph, uniform row chunks leave the
  // hub tile holding a large nnz multiple of the lightest tile; nnz-balanced
  // boundaries must strictly shrink that spread.
  const Coo coo = fg::graph::gen_rmat(2000, 12.0, 33);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  const auto static_tiles = fg::gpusim::gpu_row_tile_boundaries(
      in, 64, fg::core::LoadBalance::kStaticRows);
  const auto nnz_tiles = fg::gpusim::gpu_row_tile_boundaries(
      in, 64, fg::core::LoadBalance::kNnzBalanced);
  const auto [static_hi, static_lo] = tile_nnz_spread(in, static_tiles);
  const auto [nnz_hi, nnz_lo] = tile_nnz_spread(in, nnz_tiles);
  // Heaviest tile strictly lighter, heavy/light ratio strictly tighter.
  EXPECT_LT(nnz_hi, static_hi);
  EXPECT_LT(static_cast<double>(nnz_hi) / std::max<std::int64_t>(1, nnz_lo),
            static_cast<double>(static_hi) /
                std::max<std::int64_t>(1, static_lo));
}

TEST(GpuSpmm, RowTileBoundariesEmptyGraphOversizedTilesAndEmptyRows) {
  // The documented contract at its edges: tile count is EXACTLY
  // ceil(n / rows_per_tile), boundaries monotone and covering [0, n].
  for (const auto lb : {fg::core::LoadBalance::kStaticRows,
                        fg::core::LoadBalance::kNnzBalanced}) {
    // n == 0: ceil(0 / rpt) = ZERO tiles — the boundary vector is {0}, not
    // a phantom [0, 0) tile (the pre-fix max(1, ...) floor).
    Coo none;
    none.num_src = none.num_dst = 0;
    const Csr empty = fg::graph::coo_to_in_csr(none);
    const auto zero_tiles = fg::gpusim::gpu_row_tile_boundaries(empty, 32, lb);
    ASSERT_EQ(zero_tiles.size(), 1u);
    EXPECT_EQ(zero_tiles[0], 0);

    // rows_per_tile > n: one tile owning every row.
    const Coo coo = fg::graph::gen_uniform(5, 3.0, 91);
    const Csr in = fg::graph::coo_to_in_csr(coo);
    const auto one_tile = fg::gpusim::gpu_row_tile_boundaries(in, 64, lb);
    ASSERT_EQ(one_tile.size(), 2u);
    EXPECT_EQ(one_tile.front(), 0);
    EXPECT_EQ(one_tile.back(), in.num_rows);

    // kNnzBalanced on an all-empty-row graph (n > 0, nnz == 0): the nnz
    // binary search has no mass to balance; boundaries must still be
    // monotone, cover [0, n], and keep the ceil tile count.
    Coo edgeless;
    edgeless.num_src = edgeless.num_dst = 10;
    const Csr hollow = fg::graph::coo_to_in_csr(edgeless);
    const auto tiles = fg::gpusim::gpu_row_tile_boundaries(hollow, 3, lb);
    ASSERT_EQ(static_cast<std::int64_t>(tiles.size()), (10 + 2) / 3 + 1);
    EXPECT_EQ(tiles.front(), 0);
    EXPECT_EQ(tiles.back(), 10);
    for (std::size_t t = 0; t + 1 < tiles.size(); ++t)
      EXPECT_LE(tiles[t], tiles[t + 1]) << "lb=" << static_cast<int>(lb);
  }
}

TEST(GpuSpmm, HybridOutputUnchangedByRowAssignment) {
  // Row assignment moves simulated traffic, never arithmetic.
  const Coo skewed = fg::graph::gen_two_class(60, 500, 600, 5, 5);
  const Csr in = fg::graph::coo_to_in_csr(skewed);
  Tensor x = Tensor::randn({660, 64}, 44);
  GpuSpmmSchedule a, b;
  a.hybrid_partition = b.hybrid_partition = true;
  a.row_assignment = fg::core::LoadBalance::kStaticRows;
  b.row_assignment = fg::core::LoadBalance::kNnzBalanced;
  const auto ra =
      fg::gpusim::spmm_gpu(in, "copy_u", "sum", a, {&x, nullptr, nullptr});
  const auto rb =
      fg::gpusim::spmm_gpu(in, "copy_u", "sum", b, {&x, nullptr, nullptr});
  EXPECT_EQ(fg::tensor::max_abs_diff(ra.out, rb.out), 0.0f);
}

// --- baselines on gpusim ---------------------------------------------------

TEST(GunrockSim, SpmmOutputCorrectButAtomicBound) {
  Fixture f(11, 400, 10.0, 128);
  const auto r = fg::baselines::gunrock::spmm(f.in_csr, "copy_u", "sum",
                                              {&f.x, nullptr, nullptr});
  EXPECT_LT(fg::tensor::max_abs_diff(r.out, cpu_reference(f.in_csr, f.x, "sum")),
            1e-4f);
  // One atomic per feature element per edge; atomics dominate the cost.
  EXPECT_DOUBLE_EQ(r.stats.global_atomics,
                   static_cast<double>(f.in_csr.nnz()) * 128);
  EXPECT_GT(r.cost.atomic_s, r.cost.mem_s);
}

TEST(GunrockSim, MuchSlowerThanFeatGraphOnAggregation) {
  // Table IV: 24x-206x on GCN aggregation, growing with feature length.
  Fixture f(12, 500, 12.0, 256);
  const auto gunrock = fg::baselines::gunrock::spmm(f.in_csr, "copy_u", "sum",
                                                    {&f.x, nullptr, nullptr});
  const auto featgraph = fg::gpusim::spmm_gpu(f.in_csr, "copy_u", "sum", {},
                                              {&f.x, nullptr, nullptr});
  EXPECT_GT(gunrock.cost.total_s / featgraph.cost.total_s, 10.0);
}

TEST(GunrockSim, SddmmGapIsModest) {
  // Table IV(c): only 1.2x-3.1x on dot-product attention (no atomics). The
  // graph must carry enough edges for a one-thread-per-edge grid to fill
  // the device, as the paper's datasets do.
  Fixture f(13, 8000, 40.0, 128);
  const auto gunrock =
      fg::baselines::gunrock::sddmm(f.coo, "dot", {&f.x, nullptr});
  const auto featgraph =
      fg::gpusim::sddmm_gpu(f.coo, "dot", {}, {&f.x, nullptr});
  const double ratio = gunrock.cost.total_s / featgraph.cost.total_s;
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 5.0);
  EXPECT_LT(fg::tensor::max_abs_diff(gunrock.out, featgraph.out), 1e-4f);
}

TEST(CusparseSim, MatchesFeatGraphWithinTenPercent) {
  // Table IV(a): FeatGraph is "on par with cuSPARSE" — 10-20% either way.
  Fixture f(14, 600, 10.0, 128);
  const auto cusparse =
      fg::baselines::cusparse::spmm(f.in_csr, {&f.x, nullptr, nullptr});
  const auto featgraph = fg::gpusim::spmm_gpu(f.in_csr, "copy_u", "sum", {},
                                              {&f.x, nullptr, nullptr});
  EXPECT_LT(fg::tensor::max_abs_diff(cusparse.out, featgraph.out), 1e-4f);
  const double ratio = featgraph.cost.total_s / cusparse.cost.total_s;
  EXPECT_GT(ratio, 1.0);  // generated code pays a small overhead...
  EXPECT_LT(ratio, 1.3);  // ...but stays on par
}

TEST(CusparseSim, HybridFeatGraphBeatsCusparseOnSkewedGraphs) {
  // Fig. 13: hybrid partitioning wins back 10-20% on rand-100K-like skew.
  // Reuse needs deg_high * rows_per_block / n >= ~2 (each staged source is
  // then read twice per block), which the paper's degree-2000 hubs provide.
  const Coo skewed = fg::graph::gen_two_class(500, 2000, 19500, 5, 15);
  const Csr in = fg::graph::coo_to_in_csr(skewed);
  Tensor x = Tensor::randn({20000, 128}, 16);
  const auto cusparse = fg::baselines::cusparse::spmm(in, {&x, nullptr, nullptr});
  fg::core::GpuSpmmSchedule hybrid;
  hybrid.hybrid_partition = true;
  hybrid.num_blocks = 1024;
  hybrid.threads_per_block = 128;
  const auto featgraph =
      fg::gpusim::spmm_gpu(in, "copy_u", "sum", hybrid, {&x, nullptr, nullptr});
  EXPECT_LT(featgraph.cost.total_s, cusparse.cost.total_s);
}

// --- cost model ---------------------------------------------------------

TEST(CostModel, EmptyKernelCostsLaunchOverhead) {
  fg::gpusim::KernelStats s;
  s.num_blocks = 1024;
  s.threads_per_block = 256;
  const auto c = fg::gpusim::estimate_time(s, {});
  EXPECT_NEAR(c.total_s, fg::gpusim::DeviceSpec{}.launch_overhead_s, 1e-9);
}

TEST(CostModel, MemoryBoundKernelScalesWithTraffic) {
  fg::gpusim::KernelStats s;
  s.num_blocks = 100000;
  s.threads_per_block = 256;
  s.add_load_bytes(1e9);
  const auto c1 = fg::gpusim::estimate_time(s, {});
  s.add_load_bytes(1e9);
  const auto c2 = fg::gpusim::estimate_time(s, {});
  EXPECT_NEAR(c2.mem_s / c1.mem_s, 2.0, 1e-6);
}

TEST(CostModel, DenseOpUsesRoofline) {
  fg::gpusim::DeviceSpec spec;
  // Compute-bound: lots of flops, no bytes.
  const double t1 = fg::gpusim::dense_op_seconds(1e12, 0, spec);
  EXPECT_NEAR(t1, 1e12 / spec.flops_per_s + spec.launch_overhead_s, 1e-9);
  // Memory-bound.
  const double t2 = fg::gpusim::dense_op_seconds(0, 81e9, spec);
  EXPECT_NEAR(t2, 0.1 + spec.launch_overhead_s, 1e-3);
}
