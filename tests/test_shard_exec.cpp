// Shard-parallel execution engine (parallel/shard_exec.hpp) — the tentpole
// determinism contract: a shard OWNS its destination rows, so sharded
// SpMM / fused attention / neighbor sampling are BIT-IDENTICAL to their
// unsharded runs at every thread count, shard count, steal granularity, and
// ISA. Plus the shard decomposition properties (bounds tile the row range,
// LLC-driven shard sizing) and the shard transforms' Schedule-IR surface
// (validation, lowering, hashing).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/attention.hpp"
#include "core/schedule_ir.hpp"
#include "core/spmm.hpp"
#include "graph/generators.hpp"
#include "parallel/shard_exec.hpp"
#include "sample/neighbor_sampler.hpp"
#include "tensor/tensor.hpp"

namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::core::LoweredSpmmPlan;
using fg::core::ScheduleIr;
using fg::graph::Csr;
using fg::simd::Isa;
using fg::tensor::Tensor;

namespace {

bool bit_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

std::vector<std::int64_t> indptr_of(const std::vector<std::int64_t>& degs) {
  std::vector<std::int64_t> p(degs.size() + 1, 0);
  for (std::size_t i = 0; i < degs.size(); ++i) p[i + 1] = p[i] + degs[i];
  return p;
}

}  // namespace

// --- shard decomposition --------------------------------------------------

TEST(ShardBounds, TileTheRowRange) {
  const auto indptr = indptr_of({3, 0, 7, 1, 0, 0, 12, 2, 0, 5, 1, 1});
  const std::int64_t n = 12;
  for (const bool nnz_balanced : {false, true}) {
    for (int shards : {1, 2, 3, 5, 12}) {
      const auto bounds = fg::parallel::shard_row_bounds(
          nnz_balanced ? indptr.data() : nullptr, n, shards);
      ASSERT_EQ(bounds.size(), static_cast<std::size_t>(shards) + 1);
      EXPECT_EQ(bounds.front(), 0);
      EXPECT_EQ(bounds.back(), n);
      for (std::size_t s = 0; s + 1 < bounds.size(); ++s)
        EXPECT_LE(bounds[s], bounds[s + 1]);
    }
  }
}

TEST(ShardBounds, ShardCountClampsToRows) {
  const auto bounds = fg::parallel::shard_row_bounds(nullptr, 3, 16);
  ASSERT_EQ(bounds.size(), 4u);  // clamped to 3 shards
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 3);
}

TEST(ShardBounds, NnzBalancedBoundsIsolateHubs) {
  // One 1000-edge hub among degree-1 rows: nnz-balanced shard boundaries
  // keep every shard within total/shards + max_degree edges.
  std::vector<std::int64_t> degs(1000, 1);
  degs[0] = 1000;
  const auto indptr = indptr_of(degs);
  const std::int64_t total = indptr.back();
  const int shards = 8;
  const auto bounds = fg::parallel::shard_row_bounds(indptr.data(), 1000,
                                                     shards);
  for (int s = 0; s < shards; ++s) {
    const auto lo = static_cast<std::size_t>(bounds[s]);
    const auto hi = static_cast<std::size_t>(bounds[s + 1]);
    EXPECT_LE(indptr[hi] - indptr[lo], total / shards + 1000) << "shard " << s;
  }
}

TEST(ChooseNumShards, SizesShardsToTheLlcBudget) {
  fg::parallel::ShardSizing sizing;
  sizing.bytes_per_row = 256;
  sizing.bytes_per_edge = 16;
  sizing.llc_bytes = 1024.0 * 1024.0;

  // Tiny working set, 1 thread: sharding is pure overhead.
  EXPECT_EQ(fg::parallel::choose_num_shards(1000, 8000, sizing, 1), 1);
  // Tiny working set, many threads: stealing still needs >= 2 shards/lane.
  EXPECT_EQ(fg::parallel::choose_num_shards(1000, 8000, sizing, 4), 8);
  // Big working set: enough shards that one shard fits the budget.
  const std::int64_t rows = 1 << 20;
  const std::int64_t nnz = rows * 8;
  const int shards = fg::parallel::choose_num_shards(rows, nnz, sizing, 4);
  const double work = static_cast<double>(rows) * 256 +
                      static_cast<double>(nnz) * 16;
  EXPECT_GE(shards, static_cast<int>(work / sizing.llc_bytes));
  EXPECT_LE(shards, rows);
  // Never more shards than rows.
  EXPECT_EQ(fg::parallel::choose_num_shards(3, 1000000, sizing, 8), 3);
}

TEST(ShardedRowSweep, CoversRowsExactlyOnceAtAnyDecomposition) {
  const std::int64_t n = 97;
  for (int threads : {1, 2, 4, 8}) {
    for (int shards : {1, 2, 5, 16, 97}) {
      for (std::int64_t grain : {1, 2, 8}) {
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
        for (auto& h : hits) h = 0;
        fg::parallel::sharded_row_sweep(
            nullptr, n, shards, grain, threads,
            [&](std::int64_t r0, std::int64_t r1) {
              for (std::int64_t r = r0; r < r1; ++r)
                hits[static_cast<std::size_t>(r)].fetch_add(1);
            });
        for (std::int64_t r = 0; r < n; ++r)
          EXPECT_EQ(hits[static_cast<std::size_t>(r)].load(), 1)
              << "row " << r << " threads=" << threads << " shards=" << shards
              << " grain=" << grain;
      }
    }
  }
}

// --- Schedule-IR surface --------------------------------------------------

TEST(ShardIr, BuilderValidatesAndDescribes) {
  const ScheduleIr ir = ScheduleIr().shard(8).steal_grain(2);
  EXPECT_EQ(ir.describe(), "shard(8).steal_grain(2)");
  EXPECT_EQ(fg::core::validate_spmm_ir(ir, 1000, 64, Isa::kScalar), "");
  // A shard factor above the row count is legal: execution clamps it, so
  // one program serves every block shape a schedule cache replays it on.
  EXPECT_EQ(fg::core::validate_spmm_ir(ScheduleIr().shard(4096), 100, 64,
                                       Isa::kScalar),
            "");
}

TEST(ShardIr, IllegalProgramsReportClearErrors) {
  EXPECT_NE(fg::core::validate_spmm_ir(ScheduleIr().shard(0), 1000, 64,
                                       Isa::kScalar),
            "");
  EXPECT_NE(fg::core::validate_spmm_ir(ScheduleIr().shard(8).shard(4), 1000,
                                       64, Isa::kScalar),
            "");  // duplicate transform
  const std::string err = fg::core::validate_spmm_ir(
      ScheduleIr().steal_grain(2), 1000, 64, Isa::kScalar);
  EXPECT_NE(err.find("shard"), std::string::npos) << err;
  // SDDMM programs take no shard transforms (edge-parallel already).
  EXPECT_NE(fg::core::validate_sddmm_ir(ScheduleIr().shard(4), 1000, 64,
                                        Isa::kScalar),
            "");
}

TEST(ShardIr, LoweringCarriesShardKnobsAndClampsAtExecution) {
  CpuSpmmSchedule s;
  s.num_threads = 4;
  s.ir = std::make_shared<const ScheduleIr>(
      ScheduleIr().shard(64).steal_grain(2));
  const LoweredSpmmPlan plan =
      fg::core::lower_spmm_schedule(s, 1000, 64, Isa::kScalar);
  EXPECT_EQ(plan.num_shards, 64);
  EXPECT_EQ(plan.steal_grain, 2);
  // Shard-only programs stay on the flat fast path: sharding decomposes the
  // row sweep, it does not change the per-row loop nest.
  EXPECT_FALSE(plan.needs_interpreter());
  EXPECT_EQ(plan.effective_shards(1000), 64);
  EXPECT_EQ(plan.effective_shards(10), 10);  // clamped to the row count
  EXPECT_EQ(plan.effective_shards(1), 1);

  const LoweredSpmmPlan unsharded =
      fg::core::lower_spmm_schedule(CpuSpmmSchedule{}, 1000, 64, Isa::kScalar);
  EXPECT_EQ(unsharded.num_shards, 0);
  EXPECT_EQ(unsharded.effective_shards(1000), 0);
}

TEST(ShardIr, ProgramHashCoversShardKnobs) {
  CpuSpmmSchedule plain;
  CpuSpmmSchedule sharded;
  sharded.ir = std::make_shared<const ScheduleIr>(ScheduleIr().shard(8));
  CpuSpmmSchedule sharded16;
  sharded16.ir = std::make_shared<const ScheduleIr>(ScheduleIr().shard(16));
  CpuSpmmSchedule grained;
  grained.ir = std::make_shared<const ScheduleIr>(
      ScheduleIr().shard(8).steal_grain(2));
  const auto h = [](const CpuSpmmSchedule& s) {
    return fg::core::schedule_program_hash(s);
  };
  EXPECT_NE(h(plain), h(sharded));
  EXPECT_NE(h(sharded), h(sharded16));
  EXPECT_NE(h(sharded), h(grained));
}

// --- the invariance matrix (the tentpole's bit-identity pin) --------------

namespace {

struct ShardFixture {
  fg::graph::Coo coo;
  Csr in_csr;
  Tensor x;
  Tensor e;

  static constexpr std::int64_t kDim = 19;  // forces tail paths on every ISA

  ShardFixture()
      : coo(fg::graph::gen_rmat(700, 9.0, 31)),
        in_csr(fg::graph::coo_to_in_csr(coo)),
        x(Tensor::randn({in_csr.num_cols, kDim}, 32)),
        e(Tensor::randn({in_csr.nnz(), kDim}, 33)) {}

  static const ShardFixture& get() {
    static const ShardFixture f;
    return f;
  }
};

}  // namespace

TEST(ShardExec, SpmmBitIdenticalAcrossThreadsShardsGrainsAndIsas) {
  // The merge-at-shard-boundaries contract, observed through the full
  // kernel stack: for every ISA, the sharded output must equal the SAME
  // ISA's unsharded output bit for bit, at every thread count x shard
  // count x steal granularity — which lane ran a shard can never matter.
  const ShardFixture& f = ShardFixture::get();
  const auto isas = fg::simd::supported_isas();
  struct Case {
    const char* op;
    const char* red;
  };
  for (const Case c : {Case{"copy_u", "sum"}, Case{"u_mul_e", "max"},
                       Case{"u_add_v", "mean"}}) {
    fg::core::SpmmOperands ops{&f.x, nullptr, nullptr};
    if (std::string(c.op) == "u_mul_e") ops.edge_feat = &f.e;
    for (const Isa isa : isas) {
      fg::simd::ScopedIsa pin(isa);
      CpuSpmmSchedule baseline;
      baseline.num_threads = 1;
      const Tensor want =
          fg::core::spmm(f.in_csr, c.op, c.red, baseline, ops);
      for (const int threads : {1, 2, 4, 8}) {
        for (const int shards : {2, 7, 32}) {
          for (const std::int64_t grain : {1, 2, 8}) {
            CpuSpmmSchedule s;
            s.num_threads = threads;
            s.ir = std::make_shared<const ScheduleIr>(
                ScheduleIr().shard(shards).steal_grain(grain));
            const Tensor got = fg::core::spmm(f.in_csr, c.op, c.red, s, ops);
            EXPECT_TRUE(bit_equal(got, want))
                << c.op << "/" << c.red
                << " isa=" << fg::simd::isa_name(isa)
                << " threads=" << threads << " shards=" << shards
                << " grain=" << grain;
          }
        }
      }
    }
  }
}

TEST(ShardExec, ShardComposesWithLoopNestTransforms) {
  // shard() decomposes the sweep; tile/unroll/chunk shape the per-row loop
  // nest. Composed programs must still match the SAME loop nest unsharded.
  const ShardFixture& f = ShardFixture::get();
  const auto isas = fg::simd::supported_isas();
  const std::vector<ScheduleIr> nests = {
      ScheduleIr().tile(8).unroll(4),
      ScheduleIr().chunk(100),
      ScheduleIr().split_nnz(fg::core::LoadBalance::kStaticRows),
  };
  fg::core::SpmmOperands ops{&f.x, nullptr, nullptr};
  for (const Isa isa : isas) {
    fg::simd::ScopedIsa pin(isa);
    for (const ScheduleIr& nest : nests) {
      CpuSpmmSchedule base;
      base.num_threads = 3;
      base.ir = std::make_shared<const ScheduleIr>(nest);
      const Tensor want = fg::core::spmm(f.in_csr, "copy_u", "sum", base, ops);
      ScheduleIr sharded = nest;
      sharded.shard(16).steal_grain(2);
      ASSERT_EQ(fg::core::validate_spmm_ir(sharded, f.in_csr.num_rows,
                                           ShardFixture::kDim, isa),
                "")
          << sharded.describe();
      CpuSpmmSchedule s;
      s.num_threads = 3;
      s.ir = std::make_shared<const ScheduleIr>(sharded);
      const Tensor got = fg::core::spmm(f.in_csr, "copy_u", "sum", s, ops);
      EXPECT_TRUE(bit_equal(got, want))
          << "isa=" << fg::simd::isa_name(isa)
          << " program=" << sharded.describe();
    }
  }
}

TEST(ShardExec, AttentionBitIdenticalAcrossThreadsAndIsas) {
  // Fused attention runs three row sweeps (logits+softmax, then the
  // weighted aggregate) through the same dispatcher — all of them shard.
  const ShardFixture& f = ShardFixture::get();
  const auto isas = fg::simd::supported_isas();
  fg::core::AttentionOperands ops;
  ops.src_feat = &f.x;
  ops.logit_scale = 0.25f;
  for (const Isa isa : isas) {
    fg::simd::ScopedIsa pin(isa);
    CpuSpmmSchedule baseline;
    baseline.num_threads = 1;
    const auto want = fg::core::attention(f.in_csr, "copy_u", baseline, ops);
    for (const int threads : {1, 2, 4, 8}) {
      for (const int shards : {2, 16}) {
        CpuSpmmSchedule s;
        s.num_threads = threads;
        s.ir = std::make_shared<const ScheduleIr>(
            ScheduleIr().shard(shards).steal_grain(1));
        const auto got = fg::core::attention(f.in_csr, "copy_u", s, ops);
        EXPECT_TRUE(bit_equal(got.out, want.out))
            << "out isa=" << fg::simd::isa_name(isa) << " threads=" << threads
            << " shards=" << shards;
        EXPECT_TRUE(bit_equal(got.alpha, want.alpha))
            << "alpha isa=" << fg::simd::isa_name(isa)
            << " threads=" << threads << " shards=" << shards;
      }
    }
  }
}

TEST(ShardExec, ShardedSamplingMatchesSerialSampling) {
  // Shard-local neighbor sampling: per-(batch, hop, vertex) RNG streams
  // make the sampled blocks a pure function of the arguments, so the
  // sharded drain must reproduce the serial one exactly.
  const ShardFixture& f = ShardFixture::get();
  fg::sample::NeighborSampler sampler(f.in_csr, {{4, 3}, false, 77});
  std::vector<fg::graph::vid_t> seeds;
  for (fg::graph::vid_t v = 0; v < f.in_csr.num_rows; v += 3)
    seeds.push_back(v);
  const auto want = sampler.sample(seeds, /*batch_index=*/5, /*threads=*/1);
  for (const int threads : {2, 4, 8}) {
    const auto got = sampler.sample(seeds, 5, threads);
    ASSERT_EQ(got.blocks.size(), want.blocks.size());
    for (std::size_t l = 0; l < want.blocks.size(); ++l) {
      const auto& a = want.blocks[l];
      const auto& b = got.blocks[l];
      EXPECT_EQ(a.src_nodes, b.src_nodes) << "layer " << l;
      EXPECT_EQ(a.dst_nodes, b.dst_nodes) << "layer " << l;
      EXPECT_EQ(a.adj.indptr, b.adj.indptr) << "layer " << l;
      EXPECT_EQ(a.adj.indices, b.adj.indices) << "layer " << l;
      EXPECT_EQ(a.adj.edge_ids, b.adj.edge_ids) << "layer " << l;
    }
  }
}
