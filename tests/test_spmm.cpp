#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "core/partition_cache.hpp"
#include "core/simd.hpp"
#include "core/spmm.hpp"
#include "graph/generators.hpp"
#include "reference.hpp"

namespace fg = featgraph;
using fg::core::CpuSpmmSchedule;
using fg::core::SpmmOperands;
using fg::graph::Coo;
using fg::graph::Csr;
using fg::tensor::Tensor;
using fg::testing::reference_spmm;

namespace {

struct Fixture {
  Coo coo;
  Csr in_csr;
  Tensor x;       // n x d
  Tensor e_vec;   // m x d
  Tensor e_scal;  // m
  Tensor w;       // d x d2 (mlp weight)

  Fixture(fg::graph::vid_t n, double avg_deg, std::int64_t d, std::int64_t d2,
          std::uint64_t seed)
      : coo(fg::graph::gen_uniform(n, avg_deg, seed)),
        in_csr(fg::graph::coo_to_in_csr(coo)),
        x(Tensor::randn({n, d}, seed + 1)),
        e_vec(Tensor::randn({coo.num_edges(), d}, seed + 2)),
        e_scal(Tensor::randn({coo.num_edges()}, seed + 3)),
        w(Tensor::randn({d, d2}, seed + 4)) {}
};

fg::testing::RefMsgFn reference_msg(const std::string& op, const Fixture& f) {
  const std::int64_t d = f.x.row_size();
  if (op == "copy_u") {
    return [&, d](auto u, auto, auto, std::vector<float>& m) {
      for (std::int64_t j = 0; j < d; ++j) m[j] = f.x.at(u, j);
    };
  }
  if (op == "copy_e") {
    return [&, d](auto, auto e, auto, std::vector<float>& m) {
      for (std::int64_t j = 0; j < d; ++j) m[j] = f.e_vec.at(e * d + j);
    };
  }
  if (op == "u_add_v" || op == "u_sub_v" || op == "u_mul_v" ||
      op == "u_div_v") {
    return [&, d, op](auto u, auto, auto v, std::vector<float>& m) {
      for (std::int64_t j = 0; j < d; ++j) {
        const float a = f.x.at(u, j), b = f.x.at(v, j);
        m[j] = op == "u_add_v"   ? a + b
               : op == "u_sub_v" ? a - b
               : op == "u_mul_v" ? a * b
                                 : a / b;
      }
    };
  }
  if (op == "u_add_e") {
    return [&, d](auto u, auto e, auto, std::vector<float>& m) {
      for (std::int64_t j = 0; j < d; ++j)
        m[j] = f.x.at(u, j) + f.e_vec.at(e * d + j);
    };
  }
  if (op == "u_mul_e") {  // scalar edge weight broadcast
    return [&, d](auto u, auto e, auto, std::vector<float>& m) {
      for (std::int64_t j = 0; j < d; ++j)
        m[j] = f.x.at(u, j) * f.e_scal.at(e);
    };
  }
  if (op == "mlp") {
    const std::int64_t d2 = f.w.shape(1);
    return [&, d, d2](auto u, auto, auto v, std::vector<float>& m) {
      for (std::int64_t j = 0; j < d2; ++j) {
        float acc = 0.0f;
        for (std::int64_t k = 0; k < d; ++k)
          acc += (f.x.at(u, k) + f.x.at(v, k)) * f.w.at(k, j);
        m[j] = acc > 0 ? acc : 0;
      }
    };
  }
  ADD_FAILURE() << "unknown op " << op;
  return {};
}

SpmmOperands operands_for(const std::string& op, const Fixture& f) {
  SpmmOperands ops;
  ops.src_feat = &f.x;
  if (op == "copy_e" || op == "u_add_e") ops.edge_feat = &f.e_vec;
  if (op == "u_mul_e") ops.edge_feat = &f.e_scal;
  if (op == "mlp") ops.weight = &f.w;
  return ops;
}

std::int64_t d_out_for(const std::string& op, const Fixture& f) {
  return op == "mlp" ? f.w.shape(1) : f.x.row_size();
}

}  // namespace

// Sweep every builtin message op x reducer x a grid of schedules: the
// paper's central correctness property is that schedules (partitioning,
// tiling, threading) never change results.
struct SpmmCase {
  const char* msg_op;
  const char* reduce_op;
  int partitions;
  std::int64_t tile;
  int threads;
};

class SpmmSweep : public ::testing::TestWithParam<SpmmCase> {};

TEST_P(SpmmSweep, MatchesReference) {
  const auto p = GetParam();
  Fixture f(200, 6.0, 16, 8, /*seed=*/100);
  CpuSpmmSchedule sched;
  sched.num_partitions = p.partitions;
  sched.feat_tile = p.tile;
  sched.num_threads = p.threads;

  const Tensor got = fg::core::spmm(f.in_csr, p.msg_op, p.reduce_op, sched,
                                    operands_for(p.msg_op, f));
  const Tensor want = reference_spmm(f.in_csr, reference_msg(p.msg_op, f),
                                     p.reduce_op, d_out_for(p.msg_op, f));
  EXPECT_LT(fg::tensor::max_abs_diff(got, want), 2e-4f)
      << p.msg_op << "/" << p.reduce_op << " parts=" << p.partitions
      << " tile=" << p.tile << " threads=" << p.threads;
}

namespace {

std::vector<SpmmCase> make_sweep() {
  std::vector<SpmmCase> cases;
  const char* msg_ops[] = {"copy_u",  "copy_e",  "u_add_v",
                           "u_sub_v", "u_mul_v", "u_add_e",
                           "u_mul_e", "mlp"};
  const char* reduce_ops[] = {"sum", "max", "min", "mean"};
  const std::pair<int, std::int64_t> schedules[] = {
      {1, 0}, {4, 0}, {1, 8}, {4, 8}, {7, 5}};
  for (const char* m : msg_ops)
    for (const char* r : reduce_ops)
      for (auto [parts, tile] : schedules)
        cases.push_back({m, r, parts, tile, parts % 2 == 0 ? 2 : 1});
  return cases;
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(AllOps, SpmmSweep, ::testing::ValuesIn(make_sweep()));

TEST(Spmm, GcnAggregationIsVanillaSpmm) {
  // copy_u + sum == A * X.
  Fixture f(50, 4.0, 8, 4, 200);
  CpuSpmmSchedule sched;
  const Tensor got =
      fg::core::spmm(f.in_csr, "copy_u", "sum", sched, {&f.x, nullptr, nullptr});
  Tensor want = Tensor::zeros({f.in_csr.num_rows, f.x.row_size()});
  for (fg::graph::eid_t e = 0; e < f.coo.num_edges(); ++e) {
    const auto u = f.coo.src[static_cast<std::size_t>(e)];
    const auto v = f.coo.dst[static_cast<std::size_t>(e)];
    for (std::int64_t j = 0; j < f.x.row_size(); ++j)
      want.at(v, j) += f.x.at(u, j);
  }
  EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-4f);
}

TEST(Spmm, EmptyRowsProduceZeros) {
  // A path graph 0->1->2; vertex 0 has no in-edges.
  Coo coo;
  coo.num_src = coo.num_dst = 3;
  coo.src = {0, 1};
  coo.dst = {1, 2};
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::full({3, 4}, 2.0f);
  for (const char* red : {"sum", "max", "min", "mean"}) {
    const Tensor out =
        fg::core::spmm(in, "copy_u", red, {}, {&x, nullptr, nullptr});
    for (std::int64_t j = 0; j < 4; ++j)
      EXPECT_EQ(out.at(0, j), 0.0f) << "reducer " << red;
    EXPECT_EQ(out.at(1, 0), 2.0f);
  }
}

TEST(Spmm, MaxWithAllNegativeFeatures) {
  Coo coo;
  coo.num_src = coo.num_dst = 2;
  coo.src = {0, 1};
  coo.dst = {1, 1};
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x({2, 2});
  x.at(0, 0) = -5;
  x.at(0, 1) = -1;
  x.at(1, 0) = -3;
  x.at(1, 1) = -2;
  const Tensor out =
      fg::core::spmm(in, "copy_u", "max", {}, {&x, nullptr, nullptr});
  EXPECT_EQ(out.at(1, 0), -3.0f);
  EXPECT_EQ(out.at(1, 1), -1.0f);
}

TEST(Spmm, MeanDividesByInDegree) {
  Coo coo;
  coo.num_src = coo.num_dst = 3;
  coo.src = {0, 1, 2};
  coo.dst = {2, 2, 2};
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x({3, 1});
  x.at(0) = 3;
  x.at(1) = 6;
  x.at(2) = 9;
  const Tensor out =
      fg::core::spmm(in, "copy_u", "mean", {}, {&x, nullptr, nullptr});
  EXPECT_FLOAT_EQ(out.at(2, 0), 6.0f);
}

TEST(Spmm, SelfLoopsAndMultiEdgesAreCounted) {
  Coo coo;
  coo.num_src = coo.num_dst = 2;
  coo.src = {0, 0, 1, 1};
  coo.dst = {0, 1, 1, 1};  // self loop at 0, double edge 1->1 and 0->1
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x({2, 1});
  x.at(0) = 1;
  x.at(1) = 10;
  const Tensor out =
      fg::core::spmm(in, "copy_u", "sum", {}, {&x, nullptr, nullptr});
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 21.0f);
}

TEST(Spmm, ScheduleInvarianceOnSkewedGraph) {
  // Heavy skew exercises nnz-balanced partition boundaries.
  const Coo coo = fg::graph::gen_two_class(10, 200, 200, 3, 300);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({in.num_cols, 24}, 301);
  const Tensor base =
      fg::core::spmm(in, "copy_u", "sum", {}, {&x, nullptr, nullptr});
  for (int parts : {2, 8, 32}) {
    for (std::int64_t tile : {std::int64_t{0}, std::int64_t{7}}) {
      for (auto lb : {fg::core::LoadBalance::kStaticRows,
                      fg::core::LoadBalance::kNnzBalanced}) {
        CpuSpmmSchedule sched;
        sched.num_partitions = parts;
        sched.feat_tile = tile;
        sched.num_threads = 2;
        sched.load_balance = lb;
        const Tensor got =
            fg::core::spmm(in, "copy_u", "sum", sched, {&x, nullptr, nullptr});
        EXPECT_LT(fg::tensor::max_abs_diff(got, base), 1e-4f)
            << parts << "/" << tile << "/" << static_cast<int>(lb);
      }
    }
  }
}

namespace {

bool bit_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

}  // namespace

// The SIMD engine's central contract: the AVX2 backend produces bit-for-bit
// the output of the scalar backend for every (msg_op, reduce_op) pair —
// exact equality for sum/mean (per-element add order is preserved along the
// feature axis) and for max/min (maxps/minps match the scalar ternary) — on
// feature widths that are NOT multiples of the 8-lane vector width, with
// empty rows present, under both row-split policies.
class SimdParitySweep : public ::testing::TestWithParam<SpmmCase> {};

TEST_P(SimdParitySweep, ScalarAndSimdBackendsBitEqual) {
  if (!fg::simd::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 hardware";
  const auto p = GetParam();
  // d=13 exercises the vector tail; at avg degree 4 a few percent of the
  // 230 rows draw no in-edges, so the empty-row fill path runs too.
  Fixture f(230, 4.0, 13, 11, /*seed=*/4200);
  CpuSpmmSchedule sched;
  sched.num_partitions = p.partitions;
  sched.feat_tile = p.tile;
  sched.num_threads = p.threads;

  Tensor scalar_out, simd_out;
  {
    fg::simd::ScopedIsa pin(fg::simd::Isa::kScalar);
    sched.load_balance = fg::core::LoadBalance::kStaticRows;
    scalar_out = fg::core::spmm(f.in_csr, p.msg_op, p.reduce_op, sched,
                                operands_for(p.msg_op, f));
  }
  {
    fg::simd::ScopedIsa pin(fg::simd::Isa::kAvx2);
    sched.load_balance = fg::core::LoadBalance::kNnzBalanced;
    simd_out = fg::core::spmm(f.in_csr, p.msg_op, p.reduce_op, sched,
                              operands_for(p.msg_op, f));
  }
  EXPECT_TRUE(bit_equal(scalar_out, simd_out))
      << p.msg_op << "/" << p.reduce_op << " parts=" << p.partitions
      << " tile=" << p.tile << " threads=" << p.threads;
}

INSTANTIATE_TEST_SUITE_P(AllOps, SimdParitySweep,
                         ::testing::ValuesIn(make_sweep()));

TEST(Spmm, EmptyRowsBitEqualAcrossBackends) {
  if (!fg::simd::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 hardware";
  // Isolated vertices 3..9: postprocess must write identical empty-row
  // values through either backend's fill.
  Coo coo;
  coo.num_src = coo.num_dst = 10;
  coo.src = {0, 1};
  coo.dst = {1, 2};
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({10, 9}, 77);  // odd width again
  for (const char* red : {"sum", "max", "min", "mean"}) {
    Tensor a, b;
    {
      fg::simd::ScopedIsa pin(fg::simd::Isa::kScalar);
      a = fg::core::spmm(in, "copy_u", red, {}, {&x, nullptr, nullptr});
    }
    {
      fg::simd::ScopedIsa pin(fg::simd::Isa::kAvx2);
      b = fg::core::spmm(in, "copy_u", red, {}, {&x, nullptr, nullptr});
    }
    EXPECT_TRUE(bit_equal(a, b)) << red;
  }
}

TEST(Spmm, NnzBalancedMatchesStaticOnPowerLawGraph) {
  // The load_balance knob must never change results, only thread boundaries
  // — checked on the degree distribution it exists for.
  const Coo coo = fg::graph::gen_lognormal(400, 8.0, 1.5, 4300);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({in.num_cols, 13}, 4301);
  for (const char* op : {"copy_u", "u_mul_v"}) {
    for (const char* red : {"sum", "max", "mean"}) {
      for (int threads : {1, 2, 4, 7}) {
        CpuSpmmSchedule stat, nnz;
        stat.num_threads = nnz.num_threads = threads;
        stat.load_balance = fg::core::LoadBalance::kStaticRows;
        nnz.load_balance = fg::core::LoadBalance::kNnzBalanced;
        const Tensor a =
            fg::core::spmm(in, op, red, stat, {&x, nullptr, nullptr});
        const Tensor b =
            fg::core::spmm(in, op, red, nnz, {&x, nullptr, nullptr});
        EXPECT_TRUE(bit_equal(a, b))
            << op << "/" << red << " threads=" << threads;
      }
    }
  }
}

TEST(Spmm, DegreeCacheIsStableAndCorrect) {
  const Coo coo = fg::graph::gen_uniform(150, 5.0, 4400);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  const auto& degs = in.degrees();
  ASSERT_EQ(degs.size(), static_cast<std::size_t>(in.num_rows));
  for (fg::graph::vid_t v = 0; v < in.num_rows; ++v)
    EXPECT_EQ(degs[static_cast<std::size_t>(v)], in.degree(v));
  // Second call returns the same cached vector, not a recomputation.
  EXPECT_EQ(&in.degrees(), &degs);
  // Copies share the cache (immutable-structure contract).
  const Csr copy = in;
  EXPECT_EQ(&copy.degrees(), &degs);
}

TEST(Spmm, GenericUdfMatchesBuiltin) {
  Fixture f(120, 5.0, 12, 4, 400);
  fg::core::GenericMsgFn msg = [&](auto u, auto, auto, float* out) {
    for (std::int64_t j = 0; j < 12; ++j) out[j] = f.x.at(u, j);
  };
  CpuSpmmSchedule sched;
  sched.num_partitions = 4;
  sched.num_threads = 2;
  const Tensor generic = fg::core::spmm_generic(f.in_csr, msg, "sum", 12, sched);
  const Tensor builtin =
      fg::core::spmm(f.in_csr, "copy_u", "sum", sched, {&f.x, nullptr, nullptr});
  EXPECT_LT(fg::tensor::max_abs_diff(generic, builtin), 1e-4f);
}

TEST(Spmm, GenericUdfSupportsArbitraryComputation) {
  // A UDF no builtin covers: msg_j = sin(x_u[j]) * j (paper's flexibility
  // claim: arbitrary tensor expressions per edge).
  Fixture f(80, 4.0, 6, 4, 500);
  fg::core::GenericMsgFn msg = [&](auto u, auto, auto, float* out) {
    for (std::int64_t j = 0; j < 6; ++j)
      out[j] = std::sin(f.x.at(u, j)) * static_cast<float>(j);
  };
  const Tensor got = fg::core::spmm_generic(f.in_csr, msg, "max", 6, {});
  const Tensor want = reference_spmm(
      f.in_csr,
      [&](auto u, auto, auto, std::vector<float>& m) {
        for (std::int64_t j = 0; j < 6; ++j)
          m[j] = std::sin(f.x.at(u, j)) * static_cast<float>(j);
      },
      "max", 6);
  EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-5f);
}

TEST(Spmm, ArgMaxTracksWinningSource) {
  Fixture f(60, 5.0, 8, 4, 600);
  std::vector<fg::graph::vid_t> args;
  const Tensor out = fg::core::spmm_copy_u_max_arg(f.in_csr, f.x, &args, 2);
  const Tensor want =
      fg::core::spmm(f.in_csr, "copy_u", "max", {}, {&f.x, nullptr, nullptr});
  EXPECT_LT(fg::tensor::max_abs_diff(out, want), 1e-5f);
  // Every argmax entry reproduces the max value; empty rows are -1.
  for (fg::graph::vid_t v = 0; v < f.in_csr.num_rows; ++v) {
    const bool empty = f.in_csr.degree(v) == 0;
    for (std::int64_t j = 0; j < 8; ++j) {
      const auto a = args[static_cast<std::size_t>(v * 8 + j)];
      if (empty) {
        EXPECT_EQ(a, -1);
      } else {
        ASSERT_GE(a, 0);
        EXPECT_FLOAT_EQ(f.x.at(a, j), out.at(v, j));
      }
    }
  }
}

TEST(Spmm, PartitionCacheSurvivesAddressRecycling) {
  // Regression test: caches must key on structure uids, not addresses. A
  // graph destroyed and replaced by a new allocation at the same address
  // must not alias the old partitioning (which silently produced wrong
  // results and absurd timings before the fix).
  Tensor results[2];
  for (int round = 0; round < 2; ++round) {
    // Different topology each round; the heap very likely recycles storage.
    const auto coo = fg::graph::gen_uniform(300 + round * 50, 8.0, 42 + round);
    const Csr in = fg::graph::coo_to_in_csr(coo);
    Tensor x = Tensor::randn({in.num_cols, 16}, 43 + round);
    CpuSpmmSchedule sched;
    sched.num_partitions = 8;
    const Tensor partitioned =
        fg::core::spmm(in, "copy_u", "sum", sched, {&x, nullptr, nullptr});
    const Tensor plain =
        fg::core::spmm(in, "copy_u", "sum", {}, {&x, nullptr, nullptr});
    EXPECT_LT(fg::tensor::max_abs_diff(partitioned, plain), 1e-4f)
        << "round " << round;
    results[round] = partitioned;
  }
}

TEST(Spmm, PartitionCacheReturnsStablePointers) {
  Fixture f(100, 4.0, 4, 4, 700);
  const auto* p4 = fg::core::cached_partition(f.in_csr, 4);
  const auto* p4_again = fg::core::cached_partition(f.in_csr, 4);
  const auto* p8 = fg::core::cached_partition(f.in_csr, 8);
  EXPECT_EQ(p4, p4_again);
  EXPECT_NE(static_cast<const void*>(p4), static_cast<const void*>(p8));
  EXPECT_EQ(fg::core::cached_partition(f.in_csr, 1), nullptr);
}

TEST(SpmmDeathTest, RejectsUnknownOps) {
  Fixture f(10, 2.0, 4, 4, 800);
  EXPECT_DEATH((void)fg::core::spmm(f.in_csr, "copy_u", "median", {},
                                    {&f.x, nullptr, nullptr}),
               "reduce");
  EXPECT_DEATH(
      (void)fg::core::spmm(f.in_csr, "bogus", "sum", {}, {&f.x, nullptr, nullptr}),
      "message op");
}

TEST(SpmmDeathTest, RejectsMissingOperands) {
  Fixture f(10, 2.0, 4, 4, 900);
  EXPECT_DEATH(
      (void)fg::core::spmm(f.in_csr, "copy_u", "sum", {}, SpmmOperands{}),
      "src_feat");
}
