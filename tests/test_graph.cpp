#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/hilbert.hpp"
#include "graph/partition.hpp"
#include "graph/reorder.hpp"
#include "support/rng.hpp"

namespace fg = featgraph;
using fg::graph::Coo;
using fg::graph::Csr;
using fg::graph::eid_t;
using fg::graph::vid_t;

namespace {

/// 8-vertex sample graph in the spirit of the paper's Fig. 5.
Coo sample_graph() {
  Coo coo;
  coo.num_src = 8;
  coo.num_dst = 8;
  const std::pair<vid_t, vid_t> edges[] = {{0, 1}, {1, 0}, {2, 3}, {3, 2},
                                           {4, 5}, {5, 4}, {6, 7}, {7, 6},
                                           {0, 7}, {7, 0}, {3, 4}, {4, 3}};
  for (auto [u, v] : edges) {
    coo.src.push_back(u);
    coo.dst.push_back(v);
  }
  return coo;
}

/// Collects (row, col, eid) triples of a CSR for order-insensitive compare.
std::set<std::tuple<vid_t, vid_t, eid_t>> entries(const Csr& csr) {
  std::set<std::tuple<vid_t, vid_t, eid_t>> out;
  for (vid_t r = 0; r < csr.num_rows; ++r)
    for (std::int64_t i = csr.indptr[r]; i < csr.indptr[r + 1]; ++i)
      out.insert({r, csr.indices[i], csr.edge_ids[i]});
  return out;
}

}  // namespace

TEST(Csr, InCsrListsInNeighbors) {
  const Coo coo = sample_graph();
  const Csr in = fg::graph::coo_to_in_csr(coo);
  EXPECT_EQ(in.num_rows, 8);
  EXPECT_EQ(in.nnz(), coo.num_edges());
  // Vertex 0 has in-edges from 1 and 7.
  std::set<vid_t> nbrs(in.indices.begin() + in.indptr[0],
                       in.indices.begin() + in.indptr[1]);
  EXPECT_EQ(nbrs, (std::set<vid_t>{1, 7}));
}

TEST(Csr, EdgeIdsPreserveCooIndex) {
  const Coo coo = sample_graph();
  const Csr in = fg::graph::coo_to_in_csr(coo);
  for (vid_t v = 0; v < in.num_rows; ++v) {
    for (std::int64_t i = in.indptr[v]; i < in.indptr[v + 1]; ++i) {
      const eid_t e = in.edge_ids[i];
      EXPECT_EQ(coo.dst[static_cast<std::size_t>(e)], v);
      EXPECT_EQ(coo.src[static_cast<std::size_t>(e)], in.indices[i]);
    }
  }
}

TEST(Csr, TransposeSwapsOrientation) {
  const Coo coo = sample_graph();
  const Csr in = fg::graph::coo_to_in_csr(coo);
  const Csr out = fg::graph::coo_to_out_csr(coo);
  EXPECT_EQ(entries(fg::graph::transpose(in)), entries(out));
}

TEST(Csr, TransposeIsInvolution) {
  const Coo coo = sample_graph();
  const Csr in = fg::graph::coo_to_in_csr(coo);
  EXPECT_EQ(entries(fg::graph::transpose(fg::graph::transpose(in))),
            entries(in));
}

TEST(Csr, ColumnCountsMatchOutDegrees) {
  const Coo coo = sample_graph();
  const Csr in = fg::graph::coo_to_in_csr(coo);
  const auto counts = fg::graph::column_counts(in);
  std::vector<std::int64_t> expected(8, 0);
  for (vid_t u : coo.src) ++expected[static_cast<std::size_t>(u)];
  EXPECT_EQ(counts, expected);
}

TEST(Graph, BundlesBothOrientations) {
  fg::graph::Graph g(sample_graph());
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
  EXPECT_EQ(entries(fg::graph::transpose(g.in_csr())), entries(g.out_csr()));
}

// --- generators ---------------------------------------------------------

TEST(Generators, UniformHasRequestedEdgeCount) {
  const Coo coo = fg::graph::gen_uniform(1000, 8.0, 1);
  EXPECT_EQ(coo.num_edges(), 8000);
  EXPECT_EQ(coo.num_src, 1000);
  for (eid_t e = 0; e < coo.num_edges(); ++e) {
    ASSERT_GE(coo.src[static_cast<std::size_t>(e)], 0);
    ASSERT_LT(coo.src[static_cast<std::size_t>(e)], 1000);
  }
}

TEST(Generators, DeterministicPerSeed) {
  const Coo a = fg::graph::gen_uniform(500, 4.0, 7);
  const Coo b = fg::graph::gen_uniform(500, 4.0, 7);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  const Coo c = fg::graph::gen_uniform(500, 4.0, 8);
  EXPECT_NE(a.src, c.src);
}

TEST(Generators, TwoClassDegreesAreExact) {
  const Coo coo = fg::graph::gen_two_class(10, 100, 40, 5, 3);
  const Csr out = fg::graph::coo_to_out_csr(coo);
  for (vid_t u = 0; u < 10; ++u) EXPECT_EQ(out.degree(u), 100);
  for (vid_t u = 10; u < 50; ++u) EXPECT_EQ(out.degree(u), 5);
}

TEST(Generators, LognormalHitsAverageDegree) {
  const Coo coo = fg::graph::gen_lognormal(20000, 50.0, 1.0, 5);
  const double avg =
      static_cast<double>(coo.num_edges()) / static_cast<double>(coo.num_src);
  EXPECT_NEAR(avg, 50.0, 5.0);
}

TEST(Generators, LognormalIsSkewed) {
  const Coo coo = fg::graph::gen_lognormal(20000, 50.0, 1.2, 5);
  const Csr out = fg::graph::coo_to_out_csr(coo);
  std::vector<std::int64_t> degs;
  for (vid_t u = 0; u < out.num_rows; ++u) degs.push_back(out.degree(u));
  std::sort(degs.begin(), degs.end());
  const std::int64_t median = degs[degs.size() / 2];
  const std::int64_t p99 = degs[degs.size() * 99 / 100];
  EXPECT_GT(p99, 4 * median);  // heavy tail
}

TEST(Generators, CommunityEdgesMostlyStayInside) {
  const int n = 10000, comms = 10;
  const Coo coo = fg::graph::gen_community(n, 20.0, comms, 0.9, 6);
  const vid_t comm_size = n / comms;
  std::int64_t inside = 0;
  for (eid_t e = 0; e < coo.num_edges(); ++e) {
    if (coo.src[static_cast<std::size_t>(e)] / comm_size ==
        coo.dst[static_cast<std::size_t>(e)] / comm_size)
      ++inside;
  }
  const double frac =
      static_cast<double>(inside) / static_cast<double>(coo.num_edges());
  EXPECT_GT(frac, 0.85);
}

// --- partitioning (property tests over partition counts) -----------------

class PartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionTest, SegmentsAreDisjointAndComplete) {
  const int parts = GetParam();
  const Coo coo = fg::graph::gen_lognormal(2000, 10.0, 1.0, 9);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  const auto partitioned = fg::graph::partition_by_source(in, parts);
  ASSERT_EQ(static_cast<int>(partitioned.parts.size()), parts);

  // Column ranges tile [0, num_cols) without overlap.
  vid_t expected_begin = 0;
  eid_t total_nnz = 0;
  std::multiset<std::tuple<vid_t, vid_t, eid_t>> all_entries;
  for (const auto& seg : partitioned.parts) {
    EXPECT_EQ(seg.col_begin, expected_begin);
    EXPECT_LE(seg.col_begin, seg.col_end);
    expected_begin = seg.col_end;
    total_nnz += seg.nnz();
    for (vid_t r = 0; r < in.num_rows; ++r) {
      for (std::int64_t i = seg.indptr[r]; i < seg.indptr[r + 1]; ++i) {
        EXPECT_GE(seg.indices[i], seg.col_begin);
        EXPECT_LT(seg.indices[i], seg.col_end);
        all_entries.insert({r, seg.indices[i], seg.edge_ids[i]});
      }
    }
  }
  EXPECT_EQ(expected_begin, in.num_cols);
  EXPECT_EQ(total_nnz, in.nnz());

  std::multiset<std::tuple<vid_t, vid_t, eid_t>> original;
  for (vid_t r = 0; r < in.num_rows; ++r)
    for (std::int64_t i = in.indptr[r]; i < in.indptr[r + 1]; ++i)
      original.insert({r, in.indices[i], in.edge_ids[i]});
  EXPECT_EQ(all_entries, original);
}

TEST_P(PartitionTest, NnzIsRoughlyBalanced) {
  const int parts = GetParam();
  if (parts == 1) GTEST_SKIP();
  const Coo coo = fg::graph::gen_uniform(4000, 16.0, 10);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  const auto partitioned = fg::graph::partition_by_source(in, parts);
  const double ideal =
      static_cast<double>(in.nnz()) / static_cast<double>(parts);
  for (const auto& seg : partitioned.parts) {
    EXPECT_LT(static_cast<double>(seg.nnz()), 2.0 * ideal + 64.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 61));

TEST(Graph, PartitionBySourceParallelMatchesSerial) {
  // Satellite fix: pass 1 (per-part edge counts) and pass 2 (the scatter)
  // are row-parallel — every row owns its count slots and its cursor-owned
  // scatter ranges — so the parallel build must reproduce the serial one
  // EXACTLY, segment for segment, at every thread count. The graph must
  // clear the 4096-row gate below which the build stays serial.
  const Coo coo = fg::graph::gen_lognormal(6000, 12.0, 1.0, 21);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  for (const int parts : {2, 4, 7}) {
    const auto serial = fg::graph::partition_by_source(in, parts, 1);
    for (const int threads : {2, 4, 8}) {
      const auto par = fg::graph::partition_by_source(in, parts, threads);
      ASSERT_EQ(par.parts.size(), serial.parts.size())
          << "parts=" << parts << " threads=" << threads;
      for (std::size_t p = 0; p < serial.parts.size(); ++p) {
        const auto& a = serial.parts[p];
        const auto& b = par.parts[p];
        EXPECT_EQ(a.col_begin, b.col_begin);
        EXPECT_EQ(a.col_end, b.col_end);
        EXPECT_EQ(a.indptr, b.indptr)
            << "part " << p << " threads=" << threads;
        EXPECT_EQ(a.indices, b.indices)
            << "part " << p << " threads=" << threads;
        EXPECT_EQ(a.edge_ids, b.edge_ids)
            << "part " << p << " threads=" << threads;
        EXPECT_EQ(a.degrees(), b.degrees())
            << "part " << p << " threads=" << threads;
      }
    }
  }
}

// --- hilbert --------------------------------------------------------------

TEST(Hilbert, IndexIsBijectiveOnSmallGrid) {
  const int order = 4;  // 16x16
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 16; ++x)
    for (std::uint32_t y = 0; y < 16; ++y)
      seen.insert(fg::graph::hilbert_index(order, x, y));
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(*seen.rbegin(), 255u);
}

TEST(Hilbert, AdjacentCellsDifferByOneStep) {
  // Consecutive curve positions are 4-neighbors on the grid.
  const int order = 5;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pos(1u << (2 * order));
  for (std::uint32_t x = 0; x < (1u << order); ++x)
    for (std::uint32_t y = 0; y < (1u << order); ++y)
      pos[fg::graph::hilbert_index(order, x, y)] = {x, y};
  for (std::size_t i = 1; i < pos.size(); ++i) {
    const int dx = std::abs(static_cast<int>(pos[i].first) -
                            static_cast<int>(pos[i - 1].first));
    const int dy = std::abs(static_cast<int>(pos[i].second) -
                            static_cast<int>(pos[i - 1].second));
    ASSERT_EQ(dx + dy, 1) << "curve breaks at position " << i;
  }
}

TEST(Hilbert, EdgeOrderIsAPermutation) {
  const Coo coo = fg::graph::gen_uniform(300, 10.0, 11);
  const auto order = fg::graph::hilbert_edge_order(coo);
  std::vector<eid_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (eid_t e = 0; e < coo.num_edges(); ++e)
    ASSERT_EQ(sorted[static_cast<std::size_t>(e)], e);
}

TEST(Hilbert, ImprovesLocalityOverCooOrder) {
  const Coo coo = fg::graph::gen_uniform(2048, 16.0, 12);
  std::vector<eid_t> identity(static_cast<std::size_t>(coo.num_edges()));
  std::iota(identity.begin(), identity.end(), 0);
  const auto hilbert = fg::graph::hilbert_edge_order(coo);
  const double jump_identity =
      fg::graph::edge_order_jump_distance(coo, identity);
  const double jump_hilbert = fg::graph::edge_order_jump_distance(coo, hilbert);
  EXPECT_LT(jump_hilbert, 0.25 * jump_identity);
}

// --- hybrid split -----------------------------------------------------

TEST(HybridSplit, ClassifiesByThreshold) {
  const Coo coo = fg::graph::gen_two_class(5, 50, 20, 2, 13);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  const auto split = fg::graph::split_by_degree(in, 25);
  EXPECT_EQ(split.high_vertices.size(), 5u);
  for (vid_t u : split.high_vertices) EXPECT_LT(u, 5);
  EXPECT_EQ(split.high_nnz, 250);
}

TEST(HybridSplit, QuantileThresholdSeparatesClasses) {
  const Coo coo = fg::graph::gen_two_class(20, 100, 80, 5, 14);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  const std::int64_t thr = fg::graph::degree_threshold_by_quantile(in, 0.8);
  EXPECT_GT(thr, 5);
  EXPECT_LE(thr, 100);
  const auto split = fg::graph::split_by_degree(in, thr);
  EXPECT_EQ(split.high_vertices.size(), 20u);
}

// --- datasets ------------------------------------------------------------

TEST(Datasets, StandardTrioMatchesTable2Shapes) {
  const auto ds = fg::graph::standard_datasets(0.01);
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds[0].name, "ogbn-proteins");
  EXPECT_EQ(ds[1].name, "reddit");
  EXPECT_EQ(ds[2].name, "rand-100K");
  // Vertex-count ordering from Table II: reddit > proteins > rand-100K.
  EXPECT_GT(ds[1].graph.num_vertices(), ds[0].graph.num_vertices());
  EXPECT_GT(ds[0].graph.num_vertices(), ds[2].graph.num_vertices());
  for (const auto& d : ds) EXPECT_GT(d.graph.average_degree(), 1.0);
}

TEST(Datasets, UniformDensityControlsSparsity) {
  const auto d = fg::graph::make_uniform_density(0.01, 0.005);
  const double n = static_cast<double>(d.graph.num_vertices());
  const double density = static_cast<double>(d.graph.num_edges()) / (n * n);
  EXPECT_NEAR(density, 0.005, 0.0005);
}
