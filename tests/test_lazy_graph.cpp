// Lazy op-graph compiler tests: fusion legality, liveness/buffer-reuse
// properties, peak-memory scaling, fused-vs-eager bit-identity per ISA, and
// the forward-path copy-count regression.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "graph/generators.hpp"
#include "minidgl/lazy_graph.hpp"
#include "minidgl/modules.hpp"
#include "minidgl/ops.hpp"
#include "tensor/tensor.hpp"

namespace fg = featgraph;
using fg::graph::Graph;
using fg::minidgl::backward;
using fg::minidgl::ExecContext;
using fg::minidgl::kNoNode;
using fg::minidgl::LazyGraph;
using fg::minidgl::LazyPlan;
using fg::minidgl::make_leaf;
using fg::minidgl::Model;
using fg::minidgl::NodeId;
using fg::minidgl::PlanOptions;
using fg::minidgl::SparseBackend;
using fg::minidgl::Var;
using fg::simd::Isa;
using fg::tensor::Tensor;

namespace {

bool bit_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Records GCN-layer-shaped chains: matmul -> spmm -> add_bias -> relu.
struct GcnChain {
  LazyGraph g;
  Var x, w, b;
  NodeId anchor = kNoNode, bias = kNoNode, act = kNoNode;
};

GcnChain record_gcn_chain(const Graph& gr, std::int64_t n, std::int64_t d,
                          bool requires_grad, bool final_relu = true) {
  GcnChain c;
  c.x = make_leaf(Tensor::randn({n, d}, 11), requires_grad, "x");
  c.w = make_leaf(Tensor::randn({d, d}, 12), requires_grad, "w");
  c.b = make_leaf(Tensor::randn({d}, 13), requires_grad, "b");
  const NodeId z = c.g.matmul(c.g.leaf(c.x), c.g.leaf(c.w));
  c.anchor = c.g.spmm_copy_u(gr, z, "mean");
  c.bias = c.g.add_bias(c.anchor, c.g.leaf(c.b));
  c.act = final_relu ? c.g.relu(c.bias) : c.bias;
  return c;
}

}  // namespace

// --- fusion legality matrix -------------------------------------------------

TEST(LazyFusion, BiasReluChainFoldsIntoSpmmAnchor) {
  Graph gr(fg::graph::gen_uniform(24, 3.0, 5));
  GcnChain c = record_gcn_chain(gr, gr.num_vertices(), 8, true);
  const LazyPlan p = c.g.plan(PlanOptions{});

  // bias and relu fold into the SpMM anchor; the matmul stays its own step.
  EXPECT_EQ(p.fused_into[static_cast<std::size_t>(c.bias)], c.anchor);
  EXPECT_EQ(p.fused_into[static_cast<std::size_t>(c.act)], c.anchor);
  EXPECT_EQ(p.fused_into[static_cast<std::size_t>(c.anchor)], kNoNode);
  ASSERT_EQ(p.epilogue[static_cast<std::size_t>(c.anchor)].size(), 2u);
  EXPECT_EQ(p.epilogue[static_cast<std::size_t>(c.anchor)][0].kind,
            fg::core::EpilogueKind::kAddVec);
  EXPECT_EQ(p.epilogue[static_cast<std::size_t>(c.anchor)][1].kind,
            fg::core::EpilogueKind::kRelu);
  // Chain tail aliases the anchor's slot; the mid-chain bias value is never
  // materialized.
  EXPECT_EQ(p.alias[static_cast<std::size_t>(c.act)], c.anchor);
  EXPECT_EQ(p.alias[static_cast<std::size_t>(c.bias)], kNoNode);
}

TEST(LazyFusion, ActivationTerminatesItsChain) {
  // relu -> scale: the scale after the activation must NOT fold (the relu
  // output is the backward mask and terminates the epilogue).
  Graph gr(fg::graph::gen_uniform(16, 3.0, 7));
  LazyGraph g;
  Var x = make_leaf(Tensor::randn({gr.num_vertices(), 4}, 3), true, "x");
  const NodeId agg = g.spmm_copy_u(gr, g.leaf(x), "sum");
  const NodeId r = g.relu(agg);
  const NodeId s = g.scale(r, 2.0f);
  const LazyPlan p = g.plan(PlanOptions{});
  EXPECT_EQ(p.fused_into[static_cast<std::size_t>(r)], agg);
  EXPECT_EQ(p.fused_into[static_cast<std::size_t>(s)], kNoNode);
}

TEST(LazyFusion, MultiConsumerValueStopsTheChain) {
  // The aggregation feeds two consumers — nothing may fold into it, since
  // the epilogue would overwrite a value another op still reads raw.
  Graph gr(fg::graph::gen_uniform(16, 3.0, 9));
  LazyGraph g;
  Var x = make_leaf(Tensor::randn({gr.num_vertices(), 4}, 4), true, "x");
  const NodeId agg = g.spmm_copy_u(gr, g.leaf(x), "sum");
  const NodeId r = g.relu(agg);
  const NodeId s = g.add(agg, r);  // second consumer of agg
  const LazyPlan p = g.plan(PlanOptions{});
  EXPECT_EQ(p.fused_into[static_cast<std::size_t>(r)], kNoNode);
  EXPECT_EQ(p.fused_into[static_cast<std::size_t>(s)], kNoNode);
  EXPECT_TRUE(p.epilogue[static_cast<std::size_t>(agg)].empty());
}

TEST(LazyFusion, MaxReduceNeverAnchors) {
  // Max tracks an argmax per element; its rows are not finalized by the
  // span sweep, so even a clean bias+relu tail stays unfused.
  Graph gr(fg::graph::gen_uniform(16, 3.0, 11));
  LazyGraph g;
  Var x = make_leaf(Tensor::randn({gr.num_vertices(), 4}, 5), true, "x");
  Var b = make_leaf(Tensor::randn({4}, 6), true, "b");
  const NodeId agg = g.spmm_copy_u(gr, g.leaf(x), "max");
  const NodeId h = g.add_bias(agg, g.leaf(b));
  const LazyPlan p = g.plan(PlanOptions{});
  EXPECT_EQ(p.fused_into[static_cast<std::size_t>(h)], kNoNode);
  EXPECT_TRUE(p.epilogue[static_cast<std::size_t>(agg)].empty());
}

TEST(LazyFusion, AddOperandRecordedAfterAnchorDoesNotFold) {
  // add's second operand is a later anchor's value — not materialized when
  // this anchor runs, so the fold is illegal and must be rejected.
  Graph gr(fg::graph::gen_uniform(16, 3.0, 13));
  LazyGraph g;
  Var x = make_leaf(Tensor::randn({gr.num_vertices(), 4}, 7), true, "x");
  const NodeId a1 = g.spmm_copy_u(gr, g.leaf(x), "sum");
  const NodeId a2 = g.spmm_copy_u(gr, g.leaf(x), "mean");
  const NodeId h = g.add(a1, a2);
  const LazyPlan p = g.plan(PlanOptions{});
  // a2 executes after a1, so folding `+ a2` into a1 is illegal. Folding
  // `+ a1` into a2 would be legal if a2 were h's sole input chain start —
  // the walk starts at a1 first (id order) and consumes h into a2's chain
  // only if a1's own chain didn't claim it. Either way: h must not fold
  // into a1.
  EXPECT_NE(p.fused_into[static_cast<std::size_t>(h)], a1);
}

TEST(LazyFusion, PlanOptionOffDisablesFolding) {
  Graph gr(fg::graph::gen_uniform(16, 3.0, 15));
  GcnChain c = record_gcn_chain(gr, gr.num_vertices(), 4, true);
  PlanOptions po;
  po.fuse = false;
  const LazyPlan p = c.g.plan(po);
  EXPECT_EQ(p.fused_into[static_cast<std::size_t>(c.bias)], kNoNode);
  EXPECT_EQ(p.fused_into[static_cast<std::size_t>(c.act)], kNoNode);
}

// --- liveness / buffer plan properties --------------------------------------

namespace {

/// Asserts the linear-scan invariant: two slots sharing a buffer never have
/// overlapping live ranges (equality at the boundary is the in-place
/// handoff).
void check_disjoint_lifetimes(const LazyPlan& p) {
  const auto n = static_cast<NodeId>(p.alias.size());
  for (NodeId a = 0; a < n; ++a) {
    if (p.buffer_id[static_cast<std::size_t>(a)] == kNoNode) continue;
    for (NodeId b = a + 1; b < n; ++b) {
      if (p.buffer_id[static_cast<std::size_t>(b)] !=
          p.buffer_id[static_cast<std::size_t>(a)])
        continue;
      const auto au = static_cast<std::size_t>(a);
      const auto bu = static_cast<std::size_t>(b);
      EXPECT_TRUE(p.last_use[au] <= p.step[bu] ||
                  p.last_use[bu] <= p.step[au])
          << "slots " << a << " and " << b << " share buffer "
          << p.buffer_id[au] << " with overlapping live ranges";
    }
  }
}

}  // namespace

TEST(LazyLiveness, SharedBuffersHaveDisjointLiveRanges) {
  Graph gr(fg::graph::gen_uniform(32, 4.0, 17));
  // A deep elementwise chain interleaved with anchors gives the scanner
  // real reuse opportunities.
  LazyGraph g;
  Var x = make_leaf(Tensor::randn({gr.num_vertices(), 8}, 8), false, "x");
  NodeId h = g.leaf(x);
  for (int layer = 0; layer < 6; ++layer) {
    h = g.spmm_copy_u(gr, h, layer % 2 == 0 ? "sum" : "mean");
    h = g.scale(h, 0.5f);
    h = g.add(h, h);  // self-add: multi-consumer, chain must stop here
  }
  for (const bool fuse : {true, false}) {
    PlanOptions po;
    po.fuse = fuse;
    po.training = false;
    const LazyPlan p = g.plan(po);
    check_disjoint_lifetimes(p);
    EXPECT_GT(p.num_steps, 0);
  }
}

TEST(LazyLiveness, KeptSlotsNeverEnterTheReusePool) {
  Graph gr(fg::graph::gen_uniform(24, 3.0, 19));
  GcnChain c = record_gcn_chain(gr, gr.num_vertices(), 8, true);
  const LazyPlan p = c.g.plan(PlanOptions{});
  for (std::size_t i = 0; i < p.keep.size(); ++i) {
    if (p.keep[i]) {
      EXPECT_EQ(p.buffer_id[i], kNoNode) << "slot " << i;
    }
  }
  check_disjoint_lifetimes(p);
}

TEST(LazyLiveness, InferencePeakBytesStaysFlatAsDepthGrows) {
  // The tentpole's memory claim, pinned at the plan level: an N-layer chain
  // in inference keeps O(1) live slots, so peak_bytes must NOT scale with N.
  Graph gr(fg::graph::gen_uniform(64, 4.0, 21));
  const std::int64_t d = 16;
  auto peak_for = [&](int layers) {
    LazyGraph g;
    Var x = make_leaf(Tensor::randn({gr.num_vertices(), d}, 9), false, "x");
    Var w = make_leaf(Tensor::randn({d, d}, 10), false, "w");
    Var b = make_leaf(Tensor::randn({d}, 11), false, "b");
    NodeId h = g.leaf(x);
    for (int l = 0; l < layers; ++l) {
      h = g.matmul(h, g.leaf(w));
      h = g.spmm_copy_u(gr, h, "mean");
      h = g.add_bias(h, g.leaf(b));
      h = g.relu(h);
    }
    PlanOptions po;
    po.training = false;
    return g.plan(po).peak_bytes;
  };
  const std::int64_t p2 = peak_for(2);
  const std::int64_t p8 = peak_for(8);
  const std::int64_t p16 = peak_for(16);
  EXPECT_EQ(p2, p8);
  EXPECT_EQ(p8, p16);
  EXPECT_GT(p2, 0);
}

TEST(LazyLiveness, TrainingPeakMinusKeptBytesStaysFlatAsDepthGrows) {
  // Training must keep the backward's inputs (one kept activation per
  // layer), but the TRANSIENT overhead above the keep set must stay
  // constant with depth — that is what planned reuse buys.
  Graph gr(fg::graph::gen_uniform(64, 4.0, 23));
  const std::int64_t d = 16;
  auto transient_for = [&](int layers) {
    LazyGraph g;
    Var x = make_leaf(Tensor::randn({gr.num_vertices(), d}, 9), false, "x");
    Var w = make_leaf(Tensor::randn({d, d}, 10), true, "w");
    Var b = make_leaf(Tensor::randn({d}, 11), true, "b");
    NodeId h = g.leaf(x);
    for (int l = 0; l < layers; ++l) {
      h = g.matmul(h, g.leaf(w));
      h = g.spmm_copy_u(gr, h, "mean");
      h = g.add_bias(h, g.leaf(b));
      h = g.relu(h);
    }
    const LazyPlan p = g.plan(PlanOptions{});
    std::int64_t kept_bytes = 0;
    const auto& nodes = g.nodes();
    for (std::size_t i = 0; i < p.keep.size(); ++i) {
      if (!p.keep[i]) continue;
      std::int64_t numel = 1;
      for (std::int64_t dim : nodes[i].shape) numel *= dim;
      kept_bytes += numel * 4;
    }
    EXPECT_GT(kept_bytes, 0);
    return p.peak_bytes - kept_bytes;
  };
  const std::int64_t t2 = transient_for(2);
  const std::int64_t t8 = transient_for(8);
  EXPECT_EQ(t2, t8);
}

// --- fused vs eager bit-identity (the IsaDifferential) ----------------------

namespace {

/// Runs one recorded chain fused and eager under a pinned ISA and thread
/// count; both executions must agree bit for bit.
void expect_fused_eager_bit_identical(Isa isa, int threads,
                                      const std::string& reduce,
                                      bool u_mul_e) {
  if (!fg::simd::isa_supported(isa)) GTEST_SKIP() << "hardware lacks ISA";
  fg::simd::ScopedIsa pin(isa);
  Graph gr(fg::graph::gen_uniform(48, 4.0, 29));
  const std::int64_t d = 20;  // covers SIMD main lanes + masked tail

  auto run_once = [&](bool fuse) {
    ExecContext ctx;
    ctx.num_threads = threads;
    ctx.fuse_epilogues = fuse;
    LazyGraph g;
    Var x = make_leaf(Tensor::randn({gr.num_vertices(), d}, 31), false, "x");
    Var w = make_leaf(Tensor::randn({d, d}, 32), false, "w");
    Var b = make_leaf(Tensor::randn({d}, 33), false, "b");
    const NodeId z = g.matmul(g.leaf(x), g.leaf(w));
    NodeId agg;
    if (u_mul_e) {
      Var ew = make_leaf(
          fg::minidgl::symmetric_norm_weights(gr), false, "ew");
      agg = g.spmm_u_mul_e(gr, z, g.leaf(ew));
    } else {
      agg = g.spmm_copy_u(gr, z, reduce);
    }
    NodeId h = g.add_bias(agg, g.leaf(b));
    h = g.relu(h);
    return g.run(ctx, h)->value();
  };

  const Tensor fused = run_once(true);
  const Tensor eager = run_once(false);
  EXPECT_TRUE(bit_equal(fused, eager))
      << "isa=" << fg::simd::isa_name(isa) << " threads=" << threads
      << " reduce=" << (u_mul_e ? "u_mul_e" : reduce);
}

}  // namespace

TEST(LazyIsaDifferential, FusedMatchesEagerAllIsaReducersThreads) {
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (!fg::simd::isa_supported(isa)) continue;
    for (const int threads : {1, 4}) {
      expect_fused_eager_bit_identical(isa, threads, "sum", false);
      expect_fused_eager_bit_identical(isa, threads, "mean", false);
      expect_fused_eager_bit_identical(isa, threads, "", true);
    }
  }
}

TEST(LazyIsaDifferential, MatmulEpilogueMatchesEagerChain) {
  // Dense anchor: bias+relu folded into the matmul's row sweep.
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (!fg::simd::isa_supported(isa)) continue;
    fg::simd::ScopedIsa pin(isa);
    auto run_once = [&](bool fuse) {
      ExecContext ctx;
      ctx.fuse_epilogues = fuse;
      LazyGraph g;
      Var x = make_leaf(Tensor::randn({17, 20}, 41), false, "x");
      Var w = make_leaf(Tensor::randn({20, 20}, 42), false, "w");
      Var b = make_leaf(Tensor::randn({20}, 43), false, "b");
      NodeId h = g.add_bias(g.matmul(g.leaf(x), g.leaf(w)), g.leaf(b));
      h = g.relu(h);
      return g.run(ctx, h)->value();
    };
    EXPECT_TRUE(bit_equal(run_once(true), run_once(false)))
        << fg::simd::isa_name(isa);
  }
}

// --- whole-model gradients: fused plan vs eager plan ------------------------

namespace {

/// Trains one step of `kind` twice — fused and eager plans — and expects
/// bit-identical loss and parameter gradients. Both runs derive backward
/// from the same recorded DAG; fusion must be execution-invisible.
void expect_model_grads_bit_identical(const std::string& kind) {
  Graph gr(fg::graph::gen_uniform(40, 4.0, 51));
  const std::int64_t d = 12, hidden = 10, classes = 4;
  const Tensor features = Tensor::randn({gr.num_vertices(), d}, 52);
  std::vector<std::int32_t> labels(
      static_cast<std::size_t>(gr.num_vertices()));
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<std::int32_t>(i % classes);
  std::vector<std::int64_t> rows;
  for (std::int64_t r = 0; r < gr.num_vertices(); r += 2) rows.push_back(r);

  auto run_once = [&](bool fuse, std::vector<Tensor>* grads) {
    ExecContext ctx;
    ctx.fuse_epilogues = fuse;
    Model model(kind, d, hidden, classes, 77);
    Var x = make_leaf(features, false, "x");
    Var lp = model.forward(ctx, gr, x);
    Var loss = fg::minidgl::nll_loss(ctx, lp, labels, rows);
    backward(loss);
    for (const Var& p : model.parameters()) {
      EXPECT_TRUE(p->has_grad());
      grads->push_back(p->grad().clone());
    }
    return loss->value().at(0);
  };

  std::vector<Tensor> fused_grads, eager_grads;
  const float fused_loss = run_once(true, &fused_grads);
  const float eager_loss = run_once(false, &eager_grads);
  EXPECT_EQ(std::memcmp(&fused_loss, &eager_loss, sizeof(float)), 0) << kind;
  ASSERT_EQ(fused_grads.size(), eager_grads.size());
  for (std::size_t i = 0; i < fused_grads.size(); ++i) {
    EXPECT_TRUE(bit_equal(fused_grads[i], eager_grads[i]))
        << kind << " param " << i;
  }
}

}  // namespace

TEST(LazyModelGrads, GcnFusedPlanBitIdenticalToEagerPlan) {
  expect_model_grads_bit_identical("gcn");
}

TEST(LazyModelGrads, SageMeanFusedPlanBitIdenticalToEagerPlan) {
  expect_model_grads_bit_identical("sage-mean");
}

TEST(LazyModelGrads, SageMaxFusedPlanBitIdenticalToEagerPlan) {
  expect_model_grads_bit_identical("sage-max");
}

TEST(LazyModelGrads, GatFusedPlanBitIdenticalToEagerPlan) {
  expect_model_grads_bit_identical("gat");
}

TEST(LazyModelGrads, BufferPlanOffIsAlsoBitIdentical) {
  // The reuse/in-place plan must be as invisible as fusion.
  Graph gr(fg::graph::gen_uniform(32, 4.0, 53));
  const std::int64_t d = 8;
  auto run_once = [&](bool plan_buffers) {
    ExecContext ctx;
    ctx.plan_buffers = plan_buffers;
    Model model("gcn", d, 6, 3, 88);
    Var x = make_leaf(Tensor::randn({gr.num_vertices(), d}, 54), false, "x");
    Var lp = model.forward(ctx, gr, x);
    std::vector<std::int32_t> labels(
        static_cast<std::size_t>(gr.num_vertices()), 1);
    Var loss = fg::minidgl::nll_loss(ctx, lp, labels, {0, 2, 4});
    backward(loss);
    return model.parameters()[0]->grad().clone();
  };
  EXPECT_TRUE(bit_equal(run_once(true), run_once(false)));
}

// --- copy-count regression --------------------------------------------------

TEST(LazyCopies, LeafCreationSharesStorageWithoutAllocating) {
  const Tensor features = Tensor::randn({64, 16}, 61);
  const std::int64_t before = fg::tensor::allocation_count();
  Var x = make_leaf(features, false, "features");  // shared view
  EXPECT_EQ(fg::tensor::allocation_count(), before);
  EXPECT_EQ(x->value().data(), features.data());
}

TEST(LazyCopies, CompiledForwardAllocatesFewerBuffersThanNaive) {
  // Copy-count regression for the whole inference path. The naive plan
  // (no fusion, no buffer planning) materializes every recorded op; the
  // compiled plan folds each layer's bias+relu into its SpMM epilogue (and
  // runs eligible survivors in place), so the 2-layer GCN drops from 8
  // buffer allocations to 5 (z1, agg1, z2, agg2, log_softmax).
  Graph gr(fg::graph::gen_uniform(48, 4.0, 63));
  const std::int64_t d = 16;
  const Tensor features = Tensor::randn({gr.num_vertices(), d}, 64);
  Model model("gcn", d, 12, 4, 99);
  auto allocs_for = [&](bool compiled) {
    ExecContext ctx;
    ctx.fuse_epilogues = compiled;
    ctx.plan_buffers = compiled;
    Var x = make_leaf(features, false, "x");
    const std::int64_t before = fg::tensor::allocation_count();
    Var lp = model.forward(ctx, gr, x);
    (void)lp;
    return fg::tensor::allocation_count() - before;
  };
  const std::int64_t naive = allocs_for(false);
  const std::int64_t compiled = allocs_for(true);
  EXPECT_LE(compiled + 3, naive)
      << "compiled=" << compiled << " naive=" << naive;
  EXPECT_LE(compiled, 5) << "compiled=" << compiled;
}

// --- executor accounting ----------------------------------------------------

TEST(LazyAccounting, PeakBytesSurfacesOnTheContext) {
  Graph gr(fg::graph::gen_uniform(32, 4.0, 67));
  ExecContext ctx;
  Model model("gcn", 8, 6, 3, 101);
  Var x = make_leaf(Tensor::randn({gr.num_vertices(), 8}, 68), false, "x");
  EXPECT_EQ(ctx.peak_bytes, 0.0);
  (void)model.forward(ctx, gr, x);
  EXPECT_GT(ctx.peak_bytes, 0.0);
  ctx.reset_accounting();
  EXPECT_EQ(ctx.peak_bytes, 0.0);
}
