// Naive reference implementations the optimized kernels are validated
// against. Deliberately simple: direct translations of the paper's
// Equations (1) and (2) with no tiling, partitioning or threading.
#pragma once

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::testing {

using graph::eid_t;
using graph::vid_t;
using tensor::Tensor;

using RefMsgFn =
    std::function<void(vid_t u, eid_t e, vid_t v, std::vector<float>& msg)>;

/// out[v,:] = reduce over in-edges of msg(u, e, v); reduce_op in
/// {sum, max, min, mean}; empty rows produce zeros.
inline Tensor reference_spmm(const graph::Csr& adj, const RefMsgFn& msg,
                             const std::string& reduce_op,
                             std::int64_t d_out) {
  Tensor out = Tensor::zeros({adj.num_rows, d_out});
  std::vector<float> buf(static_cast<std::size_t>(d_out));
  for (vid_t v = 0; v < adj.num_rows; ++v) {
    const std::int64_t lo = adj.indptr[static_cast<std::size_t>(v)];
    const std::int64_t hi = adj.indptr[static_cast<std::size_t>(v) + 1];
    if (lo == hi) continue;
    std::vector<float> acc(
        static_cast<std::size_t>(d_out),
        reduce_op == "max" ? -std::numeric_limits<float>::infinity()
        : reduce_op == "min" ? std::numeric_limits<float>::infinity()
                             : 0.0f);
    for (std::int64_t i = lo; i < hi; ++i) {
      msg(adj.indices[static_cast<std::size_t>(i)],
          adj.edge_ids[static_cast<std::size_t>(i)], v, buf);
      for (std::int64_t j = 0; j < d_out; ++j) {
        const auto ju = static_cast<std::size_t>(j);
        if (reduce_op == "max") {
          acc[ju] = std::max(acc[ju], buf[ju]);
        } else if (reduce_op == "min") {
          acc[ju] = std::min(acc[ju], buf[ju]);
        } else {
          acc[ju] += buf[ju];
        }
      }
    }
    const float scale =
        reduce_op == "mean" ? 1.0f / static_cast<float>(hi - lo) : 1.0f;
    for (std::int64_t j = 0; j < d_out; ++j)
      out.at(v, j) = acc[static_cast<std::size_t>(j)] * scale;
  }
  return out;
}

using RefLogitFn = std::function<float(vid_t u, eid_t e, vid_t v)>;

/// Composed-op attention oracle: per destination row, naive logits ->
/// numerically-stable segment softmax (std::exp, sequential max/sum, the
/// same per-element division the kernels use) -> alpha-weighted aggregation
/// in CSR row order. On the scalar backend with one partition the fused
/// kernel performs these exact IEEE operations in this exact order, so that
/// cell of the differential matrix is bit-for-bit.
inline Tensor reference_attention(const graph::Csr& adj, const RefMsgFn& msg,
                                  const RefLogitFn& logit, std::int64_t d_out,
                                  Tensor* alpha_out = nullptr) {
  Tensor out = Tensor::zeros({adj.num_rows, d_out});
  if (alpha_out != nullptr) *alpha_out = Tensor::zeros({adj.nnz()});
  std::vector<float> buf(static_cast<std::size_t>(d_out));
  for (vid_t v = 0; v < adj.num_rows; ++v) {
    const std::int64_t lo = adj.indptr[static_cast<std::size_t>(v)];
    const std::int64_t hi = adj.indptr[static_cast<std::size_t>(v) + 1];
    if (lo == hi) continue;
    std::vector<float> l(static_cast<std::size_t>(hi - lo));
    for (std::int64_t i = lo; i < hi; ++i)
      l[static_cast<std::size_t>(i - lo)] =
          logit(adj.indices[static_cast<std::size_t>(i)],
                adj.edge_ids[static_cast<std::size_t>(i)], v);
    float mx = -std::numeric_limits<float>::infinity();
    for (const float li : l) mx = li > mx ? li : mx;
    float denom = 0.0f;
    for (float& li : l) {
      li = std::exp(li + -mx);
      denom += li;
    }
    for (float& li : l) li /= denom;
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      if (alpha_out != nullptr)
        alpha_out->at(adj.edge_ids[iu]) = l[static_cast<std::size_t>(i - lo)];
      msg(adj.indices[iu], adj.edge_ids[iu], v, buf);
      const float a = l[static_cast<std::size_t>(i - lo)];
      for (std::int64_t j = 0; j < d_out; ++j)
        out.at(v, j) += buf[static_cast<std::size_t>(j)] * a;
    }
  }
  return out;
}

using RefEdgeFn =
    std::function<void(vid_t u, eid_t e, vid_t v, std::vector<float>& out)>;

/// out[e,:] = fn(u, e, v) over all edges.
inline Tensor reference_sddmm(const graph::Coo& coo, const RefEdgeFn& fn,
                              std::int64_t d_out) {
  Tensor out = d_out == 1 ? Tensor::zeros({coo.num_edges()})
                          : Tensor::zeros({coo.num_edges(), d_out});
  std::vector<float> buf(static_cast<std::size_t>(d_out));
  for (eid_t e = 0; e < coo.num_edges(); ++e) {
    fn(coo.src[static_cast<std::size_t>(e)], e,
       coo.dst[static_cast<std::size_t>(e)], buf);
    for (std::int64_t j = 0; j < d_out; ++j)
      out.at(e * d_out + j) = buf[static_cast<std::size_t>(j)];
  }
  return out;
}

}  // namespace featgraph::testing
