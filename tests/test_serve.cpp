// Multi-tenant serving front-end (ISSUE 7): request coalescing / scatter-back
// structure, the coalesced-vs-solo BIT-FOR-BIT oracle per ISA (feature cache
// on and off, sampled and full fanouts), the frequency/LRU feature cache's
// bit-identity + replacement/admission/stats contracts, the live admission
// Server under concurrent tenants, and the trace replay's admission
// semantics.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/simd.hpp"
#include "graph/generators.hpp"
#include "minidgl/train.hpp"
#include "parallel/thread_pool.hpp"
#include "sample/feature_loader.hpp"
#include "serve/coalescer.hpp"
#include "serve/feature_cache.hpp"
#include "serve/server.hpp"
#include "support/rng.hpp"

namespace fg = featgraph;
using fg::graph::vid_t;
using fg::serve::CoalescedBatch;
using fg::serve::FeatureCache;
using fg::serve::Request;
using fg::serve::ServeOptions;
using fg::serve::ServingEngine;
using fg::tensor::Tensor;

namespace {

bool tensors_bit_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

std::vector<Request> three_requests() {
  return {{0, {5, 9}}, {1, {9, 2, 7}}, {2, {5}}};
}

}  // namespace

// --- coalescer -------------------------------------------------------------

TEST(Serve, CoalesceDedupsSeedsFirstAppearance) {
  const CoalescedBatch b = fg::serve::coalesce(three_requests());
  EXPECT_EQ(b.seeds, (std::vector<vid_t>{5, 9, 2, 7}));
  ASSERT_EQ(b.row_of.size(), 3u);
  EXPECT_EQ(b.row_of[0], (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(b.row_of[1], (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(b.row_of[2], (std::vector<std::int64_t>{0}));
  EXPECT_EQ(b.shared_seed_rows, 2);  // 9 and 5 reused
  EXPECT_EQ(b.total_request_seeds(), 6);
}

TEST(ServeDeathTest, CoalesceRejectsDuplicateSeedsWithinOneRequest) {
  // Same precondition solo serving has (duplicate-free block destinations).
  EXPECT_DEATH(fg::serve::coalesce({{0, {3, 3}}}), "duplicate-free");
}

TEST(Serve, ScatterBackCopiesRowsBitwise) {
  const CoalescedBatch b = fg::serve::coalesce(three_requests());
  const Tensor merged = Tensor::randn({4, 6}, 3);
  const auto outs = fg::serve::scatter_back(b, merged);
  ASSERT_EQ(outs.size(), 3u);
  for (std::size_t r = 0; r < outs.size(); ++r) {
    ASSERT_EQ(outs[r].rows(),
              static_cast<std::int64_t>(b.requests[r].seeds.size()));
    for (std::size_t k = 0; k < b.row_of[r].size(); ++k)
      EXPECT_EQ(std::memcmp(outs[r].row(static_cast<std::int64_t>(k)),
                            merged.row(b.row_of[r][k]), 6 * sizeof(float)),
                0);
  }
}

// --- feature cache ---------------------------------------------------------

TEST(FeatureCache, GatherBitIdenticalToUncachedAcrossIsas) {
  // Cache-on output must be byte-for-byte the uncached gather, per ISA,
  // whatever mix of hits and misses each call sees.
  const Tensor x = Tensor::randn({200, 24}, 5);
  fg::support::Rng rng(77);
  for (const auto isa : fg::simd::supported_isas()) {
    fg::simd::ScopedIsa pin(isa);
    FeatureCache cache(16, 24);
    for (int round = 0; round < 8; ++round) {
      std::vector<vid_t> rows;
      for (int k = 0; k < 40; ++k)
        rows.push_back(static_cast<vid_t>(rng.uniform(200)));
      for (const int threads : {1, 3}) {
        const Tensor cached = cache.gather(x, rows, threads);
        const Tensor plain = fg::sample::gather_rows(x, rows, threads);
        EXPECT_TRUE(tensors_bit_equal(cached, plain))
            << "round " << round << " threads " << threads << " under "
            << fg::simd::isa_name(isa);
      }
    }
    EXPECT_LE(cache.size(), 16);
  }
}

TEST(FeatureCache, CountsHitsMissesAndBytesSaved) {
  const Tensor x = Tensor::randn({64, 8}, 1);
  FeatureCache cache(8, 8);
  cache.gather(x, {1, 2, 3});  // all cold
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 3);
  EXPECT_EQ(s.insertions, 3);
  EXPECT_EQ(s.bytes_saved, 0);

  cache.gather(x, {3, 2, 1, 9});  // three hot, one cold
  s = cache.stats();
  EXPECT_EQ(s.hits, 3);
  EXPECT_EQ(s.misses, 4);
  EXPECT_EQ(s.bytes_saved, 3 * 8 * static_cast<std::int64_t>(sizeof(float)));
  EXPECT_EQ(cache.size(), 4);

  cache.reset_stats();
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.size(), 4);  // stats reset keeps residents
}

TEST(FeatureCache, EvictsLeastRecentlyUsedWhenFull) {
  const Tensor x = Tensor::randn({64, 4}, 2);
  FeatureCache cache(3, 4);
  cache.gather(x, {10, 11, 12});  // fill: LRU order 10 < 11 < 12
  cache.gather(x, {10});          // refresh 10; 11 is now LRU
  // Equal frequency (all seen once... 10 twice): a fresh vertex with count 1
  // ties vertex 11's count 1, and ties admit — 11 is evicted, 10 stays.
  cache.gather(x, {13});
  cache.gather(x, {10, 12, 13});
  const auto s = cache.stats();
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(s.evictions, 1);
  // The refreshed and fresh rows all hit; evicted 11 would miss.
  EXPECT_EQ(s.hits, 1 + 3);  // the {10} refresh + the final triple
  cache.gather(x, {11});
  EXPECT_EQ(cache.stats().misses, 3 + 1 + 1);
}

TEST(FeatureCache, FrequencyGuardKeepsHotRowsAgainstColdScan) {
  // A hot vertex accessed many times must survive a one-shot scan of cold
  // vertices — the LRU failure mode the frequency admission guard removes.
  const Tensor x = Tensor::randn({512, 4}, 3);
  FeatureCache cache(4, 4);
  for (int round = 0; round < 5; ++round) cache.gather(x, {7, 8, 9, 10});
  const auto warm = cache.stats();
  EXPECT_EQ(warm.hits, 4 * 4);

  std::vector<vid_t> scan;
  for (vid_t v = 100; v < 200; ++v) scan.push_back(v);
  cache.gather(x, scan);  // 100 cold one-shot rows

  cache.reset_stats();
  cache.gather(x, {7, 8, 9, 10});
  EXPECT_EQ(cache.stats().hits, 4) << "hot set was flushed by the cold scan";
}

TEST(FeatureCache, CapacityZeroIsPassThrough) {
  const Tensor x = Tensor::randn({32, 5}, 4);
  FeatureCache cache(0, 5);
  const std::vector<vid_t> rows = {3, 3, 0, 31};
  EXPECT_TRUE(
      tensors_bit_equal(cache.gather(x, rows), fg::sample::gather_rows(x, rows)));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().misses, 0);
}

TEST(FeatureCacheDeathTest, OutOfRangeRowKeepsGatherMessage) {
  // The folded-into-lanes bounds check (feature_loader.cpp) must still fail
  // with the original message — through the cache path too.
  const Tensor x = Tensor::randn({8, 4}, 5);
  FeatureCache cache(4, 4);
  EXPECT_DEATH(cache.gather(x, {9}), "gather row out of range");
  EXPECT_DEATH(fg::sample::gather_rows(x, {-1}, 3), "gather row out of range");
}

// --- the serving oracle: coalesced == solo, bit for bit --------------------

namespace {

/// Requests with heavy cross-request seed overlap over [0, n).
std::vector<std::vector<std::int64_t>> overlapping_requests(std::int64_t n,
                                                            int count) {
  fg::support::Rng rng(99);
  std::vector<std::vector<std::int64_t>> reqs;
  for (int r = 0; r < count; ++r) {
    const int size = 1 + static_cast<int>(rng.uniform(4));
    std::vector<std::int64_t> seeds;
    for (int k = 0; k < size; ++k) {
      // Zipf-flavored: half the draws from a small hot set.
      const std::int64_t v =
          rng.uniform(2) == 0
              ? static_cast<std::int64_t>(rng.uniform(8))
              : static_cast<std::int64_t>(rng.uniform(
                    static_cast<std::uint64_t>(n)));
      if (std::find(seeds.begin(), seeds.end(), v) == seeds.end())
        seeds.push_back(v);
    }
    reqs.push_back(std::move(seeds));
  }
  return reqs;
}

}  // namespace

TEST(Serve, CoalescedMatchesSoloBitForBitPerIsa) {
  // THE tentpole property (satellite 4): a coalesced multi-request batch,
  // after scatter-back, equals each request served alone BIT-FOR-BIT — per
  // ISA, with the feature cache on and off, for sampled AND full fanouts,
  // for GCN and GraphSage. Rests on per-vertex sampler streams, the shared
  // rng_stream, and num_partitions == 1 on the serving path.
  const auto data = fg::minidgl::make_sbm_classification(
      /*n=*/400, /*avg_degree=*/9.0, /*num_classes=*/4, /*p_in=*/0.9,
      /*feat_dim=*/16, /*signal=*/2.0f, /*seed=*/21);
  const auto requests = overlapping_requests(data.graph.num_vertices(), 24);

  for (const char* kind : {"gcn", "sage-mean"}) {
    for (const std::vector<std::int64_t>& fanouts :
         {std::vector<std::int64_t>{3, 5}, std::vector<std::int64_t>{-1, -1}}) {
      for (const auto isa : fg::simd::supported_isas()) {
        fg::simd::ScopedIsa pin(isa);
        fg::minidgl::ExecContext ctx;
        ctx.num_threads = 2;
        fg::minidgl::Trainer trainer(
            data, fg::minidgl::Model(kind, 16, 24, 4, /*seed=*/8), ctx, 0.05f);
        trainer.train_epoch();  // non-initialization weights

        fg::minidgl::ServeRequestsOptions solo;
        solo.sampler.fanouts = fanouts;
        solo.sampler.seed = 5;
        // Small request cap: coalesced serving forms several batches, so
        // the feature cache sees cross-batch reuse (hot rows hitting).
        solo.admission.max_requests_per_batch = 6;
        solo.coalesce = false;
        solo.feature_cache_rows = 0;
        const auto ref = trainer.serve_requests(solo, requests);
        ASSERT_EQ(ref.outputs.size(), requests.size());
        EXPECT_EQ(ref.stats.batches,
                  static_cast<std::int64_t>(requests.size()));

        for (const std::int64_t cache_rows : {std::int64_t{0}, std::int64_t{64}}) {
          fg::minidgl::ServeRequestsOptions co = solo;
          co.coalesce = true;
          co.feature_cache_rows = cache_rows;
          const auto got = trainer.serve_requests(co, requests);
          ASSERT_EQ(got.outputs.size(), requests.size());
          EXPECT_LT(got.stats.batches, ref.stats.batches);  // really merged
          EXPECT_GT(got.stats.shared_seed_rows, 0);         // really deduped
          for (std::size_t r = 0; r < requests.size(); ++r)
            EXPECT_TRUE(tensors_bit_equal(got.outputs[r], ref.outputs[r]))
                << kind << " request " << r << " fanout " << fanouts[0]
                << " cache " << cache_rows << " under "
                << fg::simd::isa_name(isa);
          if (cache_rows > 0 && fanouts[0] > 0) {
            EXPECT_GT(got.cache.hits, 0);  // hot seeds overlap frontiers
          }
        }
      }
    }
  }
}

TEST(Serve, SamplerStreamsAreSeedPositionInvariant) {
  // The serving-path bugfix this PR's coalescer rests on: a vertex's
  // sampled neighborhood depends on (seed, stream, hop, VERTEX), not on
  // where in the seed list it sits.
  const auto csr = fg::graph::coo_to_in_csr(fg::graph::gen_rmat(512, 8.0, 3));
  fg::sample::NeighborSampler sampler(csr, {{4, 4}, false, 17});
  const auto solo = sampler.sample({42}, 0);
  const auto merged = sampler.sample({7, 99, 42, 3}, 0);
  // Vertex 42 is dst 2 of the merged last-layer block; its sampled edge
  // lists must match solo's dst 0, layer by layer, in original edge ids.
  const auto& ms = merged.blocks.back();
  const auto& ss = solo.blocks.back();
  const auto m_lo = ms.adj.indptr[2], m_hi = ms.adj.indptr[3];
  const auto s_lo = ss.adj.indptr[0], s_hi = ss.adj.indptr[1];
  ASSERT_EQ(m_hi - m_lo, s_hi - s_lo);
  for (std::int64_t k = 0; k < m_hi - m_lo; ++k) {
    EXPECT_EQ(ms.adj.edge_ids[static_cast<std::size_t>(m_lo + k)],
              ss.adj.edge_ids[static_cast<std::size_t>(s_lo + k)]);
    // Same original neighbor vertex behind the local relabeling.
    EXPECT_EQ(
        ms.src_nodes[static_cast<std::size_t>(
            ms.adj.indices[static_cast<std::size_t>(m_lo + k)])],
        ss.src_nodes[static_cast<std::size_t>(
            ss.adj.indices[static_cast<std::size_t>(s_lo + k)])]);
  }
}

// --- the live admission server ---------------------------------------------

TEST(Serve, ServerServesConcurrentTenantsCorrectly) {
  // Several tenant threads submit overlapping requests; every future must
  // resolve to the solo-serving reference bit-for-bit, whatever batching
  // the admission window produced.
  const auto data = fg::minidgl::make_sbm_classification(
      300, 8.0, 4, 0.9, 12, 2.0f, 31);
  fg::minidgl::ExecContext ctx;
  ctx.num_threads = 1;
  fg::minidgl::Trainer trainer(
      data, fg::minidgl::Model("sage-mean", 12, 16, 4, 2), ctx, 0.05f);

  const auto requests = overlapping_requests(data.graph.num_vertices(), 32);
  fg::minidgl::ServeRequestsOptions solo;
  solo.sampler.fanouts = {3, 3};
  solo.coalesce = false;
  solo.feature_cache_rows = 0;
  const auto ref = trainer.serve_requests(solo, requests);

  fg::sample::NeighborSampler sampler(data.graph.in_csr(), solo.sampler);
  fg::serve::FeatureCache cache(128, 12);
  fg::sample::BlockScheduleCache sched_cache;
  ServeOptions opts;
  opts.latency_bound_s = 2e-3;
  opts.max_requests_per_batch = 8;
  ServingEngine engine(sampler, data.features,
                       trainer.make_serve_compute(&sched_cache, false), opts,
                       &cache);
  fg::serve::Server server(engine);

  std::vector<std::future<Tensor>> futures(requests.size());
  std::vector<std::thread> tenants;
  const int kTenants = 4;
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      for (std::size_t r = static_cast<std::size_t>(t); r < requests.size();
           r += kTenants) {
        std::vector<vid_t> seeds;
        for (const std::int64_t s : requests[r])
          seeds.push_back(static_cast<vid_t>(s));
        futures[r] = server.submit(std::move(seeds));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  for (auto& t : tenants) t.join();
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const Tensor out = futures[r].get();
    EXPECT_TRUE(tensors_bit_equal(out, ref.outputs[r])) << "request " << r;
  }
  server.close();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, static_cast<std::int64_t>(requests.size()));
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.batches, stats.requests);
}

TEST(Serve, ServerDrainsPendingOnClose) {
  const auto csr = fg::graph::coo_to_in_csr(fg::graph::gen_rmat(128, 6.0, 9));
  const Tensor x = Tensor::randn({csr.num_cols, 4}, 8);
  fg::sample::NeighborSampler sampler(csr, {{2}, false, 3});
  ServeOptions opts;
  opts.latency_bound_s = 0.5;  // window far longer than the test
  ServingEngine engine(
      sampler, x,
      [](const fg::sample::MinibatchBlocks& blocks, Tensor feats) {
        // Identity head: output = the seeds' own gathered features (the
        // first num_dst input rows, by the dst-then-src invariant).
        Tensor out({static_cast<std::int64_t>(blocks.output_nodes().size()),
                    feats.row_size()});
        std::memcpy(out.data(), feats.data(),
                    static_cast<std::size_t>(out.numel()) * sizeof(float));
        return out;
      },
      opts);
  fg::serve::Server server(engine);
  auto f1 = server.submit({1, 2});
  auto f2 = server.submit({3});
  server.close();  // must cut the batch early and resolve both futures
  EXPECT_EQ(f1.get().rows(), 2);
  EXPECT_EQ(f2.get().rows(), 1);
  EXPECT_EQ(engine.stats().requests, 2);
}

TEST(Serve, DetachedLaneClaimFollowsPoolDiscipline) {
  // While one Server holds the pool's detached slot, a second Server's
  // claim is declined and it falls back to a dedicated thread; both still
  // serve. With no claim possible at all (slot held), launch degrades to
  // inline — exercised implicitly by the engines' parallel_for gathers.
  const auto csr = fg::graph::coo_to_in_csr(fg::graph::gen_rmat(64, 4.0, 2));
  const Tensor x = Tensor::randn({csr.num_cols, 4}, 1);
  fg::sample::NeighborSampler sampler(csr, {{2}, false, 3});
  ServeOptions opts;
  opts.latency_bound_s = 0.0;
  auto identity = [](const fg::sample::MinibatchBlocks& blocks, Tensor feats) {
    Tensor out({static_cast<std::int64_t>(blocks.output_nodes().size()),
                feats.row_size()});
    std::memcpy(out.data(), feats.data(),
                static_cast<std::size_t>(out.numel()) * sizeof(float));
    return out;
  };
  ServingEngine e1(sampler, x, identity, opts);
  ServingEngine e2(sampler, x, identity, opts);
  fg::serve::Server s1(e1);
  fg::serve::Server s2(e2);
  if (fg::parallel::ThreadPool::global().num_workers() >= 1) {
    EXPECT_TRUE(s1.lane_on_pool());
  }
  EXPECT_FALSE(s2.lane_on_pool());  // slot already held by s1's lane
  EXPECT_EQ(s1.submit({5}).get().rows(), 1);
  EXPECT_EQ(s2.submit({6}).get().rows(), 1);
  s2.close();
  s1.close();
}

// --- trace replay ----------------------------------------------------------

TEST(Serve, ReplayTraceCoalescesWithinWindowAndRespectsCaps) {
  const auto csr = fg::graph::coo_to_in_csr(fg::graph::gen_rmat(128, 6.0, 4));
  const Tensor x = Tensor::randn({csr.num_cols, 4}, 6);
  fg::sample::NeighborSampler sampler(csr, {{2}, false, 3});
  auto identity = [](const fg::sample::MinibatchBlocks& blocks, Tensor feats) {
    Tensor out({static_cast<std::int64_t>(blocks.output_nodes().size()),
                feats.row_size()});
    std::memcpy(out.data(), feats.data(),
                static_cast<std::size_t>(out.numel()) * sizeof(float));
    return out;
  };

  // Six requests in two arrival clusters; window 10 ms merges each cluster.
  std::vector<fg::serve::TraceRequest> trace;
  for (int k = 0; k < 3; ++k)
    trace.push_back({{k, {static_cast<vid_t>(k)}}, 0.001 * k});
  for (int k = 3; k < 6; ++k)
    trace.push_back({{k, {static_cast<vid_t>(k)}}, 1.0 + 0.001 * k});

  ServeOptions opts;
  opts.latency_bound_s = 0.010;
  ServingEngine engine(sampler, x, identity, opts);
  const auto res = fg::serve::replay_trace(engine, trace);
  EXPECT_EQ(res.batches, 2);
  ASSERT_EQ(res.outputs.size(), 6u);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_EQ(res.outputs[k].rows(), 1);
    // Every request waits out (part of) the window: latency >= time from
    // its arrival to its window close, and is positive.
    EXPECT_GT(res.latency_s[k], 0.0);
  }
  // First cluster's window anchored at t=0: completion >= 10 ms, so the
  // first request's latency is at least the bound.
  EXPECT_GE(res.latency_s[0], opts.latency_bound_s);

  // max_requests_per_batch = 1 serves solo: 6 batches.
  ServeOptions solo_opts = opts;
  solo_opts.latency_bound_s = 0.0;
  solo_opts.max_requests_per_batch = 1;
  ServingEngine solo_engine(sampler, x, identity, solo_opts);
  const auto solo = fg::serve::replay_trace(solo_engine, trace);
  EXPECT_EQ(solo.batches, 6);
  for (std::size_t k = 0; k < 6; ++k)
    EXPECT_TRUE(tensors_bit_equal(solo.outputs[k], res.outputs[k]));
}

TEST(Serve, PercentileNearestRank) {
  std::vector<double> v = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(fg::serve::percentile(v, 50), 2.0);
  EXPECT_DOUBLE_EQ(fg::serve::percentile(v, 99), 4.0);
  EXPECT_DOUBLE_EQ(fg::serve::percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(fg::serve::percentile({}, 50), 0.0);
}
