#include <gtest/gtest.h>

#include <cmath>

#include "core/sddmm.hpp"
#include "graph/generators.hpp"
#include "reference.hpp"

namespace fg = featgraph;
using fg::core::CpuSddmmSchedule;
using fg::core::SddmmOperands;
using fg::graph::Coo;
using fg::tensor::Tensor;
using fg::testing::reference_sddmm;

namespace {

struct Fixture {
  Coo coo;
  Tensor x;   // n x d
  Tensor x3;  // n x heads x head_dim

  Fixture(fg::graph::vid_t n, double avg_deg, std::int64_t d,
          std::int64_t heads, std::uint64_t seed)
      : coo(fg::graph::gen_uniform(n, avg_deg, seed)),
        x(Tensor::randn({n, d}, seed + 1)),
        x3(Tensor::randn({n, heads, d / heads}, seed + 2)) {}
};

}  // namespace

// Dot-product attention across schedules: reduce-axis tiling, Hilbert-curve
// traversal, and threading must never change results.
struct SddmmCase {
  std::int64_t reduce_tile;
  bool hilbert;
  int threads;
};

class SddmmSweep : public ::testing::TestWithParam<SddmmCase> {};

TEST_P(SddmmSweep, DotMatchesReference) {
  const auto p = GetParam();
  Fixture f(150, 6.0, 16, 4, /*seed=*/50);
  CpuSddmmSchedule sched{p.reduce_tile, p.hilbert, p.threads};
  const Tensor got = fg::core::sddmm(f.coo, "dot", sched, {&f.x, nullptr});
  const Tensor want = reference_sddmm(
      f.coo,
      [&](auto u, auto, auto v, std::vector<float>& out) {
        float acc = 0;
        for (std::int64_t k = 0; k < 16; ++k) acc += f.x.at(u, k) * f.x.at(v, k);
        out[0] = acc;
      },
      1);
  EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-4f)
      << "tile=" << p.reduce_tile << " hilbert=" << p.hilbert
      << " threads=" << p.threads;
}

TEST_P(SddmmSweep, MultiHeadDotMatchesReference) {
  const auto p = GetParam();
  Fixture f(150, 6.0, 16, 4, /*seed=*/60);
  CpuSddmmSchedule sched{p.reduce_tile, p.hilbert, p.threads};
  const Tensor got =
      fg::core::sddmm(f.coo, "multihead_dot", sched, {&f.x3, nullptr});
  const std::int64_t hd = 4;
  const Tensor want = reference_sddmm(
      f.coo,
      [&](auto u, auto, auto v, std::vector<float>& out) {
        for (std::int64_t h = 0; h < 4; ++h) {
          float acc = 0;
          for (std::int64_t k = 0; k < hd; ++k)
            acc += f.x3.at((u * 4 + h) * hd + k) * f.x3.at((v * 4 + h) * hd + k);
          out[static_cast<std::size_t>(h)] = acc;
        }
      },
      4);
  EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, SddmmSweep,
    ::testing::Values(SddmmCase{0, false, 1}, SddmmCase{0, false, 2},
                      SddmmCase{4, false, 1}, SddmmCase{4, false, 2},
                      SddmmCase{3, false, 1}, SddmmCase{0, true, 1},
                      SddmmCase{4, true, 2}, SddmmCase{16, true, 1}));

TEST(Sddmm, ElementwiseEdgeOutputs) {
  Fixture f(80, 4.0, 8, 2, 70);
  const Tensor add = fg::core::sddmm(f.coo, "u_add_v", {}, {&f.x, nullptr});
  const Tensor mul = fg::core::sddmm(f.coo, "u_mul_v", {}, {&f.x, nullptr});
  ASSERT_EQ(add.rows(), f.coo.num_edges());
  ASSERT_EQ(add.row_size(), 8);
  for (fg::graph::eid_t e = 0; e < f.coo.num_edges(); e += 7) {
    const auto u = f.coo.src[static_cast<std::size_t>(e)];
    const auto v = f.coo.dst[static_cast<std::size_t>(e)];
    for (std::int64_t j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(add.at(e, j), f.x.at(u, j) + f.x.at(v, j));
      EXPECT_FLOAT_EQ(mul.at(e, j), f.x.at(u, j) * f.x.at(v, j));
    }
  }
}

TEST(Sddmm, DifferentSrcAndDstOperands) {
  // Gradient kernels use a != b: out_e = <a_u, b_v>.
  Fixture f(60, 5.0, 8, 2, 80);
  Tensor b = Tensor::randn({60, 8}, 81);
  const Tensor got = fg::core::sddmm(f.coo, "dot", {}, {&f.x, &b});
  for (fg::graph::eid_t e = 0; e < f.coo.num_edges(); e += 11) {
    const auto u = f.coo.src[static_cast<std::size_t>(e)];
    const auto v = f.coo.dst[static_cast<std::size_t>(e)];
    float acc = 0;
    for (std::int64_t k = 0; k < 8; ++k) acc += f.x.at(u, k) * b.at(v, k);
    EXPECT_NEAR(got.at(e), acc, 1e-4f);
  }
}

TEST(Sddmm, VanillaSddmmEqualsMaskedDenseProduct) {
  // out = A . (X X^T) restricted to nonzeros (paper Equation (4)).
  Fixture f(40, 3.0, 6, 2, 90);
  const Tensor got = fg::core::sddmm(f.coo, "dot", {}, {&f.x, nullptr});
  for (fg::graph::eid_t e = 0; e < f.coo.num_edges(); ++e) {
    const auto u = f.coo.src[static_cast<std::size_t>(e)];
    const auto v = f.coo.dst[static_cast<std::size_t>(e)];
    float dense = 0;
    for (std::int64_t k = 0; k < 6; ++k) dense += f.x.at(u, k) * f.x.at(v, k);
    ASSERT_NEAR(got.at(e), dense, 1e-4f);
  }
}

TEST(Sddmm, GenericEdgeFnMatchesBuiltin) {
  Fixture f(70, 4.0, 10, 2, 95);
  fg::core::GenericEdgeFn fn = [&](auto u, auto, auto v, float* out) {
    float acc = 0;
    for (std::int64_t k = 0; k < 10; ++k) acc += f.x.at(u, k) * f.x.at(v, k);
    out[0] = acc;
  };
  const Tensor generic = fg::core::sddmm_generic(f.coo, fn, 1, {});
  const Tensor builtin = fg::core::sddmm(f.coo, "dot", {}, {&f.x, nullptr});
  EXPECT_LT(fg::tensor::max_abs_diff(generic, builtin), 1e-4f);
}

TEST(Sddmm, GenericEdgeFnArbitraryComputation) {
  Fixture f(50, 3.0, 4, 2, 97);
  fg::core::GenericEdgeFn fn = [&](auto u, auto e, auto v, float* out) {
    out[0] = std::tanh(f.x.at(u, 0) - f.x.at(v, 3)) + static_cast<float>(e % 3);
    out[1] = f.x.at(u, 1) * f.x.at(v, 2);
  };
  const Tensor got = fg::core::sddmm_generic(f.coo, fn, 2, {});
  const Tensor want = reference_sddmm(
      f.coo,
      [&](auto u, auto e, auto v, std::vector<float>& out) {
        out[0] =
            std::tanh(f.x.at(u, 0) - f.x.at(v, 3)) + static_cast<float>(e % 3);
        out[1] = f.x.at(u, 1) * f.x.at(v, 2);
      },
      2);
  EXPECT_LT(fg::tensor::max_abs_diff(got, want), 1e-5f);
}

TEST(Sddmm, HilbertOrderCacheIsStable) {
  Fixture f(30, 3.0, 4, 2, 98);
  const auto* o1 = fg::core::cached_hilbert_order(f.coo);
  const auto* o2 = fg::core::cached_hilbert_order(f.coo);
  EXPECT_EQ(o1, o2);
  EXPECT_EQ(static_cast<fg::graph::eid_t>(o1->size()), f.coo.num_edges());
}

TEST(Sddmm, EmptyGraphProducesEmptyOutput) {
  Coo coo;
  coo.num_src = coo.num_dst = 4;
  Tensor x = Tensor::randn({4, 4}, 99);
  const Tensor out = fg::core::sddmm(coo, "dot", {}, {&x, nullptr});
  EXPECT_EQ(out.numel(), 0);
}
