// API-misuse validation: every FG_CHECK guarding the public surface fires
// on bad input instead of corrupting memory (Core Guidelines I.5/I.6 —
// state preconditions and check them).
#include <gtest/gtest.h>

#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "graph/generators.hpp"
#include "tensor/ops.hpp"

namespace fg = featgraph;
using fg::graph::Coo;
using fg::graph::Csr;
using fg::tensor::Tensor;

TEST(ValidationDeathTest, CsrRejectsOutOfRangeEndpoints) {
  Coo coo;
  coo.num_src = coo.num_dst = 3;
  coo.src = {0, 5};  // 5 out of range
  coo.dst = {1, 1};
  EXPECT_DEATH((void)fg::graph::coo_to_in_csr(coo), "out of range");
}

TEST(ValidationDeathTest, GraphRequiresSquareAdjacency) {
  Coo coo;
  coo.num_src = 3;
  coo.num_dst = 4;
  EXPECT_DEATH(fg::graph::Graph g(std::move(coo)), "square");
}

TEST(ValidationDeathTest, SpmmRejectsMismatchedFeatureRows) {
  const Coo coo = fg::graph::gen_uniform(10, 2.0, 1);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor wrong = Tensor::zeros({7, 4});  // 7 rows for a 10-vertex graph
  EXPECT_DEATH((void)fg::core::spmm(in, "copy_u", "sum", {},
                                    {&wrong, nullptr, nullptr}),
               "");
}

TEST(ValidationDeathTest, SpmmRejectsBadEdgeFeatureWidth) {
  const Coo coo = fg::graph::gen_uniform(10, 2.0, 2);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::zeros({10, 4});
  Tensor bad_edge = Tensor::zeros({coo.num_edges(), 3});  // width 3 != 1 or 4
  EXPECT_DEATH((void)fg::core::spmm(in, "u_mul_e", "sum", {},
                                    {&x, &bad_edge, nullptr}),
               "scalar or match");
}

TEST(ValidationDeathTest, MlpRejectsOversizedInputDim) {
  const Coo coo = fg::graph::gen_uniform(10, 2.0, 3);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::zeros({10, fg::core::kMaxMlpInputDim + 1});
  Tensor w = Tensor::zeros({fg::core::kMaxMlpInputDim + 1, 8});
  EXPECT_DEATH((void)fg::core::spmm(in, "mlp", "max", {}, {&x, nullptr, &w}),
               "kMaxMlpInputDim");
}

TEST(ValidationDeathTest, SddmmRejectsMismatchedOperandWidths) {
  const Coo coo = fg::graph::gen_uniform(10, 2.0, 4);
  Tensor a = Tensor::zeros({10, 4});
  Tensor b = Tensor::zeros({10, 6});
  EXPECT_DEATH((void)fg::core::sddmm(coo, "dot", {}, {&a, &b}), "widths");
}

TEST(ValidationDeathTest, MatmulRejectsInnerDimMismatch) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({4, 2});
  EXPECT_DEATH((void)fg::tensor::matmul(a, b), "inner");
}

TEST(ValidationDeathTest, TensorRejectsNegativeDimensions) {
  EXPECT_DEATH(Tensor t({2, -1}), "non-negative");
}

TEST(Validation, ZeroSizedInputsAreHandledGracefully) {
  // Empty graph + empty features: legal, produces empty/zero outputs.
  Coo coo;
  coo.num_src = coo.num_dst = 4;
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({4, 8}, 5);
  const Tensor out =
      fg::core::spmm(in, "copy_u", "sum", {}, {&x, nullptr, nullptr});
  for (std::int64_t i = 0; i < out.numel(); ++i) EXPECT_EQ(out.at(i), 0.0f);

  Tensor empty_feat({4, 0});
  const Tensor out2 = fg::core::spmm(in, "copy_u", "max", {},
                                     {&empty_feat, nullptr, nullptr});
  EXPECT_EQ(out2.numel(), 0);
}

TEST(Validation, SingleVertexSelfLoopGraph) {
  Coo coo;
  coo.num_src = coo.num_dst = 1;
  coo.src = {0};
  coo.dst = {0};
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::full({1, 3}, 2.5f);
  for (const char* red : {"sum", "max", "min", "mean"}) {
    const Tensor out =
        fg::core::spmm(in, "copy_u", red, {}, {&x, nullptr, nullptr});
    EXPECT_FLOAT_EQ(out.at(0, 0), 2.5f) << red;
  }
  const Tensor att = fg::core::sddmm(coo, "dot", {}, {&x, nullptr});
  EXPECT_FLOAT_EQ(att.at(0), 3 * 2.5f * 2.5f);
}

TEST(Validation, PartitionCountLargerThanColumns) {
  // More partitions than source vertices: some segments are empty; results
  // must be unchanged.
  const Coo coo = fg::graph::gen_uniform(6, 2.0, 6);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({6, 4}, 7);
  fg::core::CpuSpmmSchedule sched;
  sched.num_partitions = 50;
  const Tensor a =
      fg::core::spmm(in, "copy_u", "sum", sched, {&x, nullptr, nullptr});
  const Tensor b =
      fg::core::spmm(in, "copy_u", "sum", {}, {&x, nullptr, nullptr});
  EXPECT_LT(fg::tensor::max_abs_diff(a, b), 1e-5f);
}

TEST(Validation, FeatureTileLargerThanWidth) {
  const Coo coo = fg::graph::gen_uniform(20, 3.0, 8);
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Tensor x = Tensor::randn({20, 4}, 9);
  fg::core::CpuSpmmSchedule sched;
  sched.feat_tile = 1000;  // clamped to the feature width
  const Tensor a =
      fg::core::spmm(in, "copy_u", "mean", sched, {&x, nullptr, nullptr});
  const Tensor b =
      fg::core::spmm(in, "copy_u", "mean", {}, {&x, nullptr, nullptr});
  EXPECT_LT(fg::tensor::max_abs_diff(a, b), 1e-5f);
}
