// Observability layer (ISSUE 10): scoped-span tracing (nesting, thread
// stitching, bounded-buffer drops, Chrome JSON), the metrics registry
// (counters / gauges / histograms, snapshot diffs, the profile report), the
// histogram-percentile-vs-serve::percentile oracle, and the differential
// contract that tracing changes ZERO output bytes for SpMM / SDDMM /
// attention / gather / serving, per ISA. The concurrent suites
// (Trace.ConcurrentEmissionAndSnapshotIsRaceFree,
// Metrics.CounterConcurrentAdds) are in CI's TSan leg.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/attention.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sample/feature_loader.hpp"
#include "serve/server.hpp"
#include "support/env.hpp"

namespace fg = featgraph;
namespace obs = featgraph::obs;
using fg::tensor::Tensor;

namespace {

bool tensors_bit_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Spans of one collect() snapshot matching `name`.
std::vector<obs::SpanRecord> spans_named(const char* name) {
  std::vector<obs::SpanRecord> out;
  for (const obs::SpanRecord& s : obs::collect_spans())
    if (std::strcmp(s.name, name) == 0) out.push_back(s);
  return out;
}

/// FEATGRAPH_TRACE forces process-wide tracing on, which inverts every
/// "disabled" expectation below — these suites are meant for plain runs.
bool env_trace_forced() { return std::getenv("FEATGRAPH_TRACE") != nullptr; }

}  // namespace

// --- tracing ---------------------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  if (env_trace_forced()) GTEST_SKIP() << "FEATGRAPH_TRACE forces tracing on";
  obs::reset_trace_buffers();
  {
    FG_TRACE_SCOPE("trace_test.disabled", obs::arg("k", 1));
    obs::TraceScope named("trace_test.disabled_named");
    EXPECT_FALSE(named.active());
    named.arg("ignored", 2.0);  // must be a no-op, not a crash
  }
  EXPECT_TRUE(spans_named("trace_test.disabled").empty());
  EXPECT_TRUE(spans_named("trace_test.disabled_named").empty());
}

TEST(Trace, SpanNestingDepthsAndContainment) {
  obs::TraceSession session;
  {
    FG_TRACE_SCOPE("trace_test.outer");
    {
      FG_TRACE_SCOPE("trace_test.mid");
      { FG_TRACE_SCOPE("trace_test.inner"); }
    }
  }
  const auto outer = spans_named("trace_test.outer");
  const auto mid = spans_named("trace_test.mid");
  const auto inner = spans_named("trace_test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(mid.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].depth, 0);
  EXPECT_EQ(mid[0].depth, 1);
  EXPECT_EQ(inner[0].depth, 2);
  // Children are contained in their parent's [t0, t1] window.
  EXPECT_GE(mid[0].t0_ns, outer[0].t0_ns);
  EXPECT_LE(mid[0].t1_ns, outer[0].t1_ns);
  EXPECT_GE(inner[0].t0_ns, mid[0].t0_ns);
  EXPECT_LE(inner[0].t1_ns, mid[0].t1_ns);
  // Same thread throughout.
  EXPECT_EQ(outer[0].tid, inner[0].tid);
}

TEST(Trace, ArgsRecordedAllKinds) {
  obs::TraceSession session;
  {
    obs::TraceScope ts("trace_test.args");
    ASSERT_TRUE(ts.active());
    ts.arg("rows", std::int64_t{123}).arg("ratio", 0.5).arg("isa", "avx2");
  }
  const auto spans = spans_named("trace_test.args");
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].num_args, 3);
  EXPECT_STREQ(spans[0].args[0].key, "rows");
  EXPECT_EQ(spans[0].args[0].i64, 123);
  EXPECT_STREQ(spans[0].args[1].key, "ratio");
  EXPECT_DOUBLE_EQ(spans[0].args[1].f64, 0.5);
  EXPECT_STREQ(spans[0].args[2].key, "isa");
  EXPECT_STREQ(spans[0].args[2].str, "avx2");
}

TEST(Trace, ThreadStitching) {
  obs::TraceSession session;
  constexpr int kThreads = 3;
  constexpr int kSpansPerThread = 5;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i)
        FG_TRACE_SCOPE("trace_test.stitch");
    });
  for (auto& th : threads) th.join();
  const auto spans = spans_named("trace_test.stitch");
  ASSERT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  // Each emitting thread has its own tid, and within a tid the snapshot is
  // chronological (buffer order).
  std::vector<int> tids;
  for (const auto& s : spans)
    if (std::find(tids.begin(), tids.end(), s.tid) == tids.end())
      tids.push_back(s.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  for (const int tid : tids) {
    std::int64_t prev = -1;
    int count = 0;
    for (const auto& s : spans)
      if (s.tid == tid) {
        EXPECT_GE(s.t0_ns, prev);
        prev = s.t0_ns;
        ++count;
      }
    EXPECT_EQ(count, kSpansPerThread);
  }
}

TEST(Trace, BufferCapacityDropsInsteadOfWrapping) {
  obs::set_trace_buffer_capacity_for_test(4);
  obs::TraceSession session;
  const std::int64_t dropped_before = obs::trace_dropped_spans();
  // A fresh thread gets a fresh (4-span) buffer; the write-once contract
  // drops overflow rather than overwriting published slots.
  std::thread([] {
    for (int i = 0; i < 10; ++i) FG_TRACE_SCOPE("trace_test.drop");
  }).join();
  EXPECT_EQ(spans_named("trace_test.drop").size(), 4u);
  EXPECT_EQ(obs::trace_dropped_spans() - dropped_before, 6);
  obs::set_trace_buffer_capacity_for_test(0);  // restore default
}

TEST(Trace, ChromeJsonWellFormed) {
  obs::TraceSession session;
  {
    FG_TRACE_SCOPE("trace_test.json", obs::arg("n", 7),
                   obs::arg("label", "x\"y"));
  }
  const std::string json = session.json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"trace_test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 7"), std::string::npos);
  EXPECT_NE(json.find("x\\\"y"), std::string::npos);  // escaped quote
  // Balanced braces (cheap structural sanity; Chrome/Perfetto parse it).
  std::int64_t depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, SessionWritesFile) {
  const std::string path = ::testing::TempDir() + "fg_trace_test.json";
  {
    obs::TraceSession session(path);
    FG_TRACE_SCOPE("trace_test.file");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("trace_test.file"), std::string::npos);
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
}

TEST(Trace, ConcurrentEmissionAndSnapshotIsRaceFree) {
  // Small per-thread buffers (fresh threads pick up the test capacity) keep
  // the TSan-instrumented snapshot copies cheap; the race surface is the
  // same regardless of capacity.
  obs::set_trace_buffer_capacity_for_test(256);
  obs::TraceSession session;
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 3; ++t)
    emitters.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed))
        FG_TRACE_SCOPE("trace_test.race");
    });
  // Snapshot while spans are being emitted: every span visible in a
  // snapshot must be fully written (write-once slots published by a
  // release store). TSan validates the absence of a data race; the
  // assertions validate the publication invariant.
  for (int i = 0; i < 20; ++i) {
    for (const obs::SpanRecord& s : obs::collect_spans()) {
      ASSERT_NE(s.name, nullptr);
      ASSERT_GE(s.t1_ns, s.t0_ns);
    }
  }
  stop.store(true);
  for (auto& th : emitters) th.join();
  obs::set_trace_buffer_capacity_for_test(0);
}

// --- metrics ----------------------------------------------------------------

TEST(Metrics, CounterConcurrentAdds) {
  obs::Counter c;
  constexpr int kThreads = 4;
  constexpr int kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kAdds);
}

TEST(Metrics, GaugeSetMaxIsMonotone) {
  obs::Gauge g;
  g.set_max(5);
  g.set_max(3);
  EXPECT_EQ(g.value(), 5);
  g.set_max(9);
  EXPECT_EQ(g.value(), 9);
  g.set(2);  // plain set is not monotone
  EXPECT_EQ(g.value(), 2);
}

TEST(Metrics, HistogramPercentileMatchesServeNearestRank) {
  // Observations that sit exactly on bucket bounds: the histogram's
  // "containing bucket's upper bound" then IS the observed value, so its
  // nearest-rank percentile must reproduce serve::percentile (server.cpp)
  // on the raw values exactly.
  const std::vector<double> bounds = {0.001, 0.002, 0.005, 0.01, 0.02, 0.05};
  obs::Histogram h(bounds);
  std::vector<double> values = {0.001, 0.002, 0.002, 0.005, 0.01,
                                0.01,  0.01,  0.02,  0.05,  0.05};
  for (double v : values) h.observe(v);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.total, static_cast<std::int64_t>(values.size()));
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(snap.percentile(p), fg::serve::percentile(values, p))
        << "p = " << p;
}

TEST(Metrics, HistogramOverflowBucket) {
  obs::Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(100.0);  // above every bound: overflow bucket
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.total, 3);
  // Overflow-bucket ranks report the largest finite bound.
  EXPECT_DOUBLE_EQ(snap.percentile(100.0), 2.0);
}

TEST(Metrics, RegistryStableRefsAndResetKeepsObjects) {
  obs::Counter& a = obs::Registry::global().counter("obs_test.stable.count");
  a.add(41);
  obs::Counter& b = obs::Registry::global().counter("obs_test.stable.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 41);
  obs::Registry::global().reset();
  // reset() zeroes but never invalidates: the old reference still works.
  EXPECT_EQ(a.value(), 0);
  a.add(1);
  EXPECT_EQ(
      obs::Registry::global().counter("obs_test.stable.count").value(), 1);
}

TEST(Metrics, SnapshotSinceDiffsCountersAndHistograms) {
  obs::Counter& c = obs::Registry::global().counter("obs_test.diff.count");
  obs::Counter& idle = obs::Registry::global().counter("obs_test.diff.idle");
  obs::Histogram& h =
      obs::Registry::global().histogram("obs_test.diff.seconds");
  (void)idle;
  c.add(10);
  h.observe(0.001);
  const obs::MetricsSnapshot base = obs::Registry::global().snapshot();
  c.add(5);
  h.observe(0.002);
  h.observe(0.002);
  const obs::MetricsSnapshot diff =
      obs::Registry::global().snapshot().since(base);
  ASSERT_EQ(diff.counters.count("obs_test.diff.count"), 1u);
  EXPECT_EQ(diff.counters.at("obs_test.diff.count"), 5);
  // Zero-delta counters are omitted from the diff.
  EXPECT_EQ(diff.counters.count("obs_test.diff.idle"), 0u);
  ASSERT_EQ(diff.histograms.count("obs_test.diff.seconds"), 1u);
  EXPECT_EQ(diff.histograms.at("obs_test.diff.seconds").total, 2);
}

TEST(Metrics, ProfileReportRenders) {
  obs::Registry::global().counter("obs_test.report.count").add(7);
  obs::Registry::global().gauge("obs_test.report.depth").set(3);
  obs::Registry::global().histogram("obs_test.report.seconds").observe(0.002);
  const std::string report =
      obs::render_profile_report(obs::Registry::global().snapshot());
  EXPECT_NE(report.find("profile report"), std::string::npos);
  EXPECT_NE(report.find("obs_test.report.count"), std::string::npos);
  EXPECT_NE(report.find("obs_test.report.depth"), std::string::npos);
  EXPECT_NE(report.find("obs_test.report.seconds"), std::string::npos);
  EXPECT_NE(report.find("p99"), std::string::npos);
}

TEST(Metrics, KernelLaunchCountersTick) {
  const auto coo = fg::graph::gen_rmat(200, 4.0, 17);
  const auto csr = fg::graph::coo_to_in_csr(coo);
  const Tensor x = Tensor::randn({csr.num_cols, 8}, 18);
  const fg::core::SpmmOperands ops{&x, nullptr, nullptr};
  const obs::MetricsSnapshot base = obs::Registry::global().snapshot();
  (void)fg::core::spmm(csr, "copy_u", "sum", fg::core::CpuSpmmSchedule{}, ops);
  const obs::MetricsSnapshot diff =
      obs::Registry::global().snapshot().since(base);
  ASSERT_EQ(diff.counters.count("spmm.launch.count"), 1u);
  EXPECT_GE(diff.counters.at("spmm.launch.count"), 1);
  ASSERT_EQ(diff.counters.count("spmm.nnz.swept"), 1u);
  EXPECT_EQ(diff.counters.at("spmm.nnz.swept"), csr.nnz());
}

// --- differential: tracing changes zero output bytes ------------------------

TEST(ObsDifferential, TracingChangesNoOutputBytesPerIsa) {
  const auto coo = fg::graph::gen_rmat(400, 8.0, 33);
  const auto csr = fg::graph::coo_to_in_csr(coo);
  const std::int64_t d = 19;
  const Tensor x = Tensor::randn({csr.num_cols, d}, 34);
  const Tensor e = Tensor::randn({csr.nnz(), d}, 35);
  const fg::core::SpmmOperands spmm_ops{&x, &e, nullptr};
  fg::core::SddmmOperands sddmm_ops;
  sddmm_ops.src_feat = &x;
  const Tensor xk = Tensor::randn({csr.num_rows, d}, 36);
  sddmm_ops.dst_feat = &xk;
  fg::core::AttentionOperands att_ops;
  att_ops.src_feat = &x;
  std::vector<fg::graph::vid_t> gather_ids;
  for (fg::graph::vid_t v = 0; v < csr.num_cols; v += 3)
    gather_ids.push_back(v);

  for (const fg::simd::Isa isa : fg::simd::supported_isas()) {
    fg::simd::ScopedIsa pin(isa);
    const Tensor spmm_off = fg::core::spmm(csr, "u_mul_e", "sum",
                                           fg::core::CpuSpmmSchedule{},
                                           spmm_ops);
    const Tensor sddmm_off = fg::core::sddmm(coo, "dot",
                                             fg::core::CpuSddmmSchedule{},
                                             sddmm_ops);
    const auto att_off = fg::core::attention(
        csr, "copy_u", fg::core::CpuSpmmSchedule{}, att_ops);
    const Tensor gather_off = fg::sample::gather_rows(x, gather_ids, 1);
    {
      obs::TraceSession session;
      const Tensor spmm_on = fg::core::spmm(csr, "u_mul_e", "sum",
                                            fg::core::CpuSpmmSchedule{},
                                            spmm_ops);
      const Tensor sddmm_on = fg::core::sddmm(coo, "dot",
                                              fg::core::CpuSddmmSchedule{},
                                              sddmm_ops);
      const auto att_on = fg::core::attention(
          csr, "copy_u", fg::core::CpuSpmmSchedule{}, att_ops);
      const Tensor gather_on = fg::sample::gather_rows(x, gather_ids, 1);
      EXPECT_TRUE(tensors_bit_equal(spmm_off, spmm_on))
          << fg::simd::isa_name(isa);
      EXPECT_TRUE(tensors_bit_equal(sddmm_off, sddmm_on))
          << fg::simd::isa_name(isa);
      EXPECT_TRUE(tensors_bit_equal(att_off.out, att_on.out))
          << fg::simd::isa_name(isa);
      EXPECT_TRUE(tensors_bit_equal(att_off.alpha, att_on.alpha))
          << fg::simd::isa_name(isa);
      EXPECT_TRUE(tensors_bit_equal(gather_off, gather_on))
          << fg::simd::isa_name(isa);
      // And the traced run really did record kernel spans (the contract is
      // "no output change WITH tracing live", not "tracing no-opped").
      EXPECT_FALSE(spans_named("spmm.launch").empty());
    }
  }
}

TEST(ObsDifferential, ServingOutputsIdenticalUnderTracing) {
  const auto coo = fg::graph::gen_rmat(300, 6.0, 55);
  const auto csr = fg::graph::coo_to_in_csr(coo);
  const Tensor feats = Tensor::randn({csr.num_cols, 16}, 56);
  fg::sample::SamplerConfig cfg;
  cfg.fanouts = {4};
  cfg.seed = 57;
  fg::sample::NeighborSampler sampler(csr, cfg);
  auto identity = [](const fg::sample::MinibatchBlocks& blocks,
                     Tensor input_feats) {
    Tensor out({static_cast<std::int64_t>(blocks.output_nodes().size()),
                input_feats.row_size()});
    std::memcpy(out.data(), input_feats.data(),
                static_cast<std::size_t>(out.numel()) * sizeof(float));
    return out;
  };
  const std::vector<fg::serve::Request> requests = {
      {0, {5, 9}}, {1, {9, 2, 7}}, {2, {5, 11}}};

  fg::serve::ServingEngine engine(sampler, feats, identity,
                                  fg::serve::ServeOptions{});
  const auto off = engine.serve_batch(requests);
  std::vector<Tensor> on;
  {
    obs::TraceSession session;
    on = engine.serve_batch(requests);
    // The batch's phase spans are present and nested under serve.batch.
    EXPECT_EQ(spans_named("serve.batch").size(), 1u);
    EXPECT_EQ(spans_named("serve.sample").size(), 1u);
    EXPECT_EQ(spans_named("serve.gather").size(), 1u);
    EXPECT_EQ(spans_named("serve.compute").size(), 1u);
    EXPECT_EQ(spans_named("serve.scatter").size(), 1u);
    const auto batch = spans_named("serve.batch");
    for (const char* child :
         {"serve.sample", "serve.gather", "serve.compute", "serve.scatter"}) {
      const auto c = spans_named(child);
      EXPECT_GE(c[0].t0_ns, batch[0].t0_ns);
      EXPECT_LE(c[0].t1_ns, batch[0].t1_ns);
      EXPECT_EQ(c[0].depth, batch[0].depth + 1);
    }
  }
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t r = 0; r < off.size(); ++r)
    EXPECT_TRUE(tensors_bit_equal(off[r], on[r]));
  // The engine's atomic stats counted both batches.
  EXPECT_EQ(engine.stats().batches, 2);
  EXPECT_EQ(engine.stats().requests, 6);
  EXPECT_EQ(engine.stats().max_batch_requests, 3);
}
