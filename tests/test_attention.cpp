// Differential + property tests for the fused attention engine
// (core/attention.hpp), following the ISA-matrix pattern of
// tests/test_isa_differential.cpp: every builtin msg_op x every supported
// ISA x both load_balance policies x partition counts is checked against
// the composed-op oracle (tests/reference.hpp), with the scalar
// one-partition cell held to BIT-FOR-BIT equality (there the fused kernel
// performs the oracle's exact IEEE operations in its exact order) and the
// flagship copy_u pipeline additionally held bit-for-bit against the
// composed core-op chain (sddmm dot -> core::edge_softmax -> u_mul_e SpMM)
// on EVERY cell — fused vs composed never differ in arithmetic, only in
// launches; the naive-oracle tolerance covers the vector backends' dot
// reassociation and polynomial exp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/attention.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "graph/generators.hpp"
#include "reference.hpp"

namespace fg = featgraph;
using fg::core::AttentionOperands;
using fg::core::AttentionResult;
using fg::core::CpuSddmmSchedule;
using fg::core::CpuSpmmSchedule;
using fg::core::LoadBalance;
using fg::graph::Coo;
using fg::graph::Csr;
using fg::simd::Isa;
using fg::tensor::Tensor;

namespace {

// d = 19: not a multiple of 8 or 16, so every backend's tail path runs on
// every edge visit; d = 5 joins below for the d < vector-width regime.
constexpr std::int64_t kDim = 19;
constexpr std::int64_t kMlpD1 = 6;

struct Fixture {
  Coo coo;
  Csr in_csr;
  Tensor x;       // vertex features (messages AND dot logits), n x kDim
  Tensor xsmall;  // mlp input, n x kMlpD1
  Tensor w;       // mlp weight, kMlpD1 x kDim
  Tensor e_vec;   // vector edge features, nnz x kDim
  Tensor e_scal;  // scalar edge features, nnz
  Tensor logits;  // precomputed edge logits, nnz

  Fixture()
      : coo(fg::graph::gen_rmat(400, 7.0, 171)),
        in_csr(fg::graph::coo_to_in_csr(coo)),
        x(Tensor::randn({in_csr.num_cols, kDim}, 172)),
        xsmall(Tensor::randn({in_csr.num_cols, kMlpD1}, 173)),
        w(Tensor::randn({kMlpD1, kDim}, 174)),
        e_vec(Tensor::randn({in_csr.nnz(), kDim}, 175)),
        e_scal(Tensor::randn({in_csr.nnz()}, 176)),
        logits(Tensor::randn({in_csr.nnz()}, 177)) {}

  static const Fixture& get() {
    static const Fixture f;
    return f;
  }
};

bool bit_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

/// |got - ref| <= abs + rel * |ref|, elementwise (relative form absorbs the
/// large-magnitude u_div_v messages).
void expect_close(const Tensor& got, const Tensor& ref, float rel, float abs,
                  const std::string& what) {
  ASSERT_EQ(got.numel(), ref.numel()) << what;
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const float g = got.at(i), r = ref.at(i);
    ASSERT_LE(std::fabs(g - r), abs + rel * std::fabs(r))
        << what << " at flat index " << i << ": got " << g << " want " << r;
  }
}

AttentionOperands operands_for(const std::string& op, const Fixture& f,
                               bool scalar_edge) {
  AttentionOperands ops;
  ops.logit_scale = 0.25f;  // exercised on every cell
  if (op == "mlp") {
    ops.src_feat = &f.xsmall;
    ops.weight = &f.w;
    ops.query = &f.x;  // logits from the wide features either way
    return ops;
  }
  ops.src_feat = &f.x;
  if (op == "copy_e" || op == "u_add_e" || op == "u_mul_e") {
    ops.edge_feat = scalar_edge ? &f.e_scal : &f.e_vec;
  }
  return ops;
}

fg::testing::RefMsgFn ref_msg_for(const std::string& op, const Fixture& f,
                                  bool scalar_edge) {
  return [&, op, scalar_edge](fg::graph::vid_t u, fg::graph::eid_t e,
                              fg::graph::vid_t v, std::vector<float>& msg) {
    if (op == "mlp") {
      for (std::int64_t j = 0; j < kDim; ++j) {
        float acc = 0.0f;
        for (std::int64_t k = 0; k < kMlpD1; ++k)
          acc += (f.xsmall.at(u, k) + f.xsmall.at(v, k)) * f.w.at(k, j);
        msg[static_cast<std::size_t>(j)] = acc > 0.0f ? acc : 0.0f;
      }
      return;
    }
    for (std::int64_t j = 0; j < kDim; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const float xu = f.x.at(u, j);
      if (op == "copy_u") {
        msg[ju] = xu;
      } else if (op == "copy_e") {
        msg[ju] = scalar_edge ? f.e_scal.at(e) : f.e_vec.at(e, j);
      } else if (op == "u_add_v") {
        msg[ju] = xu + f.x.at(v, j);
      } else if (op == "u_sub_v") {
        msg[ju] = xu - f.x.at(v, j);
      } else if (op == "u_mul_v") {
        msg[ju] = xu * f.x.at(v, j);
      } else if (op == "u_div_v") {
        msg[ju] = xu / f.x.at(v, j);
      } else if (op == "u_add_e") {
        msg[ju] = xu + (scalar_edge ? f.e_scal.at(e) : f.e_vec.at(e, j));
      } else {  // u_mul_e
        msg[ju] = xu * (scalar_edge ? f.e_scal.at(e) : f.e_vec.at(e, j));
      }
    }
  };
}

/// Naive sequential dot logit matching the fused kernel's math (exactly, on
/// the scalar backend; within dot/exp tolerance on vector backends).
fg::testing::RefLogitFn ref_dot_logit(const Tensor& q, float scale) {
  return [&q, scale](fg::graph::vid_t u, fg::graph::eid_t,
                     fg::graph::vid_t v) {
    float acc = 0.0f;
    for (std::int64_t k = 0; k < q.row_size(); ++k)
      acc += q.at(u, k) * q.at(v, k);
    return acc * scale;
  };
}

}  // namespace

TEST(Attention, FusedMatchesOracleOnEveryMsgOpIsaBalancePartitionCell) {
  const Fixture& f = Fixture::get();
  const auto isas = fg::simd::supported_isas();
  ASSERT_GE(isas.size(), 1u);
  // u_op_e runs twice: once with broadcast scalar edge features (the
  // waxpy_binop_scalar path) and once with full vector edge features (the
  // waxpy_binop path).
  struct Case {
    const char* op;
    bool scalar_edge;
  };
  const Case cases[] = {{"copy_u", false},  {"copy_e", false},
                        {"u_add_v", false}, {"u_sub_v", false},
                        {"u_mul_v", false}, {"u_div_v", false},
                        {"u_add_e", true},  {"u_add_e", false},
                        {"u_mul_e", true},  {"u_mul_e", false},
                        {"mlp", false}};
  for (const Case c : cases) {
    const char* op = c.op;
    const bool scalar_edge = c.scalar_edge;
    const AttentionOperands operands = operands_for(op, f, scalar_edge);
    // The dot logits always come from the wide features (operands_for sets
    // query = &f.x for mlp; the rest default query to src_feat = &f.x).
    Tensor ref_alpha;
    const Tensor oracle = fg::testing::reference_attention(
        f.in_csr, ref_msg_for(op, f, scalar_edge),
        ref_dot_logit(f.x, operands.logit_scale), kDim, &ref_alpha);
    for (const Isa isa : isas) {
      fg::simd::ScopedIsa pin(isa);
      for (const LoadBalance lb :
           {LoadBalance::kStaticRows, LoadBalance::kNnzBalanced}) {
        for (const int parts : {1, 4}) {
          CpuSpmmSchedule sched;
          sched.num_threads = 3;
          sched.load_balance = lb;
          sched.num_partitions = parts;
          const AttentionResult got =
              fg::core::attention(f.in_csr, op, sched, operands);
          const std::string cell = std::string(op) +
                                   (scalar_edge ? "(e-scalar)" : "") +
                                   " isa=" + fg::simd::isa_name(isa) +
                                   " lb=" + std::to_string(static_cast<int>(lb)) +
                                   " parts=" + std::to_string(parts);
          if (isa == Isa::kScalar) {
            // Scalar backend: libm exp, sequential dot — the oracle's exact
            // operations. alpha is bit-for-bit for ANY schedule (the per-row
            // softmax order never changes); the aggregation is bit-for-bit
            // unpartitioned (partitioning reorders per-row edge visits,
            // which reassociates the weighted sum).
            EXPECT_TRUE(bit_equal(got.alpha, ref_alpha)) << cell;
            if (parts == 1) {
              EXPECT_TRUE(bit_equal(got.out, oracle)) << cell;
            } else {
              expect_close(got.out, oracle, 1e-4f, 1e-4f, cell);
            }
          } else {
            // Vector backends: dot reassociates (FMA) and exp is the ~2 ulp
            // polynomial — tolerance, matching the simd.hpp contract.
            expect_close(got.alpha, ref_alpha, 1e-4f, 1e-6f, cell + " alpha");
            expect_close(got.out, oracle, 1e-4f, 1e-4f, cell);
          }
        }
      }
    }
  }
}

TEST(Attention, FusedCopyUIsBitForBitWithComposedCoreOpsOnEveryCell) {
  // The acceptance property, stronger than the <= 1e-6 relative bound: the
  // fused kernel and the composed chain it replaces (SDDMM dot logits ->
  // fused segment softmax -> u_mul_e SpMM) perform identical arithmetic on
  // every ISA / load-balance / partition cell — the fusion moves launches,
  // never operations.
  const Fixture& f = Fixture::get();
  const float s = 0.25f;
  AttentionOperands operands;
  operands.src_feat = &f.x;
  operands.logit_scale = s;
  for (const Isa isa : fg::simd::supported_isas()) {
    fg::simd::ScopedIsa pin(isa);
    // Composed chain at the same ISA.
    CpuSddmmSchedule sddmm_sched;
    sddmm_sched.num_threads = 3;
    Tensor logits =
        fg::core::sddmm(f.coo, "dot", sddmm_sched, {&f.x, nullptr});
    for (std::int64_t e = 0; e < logits.numel(); ++e) logits.at(e) *= s;
    const Tensor alpha = fg::core::edge_softmax(f.in_csr, logits, 3);
    for (const LoadBalance lb :
         {LoadBalance::kStaticRows, LoadBalance::kNnzBalanced}) {
      for (const int parts : {1, 4}) {
        CpuSpmmSchedule sched;
        sched.num_threads = 3;
        sched.load_balance = lb;
        sched.num_partitions = parts;
        const Tensor composed = fg::core::spmm(f.in_csr, "u_mul_e", "sum",
                                               sched, {&f.x, &alpha, nullptr});
        const AttentionResult fused =
            fg::core::attention(f.in_csr, "copy_u", sched, operands);
        const std::string cell = std::string("isa=") +
                                 fg::simd::isa_name(isa) +
                                 " lb=" + std::to_string(static_cast<int>(lb)) +
                                 " parts=" + std::to_string(parts);
        EXPECT_TRUE(bit_equal(fused.alpha, alpha)) << cell << " alpha";
        EXPECT_TRUE(bit_equal(fused.out, composed)) << cell << " out";
      }
    }
  }
}

TEST(Attention, PrecomputedEdgeLogitsMatchOracle) {
  const Fixture& f = Fixture::get();
  AttentionOperands operands;
  operands.src_feat = &f.x;
  operands.edge_logits = &f.logits;
  operands.logit_scale = 1.5f;
  const Tensor oracle = fg::testing::reference_attention(
      f.in_csr, ref_msg_for("copy_u", f, false),
      [&](fg::graph::vid_t, fg::graph::eid_t e, fg::graph::vid_t) {
        return f.logits.at(e) * 1.5f;
      },
      kDim);
  for (const Isa isa : fg::simd::supported_isas()) {
    fg::simd::ScopedIsa pin(isa);
    const AttentionResult got =
        fg::core::attention(f.in_csr, "copy_u", {}, operands);
    if (isa == Isa::kScalar) {
      EXPECT_TRUE(bit_equal(got.out, oracle));
    } else {
      expect_close(got.out, oracle, 1e-4f, 1e-5f, fg::simd::isa_name(isa));
    }
  }
}

TEST(Attention, EdgeCaseRowsEmptySingleEdgeIsolatedAndHub) {
  // Handcrafted topology: row 1 is a 4-edge hub, row 2 has exactly one
  // in-edge, row 4 has two, rows 0/3 have out-edges only (empty rows), and
  // vertices 5/6 are fully isolated.
  Coo coo;
  coo.num_src = coo.num_dst = 7;
  coo.src = {0, 2, 3, 4, 1, 0, 1};
  coo.dst = {1, 1, 1, 1, 2, 4, 4};
  const Csr in = fg::graph::coo_to_in_csr(coo);
  const Tensor x = Tensor::randn({7, 11}, 333);  // 11 = another awkward tail
  AttentionOperands operands;
  operands.src_feat = &x;
  const fg::testing::RefMsgFn ref_msg =
      [&](fg::graph::vid_t u, fg::graph::eid_t, fg::graph::vid_t,
          std::vector<float>& msg) {
        for (std::int64_t j = 0; j < 11; ++j)
          msg[static_cast<std::size_t>(j)] = x.at(u, j);
      };
  const Tensor oracle = fg::testing::reference_attention(
      in, ref_msg, ref_dot_logit(x, 1.0f), 11);
  for (const Isa isa : fg::simd::supported_isas()) {
    fg::simd::ScopedIsa pin(isa);
    for (const int parts : {1, 2}) {
      CpuSpmmSchedule sched;
      sched.num_threads = 2;
      sched.num_partitions = parts;
      const AttentionResult got =
          fg::core::attention(in, "copy_u", sched, operands);
      expect_close(got.out, oracle, 1e-4f, 1e-5f, fg::simd::isa_name(isa));
      // Empty rows aggregate to exactly zero.
      for (const fg::graph::vid_t v : {0, 3, 5, 6})
        for (std::int64_t j = 0; j < 11; ++j)
          EXPECT_EQ(got.out.at(v, j), 0.0f) << "row " << v;
      // A single-edge segment's softmax weight is exactly 1.
      EXPECT_EQ(got.alpha.at(4), 1.0f);
      // Every segment's weights sum to 1.
      for (fg::graph::vid_t v = 0; v < in.num_rows; ++v) {
        if (in.degree(v) == 0) continue;
        float sum = 0.0f;
        for (std::int64_t i = in.indptr[v]; i < in.indptr[v + 1]; ++i)
          sum += got.alpha.at(in.edge_ids[static_cast<std::size_t>(i)]);
        EXPECT_NEAR(sum, 1.0f, 1e-5f) << "row " << v;
      }
    }
  }
}

TEST(Attention, ZeroDegreeRowsYieldZerosNeverNaN) {
  // The empty-segment softmax pin: a destination with no in-edges must
  // aggregate to EXACTLY zero on every backend — never NaN from an hmax
  // over an empty segment (-inf row max) or a 0/0 normalization. Exercises
  // both a mixed graph (one nonempty row among empties) and the all-empty
  // graph, where the whole output is the zero fill.
  Coo coo;
  coo.num_src = coo.num_dst = 6;
  coo.src = {0, 2, 4};
  coo.dst = {1, 1, 1};
  const Csr in = fg::graph::coo_to_in_csr(coo);
  Coo empty;
  empty.num_src = empty.num_dst = 6;
  const Csr ein = fg::graph::coo_to_in_csr(empty);
  const Tensor x = Tensor::randn({6, 11}, 555);
  AttentionOperands operands;
  operands.src_feat = &x;
  for (const Isa isa : fg::simd::supported_isas()) {
    fg::simd::ScopedIsa pin(isa);
    const AttentionResult mixed = fg::core::attention(in, "copy_u", {}, operands);
    for (std::int64_t i = 0; i < mixed.out.numel(); ++i)
      ASSERT_FALSE(std::isnan(mixed.out.at(i)))
          << fg::simd::isa_name(isa) << " flat " << i;
    for (const fg::graph::vid_t v : {0, 2, 3, 4, 5})
      for (std::int64_t j = 0; j < 11; ++j)
        EXPECT_EQ(mixed.out.at(v, j), 0.0f)
            << fg::simd::isa_name(isa) << " row " << v;

    const AttentionResult all_empty =
        fg::core::attention(ein, "copy_u", {}, operands);
    EXPECT_EQ(all_empty.alpha.numel(), 0);
    for (std::int64_t i = 0; i < all_empty.out.numel(); ++i) {
      ASSERT_FALSE(std::isnan(all_empty.out.at(i)));
      EXPECT_EQ(all_empty.out.at(i), 0.0f);
    }
    // The standalone fused edge softmax shares the empty-segment contract.
    const Tensor none = Tensor::zeros({0});
    const Tensor alpha = fg::core::edge_softmax(ein, none, 2);
    EXPECT_EQ(alpha.numel(), 0);
  }
}

TEST(Attention, AlphaIsInvariantAcrossEverySchedule) {
  // The softmax never depends on the aggregation schedule: alpha must be
  // bit-for-bit identical across load_balance x partitions x feat_tile (at
  // a fixed ISA — threads only move row ownership, never per-row order).
  const Fixture& f = Fixture::get();
  AttentionOperands operands;
  operands.src_feat = &f.x;
  Tensor first;
  for (const LoadBalance lb :
       {LoadBalance::kStaticRows, LoadBalance::kNnzBalanced}) {
    for (const int parts : {1, 4}) {
      for (const std::int64_t tile : {std::int64_t{0}, std::int64_t{7}}) {
        CpuSpmmSchedule sched;
        sched.num_threads = 3;
        sched.load_balance = lb;
        sched.num_partitions = parts;
        sched.feat_tile = tile;
        const AttentionResult got =
            fg::core::attention(f.in_csr, "copy_u", sched, operands);
        if (!first.defined()) {
          first = got.alpha.clone();
        } else {
          EXPECT_TRUE(bit_equal(got.alpha, first))
              << "lb=" << static_cast<int>(lb) << " parts=" << parts
              << " tile=" << tile;
        }
      }
    }
  }
}

TEST(Attention, FeatTileNeverChangesUnpartitionedResults) {
  // Tiling the aggregation axis re-sweeps the row's edges per tile but runs
  // the identical per-element operations — bit-for-bit at one partition.
  const Fixture& f = Fixture::get();
  AttentionOperands operands;
  operands.src_feat = &f.x;
  CpuSpmmSchedule ref_sched;
  ref_sched.num_threads = 3;
  const AttentionResult ref =
      fg::core::attention(f.in_csr, "copy_u", ref_sched, operands);
  for (const std::int64_t tile : {std::int64_t{5}, std::int64_t{16}}) {
    CpuSpmmSchedule sched = ref_sched;
    sched.feat_tile = tile;
    const AttentionResult got =
        fg::core::attention(f.in_csr, "copy_u", sched, operands);
    EXPECT_TRUE(bit_equal(got.out, ref.out)) << "tile=" << tile;
  }
}

TEST(Attention, SoftmaxInvariantUnderPerRowLogitShifts) {
  // The property the row-max subtraction exists for: adding any constant to
  // a destination's logits leaves its softmax (and the aggregate) unchanged
  // up to rounding.
  const Fixture& f = Fixture::get();
  Tensor shifted = f.logits.clone();
  const Csr& in = f.in_csr;
  for (fg::graph::vid_t v = 0; v < in.num_rows; ++v) {
    const float shift = 10.0f + 0.5f * static_cast<float>(v % 13);
    for (std::int64_t i = in.indptr[v]; i < in.indptr[v + 1]; ++i)
      shifted.at(in.edge_ids[static_cast<std::size_t>(i)]) += shift;
  }
  AttentionOperands base;
  base.src_feat = &f.x;
  base.edge_logits = &f.logits;
  AttentionOperands moved = base;
  moved.edge_logits = &shifted;
  for (const Isa isa : fg::simd::supported_isas()) {
    fg::simd::ScopedIsa pin(isa);
    const AttentionResult a = fg::core::attention(in, "copy_u", {}, base);
    const AttentionResult b = fg::core::attention(in, "copy_u", {}, moved);
    expect_close(b.alpha, a.alpha, 1e-5f, 1e-6f, fg::simd::isa_name(isa));
    expect_close(b.out, a.out, 1e-5f, 1e-5f, fg::simd::isa_name(isa));
  }
}

TEST(Attention, ForwardAgreesAcrossIsaLevelsWithinDocumentedTolerance) {
  // Cross-ISA drift comes from exactly two documented sources: the logits'
  // reassociated FMA dot and the vector backends' polynomial exp (~2 ulp).
  // Everything else (softmax order, weighted accumulates) is pinned, so the
  // GAT-style forward agrees across scalar/avx2/avx512 to tight tolerance.
  const Fixture& f = Fixture::get();
  AttentionOperands operands;
  operands.src_feat = &f.x;
  operands.logit_scale =
      1.0f / std::sqrt(static_cast<float>(kDim));
  Tensor ref_out, ref_alpha;
  {
    fg::simd::ScopedIsa pin(Isa::kScalar);
    AttentionResult r = fg::core::attention(f.in_csr, "copy_u", {}, operands);
    ref_out = std::move(r.out);
    ref_alpha = std::move(r.alpha);
  }
  for (const Isa isa : fg::simd::supported_isas()) {
    if (isa == Isa::kScalar) continue;
    fg::simd::ScopedIsa pin(isa);
    const AttentionResult got =
        fg::core::attention(f.in_csr, "copy_u", {}, operands);
    expect_close(got.alpha, ref_alpha, 1e-5f, 1e-7f, fg::simd::isa_name(isa));
    expect_close(got.out, ref_out, 1e-5f, 1e-6f, fg::simd::isa_name(isa));
  }
}

TEST(Attention, UniformLogitsReduceToMeanAggregation) {
  // With equal logits per row, alpha = 1/deg — attention degenerates to the
  // mean-reduced SpMM.
  const Fixture& f = Fixture::get();
  const Tensor zeros = Tensor::zeros({f.in_csr.nnz()});
  AttentionOperands operands;
  operands.src_feat = &f.x;
  operands.edge_logits = &zeros;
  const AttentionResult got =
      fg::core::attention(f.in_csr, "copy_u", {}, operands);
  const Tensor mean = fg::core::spmm(f.in_csr, "copy_u", "mean", {},
                                     {&f.x, nullptr, nullptr});
  expect_close(got.out, mean, 1e-5f, 1e-5f, "uniform-logit mean");
}

TEST(Attention, EdgeSoftmaxRoundTripsThroughBackward) {
  // d(sum alpha)/dlogit = 0 per segment: feeding ones as upstream gradient
  // must produce an (analytically) zero logit gradient.
  const Fixture& f = Fixture::get();
  const Tensor alpha = fg::core::edge_softmax(f.in_csr, f.logits, 3);
  Tensor ones = Tensor::full({f.in_csr.nnz()}, 1.0f);
  const Tensor dl =
      fg::core::edge_softmax_backward(f.in_csr, alpha, ones, 3);
  for (std::int64_t e = 0; e < dl.numel(); ++e)
    EXPECT_NEAR(dl.at(e), 0.0f, 1e-6f) << "edge " << e;
}
