// Pipelined serving-loop behavior (ISSUE 5): batch ordering and coverage,
// bounded-queue capacity, producer/consumer overlap vs serial equivalence
// (the "same seed => same blocks at 1 vs N pipeline threads" determinism
// pin), and the shape-class schedule cache's hit-rate contract.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/schedule_ir.hpp"

#include "graph/generators.hpp"
#include "minidgl/train.hpp"
#include "parallel/thread_pool.hpp"
#include "sample/feature_loader.hpp"
#include "sample/neighbor_sampler.hpp"
#include "sample/pipeline.hpp"

namespace fg = featgraph;
using fg::graph::Csr;
using fg::graph::vid_t;
using fg::sample::BlockScheduleCache;
using fg::sample::NeighborSampler;
using fg::sample::PipelineOptions;
using fg::sample::PreparedBatch;
using fg::tensor::Tensor;

namespace {

Csr rmat_csr(vid_t n, double avg_degree, std::uint64_t seed) {
  return fg::graph::coo_to_in_csr(fg::graph::gen_rmat(n, avg_degree, seed));
}

std::vector<vid_t> all_vertices(const Csr& csr) {
  std::vector<vid_t> v(static_cast<std::size_t>(csr.num_rows));
  for (vid_t i = 0; i < csr.num_rows; ++i)
    v[static_cast<std::size_t>(i)] = i;
  return v;
}

/// Everything a consumer observes from one batch, for run-vs-run equality.
struct SeenBatch {
  std::int64_t index;
  std::vector<vid_t> seeds;
  std::vector<vid_t> input_nodes;
  std::vector<std::int64_t> indptr0;
  std::vector<vid_t> indices0;
  std::vector<float> feats;

  bool operator==(const SeenBatch& o) const {
    return index == o.index && seeds == o.seeds &&
           input_nodes == o.input_nodes && indptr0 == o.indptr0 &&
           indices0 == o.indices0 && feats == o.feats;
  }
};

std::vector<SeenBatch> drive(const NeighborSampler& sampler,
                             const Tensor& features,
                             const std::vector<vid_t>& seeds,
                             const PipelineOptions& opts,
                             fg::sample::PipelineStats* stats_out = nullptr) {
  std::vector<SeenBatch> seen;
  const auto stats = fg::sample::run_pipeline(
      sampler, features, seeds, opts, [&](PreparedBatch& b) {
        SeenBatch s;
        s.index = b.index;
        s.seeds = b.seeds;
        s.input_nodes = b.blocks.input_nodes();
        s.indptr0 = b.blocks.blocks[0].adj.indptr;
        s.indices0 = b.blocks.blocks[0].adj.indices;
        s.feats.assign(b.input_feats.data(),
                       b.input_feats.data() + b.input_feats.numel());
        seen.push_back(std::move(s));
      });
  if (stats_out != nullptr) *stats_out = stats;
  return seen;
}

}  // namespace

TEST(Pipeline, ProcessesAllBatchesInOrderAndCoversAllSeeds) {
  const Csr csr = rmat_csr(512, 8.0, 2);
  const Tensor x = Tensor::randn({csr.num_cols, 8}, 5);
  NeighborSampler sampler(csr, {{4, 4}, false, 11});
  const auto seeds = all_vertices(csr);
  for (const bool pipelined : {false, true}) {
    PipelineOptions opts;
    opts.batch_size = 100;  // 512 seeds -> 6 batches, last partial
    opts.pipelined = pipelined;
    fg::sample::PipelineStats stats;
    const auto seen = drive(sampler, x, seeds, opts, &stats);
    ASSERT_EQ(seen.size(), 6u);
    EXPECT_EQ(stats.batches, 6);
    std::vector<vid_t> covered;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].index, static_cast<std::int64_t>(i));  // in order
      covered.insert(covered.end(), seen[i].seeds.begin(),
                     seen[i].seeds.end());
    }
    EXPECT_EQ(covered, seeds);  // exact coverage, original order
    EXPECT_EQ(seen.back().seeds.size(), 12u);  // 512 - 5 * 100
  }
}

TEST(Pipeline, DeterministicAcrossPipelineThreads) {
  // Same sampler seed => identical sampled blocks and gathered features
  // whether the loop runs serially (one thread) or overlapped (producer +
  // consumer lanes) — the satellite's 1-vs-N determinism pin.
  const Csr csr = rmat_csr(1024, 10.0, 7);
  const Tensor x = Tensor::randn({csr.num_cols, 12}, 9);
  NeighborSampler sampler(csr, {{3, 5}, false, 123});
  const auto seeds = all_vertices(csr);
  PipelineOptions serial;
  serial.batch_size = 128;
  serial.pipelined = false;
  PipelineOptions overlapped = serial;
  overlapped.pipelined = true;
  overlapped.queue_capacity = 3;
  fg::sample::PipelineStats stats;
  const auto a = drive(sampler, x, seeds, serial);
  const auto b = drive(sampler, x, seeds, overlapped, &stats);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(a[i] == b[i]) << "batch " << i;
  // And the second run genuinely took the 2-lane path — unless the host
  // cannot overlap at all (1 hardware context), where run_pipeline must
  // degrade to the serial loop up front and report it honestly.
  if (fg::sample::pipeline_can_overlap(
          std::thread::hardware_concurrency(),
          fg::parallel::ThreadPool::global().num_workers())) {
    EXPECT_TRUE(stats.overlapped);
  } else {
    EXPECT_FALSE(stats.overlapped);
  }
}

TEST(Pipeline, BoundedQueueRespectsCapacity) {
  const Csr csr = rmat_csr(512, 8.0, 4);
  const Tensor x = Tensor::randn({csr.num_cols, 4}, 1);
  NeighborSampler sampler(csr, {{2}, false, 5});
  const auto seeds = all_vertices(csr);
  for (const int capacity : {1, 2}) {
    PipelineOptions opts;
    opts.batch_size = 32;  // 16 batches
    opts.queue_capacity = capacity;
    fg::sample::PipelineStats stats;
    drive(sampler, x, seeds, opts, &stats);
    EXPECT_LE(stats.max_queue_depth, capacity);
    if (fg::sample::pipeline_can_overlap(
            std::thread::hardware_concurrency(),
            fg::parallel::ThreadPool::global().num_workers())) {
      EXPECT_GE(stats.max_queue_depth, 1);
    } else {
      // Serial up-front degrade: the queue is never touched.
      EXPECT_EQ(stats.max_queue_depth, 0);
    }
  }
}

TEST(Pipeline, OverlapPredicateRequiresTwoContextsAndAWorker) {
  // The 1-core regression pin (BENCH_kernels.json serving section: pipelined
  // 0.249s vs serial 0.220s on hardware_concurrency == 1): with a single
  // hardware context the lanes time-slice one core, so run_pipeline must
  // degrade to serial before paying for the queue handoff.
  EXPECT_FALSE(fg::sample::pipeline_can_overlap(1, 1));
  EXPECT_FALSE(fg::sample::pipeline_can_overlap(1, 8));
  EXPECT_FALSE(fg::sample::pipeline_can_overlap(2, 0));
  EXPECT_TRUE(fg::sample::pipeline_can_overlap(2, 1));
  EXPECT_TRUE(fg::sample::pipeline_can_overlap(8, 7));

  // On THIS host the pipelined option must never lose to serial by design:
  // when the predicate is false the pipelined run IS the serial loop.
  const Csr csr = rmat_csr(256, 6.0, 3);
  const Tensor x = Tensor::randn({csr.num_cols, 4}, 6);
  NeighborSampler sampler(csr, {{2}, false, 5});
  const auto seeds = all_vertices(csr);
  PipelineOptions opts;
  opts.batch_size = 64;
  opts.pipelined = true;
  fg::sample::PipelineStats stats;
  drive(sampler, x, seeds, opts, &stats);
  if (!fg::sample::pipeline_can_overlap(
          std::thread::hardware_concurrency(),
          fg::parallel::ThreadPool::global().num_workers())) {
    EXPECT_FALSE(stats.overlapped);
    EXPECT_EQ(stats.max_queue_depth, 0);
  }
}

TEST(Pipeline, SerialFallbackInsideAnActiveLaunch) {
  // run_pipeline from inside a pool launch must not deadlock: the lanes
  // would run inline/sequentially there, so the loop detects the busy pool
  // and serves serially.
  const Csr csr = rmat_csr(256, 6.0, 8);
  const Tensor x = Tensor::randn({csr.num_cols, 4}, 2);
  NeighborSampler sampler(csr, {{2}, false, 5});
  const auto seeds = all_vertices(csr);
  fg::parallel::ThreadPool::global().launch(2, [&](int tid, int) {
    if (tid != 0) return;
    PipelineOptions opts;
    opts.batch_size = 64;
    opts.queue_capacity = 1;  // would deadlock if the lanes serialized
    opts.pipelined = true;
    fg::sample::PipelineStats stats;
    const auto seen = drive(sampler, x, seeds, opts, &stats);
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_FALSE(stats.overlapped);
  });
}

TEST(Pipeline, BlockScheduleCacheKeysOnShapeClass) {
  BlockScheduleCache cache;
  int tunes = 0;
  const auto tune = [&] {
    ++tunes;
    fg::core::CpuSpmmSchedule s;
    s.feat_tile = 32;
    return s;
  };
  // Same log2 buckets -> one tune, then hits. Program hash 0 = no IR.
  EXPECT_EQ(cache.schedule_for(1000, 8000, 64, 2, 0, tune).feat_tile, 32);
  EXPECT_EQ(cache.schedule_for(1023, 8191, 64, 2, 0, tune).feat_tile, 32);
  EXPECT_EQ(cache.schedule_for(513, 4100, 64, 2, 0, tune).feat_tile, 32);
  EXPECT_EQ(tunes, 1);
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
  // A different feature width or thread count is a new class.
  cache.schedule_for(1000, 8000, 32, 2, 0, tune);
  cache.schedule_for(1000, 8000, 64, 4, 0, tune);
  EXPECT_EQ(tunes, 3);
  // A different size magnitude is a new class.
  cache.schedule_for(100, 400, 64, 2, 0, tune);
  EXPECT_EQ(tunes, 4);
}

TEST(Pipeline, ScheduleCacheSeparatesProgramsWithinOneShapeClass) {
  // Two different Schedule-IR programs over the SAME (rows, nnz, width,
  // threads) class must not alias: the program hash is part of the key.
  BlockScheduleCache cache;
  int tunes = 0;
  const auto tune = [&] {
    ++tunes;
    return fg::core::CpuSpmmSchedule{};
  };
  fg::core::CpuSpmmSchedule flat;  // empty program
  fg::core::CpuSpmmSchedule blocked;
  blocked.ir = std::make_shared<const fg::core::ScheduleIr>(
      fg::core::ScheduleIr().tile(16).unroll(4));
  const std::uint64_t h_flat = fg::core::schedule_program_hash(flat);
  const std::uint64_t h_blocked = fg::core::schedule_program_hash(blocked);
  ASSERT_NE(h_flat, h_blocked);

  cache.schedule_for(1000, 8000, 64, 2, h_flat, tune);
  cache.schedule_for(1000, 8000, 64, 2, h_blocked, tune);
  EXPECT_EQ(tunes, 2);  // one geometric class, two programs -> two misses
  EXPECT_EQ(cache.misses(), 2);
  // Each program then hits its own entry.
  cache.schedule_for(1010, 8100, 64, 2, h_flat, tune);
  cache.schedule_for(1010, 8100, 64, 2, h_blocked, tune);
  EXPECT_EQ(tunes, 2);
  EXPECT_EQ(cache.hits(), 2);
}

TEST(Pipeline, ConcurrentTunersKeepFirstScheduleAndOneMiss) {
  // The lost-race pin (ISSUE 7): N threads miss the same fresh class at
  // once and tune DIFFERENT schedules. The first inserter must win — every
  // caller gets the same schedule back (no overwrite of a schedule already
  // handed out) and the class counts exactly one miss, not N.
  for (int round = 0; round < 20; ++round) {
    BlockScheduleCache cache;
    constexpr int kThreads = 8;
    std::vector<fg::core::CpuSpmmSchedule> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &got, t] {
        got[static_cast<std::size_t>(t)] =
            cache.schedule_for(1000, 8000, 64, 2, 0, [t] {
              fg::core::CpuSpmmSchedule s;
              s.feat_tile = 8 << t;  // every racer tunes a distinct result
              return s;
            });
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(cache.misses(), 1) << "round " << round;
    EXPECT_EQ(cache.hits() + cache.misses(), kThreads) << "round " << round;
    for (int t = 1; t < kThreads; ++t)
      EXPECT_EQ(got[static_cast<std::size_t>(t)].feat_tile, got[0].feat_tile)
          << "round " << round << ": racer " << t
          << " saw a different schedule than the first inserter's";
    // The winner's schedule stays: a later lookup still returns it.
    EXPECT_EQ(cache.schedule_for(1000, 8000, 64, 2, 0,
                                 [] { return fg::core::CpuSpmmSchedule{}; })
                  .feat_tile,
              got[0].feat_tile);
  }
}

TEST(Pipeline, ScheduleCacheKeyCollisionRegressions) {
  // Key-aliasing pins (ISSUE 7). Zero gets its own log2 bucket: an empty
  // block (0 rows / 0 nnz) must not share a class with a 1-row/1-nnz block.
  BlockScheduleCache cache;
  int tunes = 0;
  const auto tune = [&] {
    ++tunes;
    return fg::core::CpuSpmmSchedule{};
  };
  cache.schedule_for(0, 0, 64, 2, 0, tune);
  cache.schedule_for(1, 1, 64, 2, 0, tune);
  EXPECT_EQ(tunes, 2) << "rows/nnz 0 aliased with 1";

  // Full-width field mixing: a feat_width past 2^32 must not clobber the
  // other packed key fields and collide with a small width.
  cache.schedule_for(1000, 8000, (1ll << 32) + 64, 2, 0, tune);
  cache.schedule_for(1000, 8000, 64, 2, 0, tune);
  EXPECT_EQ(tunes, 4) << "feat_width 2^32+64 aliased with 64";
  EXPECT_EQ(cache.misses(), 4);
}

TEST(Pipeline, ScheduleCacheHitsDominateAfterWarmup) {
  // The acceptance pin: after a warmup epoch, the schedule cache serves
  // > 50% hits — the tuner is consulted once per shape class, not per batch.
  const auto data = fg::minidgl::make_sbm_classification(
      /*n=*/800, /*avg_degree=*/10.0, /*num_classes=*/4, /*p_in=*/0.9,
      /*feat_dim=*/16, /*signal=*/2.0f, /*seed=*/3);
  fg::minidgl::ExecContext ctx;
  ctx.num_threads = 1;
  fg::minidgl::Trainer trainer(
      data, fg::minidgl::Model("sage-mean", 16, 24, 4, 1), ctx, 0.05f);
  fg::minidgl::MinibatchInferOptions opts;
  opts.sampler.fanouts = {5, 5};
  opts.batch_size = 64;
  std::vector<std::int64_t> rows(800);
  for (std::size_t i = 0; i < rows.size(); ++i)
    rows[i] = static_cast<std::int64_t>(i);
  const auto r = trainer.infer_minibatch(opts, rows);
  EXPECT_GT(r.pipeline.batches, 4);
  ASSERT_GT(r.schedule_cache_hits + r.schedule_cache_misses, 0);
  EXPECT_GT(r.schedule_cache_hits, r.schedule_cache_misses);
}

TEST(Pipeline, SampledInferenceIsDeterministicAndLearnsTheTask) {
  // Sampled (non-full) fanouts: two runs with the same seed agree bitwise;
  // accuracy on the trained model stays in the same ballpark as full-graph.
  const auto data = fg::minidgl::make_sbm_classification(
      600, 10.0, 4, 0.9, 16, 2.0f, 77);
  fg::minidgl::ExecContext ctx;
  ctx.num_threads = 2;
  fg::minidgl::Trainer trainer(
      data, fg::minidgl::Model("gcn", 16, 32, 4, 1), ctx, 0.05f);
  for (int e = 0; e < 15; ++e) trainer.train_epoch();
  const double full_acc = trainer.test_accuracy();

  fg::minidgl::MinibatchInferOptions opts;
  opts.sampler.fanouts = {6, 6};
  opts.sampler.seed = 9;
  opts.batch_size = 64;
  const auto a = trainer.infer_minibatch(opts);
  const auto b = trainer.infer_minibatch(opts);
  ASSERT_EQ(a.log_probs.numel(), b.log_probs.numel());
  EXPECT_EQ(std::memcmp(a.log_probs.data(), b.log_probs.data(),
                        static_cast<std::size_t>(a.log_probs.numel()) *
                            sizeof(float)),
            0);
  EXPECT_GT(full_acc, 0.85);
  EXPECT_GT(a.accuracy, 0.75);
}
