// Unit tests for the SIMD span engine (core/simd.hpp): the scalar and AVX2
// backends must be bit-for-bit identical on every accumulation primitive,
// for every span length (including the non-multiple-of-8 tails the vector
// loop peels off), per the header's rounding contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/simd.hpp"
#include "support/rng.hpp"

namespace fg = featgraph;
using fg::simd::Accum;
using fg::simd::BinOp;
using fg::simd::Isa;
using fg::simd::SpanOps;

namespace {

// Spans straddling every tail case of the 16/8/1 vector loop structure.
const std::int64_t kLens[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100};

std::vector<float> random_span(std::int64_t n, std::uint64_t seed) {
  fg::support::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

}  // namespace

TEST(Simd, ActiveIsaRespectsForce) {
  fg::simd::force_isa(Isa::kScalar);
  EXPECT_EQ(fg::simd::active_isa(), Isa::kScalar);
  fg::simd::clear_forced_isa();
  if (fg::simd::cpu_supports_avx2()) {
    fg::simd::ScopedIsa pin(Isa::kAvx2);
    EXPECT_EQ(fg::simd::active_isa(), Isa::kAvx2);
  }
}

TEST(Simd, ScopedIsaRestoresOuterPinWhenNested) {
  if (!fg::simd::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2";
  fg::simd::ScopedIsa outer(Isa::kScalar);
  {
    fg::simd::ScopedIsa inner(Isa::kAvx2);
    EXPECT_EQ(fg::simd::active_isa(), Isa::kAvx2);
  }
  // The inner pin's destruction must restore the OUTER pin, not drop to
  // env/auto detection (which would silently be AVX2 here).
  EXPECT_EQ(fg::simd::active_isa(), Isa::kScalar);
}

TEST(Simd, Avx2TableFallsBackWithoutSupport) {
  // Indexing the kAvx2 table is always safe; without hardware support it
  // aliases the scalar table.
  const SpanOps& t = fg::simd::span_ops(Isa::kAvx2);
  const SpanOps& s = fg::simd::span_ops(Isa::kScalar);
  if (!fg::simd::cpu_supports_avx2()) {
    EXPECT_EQ(t.fill, s.fill);
  } else {
    EXPECT_NE(t.fill, s.fill);
  }
}

TEST(Simd, FillScaleReluAxpyParity) {
  if (!fg::simd::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2";
  const SpanOps& sc = fg::simd::span_ops(Isa::kScalar);
  const SpanOps& vx = fg::simd::span_ops(Isa::kAvx2);
  for (std::int64_t n : kLens) {
    auto base = random_span(n, 7 + static_cast<std::uint64_t>(n));
    auto x = random_span(n, 11 + static_cast<std::uint64_t>(n));

    auto a = base, b = base;
    sc.fill(a.data(), 0.25f, n);
    vx.fill(b.data(), 0.25f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "fill n=" << n;

    a = base, b = base;
    sc.scale(a.data(), -1.75f, n);
    vx.scale(b.data(), -1.75f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "scale n=" << n;

    a = base, b = base;
    sc.relu(a.data(), n);
    vx.relu(b.data(), n);
    EXPECT_TRUE(bit_equal(a, b)) << "relu n=" << n;

    a = base, b = base;
    sc.axpy(a.data(), x.data(), 0.6f, n);
    vx.axpy(b.data(), x.data(), 0.6f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "axpy n=" << n;
  }
}

TEST(Simd, AccumParityAllReducers) {
  if (!fg::simd::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2";
  const SpanOps& sc = fg::simd::span_ops(Isa::kScalar);
  const SpanOps& vx = fg::simd::span_ops(Isa::kAvx2);
  for (int r = 0; r < fg::simd::kNumAccum; ++r) {
    for (std::int64_t n : kLens) {
      auto base = random_span(n, 100 + static_cast<std::uint64_t>(n));
      auto x = random_span(n, 200 + static_cast<std::uint64_t>(n));
      auto a = base, b = base;
      sc.accum[r](a.data(), x.data(), n);
      vx.accum[r](b.data(), x.data(), n);
      EXPECT_TRUE(bit_equal(a, b)) << "accum r=" << r << " n=" << n;
    }
  }
}

TEST(Simd, AccumBinOpParityAllCombos) {
  if (!fg::simd::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2";
  const SpanOps& sc = fg::simd::span_ops(Isa::kScalar);
  const SpanOps& vx = fg::simd::span_ops(Isa::kAvx2);
  for (int r = 0; r < fg::simd::kNumAccum; ++r) {
    for (int o = 0; o < fg::simd::kNumBinOp; ++o) {
      for (std::int64_t n : kLens) {
        auto base = random_span(n, 300 + static_cast<std::uint64_t>(n));
        auto x = random_span(n, 400 + static_cast<std::uint64_t>(n));
        auto y = random_span(n, 500 + static_cast<std::uint64_t>(n));
        auto a = base, b = base;
        sc.accum_binop[r][o](a.data(), x.data(), y.data(), n);
        vx.accum_binop[r][o](b.data(), x.data(), y.data(), n);
        EXPECT_TRUE(bit_equal(a, b))
            << "binop r=" << r << " o=" << o << " n=" << n;

        a = base, b = base;
        sc.accum_binop_scalar[r][o](a.data(), x.data(), 1.3f, n);
        vx.accum_binop_scalar[r][o](b.data(), x.data(), 1.3f, n);
        EXPECT_TRUE(bit_equal(a, b))
            << "binop_s r=" << r << " o=" << o << " n=" << n;
      }
    }
  }
}

TEST(Simd, MaxMinMatchScalarOnTies) {
  // ±0 ties and NaN propagation must match the scalar `a > b ? a : b` form
  // (the _mm256_max_ps operand-order contract the backend relies on).
  if (!fg::simd::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2";
  const SpanOps& sc = fg::simd::span_ops(Isa::kScalar);
  const SpanOps& vx = fg::simd::span_ops(Isa::kAvx2);
  const std::int64_t n = 9;
  const float nan = std::nanf("");
  std::vector<float> base = {0.0f, -0.0f, 1.0f, nan, -1.0f, 2.0f, nan, 0.0f,
                             -0.0f};
  std::vector<float> x = {-0.0f, 0.0f, nan, 1.0f, nan, -2.0f, nan, 0.5f,
                          -0.5f};
  for (int r = 1; r <= 2; ++r) {  // kMax, kMin
    auto a = base, b = base;
    sc.accum[r](a.data(), x.data(), n);
    vx.accum[r](b.data(), x.data(), n);
    EXPECT_TRUE(bit_equal(a, b)) << "r=" << r;
  }
}

TEST(Simd, DotMatchesScalarWithinTolerance) {
  // dot reassociates and uses FMA — approximate equality only.
  const SpanOps& sc = fg::simd::span_ops(Isa::kScalar);
  const SpanOps& active = fg::simd::span_ops();
  for (std::int64_t n : kLens) {
    auto a = random_span(n, 600 + static_cast<std::uint64_t>(n));
    auto b = random_span(n, 700 + static_cast<std::uint64_t>(n));
    const float want = sc.dot(a.data(), b.data(), n);
    const float got = active.dot(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, 1e-4f + 1e-5f * static_cast<float>(n))
        << "dot n=" << n;
  }
}
