// ISA-parity matrix for the SIMD span engine (core/simd.hpp).
//
// Every backend pair must be bit-for-bit identical on every accumulation
// primitive, for every span length (including the masked/peeled tails), per
// the header's rounding contract; `dot` reassociates and is only
// tolerance-checked. The matrix is parameterized over ALL ISA levels
// (0..kNumIsa), filtered by isa_supported(), so a fourth backend joins the
// test matrix by extending the enum — no test edits needed.
#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/simd.hpp"
#include "core/spmm.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace fg = featgraph;
using fg::simd::Accum;
using fg::simd::BinOp;
using fg::simd::Isa;
using fg::simd::SpanOps;

namespace {

// Spans straddling every tail case of the 64/32/16/8/1 loop structures: the
// AVX2 peel points (8/16/32) and the AVX-512 masked-tail points (16/32/64),
// plus 0/1 degenerates and a long non-multiple length.
const std::int64_t kLens[] = {0, 1, 7, 8, 9, 15, 16, 17, 31, 63, 64, 100};

std::vector<float> random_span(std::int64_t n, std::uint64_t seed) {
  fg::support::Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// All unordered ISA pairs (lo < hi as enum values) — each pair is one
/// parity matrix entry; pairs with an unsupported side skip at runtime.
std::vector<std::pair<Isa, Isa>> all_isa_pairs() {
  std::vector<std::pair<Isa, Isa>> pairs;
  for (int a = 0; a < fg::simd::kNumIsa; ++a) {
    for (int b = a + 1; b < fg::simd::kNumIsa; ++b) {
      pairs.emplace_back(static_cast<Isa>(a), static_cast<Isa>(b));
    }
  }
  return pairs;
}

std::string pair_name(const ::testing::TestParamInfo<std::pair<Isa, Isa>>& p) {
  return std::string(fg::simd::isa_name(p.param.first)) + "_vs_" +
         fg::simd::isa_name(p.param.second);
}

class IsaParity : public ::testing::TestWithParam<std::pair<Isa, Isa>> {
 protected:
  void SetUp() override {
    const auto [a, b] = GetParam();
    if (!fg::simd::isa_supported(a) || !fg::simd::isa_supported(b)) {
      GTEST_SKIP() << "hardware lacks " << fg::simd::isa_name(a) << " or "
                   << fg::simd::isa_name(b);
    }
    lhs_ = &fg::simd::span_ops(a);
    rhs_ = &fg::simd::span_ops(b);
    // A pair whose tables alias would test nothing — supported levels must
    // have distinct backends.
    ASSERT_NE(lhs_->fill, rhs_->fill);
  }
  const SpanOps* lhs_ = nullptr;
  const SpanOps* rhs_ = nullptr;
};

}  // namespace

TEST_P(IsaParity, FillScaleReluAxpyBitEqual) {
  for (std::int64_t n : kLens) {
    auto base = random_span(n, 7 + static_cast<std::uint64_t>(n));
    auto x = random_span(n, 11 + static_cast<std::uint64_t>(n));

    auto a = base, b = base;
    lhs_->fill(a.data(), 0.25f, n);
    rhs_->fill(b.data(), 0.25f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "fill n=" << n;

    a = base, b = base;
    lhs_->scale(a.data(), -1.75f, n);
    rhs_->scale(b.data(), -1.75f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "scale n=" << n;

    a = base, b = base;
    lhs_->relu(a.data(), n);
    rhs_->relu(b.data(), n);
    EXPECT_TRUE(bit_equal(a, b)) << "relu n=" << n;

    a = base, b = base;
    lhs_->axpy(a.data(), x.data(), 0.6f, n);
    rhs_->axpy(b.data(), x.data(), 0.6f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "axpy n=" << n;
  }
}

TEST_P(IsaParity, EpiloguePrimitivesLeakyReluBiasReluBitEqual) {
  // The fused-epilogue primitives (core/epilogue.hpp): exact-class select /
  // add+select, so the parity contract is bitwise like relu/axpy.
  for (std::int64_t n : kLens) {
    auto base = random_span(n, 2100 + static_cast<std::uint64_t>(n));
    auto bias = random_span(n, 2200 + static_cast<std::uint64_t>(n));

    for (const float slope : {0.0f, 0.01f, 0.2f}) {
      auto a = base, b = base;
      lhs_->leaky_relu(a.data(), slope, n);
      rhs_->leaky_relu(b.data(), slope, n);
      EXPECT_TRUE(bit_equal(a, b)) << "leaky_relu slope=" << slope
                                   << " n=" << n;
    }

    auto a = base, b = base;
    lhs_->bias_relu(a.data(), bias.data(), n);
    rhs_->bias_relu(b.data(), bias.data(), n);
    EXPECT_TRUE(bit_equal(a, b)) << "bias_relu n=" << n;
  }
}

TEST_P(IsaParity, AccumBitEqualAllReducers) {
  for (int r = 0; r < fg::simd::kNumAccum; ++r) {
    for (std::int64_t n : kLens) {
      auto base = random_span(n, 100 + static_cast<std::uint64_t>(n));
      auto x = random_span(n, 200 + static_cast<std::uint64_t>(n));
      auto a = base, b = base;
      lhs_->accum[r](a.data(), x.data(), n);
      rhs_->accum[r](b.data(), x.data(), n);
      EXPECT_TRUE(bit_equal(a, b)) << "accum r=" << r << " n=" << n;
    }
  }
}

TEST_P(IsaParity, AccumBinOpBitEqualAllCombos) {
  for (int r = 0; r < fg::simd::kNumAccum; ++r) {
    for (int o = 0; o < fg::simd::kNumBinOp; ++o) {
      for (std::int64_t n : kLens) {
        auto base = random_span(n, 300 + static_cast<std::uint64_t>(n));
        auto x = random_span(n, 400 + static_cast<std::uint64_t>(n));
        auto y = random_span(n, 500 + static_cast<std::uint64_t>(n));
        auto a = base, b = base;
        lhs_->accum_binop[r][o](a.data(), x.data(), y.data(), n);
        rhs_->accum_binop[r][o](b.data(), x.data(), y.data(), n);
        EXPECT_TRUE(bit_equal(a, b))
            << "binop r=" << r << " o=" << o << " n=" << n;

        a = base, b = base;
        lhs_->accum_binop_scalar[r][o](a.data(), x.data(), 1.3f, n);
        rhs_->accum_binop_scalar[r][o](b.data(), x.data(), 1.3f, n);
        EXPECT_TRUE(bit_equal(a, b))
            << "binop_s r=" << r << " o=" << o << " n=" << n;
      }
    }
  }
}

TEST_P(IsaParity, MaxMinMatchOnTiesAndNaN) {
  // ±0 ties and NaN propagation must match the scalar `a > b ? a : b` form
  // (the vector max/min operand-order contract every backend relies on) —
  // including in a masked tail, hence the length-9 spans.
  const std::int64_t n = 9;
  const float nan = std::nanf("");
  std::vector<float> base = {0.0f, -0.0f, 1.0f, nan, -1.0f, 2.0f, nan, 0.0f,
                             -0.0f};
  std::vector<float> x = {-0.0f, 0.0f, nan, 1.0f, nan, -2.0f, nan, 0.5f,
                          -0.5f};
  for (int r = 1; r <= 2; ++r) {  // kMax, kMin
    auto a = base, b = base;
    lhs_->accum[r](a.data(), x.data(), n);
    rhs_->accum[r](b.data(), x.data(), n);
    EXPECT_TRUE(bit_equal(a, b)) << "r=" << r;
  }
}

TEST_P(IsaParity, WaxpyBinOpBitEqualAllOps) {
  // The attention-weighted accumulates share axpy's exact contract: three
  // IEEE ops per element (op, mul, add), no FMA — bit-for-bit everywhere,
  // masked tails included.
  for (int o = 0; o < fg::simd::kNumBinOp; ++o) {
    for (std::int64_t n : kLens) {
      auto base = random_span(n, 800 + static_cast<std::uint64_t>(n));
      auto x = random_span(n, 900 + static_cast<std::uint64_t>(n));
      auto y = random_span(n, 1000 + static_cast<std::uint64_t>(n));
      auto a = base, b = base;
      lhs_->waxpy_binop[o](a.data(), x.data(), y.data(), 0.7f, n);
      rhs_->waxpy_binop[o](b.data(), x.data(), y.data(), 0.7f, n);
      EXPECT_TRUE(bit_equal(a, b)) << "waxpy o=" << o << " n=" << n;

      a = base, b = base;
      lhs_->waxpy_binop_scalar[o](a.data(), x.data(), 1.3f, 0.7f, n);
      rhs_->waxpy_binop_scalar[o](b.data(), x.data(), 1.3f, 0.7f, n);
      EXPECT_TRUE(bit_equal(a, b)) << "waxpy_s o=" << o << " n=" << n;
    }
  }
}

TEST_P(IsaParity, AccumRowsBitEqualAllUnrollsAndMatchPerRowChain) {
  // The Schedule-IR register-blocked fold (accum_rows): every backend pair
  // AND every unroll hint must be bit-identical — unroll regroups vectors
  // across the feature axis only, never across rows — and the whole group
  // fold must equal the per-row accum chain it replaces (the protocol the
  // unroll() transform's bit-identity contract rests on).
  fg::support::Rng rng(2500);
  const std::int64_t n_src = 29;
  const std::int64_t cnt = 13;
  for (std::int64_t n : kLens) {
    const std::int64_t stride = n + 3;  // source rows wider than the span
    auto src = random_span(n_src * stride, 2600 + static_cast<std::uint64_t>(n));
    std::vector<std::int32_t> idx(static_cast<std::size_t>(cnt));
    for (auto& i : idx)
      i = static_cast<std::int32_t>(
          rng.uniform(static_cast<std::uint64_t>(n_src)));
    for (int r = 0; r < fg::simd::kNumAccum; ++r) {
      auto base = random_span(n, 2700 + static_cast<std::uint64_t>(n));
      auto want = base;  // the per-row chain cnt accum() calls would run
      for (std::int64_t i = 0; i < cnt; ++i) {
        lhs_->accum[r](want.data(),
                       src.data() +
                           static_cast<std::int64_t>(
                               idx[static_cast<std::size_t>(i)]) *
                               stride,
                       n);
      }
      for (int unroll : {1, 2, 4, 8}) {
        auto a = base, b = base;
        lhs_->accum_rows[r](a.data(), src.data(), stride, idx.data(), cnt, n,
                            unroll);
        rhs_->accum_rows[r](b.data(), src.data(), stride, idx.data(), cnt, n,
                            unroll);
        EXPECT_TRUE(bit_equal(a, b))
            << "accum_rows r=" << r << " n=" << n << " u=" << unroll;
        EXPECT_TRUE(bit_equal(a, want))
            << "accum_rows vs chain r=" << r << " n=" << n << " u=" << unroll;
      }
    }
  }
}

TEST_P(IsaParity, WaxpyRowsBitEqualAllUnrollsAndMatchPerRowChain) {
  // Weighted row-group fold (the fused attention blocked path): mul then
  // add per element, no FMA — bit-identical to the per-row axpy chain at
  // every unroll on every backend.
  fg::support::Rng rng(3500);
  const std::int64_t n_src = 29;
  const std::int64_t cnt = 13;
  for (std::int64_t n : kLens) {
    const std::int64_t stride = n + 5;
    auto src = random_span(n_src * stride, 3600 + static_cast<std::uint64_t>(n));
    auto w = random_span(cnt, 3700 + static_cast<std::uint64_t>(n));
    std::vector<std::int32_t> idx(static_cast<std::size_t>(cnt));
    for (auto& i : idx)
      i = static_cast<std::int32_t>(
          rng.uniform(static_cast<std::uint64_t>(n_src)));
    auto base = random_span(n, 3800 + static_cast<std::uint64_t>(n));
    auto want = base;
    for (std::int64_t i = 0; i < cnt; ++i) {
      lhs_->axpy(want.data(),
                 src.data() + static_cast<std::int64_t>(
                                  idx[static_cast<std::size_t>(i)]) *
                                  stride,
                 w[static_cast<std::size_t>(i)], n);
    }
    for (int unroll : {1, 2, 4, 8}) {
      auto a = base, b = base;
      lhs_->waxpy_rows(a.data(), src.data(), stride, idx.data(), w.data(), cnt,
                       n, unroll);
      rhs_->waxpy_rows(b.data(), src.data(), stride, idx.data(), w.data(), cnt,
                       n, unroll);
      EXPECT_TRUE(bit_equal(a, b)) << "waxpy_rows n=" << n << " u=" << unroll;
      EXPECT_TRUE(bit_equal(a, want))
          << "waxpy_rows vs chain n=" << n << " u=" << unroll;
    }
  }
}

TEST_P(IsaParity, GatherRowsBitEqual) {
  // The sampling subsystem's row gather is a pure copy — exact class, so
  // every backend pair must agree bit-for-bit at every row width (kLens
  // doubles as the width axis, covering the 16-lane tails and the AVX-512
  // d < 16 reroute).
  fg::support::Rng rng(1600);
  for (std::int64_t d : kLens) {
    const std::int64_t n_src = 37;
    const std::int64_t m = 23;
    auto src = random_span(n_src * d, 1700 + static_cast<std::uint64_t>(d));
    std::vector<std::int32_t> idx(static_cast<std::size_t>(m));
    for (auto& i : idx)
      i = static_cast<std::int32_t>(rng.uniform(static_cast<std::uint64_t>(n_src)));
    std::vector<float> a(static_cast<std::size_t>(m * d), -1.0f);
    std::vector<float> b(static_cast<std::size_t>(m * d), -2.0f);
    lhs_->gather_rows(a.data(), src.data(), idx.data(), m, d);
    rhs_->gather_rows(b.data(), src.data(), idx.data(), m, d);
    EXPECT_TRUE(bit_equal(a, b)) << "gather_rows d=" << d;
    if (d == 0) continue;
    // And a copy must be bitwise the source rows it names.
    for (std::int64_t i = 0; i < m; ++i) {
      EXPECT_EQ(std::memcmp(a.data() + i * d,
                            src.data() + static_cast<std::int64_t>(idx[
                                static_cast<std::size_t>(i)]) * d,
                            static_cast<std::size_t>(d) * sizeof(float)),
                0)
          << "gather_rows row " << i << " d=" << d;
    }
  }
}

TEST_P(IsaParity, HmaxMatchesExactly) {
  // Max reassociates exactly for NaN-free inputs (the softmax contract), so
  // lane-tree and sequential folds agree on the value, n = 0 (-inf identity)
  // included.
  for (std::int64_t n : kLens) {
    auto x = random_span(n, 1100 + static_cast<std::uint64_t>(n));
    EXPECT_EQ(lhs_->hmax(x.data(), n), rhs_->hmax(x.data(), n))
        << "hmax n=" << n;
  }
}

TEST_P(IsaParity, ExpScaleMatchesWithinTolerance) {
  // Like dot, exp_scale is the documented approximate primitive: the vector
  // backends run a ~2 ulp polynomial exp and reassociate the denominator
  // sum, so cross-backend agreement is relative-tolerance, not bitwise.
  for (std::int64_t n : kLens) {
    auto base = random_span(n, 1200 + static_cast<std::uint64_t>(n));
    auto a = base, b = base;
    const float sa = lhs_->exp_scale(a.data(), -0.3f, n);
    const float sb = rhs_->exp_scale(b.data(), -0.3f, n);
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(a[static_cast<std::size_t>(j)],
                  b[static_cast<std::size_t>(j)],
                  1e-6f + 1e-6f * std::fabs(b[static_cast<std::size_t>(j)]))
          << "exp_scale n=" << n << " j=" << j;
    }
    EXPECT_NEAR(sa, sb, 1e-6f + 1e-5f * std::fabs(sb)) << "sum n=" << n;
  }
}

TEST_P(IsaParity, DotMatchesWithinTolerance) {
  // dot reassociates and uses FMA — approximate equality only.
  for (std::int64_t n : kLens) {
    auto a = random_span(n, 600 + static_cast<std::uint64_t>(n));
    auto b = random_span(n, 700 + static_cast<std::uint64_t>(n));
    const float want = lhs_->dot(a.data(), b.data(), n);
    const float got = rhs_->dot(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, 1e-4f + 1e-5f * static_cast<float>(n))
        << "dot n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, IsaParity,
                         ::testing::ValuesIn(all_isa_pairs()), pair_name);

TEST(Simd, NarrowSpansRouteAvx512ToAvx2BitIdentically) {
  // The narrow-span dispatch fix (BENCH_kernels.json's d=8 regression): a
  // span with n < 16 never fills a 512-bit vector, so the AVX-512 table
  // reroutes it to the AVX2 backend. That makes EVERY primitive —
  // including the tolerance-class dot / exp_scale / hmax, which the parity
  // matrix only bounds — literally the AVX2 code on narrow spans, so the
  // two tables must agree BIT-FOR-BIT for every n in [0, 16).
  if (!fg::simd::isa_supported(Isa::kAvx512)) {
    GTEST_SKIP() << "hardware lacks AVX-512";
  }
  const SpanOps& a512 = fg::simd::span_ops(Isa::kAvx512);
  const SpanOps& a2 = fg::simd::span_ops(Isa::kAvx2);
  for (std::int64_t n = 0; n < 16; ++n) {
    auto base = random_span(n, 1300 + static_cast<std::uint64_t>(n));
    auto x = random_span(n, 1400 + static_cast<std::uint64_t>(n));
    auto y = random_span(n, 1500 + static_cast<std::uint64_t>(n));

    auto a = base, b = base;
    a512.fill(a.data(), 0.5f, n);
    a2.fill(b.data(), 0.5f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "fill n=" << n;

    a = base, b = base;
    a512.scale(a.data(), -2.5f, n);
    a2.scale(b.data(), -2.5f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "scale n=" << n;

    a = base, b = base;
    a512.relu(a.data(), n);
    a2.relu(b.data(), n);
    EXPECT_TRUE(bit_equal(a, b)) << "relu n=" << n;

    a = base, b = base;
    a512.axpy(a.data(), x.data(), 0.7f, n);
    a2.axpy(b.data(), x.data(), 0.7f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "axpy n=" << n;

    a = base, b = base;
    a512.leaky_relu(a.data(), 0.01f, n);
    a2.leaky_relu(b.data(), 0.01f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "leaky_relu n=" << n;

    a = base, b = base;
    a512.bias_relu(a.data(), x.data(), n);
    a2.bias_relu(b.data(), x.data(), n);
    EXPECT_TRUE(bit_equal(a, b)) << "bias_relu n=" << n;

    // The tolerance-class primitives: bitwise on narrow spans post-reroute.
    const float d512 = a512.dot(x.data(), y.data(), n);
    const float d2 = a2.dot(x.data(), y.data(), n);
    EXPECT_EQ(std::memcmp(&d512, &d2, sizeof(float)), 0) << "dot n=" << n;
    EXPECT_EQ(a512.hmax(x.data(), n), a2.hmax(x.data(), n)) << "hmax n=" << n;
    a = base, b = base;
    const float s512 = a512.exp_scale(a.data(), -0.3f, n);
    const float s2 = a2.exp_scale(b.data(), -0.3f, n);
    EXPECT_TRUE(bit_equal(a, b)) << "exp_scale n=" << n;
    EXPECT_EQ(std::memcmp(&s512, &s2, sizeof(float)), 0)
        << "exp_scale sum n=" << n;

    for (int r = 0; r < fg::simd::kNumAccum; ++r) {
      a = base, b = base;
      a512.accum[r](a.data(), x.data(), n);
      a2.accum[r](b.data(), x.data(), n);
      EXPECT_TRUE(bit_equal(a, b)) << "accum r=" << r << " n=" << n;
      for (int o = 0; o < fg::simd::kNumBinOp; ++o) {
        a = base, b = base;
        a512.accum_binop[r][o](a.data(), x.data(), y.data(), n);
        a2.accum_binop[r][o](b.data(), x.data(), y.data(), n);
        EXPECT_TRUE(bit_equal(a, b)) << "binop r=" << r << " o=" << o;
        a = base, b = base;
        a512.accum_binop_scalar[r][o](a.data(), x.data(), 1.3f, n);
        a2.accum_binop_scalar[r][o](b.data(), x.data(), 1.3f, n);
        EXPECT_TRUE(bit_equal(a, b)) << "binop_s r=" << r << " o=" << o;
      }
    }
    for (int o = 0; o < fg::simd::kNumBinOp; ++o) {
      a = base, b = base;
      a512.waxpy_binop[o](a.data(), x.data(), y.data(), 0.7f, n);
      a2.waxpy_binop[o](b.data(), x.data(), y.data(), 0.7f, n);
      EXPECT_TRUE(bit_equal(a, b)) << "waxpy o=" << o << " n=" << n;
      a = base, b = base;
      a512.waxpy_binop_scalar[o](a.data(), x.data(), 1.3f, 0.7f, n);
      a2.waxpy_binop_scalar[o](b.data(), x.data(), 1.3f, 0.7f, n);
      EXPECT_TRUE(bit_equal(a, b)) << "waxpy_s o=" << o << " n=" << n;
    }
  }
}

TEST(Simd, NarrowFeatureSpmmIsBitIdenticalAcrossReroutedBackends) {
  // Kernel-level lockdown of the reroute: the d=8 SpMM that exposed the
  // regression (spmm_copy_u_sum_d8_narrow) must produce bit-identical
  // results on the AVX-512 table before and after routing — i.e. equal to
  // the AVX2 backend, which equals scalar by the accumulation contract.
  if (!fg::simd::isa_supported(Isa::kAvx512)) {
    GTEST_SKIP() << "hardware lacks AVX-512";
  }
  const auto coo = fg::graph::gen_rmat(512, 9.0, 77);
  const auto in_csr = fg::graph::coo_to_in_csr(coo);
  const auto x = fg::tensor::Tensor::randn({in_csr.num_cols, 8}, 78);
  const fg::core::SpmmOperands ops{&x, nullptr, nullptr};
  fg::tensor::Tensor results[2];
  int i = 0;
  for (const Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    fg::simd::ScopedIsa pin(isa);
    results[i++] = fg::core::spmm(in_csr, "copy_u", "sum", {}, ops);
  }
  ASSERT_EQ(results[0].numel(), results[1].numel());
  EXPECT_EQ(std::memcmp(results[0].data(), results[1].data(),
                        static_cast<std::size_t>(results[0].numel()) *
                            sizeof(float)),
            0);
}

// ---------------------------------------------------------------------------
// Dispatcher / fallback-chain behavior
// ---------------------------------------------------------------------------

TEST(Simd, ActiveIsaRespectsForce) {
  fg::simd::force_isa(Isa::kScalar);
  EXPECT_EQ(fg::simd::active_isa(), Isa::kScalar);
  fg::simd::clear_forced_isa();
  for (const Isa isa : fg::simd::supported_isas()) {
    fg::simd::ScopedIsa pin(isa);
    EXPECT_EQ(fg::simd::active_isa(), isa) << fg::simd::isa_name(isa);
  }
}

TEST(Simd, ScopedIsaRestoresOuterPinWhenNested) {
  if (!fg::simd::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2";
  fg::simd::ScopedIsa outer(Isa::kScalar);
  {
    fg::simd::ScopedIsa inner(Isa::kAvx2);
    EXPECT_EQ(fg::simd::active_isa(), Isa::kAvx2);
  }
  // The inner pin's destruction must restore the OUTER pin, not drop to
  // env/auto detection (which would silently be a vector backend here).
  EXPECT_EQ(fg::simd::active_isa(), Isa::kScalar);
}

TEST(Simd, FallbackDegradesOneStepNotToScalar) {
  // The chain avx512 -> avx2 -> scalar, pinned for every hardware
  // combination this can run on:
  //  * no AVX2:          everything lands on scalar.
  //  * AVX2, no AVX-512: an avx512 request lands on avx2 — NOT scalar.
  //  * AVX-512:          every level resolves to itself.
  const Isa eff512 = fg::simd::effective_isa(Isa::kAvx512);
  const Isa eff2 = fg::simd::effective_isa(Isa::kAvx2);
  EXPECT_EQ(fg::simd::effective_isa(Isa::kScalar), Isa::kScalar);
  if (fg::simd::cpu_supports_avx512()) {
    EXPECT_EQ(eff512, Isa::kAvx512);
  } else if (fg::simd::cpu_supports_avx2()) {
    EXPECT_EQ(eff512, Isa::kAvx2) << "avx512 must degrade one step to avx2";
  } else {
    EXPECT_EQ(eff512, Isa::kScalar);
  }
  EXPECT_EQ(eff2, fg::simd::cpu_supports_avx2() ? Isa::kAvx2 : Isa::kScalar);

  // span_ops(Isa) must hand back the table of the degraded level, and
  // active_isa() under a force must agree with effective_isa.
  EXPECT_EQ(fg::simd::span_ops(Isa::kAvx512).fill,
            fg::simd::span_ops(eff512).fill);
  EXPECT_EQ(fg::simd::span_ops(Isa::kAvx2).fill,
            fg::simd::span_ops(eff2).fill);
  {
    fg::simd::ScopedIsa pin(Isa::kAvx512);
    EXPECT_EQ(fg::simd::active_isa(), eff512);
  }
}

TEST(Simd, SupportedLevelsHaveDistinctTables) {
  // Each genuinely supported level must resolve to its own backend; an
  // unsupported level must alias its fallback's table.
  const SpanOps& scalar = fg::simd::span_ops(Isa::kScalar);
  const SpanOps& avx2 = fg::simd::span_ops(Isa::kAvx2);
  const SpanOps& avx512 = fg::simd::span_ops(Isa::kAvx512);
  if (fg::simd::cpu_supports_avx2()) {
    EXPECT_NE(avx2.fill, scalar.fill);
  } else {
    EXPECT_EQ(avx2.fill, scalar.fill);
  }
  if (fg::simd::cpu_supports_avx512()) {
    EXPECT_NE(avx512.fill, scalar.fill);
    EXPECT_NE(avx512.fill, avx2.fill);
  } else {
    EXPECT_EQ(avx512.fill, avx2.fill);  // one-step fallback, whatever avx2 is
  }
}

TEST(Simd, TailLanesRaiseNoSpuriousFpFlags) {
  // Masked-off tail lanes must be computation-free, FP status flags
  // included: a full-width div on zero-filled dead lanes would raise
  // FE_INVALID (0/0) on one backend only, breaking observable parity for
  // callers that poll fetestexcept. All inputs here are finite and nonzero,
  // so a clean run must leave INVALID/DIVBYZERO clear on every backend.
  const std::int64_t n = 9;  // forces a tail on every vector width
  std::vector<float> base(n, 2.0f), x(n, 4.0f), y(n, 8.0f);
  for (const Isa isa : fg::simd::supported_isas()) {
    const SpanOps& ops = fg::simd::span_ops(isa);
    std::feclearexcept(FE_ALL_EXCEPT);
    auto out = base;
    for (int r = 0; r < fg::simd::kNumAccum; ++r) {
      ops.accum[r](out.data(), x.data(), n);
      for (int o = 0; o < fg::simd::kNumBinOp; ++o) {
        ops.accum_binop[r][o](out.data(), x.data(), y.data(), n);
        ops.accum_binop_scalar[r][o](out.data(), x.data(), 2.0f, n);
      }
    }
    ops.scale(out.data(), 0.5f, n);
    ops.relu(out.data(), n);
    ops.axpy(out.data(), x.data(), 1.5f, n);
    (void)ops.dot(x.data(), y.data(), n);
    for (int o = 0; o < fg::simd::kNumBinOp; ++o) {
      ops.waxpy_binop[o](out.data(), x.data(), y.data(), 0.5f, n);
      ops.waxpy_binop_scalar[o](out.data(), x.data(), 2.0f, 0.5f, n);
    }
    (void)ops.hmax(x.data(), n);
    auto ex = x;
    (void)ops.exp_scale(ex.data(), -1.0f, n);
    EXPECT_EQ(std::fetestexcept(FE_INVALID | FE_DIVBYZERO), 0)
        << fg::simd::isa_name(isa);
  }
}

TEST(Simd, IsaNamesRoundTrip) {
  EXPECT_STREQ(fg::simd::isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(fg::simd::isa_name(Isa::kAvx2), "avx2");
  EXPECT_STREQ(fg::simd::isa_name(Isa::kAvx512), "avx512");
}
