#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>

#include "support/aligned.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace fg = featgraph;

TEST(Env, DoubleParsesAndFallsBack) {
  ::setenv("FG_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(fg::support::env_double("FG_TEST_D", 1.0), 2.5);
  ::setenv("FG_TEST_D", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(fg::support::env_double("FG_TEST_D", 1.0), 1.0);
  ::unsetenv("FG_TEST_D");
  EXPECT_DOUBLE_EQ(fg::support::env_double("FG_TEST_D", 3.0), 3.0);
}

TEST(Env, LongParsesAndFallsBack) {
  ::setenv("FG_TEST_L", "42", 1);
  EXPECT_EQ(fg::support::env_long("FG_TEST_L", 7), 42);
  ::unsetenv("FG_TEST_L");
  EXPECT_EQ(fg::support::env_long("FG_TEST_L", 7), 7);
}

TEST(Env, StringFallsBack) {
  ::unsetenv("FG_TEST_S");
  EXPECT_EQ(fg::support::env_string("FG_TEST_S", "dflt"), "dflt");
  ::setenv("FG_TEST_S", "abc", 1);
  EXPECT_EQ(fg::support::env_string("FG_TEST_S", "dflt"), "abc");
  ::unsetenv("FG_TEST_S");
}

TEST(Rng, DeterministicForSameSeed) {
  fg::support::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  fg::support::Rng a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 16; ++i) differ += (a.next() != b.next());
  EXPECT_GT(differ, 0);
}

TEST(Rng, StreamsAreReproducibleAndIndependent) {
  // The splittable (seed, stream) constructor: same pair => same sequence;
  // different streams of one seed diverge; stream 0 is NOT the plain
  // one-argument seeding (streams are a separate family, derived through a
  // full avalanche, not a shifted copy).
  fg::support::Rng a(123, 7), b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  fg::support::Rng s0(123, 0), s1(123, 1), plain(123);
  int differ01 = 0, differ_plain = 0;
  for (int i = 0; i < 16; ++i) {
    const auto x = s0.next();
    differ01 += (x != s1.next());
    differ_plain += (x != plain.next());
  }
  EXPECT_GT(differ01, 12);
  EXPECT_GT(differ_plain, 12);
}

TEST(Rng, StreamFamiliesDoNotCollideAcrossSeeds) {
  // (seed a, stream s) must not reproduce (seed b, stream t) for nearby
  // values — the failure mode of additive `seed + stream * gamma` stream
  // derivation this constructor avoids.
  for (std::uint64_t ds = 1; ds < 4; ++ds) {
    fg::support::Rng a(100, 5);
    fg::support::Rng b(100 + ds, 5 - ds);
    int differ = 0;
    for (int i = 0; i < 16; ++i) differ += (a.next() != b.next());
    EXPECT_GT(differ, 12) << "ds=" << ds;
  }
}

TEST(Rng, UniformRespectsBound) {
  fg::support::Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformRealInUnitInterval) {
  fg::support::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformCoversRange) {
  fg::support::Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalHasApproxUnitMoments) {
  fg::support::Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, LognormalMeanMatchesFormula) {
  fg::support::Rng rng(13);
  const double mu = 1.0, sigma = 0.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, std::exp(mu + 0.5 * sigma * sigma), 0.1);
}

TEST(Timer, MeasuresElapsedTime) {
  fg::support::Timer t;
  double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i);
  EXPECT_GT(sink, 0.0);  // also keeps the loop from being optimized away
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds() * 1000.0 * 0.5);
}

TEST(Timer, TimeMeanRunsWarmupPlusReps) {
  int calls = 0;
  const double mean =
      fg::support::time_mean_seconds([&] { ++calls; }, /*reps=*/5);
  EXPECT_EQ(calls, 6);  // 1 warm-up + 5 timed
  EXPECT_GE(mean, 0.0);
}

TEST(Aligned, AllocationsAreCacheLineAligned) {
  fg::support::AlignedAllocator<float> alloc;
  for (std::size_t n : {1u, 3u, 17u, 1024u}) {
    float* p = alloc.allocate(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    alloc.deallocate(p, n);
  }
}

TEST(Table, RendersAlignedColumns) {
  fg::support::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.5"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(fg::support::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(fg::support::Table::num(2.0, 0), "2");
}

TEST(TableDeathTest, RejectsMismatchedRowWidth) {
  fg::support::Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}
