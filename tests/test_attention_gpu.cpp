// Fused gpusim attention (gpusim/attention_gpu.hpp): functional
// bit-identity against the CPU fused kernel per msg_op x row_assignment x
// staging cell, plus the cost invariants the fusion exists for — strictly
// fewer global-load transactions than the composed three-launch chain,
// exactly ONE launch overhead, zero atomics — and the smem-split /
// GPU-attention tuner axes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "core/attention.hpp"
#include "core/smart_tuner.hpp"
#include "core/tuner.hpp"
#include "gpusim/attention_gpu.hpp"
#include "graph/generators.hpp"

namespace fg = featgraph;
using fg::core::AttentionOperands;
using fg::core::AttentionResult;
using fg::core::GpuSpmmSchedule;
using fg::core::LoadBalance;
using fg::gpusim::GpuAttentionResult;
using fg::graph::Coo;
using fg::graph::Csr;
using fg::tensor::Tensor;

namespace {

// d = 19: an awkward tail on every backend, matching the CPU suite.
constexpr std::int64_t kDim = 19;
constexpr std::int64_t kMlpD1 = 6;

struct Fixture {
  Coo coo;
  Csr in_csr;
  Tensor x;
  Tensor xsmall;
  Tensor w;
  Tensor e_vec;
  Tensor e_scal;
  Tensor logits;

  Fixture()
      : coo(fg::graph::gen_rmat(400, 7.0, 271)),
        in_csr(fg::graph::coo_to_in_csr(coo)),
        x(Tensor::randn({in_csr.num_cols, kDim}, 272)),
        xsmall(Tensor::randn({in_csr.num_cols, kMlpD1}, 273)),
        w(Tensor::randn({kMlpD1, kDim}, 274)),
        e_vec(Tensor::randn({in_csr.nnz(), kDim}, 275)),
        e_scal(Tensor::randn({in_csr.nnz()}, 276)),
        logits(Tensor::randn({in_csr.nnz()}, 277)) {}

  static const Fixture& get() {
    static const Fixture f;
    return f;
  }
};

struct Case {
  const char* op;
  bool scalar_edge;
};

constexpr Case kCases[] = {{"copy_u", false},  {"copy_e", false},
                           {"u_add_v", false}, {"u_sub_v", false},
                           {"u_mul_v", false}, {"u_div_v", false},
                           {"u_add_e", true},  {"u_add_e", false},
                           {"u_mul_e", true},  {"u_mul_e", false},
                           {"mlp", false}};

AttentionOperands operands_for(const Case& c, const Fixture& f) {
  AttentionOperands ops;
  ops.logit_scale = 0.25f;
  const std::string op = c.op;
  if (op == "mlp") {
    ops.src_feat = &f.xsmall;
    ops.weight = &f.w;
    ops.query = &f.x;
    return ops;
  }
  ops.src_feat = &f.x;
  if (op == "copy_e" || op == "u_add_e" || op == "u_mul_e") {
    ops.edge_feat = c.scalar_edge ? &f.e_scal : &f.e_vec;
  }
  return ops;
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         (a.numel() == 0 ||
          std::memcmp(a.data(), b.data(),
                      static_cast<std::size_t>(a.numel()) * sizeof(float)) ==
              0);
}

}  // namespace

TEST(AttentionGpu, BitIdenticalToCpuFusedKernelPerMsgOpRowAssignmentStaging) {
  const Fixture& f = Fixture::get();
  for (const Case& c : kCases) {
    const AttentionOperands operands = operands_for(c, f);
    const AttentionResult cpu =
        fg::core::attention(f.in_csr, c.op, {}, operands);
    for (const LoadBalance ra :
         {LoadBalance::kStaticRows, LoadBalance::kNnzBalanced}) {
      for (const bool hybrid : {false, true}) {
        GpuSpmmSchedule sched;
        sched.row_assignment = ra;
        sched.hybrid_partition = hybrid;
        const GpuAttentionResult gpu =
            fg::gpusim::attention_gpu(f.in_csr, c.op, sched, operands);
        const std::string cell = std::string(c.op) +
                                 (c.scalar_edge ? "(e-scalar)" : "") +
                                 " ra=" + std::to_string(static_cast<int>(ra)) +
                                 " hybrid=" + std::to_string(hybrid);
        EXPECT_TRUE(bit_equal(gpu.out, cpu.out)) << cell << " out";
        EXPECT_TRUE(bit_equal(gpu.alpha, cpu.alpha)) << cell << " alpha";
      }
    }
  }
}

TEST(AttentionGpu, FusedCostBeatsComposedChainPerMsgOp) {
  // The fusion's mechanism claims, per message op: strictly fewer
  // global-load transactions than the sddmm_gpu -> softmax -> spmm_gpu
  // chain's sum, exactly one launch overhead (the chain pays three), zero
  // atomics, and a strictly lower simulated total.
  const Fixture& f = Fixture::get();
  const fg::gpusim::DeviceSpec spec;
  for (const Case& c : kCases) {
    const AttentionOperands operands = operands_for(c, f);
    const GpuAttentionResult fused =
        fg::gpusim::attention_gpu(f.in_csr, c.op, {}, operands, spec);
    const GpuAttentionResult composed =
        fg::gpusim::attention_gpu_composed(f.in_csr, c.op, {}, operands, spec);
    const std::string cell =
        std::string(c.op) + (c.scalar_edge ? "(e-scalar)" : "");
    EXPECT_LT(fused.stats.global_load_transactions,
              composed.stats.global_load_transactions)
        << cell;
    EXPECT_DOUBLE_EQ(fused.cost.launch_s, spec.launch_overhead_s) << cell;
    EXPECT_DOUBLE_EQ(composed.cost.launch_s, 3.0 * spec.launch_overhead_s)
        << cell;
    EXPECT_DOUBLE_EQ(fused.stats.global_atomics, 0.0) << cell;
    EXPECT_LT(fused.cost.total_s, composed.cost.total_s) << cell;
    // Both ledgers describe the same arithmetic, so the composed output is
    // the fused output.
    EXPECT_TRUE(bit_equal(fused.out, composed.out)) << cell;
  }
}

TEST(AttentionGpu, PrecomputedEdgeLogitsPayTwoComposedLaunches) {
  // With precomputed logits the composed chain drops the SDDMM launch but
  // still pays two; the fused kernel still pays one and still loads less.
  const Fixture& f = Fixture::get();
  const fg::gpusim::DeviceSpec spec;
  AttentionOperands operands;
  operands.src_feat = &f.x;
  operands.edge_logits = &f.logits;
  const GpuAttentionResult fused =
      fg::gpusim::attention_gpu(f.in_csr, "copy_u", {}, operands, spec);
  const GpuAttentionResult composed = fg::gpusim::attention_gpu_composed(
      f.in_csr, "copy_u", {}, operands, spec);
  EXPECT_DOUBLE_EQ(fused.cost.launch_s, spec.launch_overhead_s);
  EXPECT_DOUBLE_EQ(composed.cost.launch_s, 2.0 * spec.launch_overhead_s);
  EXPECT_LT(fused.stats.global_load_transactions,
            composed.stats.global_load_transactions);
  EXPECT_TRUE(bit_equal(fused.out, composed.out));
}

TEST(AttentionGpu, EdgeSoftmaxGpuMatchesCoreAndChargesOneLaunch) {
  const Fixture& f = Fixture::get();
  const fg::gpusim::DeviceSpec spec;
  const auto r = fg::gpusim::edge_softmax_gpu(f.in_csr, f.logits, {}, spec);
  const Tensor want = fg::core::edge_softmax(f.in_csr, f.logits, 1);
  EXPECT_TRUE(bit_equal(r.out, want));
  EXPECT_DOUBLE_EQ(r.cost.launch_s, spec.launch_overhead_s);
  EXPECT_GT(r.stats.global_load_transactions, 0.0);
}

TEST(AttentionGpu, ZeroDegreeRowsProduceZerosNeverNaN) {
  // The empty-segment softmax pin on the gpusim path: rows with no
  // in-edges must aggregate to exactly zero — no NaN from an hmax over an
  // empty segment or a 0/0 normalization — including the all-empty graph.
  // Row 1 is the only destination with in-edges.
  Coo coo;
  coo.num_src = coo.num_dst = 6;
  coo.src = {0, 2, 4};
  coo.dst = {1, 1, 1};
  const Csr in = fg::graph::coo_to_in_csr(coo);
  const Tensor x = Tensor::randn({6, 11}, 901);
  AttentionOperands operands;
  operands.src_feat = &x;
  for (const bool hybrid : {false, true}) {
    GpuSpmmSchedule sched;
    sched.hybrid_partition = hybrid;
    const GpuAttentionResult r =
        fg::gpusim::attention_gpu(in, "copy_u", sched, operands);
    for (std::int64_t i = 0; i < r.out.numel(); ++i)
      ASSERT_FALSE(std::isnan(r.out.at(i))) << "flat " << i;
    for (const fg::graph::vid_t v : {0, 2, 3, 4, 5})
      for (std::int64_t j = 0; j < 11; ++j)
        EXPECT_EQ(r.out.at(v, j), 0.0f) << "row " << v;
  }

  // All-empty graph (n > 0, nnz == 0): everything is zeros, cost is charged
  // (the launch still traverses indptr).
  Coo empty;
  empty.num_src = empty.num_dst = 6;
  const Csr ein = fg::graph::coo_to_in_csr(empty);
  const GpuAttentionResult r =
      fg::gpusim::attention_gpu(ein, "copy_u", {}, operands);
  EXPECT_EQ(r.alpha.numel(), 0);
  for (std::int64_t i = 0; i < r.out.numel(); ++i) {
    ASSERT_FALSE(std::isnan(r.out.at(i)));
    EXPECT_EQ(r.out.at(i), 0.0f);
  }
  EXPECT_GT(r.cost.total_s, 0.0);
}

TEST(AttentionGpu, SmemSplitTradesSoftmaxSpillsAgainstStagingReuse) {
  // Skewed two-class graph: hub destinations with long logit segments AND
  // hub sources worth staging.
  const Coo skewed = fg::graph::gen_two_class(60, 500, 600, 5, 5);
  const Csr in = fg::graph::coo_to_in_csr(skewed);
  const Tensor x = Tensor::randn({in.num_cols, 64}, 903);
  AttentionOperands operands;
  operands.src_feat = &x;

  // Zero softmax scratch forces every nonempty row to spill its logits to
  // global memory — strictly more load transactions than an even split.
  GpuSpmmSchedule no_scratch;
  no_scratch.attention_softmax_smem_frac = 0.0;
  GpuSpmmSchedule even;
  even.attention_softmax_smem_frac = 0.5;
  const auto spilled =
      fg::gpusim::attention_gpu(in, "copy_u", no_scratch, operands);
  const auto fits = fg::gpusim::attention_gpu(in, "copy_u", even, operands);
  EXPECT_GT(spilled.stats.global_load_transactions,
            fits.stats.global_load_transactions);
  EXPECT_TRUE(bit_equal(spilled.out, fits.out));  // cost-only knob

  // Hybrid staging of the high-degree sources cuts global feature loads on
  // this skew, exactly like the SpMM hybrid kernel.
  GpuSpmmSchedule hybrid = even;
  hybrid.hybrid_partition = true;
  const auto staged = fg::gpusim::attention_gpu(in, "copy_u", hybrid, operands);
  EXPECT_LT(staged.stats.global_load_transactions,
            fits.stats.global_load_transactions);
  EXPECT_TRUE(bit_equal(staged.out, fits.out));
}

TEST(AttentionGpu, GridTunerSearchesTheGpuAttentionAxis) {
  const Fixture& f = Fixture::get();
  AttentionOperands operands;
  operands.src_feat = &f.x;
  auto tuned = fg::core::tune_attention_gpu(
      f.in_csr, "copy_u", operands,
      fg::core::default_gpu_attention_candidates());
  EXPECT_FALSE(tuned.trials.empty());
  for (const auto& t : tuned.trials)
    EXPECT_LE(tuned.best_seconds, t.seconds);
  // The winner is at least as good as the untuned default schedule.
  const double default_cost =
      fg::gpusim::attention_gpu(f.in_csr, "copy_u", {}, operands).cost.total_s;
  EXPECT_LE(tuned.best_seconds, default_cost);
  // The cached entry point returns a schedule with the winning cost.
  const fg::core::GpuSpmmSchedule best =
      fg::core::tuned_gpu_attention_schedule(f.in_csr, "copy_u", operands);
  const double best_cost =
      fg::gpusim::attention_gpu(f.in_csr, "copy_u", best, operands)
          .cost.total_s;
  EXPECT_DOUBLE_EQ(best_cost, tuned.best_seconds);
}

TEST(AttentionGpu, SmartTunerClimbsTheGpuAttentionLattice) {
  const Fixture& f = Fixture::get();
  AttentionOperands operands;
  operands.src_feat = &f.x;
  const auto measure =
      fg::core::gpu_attention_measure_fn(f.in_csr, "copy_u", operands);
  fg::core::SmartTuneOptions options;
  options.max_trials = 10;
  const auto result = fg::core::smart_tune_gpu_attention(measure, options);
  EXPECT_LE(result.trials_used, options.max_trials);
  EXPECT_GE(result.trials_used, 1);
  // The first seed is the default lattice point, so the winner can only
  // improve on it.
  fg::core::GpuSpmmSchedule seed;
  seed.hybrid_partition = true;
  EXPECT_LE(result.best_seconds, measure(seed));
  // Deterministic objective + fixed seed => reproducible search.
  const auto again = fg::core::smart_tune_gpu_attention(measure, options);
  EXPECT_DOUBLE_EQ(again.best_seconds, result.best_seconds);
}
