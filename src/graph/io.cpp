#include "graph/io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "support/check.hpp"

namespace featgraph::graph {

namespace {

constexpr char kMagic[4] = {'F', 'G', 'C', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_exact(std::FILE* f, const void* data, std::size_t bytes) {
  FG_CHECK_MSG(std::fwrite(data, 1, bytes, f) == bytes, "short write");
}

void read_exact(std::FILE* f, void* data, std::size_t bytes) {
  FG_CHECK_MSG(std::fread(data, 1, bytes, f) == bytes, "short read");
}

}  // namespace

void save_coo(const Coo& coo, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  FG_CHECK_MSG(f != nullptr, "cannot open graph file for writing");
  write_exact(f.get(), kMagic, sizeof(kMagic));
  write_exact(f.get(), &coo.num_src, sizeof(coo.num_src));
  write_exact(f.get(), &coo.num_dst, sizeof(coo.num_dst));
  const eid_t m = coo.num_edges();
  write_exact(f.get(), &m, sizeof(m));
  if (m > 0) {
    write_exact(f.get(), coo.src.data(), sizeof(vid_t) * static_cast<std::size_t>(m));
    write_exact(f.get(), coo.dst.data(), sizeof(vid_t) * static_cast<std::size_t>(m));
  }
}

Coo load_coo(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  FG_CHECK_MSG(f != nullptr, "cannot open graph file for reading");
  char magic[4];
  read_exact(f.get(), magic, sizeof(magic));
  FG_CHECK_MSG(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "not a FeatGraph graph file (bad magic)");
  Coo coo;
  read_exact(f.get(), &coo.num_src, sizeof(coo.num_src));
  read_exact(f.get(), &coo.num_dst, sizeof(coo.num_dst));
  FG_CHECK_MSG(coo.num_src >= 0 && coo.num_dst >= 0, "corrupt header");
  eid_t m = 0;
  read_exact(f.get(), &m, sizeof(m));
  FG_CHECK_MSG(m >= 0, "corrupt edge count");
  coo.src.resize(static_cast<std::size_t>(m));
  coo.dst.resize(static_cast<std::size_t>(m));
  if (m > 0) {
    read_exact(f.get(), coo.src.data(), sizeof(vid_t) * static_cast<std::size_t>(m));
    read_exact(f.get(), coo.dst.data(), sizeof(vid_t) * static_cast<std::size_t>(m));
  }
  for (eid_t e = 0; e < m; ++e) {
    FG_CHECK_MSG(coo.src[static_cast<std::size_t>(e)] >= 0 &&
                     coo.src[static_cast<std::size_t>(e)] < coo.num_src &&
                     coo.dst[static_cast<std::size_t>(e)] >= 0 &&
                     coo.dst[static_cast<std::size_t>(e)] < coo.num_dst,
                 "edge endpoint out of range in graph file");
  }
  return coo;
}

bool is_featgraph_file(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;
  char magic[4];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic))
    return false;
  return std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace featgraph::graph
