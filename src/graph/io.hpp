// Binary graph serialization: regenerate-once, load-many for the benchmark
// harness, and a stable on-disk interchange format for downstream users.
//
// Format (little-endian):
//   magic "FGC1" | num_src i32 | num_dst i32 | num_edges i64
//   | src vid_t[num_edges] | dst vid_t[num_edges]
#pragma once

#include <string>

#include "graph/csr.hpp"

namespace featgraph::graph {

/// Writes the edge list to `path`; aborts via FG_CHECK on I/O failure.
void save_coo(const Coo& coo, const std::string& path);

/// Reads an edge list written by save_coo. Validates the magic/bounds.
Coo load_coo(const std::string& path);

/// True when `path` exists and carries the FGC1 magic.
bool is_featgraph_file(const std::string& path);

}  // namespace featgraph::graph
