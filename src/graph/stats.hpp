// Graph statistics: the structural properties FeatGraph's optimizations key
// on. Degree skew decides whether hybrid partitioning pays (Sec. III-C-3);
// source reuse (average degree) decides how much partitioning + tiling can
// save (Table V); locality structure decides Hilbert-order gains.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace featgraph::graph {

struct DegreeStats {
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  std::int64_t median = 0;
  std::int64_t p99 = 0;
  /// Gini coefficient of the degree distribution in [0, 1):
  /// 0 = perfectly uniform, ->1 = all edges on one vertex.
  double gini = 0.0;
};

/// Statistics over the out-degrees of the sources referenced by an in-CSR
/// (i.e. column reference counts — the reuse distribution).
DegreeStats source_degree_stats(const Csr& in_csr);

/// Fraction of edges whose source is in the top `quantile` of the degree
/// distribution — the share of traffic hybrid partitioning can stage.
double high_degree_edge_fraction(const Csr& in_csr, double quantile);

/// Human-readable one-line summary.
std::string describe(const DegreeStats& stats);

}  // namespace featgraph::graph
