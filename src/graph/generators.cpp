#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace featgraph::graph {

namespace {

Coo from_out_degrees(const std::vector<std::int64_t>& out_degree, vid_t n,
                     support::Rng& rng) {
  Coo coo;
  coo.num_src = n;
  coo.num_dst = n;
  std::int64_t m = 0;
  for (std::int64_t d : out_degree) m += d;
  coo.src.reserve(static_cast<std::size_t>(m));
  coo.dst.reserve(static_cast<std::size_t>(m));
  for (vid_t u = 0; u < n; ++u) {
    for (std::int64_t k = 0; k < out_degree[static_cast<std::size_t>(u)]; ++k) {
      coo.src.push_back(u);
      coo.dst.push_back(static_cast<vid_t>(rng.uniform(static_cast<std::uint64_t>(n))));
    }
  }
  return coo;
}

}  // namespace

Coo gen_uniform(vid_t n, double avg_degree, std::uint64_t seed) {
  FG_CHECK(n > 0 && avg_degree >= 0.0);
  support::Rng rng(seed);
  const eid_t m = static_cast<eid_t>(static_cast<double>(n) * avg_degree);
  Coo coo;
  coo.num_src = n;
  coo.num_dst = n;
  coo.src.resize(static_cast<std::size_t>(m));
  coo.dst.resize(static_cast<std::size_t>(m));
  for (eid_t e = 0; e < m; ++e) {
    coo.src[static_cast<std::size_t>(e)] =
        static_cast<vid_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    coo.dst[static_cast<std::size_t>(e)] =
        static_cast<vid_t>(rng.uniform(static_cast<std::uint64_t>(n)));
  }
  return coo;
}

Coo gen_two_class(vid_t n_high, std::int64_t deg_high, vid_t n_low,
                  std::int64_t deg_low, std::uint64_t seed) {
  FG_CHECK(n_high >= 0 && n_low >= 0 && n_high + n_low > 0);
  support::Rng rng(seed);
  const vid_t n = n_high + n_low;
  std::vector<std::int64_t> out_degree(static_cast<std::size_t>(n));
  // High-degree vertices come first; gpusim's hybrid partitioning re-derives
  // the split from actual degrees, not from this ordering.
  for (vid_t u = 0; u < n_high; ++u)
    out_degree[static_cast<std::size_t>(u)] = deg_high;
  for (vid_t u = n_high; u < n; ++u)
    out_degree[static_cast<std::size_t>(u)] = deg_low;
  return from_out_degrees(out_degree, n, rng);
}

Coo gen_lognormal(vid_t n, double avg_degree, double sigma,
                  std::uint64_t seed) {
  FG_CHECK(n > 0 && avg_degree > 0.0 && sigma >= 0.0);
  support::Rng rng(seed);
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); pick mu for the target
  // average, then round per-vertex draws.
  const double mu = std::log(avg_degree) - 0.5 * sigma * sigma;
  std::vector<std::int64_t> out_degree(static_cast<std::size_t>(n));
  for (vid_t u = 0; u < n; ++u) {
    const double d = rng.lognormal(mu, sigma);
    out_degree[static_cast<std::size_t>(u)] =
        static_cast<std::int64_t>(std::llround(std::max(1.0, d)));
  }
  return from_out_degrees(out_degree, n, rng);
}

Coo gen_community(vid_t n, double avg_degree, int num_communities, double p_in,
                  std::uint64_t seed) {
  FG_CHECK(n > 0 && num_communities > 0 && p_in >= 0.0 && p_in <= 1.0);
  support::Rng rng(seed);
  const vid_t comm_size =
      static_cast<vid_t>((n + num_communities - 1) / num_communities);
  const eid_t m = static_cast<eid_t>(static_cast<double>(n) * avg_degree);
  Coo coo;
  coo.num_src = n;
  coo.num_dst = n;
  coo.src.resize(static_cast<std::size_t>(m));
  coo.dst.resize(static_cast<std::size_t>(m));
  for (eid_t e = 0; e < m; ++e) {
    const vid_t u = static_cast<vid_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    vid_t v;
    if (rng.uniform_real() < p_in) {
      const vid_t base = (u / comm_size) * comm_size;
      const vid_t span = std::min<vid_t>(comm_size, n - base);
      v = base + static_cast<vid_t>(rng.uniform(static_cast<std::uint64_t>(span)));
    } else {
      v = static_cast<vid_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    }
    coo.src[static_cast<std::size_t>(e)] = u;
    coo.dst[static_cast<std::size_t>(e)] = v;
  }
  return coo;
}

Coo gen_rmat(vid_t n, double avg_degree, std::uint64_t seed) {
  // 2^30 bound: the next doubling would overflow the signed 32-bit vid_t.
  FG_CHECK(n > 0 && n <= (vid_t{1} << 30) && avg_degree >= 0.0);
  support::Rng rng(seed);
  vid_t size = 1;
  int levels = 0;
  while (size < n) {
    size <<= 1;
    ++levels;
  }
  const eid_t m = static_cast<eid_t>(static_cast<double>(size) * avg_degree);
  Coo coo;
  coo.num_src = size;
  coo.num_dst = size;
  coo.src.resize(static_cast<std::size_t>(m));
  coo.dst.resize(static_cast<std::size_t>(m));
  // Graph500 quadrant probabilities; cumulative thresholds for one draw.
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
  for (eid_t e = 0; e < m; ++e) {
    vid_t u = 0, v = 0;
    for (int level = 0; level < levels; ++level) {
      const double r = rng.uniform_real();
      const vid_t bit = static_cast<vid_t>(1) << (levels - 1 - level);
      if (r < kA) {
        // top-left: neither bit set
      } else if (r < kA + kB) {
        v |= bit;
      } else if (r < kA + kB + kC) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    coo.src[static_cast<std::size_t>(e)] = u;
    coo.dst[static_cast<std::size_t>(e)] = v;
  }
  return coo;
}

}  // namespace featgraph::graph
