#include "graph/reorder.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace featgraph::graph {

HybridSplit split_by_degree(const Csr& in_csr, std::int64_t degree_threshold) {
  HybridSplit split;
  split.degree_threshold = degree_threshold;
  split.is_high.assign(static_cast<std::size_t>(in_csr.num_cols), 0);
  const std::vector<std::int64_t> counts = column_counts(in_csr);
  for (vid_t c = 0; c < in_csr.num_cols; ++c) {
    if (counts[static_cast<std::size_t>(c)] >= degree_threshold) {
      split.is_high[static_cast<std::size_t>(c)] = 1;
      split.high_vertices.push_back(c);
      split.high_nnz += counts[static_cast<std::size_t>(c)];
    }
  }
  return split;
}

std::int64_t degree_threshold_by_quantile(const Csr& in_csr, double quantile) {
  FG_CHECK(quantile >= 0.0 && quantile <= 1.0);
  std::vector<std::int64_t> counts = column_counts(in_csr);
  if (counts.empty()) return 0;
  std::sort(counts.begin(), counts.end());
  // floor(q * n) so that exactly the top (1-q) fraction sits at or above the
  // returned threshold (q = 0.8 over 20/80 split -> the high class).
  const auto idx = std::min(
      counts.size() - 1,
      static_cast<std::size_t>(quantile * static_cast<double>(counts.size())));
  return counts[idx];
}

}  // namespace featgraph::graph
