// Named evaluation datasets (paper Table II), regenerated synthetically at a
// configurable scale.
//
//   dataset        |V|      |E|     avg degree   shape
//   ogbn-proteins  132.5K   79.1M   597          skewed (lognormal-like)
//   reddit         233.0K   114.8M  493          community structure + skew
//   rand-100K      100.0K   48.0M   480          20K deg-2000 + 80K deg-100
//
// `scale` multiplies vertex counts; average degree is scaled by
// min(1, 4*scale) so scaled-down graphs keep substantial reuse per source
// (the property the CPU cache optimizations exploit) without the quadratic
// edge blow-up of full-degree graphs.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace featgraph::graph {

struct Dataset {
  std::string name;
  Graph graph;
};

/// Degree multiplier applied alongside a vertex-count scale factor.
double degree_scale_for(double scale);

Dataset make_proteins_like(double scale);
Dataset make_reddit_like(double scale);
Dataset make_rand_100k(double scale);

/// The paper's standard trio, in Table II order.
std::vector<Dataset> standard_datasets(double scale);

/// Table V's uniform graph: 100K * scale vertices at the given density
/// (fraction of nonzeros in the adjacency matrix; sparsity = 1 - density).
Dataset make_uniform_density(double scale, double density);

}  // namespace featgraph::graph
