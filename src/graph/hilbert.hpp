// Hilbert-curve edge ordering (paper Sec. III-C-1).
//
// Edge-wise computations (SDDMM) read BOTH endpoint feature rows. Visiting
// edges in Hilbert-curve order of their (src, dst) coordinates keeps recently
// touched source AND destination rows hot across a spectrum of cache levels,
// which neither row-major nor column-major edge order achieves.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace featgraph::graph {

/// Distance along the Hilbert curve of order `order` (a 2^order x 2^order
/// grid) for the cell (x, y). Standard bit-twiddling construction.
std::uint64_t hilbert_index(int order, std::uint32_t x, std::uint32_t y);

/// Permutation of edge ids [0, m) that visits edges in Hilbert order of
/// (src, dst). Deterministic; ties broken by edge id.
std::vector<eid_t> hilbert_edge_order(const Coo& coo);

/// Locality proxy used by tests/benchmarks: mean |src[i+1]-src[i]| +
/// |dst[i+1]-dst[i]| along the visit order (lower = better locality).
double edge_order_jump_distance(const Coo& coo,
                                const std::vector<eid_t>& order);

}  // namespace featgraph::graph
