// Degree-based hybrid split (paper Sec. III-C-3).
//
// On GPU, only HIGH out-degree source vertices earn their place in shared
// memory: they are re-read once per incident edge, so staging them amortizes.
// The split reorders/classifies sources by a degree threshold; gpusim's
// hybrid SpMM kernel stages exactly the high-degree class.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace featgraph::graph {

struct HybridSplit {
  std::int64_t degree_threshold = 0;
  std::vector<vid_t> high_vertices;   // sources with out-degree >= threshold
  std::vector<std::uint8_t> is_high;  // size num_cols, 1 if high-degree
  eid_t high_nnz = 0;                 // entries referencing high sources
};

/// Classifies the columns (sources) of an in-CSR by reference count.
HybridSplit split_by_degree(const Csr& in_csr, std::int64_t degree_threshold);

/// Picks the threshold as `quantile` of the column-count distribution
/// (e.g. 0.8 marks the top 20% most-referenced sources as high).
std::int64_t degree_threshold_by_quantile(const Csr& in_csr, double quantile);

}  // namespace featgraph::graph
