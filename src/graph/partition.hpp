// 1D graph partitioning (paper Sec. III-C-1, Fig. 6).
//
// Partitions the SOURCE vertices (columns of the destination-major adjacency
// CSR) into contiguous, nnz-balanced segments. During SpMM the segments are
// processed one after another, so at any instant only one segment's source
// feature rows are streamed through the cache; combined with feature
// dimension tiling this is the paper's central CPU optimization.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace featgraph::graph {

/// The slice of an in-CSR restricted to source (column) range
/// [col_begin, col_end). Row structure is preserved: segment row v lists the
/// in-neighbors of v that fall inside the column range.
struct CsrSegment {
  vid_t col_begin = 0;
  vid_t col_end = 0;
  std::vector<std::int64_t> indptr;  // size num_rows + 1
  std::vector<vid_t> indices;
  std::vector<eid_t> edge_ids;

  eid_t nnz() const { return static_cast<eid_t>(indices.size()); }
};

struct SrcPartitionedCsr {
  vid_t num_rows = 0;
  vid_t num_cols = 0;
  std::vector<CsrSegment> parts;
};

/// Splits the columns of `in_csr` into `num_parts` contiguous segments whose
/// boundaries balance nnz (so skewed graphs don't put all edges in one
/// segment). Edge order within a row is preserved across the concatenation
/// of segments.
SrcPartitionedCsr partition_by_source(const Csr& in_csr, int num_parts);

}  // namespace featgraph::graph
