// 1D graph partitioning (paper Sec. III-C-1, Fig. 6).
//
// Partitions the SOURCE vertices (columns of the destination-major adjacency
// CSR) into contiguous, nnz-balanced segments. During SpMM the segments are
// processed one after another, so at any instant only one segment's source
// feature rows are streamed through the cache; combined with feature
// dimension tiling this is the paper's central CPU optimization.
#pragma once

#include <memory>
#include <vector>

#include "graph/csr.hpp"

namespace featgraph::graph {

/// The slice of an in-CSR restricted to source (column) range
/// [col_begin, col_end). Row structure is preserved: segment row v lists the
/// in-neighbors of v that fall inside the column range.
struct CsrSegment {
  vid_t col_begin = 0;
  vid_t col_end = 0;
  std::vector<std::int64_t> indptr;  // size num_rows + 1
  std::vector<vid_t> indices;
  std::vector<eid_t> edge_ids;

  eid_t nnz() const { return static_cast<eid_t>(indices.size()); }

  /// Per-row degree SLICE of this segment (the in-degree restricted to
  /// [col_begin, col_end)), cached the same way `Csr::degrees()` is:
  /// materialized once per segment, thread-safe (racing builders both
  /// produce identical vectors, first publication wins), shared across
  /// copies. partition_by_source seeds the cache for free from its pass-1
  /// counts, so partitioned launches never recompute it.
  const std::vector<std::int64_t>& degrees() const;

  /// Cache seeding hook (partition_by_source); publishes `deg` as the
  /// segment's degree slice.
  void set_degree_cache(std::vector<std::int64_t> deg);

 private:
  mutable std::shared_ptr<const std::vector<std::int64_t>> degree_cache_;
};

struct SrcPartitionedCsr {
  vid_t num_rows = 0;
  vid_t num_cols = 0;
  std::vector<CsrSegment> parts;

  /// Full per-row degrees reassembled from the segment degree slices
  /// (sum over segments — column ranges tile [0, num_cols)), cached like
  /// `Csr::degrees()`. Partitioned SpMM postprocessing reads this instead
  /// of reaching back to the unpartitioned CSR, so a partitioning is
  /// self-contained for mean normalization and empty-row detection.
  const std::vector<std::int64_t>& row_degrees() const;

 private:
  mutable std::shared_ptr<const std::vector<std::int64_t>> row_degree_cache_;
};

/// Splits the columns of `in_csr` into `num_parts` contiguous segments whose
/// boundaries balance nnz (so skewed graphs don't put all edges in one
/// segment). Edge order within a row is preserved across the concatenation
/// of segments.
///
/// `num_threads` parallelizes the two O(V+E) passes over destination rows
/// (shard construction sits on the setup path of every sharded/partitioned
/// launch). Output is BIT-IDENTICAL to the serial build at any thread
/// count: rows are independent in both passes — pass 1 increments row-owned
/// counters, pass 2 scatters into row-owned slot ranges whose cursors no
/// other row touches — so no per-thread count arrays or merge step are
/// needed, and within-row edge order is preserved verbatim. Pinned by
/// Graph.PartitionBySourceParallelMatchesSerial.
SrcPartitionedCsr partition_by_source(const Csr& in_csr, int num_parts,
                                      int num_threads = 1);

}  // namespace featgraph::graph
