#include "graph/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "graph/reorder.hpp"
#include "support/check.hpp"

namespace featgraph::graph {

DegreeStats source_degree_stats(const Csr& in_csr) {
  DegreeStats stats;
  std::vector<std::int64_t> deg = column_counts(in_csr);
  if (deg.empty()) return stats;
  std::sort(deg.begin(), deg.end());

  stats.min = deg.front();
  stats.max = deg.back();
  stats.median = deg[deg.size() / 2];
  stats.p99 = deg[deg.size() * 99 / 100];
  const double total =
      static_cast<double>(std::accumulate(deg.begin(), deg.end(),
                                          std::int64_t{0}));
  stats.mean = total / static_cast<double>(deg.size());

  // Gini via the sorted-sum identity:
  //   G = (2 * sum_i i*x_i) / (n * sum_i x_i) - (n + 1) / n, x ascending.
  if (total > 0) {
    double weighted = 0.0;
    for (std::size_t i = 0; i < deg.size(); ++i)
      weighted += static_cast<double>(i + 1) * static_cast<double>(deg[i]);
    const double n = static_cast<double>(deg.size());
    stats.gini = 2.0 * weighted / (n * total) - (n + 1.0) / n;
  }
  return stats;
}

double high_degree_edge_fraction(const Csr& in_csr, double quantile) {
  if (in_csr.nnz() == 0) return 0.0;
  const std::int64_t threshold =
      degree_threshold_by_quantile(in_csr, quantile);
  const auto split = split_by_degree(in_csr, threshold);
  return static_cast<double>(split.high_nnz) /
         static_cast<double>(in_csr.nnz());
}

std::string describe(const DegreeStats& stats) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "deg min=%lld median=%lld mean=%.1f p99=%lld max=%lld "
                "gini=%.2f",
                static_cast<long long>(stats.min),
                static_cast<long long>(stats.median), stats.mean,
                static_cast<long long>(stats.p99),
                static_cast<long long>(stats.max), stats.gini);
  return buf;
}

}  // namespace featgraph::graph
