#include "graph/partition.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace featgraph::graph {

SrcPartitionedCsr partition_by_source(const Csr& in_csr, int num_parts) {
  FG_CHECK(num_parts >= 1);
  SrcPartitionedCsr out;
  out.num_rows = in_csr.num_rows;
  out.num_cols = in_csr.num_cols;
  out.parts.resize(static_cast<std::size_t>(num_parts));

  // nnz-balanced column boundaries from the per-column reference counts.
  const std::vector<std::int64_t> col_nnz = column_counts(in_csr);
  std::vector<std::int64_t> prefix(col_nnz.size() + 1, 0);
  for (std::size_t c = 0; c < col_nnz.size(); ++c)
    prefix[c + 1] = prefix[c] + col_nnz[c];
  const std::int64_t total = prefix.back();

  std::vector<vid_t> boundary(static_cast<std::size_t>(num_parts) + 1, 0);
  boundary[static_cast<std::size_t>(num_parts)] = in_csr.num_cols;
  for (int p = 1; p < num_parts; ++p) {
    const std::int64_t target = total * p / num_parts;
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    boundary[static_cast<std::size_t>(p)] =
        static_cast<vid_t>(it - prefix.begin());
  }
  // Boundaries must be non-decreasing (lower_bound already guarantees this
  // on a non-decreasing prefix array) and clamped to the column count.
  for (int p = 0; p <= num_parts; ++p)
    boundary[static_cast<std::size_t>(p)] = std::min(
        boundary[static_cast<std::size_t>(p)], in_csr.num_cols);

  // Map each column to its partition id (columns are contiguous per part).
  std::vector<std::int32_t> part_of_col(static_cast<std::size_t>(in_csr.num_cols));
  for (int p = 0; p < num_parts; ++p)
    for (vid_t c = boundary[static_cast<std::size_t>(p)];
         c < boundary[static_cast<std::size_t>(p) + 1]; ++c)
      part_of_col[static_cast<std::size_t>(c)] = p;

  // Pass 1: per-part per-row entry counts.
  for (int p = 0; p < num_parts; ++p) {
    auto& seg = out.parts[static_cast<std::size_t>(p)];
    seg.col_begin = boundary[static_cast<std::size_t>(p)];
    seg.col_end = boundary[static_cast<std::size_t>(p) + 1];
    seg.indptr.assign(static_cast<std::size_t>(in_csr.num_rows) + 1, 0);
  }
  for (vid_t row = 0; row < in_csr.num_rows; ++row) {
    for (std::int64_t i = in_csr.indptr[static_cast<std::size_t>(row)];
         i < in_csr.indptr[static_cast<std::size_t>(row) + 1]; ++i) {
      const int p = part_of_col[static_cast<std::size_t>(
          in_csr.indices[static_cast<std::size_t>(i)])];
      ++out.parts[static_cast<std::size_t>(p)]
            .indptr[static_cast<std::size_t>(row) + 1];
    }
  }
  for (auto& seg : out.parts) {
    for (vid_t r = 0; r < in_csr.num_rows; ++r)
      seg.indptr[static_cast<std::size_t>(r) + 1] +=
          seg.indptr[static_cast<std::size_t>(r)];
    seg.indices.resize(static_cast<std::size_t>(seg.indptr.back()));
    seg.edge_ids.resize(static_cast<std::size_t>(seg.indptr.back()));
  }

  // Pass 2: scatter entries, preserving within-row order.
  std::vector<std::vector<std::int64_t>> cursor(
      static_cast<std::size_t>(num_parts));
  for (int p = 0; p < num_parts; ++p) {
    const auto& seg = out.parts[static_cast<std::size_t>(p)];
    cursor[static_cast<std::size_t>(p)].assign(seg.indptr.begin(),
                                               seg.indptr.end() - 1);
  }
  for (vid_t row = 0; row < in_csr.num_rows; ++row) {
    for (std::int64_t i = in_csr.indptr[static_cast<std::size_t>(row)];
         i < in_csr.indptr[static_cast<std::size_t>(row) + 1]; ++i) {
      const vid_t col = in_csr.indices[static_cast<std::size_t>(i)];
      const int p = part_of_col[static_cast<std::size_t>(col)];
      auto& seg = out.parts[static_cast<std::size_t>(p)];
      const std::int64_t slot = cursor[static_cast<std::size_t>(p)]
                                      [static_cast<std::size_t>(row)]++;
      seg.indices[static_cast<std::size_t>(slot)] = col;
      seg.edge_ids[static_cast<std::size_t>(slot)] =
          in_csr.edge_ids[static_cast<std::size_t>(i)];
    }
  }
  return out;
}

}  // namespace featgraph::graph
