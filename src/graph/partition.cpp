#include "graph/partition.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace featgraph::graph {

const std::vector<std::int64_t>& CsrSegment::degrees() const {
  auto cached = std::atomic_load_explicit(&degree_cache_,
                                          std::memory_order_acquire);
  if (cached == nullptr) {
    const auto rows = indptr.empty() ? 0 : indptr.size() - 1;
    auto built = std::make_shared<std::vector<std::int64_t>>(rows);
    for (std::size_t r = 0; r < rows; ++r)
      (*built)[r] = indptr[r + 1] - indptr[r];
    std::shared_ptr<const std::vector<std::int64_t>> expected;
    // First writer wins; a losing racer adopts the published vector so all
    // callers see one stable address (the Csr::degrees contract).
    if (std::atomic_compare_exchange_strong_explicit(
            &degree_cache_, &expected,
            std::shared_ptr<const std::vector<std::int64_t>>(built),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      return *built;
    }
    return *expected;
  }
  return *cached;
}

void CsrSegment::set_degree_cache(std::vector<std::int64_t> deg) {
  std::atomic_store_explicit(
      &degree_cache_,
      std::shared_ptr<const std::vector<std::int64_t>>(
          std::make_shared<std::vector<std::int64_t>>(std::move(deg))),
      std::memory_order_release);
}

const std::vector<std::int64_t>& SrcPartitionedCsr::row_degrees() const {
  auto cached = std::atomic_load_explicit(&row_degree_cache_,
                                          std::memory_order_acquire);
  if (cached == nullptr) {
    auto built = std::make_shared<std::vector<std::int64_t>>(
        static_cast<std::size_t>(num_rows), 0);
    // Column ranges tile [0, num_cols), so the segment slices sum to the
    // unpartitioned CSR's degree vector exactly (pinned by
    // Sample.SegmentDegreeSlicesMatchCsrDegrees).
    for (const auto& seg : parts) {
      const auto& slice = seg.degrees();
      for (std::size_t r = 0; r < slice.size(); ++r) (*built)[r] += slice[r];
    }
    std::shared_ptr<const std::vector<std::int64_t>> expected;
    if (std::atomic_compare_exchange_strong_explicit(
            &row_degree_cache_, &expected,
            std::shared_ptr<const std::vector<std::int64_t>>(built),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      return *built;
    }
    return *expected;
  }
  return *cached;
}

SrcPartitionedCsr partition_by_source(const Csr& in_csr, int num_parts,
                                      int num_threads) {
  FG_CHECK(num_parts >= 1 && num_threads >= 1);
  // Tiny graphs: lane dispatch costs more than the passes save, and the
  // serial path is the bit-identity reference anyway.
  if (in_csr.num_rows < 4096) num_threads = 1;
  SrcPartitionedCsr out;
  out.num_rows = in_csr.num_rows;
  out.num_cols = in_csr.num_cols;
  out.parts.resize(static_cast<std::size_t>(num_parts));

  // nnz-balanced column boundaries from the per-column reference counts.
  const std::vector<std::int64_t> col_nnz = column_counts(in_csr);
  std::vector<std::int64_t> prefix(col_nnz.size() + 1, 0);
  for (std::size_t c = 0; c < col_nnz.size(); ++c)
    prefix[c + 1] = prefix[c] + col_nnz[c];
  const std::int64_t total = prefix.back();

  std::vector<vid_t> boundary(static_cast<std::size_t>(num_parts) + 1, 0);
  boundary[static_cast<std::size_t>(num_parts)] = in_csr.num_cols;
  for (int p = 1; p < num_parts; ++p) {
    const std::int64_t target = total * p / num_parts;
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    boundary[static_cast<std::size_t>(p)] =
        static_cast<vid_t>(it - prefix.begin());
  }
  // Boundaries must be non-decreasing (lower_bound already guarantees this
  // on a non-decreasing prefix array) and clamped to the column count.
  for (int p = 0; p <= num_parts; ++p)
    boundary[static_cast<std::size_t>(p)] = std::min(
        boundary[static_cast<std::size_t>(p)], in_csr.num_cols);

  // Map each column to its partition id (columns are contiguous per part).
  std::vector<std::int32_t> part_of_col(static_cast<std::size_t>(in_csr.num_cols));
  for (int p = 0; p < num_parts; ++p)
    for (vid_t c = boundary[static_cast<std::size_t>(p)];
         c < boundary[static_cast<std::size_t>(p) + 1]; ++c)
      part_of_col[static_cast<std::size_t>(c)] = p;

  // Pass 1: per-part per-row entry counts.
  for (int p = 0; p < num_parts; ++p) {
    auto& seg = out.parts[static_cast<std::size_t>(p)];
    seg.col_begin = boundary[static_cast<std::size_t>(p)];
    seg.col_end = boundary[static_cast<std::size_t>(p) + 1];
    seg.indptr.assign(static_cast<std::size_t>(in_csr.num_rows) + 1, 0);
  }
  // Rows are independent: row r only increments the seg.indptr[r + 1] slots,
  // which no other row touches — parallel over rows is race-free and
  // bit-identical to the serial loop (no per-thread count arrays to merge).
  // nnz-balanced lane boundaries: a hub row's edges dominate the pass cost.
  parallel::parallel_for_nnz_ranges(
      in_csr.indptr.data(), 0, in_csr.num_rows, num_threads,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t row = r0; row < r1; ++row) {
          for (std::int64_t i = in_csr.indptr[static_cast<std::size_t>(row)];
               i < in_csr.indptr[static_cast<std::size_t>(row) + 1]; ++i) {
            const int p = part_of_col[static_cast<std::size_t>(
                in_csr.indices[static_cast<std::size_t>(i)])];
            ++out.parts[static_cast<std::size_t>(p)]
                  .indptr[static_cast<std::size_t>(row) + 1];
          }
        }
      });
  for (auto& seg : out.parts) {
    // The pass-1 counts ARE the segment's degree slice; seed the cache from
    // them before the in-place prefix conversion destroys them, so
    // degrees() never recomputes what this loop already produced.
    seg.set_degree_cache(
        std::vector<std::int64_t>(seg.indptr.begin() + 1, seg.indptr.end()));
    for (vid_t r = 0; r < in_csr.num_rows; ++r)
      seg.indptr[static_cast<std::size_t>(r) + 1] +=
          seg.indptr[static_cast<std::size_t>(r)];
    seg.indices.resize(static_cast<std::size_t>(seg.indptr.back()));
    seg.edge_ids.resize(static_cast<std::size_t>(seg.indptr.back()));
  }

  // Pass 2: scatter entries, preserving within-row order.
  std::vector<std::vector<std::int64_t>> cursor(
      static_cast<std::size_t>(num_parts));
  for (int p = 0; p < num_parts; ++p) {
    const auto& seg = out.parts[static_cast<std::size_t>(p)];
    cursor[static_cast<std::size_t>(p)].assign(seg.indptr.begin(),
                                               seg.indptr.end() - 1);
  }
  // Same row-independence as pass 1: row r's scatter targets live in
  // [seg.indptr[r], seg.indptr[r+1]) per segment, exclusively owned through
  // cursor[p][r] — parallel rows write disjoint slots, and the i-ascending
  // walk inside each row preserves within-row edge order exactly.
  parallel::parallel_for_nnz_ranges(
      in_csr.indptr.data(), 0, in_csr.num_rows, num_threads,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t row = r0; row < r1; ++row) {
          for (std::int64_t i = in_csr.indptr[static_cast<std::size_t>(row)];
               i < in_csr.indptr[static_cast<std::size_t>(row) + 1]; ++i) {
            const vid_t col = in_csr.indices[static_cast<std::size_t>(i)];
            const int p = part_of_col[static_cast<std::size_t>(col)];
            auto& seg = out.parts[static_cast<std::size_t>(p)];
            const std::int64_t slot = cursor[static_cast<std::size_t>(p)]
                                            [static_cast<std::size_t>(row)]++;
            seg.indices[static_cast<std::size_t>(slot)] = col;
            seg.edge_ids[static_cast<std::size_t>(slot)] =
                in_csr.edge_ids[static_cast<std::size_t>(i)];
          }
        }
      });
  return out;
}

}  // namespace featgraph::graph
