#include "graph/hilbert.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace featgraph::graph {

std::uint64_t hilbert_index(int order, std::uint32_t x, std::uint32_t y) {
  FG_CHECK(order > 0 && order <= 32);
  std::uint64_t rx, ry, d = 0;
  for (std::uint64_t s = std::uint64_t{1} << (order - 1); s > 0; s >>= 1) {
    rx = (x & s) > 0 ? 1 : 0;
    ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = static_cast<std::uint32_t>(s - 1 - x);
        y = static_cast<std::uint32_t>(s - 1 - y);
      }
      std::swap(x, y);
    }
  }
  return d;
}

std::vector<eid_t> hilbert_edge_order(const Coo& coo) {
  const eid_t m = coo.num_edges();
  int order = 1;
  const std::uint32_t n =
      static_cast<std::uint32_t>(std::max(coo.num_src, coo.num_dst));
  while ((std::uint32_t{1} << order) < n) ++order;

  std::vector<std::pair<std::uint64_t, eid_t>> keyed(
      static_cast<std::size_t>(m));
  for (eid_t e = 0; e < m; ++e) {
    keyed[static_cast<std::size_t>(e)] = {
        hilbert_index(order,
                      static_cast<std::uint32_t>(coo.src[static_cast<std::size_t>(e)]),
                      static_cast<std::uint32_t>(coo.dst[static_cast<std::size_t>(e)])),
        e};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<eid_t> perm(static_cast<std::size_t>(m));
  for (eid_t i = 0; i < m; ++i)
    perm[static_cast<std::size_t>(i)] = keyed[static_cast<std::size_t>(i)].second;
  return perm;
}

double edge_order_jump_distance(const Coo& coo,
                                const std::vector<eid_t>& order) {
  if (order.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    const auto a = static_cast<std::size_t>(order[i - 1]);
    const auto b = static_cast<std::size_t>(order[i]);
    total += std::abs(static_cast<double>(coo.src[a]) - coo.src[b]) +
             std::abs(static_cast<double>(coo.dst[a]) - coo.dst[b]);
  }
  return total / static_cast<double>(order.size() - 1);
}

}  // namespace featgraph::graph
