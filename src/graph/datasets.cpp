#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "support/check.hpp"

namespace featgraph::graph {

namespace {

vid_t scaled(double base, double scale) {
  return static_cast<vid_t>(std::max(64.0, std::round(base * scale)));
}

}  // namespace

double degree_scale_for(double scale) {
  return std::clamp(4.0 * scale, 0.02, 1.0);
}

Dataset make_proteins_like(double scale) {
  const double ds = degree_scale_for(scale);
  Coo coo = gen_lognormal(scaled(132500, scale), 597.0 * ds,
                          /*sigma=*/1.1, /*seed=*/11);
  return Dataset{"ogbn-proteins", Graph(std::move(coo))};
}

Dataset make_reddit_like(double scale) {
  const double ds = degree_scale_for(scale);
  Coo coo = gen_community(scaled(233000, scale), 493.0 * ds,
                          /*num_communities=*/50, /*p_in=*/0.7, /*seed=*/22);
  return Dataset{"reddit", Graph(std::move(coo))};
}

Dataset make_rand_100k(double scale) {
  const double ds = degree_scale_for(scale);
  const vid_t n_high = scaled(20000, scale);
  const vid_t n_low = scaled(80000, scale);
  const auto deg_high = static_cast<std::int64_t>(std::max(8.0, 2000.0 * ds));
  const auto deg_low = static_cast<std::int64_t>(std::max(1.0, 100.0 * ds));
  Coo coo = gen_two_class(n_high, deg_high, n_low, deg_low, /*seed=*/33);
  return Dataset{"rand-100K", Graph(std::move(coo))};
}

std::vector<Dataset> standard_datasets(double scale) {
  std::vector<Dataset> ds;
  ds.push_back(make_proteins_like(scale));
  ds.push_back(make_reddit_like(scale));
  ds.push_back(make_rand_100k(scale));
  return ds;
}

Dataset make_uniform_density(double scale, double density) {
  FG_CHECK(density > 0.0 && density <= 1.0);
  const vid_t n = scaled(100000, scale);
  const double avg_degree = density * static_cast<double>(n);
  Coo coo = gen_uniform(n, avg_degree, /*seed=*/44);
  return Dataset{"uniform", Graph(std::move(coo))};
}

}  // namespace featgraph::graph
