// Sparse graph representations.
//
// A GNN graph is an adjacency matrix A (paper Sec. II-A): row v of A holds
// the in-neighbors of destination v. Generalized SpMM iterates rows of the
// destination-major CSR ("in-CSR"); generalized SDDMM iterates edges.
// `edge_ids` keeps the original COO edge index for every CSR entry so edge
// feature tensors (indexed by edge id) stay valid under any reordering.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace featgraph::graph {

using vid_t = std::int32_t;  // vertex id
using eid_t = std::int64_t;  // edge id / nnz index

/// Process-unique id stamped on every graph structure at construction.
/// Caches (partitionings, Hilbert orders, tuned schedules) key on this id:
/// unlike an address, a uid is never reused after the structure dies, so a
/// new graph allocated at a recycled address cannot alias a stale cache
/// entry. Copies share the uid (identical content, shared cache entries);
/// structures are treated as immutable once built.
std::uint64_t next_structure_uid();

/// Edge list: edge e points src[e] -> dst[e].
struct Coo {
  vid_t num_src = 0;
  vid_t num_dst = 0;
  std::vector<vid_t> src;
  std::vector<vid_t> dst;
  std::uint64_t uid = next_structure_uid();

  eid_t num_edges() const { return static_cast<eid_t>(src.size()); }
};

/// Compressed sparse rows with per-entry original edge ids.
struct Csr {
  vid_t num_rows = 0;
  vid_t num_cols = 0;
  std::vector<std::int64_t> indptr;  // size num_rows + 1
  std::vector<vid_t> indices;        // size nnz
  std::vector<eid_t> edge_ids;       // size nnz, original COO edge index
  std::uint64_t uid = next_structure_uid();

  eid_t nnz() const { return static_cast<eid_t>(indices.size()); }
  std::int64_t degree(vid_t row) const {
    return indptr[static_cast<std::size_t>(row) + 1] -
           indptr[static_cast<std::size_t>(row)];
  }

  /// The full per-row degree vector, materialized once per structure and
  /// cached (SpMM postprocessing reads it on every call; recomputing it
  /// serially each time was a measurable per-call tax). Thread-safe: two
  /// racing callers may both build the vector, one result wins, both are
  /// identical. Copies of the Csr share the cache (structures are immutable
  /// once built — the same contract the uid relies on).
  const std::vector<std::int64_t>& degrees() const;

  Csr() = default;
  /// Copying must read the source's cache atomically: a copy may race with
  /// a concurrent first degrees() call publishing into the source.
  Csr(const Csr& other);
  Csr& operator=(const Csr& other);
  /// Moving implies exclusive ownership of the source (moving a structure
  /// other threads are reading would gut its arrays regardless of the
  /// cache), so the default member-wise move is safe.
  Csr(Csr&&) noexcept = default;
  Csr& operator=(Csr&&) noexcept = default;

 private:
  mutable std::shared_ptr<const std::vector<std::int64_t>> degree_cache_;
};

/// Destination-major CSR: row = dst, column = src ("pull" direction, the
/// layout of the adjacency matrix A in Equation (3)).
Csr coo_to_in_csr(const Coo& coo);

/// Source-major CSR: row = src, column = dst ("push" direction). Used for
/// gradient kernels: grad of SpMM w.r.t. X runs over the reversed graph.
Csr coo_to_out_csr(const Coo& coo);

/// Swaps rows and columns (in-CSR <-> out-CSR of the same COO).
Csr transpose(const Csr& csr);

/// Per-column reference counts (= out-degree of each source in an in-CSR).
std::vector<std::int64_t> column_counts(const Csr& csr);

/// Bundles the COO with both CSR orientations, built once.
class Graph {
 public:
  explicit Graph(Coo coo);

  vid_t num_vertices() const { return coo_.num_src; }
  eid_t num_edges() const { return coo_.num_edges(); }
  double average_degree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_vertices();
  }

  const Coo& coo() const { return coo_; }
  const Csr& in_csr() const { return in_csr_; }
  const Csr& out_csr() const { return out_csr_; }

 private:
  Coo coo_;
  Csr in_csr_;
  Csr out_csr_;
};

}  // namespace featgraph::graph
