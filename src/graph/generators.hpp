// Deterministic synthetic graph generators.
//
// The paper evaluates on ogbn-proteins (132.5K vertices, avg degree 597),
// reddit (233K, avg 493) and a synthetic rand-100K (20K vertices of degree
// 2000 + 80K of degree 100, built to study hybrid partitioning), plus
// uniform graphs of controlled sparsity for Table V. We regenerate all of
// them synthetically (see DESIGN.md §1): what the kernels are sensitive to
// is size, degree distribution/skew, and locality structure, which these
// generators control explicitly.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace featgraph::graph {

/// Erdos-Renyi-style multigraph: `n * avg_degree` edges with independently
/// uniform endpoints. Matches Table V's "synthetic uniform graph".
Coo gen_uniform(vid_t n, double avg_degree, std::uint64_t seed);

/// rand-100K family: `n_high` sources of out-degree `deg_high` plus `n_low`
/// sources of out-degree `deg_low`; destinations uniform. High-degree
/// sources are re-read thousands of times during aggregation, which is what
/// hybrid partitioning (Sec. III-C-3) exploits.
Coo gen_two_class(vid_t n_high, std::int64_t deg_high, vid_t n_low,
                  std::int64_t deg_low, std::uint64_t seed);

/// proteins-like: lognormal out-degrees (sigma controls skew) normalized to
/// the requested average degree; destinations uniform.
Coo gen_lognormal(vid_t n, double avg_degree, double sigma,
                  std::uint64_t seed);

/// reddit-like: vertices split into `num_communities` equal blocks;
/// each edge stays inside its source's community with probability `p_in`.
/// Community structure produces the source-locality that 1D partitioning +
/// feature tiling exploit on CPU.
Coo gen_community(vid_t n, double avg_degree, int num_communities,
                  double p_in, std::uint64_t seed);

/// R-MAT (Chakrabarti et al.): recursive quadrant descent with probabilities
/// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05), the Graph500 defaults. Produces
/// the power-law degree skew GNN benchmarks stress load balancing with.
/// `n` is rounded up to the next power of two; the returned graph has that
/// rounded vertex count and `rounded_n * avg_degree` edges — size feature
/// tensors from the returned Coo, not the requested n.
Coo gen_rmat(vid_t n, double avg_degree, std::uint64_t seed);

}  // namespace featgraph::graph
