#include "graph/csr.hpp"

#include <atomic>

#include "support/check.hpp"

namespace featgraph::graph {

std::uint64_t next_structure_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Csr::Csr(const Csr& other)
    : num_rows(other.num_rows),
      num_cols(other.num_cols),
      indptr(other.indptr),
      indices(other.indices),
      edge_ids(other.edge_ids),
      uid(other.uid),
      degree_cache_(std::atomic_load_explicit(&other.degree_cache_,
                                              std::memory_order_acquire)) {}

Csr& Csr::operator=(const Csr& other) {
  if (this == &other) return *this;
  num_rows = other.num_rows;
  num_cols = other.num_cols;
  indptr = other.indptr;
  indices = other.indices;
  edge_ids = other.edge_ids;
  uid = other.uid;
  std::atomic_store_explicit(
      &degree_cache_,
      std::atomic_load_explicit(&other.degree_cache_,
                                std::memory_order_acquire),
      std::memory_order_release);
  return *this;
}

const std::vector<std::int64_t>& Csr::degrees() const {
  auto cached = std::atomic_load_explicit(&degree_cache_,
                                          std::memory_order_acquire);
  if (cached == nullptr) {
    auto built = std::make_shared<std::vector<std::int64_t>>(
        static_cast<std::size_t>(num_rows));
    for (vid_t v = 0; v < num_rows; ++v)
      (*built)[static_cast<std::size_t>(v)] = degree(v);
    std::shared_ptr<const std::vector<std::int64_t>> expected;
    // First writer wins; a losing racer adopts the published vector so all
    // callers see one stable address.
    if (std::atomic_compare_exchange_strong_explicit(
            &degree_cache_, &expected,
            std::shared_ptr<const std::vector<std::int64_t>>(built),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      return *built;
    }
    return *expected;
  }
  return *cached;
}

namespace {

/// Counting sort of edges by key (either src or dst), preserving COO order
/// within a row (stable), carrying original edge ids.
Csr build_csr(vid_t num_rows, vid_t num_cols, const std::vector<vid_t>& keys,
              const std::vector<vid_t>& values) {
  const eid_t m = static_cast<eid_t>(keys.size());
  Csr csr;
  csr.num_rows = num_rows;
  csr.num_cols = num_cols;
  csr.indptr.assign(static_cast<std::size_t>(num_rows) + 1, 0);
  csr.indices.resize(static_cast<std::size_t>(m));
  csr.edge_ids.resize(static_cast<std::size_t>(m));

  for (eid_t e = 0; e < m; ++e) {
    const vid_t r = keys[static_cast<std::size_t>(e)];
    FG_CHECK_MSG(r >= 0 && r < num_rows, "edge endpoint out of range");
    ++csr.indptr[static_cast<std::size_t>(r) + 1];
  }
  for (vid_t r = 0; r < num_rows; ++r)
    csr.indptr[static_cast<std::size_t>(r) + 1] +=
        csr.indptr[static_cast<std::size_t>(r)];

  std::vector<std::int64_t> cursor(csr.indptr.begin(), csr.indptr.end() - 1);
  for (eid_t e = 0; e < m; ++e) {
    const vid_t r = keys[static_cast<std::size_t>(e)];
    const vid_t c = values[static_cast<std::size_t>(e)];
    FG_CHECK_MSG(c >= 0 && c < num_cols, "edge endpoint out of range");
    const std::int64_t slot = cursor[static_cast<std::size_t>(r)]++;
    csr.indices[static_cast<std::size_t>(slot)] = c;
    csr.edge_ids[static_cast<std::size_t>(slot)] = e;
  }
  return csr;
}

}  // namespace

Csr coo_to_in_csr(const Coo& coo) {
  return build_csr(coo.num_dst, coo.num_src, coo.dst, coo.src);
}

Csr coo_to_out_csr(const Coo& coo) {
  return build_csr(coo.num_src, coo.num_dst, coo.src, coo.dst);
}

Csr transpose(const Csr& csr) {
  const eid_t m = csr.nnz();
  Csr out;
  out.num_rows = csr.num_cols;
  out.num_cols = csr.num_rows;
  out.indptr.assign(static_cast<std::size_t>(csr.num_cols) + 1, 0);
  out.indices.resize(static_cast<std::size_t>(m));
  out.edge_ids.resize(static_cast<std::size_t>(m));

  for (eid_t i = 0; i < m; ++i)
    ++out.indptr[static_cast<std::size_t>(csr.indices[static_cast<std::size_t>(i)]) + 1];
  for (vid_t r = 0; r < out.num_rows; ++r)
    out.indptr[static_cast<std::size_t>(r) + 1] +=
        out.indptr[static_cast<std::size_t>(r)];

  std::vector<std::int64_t> cursor(out.indptr.begin(), out.indptr.end() - 1);
  for (vid_t row = 0; row < csr.num_rows; ++row) {
    for (std::int64_t i = csr.indptr[static_cast<std::size_t>(row)];
         i < csr.indptr[static_cast<std::size_t>(row) + 1]; ++i) {
      const vid_t col = csr.indices[static_cast<std::size_t>(i)];
      const std::int64_t slot = cursor[static_cast<std::size_t>(col)]++;
      out.indices[static_cast<std::size_t>(slot)] = row;
      out.edge_ids[static_cast<std::size_t>(slot)] =
          csr.edge_ids[static_cast<std::size_t>(i)];
    }
  }
  return out;
}

std::vector<std::int64_t> column_counts(const Csr& csr) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(csr.num_cols), 0);
  for (vid_t c : csr.indices) ++counts[static_cast<std::size_t>(c)];
  return counts;
}

Graph::Graph(Coo coo)
    : coo_(std::move(coo)),
      in_csr_(coo_to_in_csr(coo_)),
      out_csr_(coo_to_out_csr(coo_)) {
  FG_CHECK_MSG(coo_.num_src == coo_.num_dst,
               "GNN graphs are square: num_src must equal num_dst");
}

}  // namespace featgraph::graph
