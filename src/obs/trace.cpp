#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "support/check.hpp"
#include "support/env.hpp"

namespace featgraph::obs {

namespace {

using clock = std::chrono::steady_clock;

std::int64_t default_buffer_capacity() {
  const long v = support::env_long("FEATGRAPH_TRACE_BUFFER", 1 << 16);
  return v > 0 ? static_cast<std::int64_t>(v) : (1 << 16);
}

/// One thread's write-once span buffer. Only the owning thread writes
/// records and count_; snapshotters read count_ (acquire) and the records
/// below it, so a record is fully written before it becomes visible.
struct ThreadBuffer {
  explicit ThreadBuffer(std::int64_t capacity, int tid)
      : slots(static_cast<std::size_t>(capacity)), tid(tid) {}

  std::vector<SpanRecord> slots;
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> dropped{0};
  const int tid;
  int depth = 0;  // owner-thread only

  void record(const SpanRecord& r) {
    const std::int64_t idx = count.load(std::memory_order_relaxed);
    if (idx >= static_cast<std::int64_t>(slots.size())) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots[static_cast<std::size_t>(idx)] = r;
    count.store(idx + 1, std::memory_order_release);
  }
};

/// Process-wide stitcher. Leaky heap singleton: buffers must stay readable
/// by the atexit FEATGRAPH_TRACE writer after thread_local handles die.
class TraceRegistry {
 public:
  static TraceRegistry& instance() {
    static TraceRegistry* g = new TraceRegistry;
    return *g;
  }

  ThreadBuffer* this_thread() {
    thread_local std::shared_ptr<ThreadBuffer> local;
    if (local == nullptr) {
      std::lock_guard<std::mutex> lock(mutex_);
      const std::int64_t cap =
          test_capacity_ > 0 ? test_capacity_ : default_buffer_capacity();
      local = std::make_shared<ThreadBuffer>(
          cap, static_cast<int>(buffers_.size()));
      buffers_.push_back(local);
    }
    return local.get();
  }

  std::vector<SpanRecord> collect() const {
    std::vector<SpanRecord> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      const std::int64_t n = buf->count.load(std::memory_order_acquire);
      for (std::int64_t i = 0; i < n; ++i)
        out.push_back(buf->slots[static_cast<std::size_t>(i)]);
    }
    return out;
  }

  std::int64_t dropped() const {
    std::int64_t total = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_)
      total += buf->dropped.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      buf->count.store(0, std::memory_order_release);
      buf->dropped.store(0, std::memory_order_relaxed);
    }
  }

  void set_test_capacity(std::int64_t spans) {
    std::lock_guard<std::mutex> lock(mutex_);
    test_capacity_ = spans;
  }

  /// Trace epoch: captured once, all timestamps are relative to it.
  clock::time_point epoch() {
    std::call_once(epoch_once_, [this] { epoch_ = clock::now(); });
    return epoch_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::int64_t test_capacity_ = 0;
  std::once_flag epoch_once_;
  clock::time_point epoch_;
};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             clock::now() - TraceRegistry::instance().epoch())
      .count();
}

void set_trace_enabled(bool on) {
  detail::g_trace_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::string env_trace_path() {
  return support::env_string("FEATGRAPH_TRACE", "");
}

void atexit_write_env_trace() {
  const std::string path = env_trace_path();
  if (!path.empty()) write_chrome_trace(path);
}

void json_escape_into(std::string& out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
}

bool g_session_active = false;
std::mutex g_session_mutex;

}  // namespace

namespace detail {

std::atomic<int> g_trace_state{-1};

/// First trace_enabled() call: FEATGRAPH_TRACE=<path> turns tracing on for
/// the whole process and registers the exit-time writer.
bool trace_enabled_slow() {
  [[maybe_unused]] static const bool env_on = [] {
    const bool on = !env_trace_path().empty();
    if (on) {
      TraceRegistry::instance().epoch();  // anchor timestamps now
      std::atexit(atexit_write_env_trace);
    }
    // Publish AFTER the registry/atexit setup so racing fast paths that
    // observe the final state never miss initialization.
    g_trace_state.store(on ? 1 : 0, std::memory_order_release);
    return on;
  }();
  return g_trace_state.load(std::memory_order_relaxed) > 0;
}

}  // namespace detail

void TraceScope::begin(const char* name) {
  name_ = name;
  ThreadBuffer* buf = TraceRegistry::instance().this_thread();
  depth_ = buf->depth++;
  t0_ns_ = now_ns();
}

void TraceScope::end() {
  const std::int64_t t1 = now_ns();
  ThreadBuffer* buf = TraceRegistry::instance().this_thread();
  --buf->depth;
  SpanRecord r;
  r.name = name_;
  r.t0_ns = t0_ns_;
  r.t1_ns = t1;
  r.tid = buf->tid;
  r.depth = depth_;
  r.num_args = num_args_;
  for (int i = 0; i < num_args_; ++i) r.args[i] = args_[i];
  buf->record(r);
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  // Run the env init first: if FEATGRAPH_TRACE is set, this registers the
  // atexit writer even when a session is the process's first trace op
  // (a direct store below would otherwise skip the slow path forever).
  (void)detail::trace_enabled_slow();
  std::lock_guard<std::mutex> lock(g_session_mutex);
  FG_CHECK_MSG(!g_session_active, "nested TraceSession");
  g_session_active = true;
  TraceRegistry::instance().reset();
  set_trace_enabled(true);
}

TraceSession::~TraceSession() {
  // Env-requested process-wide tracing survives a session's end.
  set_trace_enabled(!env_trace_path().empty());
  if (!path_.empty()) write_chrome_trace(path_);
  std::lock_guard<std::mutex> lock(g_session_mutex);
  g_session_active = false;
}

std::string TraceSession::json() const { return chrome_trace_json(); }

std::vector<SpanRecord> collect_spans() {
  return TraceRegistry::instance().collect();
}

std::int64_t trace_dropped_spans() {
  return TraceRegistry::instance().dropped();
}

std::string chrome_trace_json() {
  const std::vector<SpanRecord> spans = collect_spans();
  std::string out;
  out.reserve(spans.size() * 128 + 256);
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
         "{\"dropped_spans\": ";
  out += std::to_string(trace_dropped_spans());
  out += "},\n\"traceEvents\": [";
  char buf[64];
  bool first = true;
  for (const SpanRecord& s : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": \"";
    json_escape_into(out, s.name);
    out += "\", \"cat\": \"featgraph\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(s.tid);
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(s.t0_ns) / 1e3);
    out += ", \"ts\": ";
    out += buf;
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(s.t1_ns - s.t0_ns) / 1e3);
    out += ", \"dur\": ";
    out += buf;
    out += ", \"args\": {";
    for (int i = 0; i < s.num_args; ++i) {
      if (i > 0) out += ", ";
      out += "\"";
      json_escape_into(out, s.args[i].key);
      out += "\": ";
      switch (s.args[i].kind) {
        case TraceArg::Kind::kI64:
          out += std::to_string(s.args[i].i64);
          break;
        case TraceArg::Kind::kF64:
          std::snprintf(buf, sizeof buf, "%.6g", s.args[i].f64);
          out += buf;
          break;
        case TraceArg::Kind::kStr:
          out += "\"";
          json_escape_into(out, s.args[i].str);
          out += "\"";
          break;
      }
    }
    out += "}}";
  }
  out += "\n]\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace to %s\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

void reset_trace_buffers() { TraceRegistry::instance().reset(); }

void set_trace_buffer_capacity_for_test(std::int64_t spans) {
  TraceRegistry::instance().set_test_capacity(spans);
}

}  // namespace featgraph::obs
