// Scoped-span tracing — the "where did this request's 14 ms go?" half of
// the observability layer (obs/metrics.hpp is the counter half).
//
// Design: each thread owns a write-once buffer of completed spans; emitting
// a span never takes a lock and never touches another thread's cache lines.
// A process-wide registry stitches the thread buffers into one Chrome
// trace-event JSON (load it in chrome://tracing or Perfetto) when a
// TraceSession ends or at process exit when FEATGRAPH_TRACE=<path> is set.
//
// Zero-overhead-when-off contract: FG_TRACE_SCOPE compiles to ONE relaxed
// atomic load + predictable branch when tracing is disabled — no timestamp,
// no buffer touch, no allocation. Kernel hot paths instrument at LAUNCH
// granularity (once per SpMM/SDDMM/attention call), never per edge, and the
// trace-off overhead on the SpMM hot loop is gated < 1% by
// bench_observability (the "observability" BENCH section).
//
// Determinism contract: tracing records timestamps and pre-computed values;
// it never changes what a kernel computes. Outputs are bit-identical with
// tracing on vs off (ObsDifferential.TracingChangesNoOutputBytes, per ISA).
//
// Span args are key=value pairs (int64 / double / STATIC string — the
// buffer stores the pointer, not a copy). Cheap args go through the
// variadic macro; anything expensive to compute belongs behind
// `if (scope.active())` so disabled runs never pay for it:
//
//   FG_TRACE_SCOPE("serve.sample", obs::arg("seeds", n));
//
//   obs::TraceScope ts("spmm.launch");
//   if (ts.active())
//     ts.arg("rows", adj.num_rows).arg("program", expensive_hash());
//
// Buffers are bounded (FEATGRAPH_TRACE_BUFFER spans per thread, default
// 1 << 16) and write-once: when a thread's buffer fills, further spans are
// counted as dropped rather than wrapping — so concurrent snapshotting is
// race-free (every slot is written exactly once, published by a release
// store the reader acquires), which the TSan leg exercises.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace featgraph::obs {

// --- span args --------------------------------------------------------------

struct TraceArg {
  enum class Kind : std::uint8_t { kI64, kF64, kStr };
  const char* key = nullptr;
  Kind kind = Kind::kI64;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  const char* str = nullptr;  // must outlive the session (static strings)
};

inline TraceArg arg(const char* key, std::int64_t v) {
  TraceArg a;
  a.key = key;
  a.kind = TraceArg::Kind::kI64;
  a.i64 = v;
  return a;
}
inline TraceArg arg(const char* key, int v) {
  return arg(key, static_cast<std::int64_t>(v));
}
inline TraceArg arg(const char* key, unsigned v) {
  return arg(key, static_cast<std::int64_t>(v));
}
inline TraceArg arg(const char* key, std::uint64_t v) {
  return arg(key, static_cast<std::int64_t>(v));
}
inline TraceArg arg(const char* key, double v) {
  TraceArg a;
  a.key = key;
  a.kind = TraceArg::Kind::kF64;
  a.f64 = v;
  return a;
}
inline TraceArg arg(const char* key, const char* static_str) {
  TraceArg a;
  a.key = key;
  a.kind = TraceArg::Kind::kStr;
  a.str = static_str;
  return a;
}

/// Args stored inline per span; extras beyond this are silently dropped.
inline constexpr int kMaxTraceArgs = 6;

/// One completed span as the registry stitches it (tests introspect these;
/// the JSON writer renders them as Chrome "X" complete events).
struct SpanRecord {
  const char* name = nullptr;
  std::int64_t t0_ns = 0;  // steady-clock ns since the trace epoch
  std::int64_t t1_ns = 0;
  int tid = 0;    // sequential thread index (registration order)
  int depth = 0;  // nesting depth within its thread at begin time
  int num_args = 0;
  TraceArg args[kMaxTraceArgs];
};

// --- the enabled flag -------------------------------------------------------

namespace detail {
/// -1 = not yet initialized from FEATGRAPH_TRACE, 0 = off, 1 = on.
extern std::atomic<int> g_trace_state;
bool trace_enabled_slow();
}  // namespace detail

/// The one branch every disabled FG_TRACE_SCOPE pays.
inline bool trace_enabled() {
  const int v = detail::g_trace_state.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return detail::trace_enabled_slow();
}

// --- scoped spans -----------------------------------------------------------

/// RAII span: records [construction, destruction) into the calling thread's
/// buffer when tracing is enabled, else does nothing beyond the
/// trace_enabled() branch. Not copyable/movable; stack-scoped only.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (trace_enabled()) begin(name);
  }
  template <class... Args>
  TraceScope(const char* name, const Args&... args) {
    if (trace_enabled()) {
      begin(name);
      (add_arg(args), ...);
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) end();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// True when this span is being recorded — guard expensive arg
  /// computations on it.
  bool active() const { return name_ != nullptr; }

  /// Attaches one arg (no-op when inactive). Chainable.
  TraceScope& arg(const char* key, std::int64_t v) {
    if (name_ != nullptr) add_arg(obs::arg(key, v));
    return *this;
  }
  TraceScope& arg(const char* key, int v) {
    return arg(key, static_cast<std::int64_t>(v));
  }
  TraceScope& arg(const char* key, double v) {
    if (name_ != nullptr) add_arg(obs::arg(key, v));
    return *this;
  }
  TraceScope& arg(const char* key, const char* static_str) {
    if (name_ != nullptr) add_arg(obs::arg(key, static_str));
    return *this;
  }

 private:
  void begin(const char* name);
  void end();
  void add_arg(const TraceArg& a) {
    if (num_args_ < kMaxTraceArgs) args_[num_args_++] = a;
  }

  const char* name_ = nullptr;
  std::int64_t t0_ns_ = 0;
  int depth_ = 0;
  int num_args_ = 0;
  TraceArg args_[kMaxTraceArgs];
};

#define FG_TRACE_CONCAT_IMPL(a, b) a##b
#define FG_TRACE_CONCAT(a, b) FG_TRACE_CONCAT_IMPL(a, b)
/// FG_TRACE_SCOPE("subsystem.noun.verb"[, obs::arg("k", v), ...]) — the
/// standard span spelling. One per C++ scope; for post-hoc args use a named
/// obs::TraceScope directly.
#define FG_TRACE_SCOPE(...)                                         \
  ::featgraph::obs::TraceScope FG_TRACE_CONCAT(fg_trace_scope_,     \
                                               __LINE__)(__VA_ARGS__)

// --- sessions & export ------------------------------------------------------

/// RAII tracing window: enables span recording on construction, disables on
/// destruction and (when `path` is non-empty) writes the stitched Chrome
/// trace JSON there. Buffers are cleared on construction so a session
/// contains only its own spans. One session at a time (nesting aborts).
class TraceSession {
 public:
  explicit TraceSession(std::string path = "");
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The stitched JSON for everything recorded so far.
  std::string json() const;

 private:
  std::string path_;
};

/// Snapshot of every thread's recorded spans, stitched (registry order, then
/// buffer order — i.e. per-thread chronological). Safe to call concurrently
/// with span emission.
std::vector<SpanRecord> collect_spans();

/// Spans dropped because a thread's buffer filled.
std::int64_t trace_dropped_spans();

/// Chrome trace-event JSON of collect_spans() ("traceEvents" array of "X"
/// complete events, ts/dur in microseconds, displayTimeUnit ms).
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Test hook: clears every thread buffer (call only while no spans are
/// being emitted — the write-once invariant restarts per buffer).
void reset_trace_buffers();

/// Test hook: span capacity for buffers created AFTER this call (new
/// threads). 0 restores the FEATGRAPH_TRACE_BUFFER / default capacity.
void set_trace_buffer_capacity_for_test(std::int64_t spans);

}  // namespace featgraph::obs
