#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/check.hpp"
#include "support/table.hpp"

namespace featgraph::obs {

double HistogramSnapshot::percentile(double p) const {
  if (total <= 0) return 0.0;
  // Nearest rank, exactly as serve::percentile: ceil(p/100 * n), 1-indexed.
  const double raw = p / 100.0 * static_cast<double>(total);
  std::int64_t rank = static_cast<std::int64_t>(std::ceil(raw));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::int64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cum += counts[b];
    if (cum >= rank)
      return b < bounds.size() ? bounds[b]
                               : (bounds.empty() ? 0.0 : bounds.back());
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  FG_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  FG_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
  counts_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto b = static_cast<std::size_t>(it - bounds_.begin());
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  s.total = total_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& default_latency_buckets_s() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1e-6; decade < 20.0; decade *= 10.0)
      for (double m : {1.0, 2.0, 5.0}) b.push_back(decade * m);
    return b;
  }();
  return bounds;
}

MetricsSnapshot MetricsSnapshot::since(const MetricsSnapshot& baseline) const {
  MetricsSnapshot d;
  for (const auto& [name, v] : counters) {
    const auto it = baseline.counters.find(name);
    const std::int64_t delta = v - (it != baseline.counters.end() ? it->second : 0);
    if (delta != 0) d.counters.emplace(name, delta);
  }
  d.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    const auto it = baseline.histograms.find(name);
    if (it == baseline.histograms.end()) {
      if (h.total > 0) d.histograms.emplace(name, h);
      continue;
    }
    HistogramSnapshot delta = h;
    delta.total -= it->second.total;
    delta.sum -= it->second.sum;
    for (std::size_t b = 0;
         b < delta.counts.size() && b < it->second.counts.size(); ++b)
      delta.counts[b] -= it->second.counts[b];
    if (delta.total > 0) d.histograms.emplace(name, delta);
  }
  return d;
}

Registry& Registry::global() {
  // Leaky heap singleton: detached lanes and atexit writers may still bump
  // counters after main() returns.
  static Registry* g = new Registry;
  return *g;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  FG_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "metric name already registered as a different kind");
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  FG_CHECK_MSG(counters_.find(name) == counters_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "metric name already registered as a different kind");
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  return histogram(name, default_latency_buckets_s());
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  FG_CHECK_MSG(counters_.find(name) == counters_.end() &&
                   gauges_.find(name) == gauges_.end(),
               "metric name already registered as a different kind");
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) s.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_)
    s.histograms.emplace(name, h->snapshot());
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

namespace {

std::string format_count(std::int64_t v) { return std::to_string(v); }

std::string format_seconds(double s) {
  char buf[32];
  if (s < 1e-3)
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  else if (s < 1.0)
    std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  return buf;
}

}  // namespace

std::string render_profile_report(const MetricsSnapshot& snap) {
  std::string out = "=== profile report ===\n";
  if (!snap.counters.empty()) {
    support::Table t({"counter", "value"});
    for (const auto& [name, v] : snap.counters)
      t.add_row({name, format_count(v)});
    out += t.to_string();
  }
  if (!snap.gauges.empty()) {
    support::Table t({"gauge", "value"});
    for (const auto& [name, v] : snap.gauges)
      t.add_row({name, format_count(v)});
    out += "\n" + t.to_string();
  }
  if (!snap.histograms.empty()) {
    support::Table t({"histogram", "count", "mean", "p50", "p90", "p99"});
    for (const auto& [name, h] : snap.histograms)
      t.add_row({name, format_count(h.total), format_seconds(h.mean()),
                 format_seconds(h.percentile(50)),
                 format_seconds(h.percentile(90)),
                 format_seconds(h.percentile(99))});
    out += "\n" + t.to_string();
  }
  if (snap.counters.empty() && snap.gauges.empty() && snap.histograms.empty())
    out += "(no metrics recorded)\n";
  return out;
}

}  // namespace featgraph::obs
