// Named counters / gauges / histograms — the aggregate half of the
// observability layer (obs/trace.hpp is the per-span half).
//
// Everything is lock-free on the hot path: a Counter/Gauge is one relaxed
// atomic, a Histogram observe is one atomic bump of a fixed bucket. The
// process-wide Registry maps names to metric objects; registration takes a
// mutex once, after which call sites hold a stable reference (the idiom is
// a function-local `static obs::Counter& c = obs::Registry::global()
// .counter("spmm.launch.count");`). Registry::reset() zeroes values but
// never invalidates references.
//
// Naming scheme: `subsystem.noun.verb` — e.g. spmm.launch.count,
// serve.request.admitted, cache.feature.bytes_saved, shard.steal.count.
// Gauges name the level they report (pipeline.queue.depth); histograms the
// quantity they bin (serve.queue_latency.seconds).
//
// Snapshots are plain maps; `since(baseline)` diffs two snapshots so a
// bench or test can attribute counts to one region ("one GCN epoch", "one
// serving trace"). render_profile_report() renders a snapshot with
// support/table — the `profile report` the acceptance criteria name.
//
// Percentiles use the SAME nearest-rank definition as serve::percentile
// (server.cpp): rank = ceil(p/100 * n), 1-indexed; a histogram returns the
// upper bound of the bucket holding that rank, so values that sit exactly
// on bucket bounds reproduce the exact-values percentile
// (Metrics.HistogramPercentileMatchesServeNearestRank pins this).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace featgraph::obs {

/// Monotonic counter. add() is a relaxed fetch_add — safe from any thread,
/// including detached serving lanes racing a stats() reader.
class Counter {
 public:
  void add(std::int64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time level (queue depth, peak bytes). set/add/set_max all
/// atomic; set_max is the monotone high-water update.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void set_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

struct HistogramSnapshot {
  /// Ascending finite bucket upper bounds; counts has one extra overflow
  /// bucket for values above bounds.back().
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;
  std::int64_t total = 0;
  double sum = 0.0;

  /// Nearest-rank percentile (see file comment). Returns the containing
  /// bucket's upper bound; overflow-bucket ranks return the largest
  /// observed-bucket bound (bounds.back()). 0 on empty.
  double percentile(double p) const;
  double mean() const { return total > 0 ? sum / static_cast<double>(total) : 0.0; }
};

/// Fixed-bucket histogram. observe() is two relaxed atomic bumps plus a
/// CAS-loop sum update — no lock, no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  void observe(double v);
  HistogramSnapshot snapshot() const;
  void reset();
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;  // bounds_+1 slots
  std::atomic<std::int64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// 1-2-5 log-spaced latency bounds from 1 us to 50 s (seconds).
const std::vector<double>& default_latency_buckets_s();

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter/histogram deltas vs `baseline` (gauges pass through — a level
  /// has no meaningful delta). Names absent from the baseline keep their
  /// full value; zero-delta counters are omitted.
  MetricsSnapshot since(const MetricsSnapshot& baseline) const;
};

/// The process-wide metric registry.
class Registry {
 public:
  static Registry& global();

  /// Get-or-create by name. References are stable for the process
  /// lifetime; requesting an existing name returns the same object (a name
  /// registered as one kind aborts if re-requested as another).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Histogram with default_latency_buckets_s(), or explicit bounds.
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;
  /// Zeroes every metric's value; never removes or invalidates objects.
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Renders counters, gauges, and histogram percentiles as aligned ASCII
/// tables (support/table) — the `profile report`.
std::string render_profile_report(const MetricsSnapshot& snap);

}  // namespace featgraph::obs
