// FeatGraph — a flexible and efficient backend for graph neural network
// systems (C++ reproduction of Hu et al., SC 2020).
//
// Umbrella header: includes the full public API.
//
//   graph::Graph / datasets      graph substrate & evaluation datasets
//   core::spmm / core::sddmm     generalized sparse templates + builtin UDFs
//   core::attention              fused SDDMM -> edge-softmax -> SpMM kernel
//   core::CpuSpmmSchedule etc.   two-level schedules (template half + FDS)
//   core::tune_spmm              grid-search schedule tuner
//   gpusim::*                    GPU execution-model simulator kernels
//   baselines::*                 Ligra-, MKL-, Gunrock-, cuSPARSE-style comparators
//   minidgl::*                   miniature GNN framework (GCN/GraphSage/GAT)
//   sample::*                    minibatch neighbor sampling, MFG blocks,
//                                feature gather, pipelined serving loop
//   serve::*                     multi-tenant front-end: request coalescing,
//                                admission server, hot-vertex feature cache
#pragma once

#include "core/attention.hpp"
#include "core/schedule.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "core/tuner.hpp"
#include "core/udf.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/hilbert.hpp"
#include "graph/partition.hpp"
#include "graph/reorder.hpp"
#include "sample/block.hpp"
#include "sample/feature_loader.hpp"
#include "sample/neighbor_sampler.hpp"
#include "sample/pipeline.hpp"
#include "serve/coalescer.hpp"
#include "serve/feature_cache.hpp"
#include "serve/server.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
