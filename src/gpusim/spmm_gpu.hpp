// FeatGraph's GPU generalized-SpMM kernels on the gpusim execution model
// (paper Fig. 7a and Sec. III-C-2/3).
//
// Parallelization strategy: each CUDA block owns a contiguous chunk of
// destination rows; the feature axis is bound to the threads of the block
// (the FDS half of the schedule). Loads of a source row are therefore
// coalesced across threads, there is no control divergence and no atomics —
// the properties the paper credits for matching cuSPARSE.
//
// Hybrid partitioning (Sec. III-C-3) additionally stages high-out-degree
// source rows in shared memory: the first edge of a block that touches a
// high-degree source pays a global load + smem store, subsequent edges in
// the same block hit shared memory. When the staged set overflows the
// 96 KB/block budget the sweep splits into column partitions, re-reading
// the adjacency and merging output tiles per extra partition — the exact
// read-efficiency vs merge-cost trade-off of the paper.
#pragma once

#include <string_view>

#include "core/schedule.hpp"
#include "core/spmm.hpp"
#include "gpusim/device.hpp"

namespace featgraph::gpusim {

struct GpuKernelResult {
  tensor::Tensor out;
  KernelStats stats;
  CostBreakdown cost;

  double milliseconds() const { return cost.total_s * 1e3; }
};

/// Supported msg ops: "copy_u" (GCN aggregation), "u_mul_e" (scalar edge
/// weights), "mlp" (MLP aggregation); reducers: "sum", "max", "min", "mean".
/// Output is bit-identical to the CPU kernels; `cost` is the simulated V100
/// time under `sched`.
GpuKernelResult spmm_gpu(const graph::Csr& adj, std::string_view msg_op,
                         std::string_view reduce_op,
                         const core::GpuSpmmSchedule& sched,
                         const core::SpmmOperands& operands,
                         const DeviceSpec& spec = {});

/// Staging-tile boundaries the hybrid kernel grid-strides over: tile t owns
/// rows [b[t], b[t+1]). The tile COUNT is always ceil(num_rows /
/// rows_per_tile) — zero tiles (boundaries {0}) for an empty graph — the
/// boundaries are monotone and cover [0, num_rows] exactly; kStaticRows
/// cuts uniform chunks, kNnzBalanced places the same number of boundaries
/// with parallel::nnz_split_point so each tile owns ~equal nnz (the CPU
/// kernels' balancing reused for the GPU row assignment). Exposed for the
/// balance-quality tests.
std::vector<std::int64_t> gpu_row_tile_boundaries(
    const graph::Csr& adj, std::int64_t rows_per_tile,
    core::LoadBalance row_assignment);

}  // namespace featgraph::gpusim
