#include "gpusim/spmm_gpu.hpp"

#include <algorithm>
#include <vector>

#include "graph/reorder.hpp"
#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace featgraph::gpusim {

namespace {

/// Generated-code overhead vs hand-tuned vendor kernels (calibration
/// constant; cuSPARSE-like baseline runs at 1.0). Paper Table IV shows
/// FeatGraph ~10% behind cuSPARSE wherever hybrid partitioning brings no
/// reuse (reddit), which pins this constant.
constexpr double kGeneratedKernelOccupancy = 0.91;

/// MLP aggregation is a compound per-edge kernel (matvec + ReLU per edge);
/// its generated code sustains a small fraction of FMA peak (calibrated to
/// Table IVb's absolute scale).
constexpr double kMlpOccupancy = 0.15;

struct HybridCounters {
  double staged_bytes = 0.0;       // global loads that fill shared memory
  double smem_traffic_bytes = 0.0; // reads served by shared memory
  double unstaged_bytes = 0.0;     // regular global feature loads
  int max_column_partitions = 1;   // sweeps needed to fit smem per block
};

/// One pass over the real graph structure: per staging tile (row chunk the
/// kernel grid-strides over, boundaries from gpu_row_tile_boundaries), count
/// first-touch vs repeat accesses to high-degree source rows.
HybridCounters count_hybrid(const graph::Csr& adj,
                            const graph::HybridSplit& split, std::int64_t d,
                            const std::vector<std::int64_t>& tiles,
                            std::int64_t smem_bytes_per_block) {
  HybridCounters hc;
  const double row_bytes = static_cast<double>(d) * 4.0;
  std::vector<std::int64_t> last_block(
      static_cast<std::size_t>(adj.num_cols), -1);
  const std::int64_t num_blocks =
      static_cast<std::int64_t>(tiles.size()) - 1;
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    const std::int64_t r0 = tiles[static_cast<std::size_t>(b)];
    const std::int64_t r1 = tiles[static_cast<std::size_t>(b) + 1];
    std::int64_t unique_high = 0;
    for (std::int64_t v = r0; v < r1; ++v) {
      for (std::int64_t i = adj.indptr[v]; i < adj.indptr[v + 1]; ++i) {
        const graph::vid_t u = adj.indices[i];
        if (!split.is_high[static_cast<std::size_t>(u)]) {
          hc.unstaged_bytes += row_bytes;
          continue;
        }
        if (last_block[static_cast<std::size_t>(u)] != b) {
          last_block[static_cast<std::size_t>(u)] = b;
          ++unique_high;
          hc.staged_bytes += row_bytes;      // fill from global
          hc.smem_traffic_bytes += row_bytes;  // smem store
        }
        hc.smem_traffic_bytes += row_bytes;  // smem read on every access
      }
    }
    const double staged_block_bytes =
        static_cast<double>(unique_high) * row_bytes;
    const int parts = std::max(
        1, static_cast<int>((staged_block_bytes + smem_bytes_per_block - 1) /
                            smem_bytes_per_block));
    hc.max_column_partitions = std::max(hc.max_column_partitions, parts);
  }
  return hc;
}

}  // namespace

std::vector<std::int64_t> gpu_row_tile_boundaries(
    const graph::Csr& adj, std::int64_t rows_per_tile,
    core::LoadBalance row_assignment) {
  const std::int64_t n = adj.num_rows;
  rows_per_tile = std::max<std::int64_t>(1, rows_per_tile);
  // ceil(n / rows_per_tile) tiles, exactly as documented — for n == 0 that
  // is ZERO tiles and the single boundary {0} (the old max(1, ...) floor
  // invented a phantom tile whose [0, 0) range every sweep then visited).
  const std::int64_t num_tiles = (n + rows_per_tile - 1) / rows_per_tile;
  if (num_tiles == 0) return {0};
  std::vector<std::int64_t> tiles(static_cast<std::size_t>(num_tiles) + 1);
  for (std::int64_t t = 0; t <= num_tiles; ++t) {
    tiles[static_cast<std::size_t>(t)] =
        row_assignment == core::LoadBalance::kNnzBalanced
            ? parallel::nnz_split_point(adj.indptr.data(), 0, n,
                                        static_cast<int>(t),
                                        static_cast<int>(num_tiles))
            : std::min<std::int64_t>(t * rows_per_tile, n);
  }
  return tiles;
}

GpuKernelResult spmm_gpu(const graph::Csr& adj, std::string_view msg_op,
                         std::string_view reduce_op,
                         const core::GpuSpmmSchedule& sched,
                         const core::SpmmOperands& operands,
                         const DeviceSpec& spec) {
  GpuKernelResult result;

  // Functional execution (bit-identical to the CPU template).
  core::CpuSpmmSchedule cpu;
  cpu.num_threads = 2;
  result.out = core::spmm(adj, msg_op, reduce_op, cpu, operands);

  const std::int64_t n = adj.num_rows;
  const auto nnz = static_cast<double>(adj.nnz());
  const std::int64_t d = result.out.row_size();

  KernelStats& s = result.stats;
  s.num_blocks = sched.num_blocks;
  s.threads_per_block = sched.threads_per_block;
  s.occupancy = kGeneratedKernelOccupancy;

  // Adjacency traffic: indptr (8 B/row) + indices (4 B/entry).
  s.add_load_bytes(static_cast<double>(n) * 8.0 + nnz * 4.0);
  // Output tile stores.
  s.add_store_bytes(static_cast<double>(n) * d * 4.0);

  if (msg_op == "mlp") {
    const std::int64_t d1 = operands.src_feat->row_size();
    s.add_load_bytes(nnz * 2.0 * d1 * 4.0 +
                     static_cast<double>(d1) * d * 4.0);
    s.flops = nnz * static_cast<double>(d1) * d * 2.0 + nnz * d;
    s.occupancy = kMlpOccupancy;
    result.cost = estimate_time(s, spec);
    return result;
  }

  if (msg_op == "u_mul_e") {
    s.add_load_bytes(nnz * 4.0);  // edge scalars
    s.flops += nnz * d;           // multiplies
  }
  s.flops += nnz * d;  // reduction combines

  if (!sched.hybrid_partition) {
    // Feature-parallel loads of source rows are coalesced: one row of d
    // floats costs exactly d*4 bytes of sectors per referencing edge.
    s.add_load_bytes(nnz * d * 4.0);
  } else {
    const std::int64_t threshold = graph::degree_threshold_by_quantile(
        adj, sched.hybrid_quantile);
    const auto split = graph::split_by_degree(adj, threshold);
    const HybridCounters hc =
        count_hybrid(adj, split, d,
                     gpu_row_tile_boundaries(adj, sched.hybrid_rows_per_tile,
                                             sched.row_assignment),
                     spec.smem_bytes_per_block);
    s.add_load_bytes(hc.staged_bytes + hc.unstaged_bytes);
    s.smem_bytes += hc.smem_traffic_bytes;
    if (hc.max_column_partitions > 1) {
      // Extra sweeps: adjacency re-read plus output-tile merge traffic.
      const double extra = hc.max_column_partitions - 1;
      s.add_load_bytes(extra * (nnz * 4.0 + static_cast<double>(n) * d * 4.0));
      s.add_store_bytes(extra * static_cast<double>(n) * d * 4.0);
    }
  }

  result.cost = estimate_time(s, spec);
  return result;
}

}  // namespace featgraph::gpusim
