#include "gpusim/sddmm_gpu.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace featgraph::gpusim {

namespace {

constexpr double kGeneratedKernelOccupancy = 0.91;

}  // namespace

double serial_dot_occupancy(std::int64_t reduce_len) {
  // One thread accumulating a length-L dot needs ~L/8 extra registers for
  // unrolled loads; beyond L ~ 128 the register file limits resident warps.
  // Floor of 0.45: the kernel still runs, just with fewer warps in flight.
  if (reduce_len <= 0) return 1.0;
  return std::clamp(128.0 / static_cast<double>(reduce_len), 0.45, 1.0);
}

GpuKernelResult sddmm_gpu(const graph::Coo& coo, std::string_view edge_op,
                          const core::GpuSddmmSchedule& sched,
                          const core::SddmmOperands& operands,
                          const DeviceSpec& spec) {
  GpuKernelResult result;

  core::CpuSddmmSchedule cpu;
  cpu.num_threads = 2;
  result.out = core::sddmm(coo, edge_op, cpu, operands);

  const auto m = static_cast<double>(coo.num_edges());
  const std::int64_t d = operands.src_feat->row_size();
  const std::int64_t n_out = result.out.numel() / std::max<std::int64_t>(
                                                      1, coo.num_edges());

  KernelStats& s = result.stats;
  s.num_blocks = sched.num_blocks;
  s.threads_per_block = sched.threads_per_block;

  // Edge endpoints (two 4 B ids) + output stores.
  s.add_load_bytes(m * 8.0);
  s.add_store_bytes(m * static_cast<double>(n_out) * 4.0);
  // Both endpoint feature rows per edge. Coalesced across threads with tree
  // reduction; without it the per-thread serial scan still walks sectors in
  // order (L1 reuse), so traffic is comparable — occupancy is what differs.
  s.add_load_bytes(m * 2.0 * static_cast<double>(d) * 4.0);
  s.flops = m * 2.0 * static_cast<double>(d);

  if (sched.tree_reduce) {
    // log2(warp) shuffle/smem combine steps per edge.
    s.smem_bytes = m * 4.0 * 5.0;
    s.occupancy = kGeneratedKernelOccupancy;
  } else {
    const std::int64_t reduce_len =
        edge_op == "multihead_dot" ? operands.src_feat->shape(2)
        : (edge_op == "dot")       ? d
                                   : 1;
    s.occupancy = kGeneratedKernelOccupancy * serial_dot_occupancy(reduce_len);
  }

  result.cost = estimate_time(s, spec);
  return result;
}

}  // namespace featgraph::gpusim
