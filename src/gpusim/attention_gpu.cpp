// Fused gpusim attention — see attention_gpu.hpp for the contract.
//
// Structure mirrors spmm_gpu.cpp: functional execution delegates to the CPU
// fused kernel (bit-identical outputs by construction), while the cost
// ledger is tallied from the real graph structure in one pass over the
// staging tiles — first-touch vs repeat staging of high-degree sources,
// softmax-scratch spills, and the cross-stage feature-row reuse that the
// composed chain cannot have.
#include "gpusim/attention_gpu.hpp"

#include <algorithm>
#include <vector>

#include "graph/reorder.hpp"
#include "support/check.hpp"

namespace featgraph::gpusim {

namespace {

/// Generated-code overhead vs hand-tuned vendor kernels — the same
/// calibration constant the SpMM/SDDMM gpusim kernels use.
constexpr double kGeneratedKernelOccupancy = 0.91;

/// MLP aggregation's compound per-edge kernel sustains a small fraction of
/// FMA peak (the spmm_gpu calibration, Table IVb).
constexpr double kMlpOccupancy = 0.15;

/// Per-edge softmax arithmetic: max compare, exp (~4 flops in the polynomial
/// ledger), the denominator add, and the normalizing divide.
constexpr double kSoftmaxFlopsPerEdge = 6.0;

using tensor::Tensor;

/// Byte/flop ledger of one attention launch, resolved from msg_op and the
/// operand shapes before the tile sweep runs.
struct AttentionLedger {
  double src_bytes_per_edge = 0.0;  // q_u (+ x_u when not reused): stageable
  double edge_bytes_per_edge = 0.0; // edge features / precomputed logits
  double row_bytes = 0.0;           // k_v (+ x_v when not reused), per row
  double weight_bytes = 0.0;        // mlp weight matrix, once
  double logit_flops_per_edge = 0.0;
  double agg_flops_per_edge = 0.0;
  bool mlp = false;
};

AttentionLedger resolve_ledger(std::string_view msg_op,
                               const core::AttentionOperands& operands,
                               std::int64_t d_out, std::int64_t nnz) {
  AttentionLedger l;
  const Tensor* q =
      operands.query != nullptr ? operands.query : operands.src_feat;
  const Tensor* k = operands.key != nullptr ? operands.key : q;
  const bool dot_logit = operands.edge_logits == nullptr;
  std::int64_t d_q = 0;
  if (dot_logit) {
    FG_CHECK_MSG(q != nullptr, "attention_gpu requires query (or src_feat)");
    d_q = q->row_size();
    l.src_bytes_per_edge += static_cast<double>(d_q) * 4.0;  // q_u per edge
    l.row_bytes += static_cast<double>(d_q) * 4.0;           // k_v per row
    l.logit_flops_per_edge = 2.0 * static_cast<double>(d_q);
  } else {
    l.edge_bytes_per_edge += 4.0;  // one precomputed logit per edge
    l.logit_flops_per_edge = 1.0;  // the logit_scale multiply
  }

  const bool needs_u = msg_op != "copy_e";
  const bool needs_v = msg_op == "u_add_v" || msg_op == "u_sub_v" ||
                       msg_op == "u_mul_v" || msg_op == "u_div_v" ||
                       msg_op == "mlp";
  const bool binop = needs_v || msg_op == "u_add_e" || msg_op == "u_mul_e";
  const std::int64_t d_msg =
      msg_op == "mlp" ? operands.src_feat->row_size() : d_out;

  if (needs_u) {
    // The fusion's signature saving: when the logit query IS the message
    // source feature (classic GAT: q = k = z), the x_u row loaded for the
    // dot is REUSED by the aggregation — zero extra bytes. The composed
    // chain re-reads it in its aggregation launch.
    if (!(dot_logit && q == operands.src_feat)) {
      l.src_bytes_per_edge += static_cast<double>(d_msg) * 4.0;
    }
  }
  if (needs_v && !(dot_logit && k == operands.src_feat)) {
    l.row_bytes += static_cast<double>(d_msg) * 4.0;  // x_v once per row
  }
  if (msg_op == "copy_e" || msg_op == "u_add_e" || msg_op == "u_mul_e") {
    const Tensor& e = *operands.edge_feat;
    const std::int64_t d_e = nnz > 0 ? e.numel() / nnz : 1;
    l.edge_bytes_per_edge += static_cast<double>(d_e) * 4.0;
  }

  l.agg_flops_per_edge = 2.0 * static_cast<double>(d_out);  // alpha mul + add
  if (binop) l.agg_flops_per_edge += static_cast<double>(d_out);
  if (msg_op == "mlp") {
    l.mlp = true;
    const std::int64_t d1 = operands.src_feat->row_size();
    l.weight_bytes = static_cast<double>(d1) * d_out * 4.0;
    l.agg_flops_per_edge +=
        2.0 * static_cast<double>(d1) * d_out + static_cast<double>(d_out);
  }
  return l;
}

/// Runs the CPU fused kernel for the functional half — two host threads, the
/// default one-partition schedule, so the result is bit-identical to
/// core::attention for any thread count (threads move row ownership, never
/// per-row operation order).
core::AttentionResult functional(const graph::Csr& adj,
                                 std::string_view msg_op,
                                 const core::AttentionOperands& operands) {
  core::CpuSpmmSchedule cpu;
  cpu.num_threads = 2;
  return core::attention(adj, msg_op, cpu, operands);
}

/// Charges `s` with the adjacency traversal every attention launch pays
/// exactly once: indptr, indices, and the edge ids alpha scatters through.
void charge_adjacency(KernelStats& s, std::int64_t n, double nnz) {
  s.add_load_bytes(static_cast<double>(n) * 8.0 + nnz * 4.0 + nnz * 8.0);
}

}  // namespace

GpuAttentionResult attention_gpu(const graph::Csr& adj,
                                 std::string_view msg_op,
                                 const core::GpuSpmmSchedule& sched,
                                 const core::AttentionOperands& operands,
                                 const DeviceSpec& spec) {
  GpuAttentionResult result;
  core::AttentionResult host = functional(adj, msg_op, operands);
  result.out = std::move(host.out);
  result.alpha = std::move(host.alpha);

  const std::int64_t n = adj.num_rows;
  const auto nnz = static_cast<double>(adj.nnz());
  const std::int64_t d_out = result.out.row_size();
  const AttentionLedger ledger =
      resolve_ledger(msg_op, operands, d_out, adj.nnz());

  KernelStats& s = result.stats;
  s.num_blocks = sched.num_blocks;
  s.threads_per_block = sched.threads_per_block;
  s.occupancy = ledger.mlp ? kMlpOccupancy : kGeneratedKernelOccupancy;

  charge_adjacency(s, n, nnz);
  s.add_store_bytes(static_cast<double>(n) * d_out * 4.0 + nnz * 4.0);
  s.add_load_bytes(nnz * ledger.edge_bytes_per_edge + ledger.weight_bytes);
  s.flops = nnz * (ledger.logit_flops_per_edge + kSoftmaxFlopsPerEdge +
                   ledger.agg_flops_per_edge);

  // Shared-memory split: the softmax scratch gets `attention_softmax_smem_frac`
  // of the block budget, source staging (hybrid only) the rest.
  const double frac =
      std::clamp(sched.attention_softmax_smem_frac, 0.0, 1.0);
  const double softmax_smem =
      frac * static_cast<double>(spec.smem_bytes_per_block);
  const double stage_budget =
      sched.hybrid_partition
          ? static_cast<double>(spec.smem_bytes_per_block) - softmax_smem
          : 0.0;

  graph::HybridSplit split;
  if (sched.hybrid_partition) {
    split = graph::split_by_degree(
        adj, graph::degree_threshold_by_quantile(adj, sched.hybrid_quantile));
  }
  const std::vector<std::int64_t> tiles = gpu_row_tile_boundaries(
      adj, sched.hybrid_rows_per_tile, sched.row_assignment);
  std::vector<std::int64_t> staged_tile;
  if (sched.hybrid_partition) {
    staged_tile.assign(static_cast<std::size_t>(adj.num_cols), -1);
  }

  const std::int64_t num_tiles = static_cast<std::int64_t>(tiles.size()) - 1;
  for (std::int64_t b = 0; b < num_tiles; ++b) {
    double stage_left = stage_budget;
    for (std::int64_t v = tiles[static_cast<std::size_t>(b)];
         v < tiles[static_cast<std::size_t>(b) + 1]; ++v) {
      const std::int64_t lo = adj.indptr[static_cast<std::size_t>(v)];
      const std::int64_t hi = adj.indptr[static_cast<std::size_t>(v) + 1];
      const auto deg = static_cast<double>(hi - lo);
      if (hi == lo) continue;  // empty row: out row zeroed, nothing charged
      s.add_load_bytes(ledger.row_bytes);
      if (deg * 4.0 <= softmax_smem) {
        // Scratch-resident segment: logit write, max read, exp read+write,
        // normalize read — five smem passes.
        s.smem_bytes += 5.0 * deg * 4.0;
      } else {
        // Spilled segment: the logits round-trip global memory instead (one
        // store + exp rewrite, three read passes).
        s.add_store_bytes(2.0 * deg * 4.0);
        s.add_load_bytes(3.0 * deg * 4.0);
      }
      if (ledger.src_bytes_per_edge <= 0.0) continue;
      for (std::int64_t i = lo; i < hi; ++i) {
        const graph::vid_t u = adj.indices[static_cast<std::size_t>(i)];
        if (!sched.hybrid_partition ||
            !split.is_high[static_cast<std::size_t>(u)]) {
          s.add_load_bytes(ledger.src_bytes_per_edge);
          continue;
        }
        if (staged_tile[static_cast<std::size_t>(u)] == b) {
          s.smem_bytes += ledger.src_bytes_per_edge;  // smem hit
        } else if (stage_left >= ledger.src_bytes_per_edge) {
          // First touch with room: fill from global, store + read smem.
          staged_tile[static_cast<std::size_t>(u)] = b;
          stage_left -= ledger.src_bytes_per_edge;
          s.add_load_bytes(ledger.src_bytes_per_edge);
          s.smem_bytes += 2.0 * ledger.src_bytes_per_edge;
        } else {
          // Staging half full: a fused kernel cannot column-partition (the
          // softmax needs whole row segments), so the row is re-read from
          // global on every touch instead.
          s.add_load_bytes(ledger.src_bytes_per_edge);
        }
      }
    }
  }

  result.cost = estimate_time(s, spec);
  return result;
}

GpuKernelResult edge_softmax_gpu(const graph::Csr& adj,
                                 const tensor::Tensor& logits,
                                 const core::GpuSpmmSchedule& sched,
                                 const DeviceSpec& spec) {
  GpuKernelResult result;
  result.out = core::edge_softmax(adj, logits, 2);

  const auto nnz = static_cast<double>(adj.nnz());
  KernelStats& s = result.stats;
  s.num_blocks = sched.num_blocks;
  s.threads_per_block = sched.threads_per_block;
  s.occupancy = kGeneratedKernelOccupancy;
  // One adjacency traversal (indptr + edge ids) + three passes over the
  // |E| logits (max, exp, normalize) + the exp rewrite and alpha store.
  s.add_load_bytes(static_cast<double>(adj.num_rows) * 8.0 + nnz * 8.0 +
                   3.0 * nnz * 4.0);
  s.add_store_bytes(2.0 * nnz * 4.0);
  s.flops = kSoftmaxFlopsPerEdge * nnz;
  result.cost = estimate_time(s, spec);
  return result;
}

GpuAttentionResult attention_gpu_composed(
    const graph::Csr& adj, std::string_view msg_op,
    const core::GpuSpmmSchedule& sched,
    const core::AttentionOperands& operands, const DeviceSpec& spec) {
  GpuAttentionResult result;
  core::AttentionResult host = functional(adj, msg_op, operands);
  result.out = std::move(host.out);
  result.alpha = std::move(host.alpha);

  const std::int64_t n = adj.num_rows;
  const auto nnz = static_cast<double>(adj.nnz());
  const std::int64_t d_out = result.out.row_size();
  const AttentionLedger ledger =
      resolve_ledger(msg_op, operands, d_out, adj.nnz());

  // Count once what the per-row terms need.
  std::int64_t nonempty = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    if (adj.indptr[static_cast<std::size_t>(v) + 1] >
        adj.indptr[static_cast<std::size_t>(v)])
      ++nonempty;
  }

  const bool dot_logit = operands.edge_logits == nullptr;
  const Tensor* q =
      operands.query != nullptr ? operands.query : operands.src_feat;
  const std::int64_t d_q = dot_logit ? q->row_size() : 0;

  CostBreakdown total;
  KernelStats sum;
  sum.num_blocks = sched.num_blocks;
  sum.threads_per_block = sched.threads_per_block;

  const auto accumulate = [&](const KernelStats& k) {
    const CostBreakdown c = estimate_time(k, spec);
    total.mem_s += c.mem_s;
    total.compute_s += c.compute_s;
    total.atomic_s += c.atomic_s;
    total.smem_s += c.smem_s;
    total.launch_s += c.launch_s;
    total.total_s += c.total_s;
    sum.global_load_transactions += k.global_load_transactions;
    sum.global_store_transactions += k.global_store_transactions;
    sum.global_atomics += k.global_atomics;
    sum.smem_bytes += k.smem_bytes;
    sum.flops += k.flops;
  };

  if (dot_logit) {
    // Launch 1 — SDDMM dot logits (the sddmm_gpu tree-reduction ledger):
    // edge endpoints, BOTH endpoint feature rows per edge, logit store.
    KernelStats k;
    k.num_blocks = sched.num_blocks;
    k.threads_per_block = sched.threads_per_block;
    k.occupancy = kGeneratedKernelOccupancy;
    k.add_load_bytes(nnz * 8.0 + 2.0 * nnz * static_cast<double>(d_q) * 4.0);
    k.add_store_bytes(nnz * 4.0);
    k.flops = nnz * 2.0 * static_cast<double>(d_q);
    k.smem_bytes = nnz * 4.0 * 5.0;  // log2(warp) tree-combine traffic
    accumulate(k);
  }

  {
    // Launch 2 — standalone segment softmax over the |E| logits.
    KernelStats k;
    k.num_blocks = sched.num_blocks;
    k.threads_per_block = sched.threads_per_block;
    k.occupancy = kGeneratedKernelOccupancy;
    k.add_load_bytes(static_cast<double>(n) * 8.0 + nnz * 8.0 +
                     3.0 * nnz * 4.0 +
                     (dot_logit ? 0.0 : nnz * 4.0));
    k.add_store_bytes(2.0 * nnz * 4.0);
    k.flops = kSoftmaxFlopsPerEdge * nnz;
    accumulate(k);
  }

  {
    // Launch 3 — alpha-weighted aggregation: its own adjacency traversal,
    // the alpha reload, and EVERY message feature row re-read from global
    // (the cross-stage reuse the fused kernel gets for free is impossible
    // across launches).
    KernelStats k;
    k.num_blocks = sched.num_blocks;
    k.threads_per_block = sched.threads_per_block;
    k.occupancy = ledger.mlp ? kMlpOccupancy : kGeneratedKernelOccupancy;
    charge_adjacency(k, n, nnz);
    k.add_load_bytes(nnz * 4.0);  // alpha by edge id
    // Edge features re-read (the ledger's edge bytes minus the precomputed
    // logit scalar, which launch 2 consumed), plus the full x_u row per
    // edge for u-reading ops.
    double msg_bytes_per_edge =
        ledger.edge_bytes_per_edge - (dot_logit ? 0.0 : 4.0);
    const bool needs_u = msg_op != "copy_e";
    const std::int64_t d_msg =
        msg_op == "mlp" ? operands.src_feat->row_size() : d_out;
    if (needs_u) msg_bytes_per_edge += static_cast<double>(d_msg) * 4.0;
    k.add_load_bytes(nnz * msg_bytes_per_edge + ledger.weight_bytes);
    const bool needs_v = msg_op == "u_add_v" || msg_op == "u_sub_v" ||
                         msg_op == "u_mul_v" || msg_op == "u_div_v" ||
                         msg_op == "mlp";
    if (needs_v) {
      k.add_load_bytes(static_cast<double>(nonempty) * d_msg * 4.0);
    }
    k.add_store_bytes(static_cast<double>(n) * d_out * 4.0);
    k.flops = nnz * ledger.agg_flops_per_edge;
    accumulate(k);
  }

  sum.occupancy = ledger.mlp ? kMlpOccupancy : kGeneratedKernelOccupancy;
  result.stats = sum;
  result.cost = total;
  return result;
}

}  // namespace featgraph::gpusim
