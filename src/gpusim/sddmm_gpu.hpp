// FeatGraph's GPU generalized-SDDMM kernels on the gpusim execution model
// (paper Fig. 7b, Fig. 12).
//
// Parallelization strategy: each CUDA block owns a chunk of edges. With
// tree reduction (the FDS the paper advocates), the threads of a block
// collectively compute each edge's dot product — loads are coalesced across
// threads and partial sums combine through shared memory in log2(warp)
// steps. Without tree reduction the kernel degenerates to one thread per
// edge computing the whole dot serially; at large feature lengths the
// per-thread register footprint collapses occupancy, which is exactly why
// the paper's Fig. 12 gap grows with feature length.
#pragma once

#include <string_view>

#include "core/schedule.hpp"
#include "core/sddmm.hpp"
#include "gpusim/device.hpp"
#include "gpusim/spmm_gpu.hpp"

namespace featgraph::gpusim {

/// Supported edge ops: "dot", "multihead_dot", "u_add_v", "u_mul_v".
GpuKernelResult sddmm_gpu(const graph::Coo& coo, std::string_view edge_op,
                          const core::GpuSddmmSchedule& sched,
                          const core::SddmmOperands& operands,
                          const DeviceSpec& spec = {});

/// Occupancy of a one-thread-per-edge serial reduction over `reduce_len`
/// elements (register-pressure model shared with the Gunrock baseline).
double serial_dot_occupancy(std::int64_t reduce_len);

}  // namespace featgraph::gpusim
