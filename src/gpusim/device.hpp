// GPU execution-model simulator: device description and cost model.
//
// The paper's GPU claims are architecture-mechanism claims (Sec. III-C-2/3,
// Tables IV, Figs 12/13/15): Gunrock loses GCN/MLP aggregation because
// per-edge atomics serialize and feature parallelism is unexploited;
// FeatGraph matches cuSPARSE by coalescing feature-axis loads across
// threads; tree reduction beats one-thread-per-edge dots at large feature
// lengths (register pressure kills occupancy); staging high-degree vertices
// in shared memory pays off exactly when they are re-read often.
//
// gpusim kernels therefore execute functionally on the host (bit-accurate
// outputs, validated against the CPU kernels) while tallying mechanistic
// counters — 32-byte global-memory transactions with the kernel's actual
// coalescing pattern, atomic operations, shared-memory traffic, FLOPs, an
// occupancy estimate — from the real graph structure. `estimate_time`
// converts counters to seconds with V100-like throughput constants. The
// constants are calibrated (DESIGN.md §1); the counters are not.
#pragma once

#include <cstdint>

namespace featgraph::gpusim {

/// Tesla V100-SXM2-16GB-like device (the paper's p3.2xlarge GPU).
struct DeviceSpec {
  int num_sms = 80;
  int warp_size = 32;
  int max_threads_per_sm = 2048;
  double clock_hz = 1.38e9;
  double mem_bw_bytes_per_s = 810e9;       // ~90% of 900 GB/s peak HBM2
  double flops_per_s = 14e12;              // fp32 FMA peak
  double atomics_per_s = 4e9;              // conflict-free global atomics
  double smem_bw_bytes_per_s = 80 * 128 * 1.38e9;  // 128 B/cycle/SM
  double launch_overhead_s = 5e-6;
  std::int64_t smem_bytes_per_block = 96 * 1024;   // configurable max
  std::int64_t dram_bytes = std::int64_t{16} * 1024 * 1024 * 1024;

  /// Bytes moved per global-memory transaction (one 32-byte sector).
  static constexpr double kSectorBytes = 32.0;
};

/// Counters a kernel accumulates while executing. All transaction counts are
/// in 32-byte sectors.
struct KernelStats {
  double global_load_transactions = 0.0;
  double global_store_transactions = 0.0;
  double global_atomics = 0.0;
  /// Serialization multiplier for atomics (conflicting updates replay).
  double atomic_conflict_factor = 1.0;
  double smem_bytes = 0.0;
  double flops = 0.0;
  /// Fraction of peak thread occupancy the kernel sustains (register
  /// pressure / insufficient parallelism lower it).
  double occupancy = 1.0;
  std::int64_t num_blocks = 0;
  int threads_per_block = 0;

  void add_load_bytes(double bytes) {
    global_load_transactions += bytes / DeviceSpec::kSectorBytes;
  }
  void add_store_bytes(double bytes) {
    global_store_transactions += bytes / DeviceSpec::kSectorBytes;
  }
};

struct CostBreakdown {
  double mem_s = 0.0;
  double compute_s = 0.0;
  double atomic_s = 0.0;
  double smem_s = 0.0;
  double launch_s = 0.0;
  double total_s = 0.0;
};

/// Roofline-style conversion: the kernel runs at the slowest of its memory,
/// compute, atomic and shared-memory rates, divided by occupancy, plus a
/// fixed launch overhead; grids too small to fill the device lose
/// parallelism proportionally.
CostBreakdown estimate_time(const KernelStats& stats, const DeviceSpec& spec);

/// Cost of a dense tensor op (used by the end-to-end GPU simulation for
/// matmuls/activations): max of compute and memory rooflines + launch.
double dense_op_seconds(double flops, double bytes, const DeviceSpec& spec);

}  // namespace featgraph::gpusim
