#include "gpusim/device.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/metrics.hpp"

namespace featgraph::gpusim {

CostBreakdown estimate_time(const KernelStats& stats, const DeviceSpec& spec) {
  static obs::Counter& obs_kernels =
      obs::Registry::global().counter("gpusim.kernel.count");
  static obs::Counter& obs_loads =
      obs::Registry::global().counter("gpusim.load.transactions");
  static obs::Counter& obs_stores =
      obs::Registry::global().counter("gpusim.store.transactions");
  obs_kernels.add(1);
  obs_loads.add(static_cast<std::int64_t>(stats.global_load_transactions));
  obs_stores.add(static_cast<std::int64_t>(stats.global_store_transactions));
  CostBreakdown cost;
  cost.mem_s = (stats.global_load_transactions + stats.global_store_transactions) *
               DeviceSpec::kSectorBytes / spec.mem_bw_bytes_per_s;
  cost.compute_s = stats.flops / spec.flops_per_s;
  cost.atomic_s =
      stats.global_atomics * stats.atomic_conflict_factor / spec.atomics_per_s;
  cost.smem_s = stats.smem_bytes / spec.smem_bw_bytes_per_s;
  cost.launch_s = spec.launch_overhead_s;

  // Grid-size utilization: a grid with fewer threads than the device's
  // resident capacity leaves SMs idle (paper Fig. 15: more blocks -> faster
  // until the device is saturated).
  const double grid_threads = static_cast<double>(stats.num_blocks) *
                              std::max(1, stats.threads_per_block);
  const double resident =
      static_cast<double>(spec.num_sms) * spec.max_threads_per_sm;
  const double grid_util =
      grid_threads > 0 ? std::min(1.0, grid_threads / resident) : 1.0;

  const double occ = std::max(0.05, stats.occupancy * grid_util);
  cost.total_s =
      std::max(std::max(cost.mem_s, cost.compute_s),
               std::max(cost.atomic_s, cost.smem_s)) /
          occ +
      cost.launch_s;
  return cost;
}

double dense_op_seconds(double flops, double bytes, const DeviceSpec& spec) {
  return std::max(flops / spec.flops_per_s, bytes / spec.mem_bw_bytes_per_s) +
         spec.launch_overhead_s;
}

}  // namespace featgraph::gpusim
