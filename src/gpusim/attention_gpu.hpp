// Fused generalized-attention kernel on the gpusim execution model — the
// GPU twin of core::attention (the paper's kernel-fusion-across-stages win,
// Sec. V / Table VI, applied to its hardest workload: GAT attention).
//
// The composed chain executes GAT attention as THREE kernels — sddmm_gpu
// dot logits, a segment-softmax launch, an alpha-weighted spmm_gpu — paying
// three launch overheads, three adjacency traversals, and re-reading every
// source feature row it already read for the logits. The fused kernel runs
// the whole pipeline in ONE grid-stride sweep over the staging tiles of
// gpu_row_tile_boundaries: each block owns a row tile, computes the tile's
// per-destination SDDMM logits with feature-axis-coalesced loads, softmaxes
// each row's logit segment in shared-memory scratch, and folds
// alpha_e * MSG(u, e, v) into the output row — reusing the source rows
// staged/loaded for the logit dot for the aggregation, with zero atomics
// (rows are block-owned) and exactly one launch overhead.
//
// Shared memory is SPLIT between the softmax scratch and (when
// hybrid_partition is on) staged high-degree source rows —
// GpuSpmmSchedule::attention_softmax_smem_frac picks the split. A row whose
// in-degree overflows the scratch spills its logits to global memory (one
// store + three re-read passes); a high-degree source that finds the
// staging half full is simply re-read from global per edge (a fused kernel
// cannot column-partition: the softmax needs whole row segments). Both
// failure modes are counted from the real graph structure, so the knob is a
// genuine trade-off the tuners search.
//
// Execution is functional on the host: the output and alpha are produced by
// the CPU fused kernel and are bit-identical to core::attention on every
// msg_op; only the cost ledger is simulated.
#pragma once

#include <string_view>

#include "core/attention.hpp"
#include "core/schedule.hpp"
#include "gpusim/device.hpp"
#include "gpusim/spmm_gpu.hpp"
#include "graph/csr.hpp"

namespace featgraph::gpusim {

struct GpuAttentionResult {
  tensor::Tensor out;    // num_rows x d_out, bit-identical to core::attention
  tensor::Tensor alpha;  // |E| softmax weights by edge id (autograd keeps it;
                         // the |E| x d messages stay unmaterialized)
  KernelStats stats;
  CostBreakdown cost;

  double milliseconds() const { return cost.total_s * 1e3; }
};

/// Runs the fused attention kernel over the destination-major CSR on the
/// simulated device. `msg_op` is any builtin attention message op
/// (core/attention.hpp). Honors num_blocks / threads_per_block (grid
/// utilization), hybrid_partition + hybrid_quantile + hybrid_rows_per_tile +
/// row_assignment (source staging over the row tiles), and
/// attention_softmax_smem_frac (smem split, see the header comment).
GpuAttentionResult attention_gpu(const graph::Csr& adj,
                                 std::string_view msg_op,
                                 const core::GpuSpmmSchedule& sched,
                                 const core::AttentionOperands& operands,
                                 const DeviceSpec& spec = {});

/// Simulated cost of the COMPOSED chain on the same operands: the sddmm_gpu
/// dot-logits kernel + the standalone segment-softmax kernel + the
/// alpha-weighted aggregation kernel — three launches, three adjacency
/// traversals, no cross-stage reuse (two launches when operands carry
/// precomputed edge_logits). The functional output is the fused kernel's
/// (the CPU suite pins fused == composed bit-for-bit at a fixed backend);
/// only the cost ledger differs. This is the baseline the fused kernel is
/// benchmarked and acceptance-tested against.
GpuAttentionResult attention_gpu_composed(
    const graph::Csr& adj, std::string_view msg_op,
    const core::GpuSpmmSchedule& sched,
    const core::AttentionOperands& operands, const DeviceSpec& spec = {});

/// The middle launch of the composed chain as its own kernel: segment
/// softmax over each destination's in-edges. Functional via
/// core::edge_softmax; the ledger charges one adjacency traversal, three
/// passes over the |E| logits, and the alpha store.
GpuKernelResult edge_softmax_gpu(const graph::Csr& adj,
                                 const tensor::Tensor& logits,
                                 const core::GpuSpmmSchedule& sched = {},
                                 const DeviceSpec& spec = {});

}  // namespace featgraph::gpusim
