// Fused kernel epilogues: the elementwise chain that follows an SpMM (or
// dense matmul) anchor, compiled by the lazy-graph fusion pass into a short
// step program applied per output row inside the kernel's own row-finalize
// sweep — before the row leaves cache, instead of as extra |V|×d passes.
//
// Bit-identity contract: every step is drawn from the exact class of the
// span protocol (adds, multiplies, compares — lanes never cross features and
// no fused multiply-adds), so applying the program inside the sweep yields
// byte-for-byte the tensors the eager chain produces, per ISA and thread
// count. The peephole that folds kAddVec+kRelu into kBiasRelu preserves this:
// both forms run the same IEEE add-then-max chain per element.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/simd.hpp"

namespace featgraph::core {

/// One elementwise post-op over an output row span.
enum class EpilogueKind : int {
  kAddVec = 0,    ///< out[j] += data[j]            (bias broadcast over rows)
  kAddRows = 1,   ///< out[j] += data[v*stride + j] (row-aligned residual add)
  kScale = 2,     ///< out[j] *= scalar
  kRelu = 3,      ///< out[j] = max(out[j], 0)
  kLeakyRelu = 4, ///< out[j] = out[j] > 0 ? out[j] : out[j]*scalar
  kBiasRelu = 5,  ///< out[j] = max(out[j] + data[j], 0)  (peephole of 0+3)
};

struct EpilogueStep {
  EpilogueKind kind;
  float scalar = 0.0f;           ///< kScale factor / kLeakyRelu slope.
  const float* data = nullptr;   ///< kAddVec/kAddRows/kBiasRelu operand.
  std::int64_t stride = 0;       ///< kAddRows row stride (elements).
};

/// A short straight-line program of post-ops, applied to one output row at a
/// time. Kernels accept `const EpilogueOps*` (nullptr = no epilogue) so the
/// unfused path pays nothing.
struct EpilogueOps {
  std::vector<EpilogueStep> steps;

  bool empty() const { return steps.empty(); }

  /// Apply every step to row `v`'s span. Runs after the reducer's
  /// empty-fill/mean-normalize, i.e. on exactly the value the eager chain
  /// would have read from the materialized SpMM output.
  void apply(const simd::SpanOps& ops, std::int64_t v, float* out_row,
             std::int64_t d) const {
    for (const EpilogueStep& s : steps) {
      switch (s.kind) {
        case EpilogueKind::kAddVec:
          simd::accum(ops, simd::Accum::kSum, out_row, s.data, d);
          break;
        case EpilogueKind::kAddRows:
          simd::accum(ops, simd::Accum::kSum, out_row, s.data + v * s.stride,
                      d);
          break;
        case EpilogueKind::kScale:
          simd::scale(ops, out_row, s.scalar, d);
          break;
        case EpilogueKind::kRelu:
          simd::relu(ops, out_row, d);
          break;
        case EpilogueKind::kLeakyRelu:
          simd::leaky_relu(ops, out_row, s.scalar, d);
          break;
        case EpilogueKind::kBiasRelu:
          simd::bias_relu(ops, out_row, s.data, d);
          break;
      }
    }
  }

  /// Fold a trailing kAddVec+kRelu pair into one kBiasRelu step (one pass
  /// over the row instead of two; bitwise-identical add-then-max chain).
  void peephole() {
    std::vector<EpilogueStep> folded;
    folded.reserve(steps.size());
    for (const EpilogueStep& s : steps) {
      if (s.kind == EpilogueKind::kRelu && !folded.empty() &&
          folded.back().kind == EpilogueKind::kAddVec) {
        folded.back().kind = EpilogueKind::kBiasRelu;
        continue;
      }
      folded.push_back(s);
    }
    steps = std::move(folded);
  }

  /// Structural FNV-1a signature covering step kinds and scalar operands
  /// (data pointers excluded: programs with the same shape share compiled
  /// schedules, but fused vs unfused — or differently-shaped — programs must
  /// never alias in BlockScheduleCache).
  std::uint64_t signature() const {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 1099511628211ull;
      }
    };
    mix(static_cast<std::uint64_t>(steps.size()));
    for (const EpilogueStep& s : steps) {
      mix(static_cast<std::uint64_t>(static_cast<int>(s.kind)) + 1);
      std::uint64_t bits = 0;
      static_assert(sizeof(float) == 4, "float must be 32-bit");
      std::memcpy(&bits, &s.scalar, sizeof(float));
      mix(bits);
      mix(static_cast<std::uint64_t>(s.stride));
    }
    return h;
  }
};

}  // namespace featgraph::core
