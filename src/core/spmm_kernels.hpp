// Generalized SpMM kernel templates (paper Sec. III-B, Fig. 3).
//
// out[v, :] = REDUCE over in-edges (u -e-> v) of MSG(u, e, v)
//
// The coarse-grained template owns graph traversal: feature tiles outermost
// (Fig. 6b), then 1D source partitions processed one at a time with all
// threads cooperating inside the partition (Sec. IV-A), then destination
// rows split across threads (race-free: each thread owns its rows). The
// fine-grained UDF is inlined into the innermost loop through the `Acc`
// callback, so messages are folded into the output without ever being
// materialized — this fusion is FeatGraph's key advantage over
// deep-learning-framework backends.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/reducers.hpp"
#include "core/schedule.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace featgraph::core {

namespace detail {

/// Aggregates rows [row_begin, row_end) x features [j0, j1) over one edge
/// segment. `init` resets the tile to the reducer identity first (done on
/// the first partition of each feature tile).
template <class MsgFn, class Reducer>
void spmm_rows(const std::int64_t* indptr, const graph::vid_t* indices,
               const graph::eid_t* edge_ids, std::int64_t row_begin,
               std::int64_t row_end, const MsgFn& msg, float* out,
               std::int64_t d_out, std::int64_t j0, std::int64_t j1,
               bool init) {
  for (std::int64_t v = row_begin; v < row_end; ++v) {
    float* out_row = out + v * d_out;
    if (init) {
      for (std::int64_t j = j0; j < j1; ++j) out_row[j] = Reducer::identity();
    }
    const auto acc = [out_row](std::int64_t j, float val) {
      out_row[j] = Reducer::combine(out_row[j], val);
    };
    for (std::int64_t i = indptr[v]; i < indptr[v + 1]; ++i) {
      // UDFs that never read the edge id skip the edge_ids load entirely:
      // 8 B less adjacency traffic per edge visit, which matters for tiled
      // schedules that re-traverse the graph once per feature tile.
      if constexpr (MsgFn::kUsesEdgeId) {
        msg(indices[i], edge_ids[i], static_cast<graph::vid_t>(v), j0, j1,
            acc);
      } else {
        msg(indices[i], 0, static_cast<graph::vid_t>(v), j0, j1, acc);
      }
    }
  }
}

/// Replaces untouched identities on empty rows and applies mean
/// normalization. `row_degree[v]` is the total in-degree of v.
template <class Reducer>
void spmm_postprocess(const std::int64_t* row_degree, std::int64_t num_rows,
                      float* out, std::int64_t d_out, int num_threads) {
  parallel::parallel_for_ranges(
      0, num_rows, num_threads, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t v = r0; v < r1; ++v) {
          float* out_row = out + v * d_out;
          const std::int64_t deg = row_degree[v];
          if (deg == 0) {
            for (std::int64_t j = 0; j < d_out; ++j)
              out_row[j] = Reducer::empty_value();
          } else if (Reducer::needs_degree_normalize()) {
            const float inv = 1.0f / static_cast<float>(deg);
            for (std::int64_t j = 0; j < d_out; ++j) out_row[j] *= inv;
          }
        }
      });
}

}  // namespace detail

/// Generalized SpMM over a destination-major CSR. `parts` may be null (no
/// partitioning) or a 1D source partitioning of the same CSR. The schedule's
/// feature tile and thread count apply in both cases.
template <class MsgFn, class Reducer>
void generalized_spmm(const graph::Csr& adj,
                      const graph::SrcPartitionedCsr* parts, const MsgFn& msg,
                      float* out, std::int64_t d_out,
                      const CpuSpmmSchedule& sched) {
  const std::int64_t n = adj.num_rows;
  if (n == 0 || d_out == 0) return;
  const std::int64_t tile =
      sched.feat_tile > 0 ? std::min(sched.feat_tile, d_out) : d_out;

  for (std::int64_t j0 = 0; j0 < d_out; j0 += tile) {
    const std::int64_t j1 = std::min(j0 + tile, d_out);
    if (parts == nullptr || parts->parts.size() <= 1) {
      parallel::parallel_for_ranges(
          0, n, sched.num_threads, [&](std::int64_t r0, std::int64_t r1) {
            detail::spmm_rows<MsgFn, Reducer>(
                adj.indptr.data(), adj.indices.data(), adj.edge_ids.data(), r0,
                r1, msg, out, d_out, j0, j1, /*init=*/true);
          });
    } else {
      FG_CHECK(parts->num_rows == adj.num_rows);
      bool first = true;
      for (const auto& seg : parts->parts) {
        // Threads cooperate inside ONE partition; the partition loop itself
        // is sequential (Sec. IV-A: avoids LLC contention).
        parallel::parallel_for_ranges(
            0, n, sched.num_threads, [&](std::int64_t r0, std::int64_t r1) {
              detail::spmm_rows<MsgFn, Reducer>(
                  seg.indptr.data(), seg.indices.data(), seg.edge_ids.data(),
                  r0, r1, msg, out, d_out, j0, j1, first);
            });
        first = false;
      }
    }
  }

  // Degrees come from the unpartitioned CSR (segments only see a slice).
  std::vector<std::int64_t> degree(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v)
    degree[static_cast<std::size_t>(v)] = adj.indptr[v + 1] - adj.indptr[v];
  detail::spmm_postprocess<Reducer>(degree.data(), n, out, d_out,
                                    sched.num_threads);
}

}  // namespace featgraph::core
