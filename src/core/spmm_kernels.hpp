// Generalized SpMM kernel templates (paper Sec. III-B, Fig. 3).
//
// out[v, :] = REDUCE over in-edges (u -e-> v) of MSG(u, e, v)
//
// The coarse-grained template owns graph traversal: feature tiles outermost
// (Fig. 6b), then 1D source partitions processed one at a time with all
// threads cooperating inside the partition (Sec. IV-A), then destination
// rows split across threads (race-free: each thread owns its rows; the
// schedule's load_balance knob picks row-count or nnz-balanced boundaries).
// The fine-grained UDF folds one edge's whole message span into the output
// row per call (the bulk-span protocol of udf.hpp), so the innermost feature
// loop is a dense contiguous sweep on the vector units — messages are never
// materialized, and the fusion of message computation with the reducer
// combine is FeatGraph's key advantage over deep-learning-framework
// backends.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "core/epilogue.hpp"
#include "core/reducers.hpp"
#include "core/schedule.hpp"
#include "core/schedule_ir.hpp"
#include "core/simd.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/shard_exec.hpp"
#include "support/check.hpp"

namespace featgraph::core {

namespace detail {

/// The one row-sweep dispatcher every SpMM/attention launch goes through:
/// shard(S) programs run the work-stealing shard executor, everything else
/// keeps the static parallel_for split (nnz- or row-balanced per the plan).
/// Bit-identity across the three paths is the shard executor's contract —
/// `body(r0, r1)` only writes rows it owns, and shard/lane boundaries never
/// split a row, so every path folds identical per-row edge chains.
template <class Body>
void run_row_sweep(const LoweredSpmmPlan& plan, const std::int64_t* indptr,
                   std::int64_t num_rows, const Body& body) {
  const int shards = plan.effective_shards(num_rows);
  if (shards > 1) {
    const bool nnz = plan.load_balance == LoadBalance::kNnzBalanced;
    parallel::sharded_row_sweep(nnz ? indptr : nullptr, num_rows, shards,
                                plan.steal_grain, plan.num_threads, body);
    return;
  }
  if (plan.load_balance == LoadBalance::kNnzBalanced) {
    parallel::parallel_for_nnz_ranges(indptr, 0, num_rows, plan.num_threads,
                                      body);
  } else {
    parallel::parallel_for_ranges(0, num_rows, plan.num_threads, body);
  }
}

/// Detects UDFs that implement the register-blocked row-group protocol
/// (`kSupportsRowBlock` + `apply_rows`): the Schedule-IR unroll path calls
/// apply_rows once per (row, tile) instead of apply once per edge. UDFs
/// without the protocol interpret unroll programs edge-at-a-time — legal,
/// identical results, no register-blocking win.
template <class T, class = void>
struct HasRowBlock : std::false_type {};
template <class T>
struct HasRowBlock<T, std::void_t<decltype(T::kSupportsRowBlock)>>
    : std::bool_constant<T::kSupportsRowBlock> {};

/// Aggregates rows [row_begin, row_end) x features [j0, j1) over one edge
/// segment. `init` resets the tile to the reducer identity first (done on
/// the first partition of each feature tile).
template <class MsgFn, class Reducer>
void spmm_rows(const simd::SpanOps& ops, const std::int64_t* indptr,
               const graph::vid_t* indices, const graph::eid_t* edge_ids,
               std::int64_t row_begin, std::int64_t row_end, const MsgFn& msg,
               float* out, std::int64_t d_out, std::int64_t j0,
               std::int64_t j1, bool init) {
  for (std::int64_t v = row_begin; v < row_end; ++v) {
    float* out_row = out + v * d_out;
    if (init) simd::fill(ops, out_row + j0, Reducer::identity(), j1 - j0);
    for (std::int64_t i = indptr[v]; i < indptr[v + 1]; ++i) {
      // UDFs that never read the edge id skip the edge_ids load entirely:
      // 8 B less adjacency traffic per edge visit, which matters for tiled
      // schedules that re-traverse the graph once per feature tile.
      if constexpr (MsgFn::kUsesEdgeId) {
        msg.template apply<Reducer>(ops, indices[i], edge_ids[i],
                                    static_cast<graph::vid_t>(v), out_row, j0,
                                    j1);
      } else {
        msg.template apply<Reducer>(ops, indices[i], 0,
                                    static_cast<graph::vid_t>(v), out_row, j0,
                                    j1);
      }
    }
  }
}

/// Replaces untouched identities on empty rows and applies mean
/// normalization. `row_degree[v]` is the total in-degree of v. When a fused
/// epilogue is attached it runs here, per row, after the reducer finalize —
/// the one row sweep every SpMM launch already makes, so the fused chain
/// costs zero extra |V|×d passes and sees exactly the value the eager chain
/// would have read back from memory.
template <class Reducer>
void spmm_postprocess(const simd::SpanOps& ops, const std::int64_t* row_degree,
                      std::int64_t num_rows, float* out, std::int64_t d_out,
                      int num_threads, const EpilogueOps* epilogue = nullptr) {
  const bool fused = epilogue != nullptr && !epilogue->empty();
  parallel::parallel_for_ranges(
      0, num_rows, num_threads, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t v = r0; v < r1; ++v) {
          float* out_row = out + v * d_out;
          const std::int64_t deg = row_degree[v];
          if (deg == 0) {
            simd::fill(ops, out_row, Reducer::empty_value(), d_out);
          } else if (Reducer::needs_degree_normalize()) {
            simd::scale(ops, out_row, 1.0f / static_cast<float>(deg), d_out);
          }
          if (fused) epilogue->apply(ops, v, out_row, d_out);
        }
      });
}

/// The Schedule-IR interpreting loop nest: chunked rows > feature tiles >
/// rows > edges, with optional register-blocked row groups. Only launched
/// when the lowered plan asks for something the flat nest can't express
/// (row chunking, register blocking, per-partition overrides); the flat
/// fast path below stays byte-for-byte the pre-IR kernel. Bit-identity: per
/// (row, element) the fill-then-fold order over edges is exactly the flat
/// nest's — chunking and tile reordering move whole (row, tile) blocks, and
/// the blocked apply_rows folds the same per-element chain in the same edge
/// order (simd.hpp accum_rows contract).
template <class MsgFn, class Reducer>
void spmm_interpret(const simd::SpanOps& ops, const graph::Csr& adj,
                    const graph::SrcPartitionedCsr* parts, const MsgFn& msg,
                    float* out, std::int64_t d_out,
                    const LoweredSpmmPlan& plan) {
  const std::int64_t n = adj.num_rows;
  // One partition segment's sweep of rows [r0, r1), one thread.
  const auto segment = [&](const std::int64_t* indptr,
                           const graph::vid_t* indices,
                           const graph::eid_t* edge_ids, std::int64_t r0,
                           std::int64_t r1, bool init, int part) {
    const std::int64_t tw = plan.tile_for(d_out, part);
    const std::int64_t chunk = plan.row_chunk > 0 ? plan.row_chunk : r1 - r0;
    for (std::int64_t c0 = r0; c0 < r1; c0 += std::max<std::int64_t>(chunk, 1)) {
      const std::int64_t c1 = std::min(c0 + chunk, r1);
      for (std::int64_t j0 = 0; j0 < d_out; j0 += tw) {
        const std::int64_t j1 = std::min(j0 + tw, d_out);
        for (std::int64_t v = c0; v < c1; ++v) {
          float* out_row = out + v * d_out;
          if (init)
            simd::fill(ops, out_row + j0, Reducer::identity(), j1 - j0);
          const std::int64_t lo = indptr[v];
          const std::int64_t hi = indptr[v + 1];
          if constexpr (HasRowBlock<MsgFn>::value) {
            if (plan.register_block) {
              msg.template apply_rows<Reducer>(ops, indices + lo, hi - lo,
                                               out_row, j0, j1, plan.unroll);
              continue;
            }
          }
          for (std::int64_t i = lo; i < hi; ++i) {
            if constexpr (MsgFn::kUsesEdgeId) {
              msg.template apply<Reducer>(ops, indices[i], edge_ids[i],
                                          static_cast<graph::vid_t>(v),
                                          out_row, j0, j1);
            } else {
              msg.template apply<Reducer>(ops, indices[i], 0,
                                          static_cast<graph::vid_t>(v),
                                          out_row, j0, j1);
            }
          }
        }
      }
    }
  };
  // Threads cooperate inside one partition at a time (same nesting as the
  // flat path); nnz balance is computed per segment.
  const auto sweep = [&](const std::int64_t* indptr,
                         const graph::vid_t* indices,
                         const graph::eid_t* edge_ids, bool init, int part) {
    const auto body = [&](std::int64_t r0, std::int64_t r1) {
      segment(indptr, indices, edge_ids, r0, r1, init, part);
    };
    run_row_sweep(plan, indptr, n, body);
  };
  if (parts == nullptr || parts->parts.size() <= 1) {
    sweep(adj.indptr.data(), adj.indices.data(), adj.edge_ids.data(),
          /*init=*/true, /*part=*/-1);
  } else {
    FG_CHECK(parts->num_rows == adj.num_rows);
    bool first = true;
    int part = 0;
    for (const auto& seg : parts->parts) {
      sweep(seg.indptr.data(), seg.indices.data(), seg.edge_ids.data(), first,
            part);
      first = false;
      ++part;
    }
  }
}

}  // namespace detail

/// Generalized SpMM over a destination-major CSR. `parts` may be null (no
/// partitioning) or a 1D source partitioning of the same CSR. The schedule's
/// feature tile, thread count, and load-balance policy apply in both cases.
template <class MsgFn, class Reducer>
void generalized_spmm(const graph::Csr& adj,
                      const graph::SrcPartitionedCsr* parts, const MsgFn& msg,
                      float* out, std::int64_t d_out,
                      const CpuSpmmSchedule& sched,
                      const EpilogueOps* epilogue = nullptr) {
  const std::int64_t n = adj.num_rows;
  if (n == 0 || d_out == 0) return;

  // Launch-granular observability: three relaxed counter bumps plus one
  // disabled-flag branch when tracing is off; the program hash (a real
  // reduction over the schedule) is only computed when a trace is live.
  static obs::Counter& obs_launches =
      obs::Registry::global().counter("spmm.launch.count");
  static obs::Counter& obs_rows =
      obs::Registry::global().counter("spmm.rows.swept");
  static obs::Counter& obs_nnz =
      obs::Registry::global().counter("spmm.nnz.swept");
  obs_launches.add(1);
  obs_rows.add(n);
  obs_nnz.add(static_cast<std::int64_t>(adj.nnz()));
  obs::TraceScope obs_span("spmm.launch");
  if (obs_span.active()) {
    const std::uint64_t sig = epilogue != nullptr ? epilogue->signature() : 0;
    obs_span.arg("rows", n)
        .arg("nnz", static_cast<std::int64_t>(adj.nnz()))
        .arg("d_out", d_out)
        .arg("isa", simd::isa_name(simd::active_isa()))
        .arg("program",
             static_cast<std::int64_t>(schedule_program_hash(sched, sig)))
        .arg("epilogue_sig", static_cast<std::int64_t>(sig));
  }

  // Hoist every loop-nest decision out of the launch: flat knobs (or the
  // attached Schedule-IR program) lower ONCE into a plain plan struct.
  const LoweredSpmmPlan plan =
      lower_spmm_schedule(sched, n, d_out, simd::active_isa());

  if (plan.needs_interpreter()) {
    const simd::SpanOps& span = simd::span_ops_for_width(plan.max_tile(d_out));
    detail::spmm_interpret<MsgFn, Reducer>(span, adj, parts, msg, out, d_out,
                                           plan);
    const std::int64_t* row_degree =
        (parts != nullptr && parts->parts.size() > 1)
            ? parts->row_degrees().data()
            : adj.degrees().data();
    detail::spmm_postprocess<Reducer>(span, row_degree, n, out, d_out,
                                      plan.num_threads, epilogue);
    return;
  }

  const std::int64_t tile =
      plan.feat_tile > 0 ? std::min(plan.feat_tile, d_out) : d_out;

  // Dispatch hoisted out of the inner loops: resolve the span-primitive
  // table ONCE per kernel launch and thread the reference through the
  // bulk-UDF protocol — per-span calls are a direct table load instead of a
  // relaxed atomic load + re-dispatch. Tests that pin an ISA mid-run
  // (ScopedIsa) still see a consistent backend for the whole launch. The
  // width-aware form additionally resolves narrow launches (every span a
  // 512-bit tail) straight to the AVX2 table — same code the intra-table
  // fallback would pick, minus its per-span branch.
  const simd::SpanOps& span = simd::span_ops_for_width(tile);

  // One edge segment, all threads cooperating; the load_balance knob picks
  // whether thread boundaries equalize rows or nnz. Note nnz balance is
  // computed per segment — a partition's skew, not the whole graph's,
  // decides its boundaries.
  const auto sweep = [&](const std::int64_t* indptr,
                         const graph::vid_t* indices,
                         const graph::eid_t* edge_ids, std::int64_t j0,
                         std::int64_t j1, bool init) {
    const auto body = [&](std::int64_t r0, std::int64_t r1) {
      detail::spmm_rows<MsgFn, Reducer>(span, indptr, indices, edge_ids, r0,
                                        r1, msg, out, d_out, j0, j1, init);
    };
    detail::run_row_sweep(plan, indptr, n, body);
  };

  for (std::int64_t j0 = 0; j0 < d_out; j0 += tile) {
    const std::int64_t j1 = std::min(j0 + tile, d_out);
    if (parts == nullptr || parts->parts.size() <= 1) {
      sweep(adj.indptr.data(), adj.indices.data(), adj.edge_ids.data(), j0,
            j1, /*init=*/true);
    } else {
      FG_CHECK(parts->num_rows == adj.num_rows);
      bool first = true;
      for (const auto& seg : parts->parts) {
        // Threads cooperate inside ONE partition; the partition loop itself
        // is sequential (Sec. IV-A: avoids LLC contention).
        sweep(seg.indptr.data(), seg.indices.data(), seg.edge_ids.data(), j0,
              j1, first);
        first = false;
      }
    }
  }

  // An nnz-balanced sweep with empty rows can leave boundary gaps only if
  // boundaries were non-tiling — nnz_split_point guarantees they tile, so
  // every row was initialized above. Unpartitioned launches read the CSR's
  // cached degree vector; partitioned launches read the partitioning's own
  // cached reassembly of the per-segment degree slices (seeded for free by
  // partition_by_source's pass-1 counts) — either way the vector is
  // materialized once per structure, never per call.
  const std::int64_t* row_degree =
      (parts != nullptr && parts->parts.size() > 1)
          ? parts->row_degrees().data()
          : adj.degrees().data();
  detail::spmm_postprocess<Reducer>(span, row_degree, n, out, d_out,
                                    plan.num_threads, epilogue);
}

}  // namespace featgraph::core
