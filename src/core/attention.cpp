// Fused attention kernel templates — see attention.hpp for the contract.
//
// Structure mirrors spmm.cpp: string-named builtin message ops resolve to
// WEIGHTED message functors (the bulk-span protocol of udf.hpp with alpha_e
// folded into the accumulate, via axpy / waxpy_binop), the logit side
// resolves to a small logit functor (SDDMM dot partial or a precomputed
// edge scalar), and the launch picks the single-pass fused row sweep or the
// two-phase partitioned form.
#include "core/attention.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "core/partition_cache.hpp"
#include "core/reducers.hpp"
#include "core/schedule_ir.hpp"
#include "core/spmm_kernels.hpp"
#include "core/udf.hpp"
#include "graph/partition.hpp"
#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace featgraph::core {

namespace {

using graph::eid_t;
using graph::vid_t;
using tensor::Tensor;

// --- logit functors --------------------------------------------------------

/// logit_e = <q_u, k_v> * scale — the SDDMM dot span partial (full reduce
/// span; attention recomputes nothing, the dot IS the logits pass).
struct DotLogit {
  const float* q;
  const float* k;
  std::int64_t d;
  float scale;
  float operator()(const simd::SpanOps& ops, vid_t u, eid_t, vid_t v) const {
    return simd::dot(ops, q + static_cast<std::int64_t>(u) * d,
                     k + static_cast<std::int64_t>(v) * d, d) *
           scale;
  }
};

/// logit_e = l[e] * scale — precomputed per-edge scalars.
struct EdgeLogit {
  const float* l;
  float scale;
  float operator()(const simd::SpanOps&, vid_t, eid_t e, vid_t) const {
    return l[e] * scale;
  }
};

// --- weighted message functors ---------------------------------------------
// Bulk-span protocol (udf.hpp) with the softmax weight alpha[e] folded into
// the accumulate; attention always sum-reduces, which the static_assert
// pins. All functors read alpha by edge id so the SAME instantiation runs
// both the fused row sweep and the partitioned generalized_spmm launch.

struct WCopyU {
  static constexpr bool kUsesEdgeId = true;
  /// Weighted row-block protocol (Schedule-IR unroll path in the fused
  /// sweep): the message is a pure weighted gather, so a row's whole edge
  /// group can fold through simd::waxpy_rows with the output tile pinned in
  /// vector registers. The weights array is the row's CSR-position-
  /// contiguous alpha values (the softmax scratch, see fused_rows).
  static constexpr bool kSupportsWeightedRowBlock = true;
  const float* x;
  std::int64_t d;
  const float* alpha;
  template <class Reducer>
  void apply(const simd::SpanOps& ops, vid_t u, eid_t e, vid_t,
             float* out_row, std::int64_t j0, std::int64_t j1) const {
    static_assert(Reducer::kAccum == simd::Accum::kSum);
    simd::axpy(ops, out_row + j0, x + static_cast<std::int64_t>(u) * d + j0,
               alpha[e], j1 - j0);
  }
  /// out_row[j] += w[i] * x[idx[i], j] folded in i order — the same mul/add
  /// chain cnt apply() calls run.
  void apply_rows_weighted(const simd::SpanOps& ops, const vid_t* idx,
                           std::int64_t cnt, const float* w, float* out_row,
                           std::int64_t j0, std::int64_t j1,
                           int unroll) const {
    simd::waxpy_rows(ops, out_row + j0, x + j0, d, idx, w, cnt, j1 - j0,
                     unroll);
  }
};

/// Detects weighted message functors implementing the row-block protocol.
template <class T, class = void>
struct HasWeightedRowBlock : std::false_type {};
template <class T>
struct HasWeightedRowBlock<T,
                           std::void_t<decltype(T::kSupportsWeightedRowBlock)>>
    : std::bool_constant<T::kSupportsWeightedRowBlock> {};

struct WCopyE {
  static constexpr bool kUsesEdgeId = true;
  const float* edge;
  std::int64_t d;
  const float* alpha;
  template <class Reducer>
  void apply(const simd::SpanOps& ops, vid_t, eid_t e, vid_t,
             float* out_row, std::int64_t j0, std::int64_t j1) const {
    static_assert(Reducer::kAccum == simd::Accum::kSum);
    simd::axpy(ops, out_row + j0, edge + e * d + j0, alpha[e], j1 - j0);
  }
};

template <class BinOp>
struct WUOpV {
  static constexpr bool kUsesEdgeId = true;
  const float* x;
  std::int64_t d;
  const float* alpha;
  template <class Reducer>
  void apply(const simd::SpanOps& ops, vid_t u, eid_t e, vid_t v,
             float* out_row, std::int64_t j0, std::int64_t j1) const {
    static_assert(Reducer::kAccum == simd::Accum::kSum);
    simd::waxpy_binop(ops, BinOp::kBinOp, out_row + j0,
                      x + static_cast<std::int64_t>(u) * d + j0,
                      x + static_cast<std::int64_t>(v) * d + j0, alpha[e],
                      j1 - j0);
  }
};

template <class BinOp>
struct WUOpE {
  static constexpr bool kUsesEdgeId = true;
  const float* x;
  const float* edge;
  std::int64_t d;
  std::int64_t d_edge;  // 1 (broadcast scalar) or d
  const float* alpha;
  template <class Reducer>
  void apply(const simd::SpanOps& ops, vid_t u, eid_t e, vid_t,
             float* out_row, std::int64_t j0, std::int64_t j1) const {
    static_assert(Reducer::kAccum == simd::Accum::kSum);
    const float* xu = x + static_cast<std::int64_t>(u) * d;
    if (d_edge == 1) {
      simd::waxpy_binop_scalar(ops, BinOp::kBinOp, out_row + j0, xu + j0,
                               edge[e], alpha[e], j1 - j0);
    } else {
      simd::waxpy_binop(ops, BinOp::kBinOp, out_row + j0, xu + j0,
                        edge + e * d + j0, alpha[e], j1 - j0);
    }
  }
};

/// MLP aggregation message weighted by alpha: stages the activated span in
/// per-thread scratch exactly like MlpMsg (ReLU must see the finished dot
/// product), then folds it with one weighted axpy.
struct WMlpMsg {
  static constexpr bool kUsesEdgeId = true;
  const float* x;
  std::int64_t d1;
  const float* w;  // row-major d1 x d2
  std::int64_t d2;
  const float* alpha;
  template <class Reducer>
  void apply(const simd::SpanOps& ops, vid_t u, eid_t e, vid_t v,
             float* out_row, std::int64_t j0, std::int64_t j1) const {
    static_assert(Reducer::kAccum == simd::Accum::kSum);
    FG_DCHECK(d1 <= kMaxMlpInputDim);
    const float* xu = x + static_cast<std::int64_t>(u) * d1;
    const float* xv = x + static_cast<std::int64_t>(v) * d1;
    float s[kMaxMlpInputDim];
    for (std::int64_t k = 0; k < d1; ++k) s[k] = xu[k] + xv[k];
    const std::int64_t n = j1 - j0;
    thread_local std::vector<float> scratch;
    if (static_cast<std::int64_t>(scratch.size()) < n)
      scratch.resize(static_cast<std::size_t>(n));
    float* msg = scratch.data();
    simd::fill(ops, msg, 0.0f, n);
    for (std::int64_t k = 0; k < d1; ++k)
      simd::axpy(ops, msg, w + k * d2 + j0, s[k], n);
    simd::relu(ops, msg, n);
    simd::axpy(ops, out_row + j0, msg, alpha[e], n);
  }
};

// --- per-row softmax -------------------------------------------------------

/// Computes row v's softmax weights into `alpha` (scattered by edge id):
/// logits into the scratch (CSR-position contiguous, so the span primitives
/// apply), row max, exponentials + denominator, then the same per-element
/// division the composed edge-softmax performs (NOT multiply-by-reciprocal —
/// rounding stays identical to the composed oracle).
template <class LogitFn>
inline void row_softmax(const simd::SpanOps& ops, const std::int64_t* indptr,
                        const vid_t* indices, const eid_t* edge_ids,
                        std::int64_t v, const LogitFn& logit,
                        std::vector<float>& buf, float* alpha) {
  const std::int64_t lo = indptr[v], hi = indptr[v + 1];
  const std::int64_t deg = hi - lo;
  if (deg == 0) return;
  if (static_cast<std::int64_t>(buf.size()) < deg)
    buf.resize(static_cast<std::size_t>(deg));
  float* l = buf.data();
  for (std::int64_t i = lo; i < hi; ++i)
    l[i - lo] = logit(ops, indices[i], edge_ids[i], static_cast<vid_t>(v));
  const float mx = simd::hmax(ops, l, deg);
  const float denom = simd::exp_scale(ops, l, -mx, deg);
  for (std::int64_t i = 0; i < deg; ++i) l[i] /= denom;
  for (std::int64_t i = 0; i < deg; ++i) alpha[edge_ids[lo + i]] = l[i];
}

/// Rows [r0, r1): softmax only (phase 1 of the partitioned launch).
template <class LogitFn>
void softmax_rows(const simd::SpanOps& ops, const graph::Csr& adj,
                  std::int64_t r0, std::int64_t r1, const LogitFn& logit,
                  float* alpha) {
  thread_local std::vector<float> buf;
  for (std::int64_t v = r0; v < r1; ++v)
    row_softmax(ops, adj.indptr.data(), adj.indices.data(),
                adj.edge_ids.data(), v, logit, buf, alpha);
}

/// Rows [r0, r1): the fully fused pass — softmax, then the weighted
/// aggregation folds alpha_e * MSG into the still-hot output row,
/// feature-tiled innermost. Interprets the lowered Schedule-IR plan: row
/// chunking (a legal no-op here — each row's whole feature sweep already
/// happens in one visit, so the chunk loop only re-spells the row loop) and
/// the register-blocked weighted fold for functors with the row-block
/// protocol. The softmax scratch `buf` keeps row v's divided alphas
/// CSR-position contiguous at [0, deg) — exactly the weights array the
/// blocked fold consumes.
template <class LogitFn, class WMsg>
void fused_rows(const simd::SpanOps& ops, const graph::Csr& adj,
                std::int64_t r0, std::int64_t r1, const LogitFn& logit,
                const WMsg& wmsg, float* out, std::int64_t d_out,
                const LoweredSpmmPlan& plan, float* alpha) {
  const std::int64_t* indptr = adj.indptr.data();
  const vid_t* indices = adj.indices.data();
  const eid_t* edge_ids = adj.edge_ids.data();
  const std::int64_t tile =
      std::max<std::int64_t>(plan.tile_for(d_out, -1), 1);
  const std::int64_t chunk =
      plan.row_chunk > 0 ? plan.row_chunk : std::max<std::int64_t>(r1 - r0, 1);
  thread_local std::vector<float> buf;
  for (std::int64_t c0 = r0; c0 < r1; c0 += chunk) {
    const std::int64_t c1 = std::min(c0 + chunk, r1);
    for (std::int64_t v = c0; v < c1; ++v) {
      float* out_row = out + v * d_out;
      simd::fill(ops, out_row, 0.0f, d_out);
      const std::int64_t lo = indptr[v], hi = indptr[v + 1];
      if (lo == hi) continue;
      row_softmax(ops, indptr, indices, edge_ids, v, logit, buf, alpha);
      for (std::int64_t j0 = 0; j0 < d_out; j0 += tile) {
        const std::int64_t j1 = std::min(j0 + tile, d_out);
        if constexpr (HasWeightedRowBlock<WMsg>::value) {
          if (plan.register_block) {
            wmsg.apply_rows_weighted(ops, indices + lo, hi - lo, buf.data(),
                                     out_row, j0, j1, plan.unroll);
            continue;
          }
        }
        for (std::int64_t i = lo; i < hi; ++i)
          wmsg.template apply<SumReducer>(ops, indices[i], edge_ids[i],
                                          static_cast<vid_t>(v), out_row, j0,
                                          j1);
      }
    }
  }
}

// --- launch ----------------------------------------------------------------

template <class LogitFn, class WMsg>
void launch(const graph::Csr& adj, const LogitFn& logit, const WMsg& wmsg,
            float* out, float* alpha, std::int64_t d_out,
            const CpuSpmmSchedule& sched) {
  const std::int64_t n = adj.num_rows;
  if (n == 0) return;
  static obs::Counter& obs_launches =
      obs::Registry::global().counter("attention.launch.count");
  static obs::Counter& obs_edges =
      obs::Registry::global().counter("attention.edges.swept");
  obs_launches.add(1);
  obs_edges.add(static_cast<std::int64_t>(adj.nnz()));
  obs::TraceScope obs_span("attention.launch");
  if (obs_span.active()) {
    obs_span.arg("rows", n)
        .arg("nnz", static_cast<std::int64_t>(adj.nnz()))
        .arg("d_out", d_out)
        .arg("isa", simd::isa_name(simd::active_isa()))
        .arg("program",
             static_cast<std::int64_t>(schedule_program_hash(sched)));
  }
  // Flat knobs or the attached Schedule-IR program lower once per launch
  // (the same hoisting as generalized_spmm).
  const LoweredSpmmPlan plan =
      lower_spmm_schedule(sched, n, d_out, simd::active_isa());
  // Dispatch hoisted once per launch, as in the SpMM/SDDMM templates.
  // Deliberately NOT width-aware (span_ops_for_width): the same table runs
  // the degree-length softmax spans, and the composed chain's
  // edge_softmax resolves span_ops() — a narrow-d launch swapping the
  // whole table would run AVX2 exp_scale over a >= 16-edge segment where
  // the composed chain runs AVX-512, breaking the fused == composed
  // bit-for-bit contract. Narrow aggregation spans ride the intra-table
  // n < 16 fallback instead.
  const simd::SpanOps& span = simd::span_ops();
  // shard(S) programs route through the same dispatcher as SpMM: the fused
  // pass and the phase-1 softmax both write only rows they own, so the
  // sharded sweep is bit-identical to the static split (alpha included).
  const auto row_sweep = [&](auto&& body) {
    detail::run_row_sweep(plan, adj.indptr.data(), n, body);
  };
  const auto* parts = cached_partition(adj, plan.num_partitions);
  if (parts == nullptr || parts->parts.size() <= 1) {
    row_sweep([&](std::int64_t r0, std::int64_t r1) {
      fused_rows(span, adj, r0, r1, logit, wmsg, out, d_out, plan, alpha);
    });
    return;
  }
  // Partitioned two-phase launch: alpha first (the softmax needs the whole
  // row, which partition segments split), then the d-wide aggregation as a
  // regular partitioned SpMM over the weighted functor. alpha values match
  // the fused pass bit-for-bit (same per-row order); only the aggregation's
  // edge-visit order reassociates, exactly like partitioned SpMM.
  row_sweep([&](std::int64_t r0, std::int64_t r1) {
    softmax_rows(span, adj, r0, r1, logit, alpha);
  });
  generalized_spmm<WMsg, SumReducer>(adj, parts, wmsg, out, d_out, sched);
}

const Tensor& require(const Tensor* t, const char* what) {
  FG_CHECK_MSG(t != nullptr && t->defined(), what);
  return *t;
}

/// Resolves the logit functor, then launches. Returns the output tensor;
/// alpha is written in place.
template <class WMsg>
Tensor run_attention(const graph::Csr& adj, const WMsg& wmsg,
                     std::int64_t d_out, const CpuSpmmSchedule& fds,
                     const AttentionOperands& operands, float* alpha) {
  Tensor out({adj.num_rows, d_out});
  if (operands.edge_logits != nullptr) {
    const Tensor& l = *operands.edge_logits;
    FG_CHECK_MSG(l.numel() == adj.nnz(),
                 "edge_logits must hold one scalar per edge");
    launch(adj, EdgeLogit{l.data(), operands.logit_scale}, wmsg, out.data(),
           alpha, d_out, fds);
    return out;
  }
  const Tensor* q =
      operands.query != nullptr ? operands.query : operands.src_feat;
  const Tensor& qt = require(q, "attention requires query (or src_feat)");
  const Tensor& kt = operands.key != nullptr ? *operands.key : qt;
  FG_CHECK(qt.rows() == adj.num_cols);
  FG_CHECK(kt.rows() == adj.num_rows);
  FG_CHECK_MSG(qt.row_size() == kt.row_size(),
               "attention query/key widths must match");
  launch(adj,
         DotLogit{qt.data(), kt.data(), qt.row_size(), operands.logit_scale},
         wmsg, out.data(), alpha, d_out, fds);
  return out;
}

}  // namespace

AttentionResult attention(const graph::Csr& adj, std::string_view msg_op,
                          const CpuSpmmSchedule& fds,
                          const AttentionOperands& operands) {
  AttentionResult res;
  res.alpha = Tensor::zeros({adj.nnz()});
  float* a = res.alpha.data();

  if (msg_op == "copy_u") {
    const Tensor& x = require(operands.src_feat, "copy_u requires src_feat");
    FG_CHECK(x.rows() == adj.num_cols);
    res.out = run_attention(adj, WCopyU{x.data(), x.row_size(), a},
                            x.row_size(), fds, operands, a);
    return res;
  }
  if (msg_op == "copy_e") {
    const Tensor& e = require(operands.edge_feat, "copy_e requires edge_feat");
    FG_CHECK(adj.nnz() > 0 && e.numel() % adj.nnz() == 0);
    const std::int64_t d = e.numel() / adj.nnz();
    res.out = run_attention(adj, WCopyE{e.data(), d, a}, d, fds, operands, a);
    return res;
  }
  if (msg_op == "u_add_v" || msg_op == "u_sub_v" || msg_op == "u_mul_v" ||
      msg_op == "u_div_v") {
    const Tensor& x = require(operands.src_feat, "u_op_v requires src_feat");
    FG_CHECK(x.rows() == adj.num_cols);
    const std::int64_t d = x.row_size();
    if (msg_op == "u_add_v") {
      res.out = run_attention(adj, WUOpV<OpAdd>{x.data(), d, a}, d, fds,
                              operands, a);
    } else if (msg_op == "u_sub_v") {
      res.out = run_attention(adj, WUOpV<OpSub>{x.data(), d, a}, d, fds,
                              operands, a);
    } else if (msg_op == "u_mul_v") {
      res.out = run_attention(adj, WUOpV<OpMul>{x.data(), d, a}, d, fds,
                              operands, a);
    } else {
      res.out = run_attention(adj, WUOpV<OpDiv>{x.data(), d, a}, d, fds,
                              operands, a);
    }
    return res;
  }
  if (msg_op == "u_add_e" || msg_op == "u_mul_e") {
    const Tensor& x = require(operands.src_feat, "u_op_e requires src_feat");
    const Tensor& e = require(operands.edge_feat, "u_op_e requires edge_feat");
    FG_CHECK(x.rows() == adj.num_cols);
    const std::int64_t d = x.row_size();
    const std::int64_t d_edge = adj.nnz() > 0 ? e.numel() / adj.nnz() : 1;
    FG_CHECK_MSG(d_edge == 1 || d_edge == d,
                 "edge feature must be scalar or match src feature width");
    if (msg_op == "u_add_e") {
      res.out = run_attention(
          adj, WUOpE<OpAdd>{x.data(), e.data(), d, d_edge, a}, d, fds,
          operands, a);
    } else {
      res.out = run_attention(
          adj, WUOpE<OpMul>{x.data(), e.data(), d, d_edge, a}, d, fds,
          operands, a);
    }
    return res;
  }
  if (msg_op == "mlp") {
    const Tensor& x = require(operands.src_feat, "mlp requires src_feat");
    const Tensor& w = require(operands.weight, "mlp requires weight");
    FG_CHECK(x.rows() == adj.num_cols);
    FG_CHECK(w.rank() == 2 && w.shape(0) == x.row_size());
    FG_CHECK_MSG(x.row_size() <= kMaxMlpInputDim,
                 "mlp UDF supports d1 <= kMaxMlpInputDim");
    res.out = run_attention(
        adj, WMlpMsg{x.data(), x.row_size(), w.data(), w.shape(1), a},
        w.shape(1), fds, operands, a);
    return res;
  }
  FG_CHECK_MSG(false, "unknown attention message op");
}

Tensor edge_softmax(const graph::Csr& adj, const tensor::Tensor& logits,
                    int num_threads) {
  FG_CHECK(logits.numel() == adj.nnz());
  Tensor alpha = Tensor::zeros({adj.nnz()});
  const simd::SpanOps& span = simd::span_ops();
  const EdgeLogit logit{logits.data(), 1.0f};
  float* a = alpha.data();
  parallel::parallel_for_nnz_ranges(
      adj.indptr.data(), 0, adj.num_rows, num_threads,
      [&](std::int64_t r0, std::int64_t r1) {
        softmax_rows(span, adj, r0, r1, logit, a);
      });
  return alpha;
}

Tensor edge_softmax_backward(const graph::Csr& adj,
                             const tensor::Tensor& alpha,
                             const tensor::Tensor& dalpha, int num_threads) {
  FG_CHECK(alpha.numel() == adj.nnz() && dalpha.numel() == adj.nnz());
  Tensor out = Tensor::zeros({adj.nnz()});
  const simd::SpanOps& span = simd::span_ops();
  const float* av = alpha.data();
  const float* gv = dalpha.data();
  float* dv = out.data();
  const std::int64_t* indptr = adj.indptr.data();
  const eid_t* edge_ids = adj.edge_ids.data();
  parallel::parallel_for_nnz_ranges(
      indptr, 0, adj.num_rows, num_threads,
      [&](std::int64_t r0, std::int64_t r1) {
        // Gather the segment into contiguous scratch so the vectorized dot
        // computes <alpha, dalpha> per destination.
        thread_local std::vector<float> abuf, gbuf;
        for (std::int64_t v = r0; v < r1; ++v) {
          const std::int64_t lo = indptr[v], hi = indptr[v + 1];
          const std::int64_t deg = hi - lo;
          if (deg == 0) continue;
          if (static_cast<std::int64_t>(abuf.size()) < deg) {
            abuf.resize(static_cast<std::size_t>(deg));
            gbuf.resize(static_cast<std::size_t>(deg));
          }
          for (std::int64_t i = lo; i < hi; ++i) {
            abuf[static_cast<std::size_t>(i - lo)] = av[edge_ids[i]];
            gbuf[static_cast<std::size_t>(i - lo)] = gv[edge_ids[i]];
          }
          const float dot = simd::dot(span, abuf.data(), gbuf.data(), deg);
          for (std::int64_t i = lo; i < hi; ++i) {
            const eid_t e = edge_ids[i];
            dv[e] = av[e] * (gv[e] - dot);
          }
        }
      });
  return out;
}

}  // namespace featgraph::core
