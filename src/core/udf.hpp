// Fine-grained user-defined functions (UDFs), the second granularity of the
// paper's programming interface (Sec. III-B).
//
// A message function computes, for edge (u -> v) with edge id e, the
// elements of a message vector that the SpMM template folds into the
// destination row. An edge function computes, for the same tuple, the
// elements of a new edge feature (SDDMM). In the original system UDFs are
// TVM tensor expressions inlined into the IR template; here they are
// functors the compiler inlines into the C++ kernel templates — same fusion,
// same decoupling (the functor knows nothing about traversal or
// partitioning; the template knows nothing about the feature computation).
//
// The functor protocol for SpMM message functions is BULK-SPAN: one call
// folds the whole feature span [j0, j1) of one edge's message into the
// destination row under the reducer, instead of surrendering each element to
// a per-element callback. This is the paper's FDS story made concrete — the
// feature axis is bound to the vector units (core/simd.hpp span primitives,
// AVX-512/AVX2 with scalar fallback) while the template owns traversal:
//
//   template <class Reducer>
//   void apply(const simd::SpanOps& ops, vid u, eid e, vid v,
//              float* out_row, i64 j0, i64 j1) const
//   // out_row[j] = Reducer::combine(out_row[j], msg_j)   for j in [j0, j1)
//
// `ops` is the span-primitive table the kernel template resolved ONCE at
// launch (simd::span_ops()): per-edge calls index the table directly instead
// of re-running the atomic-load dispatch on every span — the hoisting that
// matters once feature tiles are narrow.
//
// Messages are still never materialized (span primitives fuse the message
// computation with the reducer combine); the reducer is a template parameter
// so the fused (msg, reduce) pair compiles to a single vector loop.
//
// The protocol for SDDMM edge functions:
//   float partial(const simd::SpanOps& ops, vid u, eid e, vid v,
//                 i64 h, i64 k0, i64 k1) const
// returns the partial reduction of output element h over the reduce-axis
// tile [k0, k1); the template sums partials across tiles (this is what the
// FDS's reduce-axis tiling manipulates).
//
// Builtin UDFs cover all DGL builtin message functions the paper cites
// (copy-u/copy-e and u-op-v / u-op-e elementwise forms) plus the paper's
// flagship complex UDFs: MLP aggregation (Fig. 3b) and (multi-head)
// dot-product attention (Fig. 4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/simd.hpp"
#include "graph/csr.hpp"
#include "support/check.hpp"

namespace featgraph::core {

using graph::eid_t;
using graph::vid_t;

// ---------------------------------------------------------------------------
// SpMM message functions
// ---------------------------------------------------------------------------

/// msg = x_u  (GCN aggregation, paper Fig. 3a).
struct CopyU {
  /// The template skips loading per-entry edge ids for UDFs that never read
  /// them (saves 8 B of adjacency traffic per edge visit).
  static constexpr bool kUsesEdgeId = false;
  /// Register-blocked row-group protocol (Schedule-IR unroll path): the
  /// message is a pure gather of source rows, so a row's whole in-edge
  /// group can fold through simd::accum_rows with the output tile pinned in
  /// vector registers.
  static constexpr bool kSupportsRowBlock = true;
  const float* x;
  std::int64_t d;
  template <class Reducer>
  void apply(const simd::SpanOps& ops, vid_t u, eid_t, vid_t, float* out_row,
             std::int64_t j0, std::int64_t j1) const {
    const float* xu = x + static_cast<std::int64_t>(u) * d;
    simd::accum(ops, Reducer::kAccum, out_row + j0, xu + j0, j1 - j0);
  }
  /// Folds source rows idx[0..cnt) into out_row[j0, j1) in order — the same
  /// per-element combine chain cnt apply() calls would run.
  template <class Reducer>
  void apply_rows(const simd::SpanOps& ops, const vid_t* idx,
                  std::int64_t cnt, float* out_row, std::int64_t j0,
                  std::int64_t j1, int unroll) const {
    simd::accum_rows(ops, Reducer::kAccum, out_row + j0, x + j0, d, idx, cnt,
                     j1 - j0, unroll);
  }
};

/// msg = e  (copy edge feature).
struct CopyE {
  static constexpr bool kUsesEdgeId = true;
  const float* edge;
  std::int64_t d;
  template <class Reducer>
  void apply(const simd::SpanOps& ops, vid_t, eid_t e, vid_t, float* out_row,
             std::int64_t j0, std::int64_t j1) const {
    const float* ee = edge + e * d;
    simd::accum(ops, Reducer::kAccum, out_row + j0, ee + j0, j1 - j0);
  }
};

/// msg = x_u (op) x_v, elementwise.
template <class BinOp>
struct UOpV {
  static constexpr bool kUsesEdgeId = false;
  const float* x;
  std::int64_t d;
  template <class Reducer>
  void apply(const simd::SpanOps& ops, vid_t u, eid_t, vid_t v,
             float* out_row, std::int64_t j0, std::int64_t j1) const {
    const float* xu = x + static_cast<std::int64_t>(u) * d;
    const float* xv = x + static_cast<std::int64_t>(v) * d;
    simd::accum_binop(ops, Reducer::kAccum, BinOp::kBinOp, out_row + j0,
                      xu + j0, xv + j0, j1 - j0);
  }
};

/// msg = x_u (op) e. Edge features may be scalars (d_edge == 1, broadcast)
/// or full vectors (d_edge == d).
template <class BinOp>
struct UOpE {
  static constexpr bool kUsesEdgeId = true;
  const float* x;
  const float* edge;
  std::int64_t d;
  std::int64_t d_edge;  // 1 (broadcast scalar) or d
  template <class Reducer>
  void apply(const simd::SpanOps& ops, vid_t u, eid_t e, vid_t,
             float* out_row, std::int64_t j0, std::int64_t j1) const {
    const float* xu = x + static_cast<std::int64_t>(u) * d;
    if (d_edge == 1) {
      simd::accum_binop_scalar(ops, Reducer::kAccum, BinOp::kBinOp,
                               out_row + j0, xu + j0, edge[e], j1 - j0);
    } else {
      const float* ee = edge + e * d;
      simd::accum_binop(ops, Reducer::kAccum, BinOp::kBinOp, out_row + j0,
                        xu + j0, ee + j0, j1 - j0);
    }
  }
};

// Elementwise op tags; `kBinOp` routes to the matching SIMD span primitive.
struct OpAdd {
  static constexpr simd::BinOp kBinOp = simd::BinOp::kAdd;
  float operator()(float a, float b) const { return a + b; }
};
struct OpSub {
  static constexpr simd::BinOp kBinOp = simd::BinOp::kSub;
  float operator()(float a, float b) const { return a - b; }
};
struct OpMul {
  static constexpr simd::BinOp kBinOp = simd::BinOp::kMul;
  float operator()(float a, float b) const { return a * b; }
};
struct OpDiv {
  static constexpr simd::BinOp kBinOp = simd::BinOp::kDiv;
  float operator()(float a, float b) const { return a / b; }
};

inline constexpr std::int64_t kMaxMlpInputDim = 128;

/// MLP aggregation message (paper Fig. 3b):
///   msg_j = ReLU( sum_k (x_u[k] + x_v[k]) * W[k, j] )
/// with x in R^{n x d1}, W in R^{d1 x d2}. The d2 axis is the message
/// dimension the FDS tiles/parallelizes; the k axis is its reduce axis.
///
/// The bulk form walks k outermost and sweeps the j span with axpy — the
/// rank-1-update layout that keeps W row accesses contiguous and the j loop
/// on the vector units. ReLU forces one materialized span (the activation
/// must see the finished dot product before the reducer folds it), staged in
/// a per-thread scratch buffer.
struct MlpMsg {
  static constexpr bool kUsesEdgeId = false;
  const float* x;
  std::int64_t d1;
  const float* w;  // row-major d1 x d2
  std::int64_t d2;
  template <class Reducer>
  void apply(const simd::SpanOps& ops, vid_t u, eid_t, vid_t v,
             float* out_row, std::int64_t j0, std::int64_t j1) const {
    FG_DCHECK(d1 <= kMaxMlpInputDim);
    const float* xu = x + static_cast<std::int64_t>(u) * d1;
    const float* xv = x + static_cast<std::int64_t>(v) * d1;
    float s[kMaxMlpInputDim];
    for (std::int64_t k = 0; k < d1; ++k) s[k] = xu[k] + xv[k];
    const std::int64_t n = j1 - j0;
    thread_local std::vector<float> scratch;
    if (static_cast<std::int64_t>(scratch.size()) < n)
      scratch.resize(static_cast<std::size_t>(n));
    float* msg = scratch.data();
    simd::fill(ops, msg, 0.0f, n);
    for (std::int64_t k = 0; k < d1; ++k)
      simd::axpy(ops, msg, w + k * d2 + j0, s[k], n);
    simd::relu(ops, msg, n);
    simd::accum(ops, Reducer::kAccum, out_row + j0, msg, n);
  }
};

/// Type-erased message function for arbitrary user code: writes the whole
/// message vector. This is the "blackbox UDF" path (what a traditional graph
/// processing system sees); it doubles as the reference implementation in
/// tests and as the flexibility escape hatch of the public API.
using GenericMsgFn =
    std::function<void(vid_t u, eid_t e, vid_t v, float* msg_out)>;

// ---------------------------------------------------------------------------
// SDDMM edge functions
// ---------------------------------------------------------------------------

/// out_e = <a_u, b_v>  (dot-product attention, paper Fig. 4a, with a == b;
/// gradients use different a/b, e.g. d(u_mul_e)/d(e) = <x_u, dOut_v>).
struct DotUV {
  const float* a;
  const float* b;
  std::int64_t d;
  std::int64_t num_out() const { return 1; }
  std::int64_t reduce_len() const { return d; }
  float partial(const simd::SpanOps& ops, vid_t u, eid_t, vid_t v,
                std::int64_t, std::int64_t k0, std::int64_t k1) const {
    const float* au = a + static_cast<std::int64_t>(u) * d;
    const float* bv = b + static_cast<std::int64_t>(v) * d;
    return simd::dot(ops, au + k0, bv + k0, k1 - k0);
  }
};

/// out_{e,h} = <a_u[h,:], b_v[h,:]> for h heads (paper Fig. 4b);
/// tensors are (n x heads x head_dim) row-major.
struct MultiHeadDotUV {
  const float* a;
  const float* b;
  std::int64_t heads;
  std::int64_t head_dim;
  std::int64_t num_out() const { return heads; }
  std::int64_t reduce_len() const { return head_dim; }
  float partial(const simd::SpanOps& ops, vid_t u, eid_t, vid_t v,
                std::int64_t h, std::int64_t k0, std::int64_t k1) const {
    const float* au =
        a + (static_cast<std::int64_t>(u) * heads + h) * head_dim;
    const float* bv =
        b + (static_cast<std::int64_t>(v) * heads + h) * head_dim;
    return simd::dot(ops, au + k0, bv + k0, k1 - k0);
  }
};

/// out_{e,j} = a_u[j] (op) b_v[j] — elementwise edge outputs from two dense
/// vertex tensors (a == b is the common case). Reduce axis is trivial.
template <class BinOp>
struct UOpVEdge {
  const float* a;
  const float* b;
  std::int64_t d;
  BinOp op;
  std::int64_t num_out() const { return d; }
  std::int64_t reduce_len() const { return 1; }
  float partial(const simd::SpanOps&, vid_t u, eid_t, vid_t v,
                std::int64_t j, std::int64_t, std::int64_t) const {
    return op(a[static_cast<std::int64_t>(u) * d + j],
              b[static_cast<std::int64_t>(v) * d + j]);
  }
};

/// Type-erased edge function: writes all num_out outputs for one edge.
using GenericEdgeFn =
    std::function<void(vid_t u, eid_t e, vid_t v, float* out)>;

}  // namespace featgraph::core
