// Fine-grained user-defined functions (UDFs), the second granularity of the
// paper's programming interface (Sec. III-B).
//
// A message function computes, for edge (u -> v) with edge id e, the
// elements of a message vector that the SpMM template folds into the
// destination row. An edge function computes, for the same tuple, the
// elements of a new edge feature (SDDMM). In the original system UDFs are
// TVM tensor expressions inlined into the IR template; here they are
// functors the compiler inlines into the C++ kernel templates — same fusion,
// same decoupling (the functor knows nothing about traversal or
// partitioning; the template knows nothing about the feature computation).
//
// The functor protocol for SpMM message functions:
//   template <class Acc>
//   void operator()(vid u, eid e, vid v, i64 j0, i64 j1, Acc&& acc) const
// computes message elements j in [j0, j1) and calls acc(j, value) — the
// template supplies `acc` to fold values straight into the output row, so
// messages are never materialized.
//
// The protocol for SDDMM edge functions:
//   float partial(vid u, eid e, vid v, i64 h, i64 k0, i64 k1) const
// returns the partial reduction of output element h over the reduce-axis
// tile [k0, k1); the template sums partials across tiles (this is what the
// FDS's reduce-axis tiling manipulates).
//
// Builtin UDFs cover all DGL builtin message functions the paper cites
// (copy-u/copy-e and u-op-v / u-op-e elementwise forms) plus the paper's
// flagship complex UDFs: MLP aggregation (Fig. 3b) and (multi-head)
// dot-product attention (Fig. 4).
#pragma once

#include <cstdint>
#include <functional>

#include "graph/csr.hpp"
#include "support/check.hpp"

namespace featgraph::core {

using graph::eid_t;
using graph::vid_t;

// ---------------------------------------------------------------------------
// SpMM message functions
// ---------------------------------------------------------------------------

/// msg = x_u  (GCN aggregation, paper Fig. 3a).
struct CopyU {
  /// The template skips loading per-entry edge ids for UDFs that never read
  /// them (saves 8 B of adjacency traffic per edge visit).
  static constexpr bool kUsesEdgeId = false;
  const float* x;
  std::int64_t d;
  template <class Acc>
  void operator()(vid_t u, eid_t, vid_t, std::int64_t j0, std::int64_t j1,
                  Acc&& acc) const {
    const float* xu = x + static_cast<std::int64_t>(u) * d;
    for (std::int64_t j = j0; j < j1; ++j) acc(j, xu[j]);
  }
};

/// msg = e  (copy edge feature).
struct CopyE {
  static constexpr bool kUsesEdgeId = true;
  const float* edge;
  std::int64_t d;
  template <class Acc>
  void operator()(vid_t, eid_t e, vid_t, std::int64_t j0, std::int64_t j1,
                  Acc&& acc) const {
    const float* ee = edge + e * d;
    for (std::int64_t j = j0; j < j1; ++j) acc(j, ee[j]);
  }
};

/// msg = x_u (op) x_v, elementwise.
template <class BinOp>
struct UOpV {
  static constexpr bool kUsesEdgeId = false;
  const float* x;
  std::int64_t d;
  BinOp op;
  template <class Acc>
  void operator()(vid_t u, eid_t, vid_t v, std::int64_t j0, std::int64_t j1,
                  Acc&& acc) const {
    const float* xu = x + static_cast<std::int64_t>(u) * d;
    const float* xv = x + static_cast<std::int64_t>(v) * d;
    for (std::int64_t j = j0; j < j1; ++j) acc(j, op(xu[j], xv[j]));
  }
};

/// msg = x_u (op) e. Edge features may be scalars (d_edge == 1, broadcast)
/// or full vectors (d_edge == d).
template <class BinOp>
struct UOpE {
  static constexpr bool kUsesEdgeId = true;
  const float* x;
  const float* edge;
  std::int64_t d;
  std::int64_t d_edge;  // 1 (broadcast scalar) or d
  BinOp op;
  template <class Acc>
  void operator()(vid_t u, eid_t e, vid_t, std::int64_t j0, std::int64_t j1,
                  Acc&& acc) const {
    const float* xu = x + static_cast<std::int64_t>(u) * d;
    if (d_edge == 1) {
      const float ew = edge[e];
      for (std::int64_t j = j0; j < j1; ++j) acc(j, op(xu[j], ew));
    } else {
      const float* ee = edge + e * d;
      for (std::int64_t j = j0; j < j1; ++j) acc(j, op(xu[j], ee[j]));
    }
  }
};

struct OpAdd {
  float operator()(float a, float b) const { return a + b; }
};
struct OpSub {
  float operator()(float a, float b) const { return a - b; }
};
struct OpMul {
  float operator()(float a, float b) const { return a * b; }
};
struct OpDiv {
  float operator()(float a, float b) const { return a / b; }
};

inline constexpr std::int64_t kMaxMlpInputDim = 128;

/// MLP aggregation message (paper Fig. 3b):
///   msg_j = ReLU( sum_k (x_u[k] + x_v[k]) * W[k, j] )
/// with x in R^{n x d1}, W in R^{d1 x d2}. The d2 axis is the message
/// dimension the FDS tiles/parallelizes; the k axis is its reduce axis.
struct MlpMsg {
  static constexpr bool kUsesEdgeId = false;
  const float* x;
  std::int64_t d1;
  const float* w;  // row-major d1 x d2
  std::int64_t d2;
  template <class Acc>
  void operator()(vid_t u, eid_t, vid_t v, std::int64_t j0, std::int64_t j1,
                  Acc&& acc) const {
    FG_DCHECK(d1 <= kMaxMlpInputDim);
    const float* xu = x + static_cast<std::int64_t>(u) * d1;
    const float* xv = x + static_cast<std::int64_t>(v) * d1;
    float s[kMaxMlpInputDim];
    for (std::int64_t k = 0; k < d1; ++k) s[k] = xu[k] + xv[k];
    for (std::int64_t j = j0; j < j1; ++j) {
      float dot = 0.0f;
      for (std::int64_t k = 0; k < d1; ++k) dot += s[k] * w[k * d2 + j];
      acc(j, dot > 0.0f ? dot : 0.0f);
    }
  }
};

/// Type-erased message function for arbitrary user code: writes the whole
/// message vector. This is the "blackbox UDF" path (what a traditional graph
/// processing system sees); it doubles as the reference implementation in
/// tests and as the flexibility escape hatch of the public API.
using GenericMsgFn =
    std::function<void(vid_t u, eid_t e, vid_t v, float* msg_out)>;

// ---------------------------------------------------------------------------
// SDDMM edge functions
// ---------------------------------------------------------------------------

/// out_e = <a_u, b_v>  (dot-product attention, paper Fig. 4a, with a == b;
/// gradients use different a/b, e.g. d(u_mul_e)/d(e) = <x_u, dOut_v>).
struct DotUV {
  const float* a;
  const float* b;
  std::int64_t d;
  std::int64_t num_out() const { return 1; }
  std::int64_t reduce_len() const { return d; }
  float partial(vid_t u, eid_t, vid_t v, std::int64_t, std::int64_t k0,
                std::int64_t k1) const {
    const float* au = a + static_cast<std::int64_t>(u) * d;
    const float* bv = b + static_cast<std::int64_t>(v) * d;
    float acc = 0.0f;
    for (std::int64_t k = k0; k < k1; ++k) acc += au[k] * bv[k];
    return acc;
  }
};

/// out_{e,h} = <a_u[h,:], b_v[h,:]> for h heads (paper Fig. 4b);
/// tensors are (n x heads x head_dim) row-major.
struct MultiHeadDotUV {
  const float* a;
  const float* b;
  std::int64_t heads;
  std::int64_t head_dim;
  std::int64_t num_out() const { return heads; }
  std::int64_t reduce_len() const { return head_dim; }
  float partial(vid_t u, eid_t, vid_t v, std::int64_t h, std::int64_t k0,
                std::int64_t k1) const {
    const float* au =
        a + (static_cast<std::int64_t>(u) * heads + h) * head_dim;
    const float* bv =
        b + (static_cast<std::int64_t>(v) * heads + h) * head_dim;
    float acc = 0.0f;
    for (std::int64_t k = k0; k < k1; ++k) acc += au[k] * bv[k];
    return acc;
  }
};

/// out_{e,j} = a_u[j] (op) b_v[j] — elementwise edge outputs from two dense
/// vertex tensors (a == b is the common case). Reduce axis is trivial.
template <class BinOp>
struct UOpVEdge {
  const float* a;
  const float* b;
  std::int64_t d;
  BinOp op;
  std::int64_t num_out() const { return d; }
  std::int64_t reduce_len() const { return 1; }
  float partial(vid_t u, eid_t, vid_t v, std::int64_t j, std::int64_t,
                std::int64_t) const {
    return op(a[static_cast<std::int64_t>(u) * d + j],
              b[static_cast<std::int64_t>(v) * d + j]);
  }
};

/// Type-erased edge function: writes all num_out outputs for one edge.
using GenericEdgeFn =
    std::function<void(vid_t u, eid_t e, vid_t v, float* out)>;

}  // namespace featgraph::core
