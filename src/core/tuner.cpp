#include "core/tuner.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>
#include <tuple>

#include "support/timer.hpp"

namespace featgraph::core {

std::vector<CpuSpmmSchedule> default_spmm_candidates(std::int64_t d_out,
                                                     int num_threads) {
  std::vector<CpuSpmmSchedule> grid;
  const std::vector<LoadBalance> balances = load_balance_axis(num_threads);
  for (int parts : {1, 2, 4, 8, 16, 32}) {
    for (std::int64_t tile : {std::int64_t{0}, std::int64_t{16},
                              std::int64_t{32}, std::int64_t{64},
                              std::int64_t{128}}) {
      if (tile > d_out) continue;
      for (LoadBalance lb : balances) {
        CpuSpmmSchedule s;
        s.num_partitions = parts;
        s.feat_tile = tile;
        s.num_threads = num_threads;
        s.load_balance = lb;
        grid.push_back(s);
      }
    }
  }
  return grid;
}

SpmmTuneResult tune_spmm(const graph::Csr& adj, std::string_view msg_op,
                         std::string_view reduce_op,
                         const SpmmOperands& operands,
                         std::vector<CpuSpmmSchedule> candidates,
                         int timing_reps) {
  FG_CHECK(!candidates.empty());
  SpmmTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();
  for (const auto& cand : candidates) {
    const double secs = support::time_mean_seconds(
        [&] { (void)spmm(adj, msg_op, reduce_op, cand, operands); },
        timing_reps);
    result.trials.push_back({cand, secs});
    if (secs < result.best_seconds) {
      result.best_seconds = secs;
      result.best = cand;
    }
  }
  return result;
}

namespace {

struct TuneKey {
  std::uint64_t adj_uid;  // structure uid, not address (addresses recycle)
  std::string msg_op;
  std::string reduce_op;
  std::int64_t d;
  int threads;
  bool operator<(const TuneKey& o) const {
    return std::tie(adj_uid, msg_op, reduce_op, d, threads) <
           std::tie(o.adj_uid, o.msg_op, o.reduce_op, o.d, o.threads);
  }
};

std::mutex g_tune_mutex;
std::map<TuneKey, CpuSpmmSchedule> g_tune_cache;

}  // namespace

CpuSpmmSchedule tuned_spmm_schedule(const graph::Csr& adj,
                                    std::string_view msg_op,
                                    std::string_view reduce_op,
                                    const SpmmOperands& operands,
                                    int num_threads) {
  const std::int64_t d =
      operands.weight != nullptr ? operands.weight->shape(1)
                                 : operands.src_feat->row_size();
  const TuneKey key{adj.uid, std::string(msg_op), std::string(reduce_op), d,
                    num_threads};
  {
    std::lock_guard<std::mutex> lock(g_tune_mutex);
    auto it = g_tune_cache.find(key);
    if (it != g_tune_cache.end()) return it->second;
  }
  SpmmTuneResult tuned =
      tune_spmm(adj, msg_op, reduce_op, operands,
                default_spmm_candidates(d, num_threads));
  std::lock_guard<std::mutex> lock(g_tune_mutex);
  g_tune_cache.emplace(key, tuned.best);
  return tuned.best;
}

SpmmTuneResult tune_attention(const graph::Csr& adj, std::string_view msg_op,
                              const AttentionOperands& operands,
                              std::vector<CpuSpmmSchedule> candidates,
                              int timing_reps) {
  FG_CHECK(!candidates.empty());
  SpmmTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();
  for (const auto& cand : candidates) {
    const double secs = support::time_mean_seconds(
        [&] { (void)attention(adj, msg_op, cand, operands); }, timing_reps);
    result.trials.push_back({cand, secs});
    if (secs < result.best_seconds) {
      result.best_seconds = secs;
      result.best = cand;
    }
  }
  return result;
}

CpuSpmmSchedule tuned_attention_schedule(const graph::Csr& adj,
                                         std::string_view msg_op,
                                         const AttentionOperands& operands,
                                         int num_threads) {
  // d_out resolution mirrors attention()'s msg-op dispatch: mlp aggregates
  // to the weight's output width, copy_e to the edge feature width, and the
  // u-op family to the source feature width.
  std::int64_t d = 0;
  if (operands.weight != nullptr && operands.weight->defined()) {
    d = operands.weight->shape(1);
  } else if (msg_op == "copy_e") {
    FG_CHECK_MSG(operands.edge_feat != nullptr && operands.edge_feat->defined() &&
                     adj.nnz() > 0,
                 "copy_e attention tuning requires edge_feat");
    d = operands.edge_feat->numel() / adj.nnz();
  } else {
    FG_CHECK_MSG(operands.src_feat != nullptr && operands.src_feat->defined(),
                 "attention tuning requires src_feat for this msg_op");
    d = operands.src_feat->row_size();
  }
  const TuneKey key{adj.uid, "attn:" + std::string(msg_op), "sum", d,
                    num_threads};
  {
    std::lock_guard<std::mutex> lock(g_tune_mutex);
    auto it = g_tune_cache.find(key);
    if (it != g_tune_cache.end()) return it->second;
  }
  std::vector<CpuSpmmSchedule> candidates =
      default_spmm_candidates(d, num_threads);
  for (auto& c : candidates) c.num_threads = num_threads;
  SpmmTuneResult tuned =
      tune_attention(adj, msg_op, operands, std::move(candidates));
  std::lock_guard<std::mutex> lock(g_tune_mutex);
  g_tune_cache.emplace(key, tuned.best);
  return tuned.best;
}

std::function<double(const CpuSpmmSchedule&)> attention_measure_fn(
    const graph::Csr& adj, std::string_view msg_op,
    const AttentionOperands& operands, int timing_reps) {
  return [&adj, msg_op = std::string(msg_op), operands,
          timing_reps](const CpuSpmmSchedule& sched) {
    return support::time_mean_seconds(
        [&] { (void)attention(adj, msg_op, sched, operands); }, timing_reps);
  };
}

CpuSpmmSchedule heuristic_spmm_schedule(const graph::Csr& adj,
                                        std::int64_t d_feat, int num_threads) {
  CpuSpmmSchedule s;
  s.num_threads = num_threads;
  s.load_balance = LoadBalance::kNnzBalanced;  // never worse on skewed graphs
  s.feat_tile = std::min<std::int64_t>(d_feat, 64);
  const double tile_bytes = static_cast<double>(s.feat_tile) * sizeof(float);
  const double src_bytes = static_cast<double>(adj.num_cols) * tile_bytes;
  const double budget = 12.5 * 1024 * 1024;  // half of the paper's 25 MB LLC
  int parts = 1;
  while (parts < 64 && src_bytes / parts > budget) parts *= 2;
  s.num_partitions = parts;
  return s;
}

}  // namespace featgraph::core
