#include "core/tuner.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "core/schedule_ir.hpp"
#include "gpusim/attention_gpu.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace featgraph::core {

std::vector<CpuSpmmSchedule> default_spmm_candidates(std::int64_t d_out,
                                                     int num_threads) {
  std::vector<CpuSpmmSchedule> grid;
  const std::vector<LoadBalance> balances = load_balance_axis(num_threads);
  for (int parts : {1, 2, 4, 8, 16, 32}) {
    for (std::int64_t tile : {std::int64_t{0}, std::int64_t{16},
                              std::int64_t{32}, std::int64_t{64},
                              std::int64_t{128}}) {
      if (tile > d_out) continue;
      for (LoadBalance lb : balances) {
        CpuSpmmSchedule s;
        s.num_partitions = parts;
        s.feat_tile = tile;
        s.num_threads = num_threads;
        s.load_balance = lb;
        grid.push_back(s);
      }
    }
  }
  return grid;
}

std::vector<CpuSpmmSchedule> default_spmm_ir_candidates(std::int64_t d_out,
                                                        std::int64_t num_rows,
                                                        int num_threads) {
  std::vector<CpuSpmmSchedule> grid;
  const simd::Isa isa = simd::active_isa();
  auto push = [&](const ScheduleIr& ir) {
    // Illegal programs (tile not a lane multiple on this backend, chunk past
    // the row count, ...) are filtered here, never measured.
    if (!ir.empty() && !validate_spmm_ir(ir, num_rows, d_out, isa).empty())
      return;
    CpuSpmmSchedule s;
    s.num_threads = num_threads;
    if (!ir.empty()) s.ir = std::make_shared<const ScheduleIr>(ir);
    grid.push_back(s);
  };

  // Candidate #0: the empty program. Lowered, it IS the untuned default
  // schedule (needs_interpreter() == false), so the tuner's first
  // measurement reproduces the pre-IR baseline bit-for-bit.
  push(ScheduleIr{});

  // Register-blocked feature tiles x row chunks. Tile widths are lane
  // multiples of SOME backend; the validator keeps only the ones legal for
  // the active one, so AVX2 and AVX-512 legs search different grids.
  for (std::int64_t w : {std::int64_t{8}, std::int64_t{16}, std::int64_t{32},
                         std::int64_t{64}}) {
    if (w > d_out) continue;
    for (int u : {1, 2, 4}) {
      for (std::int64_t chunk : {std::int64_t{0}, std::int64_t{1024}}) {
        ScheduleIr ir;
        ir.tile(w);
        if (u > 1) ir.unroll(u);
        if (chunk > 0) ir.chunk(std::min(chunk, num_rows));
        push(ir);
      }
    }
  }

  // The template half: source partitioning, plain and register-blocked.
  std::int64_t w_widest = 0;
  for (std::int64_t w : {std::int64_t{8}, std::int64_t{16}, std::int64_t{32},
                         std::int64_t{64}}) {
    if (w <= d_out &&
        validate_spmm_ir(ScheduleIr().tile(w), num_rows, d_out, isa).empty())
      w_widest = w;
  }
  for (int parts : {2, 4, 8}) {
    push(ScheduleIr().partition(parts));
    if (w_widest > 0)
      push(ScheduleIr().partition(parts).tile(w_widest).unroll(4));
  }

  // The nnz-split policy flip, on the strongest blocked shape.
  for (LoadBalance lb : load_balance_axis(num_threads)) {
    if (lb == LoadBalance::kNnzBalanced) continue;  // the default policy
    ScheduleIr ir;
    ir.split_nnz(lb);
    if (w_widest > 0) ir.tile(w_widest).unroll(4);
    push(ir);
  }

  // Shard-parallel row sweeps (parallel/shard_exec.hpp). Only meaningful
  // with real lanes — at one thread the stealing executor degrades to the
  // serial sweep, so the 1-thread grid (and every recorded 1-core number)
  // is unchanged. 2x threads = minimal stealing headroom, 4x = the classic
  // over-decomposition point; each also tried register-blocked, plus a
  // coarser steal granularity on the bigger decomposition.
  if (num_threads > 1) {
    for (int mult : {2, 4}) {
      const int shards = mult * num_threads;
      push(ScheduleIr().shard(shards));
      if (w_widest > 0)
        push(ScheduleIr().shard(shards).tile(w_widest).unroll(4));
    }
    push(ScheduleIr().shard(4 * num_threads).steal_grain(2));
  }
  return grid;
}

SpmmTuneResult tune_spmm(const graph::Csr& adj, std::string_view msg_op,
                         std::string_view reduce_op,
                         const SpmmOperands& operands,
                         std::vector<CpuSpmmSchedule> candidates,
                         int timing_reps) {
  FG_CHECK(!candidates.empty());
  static obs::Counter& obs_tunes =
      obs::Registry::global().counter("tuner.tune.count");
  static obs::Counter& obs_trials =
      obs::Registry::global().counter("tuner.trial.count");
  obs_tunes.add(1);
  FG_TRACE_SCOPE("tuner.tune", obs::arg("kind", "spmm"),
                 obs::arg("candidates",
                          static_cast<std::int64_t>(candidates.size())));
  SpmmTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();
  for (const auto& cand : candidates) {
    obs_trials.add(1);
    FG_TRACE_SCOPE("tuner.trial");
    const double secs = support::time_mean_seconds(
        [&] { (void)spmm(adj, msg_op, reduce_op, cand, operands); },
        timing_reps);
    result.trials.push_back({cand, secs});
    if (secs < result.best_seconds) {
      result.best_seconds = secs;
      result.best = cand;
    }
  }
  return result;
}

namespace {

struct TuneKey {
  std::uint64_t adj_uid;  // structure uid, not address (addresses recycle)
  std::string msg_op;
  std::string reduce_op;
  std::int64_t d;
  int threads;
  bool operator<(const TuneKey& o) const {
    return std::tie(adj_uid, msg_op, reduce_op, d, threads) <
           std::tie(o.adj_uid, o.msg_op, o.reduce_op, o.d, o.threads);
  }
};

std::mutex g_tune_mutex;
std::map<TuneKey, CpuSpmmSchedule> g_tune_cache;

}  // namespace

CpuSpmmSchedule tuned_spmm_schedule(const graph::Csr& adj,
                                    std::string_view msg_op,
                                    std::string_view reduce_op,
                                    const SpmmOperands& operands,
                                    int num_threads) {
  const std::int64_t d =
      operands.weight != nullptr ? operands.weight->shape(1)
                                 : operands.src_feat->row_size();
  const TuneKey key{adj.uid, std::string(msg_op), std::string(reduce_op), d,
                    num_threads};
  {
    std::lock_guard<std::mutex> lock(g_tune_mutex);
    auto it = g_tune_cache.find(key);
    if (it != g_tune_cache.end()) return it->second;
  }
  SpmmTuneResult tuned =
      tune_spmm(adj, msg_op, reduce_op, operands,
                default_spmm_candidates(d, num_threads));
  std::lock_guard<std::mutex> lock(g_tune_mutex);
  g_tune_cache.emplace(key, tuned.best);
  return tuned.best;
}

SpmmTuneResult tune_attention(const graph::Csr& adj, std::string_view msg_op,
                              const AttentionOperands& operands,
                              std::vector<CpuSpmmSchedule> candidates,
                              int timing_reps) {
  FG_CHECK(!candidates.empty());
  static obs::Counter& obs_tunes =
      obs::Registry::global().counter("tuner.tune.count");
  static obs::Counter& obs_trials =
      obs::Registry::global().counter("tuner.trial.count");
  obs_tunes.add(1);
  FG_TRACE_SCOPE("tuner.tune", obs::arg("kind", "attention"),
                 obs::arg("candidates",
                          static_cast<std::int64_t>(candidates.size())));
  SpmmTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();
  for (const auto& cand : candidates) {
    obs_trials.add(1);
    FG_TRACE_SCOPE("tuner.trial");
    const double secs = support::time_mean_seconds(
        [&] { (void)attention(adj, msg_op, cand, operands); }, timing_reps);
    result.trials.push_back({cand, secs});
    if (secs < result.best_seconds) {
      result.best_seconds = secs;
      result.best = cand;
    }
  }
  return result;
}

CpuSpmmSchedule tuned_attention_schedule(const graph::Csr& adj,
                                         std::string_view msg_op,
                                         const AttentionOperands& operands,
                                         int num_threads) {
  // d_out resolution mirrors attention()'s msg-op dispatch: mlp aggregates
  // to the weight's output width, copy_e to the edge feature width, and the
  // u-op family to the source feature width.
  std::int64_t d = 0;
  if (operands.weight != nullptr && operands.weight->defined()) {
    d = operands.weight->shape(1);
  } else if (msg_op == "copy_e") {
    FG_CHECK_MSG(operands.edge_feat != nullptr && operands.edge_feat->defined() &&
                     adj.nnz() > 0,
                 "copy_e attention tuning requires edge_feat");
    d = operands.edge_feat->numel() / adj.nnz();
  } else {
    FG_CHECK_MSG(operands.src_feat != nullptr && operands.src_feat->defined(),
                 "attention tuning requires src_feat for this msg_op");
    d = operands.src_feat->row_size();
  }
  const TuneKey key{adj.uid, "attn:" + std::string(msg_op), "sum", d,
                    num_threads};
  {
    std::lock_guard<std::mutex> lock(g_tune_mutex);
    auto it = g_tune_cache.find(key);
    if (it != g_tune_cache.end()) return it->second;
  }
  std::vector<CpuSpmmSchedule> candidates =
      default_spmm_candidates(d, num_threads);
  for (auto& c : candidates) c.num_threads = num_threads;
  SpmmTuneResult tuned =
      tune_attention(adj, msg_op, operands, std::move(candidates));
  std::lock_guard<std::mutex> lock(g_tune_mutex);
  g_tune_cache.emplace(key, tuned.best);
  return tuned.best;
}

std::function<double(const CpuSpmmSchedule&)> attention_measure_fn(
    const graph::Csr& adj, std::string_view msg_op,
    const AttentionOperands& operands, int timing_reps) {
  return [&adj, msg_op = std::string(msg_op), operands,
          timing_reps](const CpuSpmmSchedule& sched) {
    return support::time_mean_seconds(
        [&] { (void)attention(adj, msg_op, sched, operands); }, timing_reps);
  };
}

// --- gpusim fused-attention axis --------------------------------------------

std::vector<GpuSpmmSchedule> default_gpu_attention_candidates() {
  std::vector<GpuSpmmSchedule> grid;
  {
    // The plain kernel: no staging, the whole smem budget is softmax
    // scratch (the best a non-hybrid launch can do).
    GpuSpmmSchedule s;
    s.hybrid_partition = false;
    s.attention_softmax_smem_frac = 1.0;
    grid.push_back(s);
  }
  for (int rpt : {32, 64, 128}) {
    for (double frac : {0.25, 0.5, 0.75}) {
      for (LoadBalance ra : {LoadBalance::kNnzBalanced,
                             LoadBalance::kStaticRows}) {
        GpuSpmmSchedule s;
        s.hybrid_partition = true;
        s.hybrid_rows_per_tile = rpt;
        s.attention_softmax_smem_frac = frac;
        s.row_assignment = ra;
        grid.push_back(s);
      }
    }
  }
  return grid;
}

GpuAttentionTuneResult tune_attention_gpu(
    const graph::Csr& adj, std::string_view msg_op,
    const AttentionOperands& operands,
    std::vector<GpuSpmmSchedule> candidates, const gpusim::DeviceSpec& spec) {
  FG_CHECK(!candidates.empty());
  GpuAttentionTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();
  for (const auto& cand : candidates) {
    // The objective is the SIMULATED cost — deterministic, so one
    // evaluation per candidate and no timing reps.
    const double secs =
        gpusim::attention_gpu(adj, msg_op, cand, operands, spec).cost.total_s;
    result.trials.push_back({cand, secs});
    if (secs < result.best_seconds) {
      result.best_seconds = secs;
      result.best = cand;
    }
  }
  return result;
}

namespace {

/// (graph, kernel, width, smem budget): the smem budget is the DeviceSpec
/// field the smem-split search is structurally sensitive to — a schedule
/// tuned for a 96 KB block must not be served to a 48 KB one.
struct GpuTuneKey {
  std::uint64_t adj_uid;
  std::string msg_op;
  std::int64_t d;
  std::int64_t smem_bytes_per_block;
  bool operator<(const GpuTuneKey& o) const {
    return std::tie(adj_uid, msg_op, d, smem_bytes_per_block) <
           std::tie(o.adj_uid, o.msg_op, o.d, o.smem_bytes_per_block);
  }
};

std::map<GpuTuneKey, GpuSpmmSchedule> g_gpu_attn_cache;

}  // namespace

GpuSpmmSchedule tuned_gpu_attention_schedule(const graph::Csr& adj,
                                             std::string_view msg_op,
                                             const AttentionOperands& operands,
                                             const gpusim::DeviceSpec& spec) {
  const std::int64_t d =
      operands.weight != nullptr && operands.weight->defined()
          ? operands.weight->shape(1)
          : (operands.src_feat != nullptr && operands.src_feat->defined()
                 ? operands.src_feat->row_size()
                 : 0);
  const GpuTuneKey key{adj.uid, std::string(msg_op), d,
                       spec.smem_bytes_per_block};
  {
    std::lock_guard<std::mutex> lock(g_tune_mutex);
    auto it = g_gpu_attn_cache.find(key);
    if (it != g_gpu_attn_cache.end()) return it->second;
  }
  GpuAttentionTuneResult tuned = tune_attention_gpu(
      adj, msg_op, operands, default_gpu_attention_candidates(), spec);
  std::lock_guard<std::mutex> lock(g_tune_mutex);
  g_gpu_attn_cache.emplace(key, tuned.best);
  return tuned.best;
}

std::function<double(const GpuSpmmSchedule&)> gpu_attention_measure_fn(
    const graph::Csr& adj, std::string_view msg_op,
    const AttentionOperands& operands, const gpusim::DeviceSpec& spec) {
  return [&adj, msg_op = std::string(msg_op), operands,
          spec](const GpuSpmmSchedule& sched) {
    return gpusim::attention_gpu(adj, msg_op, sched, operands, spec)
        .cost.total_s;
  };
}

CpuSpmmSchedule heuristic_spmm_schedule(const graph::Csr& adj,
                                        std::int64_t d_feat, int num_threads) {
  CpuSpmmSchedule s;
  s.num_threads = num_threads;
  s.load_balance = LoadBalance::kNnzBalanced;  // never worse on skewed graphs
  s.feat_tile = std::min<std::int64_t>(d_feat, 64);
  const double tile_bytes = static_cast<double>(s.feat_tile) * sizeof(float);
  const double src_bytes = static_cast<double>(adj.num_cols) * tile_bytes;
  const double budget = 12.5 * 1024 * 1024;  // half of the paper's 25 MB LLC
  int parts = 1;
  while (parts < 64 && src_bytes / parts > budget) parts *= 2;
  s.num_partitions = parts;
  return s;
}

}  // namespace featgraph::core
