#include "core/partition_cache.hpp"

#include <map>
#include <mutex>

#include "parallel/thread_pool.hpp"

namespace featgraph::core {

namespace {

std::mutex g_mutex;
// Keyed by the CSR's process-unique uid + partition count (never by
// address: addresses get recycled, uids do not). Entries are stable
// pointers (unique_ptr) so callers can hold results across insertions.
std::map<std::pair<std::uint64_t, int>,
         std::unique_ptr<graph::SrcPartitionedCsr>>
    g_cache;

}  // namespace

const graph::SrcPartitionedCsr* cached_partition(const graph::Csr& adj,
                                                 int num_partitions) {
  if (num_partitions <= 1) return nullptr;
  const auto key = std::make_pair(adj.uid, num_partitions);
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = g_cache.find(key);
  if (it == g_cache.end()) {
    // Build with every available lane (workers + the caller): partitioning
    // is the per-topology setup cost on the sharded hot path, and the
    // parallel build is bit-identical to the serial one by construction.
    const int threads =
        static_cast<int>(parallel::ThreadPool::global().num_workers()) + 1;
    auto parts = std::make_unique<graph::SrcPartitionedCsr>(
        graph::partition_by_source(adj, num_partitions, threads));
    it = g_cache.emplace(key, std::move(parts)).first;
  }
  return it->second.get();
}

void clear_partition_cache() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_cache.clear();
}

}  // namespace featgraph::core
