#include "core/partition_cache.hpp"

#include <map>
#include <mutex>

namespace featgraph::core {

namespace {

std::mutex g_mutex;
// Keyed by the CSR's process-unique uid + partition count (never by
// address: addresses get recycled, uids do not). Entries are stable
// pointers (unique_ptr) so callers can hold results across insertions.
std::map<std::pair<std::uint64_t, int>,
         std::unique_ptr<graph::SrcPartitionedCsr>>
    g_cache;

}  // namespace

const graph::SrcPartitionedCsr* cached_partition(const graph::Csr& adj,
                                                 int num_partitions) {
  if (num_partitions <= 1) return nullptr;
  const auto key = std::make_pair(adj.uid, num_partitions);
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = g_cache.find(key);
  if (it == g_cache.end()) {
    auto parts = std::make_unique<graph::SrcPartitionedCsr>(
        graph::partition_by_source(adj, num_partitions));
    it = g_cache.emplace(key, std::move(parts)).first;
  }
  return it->second.get();
}

void clear_partition_cache() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_cache.clear();
}

}  // namespace featgraph::core
