// Aggregation functions for generalized SpMM: "sum and any commutative
// reducer is allowed" (paper Sec. III-B). Each reducer supplies an identity
// and a combine; Mean is Sum plus a per-row degree division; empty rows
// (zero in-degree) produce 0 for every reducer, matching DGL semantics.
#pragma once

#include <limits>

#include "core/simd.hpp"

namespace featgraph::core {

// Each reducer's `kAccum` names the SIMD span-accumulation kind the bulk UDF
// protocol folds with (udf.hpp); `combine` remains the scalar semantics the
// span primitives must match element-for-element.

struct SumReducer {
  static constexpr simd::Accum kAccum = simd::Accum::kSum;
  static constexpr float identity() { return 0.0f; }
  static float combine(float a, float b) { return a + b; }
  /// Value written for rows with no in-edges after aggregation.
  static constexpr float empty_value() { return 0.0f; }
  static constexpr bool needs_degree_normalize() { return false; }
};

struct MaxReducer {
  static constexpr simd::Accum kAccum = simd::Accum::kMax;
  static constexpr float identity() {
    return -std::numeric_limits<float>::infinity();
  }
  static float combine(float a, float b) { return a > b ? a : b; }
  static constexpr float empty_value() { return 0.0f; }
  static constexpr bool needs_degree_normalize() { return false; }
};

struct MinReducer {
  static constexpr simd::Accum kAccum = simd::Accum::kMin;
  static constexpr float identity() {
    return std::numeric_limits<float>::infinity();
  }
  static float combine(float a, float b) { return a < b ? a : b; }
  static constexpr float empty_value() { return 0.0f; }
  static constexpr bool needs_degree_normalize() { return false; }
};

/// Sum followed by division by the row's in-degree.
struct MeanReducer {
  static constexpr simd::Accum kAccum = simd::Accum::kSum;
  static constexpr float identity() { return 0.0f; }
  static float combine(float a, float b) { return a + b; }
  static constexpr float empty_value() { return 0.0f; }
  static constexpr bool needs_degree_normalize() { return true; }
};

}  // namespace featgraph::core
