// Budgeted schedule search — the paper's future work made concrete:
// "it is an interesting future direction to try more intelligent tuners
// [OpenTuner, AutoTVM] for faster design space exploration" (Sec. IV-A).
//
// This tuner replaces exhaustive grid search with random-restart hill
// climbing over an N-axis schedule lattice — the flat
// (num_partitions, feat_tile, load_balance) knobs, or the wider Schedule-IR
// space with register-blocked tiles and row chunking (smart_tune_spmm_ir):
// evaluate a few seed points, then repeatedly step to the best untried
// neighbor (x2 / /2 moves along the numeric axes, a flip on the row-split
// policy) until no neighbor improves, respecting a hard trial budget. On
// the spaces FeatGraph cares about the runtime cost surface is close to
// unimodal along each axis (Fig. 14), which hill climbing exploits —
// typically reaching the grid-search winner with a third of the
// measurements (see bench_ablation_tuner).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/schedule.hpp"

namespace featgraph::core {

struct SmartTuneOptions {
  int max_trials = 12;       // hard measurement budget
  int num_seeds = 3;         // random-restart seed points
  std::uint64_t seed = 1;    // deterministic search
  std::int64_t max_partitions = 64;
  std::int64_t min_tile = 8;
};

struct SmartTuneResult {
  CpuSpmmSchedule best;
  double best_seconds = 0.0;
  int trials_used = 0;
};

/// Measurement callback: returns the runtime of a candidate schedule. The
/// tuner is kernel-agnostic through this hook: SpMM launches and fused
/// attention launches (core/tuner.hpp's attention_measure_fn) tune over the
/// identical (num_partitions, feat_tile, load_balance) lattice.
using MeasureFn = std::function<double(const CpuSpmmSchedule&)>;

/// Hill-climbs the schedule space within `options.max_trials` measurements.
/// `d_out` bounds the feature-tile axis; `num_threads` is fixed across
/// candidates. Deterministic for a fixed options.seed.
SmartTuneResult smart_tune_spmm(std::int64_t d_out, int num_threads,
                                const MeasureFn& measure,
                                const SmartTuneOptions& options = {});

/// Hill-climbs the Schedule-IR lattice — (partition count, register-blocked
/// tile(W).unroll(U) combo, row chunk, nnz-split policy) — under the same
/// budget and restart strategy. Every lattice point is a legal IR program
/// for the active backend (tile widths pre-filtered through
/// validate_spmm_ir); the deterministic first seed is the EMPTY program,
/// which lowers to the untuned default schedule bit-for-bit. Returned
/// schedules carry their program in CpuSpmmSchedule::ir.
SmartTuneResult smart_tune_spmm_ir(std::int64_t d_out, std::int64_t num_rows,
                                   int num_threads, const MeasureFn& measure,
                                   const SmartTuneOptions& options = {});

// --- gpusim fused-attention lattice -----------------------------------------

/// Measurement callback for the GPU-attention axis: returns the SIMULATED
/// cost of a candidate gpusim schedule (core/tuner.hpp's
/// gpu_attention_measure_fn wraps one attention_gpu evaluation).
using GpuMeasureFn = std::function<double(const GpuSpmmSchedule&)>;

struct GpuSmartTuneResult {
  GpuSpmmSchedule best;
  double best_seconds = 0.0;
  int trials_used = 0;
};

/// Hill-climbs the fused gpusim-attention lattice — hybrid_rows_per_tile x
/// attention_softmax_smem_frac x row_assignment, with hybrid source staging
/// on (the smem split only exists under staging; the plain full-scratch
/// kernel is the grid tuner's extra candidate) — under the same trial
/// budget and random-restart strategy as smart_tune_spmm. Deterministic for
/// a fixed options.seed.
GpuSmartTuneResult smart_tune_gpu_attention(
    const GpuMeasureFn& measure, const SmartTuneOptions& options = {});

}  // namespace featgraph::core
