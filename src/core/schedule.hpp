// Schedules: the knobs of FeatGraph's two-level optimization space.
//
// The paper splits a kernel's schedule into (a) template parameters owned by
// the sparse template (number of graph partitions, CUDA block counts,
// hybrid-partitioning threshold) and (b) the user-provided feature dimension
// schedule, FDS (feature tiling factors, parallelization/binding of the
// feature axis, tree reduction). This header holds both halves; the tuner
// (core/tuner.hpp) searches their product space by grid search, exactly as
// Sec. IV-A describes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace featgraph::core {

class ScheduleIr;  // core/schedule_ir.hpp — composable loop-nest programs

enum class Target { kCpu, kGpuSim };

/// How destination rows are split across the threads cooperating inside one
/// partition.
enum class LoadBalance : int {
  /// Equal ROW counts per thread: cheapest split, but power-law graphs leave
  /// every thread idle behind the one that drew the hub rows.
  kStaticRows = 0,
  /// Equal NNZ per thread: boundaries found by binary search over the indptr
  /// prefix sums (parallel/parallel_for.hpp), so per-thread edge work is
  /// even regardless of the degree distribution.
  kNnzBalanced = 1,
};

/// The load-balance values worth searching at a given thread count — the
/// single source of truth both tuners draw their axis from. At one thread
/// the two policies run the identical sweep, so only the default is listed;
/// element 0 always matches CpuSpmmSchedule's default (the smart tuner's
/// first seed point relies on that).
inline std::vector<LoadBalance> load_balance_axis(int num_threads) {
  if (num_threads <= 1) return {LoadBalance::kNnzBalanced};
  return {LoadBalance::kNnzBalanced, LoadBalance::kStaticRows};
}

/// CPU generalized-SpMM schedule.
struct CpuSpmmSchedule {
  /// Template half: number of 1D source partitions (1 = no partitioning).
  int num_partitions = 1;
  /// FDS half: feature tile width in elements (0 = whole feature vector).
  std::int64_t feat_tile = 0;
  /// Worker threads; threads cooperate on one partition at a time
  /// (Sec. IV-A) so the LLC holds a single partition's working set.
  int num_threads = 1;
  /// Template half: row-split policy inside a partition. Results are
  /// identical under either policy (per-row work is untouched); the tuner
  /// searches both because the winner depends on degree skew.
  LoadBalance load_balance = LoadBalance::kNnzBalanced;

  /// Optional composable loop-nest program (core/schedule_ir.hpp). When set
  /// and non-empty it is AUTHORITATIVE for every loop-nest decision —
  /// partitions, tiling, chunking, register blocking, row split — except
  /// num_threads, which stays a flat knob. When null the flat knobs above
  /// are the schedule (they lower to the equivalent default program), so
  /// every pre-IR consumer keeps its exact behavior.
  std::shared_ptr<const ScheduleIr> ir;

  static CpuSpmmSchedule single_thread_default() { return {}; }
};

/// CPU generalized-SDDMM schedule.
struct CpuSddmmSchedule {
  /// FDS half: tile width of the per-edge reduction axis (0 = untiled).
  std::int64_t reduce_tile = 0;
  /// Template half: visit edges in Hilbert-curve order (Sec. III-C-1).
  bool hilbert_order = false;
  int num_threads = 1;
  /// Optional loop-nest program; SDDMM accepts tile (reduce axis) and chunk
  /// (edge positions) transforms. Null = flat knobs.
  std::shared_ptr<const ScheduleIr> ir;
};

/// GPU (simulated) generalized-SpMM schedule.
struct GpuSpmmSchedule {
  /// Template half: CUDA blocks in the grid; rows are cyclically assigned.
  int num_blocks = 4096;
  /// FDS half: threads per block, bound to the feature axis (Fig. 7a).
  int threads_per_block = 256;
  /// Template half: hybrid degree-based partitioning (Sec. III-C-3).
  bool hybrid_partition = false;
  /// Quantile of the source-degree distribution above which sources are
  /// staged in shared memory when hybrid_partition is on.
  double hybrid_quantile = 0.8;
  /// Rows per shared-memory staging tile: the hybrid kernel grid-strides
  /// over row tiles of this size, staging the high-degree sources each tile
  /// touches. Larger tiles see more reuse per staged row but need more
  /// shared memory (the paper's read-efficiency vs merge-cost trade-off).
  int hybrid_rows_per_tile = 32;
  /// How destination rows are assigned to staging tiles/blocks: kStaticRows
  /// cuts uniform hybrid_rows_per_tile chunks; kNnzBalanced reuses the CPU
  /// kernels' nnz_split_point so every tile owns ~equal edge work (same tile
  /// COUNT, boundaries moved — power-law graphs otherwise leave most blocks
  /// idle behind the one holding the hub rows).
  LoadBalance row_assignment = LoadBalance::kNnzBalanced;
  /// Fused-attention FDS (gpusim/attention_gpu.hpp): fraction of the
  /// per-block shared-memory budget reserved for the segment-softmax
  /// scratch; the remainder stages high-degree source rows when
  /// hybrid_partition is on. A destination row whose in-degree overflows
  /// the scratch spills its logits to global memory (two stores — the
  /// logit write and the exp rewrite — plus three read passes per spilled
  /// logit), so the knob trades softmax spills against source-staging
  /// reuse — both tuners search it.
  double attention_softmax_smem_frac = 0.5;
};

/// GPU (simulated) generalized-SDDMM schedule.
struct GpuSddmmSchedule {
  int num_blocks = 4096;
  int threads_per_block = 256;
  /// FDS half: tree reduction across threads for per-edge dots (Fig. 7b);
  /// false degenerates to Gunrock's one-thread-per-edge strategy.
  bool tree_reduce = true;
};

}  // namespace featgraph::core
