#include "core/schedule_ir.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace featgraph::core {

namespace {

std::string format(const char* fmt, long long a, long long b = 0) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

/// The tile alignment an ISA's executing table demands. AVX-512 spans
/// narrower than 16 reroute to the 8-wide AVX2 twin (simd.hpp's narrow-span
/// rule), so an avx512 program may pick W == 8 — it genuinely executes
/// 8-wide — but a W >= 16 tile must fill whole 512-bit vectors.
std::int64_t required_multiple(simd::Isa isa, std::int64_t width) {
  switch (simd::effective_isa(isa)) {
    case simd::Isa::kScalar:
      return 1;
    case simd::Isa::kAvx2:
      return 8;
    case simd::Isa::kAvx512:
      return width < 16 ? 8 : 16;
  }
  return 1;
}

std::string check_tile_width(std::int64_t w, std::int64_t d_out,
                             simd::Isa isa, const char* what) {
  if (w < 1)
    return std::string(what) +
           format(" width must be >= 1, got %lld", static_cast<long long>(w));
  if (w > d_out)
    return std::string(what) + format(" width %lld exceeds feature width %lld",
                                      static_cast<long long>(w),
                                      static_cast<long long>(d_out));
  const std::int64_t mult = required_multiple(isa, w);
  if (w % mult != 0)
    return std::string(what) +
           format(" width %lld is not a multiple of the %lld-lane vector "
                  "width of the executing backend",
                  static_cast<long long>(w), static_cast<long long>(mult));
  return "";
}

}  // namespace

const char* ir_transform_name(IrTransformKind kind) {
  switch (kind) {
    case IrTransformKind::kChunkRows:
      return "chunk";
    case IrTransformKind::kTileFeat:
      return "tile";
    case IrTransformKind::kUnroll:
      return "unroll";
    case IrTransformKind::kSplitNnz:
      return "split_nnz";
    case IrTransformKind::kPartition:
      return "partition";
    case IrTransformKind::kOverridePartition:
      return "override_partition";
    case IrTransformKind::kShardRows:
      return "shard";
    case IrTransformKind::kStealGrain:
      return "steal_grain";
  }
  return "unknown";
}

std::string ScheduleIr::describe() const {
  std::string s;
  for (const IrTransform& t : transforms_) {
    if (!s.empty()) s += '.';
    s += ir_transform_name(t.kind);
    char buf[64];
    switch (t.kind) {
      case IrTransformKind::kSplitNnz:
        std::snprintf(buf, sizeof(buf), "(%s)",
                      t.balance == LoadBalance::kNnzBalanced ? "nnz" : "rows");
        break;
      case IrTransformKind::kOverridePartition:
        std::snprintf(buf, sizeof(buf), "(%d, %lld)", t.part_index,
                      static_cast<long long>(t.factor));
        break;
      default:
        std::snprintf(buf, sizeof(buf), "(%lld)",
                      static_cast<long long>(t.factor));
        break;
    }
    s += buf;
  }
  return s;
}

int isa_vector_width(simd::Isa isa) {
  switch (simd::effective_isa(isa)) {
    case simd::Isa::kScalar:
      return 1;
    case simd::Isa::kAvx2:
      return 8;
    case simd::Isa::kAvx512:
      return 16;
  }
  return 1;
}

std::string validate_spmm_ir(const ScheduleIr& ir, std::int64_t num_rows,
                             std::int64_t d_out, simd::Isa isa) {
  bool seen[kNumIrTransformKinds] = {};
  bool has_tile = false;
  bool has_shard = false;
  std::int64_t partitions = 0;
  std::vector<int> override_indices;
  for (const IrTransform& t : ir.transforms()) {
    const int k = static_cast<int>(t.kind);
    if (t.kind != IrTransformKind::kOverridePartition) {
      if (seen[k])
        return std::string("duplicate transform: ") + ir_transform_name(t.kind);
      seen[k] = true;
    }
    switch (t.kind) {
      case IrTransformKind::kChunkRows:
        if (t.factor < 1)
          return format("chunk factor must be >= 1, got %lld",
                        static_cast<long long>(t.factor));
        if (t.factor > num_rows)
          return format("chunk factor %lld exceeds row count %lld",
                        static_cast<long long>(t.factor),
                        static_cast<long long>(num_rows));
        break;
      case IrTransformKind::kTileFeat: {
        if (t.factor < 1)
          return format("tile width must be >= 1, got %lld",
                        static_cast<long long>(t.factor));
        const std::string err = check_tile_width(t.factor, d_out, isa, "tile");
        if (!err.empty()) return err;
        has_tile = true;
        break;
      }
      case IrTransformKind::kUnroll:
        if (t.factor < 1 || t.factor > 8)
          return format("unroll factor must be in [1, 8], got %lld",
                        static_cast<long long>(t.factor));
        break;
      case IrTransformKind::kSplitNnz:
        break;
      case IrTransformKind::kPartition:
        if (t.factor < 1)
          return format("partition count must be >= 1, got %lld",
                        static_cast<long long>(t.factor));
        partitions = t.factor;
        break;
      case IrTransformKind::kOverridePartition: {
        if (t.part_index < 0)
          return format("override_partition index must be >= 0, got %lld",
                        t.part_index);
        for (const int seen_idx : override_indices) {
          if (seen_idx == t.part_index)
            return format(
                "duplicate transform: override_partition for partition %lld",
                t.part_index);
        }
        override_indices.push_back(t.part_index);
        if (t.factor < 1)
          return format("override_partition width must be >= 1, got %lld",
                        static_cast<long long>(t.factor));
        const std::string err =
            check_tile_width(t.factor, d_out, isa, "override_partition");
        if (!err.empty()) return err;
        break;
      }
      case IrTransformKind::kShardRows:
        // A shard factor above the row count is legal — execution clamps it
        // (effective_shards) so one program serves every block shape a
        // schedule cache replays it on; chunk() rejects that instead because
        // its factor is a per-thread blocking size, not a decomposition.
        if (t.factor < 1)
          return format("shard count must be >= 1, got %lld",
                        static_cast<long long>(t.factor));
        has_shard = true;
        break;
      case IrTransformKind::kStealGrain:
        if (t.factor < 1)
          return format("steal_grain must be >= 1, got %lld",
                        static_cast<long long>(t.factor));
        break;
    }
  }
  if (seen[static_cast<int>(IrTransformKind::kUnroll)] && !has_tile)
    return "unroll requires a feature tile (add tile(W) first)";
  if (seen[static_cast<int>(IrTransformKind::kStealGrain)] && !has_shard)
    return "steal_grain requires a shard transform (add shard(S) first)";
  for (const int idx : override_indices) {
    if (partitions == 0)
      return "override_partition requires a partition transform";
    if (idx >= partitions)
      return format(
          "override_partition index %lld is out of range for partition(%lld)",
          idx, static_cast<long long>(partitions));
  }
  return "";
}

std::string validate_sddmm_ir(const ScheduleIr& ir, std::int64_t num_edges,
                              std::int64_t reduce_len, simd::Isa isa) {
  (void)isa;
  bool seen[kNumIrTransformKinds] = {};
  for (const IrTransform& t : ir.transforms()) {
    const int k = static_cast<int>(t.kind);
    if (seen[k])
      return std::string("duplicate transform: ") + ir_transform_name(t.kind);
    seen[k] = true;
    switch (t.kind) {
      case IrTransformKind::kChunkRows:
        if (t.factor < 1)
          return format("chunk factor must be >= 1, got %lld",
                        static_cast<long long>(t.factor));
        if (t.factor > num_edges)
          return format("chunk factor %lld exceeds edge count %lld",
                        static_cast<long long>(t.factor),
                        static_cast<long long>(num_edges));
        break;
      case IrTransformKind::kTileFeat:
        // Reduce-axis tiling: the partials reassociate exactly like the
        // flat reduce_tile knob, so any width in range is legal (the dot
        // primitive is tolerance-class, not bit-compared).
        if (t.factor < 1)
          return format("tile width must be >= 1, got %lld",
                        static_cast<long long>(t.factor));
        if (t.factor > reduce_len)
          return format("tile width %lld exceeds reduce length %lld",
                        static_cast<long long>(t.factor),
                        static_cast<long long>(reduce_len));
        break;
      default:
        return std::string(ir_transform_name(t.kind)) +
               " is not a legal SDDMM transform (SDDMM programs may only "
               "tile the reduce axis or chunk edge positions)";
    }
  }
  return "";
}

LoweredSpmmPlan lower_spmm_schedule(const CpuSpmmSchedule& sched,
                                    std::int64_t num_rows, std::int64_t d_out,
                                    simd::Isa isa) {
  LoweredSpmmPlan plan;
  plan.num_threads = sched.num_threads;
  if (sched.ir == nullptr || sched.ir->empty()) {
    plan.feat_tile = sched.feat_tile;
    plan.load_balance = sched.load_balance;
    plan.num_partitions = sched.num_partitions;
    return plan;
  }
  const std::string err = validate_spmm_ir(*sched.ir, num_rows, d_out, isa);
  FG_CHECK_MSG(err.empty(), err.c_str());
  for (const IrTransform& t : sched.ir->transforms()) {
    switch (t.kind) {
      case IrTransformKind::kChunkRows:
        plan.row_chunk = t.factor;
        break;
      case IrTransformKind::kTileFeat:
        plan.feat_tile = t.factor;
        break;
      case IrTransformKind::kUnroll:
        plan.unroll = static_cast<int>(t.factor);
        plan.register_block = true;
        break;
      case IrTransformKind::kSplitNnz:
        plan.load_balance = t.balance;
        break;
      case IrTransformKind::kPartition:
        plan.num_partitions = static_cast<int>(t.factor);
        break;
      case IrTransformKind::kOverridePartition:
        plan.overrides.emplace_back(t.part_index, t.factor);
        break;
      case IrTransformKind::kShardRows:
        plan.num_shards = static_cast<int>(t.factor);
        break;
      case IrTransformKind::kStealGrain:
        plan.steal_grain = t.factor;
        break;
    }
  }
  return plan;
}

LoweredSddmmPlan lower_sddmm_schedule(const CpuSddmmSchedule& sched,
                                      std::int64_t num_edges,
                                      std::int64_t reduce_len,
                                      simd::Isa isa) {
  LoweredSddmmPlan plan;
  if (sched.ir == nullptr || sched.ir->empty()) {
    plan.reduce_tile = sched.reduce_tile;
    return plan;
  }
  const std::string err =
      validate_sddmm_ir(*sched.ir, num_edges, reduce_len, isa);
  FG_CHECK_MSG(err.empty(), err.c_str());
  for (const IrTransform& t : sched.ir->transforms()) {
    switch (t.kind) {
      case IrTransformKind::kChunkRows:
        plan.edge_chunk = t.factor;
        break;
      case IrTransformKind::kTileFeat:
        plan.reduce_tile = t.factor;
        break;
      default:
        break;
    }
  }
  return plan;
}

int schedule_num_partitions(const CpuSpmmSchedule& sched) {
  if (sched.ir != nullptr && !sched.ir->empty()) {
    for (const IrTransform& t : sched.ir->transforms()) {
      if (t.kind == IrTransformKind::kPartition)
        return static_cast<int>(t.factor);
    }
    return 1;
  }
  return sched.num_partitions;
}

ScheduleIr default_spmm_program(const CpuSpmmSchedule& sched) {
  ScheduleIr ir;
  if (sched.num_partitions > 1) ir.partition(sched.num_partitions);
  if (sched.feat_tile > 0) ir.tile(sched.feat_tile);
  if (sched.load_balance != LoadBalance::kNnzBalanced)
    ir.split_nnz(sched.load_balance);
  return ir;
}

std::uint64_t schedule_program_hash(const CpuSpmmSchedule& sched) {
  const ScheduleIr view =
      sched.ir != nullptr && !sched.ir->empty() ? *sched.ir
                                                : default_spmm_program(sched);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffu;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  for (const IrTransform& t : view.transforms()) {
    mix(static_cast<std::uint64_t>(t.kind) + 1);
    mix(static_cast<std::uint64_t>(t.factor));
    mix(static_cast<std::uint64_t>(t.balance));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(t.part_index)));
  }
  return h;
}

std::uint64_t schedule_program_hash(const CpuSpmmSchedule& sched,
                                    std::uint64_t epilogue_sig) {
  std::uint64_t h = schedule_program_hash(sched);
  if (epilogue_sig == 0) return h;  // unfused: identical to the base hash
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (epilogue_sig >> (byte * 8)) & 0xffu;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace featgraph::core
