#include "core/sddmm.hpp"

#include <map>
#include <memory>
#include <mutex>

#include "core/sddmm_kernels.hpp"
#include "graph/hilbert.hpp"

namespace featgraph::core {

namespace {

using tensor::Tensor;

std::mutex g_order_mutex;
// Keyed by the COO's process-unique uid (addresses get recycled, uids not).
std::map<std::uint64_t, std::unique_ptr<std::vector<graph::eid_t>>>
    g_order_cache;

template <class EdgeFn>
Tensor run_sddmm(const graph::Coo& coo, const EdgeFn& fn,
                 const CpuSddmmSchedule& fds) {
  const std::int64_t n_out = fn.num_out();
  Tensor out = n_out == 1 ? Tensor({coo.num_edges()})
                          : Tensor({coo.num_edges(), n_out});
  const std::vector<graph::eid_t>* order =
      fds.hilbert_order ? cached_hilbert_order(coo) : nullptr;
  generalized_sddmm(coo, order, fn, out.data(), fds);
  return out;
}

const Tensor& require(const Tensor* t, const char* what) {
  FG_CHECK_MSG(t != nullptr && t->defined(), what);
  return *t;
}

}  // namespace

const std::vector<graph::eid_t>* cached_hilbert_order(const graph::Coo& coo) {
  std::lock_guard<std::mutex> lock(g_order_mutex);
  auto it = g_order_cache.find(coo.uid);
  if (it == g_order_cache.end()) {
    auto order = std::make_unique<std::vector<graph::eid_t>>(
        graph::hilbert_edge_order(coo));
    it = g_order_cache.emplace(coo.uid, std::move(order)).first;
  }
  return it->second.get();
}

Tensor sddmm(const graph::Coo& coo, std::string_view edge_op,
             const CpuSddmmSchedule& fds, const SddmmOperands& ops) {
  const Tensor& a = require(ops.src_feat, "sddmm requires src_feat");
  const Tensor& b = ops.dst_feat != nullptr ? *ops.dst_feat : a;
  FG_CHECK(a.rows() == coo.num_src);
  FG_CHECK(b.rows() == coo.num_dst);
  FG_CHECK_MSG(a.row_size() == b.row_size(),
               "sddmm operand feature widths must match");

  if (edge_op == "dot") {
    return run_sddmm(coo, DotUV{a.data(), b.data(), a.row_size()}, fds);
  }
  if (edge_op == "multihead_dot") {
    FG_CHECK_MSG(a.rank() == 3, "multihead_dot expects (n x heads x dim)");
    return run_sddmm(
        coo, MultiHeadDotUV{a.data(), b.data(), a.shape(1), a.shape(2)}, fds);
  }
  if (edge_op == "u_add_v") {
    return run_sddmm(coo, UOpVEdge<OpAdd>{a.data(), b.data(), a.row_size(), {}},
                     fds);
  }
  if (edge_op == "u_mul_v") {
    return run_sddmm(coo, UOpVEdge<OpMul>{a.data(), b.data(), a.row_size(), {}},
                     fds);
  }
  FG_CHECK_MSG(false, "unknown sddmm edge op");
}

namespace {

struct GenericEdgeAdapter {
  const GenericEdgeFn* fn;
  std::int64_t d_out;
  std::int64_t num_out() const { return d_out; }
  std::int64_t reduce_len() const { return 1; }
  float partial(const simd::SpanOps&, graph::vid_t u, graph::eid_t e,
                graph::vid_t v, std::int64_t h, std::int64_t,
                std::int64_t) const {
    thread_local std::vector<float> buf;
    if (static_cast<std::int64_t>(buf.size()) < d_out) buf.resize(d_out);
    // The template calls partial once per output element; recomputing the
    // whole vector per element would be quadratic, so cache the last edge.
    thread_local graph::eid_t cached_edge = -1;
    thread_local const GenericEdgeFn* cached_fn = nullptr;
    if (cached_edge != e || cached_fn != fn) {
      (*fn)(u, e, v, buf.data());
      cached_edge = e;
      cached_fn = fn;
    }
    return buf[h];
  }
};

}  // namespace

Tensor sddmm_generic(const graph::Coo& coo, const GenericEdgeFn& fn,
                     std::int64_t d_out, const CpuSddmmSchedule& fds) {
  CpuSddmmSchedule sched = fds;
  sched.reduce_tile = 0;  // blackbox UDFs have no visible reduce axis
  return run_sddmm(coo, GenericEdgeAdapter{&fn, d_out}, sched);
}

}  // namespace featgraph::core
