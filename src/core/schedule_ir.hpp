// Composable loop-nest Schedule-IR — the paper's two-level (template x FDS)
// schedule space at full strength, replacing the handful of flat knobs on
// CpuSpmmSchedule/CpuSddmmSchedule with an ordered list of transforms over
// the (dst-row, nnz-pos, feature) loop nest, in the spirit of TACO's
// scheduleSpMMCPU (split / pos / reorder / parallelize with CHUNK_SIZE and
// UNROLL_FACTOR — the SNIPPETS.md exemplar).
//
// The IR is DECLARATIVE and cheap: a ScheduleIr is a short transform list a
// tuner composes; kernels never walk it per edge. At launch the list is
// LOWERED once into a LoweredSpmmPlan / LoweredSddmmPlan — a plain struct of
// hoisted decisions, exactly like the SpanOps table dispatch — and the
// kernel templates interpret the plan with branch-free inner loops.
//
// Transforms (SpMM / fused attention):
//   chunk(C)                 — process destination rows in chunks of C per
//                              thread range (LLC/L2 reuse of source rows
//                              across feature tiles).
//   tile(W)                  — feature tiles of width W. W must be a
//                              multiple of the executing ISA's vector width
//                              (AVX2: 8; AVX-512: 16, or 8 below the
//                              narrow-span reroute threshold), so the AVX2
//                              and AVX-512 tuner legs pick different
//                              winners. tile(W) alone is plain feature
//                              tiling — the identical code path the flat
//                              feat_tile knob runs.
//   unroll(U)                — register-block the tiled feature loop: the
//                              output tile stays in vector registers across
//                              a row's whole edge group (one load + one
//                              store per tile instead of per edge), with U
//                              vectors kept live. Requires tile().
//   split_nnz(balance)       — nnz-position splitting of the row sweep
//                              across threads (subsumes the flat
//                              load_balance knob).
//   partition(P)             — 1D source partitioning (the template half).
//   override_partition(i, W) — per-partition feature-tile override: segment
//                              i of a partitioned launch runs tile width W
//                              instead of the program's default tile.
//   shard(S)                 — shard-parallel row sweep: destination rows
//                              split into S nnz-balanced shards drained with
//                              cross-shard work stealing (parallel/
//                              shard_exec.hpp) instead of one static range
//                              per lane. S clamps to the row count at
//                              execution, so one shard program serves every
//                              block shape a schedule cache replays it on.
//   steal_grain(G)           — shards claimed G at a time by the stealing
//                              cursors (locality vs balance). Requires
//                              shard().
//
// Legality is checked by validate_spmm_ir / validate_sddmm_ir, which return
// a human-readable error string ("" = legal) so tuners can filter candidate
// programs and tests can assert on the message; lowering FG_CHECKs the same
// validation (API misuse aborts, as everywhere else in the repo).
//
// Bit-identity contract: every legal SpMM program produces output
// bit-for-bit identical to its flat-knob spelling on every backend, and
// every program WITHOUT a partition transform is additionally bit-identical
// to the default schedule. chunk/tile/unroll/split_nnz never change the
// per-(row, element) edge accumulation order, and the register-blocked
// unroll path folds the SAME sequential per-element combine chain in the
// SAME edge order — unroll groups vectors across the feature axis, never
// across edges, and no FMA contraction is introduced (simd.hpp's
// accum_rows/waxpy_rows contract). partition(P) regroups each destination
// row's in-edges by source bucket — the same intentional fold reorder the
// flat num_partitions knob has always performed (Sec. IV-A) — so a
// partitioned program matches flat {num_partitions = P, ...} bit-for-bit,
// not the unpartitioned default.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/schedule.hpp"
#include "core/simd.hpp"

namespace featgraph::core {

enum class IrTransformKind : int {
  kChunkRows = 0,
  kTileFeat = 1,
  kUnroll = 2,
  kSplitNnz = 3,
  kPartition = 4,
  kOverridePartition = 5,
  kShardRows = 6,
  kStealGrain = 7,
};

/// Number of transform kinds (validators size their duplicate bitmaps off
/// this so a new kind cannot silently index past them).
inline constexpr int kNumIrTransformKinds = 8;

const char* ir_transform_name(IrTransformKind kind);

struct IrTransform {
  IrTransformKind kind;
  /// chunk size / tile width / unroll factor / partition count / override
  /// tile width, depending on kind.
  std::int64_t factor = 0;
  /// kSplitNnz only: the row-split policy.
  LoadBalance balance = LoadBalance::kNnzBalanced;
  /// kOverridePartition only: which partition segment the override targets.
  int part_index = -1;
};

/// An ordered list of composable loop-nest transforms. Chainable builder:
///   ScheduleIr().chunk(256).tile(32).unroll(4)
/// Order is kept for describe()/hashing but does not change semantics; each
/// transform kind may appear at most once (override_partition: once per
/// partition index) — duplicates are a legality error, not last-wins.
class ScheduleIr {
 public:
  ScheduleIr& chunk(std::int64_t rows) {
    transforms_.push_back({IrTransformKind::kChunkRows, rows});
    return *this;
  }
  ScheduleIr& tile(std::int64_t width) {
    transforms_.push_back({IrTransformKind::kTileFeat, width});
    return *this;
  }
  ScheduleIr& unroll(std::int64_t factor) {
    transforms_.push_back({IrTransformKind::kUnroll, factor});
    return *this;
  }
  ScheduleIr& split_nnz(LoadBalance balance) {
    transforms_.push_back({IrTransformKind::kSplitNnz, 0, balance});
    return *this;
  }
  ScheduleIr& partition(int parts) {
    transforms_.push_back({IrTransformKind::kPartition, parts});
    return *this;
  }
  ScheduleIr& override_partition(int index, std::int64_t tile_width) {
    transforms_.push_back({IrTransformKind::kOverridePartition, tile_width,
                           LoadBalance::kNnzBalanced, index});
    return *this;
  }
  ScheduleIr& shard(int num_shards) {
    transforms_.push_back({IrTransformKind::kShardRows, num_shards});
    return *this;
  }
  ScheduleIr& steal_grain(std::int64_t grain) {
    transforms_.push_back({IrTransformKind::kStealGrain, grain});
    return *this;
  }

  const std::vector<IrTransform>& transforms() const { return transforms_; }
  bool empty() const { return transforms_.empty(); }

  /// Compact human-readable program text, e.g.
  /// "chunk(256).tile(32).unroll(4).split_nnz(nnz)".
  std::string describe() const;

 private:
  std::vector<IrTransform> transforms_;
};

/// The vector width (float lanes) of the span-primitive table `isa`
/// resolves to after one-step degradation: 1 / 8 / 16.
int isa_vector_width(simd::Isa isa);

/// Legality check for an SpMM / fused-attention program against a concrete
/// launch shape and backend. Returns "" when legal, else a clear error
/// (duplicate transforms, unaligned tile, chunk > rows, unroll without tile,
/// override without/past the partition transform, ...).
std::string validate_spmm_ir(const ScheduleIr& ir, std::int64_t num_rows,
                             std::int64_t d_out, simd::Isa isa);

/// Legality check for an SDDMM program: tile (reduce-axis tiling) and chunk
/// (edge-position chunking) only; everything else has no SDDMM loop to act
/// on and is rejected.
std::string validate_sddmm_ir(const ScheduleIr& ir, std::int64_t num_edges,
                              std::int64_t reduce_len, simd::Isa isa);

/// One launch's hoisted SpMM decisions — what the kernel template actually
/// interprets (inner loops stay branch-free; the only per-tile reads are
/// plain struct fields).
struct LoweredSpmmPlan {
  std::int64_t feat_tile = 0;  // 0 = whole feature vector
  std::int64_t row_chunk = 0;  // 0 = no chunking
  int unroll = 1;
  bool register_block = false;  // unroll() present: use the row-block path
  LoadBalance load_balance = LoadBalance::kNnzBalanced;
  int num_partitions = 1;
  int num_threads = 1;
  /// shard(S): 0 = unsharded row sweep. Clamped to the row count at
  /// execution (effective_shards), so a shard program is shape-portable.
  int num_shards = 0;
  /// steal_grain(G): shards per stealing claim (only read when sharded).
  std::int64_t steal_grain = 1;
  /// (partition index, tile width) overrides, empty for most programs.
  std::vector<std::pair<int, std::int64_t>> overrides;

  /// Shards the row sweep over `rows` actually runs: > 1 engages the
  /// work-stealing shard executor, else the static parallel_for split.
  int effective_shards(std::int64_t rows) const {
    if (num_shards <= 1) return num_shards > 0 ? 1 : 0;
    return static_cast<int>(
        std::min<std::int64_t>(num_shards, std::max<std::int64_t>(rows, 1)));
  }

  /// True when the plan needs the interpreting loop nest; false means the
  /// flat fast path (the exact pre-IR code) already implements it.
  bool needs_interpreter() const {
    return row_chunk > 0 || register_block || !overrides.empty();
  }

  /// Effective tile width for partition `part` (-1 = unpartitioned),
  /// clamped to [1, d_out].
  std::int64_t tile_for(std::int64_t d_out, int part) const {
    std::int64_t t = feat_tile;
    for (const auto& o : overrides) {
      if (o.first == part) {
        t = o.second;
        break;
      }
    }
    if (t <= 0 || t > d_out) t = d_out;
    return t > 0 ? t : 1;
  }

  /// Widest span any tile of this launch sweeps — the width the SpanOps
  /// table is resolved for (span_ops_for_width).
  std::int64_t max_tile(std::int64_t d_out) const {
    std::int64_t w = tile_for(d_out, -1);
    for (const auto& o : overrides) w = std::max(w, tile_for(d_out, o.first));
    return w;
  }
};

/// One launch's hoisted SDDMM decisions.
struct LoweredSddmmPlan {
  std::int64_t reduce_tile = 0;  // 0 = untiled
  std::int64_t edge_chunk = 0;   // 0 = no chunking
};

/// Lowers `sched` for a concrete launch. With no IR attached the flat knobs
/// pass through verbatim (needs_interpreter() == false — byte-for-byte the
/// pre-IR launch). With an IR program attached the program is authoritative
/// for every loop-nest decision except num_threads; illegal programs abort
/// via FG_CHECK with the validate_spmm_ir message.
LoweredSpmmPlan lower_spmm_schedule(const CpuSpmmSchedule& sched,
                                    std::int64_t num_rows, std::int64_t d_out,
                                    simd::Isa isa);

/// SDDMM analog of lower_spmm_schedule.
LoweredSddmmPlan lower_sddmm_schedule(const CpuSddmmSchedule& sched,
                                      std::int64_t num_edges,
                                      std::int64_t reduce_len, simd::Isa isa);

/// The partition count a schedule asks for: the IR program's partition(P)
/// factor when a program is attached, else the flat num_partitions knob.
/// Callers that build the partitioning (spmm.cpp, attention.cpp) route
/// through this so IR programs drive cached_partition too.
int schedule_num_partitions(const CpuSpmmSchedule& sched);

/// The flat knobs expressed as an IR program (the "thin view" direction):
/// partition/tile/split_nnz transforms mirroring the struct fields, with
/// defaults omitted — an all-default schedule maps to the EMPTY program, so
/// flat and IR spellings of the same schedule hash identically.
ScheduleIr default_spmm_program(const CpuSpmmSchedule& sched);

/// FNV-1a hash of the schedule's program (the attached IR, or the flat
/// knobs' default program). num_threads is excluded — cache keys that use
/// this hash (sample::BlockScheduleCache) already key on the thread count.
std::uint64_t schedule_program_hash(const CpuSpmmSchedule& sched);

/// Program hash extended with a fused-epilogue signature (EpilogueOps::
/// signature(), 0 = no epilogue). Fused and unfused launches of the same
/// loop nest are DIFFERENT programs — callers keying BlockScheduleCache on
/// this hash never alias the two.
std::uint64_t schedule_program_hash(const CpuSpmmSchedule& sched,
                                    std::uint64_t epilogue_sig);

}  // namespace featgraph::core
