#include "core/smart_tuner.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace featgraph::core {

namespace {

/// Canonical key for memoizing measured lattice points.
using Point = std::tuple<int, std::int64_t, int>;

std::vector<std::int64_t> tile_axis(std::int64_t d_out, std::int64_t min_tile) {
  std::vector<std::int64_t> axis = {0};  // 0 = untiled (full width)
  for (std::int64_t t = min_tile; t < d_out; t *= 2) axis.push_back(t);
  return axis;
}

std::vector<int> partition_axis(std::int64_t max_partitions) {
  std::vector<int> axis;
  for (int p = 1; p <= max_partitions; p *= 2) axis.push_back(p);
  return axis;
}

/// The scaffold both tuners share: random-restart greedy descent over a
/// 3-axis lattice — two numeric axes stepped +-1, one two-point policy axis
/// flipped — with memoized measurements and a hard trial budget.
/// `measure_at(i, j, k)` runs ONE measurement and returns its seconds (the
/// caller's closure does its own best-schedule bookkeeping); `seed0` is the
/// deterministic first seed point, later seeds are uniform random. Returns
/// the number of measurements spent.
template <class MeasureAt>
int lattice_climb(const std::array<int, 3>& sizes,
                  const std::array<int, 3>& seed0,
                  const SmartTuneOptions& options, const MeasureAt& measure_at) {
  std::map<Point, double> measured;
  int trials_used = 0;

  auto eval = [&](int i, int j, int k) -> double {
    const Point key{i, j, k};
    auto it = measured.find(key);
    if (it != measured.end()) return it->second;
    if (trials_used >= options.max_trials)
      return std::numeric_limits<double>::infinity();
    const double secs = measure_at(i, j, k);
    ++trials_used;
    measured.emplace(key, secs);
    return secs;
  };

  support::Rng rng(options.seed);
  for (int seed_idx = 0;
       seed_idx < options.num_seeds && trials_used < options.max_trials;
       ++seed_idx) {
    int i = seed0[0], j = seed0[1], k = seed0[2];
    if (seed_idx > 0) {
      i = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(sizes[0])));
      j = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(sizes[1])));
      k = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(sizes[2])));
    }
    double current = eval(i, j, k);

    // Greedy neighbor descent; the policy axis is a two-point lattice, so
    // its only move is the flip.
    for (;;) {
      int best_i = i, best_j = j, best_k = k;
      double best = current;
      const int candidates[5][3] = {{i - 1, j, k},
                                    {i + 1, j, k},
                                    {i, j - 1, k},
                                    {i, j + 1, k},
                                    {i, j, 1 - k}};
      for (const auto& c : candidates) {
        if (c[0] < 0 || c[0] >= sizes[0]) continue;
        if (c[1] < 0 || c[1] >= sizes[1]) continue;
        if (c[2] < 0 || c[2] >= sizes[2]) continue;
        const double secs = eval(c[0], c[1], c[2]);
        if (secs < best) {
          best = secs;
          best_i = c[0];
          best_j = c[1];
          best_k = c[2];
        }
      }
      if (best_i == i && best_j == j && best_k == k) break;
      i = best_i;
      j = best_j;
      k = best_k;
      current = best;
      if (trials_used >= options.max_trials) break;
    }
  }
  return trials_used;
}

}  // namespace

SmartTuneResult smart_tune_spmm(std::int64_t d_out, int num_threads,
                                const MeasureFn& measure,
                                const SmartTuneOptions& options) {
  FG_CHECK(options.max_trials >= 1);
  const auto tiles = tile_axis(d_out, options.min_tile);
  const auto parts = partition_axis(options.max_partitions);
  const auto balances = load_balance_axis(num_threads);

  SmartTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();

  // Seed point: the untuned default (1 partition, untiled, nnz-balanced).
  result.trials_used = lattice_climb(
      {static_cast<int>(parts.size()), static_cast<int>(tiles.size()),
       static_cast<int>(balances.size())},
      {0, 0, 0}, options, [&](int pi, int ti, int li) {
        CpuSpmmSchedule s;
        s.num_partitions = parts[static_cast<std::size_t>(pi)];
        s.feat_tile = tiles[static_cast<std::size_t>(ti)];
        s.num_threads = num_threads;
        s.load_balance = balances[static_cast<std::size_t>(li)];
        const double secs = measure(s);
        if (secs < result.best_seconds) {
          result.best_seconds = secs;
          result.best = s;
        }
        return secs;
      });
  FG_CHECK_MSG(std::isfinite(result.best_seconds),
               "smart_tune_spmm needs at least one successful measurement");
  return result;
}

GpuSmartTuneResult smart_tune_gpu_attention(const GpuMeasureFn& measure,
                                            const SmartTuneOptions& options) {
  FG_CHECK(options.max_trials >= 1);
  // The lattice: staging-tile size x smem split x tile row assignment.
  const std::vector<int> tile_axis_v = {8, 16, 32, 64, 128, 256};
  const std::vector<double> frac_axis = {0.2, 0.35, 0.5, 0.65, 0.8};
  const std::vector<LoadBalance> assign_axis = {LoadBalance::kNnzBalanced,
                                                LoadBalance::kStaticRows};

  GpuSmartTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();

  // Seed point: the schedule defaults (32-row tiles, even split,
  // nnz-balanced).
  result.trials_used = lattice_climb(
      {static_cast<int>(tile_axis_v.size()), static_cast<int>(frac_axis.size()),
       static_cast<int>(assign_axis.size())},
      {2, 2, 0}, options, [&](int ti, int fi, int ai) {
        GpuSpmmSchedule s;
        s.hybrid_partition = true;
        s.hybrid_rows_per_tile = tile_axis_v[static_cast<std::size_t>(ti)];
        s.attention_softmax_smem_frac =
            frac_axis[static_cast<std::size_t>(fi)];
        s.row_assignment = assign_axis[static_cast<std::size_t>(ai)];
        const double secs = measure(s);
        if (secs < result.best_seconds) {
          result.best_seconds = secs;
          result.best = s;
        }
        return secs;
      });
  FG_CHECK_MSG(
      std::isfinite(result.best_seconds),
      "smart_tune_gpu_attention needs at least one successful measurement");
  return result;
}

}  // namespace featgraph::core
