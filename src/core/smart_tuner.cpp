#include "core/smart_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "core/schedule_ir.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace featgraph::core {

namespace {

/// Canonical key for memoizing measured lattice points.
using Point = std::vector<int>;

std::vector<std::int64_t> tile_axis(std::int64_t d_out, std::int64_t min_tile) {
  std::vector<std::int64_t> axis = {0};  // 0 = untiled (full width)
  for (std::int64_t t = min_tile; t < d_out; t *= 2) axis.push_back(t);
  return axis;
}

std::vector<int> partition_axis(std::int64_t max_partitions) {
  std::vector<int> axis;
  for (int p = 1; p <= max_partitions; p *= 2) axis.push_back(p);
  return axis;
}

/// The scaffold every smart tuner shares: random-restart greedy descent over
/// an N-axis lattice — each axis stepped +-1 (a two-point policy axis gets
/// its flip as the same move) — with memoized measurements and a hard trial
/// budget. `measure_at(point)` runs ONE measurement and returns its seconds
/// (the caller's closure does its own best-schedule bookkeeping); `seed0` is
/// the deterministic first seed point, later seeds are uniform random.
/// Returns the number of measurements spent.
template <class MeasureAt>
int lattice_climb(const std::vector<int>& sizes, const Point& seed0,
                  const SmartTuneOptions& options, const MeasureAt& measure_at) {
  const std::size_t axes = sizes.size();
  FG_CHECK(seed0.size() == axes);
  FG_TRACE_SCOPE("tuner.smart_climb",
                 obs::arg("axes", static_cast<std::int64_t>(axes)),
                 obs::arg("max_trials", options.max_trials));
  std::map<Point, double> measured;
  int trials_used = 0;

  auto eval = [&](const Point& p) -> double {
    auto it = measured.find(p);
    if (it != measured.end()) return it->second;
    if (trials_used >= options.max_trials)
      return std::numeric_limits<double>::infinity();
    static obs::Counter& obs_trials =
        obs::Registry::global().counter("tuner.trial.count");
    obs_trials.add(1);
    FG_TRACE_SCOPE("tuner.trial");
    const double secs = measure_at(p);
    ++trials_used;
    measured.emplace(p, secs);
    return secs;
  };

  support::Rng rng(options.seed);
  for (int seed_idx = 0;
       seed_idx < options.num_seeds && trials_used < options.max_trials;
       ++seed_idx) {
    Point p = seed0;
    if (seed_idx > 0) {
      for (std::size_t a = 0; a < axes; ++a)
        p[a] = static_cast<int>(
            rng.uniform(static_cast<std::uint64_t>(sizes[a])));
    }
    double current = eval(p);

    // Greedy neighbor descent over the 2N axis-aligned moves.
    for (;;) {
      Point best_p = p;
      double best = current;
      for (std::size_t a = 0; a < axes; ++a) {
        for (int step : {-1, +1}) {
          Point c = p;
          c[a] += step;
          if (c[a] < 0 || c[a] >= sizes[a]) continue;
          const double secs = eval(c);
          if (secs < best) {
            best = secs;
            best_p = std::move(c);
          }
        }
      }
      if (best_p == p) break;
      p = std::move(best_p);
      current = best;
      if (trials_used >= options.max_trials) break;
    }
  }
  return trials_used;
}

}  // namespace

SmartTuneResult smart_tune_spmm(std::int64_t d_out, int num_threads,
                                const MeasureFn& measure,
                                const SmartTuneOptions& options) {
  FG_CHECK(options.max_trials >= 1);
  const auto tiles = tile_axis(d_out, options.min_tile);
  const auto parts = partition_axis(options.max_partitions);
  const auto balances = load_balance_axis(num_threads);

  SmartTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();

  // Seed point: the untuned default (1 partition, untiled, nnz-balanced).
  result.trials_used = lattice_climb(
      {static_cast<int>(parts.size()), static_cast<int>(tiles.size()),
       static_cast<int>(balances.size())},
      {0, 0, 0}, options, [&](const std::vector<int>& p) {
        CpuSpmmSchedule s;
        s.num_partitions = parts[static_cast<std::size_t>(p[0])];
        s.feat_tile = tiles[static_cast<std::size_t>(p[1])];
        s.num_threads = num_threads;
        s.load_balance = balances[static_cast<std::size_t>(p[2])];
        const double secs = measure(s);
        if (secs < result.best_seconds) {
          result.best_seconds = secs;
          result.best = s;
        }
        return secs;
      });
  FG_CHECK_MSG(std::isfinite(result.best_seconds),
               "smart_tune_spmm needs at least one successful measurement");
  return result;
}

SmartTuneResult smart_tune_spmm_ir(std::int64_t d_out, std::int64_t num_rows,
                                   int num_threads, const MeasureFn& measure,
                                   const SmartTuneOptions& options) {
  FG_CHECK(options.max_trials >= 1);
  const simd::Isa isa = simd::active_isa();

  // Every lattice point must be a LEGAL, DISTINCT program (illegal or
  // duplicate points would burn budget on wasted or repeated measurements),
  // so tile and unroll fuse into one combo axis: (0, 1) is "untiled" and
  // unroll only appears under a tile. The widths themselves are pre-filtered
  // through the validator, so AVX2 and AVX-512 legs climb different axes.
  std::vector<std::pair<std::int64_t, int>> tile_unroll = {{0, 1}};
  for (std::int64_t w = options.min_tile; w <= std::min<std::int64_t>(d_out, 128);
       w *= 2) {
    if (!validate_spmm_ir(ScheduleIr().tile(w), num_rows, d_out, isa).empty())
      continue;
    for (int u : {1, 2, 4}) tile_unroll.push_back({w, u});
  }
  const auto parts = partition_axis(options.max_partitions);
  std::vector<std::int64_t> chunks = {0};
  for (std::int64_t c : {std::int64_t{256}, std::int64_t{1024},
                         std::int64_t{4096}}) {
    if (c <= num_rows) chunks.push_back(c);
  }
  const auto balances = load_balance_axis(num_threads);
  // Shard axis (0 = unsharded). Only populated with real lanes, so the
  // 1-thread lattice — and the deterministic search walk every recorded
  // 1-core tuning took — is unchanged: a size-1 axis admits no moves.
  std::vector<int> shard_counts = {0};
  if (num_threads > 1) {
    for (int mult : {2, 4, 8}) shard_counts.push_back(mult * num_threads);
  }

  SmartTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();

  // Seed point: all zeros = the EMPTY program, which lowers to the untuned
  // default schedule bit-for-bit — the first measurement is the baseline.
  result.trials_used = lattice_climb(
      {static_cast<int>(parts.size()), static_cast<int>(tile_unroll.size()),
       static_cast<int>(chunks.size()), static_cast<int>(balances.size()),
       static_cast<int>(shard_counts.size())},
      {0, 0, 0, 0, 0}, options, [&](const std::vector<int>& p) {
        const int n_parts = parts[static_cast<std::size_t>(p[0])];
        const auto [w, u] = tile_unroll[static_cast<std::size_t>(p[1])];
        const std::int64_t chunk = chunks[static_cast<std::size_t>(p[2])];
        const LoadBalance lb = balances[static_cast<std::size_t>(p[3])];
        const int n_shards = shard_counts[static_cast<std::size_t>(p[4])];
        ScheduleIr ir;
        if (n_parts > 1) ir.partition(n_parts);
        if (w > 0) {
          ir.tile(w);
          if (u > 1) ir.unroll(u);
        }
        if (chunk > 0) ir.chunk(chunk);
        if (lb != LoadBalance::kNnzBalanced) ir.split_nnz(lb);
        if (n_shards > 0) ir.shard(n_shards);
        CpuSpmmSchedule s;
        s.num_threads = num_threads;
        if (!ir.empty()) s.ir = std::make_shared<const ScheduleIr>(ir);
        const double secs = measure(s);
        if (secs < result.best_seconds) {
          result.best_seconds = secs;
          result.best = s;
        }
        return secs;
      });
  FG_CHECK_MSG(std::isfinite(result.best_seconds),
               "smart_tune_spmm_ir needs at least one successful measurement");
  return result;
}

GpuSmartTuneResult smart_tune_gpu_attention(const GpuMeasureFn& measure,
                                            const SmartTuneOptions& options) {
  FG_CHECK(options.max_trials >= 1);
  // The lattice: staging-tile size x smem split x tile row assignment.
  const std::vector<int> tile_axis_v = {8, 16, 32, 64, 128, 256};
  const std::vector<double> frac_axis = {0.2, 0.35, 0.5, 0.65, 0.8};
  const std::vector<LoadBalance> assign_axis = {LoadBalance::kNnzBalanced,
                                                LoadBalance::kStaticRows};

  GpuSmartTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();

  // Seed point: the schedule defaults (32-row tiles, even split,
  // nnz-balanced).
  result.trials_used = lattice_climb(
      {static_cast<int>(tile_axis_v.size()), static_cast<int>(frac_axis.size()),
       static_cast<int>(assign_axis.size())},
      {2, 2, 0}, options, [&](const std::vector<int>& p) {
        GpuSpmmSchedule s;
        s.hybrid_partition = true;
        s.hybrid_rows_per_tile = tile_axis_v[static_cast<std::size_t>(p[0])];
        s.attention_softmax_smem_frac =
            frac_axis[static_cast<std::size_t>(p[1])];
        s.row_assignment = assign_axis[static_cast<std::size_t>(p[2])];
        const double secs = measure(s);
        if (secs < result.best_seconds) {
          result.best_seconds = secs;
          result.best = s;
        }
        return secs;
      });
  FG_CHECK_MSG(
      std::isfinite(result.best_seconds),
      "smart_tune_gpu_attention needs at least one successful measurement");
  return result;
}

}  // namespace featgraph::core
