#include "core/smart_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace featgraph::core {

namespace {

/// Canonical key for memoizing measured points:
/// (num_partitions, feat_tile, load_balance index).
using Point = std::tuple<int, std::int64_t, int>;

std::vector<std::int64_t> tile_axis(std::int64_t d_out, std::int64_t min_tile) {
  std::vector<std::int64_t> axis = {0};  // 0 = untiled (full width)
  for (std::int64_t t = min_tile; t < d_out; t *= 2) axis.push_back(t);
  return axis;
}

std::vector<int> partition_axis(std::int64_t max_partitions) {
  std::vector<int> axis;
  for (int p = 1; p <= max_partitions; p *= 2) axis.push_back(p);
  return axis;
}

}  // namespace

SmartTuneResult smart_tune_spmm(std::int64_t d_out, int num_threads,
                                const MeasureFn& measure,
                                const SmartTuneOptions& options) {
  FG_CHECK(options.max_trials >= 1);
  const auto tiles = tile_axis(d_out, options.min_tile);
  const auto parts = partition_axis(options.max_partitions);
  const auto balances = load_balance_axis(num_threads);

  std::map<Point, double> measured;
  SmartTuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();

  auto eval = [&](int pi, int ti, int li) -> double {
    const Point key{parts[static_cast<std::size_t>(pi)],
                    tiles[static_cast<std::size_t>(ti)], li};
    auto it = measured.find(key);
    if (it != measured.end()) return it->second;
    if (result.trials_used >= options.max_trials)
      return std::numeric_limits<double>::infinity();
    CpuSpmmSchedule s;
    s.num_partitions = std::get<0>(key);
    s.feat_tile = std::get<1>(key);
    s.num_threads = num_threads;
    s.load_balance = balances[static_cast<std::size_t>(li)];
    const double secs = measure(s);
    ++result.trials_used;
    measured.emplace(key, secs);
    if (secs < result.best_seconds) {
      result.best_seconds = secs;
      result.best = s;
    }
    return secs;
  };

  support::Rng rng(options.seed);
  for (int seed_idx = 0;
       seed_idx < options.num_seeds && result.trials_used < options.max_trials;
       ++seed_idx) {
    // Seed point: first seed is the untuned default (1 partition, untiled,
    // nnz-balanced), later seeds are random — the "random restart" half of
    // the strategy.
    int pi = 0, ti = 0, li = 0;
    if (seed_idx > 0) {
      pi = static_cast<int>(rng.uniform(parts.size()));
      ti = static_cast<int>(rng.uniform(tiles.size()));
      li = static_cast<int>(rng.uniform(balances.size()));
    }
    double current = eval(pi, ti, li);

    // Greedy neighbor descent on the lattice; the load-balance axis is a
    // two-point lattice, so its only move is the flip.
    for (;;) {
      int best_pi = pi, best_ti = ti, best_li = li;
      double best = current;
      const int candidates[5][3] = {{pi - 1, ti, li},
                                    {pi + 1, ti, li},
                                    {pi, ti - 1, li},
                                    {pi, ti + 1, li},
                                    {pi, ti, 1 - li}};
      for (const auto& c : candidates) {
        if (c[0] < 0 || c[0] >= static_cast<int>(parts.size())) continue;
        if (c[1] < 0 || c[1] >= static_cast<int>(tiles.size())) continue;
        if (c[2] < 0 || c[2] >= static_cast<int>(balances.size())) continue;
        const double secs = eval(c[0], c[1], c[2]);
        if (secs < best) {
          best = secs;
          best_pi = c[0];
          best_ti = c[1];
          best_li = c[2];
        }
      }
      if (best_pi == pi && best_ti == ti && best_li == li) break;
      pi = best_pi;
      ti = best_ti;
      li = best_li;
      current = best;
      if (result.trials_used >= options.max_trials) break;
    }
  }
  FG_CHECK_MSG(std::isfinite(result.best_seconds),
               "smart_tune_spmm needs at least one successful measurement");
  return result;
}

}  // namespace featgraph::core
