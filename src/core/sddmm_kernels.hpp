// Generalized SDDMM kernel templates (paper Sec. III-B, Fig. 4).
//
// out[e, :] = EDGEFN(u, e, v)   for every edge u -e-> v
//
// The coarse-grained template owns edge traversal (optionally in
// Hilbert-curve order, Sec. III-C-1, which keeps both endpoint feature rows
// hot) and splits edges across threads. The fine-grained UDF exposes its
// reduce axis through `partial`, which the FDS tiles: with a reduce tile the
// edge list is swept once per tile and partial sums accumulate in the output
// (the SDDMM analog of Fig. 6b's trade-off: more topology traffic for better
// feature locality).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/schedule.hpp"
#include "core/schedule_ir.hpp"
#include "core/simd.hpp"
#include "graph/csr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace featgraph::core {

template <class EdgeFn>
void generalized_sddmm(const graph::Coo& coo,
                       const std::vector<graph::eid_t>* order,
                       const EdgeFn& fn, float* out,
                       const CpuSddmmSchedule& sched) {
  const graph::eid_t m = coo.num_edges();
  const std::int64_t n_out = fn.num_out();
  const std::int64_t len = fn.reduce_len();
  if (m == 0 || n_out == 0) return;
  FG_CHECK(order == nullptr ||
           static_cast<graph::eid_t>(order->size()) == m);

  static obs::Counter& obs_launches =
      obs::Registry::global().counter("sddmm.launch.count");
  static obs::Counter& obs_edges =
      obs::Registry::global().counter("sddmm.edges.swept");
  obs_launches.add(1);
  obs_edges.add(static_cast<std::int64_t>(m));
  obs::TraceScope obs_span("sddmm.launch");
  if (obs_span.active()) {
    obs_span.arg("edges", static_cast<std::int64_t>(m))
        .arg("n_out", n_out)
        .arg("reduce_len", len)
        .arg("isa", simd::isa_name(simd::active_isa()))
        .arg("hilbert", order != nullptr ? 1 : 0);
  }

  // Flat knobs (or the attached Schedule-IR program) lower once per launch.
  const LoweredSddmmPlan plan =
      lower_sddmm_schedule(sched, m, len, simd::active_isa());
  const std::int64_t tile =
      (plan.reduce_tile > 0 && plan.reduce_tile < len) ? plan.reduce_tile
                                                       : len;
  const bool tiled = tile < len;
  // Edge-position chunking (IR chunk transform): a pure split of the
  // per-thread edge loop — same edges, same order, bit-identical — that
  // bounds the stream of endpoint feature rows touched between revisits.
  const std::int64_t edge_chunk = plan.edge_chunk;
  const graph::vid_t* src = coo.src.data();
  const graph::vid_t* dst = coo.dst.data();
  const graph::eid_t* perm = order != nullptr ? order->data() : nullptr;
  // Span dispatch resolved once per launch, width-aware (see
  // spmm_kernels.hpp): a narrow reduce axis resolves the AVX2 table.
  const simd::SpanOps& span = simd::span_ops_for_width(tile);

  if (tiled) {
    // Partial sums accumulate across reduce-axis tiles; zero-init first.
    std::fill(out, out + m * n_out, 0.0f);
  }
  for (std::int64_t k0 = 0; k0 < len; k0 += tile) {
    const std::int64_t k1 = std::min(k0 + tile, len);
    parallel::parallel_for_ranges(
        0, m, sched.num_threads, [&](std::int64_t i0, std::int64_t i1) {
          const std::int64_t step = edge_chunk > 0 ? edge_chunk : i1 - i0;
          for (std::int64_t c0 = i0; c0 < i1;
               c0 += std::max<std::int64_t>(step, 1)) {
            const std::int64_t c1 = std::min(c0 + step, i1);
            for (std::int64_t i = c0; i < c1; ++i) {
              const graph::eid_t e = perm != nullptr ? perm[i] : i;
              const graph::vid_t u = src[e];
              const graph::vid_t v = dst[e];
              float* out_e = out + e * n_out;
              for (std::int64_t h = 0; h < n_out; ++h) {
                const float p = fn.partial(span, u, e, v, h, k0, k1);
                if (tiled) {
                  out_e[h] += p;
                } else {
                  out_e[h] = p;
                }
              }
            }
          }
        });
  }
}

}  // namespace featgraph::core
