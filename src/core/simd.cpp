// Span primitive backends: portable scalar + AVX2/FMA + AVX-512 intrinsics.
//
// This translation unit is compiled with -ffp-contract=off (see
// CMakeLists.txt): the compiler must not fuse the mul+add in axpy /
// accum_binop into FMA on one backend but not the other, or the bit-for-bit
// cross-backend contract of simd.hpp breaks. `dot` uses explicit FMA
// intrinsics, which contraction settings leave untouched.
//
// The AVX-512 backend has NO scalar tail loops: the last n % 16 elements of
// a span are covered by one masked vector op (zero-filling `maskz` loads,
// write-suppressing `mask` stores), per the masked-tail contract documented
// in simd.hpp.
#include "core/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "support/env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define FG_X86 1
#include <immintrin.h>
#else
#define FG_X86 0
#endif

#if FG_X86 && (defined(__GNUC__) || defined(__clang__))
#define FG_HAVE_AVX2_BACKEND 1
// Per-function target attribute: lets one TU hold AVX2 code while the rest
// of the library stays at the baseline ISA (no global -mavx2, so the binary
// still runs on non-AVX2 machines through the scalar table).
#define FG_AVX2_FN __attribute__((target("avx2,fma")))
// AVX-512 rides the same per-function-target mechanism: only the functions
// below carry the avx512 attribute, the rest of the binary stays baseline.
#define FG_HAVE_AVX512_BACKEND 1
#define FG_AVX512_FN __attribute__((target("avx512f,avx512dq")))
#else
#define FG_HAVE_AVX2_BACKEND 0
#define FG_HAVE_AVX512_BACKEND 0
#endif

// The scalar backend is the measured baseline for the SIMD speedup claims;
// keep it genuinely scalar instead of letting the compiler auto-vectorize
// it into an unnamed third backend. GCC takes a function attribute; clang
// ignores that attribute, so its loops carry a vectorize(disable) pragma.
#if defined(__clang__)
#define FG_SCALAR_FN
#define FG_SCALAR_LOOP \
  _Pragma("clang loop vectorize(disable) interleave(disable)")
#elif defined(__GNUC__)
#define FG_SCALAR_FN __attribute__((optimize("no-tree-vectorize")))
#define FG_SCALAR_LOOP
#else
#define FG_SCALAR_FN
#define FG_SCALAR_LOOP
#endif

namespace featgraph::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar backend
// ---------------------------------------------------------------------------

namespace scalar {

inline float c_sum(float a, float b) { return a + b; }
inline float c_max(float a, float b) { return a > b ? a : b; }
inline float c_min(float a, float b) { return a < b ? a : b; }

inline float o_add(float a, float b) { return a + b; }
inline float o_sub(float a, float b) { return a - b; }
inline float o_mul(float a, float b) { return a * b; }
inline float o_div(float a, float b) { return a / b; }

FG_SCALAR_FN void fill(float* out, float v, std::int64_t n) {
  FG_SCALAR_LOOP
  for (std::int64_t j = 0; j < n; ++j) out[j] = v;
}

FG_SCALAR_FN void scale(float* out, float s, std::int64_t n) {
  FG_SCALAR_LOOP
  for (std::int64_t j = 0; j < n; ++j) out[j] *= s;
}

FG_SCALAR_FN void relu(float* out, std::int64_t n) {
  FG_SCALAR_LOOP
  for (std::int64_t j = 0; j < n; ++j) out[j] = out[j] > 0.0f ? out[j] : 0.0f;
}

FG_SCALAR_FN void leaky_relu(float* out, float slope, std::int64_t n) {
  FG_SCALAR_LOOP
  for (std::int64_t j = 0; j < n; ++j)
    out[j] = out[j] > 0.0f ? out[j] : out[j] * slope;
}

FG_SCALAR_FN void bias_relu(float* out, const float* b, std::int64_t n) {
  FG_SCALAR_LOOP
  for (std::int64_t j = 0; j < n; ++j) {
    const float t = out[j] + b[j];
    out[j] = t > 0.0f ? t : 0.0f;
  }
}

FG_SCALAR_FN void axpy(float* out, const float* x, float s, std::int64_t n) {
  FG_SCALAR_LOOP
  for (std::int64_t j = 0; j < n; ++j) out[j] += x[j] * s;
}

FG_SCALAR_FN float dot(const float* a, const float* b, std::int64_t n) {
  float acc = 0.0f;
  FG_SCALAR_LOOP
  for (std::int64_t j = 0; j < n; ++j) acc += a[j] * b[j];
  return acc;
}

#define FG_SCALAR_ACCUM(NAME, COMBINE)                                 \
  FG_SCALAR_FN void NAME(float* out, const float* x, std::int64_t n) { \
    FG_SCALAR_LOOP                                                     \
    for (std::int64_t j = 0; j < n; ++j) out[j] = COMBINE(out[j], x[j]); \
  }

FG_SCALAR_ACCUM(accum_sum, c_sum)
FG_SCALAR_ACCUM(accum_max, c_max)
FG_SCALAR_ACCUM(accum_min, c_min)
#undef FG_SCALAR_ACCUM

#define FG_SCALAR_ACCUM_BINOP(NAME, COMBINE, OP)                    \
  FG_SCALAR_FN void NAME(float* out, const float* a, const float* b, \
                         std::int64_t n) {                          \
    FG_SCALAR_LOOP                                                  \
    for (std::int64_t j = 0; j < n; ++j)                            \
      out[j] = COMBINE(out[j], OP(a[j], b[j]));                     \
  }

FG_SCALAR_ACCUM_BINOP(accum_sum_add, c_sum, o_add)
FG_SCALAR_ACCUM_BINOP(accum_sum_sub, c_sum, o_sub)
FG_SCALAR_ACCUM_BINOP(accum_sum_mul, c_sum, o_mul)
FG_SCALAR_ACCUM_BINOP(accum_sum_div, c_sum, o_div)
FG_SCALAR_ACCUM_BINOP(accum_max_add, c_max, o_add)
FG_SCALAR_ACCUM_BINOP(accum_max_sub, c_max, o_sub)
FG_SCALAR_ACCUM_BINOP(accum_max_mul, c_max, o_mul)
FG_SCALAR_ACCUM_BINOP(accum_max_div, c_max, o_div)
FG_SCALAR_ACCUM_BINOP(accum_min_add, c_min, o_add)
FG_SCALAR_ACCUM_BINOP(accum_min_sub, c_min, o_sub)
FG_SCALAR_ACCUM_BINOP(accum_min_mul, c_min, o_mul)
FG_SCALAR_ACCUM_BINOP(accum_min_div, c_min, o_div)
#undef FG_SCALAR_ACCUM_BINOP

#define FG_SCALAR_ACCUM_BINOP_S(NAME, COMBINE, OP)                     \
  FG_SCALAR_FN void NAME(float* out, const float* a, float s,          \
                         std::int64_t n) {                             \
    FG_SCALAR_LOOP                                                     \
    for (std::int64_t j = 0; j < n; ++j) out[j] = COMBINE(out[j], OP(a[j], s)); \
  }

FG_SCALAR_ACCUM_BINOP_S(accum_sum_add_s, c_sum, o_add)
FG_SCALAR_ACCUM_BINOP_S(accum_sum_sub_s, c_sum, o_sub)
FG_SCALAR_ACCUM_BINOP_S(accum_sum_mul_s, c_sum, o_mul)
FG_SCALAR_ACCUM_BINOP_S(accum_sum_div_s, c_sum, o_div)
FG_SCALAR_ACCUM_BINOP_S(accum_max_add_s, c_max, o_add)
FG_SCALAR_ACCUM_BINOP_S(accum_max_sub_s, c_max, o_sub)
FG_SCALAR_ACCUM_BINOP_S(accum_max_mul_s, c_max, o_mul)
FG_SCALAR_ACCUM_BINOP_S(accum_max_div_s, c_max, o_div)
FG_SCALAR_ACCUM_BINOP_S(accum_min_add_s, c_min, o_add)
FG_SCALAR_ACCUM_BINOP_S(accum_min_sub_s, c_min, o_sub)
FG_SCALAR_ACCUM_BINOP_S(accum_min_mul_s, c_min, o_mul)
FG_SCALAR_ACCUM_BINOP_S(accum_min_div_s, c_min, o_div)
#undef FG_SCALAR_ACCUM_BINOP_S

FG_SCALAR_FN float hmax(const float* x, std::int64_t n) {
  float m = -std::numeric_limits<float>::infinity();
  FG_SCALAR_LOOP
  for (std::int64_t j = 0; j < n; ++j) m = x[j] > m ? x[j] : m;
  return m;
}

FG_SCALAR_FN float exp_scale(float* io, float shift, std::int64_t n) {
  float sum = 0.0f;
  FG_SCALAR_LOOP
  for (std::int64_t j = 0; j < n; ++j) {
    const float e = std::exp(io[j] + shift);
    io[j] = e;
    sum += e;
  }
  return sum;
}

#define FG_SCALAR_WAXPY_BINOP(NAME, OP)                              \
  FG_SCALAR_FN void NAME(float* out, const float* a, const float* b, \
                         float s, std::int64_t n) {                  \
    FG_SCALAR_LOOP                                                   \
    for (std::int64_t j = 0; j < n; ++j) out[j] += OP(a[j], b[j]) * s; \
  }

FG_SCALAR_WAXPY_BINOP(waxpy_add, o_add)
FG_SCALAR_WAXPY_BINOP(waxpy_sub, o_sub)
FG_SCALAR_WAXPY_BINOP(waxpy_mul, o_mul)
FG_SCALAR_WAXPY_BINOP(waxpy_div, o_div)
#undef FG_SCALAR_WAXPY_BINOP

#define FG_SCALAR_WAXPY_BINOP_S(NAME, OP)                               \
  FG_SCALAR_FN void NAME(float* out, const float* a, float c, float s,  \
                         std::int64_t n) {                              \
    FG_SCALAR_LOOP                                                      \
    for (std::int64_t j = 0; j < n; ++j) out[j] += OP(a[j], c) * s;     \
  }

FG_SCALAR_WAXPY_BINOP_S(waxpy_add_s, o_add)
FG_SCALAR_WAXPY_BINOP_S(waxpy_sub_s, o_sub)
FG_SCALAR_WAXPY_BINOP_S(waxpy_mul_s, o_mul)
FG_SCALAR_WAXPY_BINOP_S(waxpy_div_s, o_div)
#undef FG_SCALAR_WAXPY_BINOP_S

FG_SCALAR_FN void gather_rows(float* out, const float* src,
                              const std::int32_t* idx, std::int64_t m,
                              std::int64_t d) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = src + static_cast<std::int64_t>(idx[i]) * d;
    float* dst = out + i * d;
    FG_SCALAR_LOOP
    for (std::int64_t j = 0; j < d; ++j) dst[j] = row[j];
  }
}

// Register-blocked row-group fold (Schedule-IR tile(W).unroll(U) path). The
// j-outer / i-inner nest keeps out[j]'s running value in a register across
// the whole row group; per (j) the combine chain visits i in order, which is
// exactly the fold a per-row accum() sequence produces — bit-identical to
// the flat path and to every unroll hint.
#define FG_SCALAR_ACCUM_ROWS(NAME, COMBINE)                                  \
  FG_SCALAR_FN void NAME(float* out, const float* src, std::int64_t stride,  \
                         const std::int32_t* idx, std::int64_t cnt,          \
                         std::int64_t n, int unroll) {                       \
    (void)unroll;                                                            \
    for (std::int64_t j = 0; j < n; ++j) {                                   \
      float acc = out[j];                                                    \
      FG_SCALAR_LOOP                                                         \
      for (std::int64_t i = 0; i < cnt; ++i)                                 \
        acc = COMBINE(acc,                                                   \
                      src[static_cast<std::int64_t>(idx[i]) * stride + j]);  \
      out[j] = acc;                                                          \
    }                                                                        \
  }

FG_SCALAR_ACCUM_ROWS(accum_rows_sum, c_sum)
FG_SCALAR_ACCUM_ROWS(accum_rows_max, c_max)
FG_SCALAR_ACCUM_ROWS(accum_rows_min, c_min)
#undef FG_SCALAR_ACCUM_ROWS

FG_SCALAR_FN void waxpy_rows(float* out, const float* src, std::int64_t stride,
                             const std::int32_t* idx, const float* w,
                             std::int64_t cnt, std::int64_t n, int unroll) {
  (void)unroll;
  for (std::int64_t j = 0; j < n; ++j) {
    float acc = out[j];
    FG_SCALAR_LOOP
    for (std::int64_t i = 0; i < cnt; ++i)
      acc += src[static_cast<std::int64_t>(idx[i]) * stride + j] * w[i];
    out[j] = acc;
  }
}

}  // namespace scalar

SpanOps make_scalar_ops() {
  SpanOps t;
  t.fill = scalar::fill;
  t.scale = scalar::scale;
  t.relu = scalar::relu;
  t.leaky_relu = scalar::leaky_relu;
  t.bias_relu = scalar::bias_relu;
  t.axpy = scalar::axpy;
  t.dot = scalar::dot;
  t.accum[0] = scalar::accum_sum;
  t.accum[1] = scalar::accum_max;
  t.accum[2] = scalar::accum_min;
  void (*const bin[kNumAccum][kNumBinOp])(float*, const float*, const float*,
                                          std::int64_t) = {
      {scalar::accum_sum_add, scalar::accum_sum_sub, scalar::accum_sum_mul,
       scalar::accum_sum_div},
      {scalar::accum_max_add, scalar::accum_max_sub, scalar::accum_max_mul,
       scalar::accum_max_div},
      {scalar::accum_min_add, scalar::accum_min_sub, scalar::accum_min_mul,
       scalar::accum_min_div}};
  void (*const bin_s[kNumAccum][kNumBinOp])(float*, const float*, float,
                                            std::int64_t) = {
      {scalar::accum_sum_add_s, scalar::accum_sum_sub_s,
       scalar::accum_sum_mul_s, scalar::accum_sum_div_s},
      {scalar::accum_max_add_s, scalar::accum_max_sub_s,
       scalar::accum_max_mul_s, scalar::accum_max_div_s},
      {scalar::accum_min_add_s, scalar::accum_min_sub_s,
       scalar::accum_min_mul_s, scalar::accum_min_div_s}};
  for (int r = 0; r < kNumAccum; ++r) {
    for (int o = 0; o < kNumBinOp; ++o) {
      t.accum_binop[r][o] = bin[r][o];
      t.accum_binop_scalar[r][o] = bin_s[r][o];
    }
  }
  t.hmax = scalar::hmax;
  t.exp_scale = scalar::exp_scale;
  t.waxpy_binop[0] = scalar::waxpy_add;
  t.waxpy_binop[1] = scalar::waxpy_sub;
  t.waxpy_binop[2] = scalar::waxpy_mul;
  t.waxpy_binop[3] = scalar::waxpy_div;
  t.waxpy_binop_scalar[0] = scalar::waxpy_add_s;
  t.waxpy_binop_scalar[1] = scalar::waxpy_sub_s;
  t.waxpy_binop_scalar[2] = scalar::waxpy_mul_s;
  t.waxpy_binop_scalar[3] = scalar::waxpy_div_s;
  t.gather_rows = scalar::gather_rows;
  t.accum_rows[0] = scalar::accum_rows_sum;
  t.accum_rows[1] = scalar::accum_rows_max;
  t.accum_rows[2] = scalar::accum_rows_min;
  t.waxpy_rows = scalar::waxpy_rows;
  return t;
}

// ---------------------------------------------------------------------------
// AVX2/FMA backend
// ---------------------------------------------------------------------------

#if FG_HAVE_AVX2_BACKEND

namespace avx2 {

// _mm256_max_ps(a, b) computes a > b ? a : b (returns b on NaN/±0 ties),
// exactly the scalar reducer combines above — NaN behavior included.

FG_AVX2_FN void fill(float* out, float v, std::int64_t n) {
  const __m256 vv = _mm256_set1_ps(v);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) _mm256_storeu_ps(out + j, vv);
  for (; j < n; ++j) out[j] = v;
}

FG_AVX2_FN void scale(float* out, float s, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(out + j, _mm256_mul_ps(_mm256_loadu_ps(out + j), vs));
  }
  for (; j < n; ++j) out[j] *= s;
}

FG_AVX2_FN void relu(float* out, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(out + j, _mm256_max_ps(_mm256_loadu_ps(out + j), zero));
  }
  for (; j < n; ++j) out[j] = out[j] > 0.0f ? out[j] : 0.0f;
}

FG_AVX2_FN void leaky_relu(float* out, float slope, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 vs = _mm256_set1_ps(slope);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 v = _mm256_loadu_ps(out + j);
    const __m256 scaled = _mm256_mul_ps(v, vs);
    const __m256 pos = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(out + j, _mm256_blendv_ps(scaled, v, pos));
  }
  for (; j < n; ++j) out[j] = out[j] > 0.0f ? out[j] : out[j] * slope;
}

FG_AVX2_FN void bias_relu(float* out, const float* b, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 t =
        _mm256_add_ps(_mm256_loadu_ps(out + j), _mm256_loadu_ps(b + j));
    _mm256_storeu_ps(out + j, _mm256_max_ps(t, zero));
  }
  for (; j < n; ++j) {
    const float t = out[j] + b[j];
    out[j] = t > 0.0f ? t : 0.0f;
  }
}

FG_AVX2_FN void axpy(float* out, const float* x, float s, std::int64_t n) {
  // mul + add (not fmadd): keeps per-element rounding identical to the
  // scalar backend (see the header's rounding contract).
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(x + j), vs);
    _mm256_storeu_ps(out + j, _mm256_add_ps(_mm256_loadu_ps(out + j), prod));
  }
  for (; j < n; ++j) out[j] += x[j] * s;
}

FG_AVX2_FN float dot(const float* a, const float* b, std::int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  std::int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j),
                           _mm256_loadu_ps(b + j), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 8),
                           _mm256_loadu_ps(b + j + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 16),
                           _mm256_loadu_ps(b + j + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 24),
                           _mm256_loadu_ps(b + j + 24), acc3);
  }
  for (; j + 8 <= n; j += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j),
                           _mm256_loadu_ps(b + j), acc0);
  }
  acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
  __m128 lo = _mm256_castps256_ps128(acc0);
  __m128 hi = _mm256_extractf128_ps(acc0, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  float acc = _mm_cvtss_f32(lo);
  for (; j < n; ++j) acc += a[j] * b[j];
  return acc;
}

#define FG_AVX2_ACCUM(NAME, VCOMBINE, SCOMBINE)                           \
  FG_AVX2_FN void NAME(float* out, const float* x, std::int64_t n) {      \
    std::int64_t j = 0;                                                   \
    for (; j + 16 <= n; j += 16) {                                        \
      _mm256_storeu_ps(out + j, VCOMBINE(_mm256_loadu_ps(out + j),        \
                                         _mm256_loadu_ps(x + j)));        \
      _mm256_storeu_ps(out + j + 8,                                       \
                       VCOMBINE(_mm256_loadu_ps(out + j + 8),             \
                                _mm256_loadu_ps(x + j + 8)));             \
    }                                                                     \
    for (; j + 8 <= n; j += 8) {                                          \
      _mm256_storeu_ps(out + j, VCOMBINE(_mm256_loadu_ps(out + j),        \
                                         _mm256_loadu_ps(x + j)));        \
    }                                                                     \
    for (; j < n; ++j) out[j] = SCOMBINE(out[j], x[j]);                   \
  }

FG_AVX2_ACCUM(accum_sum, _mm256_add_ps, scalar::c_sum)
FG_AVX2_ACCUM(accum_max, _mm256_max_ps, scalar::c_max)
FG_AVX2_ACCUM(accum_min, _mm256_min_ps, scalar::c_min)
#undef FG_AVX2_ACCUM

#define FG_AVX2_ACCUM_BINOP(NAME, VCOMBINE, VOP, SCOMBINE, SOP)           \
  FG_AVX2_FN void NAME(float* out, const float* a, const float* b,        \
                       std::int64_t n) {                                  \
    std::int64_t j = 0;                                                   \
    for (; j + 8 <= n; j += 8) {                                          \
      const __m256 msg = VOP(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j)); \
      _mm256_storeu_ps(out + j, VCOMBINE(_mm256_loadu_ps(out + j), msg)); \
    }                                                                     \
    for (; j < n; ++j) out[j] = SCOMBINE(out[j], SOP(a[j], b[j]));        \
  }

FG_AVX2_ACCUM_BINOP(accum_sum_add, _mm256_add_ps, _mm256_add_ps, scalar::c_sum, scalar::o_add)
FG_AVX2_ACCUM_BINOP(accum_sum_sub, _mm256_add_ps, _mm256_sub_ps, scalar::c_sum, scalar::o_sub)
FG_AVX2_ACCUM_BINOP(accum_sum_mul, _mm256_add_ps, _mm256_mul_ps, scalar::c_sum, scalar::o_mul)
FG_AVX2_ACCUM_BINOP(accum_sum_div, _mm256_add_ps, _mm256_div_ps, scalar::c_sum, scalar::o_div)
FG_AVX2_ACCUM_BINOP(accum_max_add, _mm256_max_ps, _mm256_add_ps, scalar::c_max, scalar::o_add)
FG_AVX2_ACCUM_BINOP(accum_max_sub, _mm256_max_ps, _mm256_sub_ps, scalar::c_max, scalar::o_sub)
FG_AVX2_ACCUM_BINOP(accum_max_mul, _mm256_max_ps, _mm256_mul_ps, scalar::c_max, scalar::o_mul)
FG_AVX2_ACCUM_BINOP(accum_max_div, _mm256_max_ps, _mm256_div_ps, scalar::c_max, scalar::o_div)
FG_AVX2_ACCUM_BINOP(accum_min_add, _mm256_min_ps, _mm256_add_ps, scalar::c_min, scalar::o_add)
FG_AVX2_ACCUM_BINOP(accum_min_sub, _mm256_min_ps, _mm256_sub_ps, scalar::c_min, scalar::o_sub)
FG_AVX2_ACCUM_BINOP(accum_min_mul, _mm256_min_ps, _mm256_mul_ps, scalar::c_min, scalar::o_mul)
FG_AVX2_ACCUM_BINOP(accum_min_div, _mm256_min_ps, _mm256_div_ps, scalar::c_min, scalar::o_div)
#undef FG_AVX2_ACCUM_BINOP

#define FG_AVX2_ACCUM_BINOP_S(NAME, VCOMBINE, VOP, SCOMBINE, SOP)         \
  FG_AVX2_FN void NAME(float* out, const float* a, float s,               \
                       std::int64_t n) {                                  \
    const __m256 vs = _mm256_set1_ps(s);                                  \
    std::int64_t j = 0;                                                   \
    for (; j + 8 <= n; j += 8) {                                          \
      const __m256 msg = VOP(_mm256_loadu_ps(a + j), vs);                 \
      _mm256_storeu_ps(out + j, VCOMBINE(_mm256_loadu_ps(out + j), msg)); \
    }                                                                     \
    for (; j < n; ++j) out[j] = SCOMBINE(out[j], SOP(a[j], s));           \
  }

FG_AVX2_ACCUM_BINOP_S(accum_sum_add_s, _mm256_add_ps, _mm256_add_ps, scalar::c_sum, scalar::o_add)
FG_AVX2_ACCUM_BINOP_S(accum_sum_sub_s, _mm256_add_ps, _mm256_sub_ps, scalar::c_sum, scalar::o_sub)
FG_AVX2_ACCUM_BINOP_S(accum_sum_mul_s, _mm256_add_ps, _mm256_mul_ps, scalar::c_sum, scalar::o_mul)
FG_AVX2_ACCUM_BINOP_S(accum_sum_div_s, _mm256_add_ps, _mm256_div_ps, scalar::c_sum, scalar::o_div)
FG_AVX2_ACCUM_BINOP_S(accum_max_add_s, _mm256_max_ps, _mm256_add_ps, scalar::c_max, scalar::o_add)
FG_AVX2_ACCUM_BINOP_S(accum_max_sub_s, _mm256_max_ps, _mm256_sub_ps, scalar::c_max, scalar::o_sub)
FG_AVX2_ACCUM_BINOP_S(accum_max_mul_s, _mm256_max_ps, _mm256_mul_ps, scalar::c_max, scalar::o_mul)
FG_AVX2_ACCUM_BINOP_S(accum_max_div_s, _mm256_max_ps, _mm256_div_ps, scalar::c_max, scalar::o_div)
FG_AVX2_ACCUM_BINOP_S(accum_min_add_s, _mm256_min_ps, _mm256_add_ps, scalar::c_min, scalar::o_add)
FG_AVX2_ACCUM_BINOP_S(accum_min_sub_s, _mm256_min_ps, _mm256_sub_ps, scalar::c_min, scalar::o_sub)
FG_AVX2_ACCUM_BINOP_S(accum_min_mul_s, _mm256_min_ps, _mm256_mul_ps, scalar::c_min, scalar::o_mul)
FG_AVX2_ACCUM_BINOP_S(accum_min_div_s, _mm256_min_ps, _mm256_div_ps, scalar::c_min, scalar::o_div)
#undef FG_AVX2_ACCUM_BINOP_S

FG_AVX2_FN float hmax(const float* x, std::int64_t n) {
  float m = -std::numeric_limits<float>::infinity();
  std::int64_t j = 0;
  if (n >= 8) {
    __m256 vm = _mm256_loadu_ps(x);
    for (j = 8; j + 8 <= n; j += 8)
      vm = _mm256_max_ps(vm, _mm256_loadu_ps(x + j));
    __m128 lo = _mm_max_ps(_mm256_castps256_ps128(vm),
                           _mm256_extractf128_ps(vm, 1));
    lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    m = _mm_cvtss_f32(lo);
  }
  for (; j < n; ++j) m = x[j] > m ? x[j] : m;
  return m;
}

// Cephes-derived polynomial exp, the classic avx_mathfun kernel: clamp to
// the finite-result range, split x = n*ln2 + r with the two-constant
// Cook-style reduction, evaluate a degree-5 polynomial of r, scale by 2^n
// via exponent-field arithmetic. ~2 ulp vs libm inside [-87.33, 87.9]; the
// hi clamp sits at 87.9 (not expf's 88.72 overflow point) so n never
// reaches 128, where the exponent-field construction would wrap to inf —
// softmax arguments are <= 0 after the row-max shift, so the narrowed
// saturation range is unreachable there. The AVX-512 twin below runs the
// IDENTICAL per-lane operation sequence, so on full vector blocks the two
// vector backends agree lane-for-lane; span TAILS still differ by ~2 ulp
// (AVX2's exp_scale peels them into a libm loop, AVX-512 runs the
// polynomial under a mask), which the tolerance contract absorbs.
FG_AVX2_FN __m256 exp256(__m256 x) {
  x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-87.3365478515625f)),
                    _mm256_set1_ps(87.9f));
  const __m256i bias = _mm256_set1_epi32(127);
  const __m256i n = _mm256_cvtps_epi32(
      _mm256_mul_ps(x, _mm256_set1_ps(1.44269504088896341f)));
  const __m256 fx = _mm256_cvtepi32_ps(n);  // round-to-nearest of x*log2(e)
  __m256 r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), r);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, _mm256_mul_ps(r, r),
                      _mm256_add_ps(r, _mm256_set1_ps(1.0f)));
  const __m256i pow2n = _mm256_slli_epi32(_mm256_add_epi32(n, bias), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n));
}

FG_AVX2_FN float exp_scale(float* io, float shift, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(shift);
  __m256 acc = _mm256_setzero_ps();
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 e = exp256(_mm256_add_ps(_mm256_loadu_ps(io + j), vs));
    _mm256_storeu_ps(io + j, e);
    acc = _mm256_add_ps(acc, e);
  }
  __m128 lo = _mm_add_ps(_mm256_castps256_ps128(acc),
                         _mm256_extractf128_ps(acc, 1));
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  float sum = _mm_cvtss_f32(lo);
  for (; j < n; ++j) {
    const float e = std::exp(io[j] + shift);
    io[j] = e;
    sum += e;
  }
  return sum;
}

// mul + add (not fmadd) after the message op: keeps per-element rounding
// identical to the scalar backend (the waxpy exact contract).
#define FG_AVX2_WAXPY_BINOP(NAME, VOP, SOP)                                 \
  FG_AVX2_FN void NAME(float* out, const float* a, const float* b, float s, \
                       std::int64_t n) {                                    \
    const __m256 vs = _mm256_set1_ps(s);                                    \
    std::int64_t j = 0;                                                     \
    for (; j + 8 <= n; j += 8) {                                            \
      const __m256 msg =                                                    \
          _mm256_mul_ps(VOP(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j)), \
                        vs);                                                \
      _mm256_storeu_ps(out + j, _mm256_add_ps(_mm256_loadu_ps(out + j),     \
                                              msg));                        \
    }                                                                       \
    for (; j < n; ++j) out[j] += SOP(a[j], b[j]) * s;                       \
  }

FG_AVX2_WAXPY_BINOP(waxpy_add, _mm256_add_ps, scalar::o_add)
FG_AVX2_WAXPY_BINOP(waxpy_sub, _mm256_sub_ps, scalar::o_sub)
FG_AVX2_WAXPY_BINOP(waxpy_mul, _mm256_mul_ps, scalar::o_mul)
FG_AVX2_WAXPY_BINOP(waxpy_div, _mm256_div_ps, scalar::o_div)
#undef FG_AVX2_WAXPY_BINOP

#define FG_AVX2_WAXPY_BINOP_S(NAME, VOP, SOP)                               \
  FG_AVX2_FN void NAME(float* out, const float* a, float c, float s,        \
                       std::int64_t n) {                                    \
    const __m256 vc = _mm256_set1_ps(c);                                    \
    const __m256 vs = _mm256_set1_ps(s);                                    \
    std::int64_t j = 0;                                                     \
    for (; j + 8 <= n; j += 8) {                                            \
      const __m256 msg = _mm256_mul_ps(VOP(_mm256_loadu_ps(a + j), vc), vs); \
      _mm256_storeu_ps(out + j, _mm256_add_ps(_mm256_loadu_ps(out + j),     \
                                              msg));                        \
    }                                                                       \
    for (; j < n; ++j) out[j] += SOP(a[j], c) * s;                          \
  }

FG_AVX2_WAXPY_BINOP_S(waxpy_add_s, _mm256_add_ps, scalar::o_add)
FG_AVX2_WAXPY_BINOP_S(waxpy_sub_s, _mm256_sub_ps, scalar::o_sub)
FG_AVX2_WAXPY_BINOP_S(waxpy_mul_s, _mm256_mul_ps, scalar::o_mul)
FG_AVX2_WAXPY_BINOP_S(waxpy_div_s, _mm256_div_ps, scalar::o_div)
#undef FG_AVX2_WAXPY_BINOP_S

// Row-group fold with the output tile held in vector registers: one load +
// one store of out per feature group for the WHOLE row group, instead of one
// per gathered row. `unroll` picks how many accumulator vectors stay live
// (4 / 2 / 1); per (j) the i-fold order is unchanged in every shape, so all
// unroll values are bit-identical to the flat per-row accum() chain.
#define FG_AVX2_ACCUM_ROWS(NAME, VCOMBINE, SCOMBINE)                         \
  FG_AVX2_FN void NAME(float* out, const float* src, std::int64_t stride,    \
                       const std::int32_t* idx, std::int64_t cnt,            \
                       std::int64_t n, int unroll) {                         \
    std::int64_t j = 0;                                                      \
    if (unroll >= 4) {                                                       \
      for (; j + 32 <= n; j += 32) {                                         \
        __m256 a0 = _mm256_loadu_ps(out + j);                                \
        __m256 a1 = _mm256_loadu_ps(out + j + 8);                            \
        __m256 a2 = _mm256_loadu_ps(out + j + 16);                           \
        __m256 a3 = _mm256_loadu_ps(out + j + 24);                           \
        for (std::int64_t i = 0; i < cnt; ++i) {                             \
          const float* row =                                                 \
              src + static_cast<std::int64_t>(idx[i]) * stride;              \
          a0 = VCOMBINE(a0, _mm256_loadu_ps(row + j));                       \
          a1 = VCOMBINE(a1, _mm256_loadu_ps(row + j + 8));                   \
          a2 = VCOMBINE(a2, _mm256_loadu_ps(row + j + 16));                  \
          a3 = VCOMBINE(a3, _mm256_loadu_ps(row + j + 24));                  \
        }                                                                    \
        _mm256_storeu_ps(out + j, a0);                                       \
        _mm256_storeu_ps(out + j + 8, a1);                                   \
        _mm256_storeu_ps(out + j + 16, a2);                                  \
        _mm256_storeu_ps(out + j + 24, a3);                                  \
      }                                                                      \
    }                                                                        \
    if (unroll >= 2) {                                                       \
      for (; j + 16 <= n; j += 16) {                                         \
        __m256 a0 = _mm256_loadu_ps(out + j);                                \
        __m256 a1 = _mm256_loadu_ps(out + j + 8);                            \
        for (std::int64_t i = 0; i < cnt; ++i) {                             \
          const float* row =                                                 \
              src + static_cast<std::int64_t>(idx[i]) * stride;              \
          a0 = VCOMBINE(a0, _mm256_loadu_ps(row + j));                       \
          a1 = VCOMBINE(a1, _mm256_loadu_ps(row + j + 8));                   \
        }                                                                    \
        _mm256_storeu_ps(out + j, a0);                                       \
        _mm256_storeu_ps(out + j + 8, a1);                                   \
      }                                                                      \
    }                                                                        \
    for (; j + 8 <= n; j += 8) {                                             \
      __m256 a0 = _mm256_loadu_ps(out + j);                                  \
      for (std::int64_t i = 0; i < cnt; ++i)                                 \
        a0 = VCOMBINE(                                                       \
            a0, _mm256_loadu_ps(                                             \
                    src + static_cast<std::int64_t>(idx[i]) * stride + j));  \
      _mm256_storeu_ps(out + j, a0);                                         \
    }                                                                        \
    for (; j < n; ++j) {                                                     \
      float acc = out[j];                                                    \
      for (std::int64_t i = 0; i < cnt; ++i)                                 \
        acc = SCOMBINE(acc,                                                  \
                       src[static_cast<std::int64_t>(idx[i]) * stride + j]); \
      out[j] = acc;                                                          \
    }                                                                        \
  }

FG_AVX2_ACCUM_ROWS(accum_rows_sum, _mm256_add_ps, scalar::c_sum)
FG_AVX2_ACCUM_ROWS(accum_rows_max, _mm256_max_ps, scalar::c_max)
FG_AVX2_ACCUM_ROWS(accum_rows_min, _mm256_min_ps, scalar::c_min)
#undef FG_AVX2_ACCUM_ROWS

// Weighted row-group fold: mul + add (not fmadd) per (i, j), matching the
// per-row axpy chain element for element.
FG_AVX2_FN void waxpy_rows(float* out, const float* src, std::int64_t stride,
                           const std::int32_t* idx, const float* w,
                           std::int64_t cnt, std::int64_t n, int unroll) {
  std::int64_t j = 0;
  if (unroll >= 2) {
    for (; j + 16 <= n; j += 16) {
      __m256 a0 = _mm256_loadu_ps(out + j);
      __m256 a1 = _mm256_loadu_ps(out + j + 8);
      for (std::int64_t i = 0; i < cnt; ++i) {
        const float* row = src + static_cast<std::int64_t>(idx[i]) * stride;
        const __m256 vw = _mm256_set1_ps(w[i]);
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_loadu_ps(row + j), vw));
        a1 = _mm256_add_ps(a1,
                           _mm256_mul_ps(_mm256_loadu_ps(row + j + 8), vw));
      }
      _mm256_storeu_ps(out + j, a0);
      _mm256_storeu_ps(out + j + 8, a1);
    }
  }
  for (; j + 8 <= n; j += 8) {
    __m256 a0 = _mm256_loadu_ps(out + j);
    for (std::int64_t i = 0; i < cnt; ++i) {
      const float* row = src + static_cast<std::int64_t>(idx[i]) * stride;
      a0 = _mm256_add_ps(
          a0, _mm256_mul_ps(_mm256_loadu_ps(row + j), _mm256_set1_ps(w[i])));
    }
    _mm256_storeu_ps(out + j, a0);
  }
  for (; j < n; ++j) {
    float acc = out[j];
    for (std::int64_t i = 0; i < cnt; ++i)
      acc += src[static_cast<std::int64_t>(idx[i]) * stride + j] * w[i];
    out[j] = acc;
  }
}

FG_AVX2_FN void gather_rows(float* out, const float* src,
                            const std::int32_t* idx, std::int64_t m,
                            std::int64_t d) {
  // Pure copy: 256-bit loads/stores plus a scalar peel — bitwise by nature,
  // so any lane width satisfies the exact contract.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = src + static_cast<std::int64_t>(idx[i]) * d;
    float* dst = out + i * d;
    std::int64_t j = 0;
    for (; j + 8 <= d; j += 8)
      _mm256_storeu_ps(dst + j, _mm256_loadu_ps(row + j));
    for (; j < d; ++j) dst[j] = row[j];
  }
}

}  // namespace avx2

SpanOps make_avx2_ops() {
  SpanOps t;
  t.fill = avx2::fill;
  t.scale = avx2::scale;
  t.relu = avx2::relu;
  t.leaky_relu = avx2::leaky_relu;
  t.bias_relu = avx2::bias_relu;
  t.axpy = avx2::axpy;
  t.dot = avx2::dot;
  t.accum[0] = avx2::accum_sum;
  t.accum[1] = avx2::accum_max;
  t.accum[2] = avx2::accum_min;
  void (*const bin[kNumAccum][kNumBinOp])(float*, const float*, const float*,
                                          std::int64_t) = {
      {avx2::accum_sum_add, avx2::accum_sum_sub, avx2::accum_sum_mul,
       avx2::accum_sum_div},
      {avx2::accum_max_add, avx2::accum_max_sub, avx2::accum_max_mul,
       avx2::accum_max_div},
      {avx2::accum_min_add, avx2::accum_min_sub, avx2::accum_min_mul,
       avx2::accum_min_div}};
  void (*const bin_s[kNumAccum][kNumBinOp])(float*, const float*, float,
                                            std::int64_t) = {
      {avx2::accum_sum_add_s, avx2::accum_sum_sub_s, avx2::accum_sum_mul_s,
       avx2::accum_sum_div_s},
      {avx2::accum_max_add_s, avx2::accum_max_sub_s, avx2::accum_max_mul_s,
       avx2::accum_max_div_s},
      {avx2::accum_min_add_s, avx2::accum_min_sub_s, avx2::accum_min_mul_s,
       avx2::accum_min_div_s}};
  for (int r = 0; r < kNumAccum; ++r) {
    for (int o = 0; o < kNumBinOp; ++o) {
      t.accum_binop[r][o] = bin[r][o];
      t.accum_binop_scalar[r][o] = bin_s[r][o];
    }
  }
  t.hmax = avx2::hmax;
  t.exp_scale = avx2::exp_scale;
  t.waxpy_binop[0] = avx2::waxpy_add;
  t.waxpy_binop[1] = avx2::waxpy_sub;
  t.waxpy_binop[2] = avx2::waxpy_mul;
  t.waxpy_binop[3] = avx2::waxpy_div;
  t.waxpy_binop_scalar[0] = avx2::waxpy_add_s;
  t.waxpy_binop_scalar[1] = avx2::waxpy_sub_s;
  t.waxpy_binop_scalar[2] = avx2::waxpy_mul_s;
  t.waxpy_binop_scalar[3] = avx2::waxpy_div_s;
  t.gather_rows = avx2::gather_rows;
  t.accum_rows[0] = avx2::accum_rows_sum;
  t.accum_rows[1] = avx2::accum_rows_max;
  t.accum_rows[2] = avx2::accum_rows_min;
  t.waxpy_rows = avx2::waxpy_rows;
  return t;
}

#endif  // FG_HAVE_AVX2_BACKEND

// ---------------------------------------------------------------------------
// AVX-512 backend (masked tails — no scalar tail loops)
// ---------------------------------------------------------------------------

#if FG_HAVE_AVX512_BACKEND

namespace avx512 {

// Narrow-span reroute (the BENCH_kernels.json d=8 regression): a span with
// n < 16 never fills one 512-bit vector, so the "masked tail" IS the whole
// op — mask materialization + maskz loads made it ~2.4x slower than one
// full 256-bit AVX2 vector. Every primitive therefore routes n < 16 to its
// AVX2 twin (the one-step intra-table fallback the ROADMAP called for).
// Bit-exactness is unaffected: the accumulation primitives are bit-for-bit
// identical across backends by contract, and for n < 16 the rerouted
// dot/exp_scale/hmax now run literally the AVX2 code, so those become
// bit-identical to AVX2 on narrow spans too (they remain tolerance-class
// versus scalar).
#define FG_AVX512_NARROW(call) \
  if (n < 16) return avx2::call;

// Lane mask covering the last `rem` (1..15) elements of a span. Masked-off
// lanes read zeros (maskz loads) and their results are never stored, so the
// live lanes execute exactly the one IEEE op the scalar loop would.
inline __mmask16 tail_mask(std::int64_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

// _mm512_max_ps/_mm512_min_ps keep the SSE operand-order contract (return
// the second operand on NaN / ±0 ties), matching the scalar `a > b ? a : b`
// reducer combines — NaN behavior included.

FG_AVX512_FN void fill(float* out, float v, std::int64_t n) {
  FG_AVX512_NARROW(fill(out, v, n))
  const __m512 vv = _mm512_set1_ps(v);
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) _mm512_storeu_ps(out + j, vv);
  if (j < n) _mm512_mask_storeu_ps(out + j, tail_mask(n - j), vv);
}

FG_AVX512_FN void scale(float* out, float s, std::int64_t n) {
  FG_AVX512_NARROW(scale(out, s, n))
  const __m512 vs = _mm512_set1_ps(s);
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm512_storeu_ps(out + j, _mm512_mul_ps(_mm512_loadu_ps(out + j), vs));
  }
  if (j < n) {
    const __mmask16 m = tail_mask(n - j);
    const __m512 o = _mm512_maskz_loadu_ps(m, out + j);
    _mm512_mask_storeu_ps(out + j, m, _mm512_maskz_mul_ps(m, o, vs));
  }
}

FG_AVX512_FN void relu(float* out, std::int64_t n) {
  FG_AVX512_NARROW(relu(out, n))
  const __m512 zero = _mm512_setzero_ps();
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm512_storeu_ps(out + j, _mm512_max_ps(_mm512_loadu_ps(out + j), zero));
  }
  if (j < n) {
    const __mmask16 m = tail_mask(n - j);
    const __m512 o = _mm512_maskz_loadu_ps(m, out + j);
    _mm512_mask_storeu_ps(out + j, m, _mm512_maskz_max_ps(m, o, zero));
  }
}

FG_AVX512_FN void leaky_relu(float* out, float slope, std::int64_t n) {
  FG_AVX512_NARROW(leaky_relu(out, slope, n))
  const __m512 zero = _mm512_setzero_ps();
  const __m512 vs = _mm512_set1_ps(slope);
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512 v = _mm512_loadu_ps(out + j);
    const __mmask16 pos = _mm512_cmp_ps_mask(v, zero, _CMP_GT_OQ);
    _mm512_storeu_ps(out + j,
                     _mm512_mask_mov_ps(_mm512_mul_ps(v, vs), pos, v));
  }
  if (j < n) {
    const __mmask16 m = tail_mask(n - j);
    const __m512 v = _mm512_maskz_loadu_ps(m, out + j);
    const __mmask16 pos = _mm512_mask_cmp_ps_mask(m, v, zero, _CMP_GT_OQ);
    _mm512_mask_storeu_ps(
        out + j, m, _mm512_mask_mov_ps(_mm512_maskz_mul_ps(m, v, vs), pos, v));
  }
}

FG_AVX512_FN void bias_relu(float* out, const float* b, std::int64_t n) {
  FG_AVX512_NARROW(bias_relu(out, b, n))
  const __m512 zero = _mm512_setzero_ps();
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512 t =
        _mm512_add_ps(_mm512_loadu_ps(out + j), _mm512_loadu_ps(b + j));
    _mm512_storeu_ps(out + j, _mm512_max_ps(t, zero));
  }
  if (j < n) {
    const __mmask16 m = tail_mask(n - j);
    const __m512 t = _mm512_maskz_add_ps(m, _mm512_maskz_loadu_ps(m, out + j),
                                         _mm512_maskz_loadu_ps(m, b + j));
    _mm512_mask_storeu_ps(out + j, m, _mm512_maskz_max_ps(m, t, zero));
  }
}

FG_AVX512_FN void axpy(float* out, const float* x, float s, std::int64_t n) {
  FG_AVX512_NARROW(axpy(out, x, s, n))
  // mul + add (not fmadd): keeps per-element rounding identical to the
  // scalar backend (see the header's rounding contract).
  const __m512 vs = _mm512_set1_ps(s);
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512 prod = _mm512_mul_ps(_mm512_loadu_ps(x + j), vs);
    _mm512_storeu_ps(out + j, _mm512_add_ps(_mm512_loadu_ps(out + j), prod));
  }
  if (j < n) {
    const __mmask16 m = tail_mask(n - j);
    const __m512 prod =
        _mm512_maskz_mul_ps(m, _mm512_maskz_loadu_ps(m, x + j), vs);
    const __m512 o = _mm512_maskz_loadu_ps(m, out + j);
    _mm512_mask_storeu_ps(out + j, m, _mm512_maskz_add_ps(m, o, prod));
  }
}

FG_AVX512_FN float dot(const float* a, const float* b, std::int64_t n) {
  FG_AVX512_NARROW(dot(a, b, n))
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps();
  __m512 acc3 = _mm512_setzero_ps();
  std::int64_t j = 0;
  for (; j + 64 <= n; j += 64) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + j),
                           _mm512_loadu_ps(b + j), acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + j + 16),
                           _mm512_loadu_ps(b + j + 16), acc1);
    acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(a + j + 32),
                           _mm512_loadu_ps(b + j + 32), acc2);
    acc3 = _mm512_fmadd_ps(_mm512_loadu_ps(a + j + 48),
                           _mm512_loadu_ps(b + j + 48), acc3);
  }
  for (; j + 16 <= n; j += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + j),
                           _mm512_loadu_ps(b + j), acc0);
  }
  if (j < n) {
    // mask3 form: active lanes run a*b+acc, masked lanes pass acc through —
    // one fmadd instead of a scalar tail loop, and EVEX masking suppresses
    // any FP flag a masked-off lane would have raised.
    const __mmask16 m = tail_mask(n - j);
    acc0 = _mm512_mask3_fmadd_ps(_mm512_maskz_loadu_ps(m, a + j),
                                 _mm512_maskz_loadu_ps(m, b + j), acc0, m);
  }
  acc0 = _mm512_add_ps(_mm512_add_ps(acc0, acc1), _mm512_add_ps(acc2, acc3));
  // Horizontal reduce spelled out (the _mm512_reduce_add_ps pseudo-op
  // expands through _mm256_undefined_pd and trips GCC's -Wuninitialized).
  __m256 half = _mm256_add_ps(_mm512_castps512_ps256(acc0),
                              _mm512_extractf32x8_ps(acc0, 1));
  __m128 lo = _mm256_castps256_ps128(half);
  lo = _mm_add_ps(lo, _mm256_extractf128_ps(half, 1));
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

// Tail ops use the maskz combine form (MZCOMBINE): active lanes compute the
// identical IEEE op, masked-off lanes are zeroed with their FP exceptions
// suppressed (EVEX masking) — the scalar/AVX2 backends never touch those
// elements, so neither may the AVX-512 tail, flags included.
#define FG_AVX512_ACCUM(NAME, VCOMBINE, MZCOMBINE)                           \
  FG_AVX512_FN void NAME(float* out, const float* x, std::int64_t n) {       \
    FG_AVX512_NARROW(NAME(out, x, n))                                        \
    std::int64_t j = 0;                                                      \
    for (; j + 32 <= n; j += 32) {                                           \
      _mm512_storeu_ps(out + j, VCOMBINE(_mm512_loadu_ps(out + j),           \
                                         _mm512_loadu_ps(x + j)));           \
      _mm512_storeu_ps(out + j + 16,                                         \
                       VCOMBINE(_mm512_loadu_ps(out + j + 16),               \
                                _mm512_loadu_ps(x + j + 16)));               \
    }                                                                        \
    for (; j + 16 <= n; j += 16) {                                           \
      _mm512_storeu_ps(out + j, VCOMBINE(_mm512_loadu_ps(out + j),           \
                                         _mm512_loadu_ps(x + j)));           \
    }                                                                        \
    if (j < n) {                                                             \
      const __mmask16 m = tail_mask(n - j);                                  \
      _mm512_mask_storeu_ps(out + j, m,                                      \
                            MZCOMBINE(m, _mm512_maskz_loadu_ps(m, out + j),  \
                                      _mm512_maskz_loadu_ps(m, x + j)));     \
    }                                                                        \
  }

FG_AVX512_ACCUM(accum_sum, _mm512_add_ps, _mm512_maskz_add_ps)
FG_AVX512_ACCUM(accum_max, _mm512_max_ps, _mm512_maskz_max_ps)
FG_AVX512_ACCUM(accum_min, _mm512_min_ps, _mm512_maskz_min_ps)
#undef FG_AVX512_ACCUM

// The tail's message op ALSO runs in maskz form: a full-width div would
// evaluate 0/0 on masked-off (zero-filled) lanes and raise FE_INVALID that
// no other backend raises; EVEX masking suppresses it.
#define FG_AVX512_ACCUM_BINOP(NAME, VCOMBINE, MZCOMBINE, VOP, MZOP)          \
  FG_AVX512_FN void NAME(float* out, const float* a, const float* b,         \
                         std::int64_t n) {                                   \
    FG_AVX512_NARROW(NAME(out, a, b, n))                                     \
    std::int64_t j = 0;                                                      \
    for (; j + 16 <= n; j += 16) {                                           \
      const __m512 msg = VOP(_mm512_loadu_ps(a + j), _mm512_loadu_ps(b + j)); \
      _mm512_storeu_ps(out + j, VCOMBINE(_mm512_loadu_ps(out + j), msg));    \
    }                                                                        \
    if (j < n) {                                                             \
      const __mmask16 m = tail_mask(n - j);                                  \
      const __m512 msg = MZOP(m, _mm512_maskz_loadu_ps(m, a + j),            \
                              _mm512_maskz_loadu_ps(m, b + j));              \
      _mm512_mask_storeu_ps(out + j, m,                                      \
                            MZCOMBINE(m, _mm512_maskz_loadu_ps(m, out + j),  \
                                      msg));                                 \
    }                                                                        \
  }

#define FG_AVX512_BINOP_TABLE(EMIT)                                          \
  EMIT(accum_sum_add, _mm512_add_ps, _mm512_maskz_add_ps, _mm512_add_ps,     \
       _mm512_maskz_add_ps)                                                  \
  EMIT(accum_sum_sub, _mm512_add_ps, _mm512_maskz_add_ps, _mm512_sub_ps,     \
       _mm512_maskz_sub_ps)                                                  \
  EMIT(accum_sum_mul, _mm512_add_ps, _mm512_maskz_add_ps, _mm512_mul_ps,     \
       _mm512_maskz_mul_ps)                                                  \
  EMIT(accum_sum_div, _mm512_add_ps, _mm512_maskz_add_ps, _mm512_div_ps,     \
       _mm512_maskz_div_ps)                                                  \
  EMIT(accum_max_add, _mm512_max_ps, _mm512_maskz_max_ps, _mm512_add_ps,     \
       _mm512_maskz_add_ps)                                                  \
  EMIT(accum_max_sub, _mm512_max_ps, _mm512_maskz_max_ps, _mm512_sub_ps,     \
       _mm512_maskz_sub_ps)                                                  \
  EMIT(accum_max_mul, _mm512_max_ps, _mm512_maskz_max_ps, _mm512_mul_ps,     \
       _mm512_maskz_mul_ps)                                                  \
  EMIT(accum_max_div, _mm512_max_ps, _mm512_maskz_max_ps, _mm512_div_ps,     \
       _mm512_maskz_div_ps)                                                  \
  EMIT(accum_min_add, _mm512_min_ps, _mm512_maskz_min_ps, _mm512_add_ps,     \
       _mm512_maskz_add_ps)                                                  \
  EMIT(accum_min_sub, _mm512_min_ps, _mm512_maskz_min_ps, _mm512_sub_ps,     \
       _mm512_maskz_sub_ps)                                                  \
  EMIT(accum_min_mul, _mm512_min_ps, _mm512_maskz_min_ps, _mm512_mul_ps,     \
       _mm512_maskz_mul_ps)                                                  \
  EMIT(accum_min_div, _mm512_min_ps, _mm512_maskz_min_ps, _mm512_div_ps,     \
       _mm512_maskz_div_ps)

FG_AVX512_BINOP_TABLE(FG_AVX512_ACCUM_BINOP)
#undef FG_AVX512_ACCUM_BINOP

#define FG_AVX512_ACCUM_BINOP_S(NAME, VCOMBINE, MZCOMBINE, VOP, MZOP)       \
  FG_AVX512_FN void NAME##_s(float* out, const float* a, float s,            \
                             std::int64_t n) {                               \
    FG_AVX512_NARROW(NAME##_s(out, a, s, n))                                 \
    const __m512 vs = _mm512_set1_ps(s);                                     \
    std::int64_t j = 0;                                                      \
    for (; j + 16 <= n; j += 16) {                                           \
      const __m512 msg = VOP(_mm512_loadu_ps(a + j), vs);                    \
      _mm512_storeu_ps(out + j, VCOMBINE(_mm512_loadu_ps(out + j), msg));    \
    }                                                                        \
    if (j < n) {                                                             \
      const __mmask16 m = tail_mask(n - j);                                  \
      const __m512 msg = MZOP(m, _mm512_maskz_loadu_ps(m, a + j), vs);       \
      _mm512_mask_storeu_ps(out + j, m,                                      \
                            MZCOMBINE(m, _mm512_maskz_loadu_ps(m, out + j),  \
                                      msg));                                 \
    }                                                                        \
  }

FG_AVX512_BINOP_TABLE(FG_AVX512_ACCUM_BINOP_S)
#undef FG_AVX512_ACCUM_BINOP_S
#undef FG_AVX512_BINOP_TABLE

FG_AVX512_FN float hmax(const float* x, std::int64_t n) {
  FG_AVX512_NARROW(hmax(x, n))
  if (n <= 0) return -std::numeric_limits<float>::infinity();
  __m512 vm = _mm512_set1_ps(-std::numeric_limits<float>::infinity());
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16)
    vm = _mm512_max_ps(vm, _mm512_loadu_ps(x + j));
  if (j < n) {
    const __mmask16 m = tail_mask(n - j);
    // mask (not maskz) max: dead lanes keep the running -inf identity.
    vm = _mm512_mask_max_ps(vm, m, vm, _mm512_maskz_loadu_ps(m, x + j));
  }
  return _mm512_reduce_max_ps(vm);
}

// The 512-bit twin of avx2::exp256 — same constants (including the 87.9
// overflow-safe hi clamp), same per-lane op sequence, so both vector
// backends produce identical lane results.
FG_AVX512_FN __m512 exp512(__m512 x) {
  x = _mm512_min_ps(_mm512_max_ps(x, _mm512_set1_ps(-87.3365478515625f)),
                    _mm512_set1_ps(87.9f));
  const __m512i bias = _mm512_set1_epi32(127);
  const __m512i n = _mm512_cvtps_epi32(
      _mm512_mul_ps(x, _mm512_set1_ps(1.44269504088896341f)));
  const __m512 fx = _mm512_cvtepi32_ps(n);
  __m512 r = _mm512_fnmadd_ps(fx, _mm512_set1_ps(0.693359375f), x);
  r = _mm512_fnmadd_ps(fx, _mm512_set1_ps(-2.12194440e-4f), r);
  __m512 y = _mm512_set1_ps(1.9875691500e-4f);
  y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(1.3981999507e-3f));
  y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(8.3334519073e-3f));
  y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(4.1665795894e-2f));
  y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(1.6666665459e-1f));
  y = _mm512_fmadd_ps(y, r, _mm512_set1_ps(5.0000001201e-1f));
  y = _mm512_fmadd_ps(y, _mm512_mul_ps(r, r),
                      _mm512_add_ps(r, _mm512_set1_ps(1.0f)));
  const __m512i pow2n = _mm512_slli_epi32(_mm512_add_epi32(n, bias), 23);
  return _mm512_mul_ps(y, _mm512_castsi512_ps(pow2n));
}

FG_AVX512_FN float exp_scale(float* io, float shift, std::int64_t n) {
  FG_AVX512_NARROW(exp_scale(io, shift, n))
  const __m512 vs = _mm512_set1_ps(shift);
  __m512 acc = _mm512_setzero_ps();
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512 e = exp512(_mm512_add_ps(_mm512_loadu_ps(io + j), vs));
    _mm512_storeu_ps(io + j, e);
    acc = _mm512_add_ps(acc, e);
  }
  if (j < n) {
    // Dead lanes run exp on zero-filled inputs — finite and flag-free (the
    // poly is mul/add of clamped finite values) — and are excluded from both
    // the store and the accumulator by the masked forms.
    const __mmask16 m = tail_mask(n - j);
    const __m512 e = exp512(
        _mm512_maskz_add_ps(m, _mm512_maskz_loadu_ps(m, io + j), vs));
    _mm512_mask_storeu_ps(io + j, m, e);
    acc = _mm512_mask_add_ps(acc, m, acc, e);
  }
  return _mm512_reduce_add_ps(acc);
}

#define FG_AVX512_WAXPY_BINOP(NAME, VOP, MZOP)                               \
  FG_AVX512_FN void NAME(float* out, const float* a, const float* b,         \
                         float s, std::int64_t n) {                          \
    FG_AVX512_NARROW(NAME(out, a, b, s, n))                                  \
    const __m512 vs = _mm512_set1_ps(s);                                     \
    std::int64_t j = 0;                                                      \
    for (; j + 16 <= n; j += 16) {                                           \
      const __m512 msg = _mm512_mul_ps(                                      \
          VOP(_mm512_loadu_ps(a + j), _mm512_loadu_ps(b + j)), vs);          \
      _mm512_storeu_ps(out + j,                                              \
                       _mm512_add_ps(_mm512_loadu_ps(out + j), msg));        \
    }                                                                        \
    if (j < n) {                                                             \
      const __mmask16 m = tail_mask(n - j);                                  \
      const __m512 msg = _mm512_maskz_mul_ps(                                \
          m,                                                                 \
          MZOP(m, _mm512_maskz_loadu_ps(m, a + j),                           \
               _mm512_maskz_loadu_ps(m, b + j)),                             \
          vs);                                                               \
      _mm512_mask_storeu_ps(                                                 \
          out + j, m,                                                        \
          _mm512_maskz_add_ps(m, _mm512_maskz_loadu_ps(m, out + j), msg));   \
    }                                                                        \
  }

FG_AVX512_WAXPY_BINOP(waxpy_add, _mm512_add_ps, _mm512_maskz_add_ps)
FG_AVX512_WAXPY_BINOP(waxpy_sub, _mm512_sub_ps, _mm512_maskz_sub_ps)
FG_AVX512_WAXPY_BINOP(waxpy_mul, _mm512_mul_ps, _mm512_maskz_mul_ps)
FG_AVX512_WAXPY_BINOP(waxpy_div, _mm512_div_ps, _mm512_maskz_div_ps)
#undef FG_AVX512_WAXPY_BINOP

#define FG_AVX512_WAXPY_BINOP_S(NAME, VOP, MZOP)                             \
  FG_AVX512_FN void NAME(float* out, const float* a, float c, float s,       \
                         std::int64_t n) {                                   \
    FG_AVX512_NARROW(NAME(out, a, c, s, n))                                  \
    const __m512 vc = _mm512_set1_ps(c);                                     \
    const __m512 vs = _mm512_set1_ps(s);                                     \
    std::int64_t j = 0;                                                      \
    for (; j + 16 <= n; j += 16) {                                           \
      const __m512 msg = _mm512_mul_ps(VOP(_mm512_loadu_ps(a + j), vc), vs); \
      _mm512_storeu_ps(out + j,                                              \
                       _mm512_add_ps(_mm512_loadu_ps(out + j), msg));        \
    }                                                                        \
    if (j < n) {                                                             \
      const __mmask16 m = tail_mask(n - j);                                  \
      const __m512 msg = _mm512_maskz_mul_ps(                                \
          m, MZOP(m, _mm512_maskz_loadu_ps(m, a + j), vc), vs);              \
      _mm512_mask_storeu_ps(                                                 \
          out + j, m,                                                        \
          _mm512_maskz_add_ps(m, _mm512_maskz_loadu_ps(m, out + j), msg));   \
    }                                                                        \
  }

FG_AVX512_WAXPY_BINOP_S(waxpy_add_s, _mm512_add_ps, _mm512_maskz_add_ps)
FG_AVX512_WAXPY_BINOP_S(waxpy_sub_s, _mm512_sub_ps, _mm512_maskz_sub_ps)
FG_AVX512_WAXPY_BINOP_S(waxpy_mul_s, _mm512_mul_ps, _mm512_maskz_mul_ps)
FG_AVX512_WAXPY_BINOP_S(waxpy_div_s, _mm512_div_ps, _mm512_maskz_div_ps)
#undef FG_AVX512_WAXPY_BINOP_S

// Row-group fold, 512-bit flavor of the AVX2 block above: the output tile
// lives in up to four zmm accumulators across the whole row group, tails are
// one masked accumulator, and n < 16 reroutes to the AVX2 twin. Per (j) the
// i-fold order is the flat chain's, for every unroll value and tail shape.
#define FG_AVX512_ACCUM_ROWS(NAME, VCOMBINE, MZCOMBINE)                      \
  FG_AVX512_FN void NAME(float* out, const float* src, std::int64_t stride,  \
                         const std::int32_t* idx, std::int64_t cnt,          \
                         std::int64_t n, int unroll) {                       \
    FG_AVX512_NARROW(NAME(out, src, stride, idx, cnt, n, unroll))            \
    std::int64_t j = 0;                                                      \
    if (unroll >= 4) {                                                       \
      for (; j + 64 <= n; j += 64) {                                         \
        __m512 a0 = _mm512_loadu_ps(out + j);                                \
        __m512 a1 = _mm512_loadu_ps(out + j + 16);                           \
        __m512 a2 = _mm512_loadu_ps(out + j + 32);                           \
        __m512 a3 = _mm512_loadu_ps(out + j + 48);                           \
        for (std::int64_t i = 0; i < cnt; ++i) {                             \
          const float* row =                                                 \
              src + static_cast<std::int64_t>(idx[i]) * stride;              \
          a0 = VCOMBINE(a0, _mm512_loadu_ps(row + j));                       \
          a1 = VCOMBINE(a1, _mm512_loadu_ps(row + j + 16));                  \
          a2 = VCOMBINE(a2, _mm512_loadu_ps(row + j + 32));                  \
          a3 = VCOMBINE(a3, _mm512_loadu_ps(row + j + 48));                  \
        }                                                                    \
        _mm512_storeu_ps(out + j, a0);                                       \
        _mm512_storeu_ps(out + j + 16, a1);                                  \
        _mm512_storeu_ps(out + j + 32, a2);                                  \
        _mm512_storeu_ps(out + j + 48, a3);                                  \
      }                                                                      \
    }                                                                        \
    if (unroll >= 2) {                                                       \
      for (; j + 32 <= n; j += 32) {                                         \
        __m512 a0 = _mm512_loadu_ps(out + j);                                \
        __m512 a1 = _mm512_loadu_ps(out + j + 16);                           \
        for (std::int64_t i = 0; i < cnt; ++i) {                             \
          const float* row =                                                 \
              src + static_cast<std::int64_t>(idx[i]) * stride;              \
          a0 = VCOMBINE(a0, _mm512_loadu_ps(row + j));                       \
          a1 = VCOMBINE(a1, _mm512_loadu_ps(row + j + 16));                  \
        }                                                                    \
        _mm512_storeu_ps(out + j, a0);                                       \
        _mm512_storeu_ps(out + j + 16, a1);                                  \
      }                                                                      \
    }                                                                        \
    for (; j + 16 <= n; j += 16) {                                           \
      __m512 a0 = _mm512_loadu_ps(out + j);                                  \
      for (std::int64_t i = 0; i < cnt; ++i)                                 \
        a0 = VCOMBINE(                                                       \
            a0, _mm512_loadu_ps(                                             \
                    src + static_cast<std::int64_t>(idx[i]) * stride + j));  \
      _mm512_storeu_ps(out + j, a0);                                         \
    }                                                                        \
    if (j < n) {                                                             \
      const __mmask16 m = tail_mask(n - j);                                  \
      __m512 a0 = _mm512_maskz_loadu_ps(m, out + j);                         \
      for (std::int64_t i = 0; i < cnt; ++i)                                 \
        a0 = MZCOMBINE(                                                      \
            m, a0,                                                           \
            _mm512_maskz_loadu_ps(                                           \
                m, src + static_cast<std::int64_t>(idx[i]) * stride + j));   \
      _mm512_mask_storeu_ps(out + j, m, a0);                                 \
    }                                                                        \
  }

FG_AVX512_ACCUM_ROWS(accum_rows_sum, _mm512_add_ps, _mm512_maskz_add_ps)
FG_AVX512_ACCUM_ROWS(accum_rows_max, _mm512_max_ps, _mm512_maskz_max_ps)
FG_AVX512_ACCUM_ROWS(accum_rows_min, _mm512_min_ps, _mm512_maskz_min_ps)
#undef FG_AVX512_ACCUM_ROWS

FG_AVX512_FN void waxpy_rows(float* out, const float* src, std::int64_t stride,
                             const std::int32_t* idx, const float* w,
                             std::int64_t cnt, std::int64_t n, int unroll) {
  FG_AVX512_NARROW(waxpy_rows(out, src, stride, idx, w, cnt, n, unroll))
  std::int64_t j = 0;
  if (unroll >= 2) {
    for (; j + 32 <= n; j += 32) {
      __m512 a0 = _mm512_loadu_ps(out + j);
      __m512 a1 = _mm512_loadu_ps(out + j + 16);
      for (std::int64_t i = 0; i < cnt; ++i) {
        const float* row = src + static_cast<std::int64_t>(idx[i]) * stride;
        const __m512 vw = _mm512_set1_ps(w[i]);
        a0 = _mm512_add_ps(a0, _mm512_mul_ps(_mm512_loadu_ps(row + j), vw));
        a1 = _mm512_add_ps(a1,
                           _mm512_mul_ps(_mm512_loadu_ps(row + j + 16), vw));
      }
      _mm512_storeu_ps(out + j, a0);
      _mm512_storeu_ps(out + j + 16, a1);
    }
  }
  for (; j + 16 <= n; j += 16) {
    __m512 a0 = _mm512_loadu_ps(out + j);
    for (std::int64_t i = 0; i < cnt; ++i) {
      const float* row = src + static_cast<std::int64_t>(idx[i]) * stride;
      a0 = _mm512_add_ps(
          a0, _mm512_mul_ps(_mm512_loadu_ps(row + j), _mm512_set1_ps(w[i])));
    }
    _mm512_storeu_ps(out + j, a0);
  }
  if (j < n) {
    const __mmask16 m = tail_mask(n - j);
    __m512 a0 = _mm512_maskz_loadu_ps(m, out + j);
    for (std::int64_t i = 0; i < cnt; ++i) {
      const float* row = src + static_cast<std::int64_t>(idx[i]) * stride;
      a0 = _mm512_maskz_add_ps(
          m, a0,
          _mm512_maskz_mul_ps(m, _mm512_maskz_loadu_ps(m, row + j),
                              _mm512_set1_ps(w[i])));
    }
    _mm512_mask_storeu_ps(out + j, m, a0);
  }
}

#undef FG_AVX512_NARROW

FG_AVX512_FN void gather_rows(float* out, const float* src,
                              const std::int32_t* idx, std::int64_t m,
                              std::int64_t d) {
  // Narrow reroute on the ROW WIDTH (the span length here is d, not n): a
  // row narrower than one 512-bit vector gathers faster as one 256-bit
  // copy, same as every other primitive's n < 16 rule.
  if (d < 16) return avx2::gather_rows(out, src, idx, m, d);
  const __mmask16 tail = tail_mask(d % 16 == 0 ? 16 : d % 16);
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = src + static_cast<std::int64_t>(idx[i]) * d;
    float* dst = out + i * d;
    std::int64_t j = 0;
    for (; j + 16 <= d; j += 16)
      _mm512_storeu_ps(dst + j, _mm512_loadu_ps(row + j));
    if (j < d)
      _mm512_mask_storeu_ps(dst + j, tail,
                            _mm512_maskz_loadu_ps(tail, row + j));
  }
}

}  // namespace avx512

SpanOps make_avx512_ops() {
  SpanOps t;
  t.fill = avx512::fill;
  t.scale = avx512::scale;
  t.relu = avx512::relu;
  t.leaky_relu = avx512::leaky_relu;
  t.bias_relu = avx512::bias_relu;
  t.axpy = avx512::axpy;
  t.dot = avx512::dot;
  t.accum[0] = avx512::accum_sum;
  t.accum[1] = avx512::accum_max;
  t.accum[2] = avx512::accum_min;
  void (*const bin[kNumAccum][kNumBinOp])(float*, const float*, const float*,
                                          std::int64_t) = {
      {avx512::accum_sum_add, avx512::accum_sum_sub, avx512::accum_sum_mul,
       avx512::accum_sum_div},
      {avx512::accum_max_add, avx512::accum_max_sub, avx512::accum_max_mul,
       avx512::accum_max_div},
      {avx512::accum_min_add, avx512::accum_min_sub, avx512::accum_min_mul,
       avx512::accum_min_div}};
  void (*const bin_s[kNumAccum][kNumBinOp])(float*, const float*, float,
                                            std::int64_t) = {
      {avx512::accum_sum_add_s, avx512::accum_sum_sub_s,
       avx512::accum_sum_mul_s, avx512::accum_sum_div_s},
      {avx512::accum_max_add_s, avx512::accum_max_sub_s,
       avx512::accum_max_mul_s, avx512::accum_max_div_s},
      {avx512::accum_min_add_s, avx512::accum_min_sub_s,
       avx512::accum_min_mul_s, avx512::accum_min_div_s}};
  for (int r = 0; r < kNumAccum; ++r) {
    for (int o = 0; o < kNumBinOp; ++o) {
      t.accum_binop[r][o] = bin[r][o];
      t.accum_binop_scalar[r][o] = bin_s[r][o];
    }
  }
  t.hmax = avx512::hmax;
  t.exp_scale = avx512::exp_scale;
  t.waxpy_binop[0] = avx512::waxpy_add;
  t.waxpy_binop[1] = avx512::waxpy_sub;
  t.waxpy_binop[2] = avx512::waxpy_mul;
  t.waxpy_binop[3] = avx512::waxpy_div;
  t.waxpy_binop_scalar[0] = avx512::waxpy_add_s;
  t.waxpy_binop_scalar[1] = avx512::waxpy_sub_s;
  t.waxpy_binop_scalar[2] = avx512::waxpy_mul_s;
  t.waxpy_binop_scalar[3] = avx512::waxpy_div_s;
  t.gather_rows = avx512::gather_rows;
  t.accum_rows[0] = avx512::accum_rows_sum;
  t.accum_rows[1] = avx512::accum_rows_max;
  t.accum_rows[2] = avx512::accum_rows_min;
  t.waxpy_rows = avx512::waxpy_rows;
  return t;
}

#endif  // FG_HAVE_AVX512_BACKEND

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

std::atomic<int> g_forced_isa{-1};  // -1 = no override

// Active table pointer, re-resolved only when the override changes: the
// span_ops() wrappers run once per edge visit inside the kernels, so the
// hot path must be one relaxed load, not the detection/env/static-guard
// chain.
std::atomic<const SpanOps*> g_active_ops{nullptr};

Isa env_or_detected_isa() {
  static const Isa isa = [] {
    const std::string pref =
        support::env_string("FEATGRAPH_SIMD", "auto");
    if (pref == "scalar") return Isa::kScalar;
    if (pref == "avx2") return effective_isa(Isa::kAvx2);
    if (pref == "avx512") return effective_isa(Isa::kAvx512);
    if (pref != "auto") {
      // A typo'd value ("Scalar", "off", ...) silently running the vector
      // backend is the opposite of the user's intent — warn once.
      std::fprintf(stderr,
                   "featgraph: unknown FEATGRAPH_SIMD=\"%s\" "
                   "(expected scalar|avx2|avx512|auto), using auto\n",
                   pref.c_str());
    }
    // "auto": the strongest level the CPU runs, walking the ladder down.
    return effective_isa(Isa::kAvx512);
  }();
  return isa;
}

}  // namespace

bool cpu_supports_avx2() {
#if FG_HAVE_AVX2_BACKEND
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if FG_HAVE_AVX512_BACKEND
  static const bool ok = __builtin_cpu_supports("avx512f") &&
                         __builtin_cpu_supports("avx512dq");
  return ok;
#else
  return false;
#endif
}

bool isa_supported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return cpu_supports_avx2();
    case Isa::kAvx512:
      return cpu_supports_avx512();
  }
  return false;
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> isas;
  for (int i = 0; i < kNumIsa; ++i) {
    if (isa_supported(static_cast<Isa>(i))) isas.push_back(static_cast<Isa>(i));
  }
  return isas;
}

Isa effective_isa(Isa isa) {
  // One rung at a time: an avx512 request on an AVX2-only machine still
  // gets the vector backend, not the scalar floor.
  if (isa == Isa::kAvx512 && !cpu_supports_avx512()) isa = Isa::kAvx2;
  if (isa == Isa::kAvx2 && !cpu_supports_avx2()) isa = Isa::kScalar;
  return isa;
}

const SpanOps& span_ops(Isa isa) {
  static const SpanOps scalar_table = make_scalar_ops();
  isa = effective_isa(isa);
#if FG_HAVE_AVX512_BACKEND
  if (isa == Isa::kAvx512) {
    static const SpanOps avx512_table = make_avx512_ops();
    return avx512_table;
  }
#endif
#if FG_HAVE_AVX2_BACKEND
  if (isa == Isa::kAvx2) {
    static const SpanOps avx2_table = make_avx2_ops();
    return avx2_table;
  }
#else
  (void)isa;
#endif
  return scalar_table;
}

const SpanOps& span_ops() {
  // Acquire pairs with the release publications below: a thread that only
  // sees the pointer (and never ran the table's static initialization
  // itself) must also see the table's contents.
  const SpanOps* t = g_active_ops.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = &span_ops(active_isa());
    // CAS, not a plain store: a concurrent force_isa() pin must not be
    // clobbered by this first-call initialization losing the race.
    const SpanOps* expected = nullptr;
    if (!g_active_ops.compare_exchange_strong(expected, t,
                                              std::memory_order_release,
                                              std::memory_order_acquire)) {
      t = expected;
    }
  }
  return *t;
}

const SpanOps& span_ops_for_width(std::int64_t max_span_width) {
  const Isa active = effective_isa(active_isa());
  if (active == Isa::kAvx512 && max_span_width >= 0 && max_span_width < 16) {
    // Every span of this launch is pure tail: resolve the AVX2 table once
    // instead of paying the intra-table narrow branch per span. (kAvx2
    // degrades to scalar through span_ops(Isa) if somehow unsupported.)
    return span_ops(Isa::kAvx2);
  }
  return span_ops();
}

Isa active_isa() {
  const int forced = g_forced_isa.load(std::memory_order_relaxed);
  if (forced >= 0) return effective_isa(static_cast<Isa>(forced));
  return env_or_detected_isa();
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void force_isa(Isa isa) { set_forced_isa_state(static_cast<int>(isa)); }

void clear_forced_isa() { set_forced_isa_state(-1); }

int forced_isa_state() { return g_forced_isa.load(std::memory_order_relaxed); }

void set_forced_isa_state(int state) {
  g_forced_isa.store(state, std::memory_order_relaxed);
  g_active_ops.store(&span_ops(active_isa()), std::memory_order_release);
}

}  // namespace featgraph::simd
