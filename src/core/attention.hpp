// Fused generalized-attention kernel: SDDMM logits -> numerically-stable
// segment softmax -> attention-weighted generalized SpMM, in ONE pass over
// each destination row (the paper's "messages are never materialized"
// promise applied to its hardest workload, the GAT layer of Sec. V-E and the
// GAT-OOM footnote of Table VI).
//
//   logit_e = <q_u, k_v> * logit_scale        (or a precomputed edge scalar)
//   alpha_e = exp(logit_e - max_row) / sum_row exp(...)
//   out[v]  = sum over in-edges (u -e-> v) of alpha_e * MSG(u, e, v)
//
// MSG is any builtin SpMM message op (copy_u for classic GAT, but also
// copy_e, u_op_v, u_op_e and mlp). Per destination row the kernel (1)
// computes the row's edge logits with the existing SDDMM span partial
// (simd::dot), (2) softmaxes them in a per-thread scratch buffer sized by
// the row degree (row max via simd::hmax, exponentials + denominator via
// simd::exp_scale, then the same per-element division the composed
// edge-softmax performs), and (3) folds alpha_e * MSG directly into the
// output row with the weighted-accumulate span primitives (simd::axpy /
// waxpy_binop) — no |E| x d message tensor, no separate softmax launch.
//
// Schedule: `CpuSpmmSchedule` is honored the same way the SpMM template
// honors it. load_balance picks the per-thread row split (rows are owned by
// threads, so alpha writes are race-free), feat_tile tiles the aggregation
// axis (per row, innermost — the softmax state is per-row, so attention
// inverts the SpMM's tile-outermost loop order), and num_partitions > 1
// switches to a two-phase launch: alpha is computed for all rows first
// (one threaded row sweep), then the aggregation runs as a regular
// partitioned generalized SpMM over weighted-message functors reading
// alpha by edge id — the partition loop's cache story (Sec. IV-A) applies
// to the d-wide aggregation where the traffic is. alpha values are
// identical between the two launches (the per-row softmax order never
// changes); only the aggregation's edge-visit order reassociates, exactly
// as partitioned SpMM already does.
#pragma once

#include <string_view>

#include "core/schedule.hpp"
#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::core {

/// Dense operands of the fused attention kernel. The message half mirrors
/// SpmmOperands; the logit half picks ONE of: dot-product logits from
/// query/key (query defaults to src_feat, key defaults to query — classic
/// self-attention passes just src_feat), or precomputed per-edge scalar
/// logits. logit_scale multiplies every logit before the softmax (GAT's
/// 1/sqrt(d)).
struct AttentionOperands {
  const tensor::Tensor* src_feat = nullptr;    // x: message operand, n x d
  const tensor::Tensor* edge_feat = nullptr;   // copy_e / u_op_e messages
  const tensor::Tensor* weight = nullptr;      // mlp message weight
  const tensor::Tensor* query = nullptr;       // logit a (by edge source)
  const tensor::Tensor* key = nullptr;         // logit b (by edge destination)
  const tensor::Tensor* edge_logits = nullptr; // precomputed |E| logits
  float logit_scale = 1.0f;
};

struct AttentionResult {
  tensor::Tensor out;    // num_rows x d_out; empty rows produce zeros
  tensor::Tensor alpha;  // |E| softmax weights by edge id (autograd needs
                         // them; the |E| x d messages stay unmaterialized)
};

/// Runs the fused attention kernel over the destination-major CSR. `msg_op`
/// is any builtin SpMM message op (spmm.hpp). Edges of empty rows don't
/// exist, so every alpha entry is written exactly once.
AttentionResult attention(const graph::Csr& adj, std::string_view msg_op,
                          const CpuSpmmSchedule& fds,
                          const AttentionOperands& operands);

/// Standalone fused segment softmax over each destination's in-edges:
/// alpha[e] = exp(l[e] - rowmax) / rowsum. Threaded over rows and span-
/// accelerated — this is what minidgl::edge_softmax routes through (the old
/// path was a single-threaded scalar triple sweep). Empty rows contribute
/// nothing; logits of length |E| are indexed by edge id.
tensor::Tensor edge_softmax(const graph::Csr& adj,
                            const tensor::Tensor& logits,
                            int num_threads = 1);

/// Backward of edge_softmax: dl[e] = alpha[e] * (dalpha[e] - <alpha, dalpha>
/// over e's destination segment).
tensor::Tensor edge_softmax_backward(const graph::Csr& adj,
                                     const tensor::Tensor& alpha,
                                     const tensor::Tensor& dalpha,
                                     int num_threads = 1);

}  // namespace featgraph::core
