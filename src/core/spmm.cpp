#include "core/spmm.hpp"

#include <string>
#include <vector>

#include "core/partition_cache.hpp"
#include "core/spmm_kernels.hpp"

namespace featgraph::core {

namespace {

using tensor::Tensor;

/// Instantiates the kernel template for one (message functor, reducer) pair;
/// this is the "registry" moment where the UDF is fused into the template.
template <class MsgFn>
Tensor run_spmm(const graph::Csr& adj, const MsgFn& msg,
                std::string_view reduce_op, std::int64_t d_out,
                const CpuSpmmSchedule& fds,
                const EpilogueOps* epilogue = nullptr) {
  Tensor out({adj.num_rows, d_out});
  // IR programs carry their partition(P) transform; flat schedules their
  // knob — schedule_num_partitions resolves whichever is authoritative.
  const auto* parts = cached_partition(adj, schedule_num_partitions(fds));
  if (reduce_op == "sum") {
    generalized_spmm<MsgFn, SumReducer>(adj, parts, msg, out.data(), d_out,
                                       fds, epilogue);
  } else if (reduce_op == "max") {
    generalized_spmm<MsgFn, MaxReducer>(adj, parts, msg, out.data(), d_out,
                                       fds, epilogue);
  } else if (reduce_op == "min") {
    generalized_spmm<MsgFn, MinReducer>(adj, parts, msg, out.data(), d_out,
                                       fds, epilogue);
  } else if (reduce_op == "mean") {
    generalized_spmm<MsgFn, MeanReducer>(adj, parts, msg, out.data(), d_out,
                                       fds, epilogue);
  } else {
    FG_CHECK_MSG(false, "unknown reduce op (expected sum/max/min/mean)");
  }
  return out;
}

const Tensor& require(const Tensor* t, const char* what) {
  FG_CHECK_MSG(t != nullptr && t->defined(), what);
  return *t;
}

}  // namespace

Tensor spmm(const graph::Csr& adj, std::string_view msg_op,
            std::string_view reduce_op, const CpuSpmmSchedule& fds,
            const SpmmOperands& operands, const EpilogueOps* epilogue) {
  if (msg_op == "copy_u") {
    const Tensor& x = require(operands.src_feat, "copy_u requires src_feat");
    FG_CHECK(x.rows() == adj.num_cols);
    return run_spmm(adj, CopyU{x.data(), x.row_size()}, reduce_op,
                    x.row_size(), fds, epilogue);
  }
  if (msg_op == "copy_e") {
    const Tensor& e = require(operands.edge_feat, "copy_e requires edge_feat");
    FG_CHECK(e.rows() == adj.nnz() || e.numel() == adj.nnz());
    const std::int64_t d = e.numel() / adj.nnz();
    return run_spmm(adj, CopyE{e.data(), d}, reduce_op, d, fds, epilogue);
  }
  if (msg_op == "u_add_v" || msg_op == "u_sub_v" || msg_op == "u_mul_v" ||
      msg_op == "u_div_v") {
    const Tensor& x = require(operands.src_feat, "u_op_v requires src_feat");
    FG_CHECK(x.rows() == adj.num_cols);
    const std::int64_t d = x.row_size();
    if (msg_op == "u_add_v")
      return run_spmm(adj, UOpV<OpAdd>{x.data(), d}, reduce_op, d, fds,
                      epilogue);
    if (msg_op == "u_sub_v")
      return run_spmm(adj, UOpV<OpSub>{x.data(), d}, reduce_op, d, fds,
                      epilogue);
    if (msg_op == "u_mul_v")
      return run_spmm(adj, UOpV<OpMul>{x.data(), d}, reduce_op, d, fds,
                      epilogue);
    return run_spmm(adj, UOpV<OpDiv>{x.data(), d}, reduce_op, d, fds,
                    epilogue);
  }
  if (msg_op == "u_add_e" || msg_op == "u_mul_e") {
    const Tensor& x = require(operands.src_feat, "u_op_e requires src_feat");
    const Tensor& e = require(operands.edge_feat, "u_op_e requires edge_feat");
    FG_CHECK(x.rows() == adj.num_cols);
    const std::int64_t d = x.row_size();
    const std::int64_t d_edge = e.numel() / adj.nnz();
    FG_CHECK_MSG(d_edge == 1 || d_edge == d,
                 "edge feature must be scalar or match src feature width");
    if (msg_op == "u_add_e")
      return run_spmm(adj, UOpE<OpAdd>{x.data(), e.data(), d, d_edge},
                      reduce_op, d, fds, epilogue);
    return run_spmm(adj, UOpE<OpMul>{x.data(), e.data(), d, d_edge},
                    reduce_op, d, fds, epilogue);
  }
  if (msg_op == "mlp") {
    const Tensor& x = require(operands.src_feat, "mlp requires src_feat");
    const Tensor& w = require(operands.weight, "mlp requires weight");
    FG_CHECK(x.rows() == adj.num_cols);
    FG_CHECK(w.rank() == 2 && w.shape(0) == x.row_size());
    FG_CHECK_MSG(x.row_size() <= kMaxMlpInputDim,
                 "mlp UDF supports d1 <= kMaxMlpInputDim");
    return run_spmm(
        adj, MlpMsg{x.data(), x.row_size(), w.data(), w.shape(1)}, reduce_op,
        w.shape(1), fds, epilogue);
  }
  FG_CHECK_MSG(false, "unknown spmm message op");
}

namespace {

/// Adapts a blackbox std::function UDF to the fused bulk-span protocol by
/// materializing the message into a per-thread scratch buffer, then folding
/// the requested span with the SIMD accumulator.
struct GenericMsgAdapter {
  static constexpr bool kUsesEdgeId = true;  // blackbox: may read anything
  const GenericMsgFn* fn;
  std::int64_t d_out;

  template <class Reducer>
  void apply(const simd::SpanOps& ops, graph::vid_t u, graph::eid_t e,
             graph::vid_t v, float* out_row, std::int64_t j0,
             std::int64_t j1) const {
    thread_local std::vector<float> buf;
    if (static_cast<std::int64_t>(buf.size()) < d_out)
      buf.resize(static_cast<std::size_t>(d_out));
    (*fn)(u, e, v, buf.data());
    simd::accum(ops, Reducer::kAccum, out_row + j0, buf.data() + j0, j1 - j0);
  }
};

}  // namespace

Tensor spmm_generic(const graph::Csr& adj, const GenericMsgFn& msg,
                    std::string_view reduce_op, std::int64_t d_out,
                    const CpuSpmmSchedule& fds) {
  return run_spmm(adj, GenericMsgAdapter{&msg, d_out}, reduce_op, d_out, fds);
}

Tensor spmm_copy_u_max_arg(const graph::Csr& adj,
                           const tensor::Tensor& src_feat,
                           std::vector<graph::vid_t>* arg_src,
                           int num_threads) {
  FG_CHECK(src_feat.rows() == adj.num_cols);
  const std::int64_t d = src_feat.row_size();
  const std::int64_t n = adj.num_rows;
  Tensor out({n, d});
  FG_CHECK(arg_src != nullptr);
  arg_src->assign(static_cast<std::size_t>(n * d), -1);

  const float* x = src_feat.data();
  graph::vid_t* args = arg_src->data();
  parallel::parallel_for_ranges(
      0, n, num_threads, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t v = r0; v < r1; ++v) {
          float* out_row = out.data() + v * d;
          graph::vid_t* arg_row = args + v * d;
          const std::int64_t lo = adj.indptr[v], hi = adj.indptr[v + 1];
          if (lo == hi) {
            for (std::int64_t j = 0; j < d; ++j) out_row[j] = 0.0f;
            continue;
          }
          for (std::int64_t j = 0; j < d; ++j)
            out_row[j] = -std::numeric_limits<float>::infinity();
          for (std::int64_t i = lo; i < hi; ++i) {
            const graph::vid_t u = adj.indices[i];
            const float* xu = x + static_cast<std::int64_t>(u) * d;
            for (std::int64_t j = 0; j < d; ++j) {
              if (xu[j] > out_row[j]) {
                out_row[j] = xu[j];
                arg_row[j] = u;
              }
            }
          }
        }
      });
  return out;
}

}  // namespace featgraph::core
