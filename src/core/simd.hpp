// Bulk-span SIMD engine for the CPU kernel templates (paper Sec. IV-A).
//
// FeatGraph's FDS binds the feature axis to the vector units: the sparse
// template walks edges, and for every edge visit the innermost loop sweeps a
// contiguous feature span. This header exposes that inner loop as a small
// set of span primitives — "fold this message span into the output row under
// reducer R" — implemented three times, as portable scalar code, AVX2/FMA
// intrinsics, and AVX-512 intrinsics, and selected once at runtime via CPU
// detection (a function pointer table, the classic runtime-dispatch idiom).
//
// Rounding contract: for every accumulation primitive all backends perform
// the SAME IEEE operations per element in the SAME order along the feature
// axis (vector lanes never cross features, and no FMA contraction is used on
// accumulation paths), so every backend is bit-for-bit identical to scalar.
// Only `dot` — a cross-feature reduction — reassociates and uses FMA, trading
// exact reproducibility for throughput (SDDMM results are tolerance-checked,
// not bit-compared).
//
// Masked tails (AVX-512): where the scalar and AVX2 backends peel the last
// n % width elements into a scalar loop, the AVX-512 backend covers them
// with ONE masked vector operation (`_mm512_mask[z]_*` with a (1 << rem) - 1
// lane mask). This does not weaken the contract: a masked lane either runs
// the identical single IEEE operation the scalar loop would run, or is
// switched off entirely — masked-off lanes are never loaded into the
// destination, and inputs for them are zero-filled (`maskz`) loads whose
// garbage results the masked store discards. No horizontal operation ever
// crosses a feature boundary, so accumulation paths stay bit-for-bit with
// scalar even on tail spans.
//
// Narrow spans (AVX-512): a span with n < 16 is pure tail — one masked
// 512-bit op loses ~2.4x to one full 256-bit AVX2 vector (the recorded
// BENCH_kernels.json d=8 regression) — so every AVX-512 primitive routes
// n < 16 to its AVX2 implementation (one-step intra-table fallback).
// Accumulation paths are unchanged bitwise (all backends already agree);
// dot/exp_scale/hmax become exactly the AVX2 results on narrow spans.
//
// Selection order: force_isa() override (tests/benches) > FEATGRAPH_SIMD env
// var ("scalar" | "avx2" | "avx512" | "auto") > runtime CPU detection.
// Requesting a level the CPU lacks degrades ONE step (avx512 -> avx2 ->
// scalar), never straight to scalar.
#pragma once

#include <cstdint>
#include <vector>

namespace featgraph::simd {

/// Instruction-set levels the dispatcher can select, ordered weakest to
/// strongest (fallback walks DOWN this ladder one step at a time).
enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };
inline constexpr int kNumIsa = 3;

/// Reduction kinds the SpMM templates accumulate with. Mean reduces as kSum
/// (the degree division happens in postprocessing).
enum class Accum : int { kSum = 0, kMax = 1, kMin = 2 };
inline constexpr int kNumAccum = 3;

/// Elementwise binary message ops (the u_op_v / u_op_e builtin family).
enum class BinOp : int { kAdd = 0, kSub = 1, kMul = 2, kDiv = 3 };
inline constexpr int kNumBinOp = 4;

/// One backend's span primitives. All spans are contiguous float ranges of
/// length n; `out` is the destination row slice the reducer folds into.
struct SpanOps {
  /// out[j] = v
  void (*fill)(float* out, float v, std::int64_t n);
  /// out[j] *= s   (mean normalization)
  void (*scale)(float* out, float s, std::int64_t n);
  /// out[j] = max(out[j], 0)   (MLP aggregation's activation)
  void (*relu)(float* out, std::int64_t n);
  /// out[j] = out[j] > 0 ? out[j] : out[j] * slope   (epilogue leaky-ReLU).
  /// Exact class: one compare + one multiply per element, lanes never cross
  /// features — bit-for-bit across backends.
  void (*leaky_relu)(float* out, float slope, std::int64_t n);
  /// out[j] = max(out[j] + b[j], 0)   (the fused bias+ReLU epilogue step).
  /// Exact class: the same IEEE add-then-max chain an accum-kSum followed by
  /// relu performs, so fusing the pair is bit-identical to running them
  /// separately.
  void (*bias_relu)(float* out, const float* b, std::int64_t n);
  /// out[j] += x[j] * s   (axpy; the MLP k-loop body)
  void (*axpy)(float* out, const float* x, float s, std::int64_t n);
  /// sum_j a[j] * b[j]   (SDDMM dot-product partial; reassociated + FMA)
  float (*dot)(const float* a, const float* b, std::int64_t n);
  /// out[j] = R(out[j], x[j])
  void (*accum[kNumAccum])(float* out, const float* x, std::int64_t n);
  /// out[j] = R(out[j], a[j] op b[j])
  void (*accum_binop[kNumAccum][kNumBinOp])(float* out, const float* a,
                                            const float* b, std::int64_t n);
  /// out[j] = R(out[j], a[j] op s)   (scalar edge-weight broadcast)
  void (*accum_binop_scalar[kNumAccum][kNumBinOp])(float* out, const float* a,
                                                   float s, std::int64_t n);

  // --- attention primitives (fused SDDMM -> softmax -> SpMM engine) --------

  /// max_j x[j]; -inf for n == 0 (the softmax row max). Max is associative,
  /// so vector-lane reduction matches the sequential scalar fold bit-for-bit
  /// for NaN-free inputs (the only inputs the softmax contract admits); ±0
  /// ties may differ in sign only.
  float (*hmax)(const float* x, std::int64_t n);
  /// io[j] = exp(io[j] + shift); returns the sum of the NEW values (the
  /// softmax denominator). Approximate like `dot`: the vector backends run a
  /// polynomial exp (~2 ulp vs libm) and reassociate the sum, so this
  /// primitive is tolerance-checked, never bit-compared, across backends.
  float (*exp_scale)(float* io, float shift, std::int64_t n);
  /// out[j] += s * (a[j] op b[j])   (attention-weighted u_op_v accumulate).
  /// Exact contract: three IEEE ops per element (op, mul, add), no FMA.
  void (*waxpy_binop[kNumBinOp])(float* out, const float* a, const float* b,
                                 float s, std::int64_t n);
  /// out[j] += s * (a[j] op c)   (attention-weighted u_op_e scalar form).
  void (*waxpy_binop_scalar[kNumBinOp])(float* out, const float* a, float c,
                                        float s, std::int64_t n);

  // --- sampling primitives (minibatch block inference, src/sample) ---------

  /// out[i*d + j] = src[idx[i]*d + j] for i in [0, m), j in [0, d): dense
  /// row gather of `m` feature rows of width `d` into a contiguous block
  /// tensor (the feature loader's inner loop). A pure copy — exact class,
  /// bit-for-bit identical across every backend.
  void (*gather_rows)(float* out, const float* src, const std::int32_t* idx,
                      std::int64_t m, std::int64_t d);

  // --- register-blocked row-group primitives (Schedule-IR unroll path) -----

  /// out[j] = R(out[j], src[idx[i]*stride + j]) folded over i = 0..cnt-1, in
  /// i order, for j in [0, n). The entire i-fold for a j keeps its running
  /// value in a vector register: ONE load and ONE store of out per call
  /// instead of one per gathered row — the register-blocking win the
  /// Schedule-IR's tile(W).unroll(U) transform buys. `unroll` is a
  /// PERFORMANCE HINT (how many accumulator vectors to keep live); results
  /// are identical for every unroll value. Rounding contract: the per-(j)
  /// combine chain is the exact sequential fold accum() would produce over
  /// the same rows in the same order — lanes never cross features, no FMA.
  void (*accum_rows[kNumAccum])(float* out, const float* src,
                                std::int64_t stride, const std::int32_t* idx,
                                std::int64_t cnt, std::int64_t n, int unroll);
  /// out[j] += w[i] * src[idx[i]*stride + j] folded over i in order (the
  /// attention-weighted copy_u row group; alpha weights live in w[0..cnt)).
  /// Two IEEE ops per (i, j): mul then add, no FMA — the same chain a
  /// per-row axpy() sequence produces.
  void (*waxpy_rows)(float* out, const float* src, std::int64_t stride,
                     const std::int32_t* idx, const float* w,
                     std::int64_t cnt, std::int64_t n, int unroll);
};

/// True when the CPU (and compiler) support the AVX2+FMA backend.
bool cpu_supports_avx2();

/// True when the CPU (and compiler) support the AVX-512 (F+DQ) backend.
bool cpu_supports_avx512();

/// True when `isa`'s backend is compiled in AND the CPU can run it. The
/// parity tests iterate all kNumIsa levels through this filter, so a fourth
/// level joins the test matrix by extending the enum.
bool isa_supported(Isa isa);

/// Every supported level, weakest first (kScalar always included) — the
/// single source of the backend axis tests and benches sweep.
std::vector<Isa> supported_isas();

/// `isa` degraded one step at a time until supported
/// (avx512 -> avx2 -> scalar) — the level span_ops(isa) actually returns.
Isa effective_isa(Isa isa);

/// The primitive table for an explicit backend. Unsupported levels fall
/// back one step at a time (kAvx512 -> kAvx2 -> kScalar), so callers can
/// always index any level.
const SpanOps& span_ops(Isa isa);

/// The active backend's table (override > env > detection).
const SpanOps& span_ops();

/// The active backend's table for a launch whose widest contiguous span is
/// `max_span_width` elements. Identical to span_ops() except that an active
/// AVX-512 table with max_span_width < 16 resolves the AVX2 table outright:
/// every span of such a launch is pure tail, and while the AVX-512 table's
/// intra-table narrow fallback already runs the AVX2 code, its per-span
/// branch is real cost in a d<16 kernel that takes it half a million times.
/// Hoisting the narrow decision to the launch (the PR-2 dispatch-hoisting
/// move, one level up) makes the narrow launch literally the AVX2 backend.
/// Results are unchanged: the fallback and the hoist pick the same code.
const SpanOps& span_ops_for_width(std::int64_t max_span_width);

/// The backend span_ops() currently resolves to.
Isa active_isa();

const char* isa_name(Isa isa);

/// Pins the active backend; used by parity tests and the scalar-vs-SIMD
/// benches. Pinning a level the hardware lacks degrades one step
/// (avx512 -> avx2 -> scalar), mirroring span_ops(Isa).
void force_isa(Isa isa);

/// Returns to env/detection-based selection.
void clear_forced_isa();

/// Raw override state for save/restore (-1 = no override, else the Isa
/// value). ScopedIsa plumbing; prefer force_isa/clear_forced_isa directly.
int forced_isa_state();
void set_forced_isa_state(int state);

/// RAII pin for tests/benches: force on construction, restore the PREVIOUS
/// override (including "none") on destruction, so pins nest correctly.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) : prev_(forced_isa_state()) { force_isa(isa); }
  ~ScopedIsa() { set_forced_isa_state(prev_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  int prev_;
};

// ---------------------------------------------------------------------------
// Convenience wrappers over a RESOLVED table. The kernel templates call
// span_ops() ONCE per launch and thread the reference through the bulk-UDF
// protocol, so the per-span cost is a direct table load — no atomic load, no
// re-dispatch (the hoisting the ROADMAP called for).
// ---------------------------------------------------------------------------

inline void fill(const SpanOps& ops, float* out, float v, std::int64_t n) {
  ops.fill(out, v, n);
}
inline void scale(const SpanOps& ops, float* out, float s, std::int64_t n) {
  ops.scale(out, s, n);
}
inline void relu(const SpanOps& ops, float* out, std::int64_t n) {
  ops.relu(out, n);
}
inline void leaky_relu(const SpanOps& ops, float* out, float slope,
                       std::int64_t n) {
  ops.leaky_relu(out, slope, n);
}
inline void bias_relu(const SpanOps& ops, float* out, const float* b,
                      std::int64_t n) {
  ops.bias_relu(out, b, n);
}
inline void axpy(const SpanOps& ops, float* out, const float* x, float s,
                 std::int64_t n) {
  ops.axpy(out, x, s, n);
}
inline float dot(const SpanOps& ops, const float* a, const float* b,
                 std::int64_t n) {
  return ops.dot(a, b, n);
}
inline void accum(const SpanOps& ops, Accum r, float* out, const float* x,
                  std::int64_t n) {
  ops.accum[static_cast<int>(r)](out, x, n);
}
inline void accum_binop(const SpanOps& ops, Accum r, BinOp op, float* out,
                        const float* a, const float* b, std::int64_t n) {
  ops.accum_binop[static_cast<int>(r)][static_cast<int>(op)](out, a, b, n);
}
inline void accum_binop_scalar(const SpanOps& ops, Accum r, BinOp op,
                               float* out, const float* a, float s,
                               std::int64_t n) {
  ops.accum_binop_scalar[static_cast<int>(r)][static_cast<int>(op)](out, a, s,
                                                                    n);
}
inline float hmax(const SpanOps& ops, const float* x, std::int64_t n) {
  return ops.hmax(x, n);
}
inline float exp_scale(const SpanOps& ops, float* io, float shift,
                       std::int64_t n) {
  return ops.exp_scale(io, shift, n);
}
inline void waxpy_binop(const SpanOps& ops, BinOp op, float* out,
                        const float* a, const float* b, float s,
                        std::int64_t n) {
  ops.waxpy_binop[static_cast<int>(op)](out, a, b, s, n);
}
inline void waxpy_binop_scalar(const SpanOps& ops, BinOp op, float* out,
                               const float* a, float c, float s,
                               std::int64_t n) {
  ops.waxpy_binop_scalar[static_cast<int>(op)](out, a, c, s, n);
}
inline void gather_rows(const SpanOps& ops, float* out, const float* src,
                        const std::int32_t* idx, std::int64_t m,
                        std::int64_t d) {
  ops.gather_rows(out, src, idx, m, d);
}
inline void accum_rows(const SpanOps& ops, Accum r, float* out,
                       const float* src, std::int64_t stride,
                       const std::int32_t* idx, std::int64_t cnt,
                       std::int64_t n, int unroll) {
  ops.accum_rows[static_cast<int>(r)](out, src, stride, idx, cnt, n, unroll);
}
inline void waxpy_rows(const SpanOps& ops, float* out, const float* src,
                       std::int64_t stride, const std::int32_t* idx,
                       const float* w, std::int64_t cnt, std::int64_t n,
                       int unroll) {
  ops.waxpy_rows(out, src, stride, idx, w, cnt, n, unroll);
}

// (No active-table convenience forms: a one-off span outside a kernel
// launch calls span_ops() itself, keeping the per-span re-dispatch pattern
// impossible to reintroduce by accident.)

}  // namespace featgraph::simd
