// Bulk-span SIMD engine for the CPU kernel templates (paper Sec. IV-A).
//
// FeatGraph's FDS binds the feature axis to the vector units: the sparse
// template walks edges, and for every edge visit the innermost loop sweeps a
// contiguous feature span. This header exposes that inner loop as a small
// set of span primitives — "fold this message span into the output row under
// reducer R" — implemented twice, as portable scalar code and as AVX2/FMA
// intrinsics, and selected once at runtime via CPU detection (a function
// pointer table, the classic runtime-dispatch idiom).
//
// Rounding contract: for every accumulation primitive the scalar and AVX2
// implementations perform the SAME IEEE operations per element in the SAME
// order along the feature axis (vector lanes never cross features, and no
// FMA contraction is used on accumulation paths), so the two backends are
// bit-for-bit identical. Only `dot` — a cross-feature reduction — reassociates
// and uses FMA, trading exact reproducibility for throughput (SDDMM results
// are tolerance-checked, not bit-compared).
//
// Selection order: force_isa() override (tests/benches) > FEATGRAPH_SIMD env
// var ("scalar" | "avx2" | "auto") > runtime CPU detection.
#pragma once

#include <cstdint>

namespace featgraph::simd {

/// Instruction-set levels the dispatcher can select.
enum class Isa : int { kScalar = 0, kAvx2 = 1 };

/// Reduction kinds the SpMM templates accumulate with. Mean reduces as kSum
/// (the degree division happens in postprocessing).
enum class Accum : int { kSum = 0, kMax = 1, kMin = 2 };
inline constexpr int kNumAccum = 3;

/// Elementwise binary message ops (the u_op_v / u_op_e builtin family).
enum class BinOp : int { kAdd = 0, kSub = 1, kMul = 2, kDiv = 3 };
inline constexpr int kNumBinOp = 4;

/// One backend's span primitives. All spans are contiguous float ranges of
/// length n; `out` is the destination row slice the reducer folds into.
struct SpanOps {
  /// out[j] = v
  void (*fill)(float* out, float v, std::int64_t n);
  /// out[j] *= s   (mean normalization)
  void (*scale)(float* out, float s, std::int64_t n);
  /// out[j] = max(out[j], 0)   (MLP aggregation's activation)
  void (*relu)(float* out, std::int64_t n);
  /// out[j] += x[j] * s   (axpy; the MLP k-loop body)
  void (*axpy)(float* out, const float* x, float s, std::int64_t n);
  /// sum_j a[j] * b[j]   (SDDMM dot-product partial; reassociated + FMA)
  float (*dot)(const float* a, const float* b, std::int64_t n);
  /// out[j] = R(out[j], x[j])
  void (*accum[kNumAccum])(float* out, const float* x, std::int64_t n);
  /// out[j] = R(out[j], a[j] op b[j])
  void (*accum_binop[kNumAccum][kNumBinOp])(float* out, const float* a,
                                            const float* b, std::int64_t n);
  /// out[j] = R(out[j], a[j] op s)   (scalar edge-weight broadcast)
  void (*accum_binop_scalar[kNumAccum][kNumBinOp])(float* out, const float* a,
                                                   float s, std::int64_t n);
};

/// True when the CPU (and compiler) support the AVX2+FMA backend.
bool cpu_supports_avx2();

/// The primitive table for an explicit backend (kAvx2 falls back to the
/// scalar table when unsupported — callers can always index either level).
const SpanOps& span_ops(Isa isa);

/// The active backend's table (override > env > detection).
const SpanOps& span_ops();

/// The backend span_ops() currently resolves to.
Isa active_isa();

const char* isa_name(Isa isa);

/// Pins the active backend; used by parity tests and the scalar-vs-SIMD
/// benches. Pinning kAvx2 on hardware without AVX2 is ignored (stays scalar).
void force_isa(Isa isa);

/// Returns to env/detection-based selection.
void clear_forced_isa();

/// Raw override state for save/restore (-1 = no override, else the Isa
/// value). ScopedIsa plumbing; prefer force_isa/clear_forced_isa directly.
int forced_isa_state();
void set_forced_isa_state(int state);

/// RAII pin for tests/benches: force on construction, restore the PREVIOUS
/// override (including "none") on destruction, so pins nest correctly.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) : prev_(forced_isa_state()) { force_isa(isa); }
  ~ScopedIsa() { set_forced_isa_state(prev_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  int prev_;
};

// ---------------------------------------------------------------------------
// Convenience wrappers over the active table (one dispatch per span call;
// spans are whole feature tiles, so dispatch cost is amortized away).
// ---------------------------------------------------------------------------

inline void fill(float* out, float v, std::int64_t n) {
  span_ops().fill(out, v, n);
}
inline void scale(float* out, float s, std::int64_t n) {
  span_ops().scale(out, s, n);
}
inline void relu(float* out, std::int64_t n) { span_ops().relu(out, n); }
inline void axpy(float* out, const float* x, float s, std::int64_t n) {
  span_ops().axpy(out, x, s, n);
}
inline float dot(const float* a, const float* b, std::int64_t n) {
  return span_ops().dot(a, b, n);
}
inline void accum(Accum r, float* out, const float* x, std::int64_t n) {
  span_ops().accum[static_cast<int>(r)](out, x, n);
}
inline void accum_binop(Accum r, BinOp op, float* out, const float* a,
                        const float* b, std::int64_t n) {
  span_ops().accum_binop[static_cast<int>(r)][static_cast<int>(op)](out, a, b,
                                                                    n);
}
inline void accum_binop_scalar(Accum r, BinOp op, float* out, const float* a,
                               float s, std::int64_t n) {
  span_ops().accum_binop_scalar[static_cast<int>(r)][static_cast<int>(op)](
      out, a, s, n);
}

}  // namespace featgraph::simd
