// Grid-search schedule tuner (paper Sec. IV-A: "we use naive grid search to
// find the optimal parameters under a given input shape").
//
// The design space is the product of template parameters (number of graph
// partitions) and FDS parameters (feature tile width). Results are cached
// per (graph, kernel, feature length, threads): GNN training runs hundreds
// of epochs over a fixed topology, so tuning cost is amortized to noise
// (Sec. V-E excludes it for the same reason).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/attention.hpp"
#include "core/schedule.hpp"
#include "core/spmm.hpp"
#include "gpusim/device.hpp"
#include "graph/csr.hpp"

namespace featgraph::core {

struct SpmmTrial {
  CpuSpmmSchedule schedule;
  double seconds = 0.0;
};

struct SpmmTuneResult {
  CpuSpmmSchedule best;
  double best_seconds = 0.0;
  std::vector<SpmmTrial> trials;
};

/// Candidate grid: partition counts x feature tiles, all at `num_threads`.
std::vector<CpuSpmmSchedule> default_spmm_candidates(std::int64_t d_out,
                                                     int num_threads);

/// Schedule-IR candidate grid. The FIRST candidate is the empty program —
/// lowered it reproduces the untuned default schedule bit-for-bit, so the
/// tuner's opening measurement is always the pre-IR baseline. The rest are
/// legal IR programs (filtered through validate_spmm_ir against the active
/// backend, so the AVX2 and AVX-512 legs see different tile-width axes):
/// register-blocked feature tiles tile(W).unroll(U), row chunking chunk(C),
/// nnz-position splitting and source partitioning.
std::vector<CpuSpmmSchedule> default_spmm_ir_candidates(std::int64_t d_out,
                                                        std::int64_t num_rows,
                                                        int num_threads);

/// Times every candidate on the real kernel and returns the winner plus the
/// full trial log (benchmarks use the log for the Fig. 14 sensitivity grid).
SpmmTuneResult tune_spmm(const graph::Csr& adj, std::string_view msg_op,
                         std::string_view reduce_op,
                         const SpmmOperands& operands,
                         std::vector<CpuSpmmSchedule> candidates,
                         int timing_reps = 1);

/// Cached best schedule for (adj, msg_op, reduce_op, d_out, threads);
/// tunes with the default grid on first call.
CpuSpmmSchedule tuned_spmm_schedule(const graph::Csr& adj,
                                    std::string_view msg_op,
                                    std::string_view reduce_op,
                                    const SpmmOperands& operands,
                                    int num_threads);

/// A sensible untuned default: partitions sized so one partition's source
/// features fit in roughly half of a 25 MB LLC, feature tile 64.
CpuSpmmSchedule heuristic_spmm_schedule(const graph::Csr& adj,
                                        std::int64_t d_feat, int num_threads);

// --- fused attention axis ---------------------------------------------------
// The fused attention kernel (core/attention.hpp) honors the same
// CpuSpmmSchedule, so it tunes over the same candidate grid; the smart tuner
// (core/smart_tuner.hpp) covers it too through its MeasureFn — wrap an
// attention launch in the callback, as attention_measure_fn does.

/// Times every candidate on the fused attention kernel and returns the
/// winner plus the full trial log (same shape as tune_spmm).
SpmmTuneResult tune_attention(const graph::Csr& adj, std::string_view msg_op,
                              const AttentionOperands& operands,
                              std::vector<CpuSpmmSchedule> candidates,
                              int timing_reps = 1);

/// Cached best attention schedule for (adj, msg_op, d_out, threads); tunes
/// with the default SpMM grid on first call. Shares the SpMM tune cache
/// under an "attn:"-prefixed kernel key.
CpuSpmmSchedule tuned_attention_schedule(const graph::Csr& adj,
                                         std::string_view msg_op,
                                         const AttentionOperands& operands,
                                         int num_threads);

/// Adapter for the smart tuner: a MeasureFn-compatible callback timing one
/// fused attention launch per candidate schedule. The callback holds a
/// REFERENCE to `adj` and a copy of `operands` (a struct of tensor
/// pointers): both the adjacency and every tensor the operands point at
/// must outlive the returned function — pass named objects, never
/// temporaries.
std::function<double(const CpuSpmmSchedule&)> attention_measure_fn(
    const graph::Csr& adj, std::string_view msg_op,
    const AttentionOperands& operands, int timing_reps = 1);

// --- gpusim fused-attention axis --------------------------------------------
// The fused GPU attention kernel (gpusim/attention_gpu.hpp) has its own
// schedule half inside GpuSpmmSchedule: the staging-tile size, the tile row
// assignment, hybrid source staging, and the shared-memory split between
// softmax scratch and staged sources. Its objective is the SIMULATED cost
// (deterministic — no timing reps), searched by the same two tuners as the
// CPU axes: grid search below, hill climbing via
// smart_tune_gpu_attention + gpu_attention_measure_fn.

struct GpuAttentionTrial {
  GpuSpmmSchedule schedule;
  double seconds = 0.0;  // simulated cost, not wall-clock
};

struct GpuAttentionTuneResult {
  GpuSpmmSchedule best;
  double best_seconds = 0.0;
  std::vector<GpuAttentionTrial> trials;
};

/// Candidate grid: the plain full-scratch kernel plus the hybrid-staging
/// grid over rows-per-tile x smem split x row assignment.
std::vector<GpuSpmmSchedule> default_gpu_attention_candidates();

/// Evaluates every candidate's simulated cost on the fused gpusim kernel
/// and returns the winner plus the full trial log.
GpuAttentionTuneResult tune_attention_gpu(
    const graph::Csr& adj, std::string_view msg_op,
    const AttentionOperands& operands,
    std::vector<GpuSpmmSchedule> candidates,
    const gpusim::DeviceSpec& spec = {});

/// Cached best gpusim attention schedule for (adj, msg_op, d_out); tunes
/// with the default candidate grid on first call.
GpuSpmmSchedule tuned_gpu_attention_schedule(const graph::Csr& adj,
                                             std::string_view msg_op,
                                             const AttentionOperands& operands,
                                             const gpusim::DeviceSpec& spec = {});

/// Adapter for the smart tuner's GPU lattice: a GpuMeasureFn-compatible
/// callback returning one candidate's simulated fused-attention cost. Same
/// lifetime rules as attention_measure_fn.
std::function<double(const GpuSpmmSchedule&)> gpu_attention_measure_fn(
    const graph::Csr& adj, std::string_view msg_op,
    const AttentionOperands& operands, const gpusim::DeviceSpec& spec = {});

}  // namespace featgraph::core
