// Public generalized-SDDMM API: the `featgraph.sddmm` template of the paper
// (Fig. 4) with string-named builtin edge functions and a CPU FDS.
//
// Builtin edge ops:
//   "dot"            out_e    = <a_u, b_v>          (dot-product attention)
//   "multihead_dot"  out_e,h  = <a_u[h], b_v[h]>    (Fig. 4b; rank-3 inputs)
//   "u_add_v"        out_e,j  = a_u[j] + b_v[j]
//   "u_mul_v"        out_e,j  = a_u[j] * b_v[j]
// `a` is indexed by the edge's source, `b` by its destination; attention
// uses a == b, gradient kernels pass different tensors.
#pragma once

#include <string_view>

#include "core/schedule.hpp"
#include "core/udf.hpp"
#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::core {

struct SddmmOperands {
  const tensor::Tensor* src_feat = nullptr;  // a: indexed by edge source
  const tensor::Tensor* dst_feat = nullptr;  // b: indexed by edge destination
};

/// Runs the generalized SDDMM over all edges of `coo` and returns the
/// (num_edges x d_out) result (d_out == 1 collapses to a vector of length m).
tensor::Tensor sddmm(const graph::Coo& coo, std::string_view edge_op,
                     const CpuSddmmSchedule& fds, const SddmmOperands& ops);

/// Blackbox-UDF fallback / reference path: `fn` writes all `d_out` outputs
/// for one edge.
tensor::Tensor sddmm_generic(const graph::Coo& coo, const GenericEdgeFn& fn,
                             std::int64_t d_out, const CpuSddmmSchedule& fds);

/// Cached Hilbert-curve edge order for a COO (computed once per graph).
const std::vector<graph::eid_t>* cached_hilbert_order(const graph::Coo& coo);

}  // namespace featgraph::core
