// Process-wide cache of 1D source partitionings.
//
// FeatGraph "generates kernel codes for a specific graph topology ... the
// compilation cost is amortized" (Sec. IV-B). The analog here: partitioning
// a CSR is the per-topology preprocessing step, computed once per
// (CSR, num_partitions) pair and reused across kernel launches, epochs and
// tuner trials.
#pragma once

#include <memory>

#include "graph/csr.hpp"
#include "graph/partition.hpp"

namespace featgraph::core {

/// Returns the cached partitioning of `adj` into `num_partitions` segments,
/// computing it on first use. Thread-safe. Returns nullptr when
/// num_partitions <= 1 (kernels then use the unpartitioned CSR directly).
const graph::SrcPartitionedCsr* cached_partition(const graph::Csr& adj,
                                                 int num_partitions);

/// Drops all cached partitionings (tests; memory-conscious benchmarks).
void clear_partition_cache();

}  // namespace featgraph::core
