// Public generalized-SpMM API: the coarse-grained `featgraph.spmm` template
// of the paper (Fig. 3) with string-named builtin message functions, any of
// the four reducers, and a CPU feature-dimension schedule.
//
// Builtin message ops (covering DGL's builtin message functions, Sec. III-B):
//   "copy_u"   msg = x_u                       (vanilla SpMM / GCN aggregation)
//   "copy_e"   msg = e
//   "u_add_v"  msg = x_u + x_v   "u_sub_v"  msg = x_u - x_v
//   "u_mul_v"  msg = x_u * x_v   "u_div_v"  msg = x_u / x_v
//   "u_add_e"  msg = x_u + e     "u_mul_e"  msg = x_u * e   (e scalar or vector)
//   "mlp"      msg = ReLU((x_u + x_v) W)       (MLP aggregation, Fig. 3b)
// Reducers: "sum", "max", "min", "mean".
#pragma once

#include <string_view>

#include "core/epilogue.hpp"
#include "core/schedule.hpp"
#include "core/udf.hpp"
#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::core {

/// Dense operands a message function may reference.
struct SpmmOperands {
  const tensor::Tensor* src_feat = nullptr;   // X_V: n x d (or n x d1 for mlp)
  const tensor::Tensor* edge_feat = nullptr;  // |E| (scalar) or |E| x d
  const tensor::Tensor* weight = nullptr;     // d1 x d2 (mlp only)
};

/// Runs the generalized SpMM and returns the (num_rows x d_out) result.
/// `adj` is destination-major: row v lists in-neighbors of v. Pass a graph's
/// out_csr to aggregate in the reverse direction (used by gradients).
/// An optional fused epilogue (see epilogue.hpp) runs per output row inside
/// the kernel's row-finalize sweep — bit-identical to running the same
/// elementwise chain eagerly on the returned tensor, minus the extra passes.
tensor::Tensor spmm(const graph::Csr& adj, std::string_view msg_op,
                    std::string_view reduce_op, const CpuSpmmSchedule& fds,
                    const SpmmOperands& operands,
                    const EpilogueOps* epilogue = nullptr);

/// Blackbox-UDF fallback: `msg` writes the full d_out message per edge. This
/// is both the flexibility escape hatch and the reference semantics used by
/// tests (a traditional graph system can only run SpMM this way).
tensor::Tensor spmm_generic(const graph::Csr& adj, const GenericMsgFn& msg,
                            std::string_view reduce_op, std::int64_t d_out,
                            const CpuSpmmSchedule& fds);

/// copy_u / max with argmax tracking: fills `arg_src[v*d + j]` with the
/// source vertex whose feature won the max (or -1 on empty rows). The
/// gradient of max-aggregation routes through exactly these entries.
tensor::Tensor spmm_copy_u_max_arg(const graph::Csr& adj,
                                   const tensor::Tensor& src_feat,
                                   std::vector<graph::vid_t>* arg_src,
                                   int num_threads = 1);

}  // namespace featgraph::core
