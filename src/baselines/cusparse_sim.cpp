#include "baselines/cusparse_sim.hpp"

#include <algorithm>

namespace featgraph::baselines::cusparse {

gpusim::GpuKernelResult spmm(const graph::Csr& adj,
                             const core::SpmmOperands& operands,
                             const gpusim::DeviceSpec& spec) {
  gpusim::GpuKernelResult result;

  core::CpuSpmmSchedule cpu;
  cpu.num_threads = 2;
  result.out = core::spmm(adj, "copy_u", "sum", cpu, operands);

  const std::int64_t n = adj.num_rows;
  const auto nnz = static_cast<double>(adj.nnz());
  const std::int64_t d = result.out.row_size();

  gpusim::KernelStats& s = result.stats;
  s.threads_per_block = 256;
  // Vendor kernels pick grids that saturate the device even on small inputs.
  s.num_blocks = std::max<std::int64_t>(4096, n / 4);
  s.occupancy = 1.0;  // hand-tuned vendor kernel

  s.add_load_bytes(static_cast<double>(n) * 8.0 + nnz * 4.0);
  s.add_load_bytes(nnz * static_cast<double>(d) * 4.0);
  s.add_store_bytes(static_cast<double>(n) * d * 4.0);
  s.flops = nnz * static_cast<double>(d);

  result.cost = gpusim::estimate_time(s, spec);
  return result;
}

}  // namespace featgraph::baselines::cusparse
