// Ligra-style CPU graph processing engine (Shun & Blelloch, PPoPP'13) — the
// paper's CPU graph-system baseline.
//
// Faithful to the original's programming model: frontier-based edgeMap with
// direction switching (push when the frontier is sparse, pull when dense)
// and vertexMap. Crucially faithful to its *limitation* for GNNs (paper
// Sec. II-B): the per-edge update function is a BLACKBOX to the scheduler —
// an indirect call whose interior feature loop the engine can neither tile,
// vectorize with the traversal, nor partition around. The GNN kernels below
// (GCN aggregation, MLP aggregation, dot-product attention) are written the
// way a Ligra user would write them, which is exactly what Table III
// measures FeatGraph against.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::baselines::ligra {

using graph::eid_t;
using graph::vid_t;

/// A set of active vertices, storable sparsely (id list) or densely (flags).
class VertexSubset {
 public:
  static VertexSubset all(vid_t n);
  static VertexSubset of(vid_t n, std::vector<vid_t> ids);
  static VertexSubset none(vid_t n);

  vid_t universe() const { return n_; }
  std::int64_t size() const { return static_cast<std::int64_t>(ids_.size()); }
  bool empty() const { return ids_.empty(); }
  bool contains(vid_t v) const { return flags_[static_cast<std::size_t>(v)] != 0; }
  const std::vector<vid_t>& ids() const { return ids_; }

 private:
  vid_t n_ = 0;
  std::vector<vid_t> ids_;
  std::vector<std::uint8_t> flags_;
};

/// Per-edge update: returns true to add dst to the next frontier. Receives
/// (src, dst, edge id). Blackbox to the engine by design.
using EdgeFn = std::function<bool(vid_t, vid_t, eid_t)>;
/// Edge condition for pull direction: stop visiting dst's in-edges early.
using CondFn = std::function<bool(vid_t)>;

class Engine {
 public:
  explicit Engine(const graph::Graph& g, int num_threads = 1)
      : g_(&g), num_threads_(num_threads) {}

  /// Ligra's edgeMap with automatic push/pull direction selection: pull
  /// when the frontier's out-edge count exceeds |E| / threshold_den.
  VertexSubset edge_map(const VertexSubset& frontier, const EdgeFn& fn,
                        const CondFn& cond, int threshold_den = 20);

  /// Applies fn to every vertex of the subset; keeps vertices where fn
  /// returns true.
  VertexSubset vertex_map(const VertexSubset& subset,
                          const std::function<bool(vid_t)>& fn);

  int num_threads() const { return num_threads_; }
  const graph::Graph& graph() const { return *g_; }

 private:
  VertexSubset edge_map_push(const VertexSubset& frontier, const EdgeFn& fn,
                             const CondFn& cond);
  VertexSubset edge_map_pull(const VertexSubset& frontier, const EdgeFn& fn,
                             const CondFn& cond);

  const graph::Graph* g_;
  int num_threads_;
};

// --- classic graph workloads (engine validation) -------------------------

/// BFS levels from `root` (-1 = unreachable).
std::vector<std::int32_t> bfs(const graph::Graph& g, vid_t root,
                              int num_threads = 1);

/// PageRank with uniform teleport; returns scores after `iters` iterations.
std::vector<double> pagerank(const graph::Graph& g, int iters,
                             double damping = 0.85, int num_threads = 1);

// --- GNN kernels, written the Ligra way (Table III baselines) -------------

/// GCN aggregation: out[v] = sum over in-edges of x[u]. Scalar per-edge
/// blackbox update, no feature tiling or graph partitioning.
tensor::Tensor gcn_aggregate(const graph::Graph& g, const tensor::Tensor& x,
                             int num_threads = 1);

/// MLP aggregation: out[v] = max over in-edges of ReLU((x[u]+x[v]) W).
tensor::Tensor mlp_aggregate(const graph::Graph& g, const tensor::Tensor& x,
                             const tensor::Tensor& w, int num_threads = 1);

/// Dot-product attention: att[e] = <x[u], x[v]>.
tensor::Tensor dot_attention(const graph::Graph& g, const tensor::Tensor& x,
                             int num_threads = 1);

}  // namespace featgraph::baselines::ligra
