#include "baselines/ligra.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace featgraph::baselines::ligra {

VertexSubset VertexSubset::all(vid_t n) {
  VertexSubset s;
  s.n_ = n;
  s.ids_.resize(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) s.ids_[static_cast<std::size_t>(v)] = v;
  s.flags_.assign(static_cast<std::size_t>(n), 1);
  return s;
}

VertexSubset VertexSubset::of(vid_t n, std::vector<vid_t> ids) {
  VertexSubset s;
  s.n_ = n;
  s.flags_.assign(static_cast<std::size_t>(n), 0);
  for (vid_t v : ids) {
    FG_CHECK(v >= 0 && v < n);
    s.flags_[static_cast<std::size_t>(v)] = 1;
  }
  s.ids_ = std::move(ids);
  return s;
}

VertexSubset VertexSubset::none(vid_t n) { return of(n, {}); }

VertexSubset Engine::edge_map(const VertexSubset& frontier, const EdgeFn& fn,
                              const CondFn& cond, int threshold_den) {
  std::int64_t frontier_edges = 0;
  const graph::Csr& out = g_->out_csr();
  for (vid_t v : frontier.ids()) frontier_edges += out.degree(v);
  const bool dense =
      frontier_edges * threshold_den > g_->num_edges();
  return dense ? edge_map_pull(frontier, fn, cond)
               : edge_map_push(frontier, fn, cond);
}

VertexSubset Engine::edge_map_push(const VertexSubset& frontier,
                                   const EdgeFn& fn, const CondFn& cond) {
  const graph::Csr& out = g_->out_csr();
  std::vector<std::uint8_t> next_flags(
      static_cast<std::size_t>(g_->num_vertices()), 0);
  std::mutex m;
  std::vector<vid_t> next_ids;
  parallel::parallel_for_ranges(
      0, frontier.size(), num_threads_,
      [&](std::int64_t i0, std::int64_t i1) {
        std::vector<vid_t> local;
        for (std::int64_t i = i0; i < i1; ++i) {
          const vid_t u = frontier.ids()[static_cast<std::size_t>(i)];
          for (std::int64_t e = out.indptr[u]; e < out.indptr[u + 1]; ++e) {
            const vid_t v = out.indices[static_cast<std::size_t>(e)];
            if (!cond(v)) continue;
            if (fn(u, v, out.edge_ids[static_cast<std::size_t>(e)])) {
              // CAS-free flag set is benign (idempotent), dedupe below.
              auto& flag = next_flags[static_cast<std::size_t>(v)];
              if (!__atomic_test_and_set(&flag, __ATOMIC_RELAXED))
                local.push_back(v);
            }
          }
        }
        std::lock_guard<std::mutex> lock(m);
        next_ids.insert(next_ids.end(), local.begin(), local.end());
      });
  std::sort(next_ids.begin(), next_ids.end());
  return VertexSubset::of(g_->num_vertices(), std::move(next_ids));
}

VertexSubset Engine::edge_map_pull(const VertexSubset& frontier,
                                   const EdgeFn& fn, const CondFn& cond) {
  const graph::Csr& in = g_->in_csr();
  std::vector<std::uint8_t> next_flags(
      static_cast<std::size_t>(g_->num_vertices()), 0);
  parallel::parallel_for_ranges(
      0, g_->num_vertices(), num_threads_,
      [&](std::int64_t v0, std::int64_t v1) {
        for (std::int64_t v = v0; v < v1; ++v) {
          if (!cond(static_cast<vid_t>(v))) continue;
          for (std::int64_t i = in.indptr[v]; i < in.indptr[v + 1]; ++i) {
            const vid_t u = in.indices[static_cast<std::size_t>(i)];
            if (!frontier.contains(u)) continue;
            if (fn(u, static_cast<vid_t>(v),
                   in.edge_ids[static_cast<std::size_t>(i)])) {
              next_flags[static_cast<std::size_t>(v)] = 1;
              break;  // pull direction can stop after first success
            }
          }
        }
      });
  std::vector<vid_t> next_ids;
  for (vid_t v = 0; v < g_->num_vertices(); ++v)
    if (next_flags[static_cast<std::size_t>(v)]) next_ids.push_back(v);
  return VertexSubset::of(g_->num_vertices(), std::move(next_ids));
}

VertexSubset Engine::vertex_map(const VertexSubset& subset,
                                const std::function<bool(vid_t)>& fn) {
  std::vector<vid_t> kept;
  for (vid_t v : subset.ids())
    if (fn(v)) kept.push_back(v);
  return VertexSubset::of(subset.universe(), std::move(kept));
}

std::vector<std::int32_t> bfs(const graph::Graph& g, vid_t root,
                              int num_threads) {
  Engine engine(g, num_threads);
  std::vector<std::int32_t> level(static_cast<std::size_t>(g.num_vertices()),
                                  -1);
  level[static_cast<std::size_t>(root)] = 0;
  VertexSubset frontier = VertexSubset::of(g.num_vertices(), {root});
  std::int32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    frontier = engine.edge_map(
        frontier,
        [&](vid_t, vid_t v, eid_t) {
          // Benign race: all writers store the same depth value.
          if (level[static_cast<std::size_t>(v)] == -1) {
            level[static_cast<std::size_t>(v)] = depth;
            return true;
          }
          return false;
        },
        [&](vid_t v) { return level[static_cast<std::size_t>(v)] == -1; });
  }
  return level;
}

std::vector<double> pagerank(const graph::Graph& g, int iters, double damping,
                             int num_threads) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  const graph::Csr& in = g.in_csr();
  const graph::Csr& out = g.out_csr();
  for (int it = 0; it < iters; ++it) {
    parallel::parallel_for_ranges(
        0, g.num_vertices(), num_threads,
        [&](std::int64_t v0, std::int64_t v1) {
          for (std::int64_t v = v0; v < v1; ++v) {
            double acc = 0.0;
            for (std::int64_t i = in.indptr[v]; i < in.indptr[v + 1]; ++i) {
              const vid_t u = in.indices[static_cast<std::size_t>(i)];
              const auto du = out.degree(u);
              if (du > 0) acc += rank[static_cast<std::size_t>(u)] /
                                 static_cast<double>(du);
            }
            next[static_cast<std::size_t>(v)] =
                (1.0 - damping) / static_cast<double>(n) + damping * acc;
          }
        });
    std::swap(rank, next);
  }
  return rank;
}

// --- GNN kernels ----------------------------------------------------------

tensor::Tensor gcn_aggregate(const graph::Graph& g, const tensor::Tensor& x,
                             int num_threads) {
  const std::int64_t d = x.row_size();
  tensor::Tensor out = tensor::Tensor::zeros({g.num_vertices(), d});
  const graph::Csr& in = g.in_csr();
  // The Ligra idiom: a blackbox per-edge update closure. The std::function
  // indirection per edge and the engine's blindness to the interior feature
  // loop are the baseline's defining costs.
  const std::function<void(vid_t, vid_t)> update = [&](vid_t u, vid_t v) {
    const float* xu = x.row(u);
    float* ov = out.row(v);
    for (std::int64_t j = 0; j < d; ++j) ov[j] += xu[j];
  };
  parallel::parallel_for_ranges(
      0, g.num_vertices(), num_threads,
      [&](std::int64_t v0, std::int64_t v1) {
        for (std::int64_t v = v0; v < v1; ++v)
          for (std::int64_t i = in.indptr[v]; i < in.indptr[v + 1]; ++i)
            update(in.indices[static_cast<std::size_t>(i)],
                   static_cast<vid_t>(v));
      });
  return out;
}

tensor::Tensor mlp_aggregate(const graph::Graph& g, const tensor::Tensor& x,
                             const tensor::Tensor& w, int num_threads) {
  const std::int64_t d1 = x.row_size();
  const std::int64_t d2 = w.shape(1);
  FG_CHECK(w.shape(0) == d1);
  tensor::Tensor out = tensor::Tensor::zeros({g.num_vertices(), d2});
  const graph::Csr& in = g.in_csr();
  parallel::parallel_for_ranges(
      0, g.num_vertices(), num_threads,
      [&](std::int64_t v0, std::int64_t v1) {
        // A Ligra user materializes the per-edge message in a scratch
        // buffer, then folds it — the engine cannot fuse the two.
        std::vector<float> sum_buf(static_cast<std::size_t>(d1));
        std::vector<float> msg(static_cast<std::size_t>(d2));
        const std::function<void(vid_t, vid_t)> update = [&](vid_t u, vid_t v) {
          for (std::int64_t k = 0; k < d1; ++k)
            sum_buf[static_cast<std::size_t>(k)] = x.at(u, k) + x.at(v, k);
          for (std::int64_t j = 0; j < d2; ++j) {
            float acc = 0.0f;
            for (std::int64_t k = 0; k < d1; ++k)
              acc += sum_buf[static_cast<std::size_t>(k)] * w.at(k, j);
            msg[static_cast<std::size_t>(j)] = acc > 0 ? acc : 0;
          }
          float* ov = out.row(v);
          for (std::int64_t j = 0; j < d2; ++j)
            ov[j] = std::max(ov[j], msg[static_cast<std::size_t>(j)]);
        };
        for (std::int64_t v = v0; v < v1; ++v)
          for (std::int64_t i = in.indptr[v]; i < in.indptr[v + 1]; ++i)
            update(in.indices[static_cast<std::size_t>(i)],
                   static_cast<vid_t>(v));
      });
  return out;
}

tensor::Tensor dot_attention(const graph::Graph& g, const tensor::Tensor& x,
                             int num_threads) {
  const std::int64_t d = x.row_size();
  tensor::Tensor out({g.num_edges()});
  const graph::Coo& coo = g.coo();
  parallel::parallel_for_ranges(
      0, g.num_edges(), num_threads, [&](std::int64_t e0, std::int64_t e1) {
        const std::function<float(vid_t, vid_t)> edge_fn = [&](vid_t u,
                                                               vid_t v) {
          float acc = 0.0f;
          for (std::int64_t k = 0; k < d; ++k) acc += x.at(u, k) * x.at(v, k);
          return acc;
        };
        for (std::int64_t e = e0; e < e1; ++e)
          out.at(e) = edge_fn(coo.src[static_cast<std::size_t>(e)],
                              coo.dst[static_cast<std::size_t>(e)]);
      });
  return out;
}

}  // namespace featgraph::baselines::ligra
