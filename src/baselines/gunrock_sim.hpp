// Gunrock-style GPU kernels on the gpusim execution model — the paper's GPU
// graph-system baseline (Table IV, Figs 12).
//
// Gunrock's design center (Sec. II-B): edge-parallel execution with
// sophisticated load balancing, where the computation on an edge is a
// BLACKBOX. For GNN kernels this means
//   * vertex-wise reductions (GCN/MLP aggregation) need one global
//     atomicAdd per output element per edge — "huge overhead of atomic
//     operations" (Sec. V-B);
//   * the feature-dimension parallelism inside an edge is invisible, so a
//     single thread walks the whole feature vector (register pressure kills
//     occupancy at large feature lengths, Fig. 12);
//   * the load-balancing machinery itself costs extra index traffic per
//     edge (binary searches over the frontier's edge offsets).
#pragma once

#include <string_view>

#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "gpusim/spmm_gpu.hpp"

namespace featgraph::baselines::gunrock {

/// Edge-parallel generalized SpMM with per-element atomics.
/// msg ops: "copy_u", "mlp"; reducers: "sum", "max", "min", "mean".
gpusim::GpuKernelResult spmm(const graph::Csr& adj, std::string_view msg_op,
                             std::string_view reduce_op,
                             const core::SpmmOperands& operands,
                             const gpusim::DeviceSpec& spec = {});

/// One-thread-per-edge SDDMM (serial dot per thread).
gpusim::GpuKernelResult sddmm(const graph::Coo& coo, std::string_view edge_op,
                              const core::SddmmOperands& operands,
                              const gpusim::DeviceSpec& spec = {});

}  // namespace featgraph::baselines::gunrock
