// cuSPARSE-like vendor GPU SpMM on the gpusim execution model (Table IV's
// "cuSPARSE" column).
//
// Models csrmm2-style execution: warp-per-row-chunk with the feature axis
// coalesced across lanes — the same access pattern FeatGraph generates —
// running at full hand-tuned occupancy (FeatGraph's generated code pays a
// small overhead; hybrid partitioning is what wins it back on skewed
// graphs). Like the real library, only vanilla SpMM is supported: no MLP
// aggregation, no dot-product attention (Sec. V-B).
#pragma once

#include "core/spmm.hpp"
#include "gpusim/spmm_gpu.hpp"

namespace featgraph::baselines::cusparse {

/// out = A * X (copy_u / sum only, like mkl_sparse / cusparseScsrmm).
gpusim::GpuKernelResult spmm(const graph::Csr& adj,
                             const core::SpmmOperands& operands,
                             const gpusim::DeviceSpec& spec = {});

}  // namespace featgraph::baselines::cusparse
