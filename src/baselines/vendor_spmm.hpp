// MKL-like vendor SpMM baseline (paper Table III's "MKL" column).
//
// What vendor sparse libraries do well: a hand-vectorized row-parallel CSR
// x dense-matrix product (mkl_sparse_s_mm). What they do not do: graph
// partitioning for cache locality, feature-dimension tiling, or any message
// function beyond copy-and-sum — "MKL does not support MLP aggregation and
// dot-product attention" (Sec. V-B). This module implements exactly that
// envelope: a fast vanilla SpMM/SpMV and nothing else.
#pragma once

#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::baselines::vendor {

/// out = A * X for a destination-major CSR: out[v,:] = sum_{u in N_in(v)}
/// x[u,:]. Row-parallel with a full-width vectorizable inner axpy.
tensor::Tensor csr_spmm(const graph::Csr& adj, const tensor::Tensor& x,
                        int num_threads = 1);

/// out = A * x (sparse matrix - dense vector).
std::vector<float> csr_spmv(const graph::Csr& adj,
                            const std::vector<float>& x, int num_threads = 1);

}  // namespace featgraph::baselines::vendor
