#include "baselines/gunrock_sim.hpp"

#include <algorithm>

#include "gpusim/sddmm_gpu.hpp"
#include "support/check.hpp"

namespace featgraph::baselines::gunrock {

namespace {

/// Extra per-edge index traffic of Gunrock's load-balancing machinery:
/// each edge lane binary-searches the frontier's row-offset array
/// (log2(|F|) probes of a sector each) plus reads its (src, dst) pair from
/// the expanded frontier. Calibrated to Table IV(c)'s small-feature gap.
constexpr double kSchedulingBytesPerEdge = 64.0;

/// Atomic replay multiplier: conflicting updates to the same destination row
/// serialize. Grows with average in-degree (more edges race per row) and
/// saturates — calibrated against Table IV's Gunrock/cuSPARSE gap.
double atomic_conflict(const graph::Csr& adj) {
  const double avg_deg =
      adj.num_rows > 0
          ? static_cast<double>(adj.nnz()) / static_cast<double>(adj.num_rows)
          : 0.0;
  return std::clamp(1.0 + avg_deg / 256.0, 1.0, 4.0);
}

}  // namespace

gpusim::GpuKernelResult spmm(const graph::Csr& adj, std::string_view msg_op,
                             std::string_view reduce_op,
                             const core::SpmmOperands& operands,
                             const gpusim::DeviceSpec& spec) {
  FG_CHECK_MSG(msg_op == "copy_u" || msg_op == "mlp",
               "gunrock baseline models copy_u and mlp aggregation");
  gpusim::GpuKernelResult result;

  core::CpuSpmmSchedule cpu;
  cpu.num_threads = 2;
  result.out = core::spmm(adj, msg_op, reduce_op, cpu, operands);

  const auto m = static_cast<double>(adj.nnz());
  const std::int64_t d = result.out.row_size();

  gpusim::KernelStats& s = result.stats;
  // Edge-parallel grid: one thread per edge.
  s.threads_per_block = 256;
  s.num_blocks = std::max<std::int64_t>(
      1, (adj.nnz() + s.threads_per_block - 1) / s.threads_per_block);

  // COO endpoints + load-balancing probes.
  s.add_load_bytes(m * 8.0 + m * kSchedulingBytesPerEdge);
  // Source rows: a thread scans its edge's feature vector serially; the
  // walk is sector-ordered (L1 catches the 8 floats per sector), so traffic
  // matches the coalesced kernels — atomics, not loads, are the bottleneck.
  s.add_load_bytes(m * static_cast<double>(d) * 4.0);

  // One atomicAdd per feature element per edge.
  s.global_atomics = m * static_cast<double>(d);
  s.atomic_conflict_factor = atomic_conflict(adj);

  if (msg_op == "mlp") {
    const std::int64_t d1 = operands.src_feat->row_size();
    s.add_load_bytes(m * static_cast<double>(d1) * 4.0);  // dst rows too
    s.flops = m * static_cast<double>(d1) * d * 2.0;
    // Whole matvec serial in one thread.
    s.occupancy = gpusim::serial_dot_occupancy(d1 * d);
  } else {
    s.flops = m * static_cast<double>(d);
    s.occupancy = gpusim::serial_dot_occupancy(d);
  }

  result.cost = gpusim::estimate_time(s, spec);
  return result;
}

gpusim::GpuKernelResult sddmm(const graph::Coo& coo, std::string_view edge_op,
                              const core::SddmmOperands& operands,
                              const gpusim::DeviceSpec& spec) {
  gpusim::GpuKernelResult result;

  core::CpuSddmmSchedule cpu;
  cpu.num_threads = 2;
  result.out = core::sddmm(coo, edge_op, cpu, operands);

  const auto m = static_cast<double>(coo.num_edges());
  const std::int64_t d = operands.src_feat->row_size();
  const std::int64_t n_out =
      result.out.numel() / std::max<graph::eid_t>(1, coo.num_edges());

  gpusim::KernelStats& s = result.stats;
  s.threads_per_block = 256;
  s.num_blocks = std::max<std::int64_t>(
      1, (coo.num_edges() + s.threads_per_block - 1) / s.threads_per_block);

  s.add_load_bytes(m * 8.0 + m * kSchedulingBytesPerEdge);
  s.add_load_bytes(m * 2.0 * static_cast<double>(d) * 4.0);
  s.add_store_bytes(m * static_cast<double>(n_out) * 4.0);
  s.flops = m * 2.0 * static_cast<double>(d);
  // Serial dot per thread: register pressure grows with the reduce length
  // ("consuming too many registers per thread", Sec. V-C). Harsher floor
  // than FeatGraph-without-tree-reduction: Gunrock also keeps frontier
  // state per thread.
  s.occupancy = std::clamp(96.0 / std::max<double>(1.0, static_cast<double>(d)),
                           0.3, 1.0);

  result.cost = gpusim::estimate_time(s, spec);
  return result;
}

}  // namespace featgraph::baselines::gunrock
