#include "baselines/vendor_spmm.hpp"

#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace featgraph::baselines::vendor {

tensor::Tensor csr_spmm(const graph::Csr& adj, const tensor::Tensor& x,
                        int num_threads) {
  FG_CHECK(x.rows() == adj.num_cols);
  const std::int64_t d = x.row_size();
  tensor::Tensor out({adj.num_rows, d});
  parallel::parallel_for_ranges(
      0, adj.num_rows, num_threads, [&](std::int64_t v0, std::int64_t v1) {
        for (std::int64_t v = v0; v < v1; ++v) {
          float* ov = out.row(v);
          for (std::int64_t j = 0; j < d; ++j) ov[j] = 0.0f;
          for (std::int64_t i = adj.indptr[v]; i < adj.indptr[v + 1]; ++i) {
            const float* xu = x.row(adj.indices[static_cast<std::size_t>(i)]);
            for (std::int64_t j = 0; j < d; ++j) ov[j] += xu[j];
          }
        }
      });
  return out;
}

std::vector<float> csr_spmv(const graph::Csr& adj, const std::vector<float>& x,
                            int num_threads) {
  FG_CHECK(static_cast<graph::vid_t>(x.size()) == adj.num_cols);
  std::vector<float> out(static_cast<std::size_t>(adj.num_rows), 0.0f);
  parallel::parallel_for_ranges(
      0, adj.num_rows, num_threads, [&](std::int64_t v0, std::int64_t v1) {
        for (std::int64_t v = v0; v < v1; ++v) {
          float acc = 0.0f;
          for (std::int64_t i = adj.indptr[v]; i < adj.indptr[v + 1]; ++i)
            acc += x[static_cast<std::size_t>(
                adj.indices[static_cast<std::size_t>(i)])];
          out[static_cast<std::size_t>(v)] = acc;
        }
      });
  return out;
}

}  // namespace featgraph::baselines::vendor
