// Environment-variable driven configuration used by the benchmark harness
// (FEATGRAPH_SCALE, FEATGRAPH_BENCH_REPS, ...) and the runtime
// (FEATGRAPH_WORKERS: worker count of parallel::ThreadPool::global();
// 0/unset = hardware_concurrency. CI's multi-worker leg sets it > 1 so
// 1-core hosts still exercise real cross-thread scheduling.
// FEATGRAPH_TRACE=<path>: enable scoped-span tracing for the whole process
// and write a Chrome trace-event JSON to <path> at exit — see obs/trace.hpp.
// FEATGRAPH_TRACE_BUFFER: per-thread span-buffer capacity, default 65536).
#pragma once

#include <string>

namespace featgraph::support {

/// Returns the value of environment variable `name`, or `fallback` when the
/// variable is unset or unparsable.
double env_double(const char* name, double fallback);
long env_long(const char* name, long fallback);
std::string env_string(const char* name, const std::string& fallback);

/// Global benchmark scale factor (FEATGRAPH_SCALE, default 0.05). Dataset
/// constructors multiply vertex counts by this factor so the full harness
/// runs quickly by default while preserving the paper's graph shapes.
double bench_scale();

/// Number of timed repetitions per measurement (FEATGRAPH_BENCH_REPS,
/// default 2; the paper uses 10 after one warm-up run).
int bench_reps();

}  // namespace featgraph::support
