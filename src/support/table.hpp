// ASCII table printer used by every benchmark binary to emit the paper's
// tables/figure series in a uniform, diffable format.
#pragma once

#include <string>
#include <vector>

namespace featgraph::support {

/// Collects rows of string cells and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the row must have as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to a string.
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

  /// Formats a double with `digits` decimal places.
  static std::string num(double v, int digits = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace featgraph::support
