// Cache-line aligned storage for feature tensors and CSR arrays.
//
// 64-byte alignment keeps vectorized feature loops on aligned lanes and
// avoids false sharing between per-thread output rows (Core Guidelines
// Per.16/Per.19: compact structures, predictable access).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>

namespace featgraph::support {

inline constexpr std::size_t kCacheLine = 64;

template <class T, std::size_t Alignment = kCacheLine>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    std::size_t bytes = n * sizeof(T);
    // aligned_alloc requires the size to be a multiple of the alignment.
    bytes = (bytes + Alignment - 1) / Alignment * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

}  // namespace featgraph::support
