#include "support/env.hpp"

#include <cstdlib>

namespace featgraph::support {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return (end == v) ? fallback : parsed;
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  return (end == v) ? fallback : parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

double bench_scale() { return env_double("FEATGRAPH_SCALE", 0.05); }

int bench_reps() {
  return static_cast<int>(env_long("FEATGRAPH_BENCH_REPS", 2));
}

}  // namespace featgraph::support
