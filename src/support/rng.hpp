// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component in the repository (graph generators, feature
// initialization, dataset labels) draws from this generator with an explicit
// seed so all experiments are exactly reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace featgraph::support {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix. Exposed so stream-id
/// derivation (e.g. the neighbor sampler's per-(batch, hop, vertex) streams)
/// uses the same mixing the seeding path does.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    seed_state(seed);
  }

  /// Splittable stream constructor: a deterministic function of
  /// (seed, stream) whose streams are statistically independent. The stream
  /// id is folded through two full SplitMix64 avalanches before perturbing
  /// the seed, so (seed, stream) pairs never collapse to a shifted copy of
  /// another seed's sequence the way `seed + stream * gamma` would. Used for
  /// per-batch / per-vertex sampler streams that must be reproducible
  /// regardless of how many threads (or in what order) consume them.
  Rng(std::uint64_t seed, std::uint64_t stream) {
    seed_state(seed ^ splitmix64(splitmix64(stream) + 0x6a09e667f3bcc909ULL));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t uniform(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform real in [0, 1).
  double uniform_real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller (one value per call; simple and exact).
  double normal() {
    double u1 = uniform_real();
    double u2 = uniform_real();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Lognormal with the given log-space mean and standard deviation.
  double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

 private:
  void seed_state(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      word = splitmix64(x);
      x += 0x9e3779b97f4a7c15ULL;
    }
  }

  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace featgraph::support
