#include "support/table.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace featgraph::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  FG_CHECK_MSG(cells.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return out + "\n";
  };

  std::string sep = "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    sep += std::string(width[c] + 2, '-') + "|";
  sep += "\n";

  std::string out = render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace featgraph::support
