// Lightweight precondition / invariant checking (GSL Expects/Ensures style).
//
// FG_CHECK is always on: it guards API misuse that would otherwise corrupt
// memory (bad shapes, out-of-range vertex ids). FG_DCHECK compiles out in
// release builds and is used inside hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace featgraph::support {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "FG_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace featgraph::support

#define FG_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond))                                                           \
      ::featgraph::support::check_failed(#cond, __FILE__, __LINE__, "");   \
  } while (0)

#define FG_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond))                                                           \
      ::featgraph::support::check_failed(#cond, __FILE__, __LINE__, msg);  \
  } while (0)

#ifdef NDEBUG
#define FG_DCHECK(cond) ((void)0)
#else
#define FG_DCHECK(cond) FG_CHECK(cond)
#endif
