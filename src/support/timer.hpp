// Wall-clock timing helpers — the ONE steady-clock stopwatch the whole
// repo shares. The serving phase timers (serve/server.cpp), the pipeline's
// lane timers (sample/pipeline.cpp), the bench harness, and the obs layer's
// phase accounting all use this class; nanosecond phase accumulation goes
// through elapsed_ns() so it can feed atomic std::int64_t counters without
// a float round-trip.
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>

namespace featgraph::support {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

  /// Elapsed integer nanoseconds — the form phase accumulators store in
  /// atomic counters (obs/metrics.hpp) so concurrent readers never tear.
  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` once as warm-up, then `reps` timed repetitions, and returns the
/// mean wall-clock seconds per repetition. This mirrors the paper's
/// measurement protocol (Sec. V-A: one warm-up run, average of N runs).
template <class Fn>
double time_mean_seconds(Fn&& fn, int reps) {
  fn();  // warm-up
  Timer t;
  for (int i = 0; i < reps; ++i) fn();
  return t.seconds() / reps;
}

}  // namespace featgraph::support
