// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <utility>

namespace featgraph::support {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` once as warm-up, then `reps` timed repetitions, and returns the
/// mean wall-clock seconds per repetition. This mirrors the paper's
/// measurement protocol (Sec. V-A: one warm-up run, average of N runs).
template <class Fn>
double time_mean_seconds(Fn&& fn, int reps) {
  fn();  // warm-up
  Timer t;
  for (int i = 0; i < reps; ++i) fn();
  return t.seconds() / reps;
}

}  // namespace featgraph::support
