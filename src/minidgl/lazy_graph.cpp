#include "minidgl/lazy_graph.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "core/attention.hpp"
#include "core/schedule_ir.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "core/tuner.hpp"
#include "gpusim/attention_gpu.hpp"
#include "gpusim/sddmm_gpu.hpp"
#include "gpusim/spmm_gpu.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "sample/block.hpp"
#include "sample/pipeline.hpp"
#include "support/check.hpp"
#include "tensor/ops.hpp"

namespace featgraph::minidgl {

namespace {

using graph::eid_t;
using graph::vid_t;
using tensor::Tensor;

void charge_dense(ExecContext& ctx, double flops, double bytes) {
  if (ctx.device == Device::kGpuSim)
    ctx.sim_seconds += gpusim::dense_op_seconds(flops, bytes, ctx.gpu);
}

/// Fused generalized SpMM: native on CPU, functional + simulated cost on
/// gpusim. `adj` may be the in-CSR (forward) or out-CSR (gradients). The
/// optional epilogue runs inside the kernel's row-finalize sweep (CPU fused
/// path only — the fusion gate never enables it on gpusim); its signature is
/// folded into the schedule-cache key so fused and unfused launches of one
/// shape class never alias a compiled schedule.
Tensor run_spmm(ExecContext& ctx, const graph::Csr& adj,
                std::string_view msg_op, std::string_view reduce_op,
                const core::SpmmOperands& operands, std::int64_t d_out,
                const core::EpilogueOps* epilogue = nullptr) {
  if (ctx.device == Device::kGpuSim) {
    FG_CHECK(epilogue == nullptr);
    core::GpuSpmmSchedule sched;
    sched.num_blocks = std::max<std::int64_t>(1024, adj.num_rows / 4);
    // 256 threads regardless of feature width: narrow features pack
    // multiple rows per block, so the grid always fills the device.
    sched.threads_per_block = 256;
    auto result = gpusim::spmm_gpu(adj, msg_op, reduce_op, sched, operands,
                                   ctx.gpu);
    ctx.sim_seconds += result.cost.total_s;
    return std::move(result.out);
  }
  core::CpuSpmmSchedule sched;
  const std::uint64_t epilogue_sig =
      (epilogue != nullptr && !epilogue->empty()) ? epilogue->signature() : 0;
  if (ctx.schedule_cache != nullptr) {
    // Shape-class memo (the minibatch pipeline): the tuner/heuristic runs
    // once per (log2 rows, log2 nnz, width, threads, program) class, then
    // the stream of same-shaped blocks reuses the winner. The context's
    // Schedule-IR program (or the empty default) and the fused-epilogue
    // signature hash into the key so two programs over one geometry get
    // distinct entries. num_partitions is pinned to 1 (see
    // ExecContext::schedule_cache) — also what keeps full-fanout block
    // inference bit-identical to the unpartitioned full-graph path.
    core::CpuSpmmSchedule probe;
    probe.ir = ctx.block_schedule_ir;
    sched = ctx.schedule_cache->schedule_for(
        adj.num_rows, adj.nnz(), d_out, ctx.num_threads,
        core::schedule_program_hash(probe, epilogue_sig), [&] {
          if (ctx.tune_block_schedules) {
            return core::tune_spmm(adj, msg_op, reduce_op, operands,
                                   core::default_spmm_candidates(
                                       d_out, ctx.num_threads))
                .best;
          }
          return core::heuristic_spmm_schedule(adj, d_out, ctx.num_threads);
        });
    sched.num_partitions = 1;
  } else {
    sched = core::heuristic_spmm_schedule(adj, d_out, ctx.num_threads);
  }
  // The context's IR program, when present, overrides the flat knobs above
  // (lowering treats an attached program as authoritative).
  if (ctx.block_schedule_ir != nullptr) sched.ir = ctx.block_schedule_ir;
  return core::spmm(adj, msg_op, reduce_op, sched, operands, epilogue);
}

Tensor run_sddmm_dot(ExecContext& ctx, const graph::Coo& coo, const Tensor& a,
                     const Tensor& b) {
  core::SddmmOperands ops{&a, &b};
  if (ctx.device == Device::kGpuSim) {
    core::GpuSddmmSchedule sched;  // tree reduction on by default
    auto result = gpusim::sddmm_gpu(coo, "dot", sched, ops, ctx.gpu);
    ctx.sim_seconds += result.cost.total_s;
    return std::move(result.out);
  }
  core::CpuSddmmSchedule sched;
  sched.num_threads = ctx.num_threads;
  return core::sddmm(coo, "dot", sched, ops);
}

// --- materialize-backend primitives (the DGL-without-FeatGraph path) -------

/// M[e, :] = x[idx[e], :]. Books the materialized tensor and its traffic.
Tensor gather_rows(ExecContext& ctx, const Tensor& x,
                   const std::vector<vid_t>& idx) {
  const std::int64_t d = x.row_size();
  const auto m = static_cast<std::int64_t>(idx.size());
  Tensor out({m, d});
  parallel::parallel_for_ranges(
      0, m, ctx.num_threads, [&](std::int64_t e0, std::int64_t e1) {
        for (std::int64_t e = e0; e < e1; ++e) {
          const float* src = x.row(idx[static_cast<std::size_t>(e)]);
          float* dst = out.row(e);
          for (std::int64_t j = 0; j < d; ++j) dst[j] = src[j];
        }
      });
  const double bytes = static_cast<double>(m) * d * 4.0;
  ctx.materialized_bytes += bytes;
  charge_dense(ctx, 0.0, 2.0 * bytes + m * 4.0);
  return out;
}

/// out[v, :] = reduce over in-edges e of M[edge_id(e), :]. For max, records
/// the winning edge id per output element in `arg_eid` when non-null.
Tensor segment_reduce(ExecContext& ctx, const graph::Csr& in_csr,
                      const Tensor& msgs, const std::string& reduce,
                      std::vector<eid_t>* arg_eid) {
  const std::int64_t d = msgs.row_size();
  const std::int64_t n = in_csr.num_rows;
  Tensor out({n, d});
  if (arg_eid != nullptr) arg_eid->assign(static_cast<std::size_t>(n * d), -1);
  parallel::parallel_for_ranges(
      0, n, ctx.num_threads, [&](std::int64_t v0, std::int64_t v1) {
        for (std::int64_t v = v0; v < v1; ++v) {
          float* ov = out.row(v);
          const std::int64_t lo = in_csr.indptr[v], hi = in_csr.indptr[v + 1];
          if (lo == hi) {
            for (std::int64_t j = 0; j < d; ++j) ov[j] = 0.0f;
            continue;
          }
          const bool is_max = reduce == "max";
          for (std::int64_t j = 0; j < d; ++j)
            ov[j] = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;
          for (std::int64_t i = lo; i < hi; ++i) {
            const eid_t e = in_csr.edge_ids[static_cast<std::size_t>(i)];
            const float* me = msgs.row(e);
            for (std::int64_t j = 0; j < d; ++j) {
              if (is_max) {
                if (me[j] > ov[j]) {
                  ov[j] = me[j];
                  if (arg_eid != nullptr)
                    (*arg_eid)[static_cast<std::size_t>(v * d + j)] = e;
                }
              } else {
                ov[j] += me[j];
              }
            }
          }
          if (reduce == "mean") {
            const float inv = 1.0f / static_cast<float>(hi - lo);
            for (std::int64_t j = 0; j < d; ++j) ov[j] *= inv;
          }
        }
      });
  charge_dense(ctx, static_cast<double>(in_csr.nnz()) * d,
               static_cast<double>(in_csr.nnz()) * d * 4.0 +
                   static_cast<double>(n) * d * 4.0);
  return out;
}

/// dx[u, :] = sum over out-edges e of u of dM[edge_id(e), :] — the backward
/// of gather_rows-by-source, computed race-free over the out-CSR.
Tensor scatter_rows_by_src(ExecContext& ctx, const graph::Csr& out_csr,
                           const Tensor& d_msgs) {
  const std::int64_t d = d_msgs.row_size();
  Tensor out = Tensor::zeros({out_csr.num_rows, d});
  parallel::parallel_for_ranges(
      0, out_csr.num_rows, ctx.num_threads,
      [&](std::int64_t u0, std::int64_t u1) {
        for (std::int64_t u = u0; u < u1; ++u) {
          float* ou = out.row(u);
          for (std::int64_t i = out_csr.indptr[u]; i < out_csr.indptr[u + 1];
               ++i) {
            const float* me =
                d_msgs.row(out_csr.edge_ids[static_cast<std::size_t>(i)]);
            for (std::int64_t j = 0; j < d; ++j) ou[j] += me[j];
          }
        }
      });
  charge_dense(ctx, static_cast<double>(out_csr.nnz()) * d,
               static_cast<double>(out_csr.nnz()) * d * 4.0 +
                   static_cast<double>(out_csr.num_rows) * d * 4.0);
  return out;
}

/// Scales each row v of `t` (n x d) by s[v].
Tensor scale_rows(const Tensor& t, const std::vector<float>& s) {
  Tensor out(t.shape());
  const std::int64_t d = t.row_size();
  for (std::int64_t v = 0; v < t.rows(); ++v) {
    const float* src = t.row(v);
    float* dst = out.row(v);
    for (std::int64_t j = 0; j < d; ++j)
      dst[j] = src[j] * s[static_cast<std::size_t>(v)];
  }
  return out;
}

std::vector<float> inverse_in_degrees(const graph::Csr& in_csr) {
  std::vector<float> inv(static_cast<std::size_t>(in_csr.num_rows), 0.0f);
  for (vid_t v = 0; v < in_csr.num_rows; ++v) {
    const auto deg = in_csr.degree(v);
    if (deg > 0)
      inv[static_cast<std::size_t>(v)] = 1.0f / static_cast<float>(deg);
  }
  return inv;
}

std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) n *= d;
  return n;
}

/// Can this node start an epilogue chain? Matmul and the sum/mean SpMM
/// variants finalize each output row in one sweep the epilogue can join.
/// Max-reduce tracks an argmax per element, so its rows are not finalized by
/// the span engine — it never anchors.
bool is_anchor(const LazyNode& nd) {
  switch (nd.op) {
    case LazyOp::kMatmul:
    case LazyOp::kSpmmUMulE:
      return true;
    case LazyOp::kSpmmCopyU:
    case LazyOp::kBlockSpmmCopyU:
      return nd.reduce != "max";
    default:
      return false;
  }
}

/// Elementwise ops that may run inside their primary input's buffer when the
/// input dies at this step. The in-place loops below replicate tensor/ops.cpp
/// formula-for-formula, so the rewrite is bitwise invisible.
bool in_place_eligible(LazyOp op) {
  switch (op) {
    case LazyOp::kRelu:
    case LazyOp::kLeakyRelu:
    case LazyOp::kScale:
    case LazyOp::kAddBias:
    case LazyOp::kAdd:
      return true;
    default:
      return false;
  }
}

/// Applies a compiled epilogue to every row of a dense (matmul) anchor
/// output — one hot pass right after the GEMM instead of the eager chain's
/// separate |rows| x d sweeps. Same span primitives, same per-row order as
/// the sparse anchors' in-kernel application.
void apply_epilogue_rows(ExecContext& ctx, Tensor& t,
                         const core::EpilogueOps& ep) {
  const std::int64_t d = t.row_size();
  const simd::SpanOps& ops = simd::span_ops_for_width(d);
  parallel::parallel_for_ranges(
      0, t.rows(), ctx.num_threads, [&](std::int64_t v0, std::int64_t v1) {
        for (std::int64_t v = v0; v < v1; ++v) ep.apply(ops, v, t.row(v), d);
      });
}

/// Everything the derived backward pass needs, captured once per run() into
/// the single autograd node. Replaces the per-op tape closures.
struct SideData {
  std::shared_ptr<std::vector<vid_t>> arg_src;  ///< fused max argmax
  std::shared_ptr<std::vector<eid_t>> arg_eid;  ///< materialize max argmax
  std::shared_ptr<Tensor> alpha;                ///< gat attention weights
};

struct BackwardState {
  std::vector<LazyNode> nodes;
  LazyPlan plan;
  std::vector<Tensor> kept;     ///< per keep-slot value (plan.keep)
  std::vector<SideData> side;   ///< per-node kernel side outputs
  ExecContext* ctx = nullptr;
  NodeId root = kNoNode;
};

/// The backward derivation pass at work: walk the recorded DAG in reverse and
/// apply the per-op vjp. Gradients accumulate per NODE (fused nodes
/// included — their chain-rule terms are ordinary elementwise vjps reading
/// only kept slots), then flush into the leaf Vars.
void run_lazy_backward(BackwardState& st, Node& node) {
  const auto& nodes = st.nodes;
  const LazyPlan& plan = st.plan;
  ExecContext& ctx = *st.ctx;
  const auto n = static_cast<NodeId>(nodes.size());

  std::vector<Tensor> grads(static_cast<std::size_t>(n));
  grads[static_cast<std::size_t>(st.root)] = node.grad();  // read-only share

  // Clone-on-first internal accumulation, mirroring Node::accumulate_grad.
  // `owned` marks freshly computed tensors safe to take without copying.
  auto acc = [&](NodeId j, Tensor g, bool owned) {
    if (!nodes[static_cast<std::size_t>(j)].needs_grad) return;
    Tensor& dst = grads[static_cast<std::size_t>(j)];
    if (!dst.defined()) {
      dst = owned ? std::move(g) : g.clone();
      return;
    }
    FG_CHECK(dst.numel() == g.numel());
    float* d = dst.data();
    const float* s = g.data();
    for (std::int64_t i = 0; i < dst.numel(); ++i) d[i] += s[i];
  };

  // The value a vjp reads: leaves from their Var, everything else from the
  // kept slot its alias resolves to.
  auto val_of = [&](NodeId j) -> const Tensor& {
    const LazyNode& nd = nodes[static_cast<std::size_t>(j)];
    if (nd.op == LazyOp::kLeaf) return nd.leaf->value();
    const NodeId r = plan.alias[static_cast<std::size_t>(j)];
    FG_CHECK(r != kNoNode);
    const Tensor& t = st.kept[static_cast<std::size_t>(r)];
    FG_CHECK(t.defined());
    return t;
  };

  for (NodeId i = n - 1; i >= 0; --i) {
    const Tensor& g = grads[static_cast<std::size_t>(i)];
    if (!g.defined()) continue;
    const LazyNode& nd = nodes[static_cast<std::size_t>(i)];
    const auto in = [&](int idx) { return nd.inputs[static_cast<std::size_t>(idx)]; };
    const auto in_needs = [&](int idx) {
      return nodes[static_cast<std::size_t>(in(idx))].needs_grad;
    };
    switch (nd.op) {
      case LazyOp::kLeaf:
        break;
      case LazyOp::kMatmul: {
        const auto& sa = nodes[static_cast<std::size_t>(in(0))].shape;
        const auto& sb = nodes[static_cast<std::size_t>(in(1))].shape;
        const std::int64_t m = sa[0], k = sa[1], nn = sb[1];
        if (in_needs(0)) {
          acc(in(0),
              tensor::matmul_transposed(g, val_of(in(1)), ctx.num_threads),
              true);
          charge_dense(ctx, 2.0 * m * k * nn, 0.0);
        }
        if (in_needs(1)) {
          Tensor at = tensor::transpose(val_of(in(0)));
          acc(in(1), tensor::matmul(at, g, ctx.num_threads), true);
          charge_dense(ctx, 2.0 * m * k * nn, 0.0);
        }
        break;
      }
      case LazyOp::kAddBias: {
        acc(in(0), g, false);
        if (in_needs(1)) {
          const std::int64_t c = g.shape(1);
          Tensor db = Tensor::zeros({c});
          for (std::int64_t r = 0; r < g.shape(0); ++r) {
            const float* gr = g.row(r);
            for (std::int64_t j = 0; j < c; ++j) db.at(j) += gr[j];
          }
          acc(in(1), std::move(db), true);
        }
        break;
      }
      case LazyOp::kRelu:
        // y > 0 ⟺ x > 0: the output-derived mask selects bit-identically to
        // the input-derived one, and the output survives fusion (kept slot)
        // where the pre-activation input need not exist at all.
        acc(in(0), tensor::relu_backward(g, val_of(i)), true);
        break;
      case LazyOp::kLeakyRelu:
        // Same output-mask equivalence; recording FG_CHECKs slope >= 0.
        acc(in(0), tensor::leaky_relu_backward(g, val_of(i), nd.scalar), true);
        break;
      case LazyOp::kAdd:
        acc(in(0), g, false);
        acc(in(1), g, false);
        break;
      case LazyOp::kScale:
        acc(in(0), tensor::scale(g, nd.scalar), true);
        break;
      case LazyOp::kLogSoftmax: {
        // dx = dY - softmax(x) * rowsum(dY), from the kept log-probs.
        const Tensor& ls = val_of(i);
        const std::int64_t rows = ls.shape(0), c = ls.shape(1);
        Tensor dx({rows, c});
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* gr = g.row(r);
          const float* l = ls.row(r);
          float gsum = 0.0f;
          for (std::int64_t j = 0; j < c; ++j) gsum += gr[j];
          float* d = dx.row(r);
          for (std::int64_t j = 0; j < c; ++j)
            d[j] = gr[j] - std::exp(l[j]) * gsum;
        }
        acc(in(0), std::move(dx), true);
        break;
      }
      case LazyOp::kNllLoss: {
        const float seed = g.at(0);
        Tensor d =
            Tensor::zeros(nodes[static_cast<std::size_t>(in(0))].shape);
        const float inv = seed / static_cast<float>(nd.rows->size());
        for (std::int64_t r : *nd.rows)
          d.at(r, (*nd.labels)[static_cast<std::size_t>(r)]) -= inv;
        acc(in(0), std::move(d), true);
        break;
      }
      case LazyOp::kSliceRows: {
        const std::int64_t begin = (*nd.rows)[0], count = (*nd.rows)[1];
        const std::int64_t d =
            nodes[static_cast<std::size_t>(in(0))].shape[1];
        Tensor dx =
            Tensor::zeros(nodes[static_cast<std::size_t>(in(0))].shape);
        std::memcpy(dx.data() + begin * d, g.data(),
                    static_cast<std::size_t>(count * d) * sizeof(float));
        acc(in(0), std::move(dx), true);
        break;
      }
      case LazyOp::kSpmmCopyU:
      case LazyOp::kBlockSpmmCopyU: {
        const bool is_block = nd.op == LazyOp::kBlockSpmmCopyU;
        const std::int64_t d =
            nodes[static_cast<std::size_t>(in(0))].shape[1];
        if (nd.reduce == "max") {
          const SideData& sd = st.side[static_cast<std::size_t>(i)];
          if (sd.arg_src != nullptr) {
            // Fused max: scatter through the winning-source argmax.
            Tensor dx = Tensor::zeros(
                nodes[static_cast<std::size_t>(in(0))].shape);
            const std::int64_t rows = g.rows();
            for (std::int64_t v = 0; v < rows; ++v) {
              const float* gv = g.row(v);
              for (std::int64_t j = 0; j < d; ++j) {
                const vid_t u =
                    (*sd.arg_src)[static_cast<std::size_t>(v * d + j)];
                if (u >= 0) dx.at(u, j) += gv[j];
              }
            }
            charge_dense(ctx, 0.0, g.numel() * 12.0);
            acc(in(0), std::move(dx), true);
          } else {
            // Materialize max (full graph only): scatter through the
            // winning-edge argmax, then sum edges back onto sources.
            FG_CHECK(sd.arg_eid != nullptr && nd.g != nullptr);
            const auto m = nd.g->num_edges();
            Tensor d_msgs = Tensor::zeros({m, d});
            ctx.materialized_bytes += static_cast<double>(m) * d * 4.0;
            const std::int64_t rows = g.rows();
            for (std::int64_t v = 0; v < rows; ++v) {
              const float* gv = g.row(v);
              for (std::int64_t j = 0; j < d; ++j) {
                const eid_t e =
                    (*sd.arg_eid)[static_cast<std::size_t>(v * d + j)];
                if (e >= 0) d_msgs.at(e * d + j) += gv[j];
              }
            }
            acc(in(0), scatter_rows_by_src(ctx, nd.g->out_csr(), d_msgs),
                true);
          }
          break;
        }
        // sum / mean: d(loss)/dx[u] = sum over out-edges (u->v) of dout[v]
        // (scaled by 1/in-deg(v) for mean) — an SpMM over the reversed
        // adjacency. Blocks use the rev/inv-deg derived at record time.
        const bool is_mean = nd.reduce == "mean";
        Tensor dout = g;
        if (is_mean) {
          if (is_block) {
            FG_CHECK(nd.block_inv_deg != nullptr);
            dout = scale_rows(g, *nd.block_inv_deg);
          } else {
            dout = scale_rows(g, inverse_in_degrees(nd.g->in_csr()));
          }
        }
        if (is_block) {
          FG_CHECK(nd.block_rev != nullptr);
          acc(in(0),
              run_spmm(ctx, *nd.block_rev, "copy_u", "sum",
                       {&dout, nullptr, nullptr}, d),
              true);
        } else if (ctx.backend == SparseBackend::kFused) {
          acc(in(0),
              run_spmm(ctx, nd.g->out_csr(), "copy_u", "sum",
                       {&dout, nullptr, nullptr}, d),
              true);
        } else {
          Tensor d_msgs = gather_rows(ctx, dout, nd.g->coo().dst);
          acc(in(0), scatter_rows_by_src(ctx, nd.g->out_csr(), d_msgs), true);
        }
        break;
      }
      case LazyOp::kSpmmUMulE: {
        const std::int64_t d =
            nodes[static_cast<std::size_t>(in(0))].shape[1];
        const graph::Graph& gr = *nd.g;
        if (in_needs(0)) {
          // dx[u] = sum over out-edges of w_e * dout[v]: u_mul_e SpMM on the
          // reversed graph (edge ids are shared between orientations).
          if (ctx.backend == SparseBackend::kFused) {
            acc(in(0),
                run_spmm(ctx, gr.out_csr(), "u_mul_e", "sum",
                         {&g, &val_of(in(1)), nullptr}, d),
                true);
          } else {
            Tensor d_msgs = gather_rows(ctx, g, gr.coo().dst);
            const Tensor& w = val_of(in(1));
            for (eid_t e = 0; e < gr.num_edges(); ++e) {
              float* me = d_msgs.row(e);
              const float we = w.at(e);
              for (std::int64_t j = 0; j < d; ++j) me[j] *= we;
            }
            acc(in(0), scatter_rows_by_src(ctx, gr.out_csr(), d_msgs), true);
          }
        }
        if (in_needs(1)) {
          // dw_e = <x[u], dout[v]>: the SDDMM pattern (Sec. II-A).
          if (ctx.backend == SparseBackend::kFused) {
            acc(in(1), run_sddmm_dot(ctx, gr.coo(), val_of(in(0)), g), true);
          } else {
            Tensor xu = gather_rows(ctx, val_of(in(0)), gr.coo().src);
            Tensor gv = gather_rows(ctx, g, gr.coo().dst);
            Tensor dw({gr.num_edges()});
            for (eid_t e = 0; e < gr.num_edges(); ++e) {
              const float* a = xu.row(e);
              const float* b = gv.row(e);
              float s = 0.0f;
              for (std::int64_t j = 0; j < d; ++j) s += a[j] * b[j];
              dw.at(e) = s;
            }
            charge_dense(ctx, static_cast<double>(gr.num_edges()) * d * 2.0,
                         static_cast<double>(gr.num_edges()) * d * 8.0);
            acc(in(1), std::move(dw), true);
          }
        }
        break;
      }
      case LazyOp::kSddmmDot: {
        const std::int64_t d =
            nodes[static_cast<std::size_t>(in(0))].shape[1];
        const graph::Graph& gr = *nd.g;
        const Tensor& x = val_of(in(0));
        // d x[u] += g_e x[v] over out-edges; d x[v] += g_e x[u] over
        // in-edges: two u_mul_e SpMMs (the SpMM pattern, Sec. II-A).
        if (ctx.backend == SparseBackend::kFused) {
          acc(in(0),
              run_spmm(ctx, gr.out_csr(), "u_mul_e", "sum",
                       {&x, &g, nullptr}, d),
              true);
          acc(in(0),
              run_spmm(ctx, gr.in_csr(), "u_mul_e", "sum", {&x, &g, nullptr},
                       d),
              true);
        } else {
          Tensor xv = gather_rows(ctx, x, gr.coo().dst);
          Tensor xu = gather_rows(ctx, x, gr.coo().src);
          for (eid_t e = 0; e < gr.num_edges(); ++e) {
            const float ge = g.at(e);
            float* pv = xv.row(e);
            float* pu = xu.row(e);
            for (std::int64_t j = 0; j < d; ++j) {
              pv[j] *= ge;
              pu[j] *= ge;
            }
          }
          // xv rows scatter to sources, xu rows scatter to destinations.
          acc(in(0), scatter_rows_by_src(ctx, gr.out_csr(), xv), true);
          acc(in(0), scatter_rows_by_src(ctx, gr.in_csr(), xu), true);
        }
        break;
      }
      case LazyOp::kEdgeSoftmax: {
        // dlogit_e = alpha_e * (dalpha_e - sum_{e' in segment} alpha_e'
        // dalpha_e'), per destination segment — the fused softmax backward.
        const Tensor& alpha = val_of(i);
        Tensor d = core::edge_softmax_backward(nd.g->in_csr(), alpha, g,
                                               ctx.num_threads);
        charge_dense(ctx, 3.0 * static_cast<double>(nd.g->num_edges()),
                     6.0 * static_cast<double>(nd.g->num_edges()) * 4.0);
        acc(in(0), std::move(d), true);
        break;
      }
      case LazyOp::kGatAttention: {
        if (!in_needs(0)) break;
        const std::int64_t d =
            nodes[static_cast<std::size_t>(in(0))].shape[1];
        const graph::Graph& gr = *nd.g;
        const SideData& sd = st.side[static_cast<std::size_t>(i)];
        FG_CHECK(sd.alpha != nullptr);
        const Tensor& z = val_of(in(0));
        // Chain rule over the fused pipeline, every term a fused sparse
        // kernel (Sec. II-A duality; nothing |E| x d is materialized):
        //   dz[u] += sum_out-edges alpha_e * dOut[v]       (u_mul_e SpMM)
        acc(in(0),
            run_spmm(ctx, gr.out_csr(), "u_mul_e", "sum",
                     {&g, sd.alpha.get(), nullptr}, d),
            true);
        //   dalpha_e = <z_u, dOut_v>                       (SDDMM dot)
        Tensor dalpha = run_sddmm_dot(ctx, gr.coo(), z, g);
        //   dlogit = softmax backward, then the logit scale
        Tensor dlogit = core::edge_softmax_backward(gr.in_csr(), *sd.alpha,
                                                    dalpha, ctx.num_threads);
        charge_dense(ctx, 3.0 * static_cast<double>(gr.num_edges()),
                     6.0 * static_cast<double>(gr.num_edges()) * 4.0);
        if (nd.scalar != 1.0f) {
          for (std::int64_t e = 0; e < dlogit.numel(); ++e)
            dlogit.at(e) *= nd.scalar;
        }
        //   logits = scale * <z_u, z_v>: dz[u] += dl_e z_v over out-edges,
        //   dz[v] += dl_e z_u over in-edges (two u_mul_e SpMMs).
        acc(in(0),
            run_spmm(ctx, gr.out_csr(), "u_mul_e", "sum",
                     {&z, &dlogit, nullptr}, d),
            true);
        acc(in(0),
            run_spmm(ctx, gr.in_csr(), "u_mul_e", "sum", {&z, &dlogit, nullptr},
                     d),
            true);
        break;
      }
    }
  }

  // Flush leaf gradients (ascending id order, one accumulation per leaf).
  // Moved, not copied: every internal accumulation is owned by `grads` (acc
  // clones unowned passthroughs on first touch), so adoption is safe.
  for (NodeId i = 0; i < n; ++i) {
    const LazyNode& nd = nodes[static_cast<std::size_t>(i)];
    if (nd.op == LazyOp::kLeaf && grads[static_cast<std::size_t>(i)].defined())
      nd.leaf->accumulate_grad(std::move(grads[static_cast<std::size_t>(i)]));
  }
}

}  // namespace

// --- recording --------------------------------------------------------------

NodeId LazyGraph::push(LazyNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId LazyGraph::leaf(const Var& v) {
  FG_CHECK(v != nullptr && v->value().defined());
  for (NodeId i = 0; i < static_cast<NodeId>(nodes_.size()); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].op == LazyOp::kLeaf &&
        nodes_[static_cast<std::size_t>(i)].leaf == v)
      return i;
  }
  LazyNode nd;
  nd.op = LazyOp::kLeaf;
  nd.shape = v->value().shape();
  nd.needs_grad = v->requires_grad();
  nd.leaf = v;
  return push(std::move(nd));
}

namespace {
bool any_needs(const std::vector<LazyNode>& nodes,
               std::initializer_list<NodeId> ids) {
  for (NodeId i : ids)
    if (nodes[static_cast<std::size_t>(i)].needs_grad) return true;
  return false;
}
}  // namespace

NodeId LazyGraph::matmul(NodeId a, NodeId b) {
  const auto& sa = nodes_[static_cast<std::size_t>(a)].shape;
  const auto& sb = nodes_[static_cast<std::size_t>(b)].shape;
  FG_CHECK(sa.size() == 2 && sb.size() == 2 && sa[1] == sb[0]);
  LazyNode nd;
  nd.op = LazyOp::kMatmul;
  nd.inputs = {a, b};
  nd.shape = {sa[0], sb[1]};
  nd.needs_grad = any_needs(nodes_, {a, b});
  return push(std::move(nd));
}

NodeId LazyGraph::add_bias(NodeId a, NodeId bias) {
  const auto& sa = nodes_[static_cast<std::size_t>(a)].shape;
  const auto& sb = nodes_[static_cast<std::size_t>(bias)].shape;
  FG_CHECK(sa.size() == 2 && shape_numel(sb) == sa[1]);
  LazyNode nd;
  nd.op = LazyOp::kAddBias;
  nd.inputs = {a, bias};
  nd.shape = sa;
  nd.needs_grad = any_needs(nodes_, {a, bias});
  return push(std::move(nd));
}

NodeId LazyGraph::relu(NodeId x) {
  LazyNode nd;
  nd.op = LazyOp::kRelu;
  nd.inputs = {x};
  nd.shape = nodes_[static_cast<std::size_t>(x)].shape;
  nd.needs_grad = any_needs(nodes_, {x});
  return push(std::move(nd));
}

NodeId LazyGraph::leaky_relu(NodeId x, float slope) {
  FG_CHECK_MSG(slope >= 0.0f,
               "lazy leaky_relu requires a non-negative slope: the derived "
               "backward reads the activation mask off the OUTPUT (y > 0 iff "
               "x > 0), which fusion may be the only thing that materialized");
  LazyNode nd;
  nd.op = LazyOp::kLeakyRelu;
  nd.inputs = {x};
  nd.shape = nodes_[static_cast<std::size_t>(x)].shape;
  nd.needs_grad = any_needs(nodes_, {x});
  nd.scalar = slope;
  return push(std::move(nd));
}

NodeId LazyGraph::add(NodeId a, NodeId b) {
  const auto& sa = nodes_[static_cast<std::size_t>(a)].shape;
  const auto& sb = nodes_[static_cast<std::size_t>(b)].shape;
  FG_CHECK(shape_numel(sa) == shape_numel(sb));
  LazyNode nd;
  nd.op = LazyOp::kAdd;
  nd.inputs = {a, b};
  nd.shape = sa;
  nd.needs_grad = any_needs(nodes_, {a, b});
  return push(std::move(nd));
}

NodeId LazyGraph::scale(NodeId a, float s) {
  LazyNode nd;
  nd.op = LazyOp::kScale;
  nd.inputs = {a};
  nd.shape = nodes_[static_cast<std::size_t>(a)].shape;
  nd.needs_grad = any_needs(nodes_, {a});
  nd.scalar = s;
  return push(std::move(nd));
}

NodeId LazyGraph::log_softmax(NodeId x) {
  FG_CHECK(nodes_[static_cast<std::size_t>(x)].shape.size() == 2);
  LazyNode nd;
  nd.op = LazyOp::kLogSoftmax;
  nd.inputs = {x};
  nd.shape = nodes_[static_cast<std::size_t>(x)].shape;
  nd.needs_grad = any_needs(nodes_, {x});
  return push(std::move(nd));
}

NodeId LazyGraph::nll_loss(NodeId log_probs, std::vector<std::int32_t> labels,
                           std::vector<std::int64_t> rows) {
  FG_CHECK(!rows.empty());
  LazyNode nd;
  nd.op = LazyOp::kNllLoss;
  nd.inputs = {log_probs};
  nd.shape = {1};
  nd.needs_grad = any_needs(nodes_, {log_probs});
  nd.labels =
      std::make_shared<const std::vector<std::int32_t>>(std::move(labels));
  nd.rows = std::make_shared<const std::vector<std::int64_t>>(std::move(rows));
  return push(std::move(nd));
}

NodeId LazyGraph::slice_rows(NodeId x, std::int64_t begin, std::int64_t count) {
  const auto& sx = nodes_[static_cast<std::size_t>(x)].shape;
  FG_CHECK(sx.size() == 2 && begin >= 0 && count >= 0 &&
           begin + count <= sx[0]);
  LazyNode nd;
  nd.op = LazyOp::kSliceRows;
  nd.inputs = {x};
  nd.shape = {count, sx[1]};
  nd.needs_grad = any_needs(nodes_, {x});
  // The {begin, count} window rides in the rows payload.
  nd.rows = std::make_shared<const std::vector<std::int64_t>>(
      std::vector<std::int64_t>{begin, count});
  return push(std::move(nd));
}

NodeId LazyGraph::spmm_copy_u(const graph::Graph& g, NodeId x,
                              const std::string& reduce) {
  FG_CHECK_MSG(reduce == "sum" || reduce == "mean" || reduce == "max",
               "spmm_copy_u supports sum/mean/max");
  const auto& sx = nodes_[static_cast<std::size_t>(x)].shape;
  FG_CHECK(sx.size() == 2);
  LazyNode nd;
  nd.op = LazyOp::kSpmmCopyU;
  nd.inputs = {x};
  nd.shape = {g.in_csr().num_rows, sx[1]};
  nd.needs_grad = any_needs(nodes_, {x});
  nd.reduce = reduce;
  nd.g = &g;
  return push(std::move(nd));
}

NodeId LazyGraph::block_spmm_copy_u(const sample::Block& block, NodeId x,
                                    const std::string& reduce) {
  FG_CHECK_MSG(reduce == "sum" || reduce == "mean" || reduce == "max",
               "block_spmm_copy_u supports sum/mean/max");
  const auto& sx = nodes_[static_cast<std::size_t>(x)].shape;
  FG_CHECK(sx.size() == 2);
  FG_CHECK_MSG(sx[0] == block.num_src(),
               "x must hold one row per block source node");
  LazyNode nd;
  nd.op = LazyOp::kBlockSpmmCopyU;
  nd.inputs = {x};
  nd.shape = {block.num_dst(), sx[1]};
  nd.needs_grad = any_needs(nodes_, {x});
  nd.reduce = reduce;
  nd.block_adj = &block.adj;
  // The deep adjacency copy the old tape took unconditionally is replaced by
  // record-time derivation of EXACTLY what backward reads — the transposed
  // adjacency (sum/mean) and the inverse in-degrees (mean) — and only when a
  // gradient can actually flow. Max-reduce needs neither: its gradient
  // routes through the argmax captured at execution.
  if (nd.needs_grad && reduce != "max") {
    nd.block_rev =
        std::make_shared<const graph::Csr>(graph::transpose(block.adj));
    if (reduce == "mean") {
      nd.block_inv_deg = std::make_shared<const std::vector<float>>(
          inverse_in_degrees(block.adj));
    }
  }
  return push(std::move(nd));
}

NodeId LazyGraph::spmm_u_mul_e(const graph::Graph& g, NodeId x, NodeId w) {
  const auto& sx = nodes_[static_cast<std::size_t>(x)].shape;
  const auto& sw = nodes_[static_cast<std::size_t>(w)].shape;
  FG_CHECK(sx.size() == 2 && shape_numel(sw) == g.num_edges());
  LazyNode nd;
  nd.op = LazyOp::kSpmmUMulE;
  nd.inputs = {x, w};
  nd.shape = {g.in_csr().num_rows, sx[1]};
  nd.needs_grad = any_needs(nodes_, {x, w});
  nd.g = &g;
  return push(std::move(nd));
}

NodeId LazyGraph::sddmm_dot(const graph::Graph& g, NodeId x) {
  FG_CHECK(nodes_[static_cast<std::size_t>(x)].shape.size() == 2);
  LazyNode nd;
  nd.op = LazyOp::kSddmmDot;
  nd.inputs = {x};
  nd.shape = {g.num_edges()};
  nd.needs_grad = any_needs(nodes_, {x});
  nd.g = &g;
  return push(std::move(nd));
}

NodeId LazyGraph::edge_softmax(const graph::Graph& g, NodeId logits) {
  const auto& sl = nodes_[static_cast<std::size_t>(logits)].shape;
  FG_CHECK(shape_numel(sl) == g.num_edges());
  LazyNode nd;
  nd.op = LazyOp::kEdgeSoftmax;
  nd.inputs = {logits};
  nd.shape = sl;
  nd.needs_grad = any_needs(nodes_, {logits});
  nd.g = &g;
  return push(std::move(nd));
}

NodeId LazyGraph::gat_attention(const graph::Graph& g, NodeId z,
                                float logit_scale) {
  const auto& sz = nodes_[static_cast<std::size_t>(z)].shape;
  FG_CHECK(sz.size() == 2);
  LazyNode nd;
  nd.op = LazyOp::kGatAttention;
  nd.inputs = {z};
  nd.shape = {g.in_csr().num_rows, sz[1]};
  nd.needs_grad = any_needs(nodes_, {z});
  nd.scalar = logit_scale;
  nd.g = &g;
  return push(std::move(nd));
}

// --- compilation -------------------------------------------------------------

LazyPlan LazyGraph::plan(const PlanOptions& options) const {
  const auto n = static_cast<NodeId>(nodes_.size());
  const auto sz = static_cast<std::size_t>(n);
  FG_TRACE_SCOPE("lazy.plan", obs::arg("nodes", static_cast<std::int64_t>(n)),
                 obs::arg("fuse", options.fuse ? 1 : 0));
  LazyPlan p;
  p.fused_into.assign(sz, kNoNode);
  p.alias.resize(sz);
  for (NodeId i = 0; i < n; ++i) p.alias[static_cast<std::size_t>(i)] = i;
  p.epilogue.assign(sz, {});
  p.keep.assign(sz, 0);
  p.step.assign(sz, -1);
  p.last_use.assign(sz, -1);
  p.buffer_id.assign(sz, kNoNode);
  p.in_place.assign(sz, 0);

  // Consumer census (multiplicity counts: add(x, x) consumes x twice).
  std::vector<std::int32_t> consumers(sz, 0);
  std::vector<NodeId> sole(sz, kNoNode);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j : nodes_[static_cast<std::size_t>(i)].inputs) {
      consumers[static_cast<std::size_t>(j)]++;
      sole[static_cast<std::size_t>(j)] = i;
    }
  }

  // --- pass 1: fusion --------------------------------------------------------
  if (options.fuse) {
    for (NodeId a = 0; a < n; ++a) {
      const LazyNode& anchor = nodes_[static_cast<std::size_t>(a)];
      if (!is_anchor(anchor) ||
          p.fused_into[static_cast<std::size_t>(a)] != kNoNode)
        continue;
      // An extern operand is legal when its value is materialized before the
      // anchor executes: a leaf, or a slot written by an earlier step — and
      // never the anchor's own slot, which the epilogue overwrites in place.
      const auto extern_ok = [&](NodeId o) {
        if (nodes_[static_cast<std::size_t>(o)].op == LazyOp::kLeaf)
          return true;
        const NodeId r = p.alias[static_cast<std::size_t>(o)];
        return r != kNoNode && r != a && r < a;
      };
      std::vector<EpiloguePlanStep> steps;
      std::vector<NodeId> chain;
      NodeId cur = a;
      while (true) {
        if (consumers[static_cast<std::size_t>(cur)] != 1) break;
        const NodeId e = sole[static_cast<std::size_t>(cur)];
        const LazyNode& ne = nodes_[static_cast<std::size_t>(e)];
        bool terminal = false;
        bool foldable = true;
        EpiloguePlanStep st{core::EpilogueKind::kRelu, 0.0f, kNoNode};
        switch (ne.op) {
          case LazyOp::kRelu:
            st = {core::EpilogueKind::kRelu, 0.0f, kNoNode};
            terminal = true;  // the vjp mask reads the POST-activation value
            break;
          case LazyOp::kLeakyRelu:
            st = {core::EpilogueKind::kLeakyRelu, ne.scalar, kNoNode};
            terminal = true;
            foldable = ne.scalar >= 0.0f;  // output mask needs y>0 ⟺ x>0
            break;
          case LazyOp::kScale:
            st = {core::EpilogueKind::kScale, ne.scalar, kNoNode};
            break;
          case LazyOp::kAddBias:
            st = {core::EpilogueKind::kAddVec, 0.0f, ne.inputs[1]};
            foldable = ne.inputs[0] == cur && extern_ok(ne.inputs[1]);
            break;
          case LazyOp::kAdd: {
            const NodeId other =
                ne.inputs[0] == cur ? ne.inputs[1] : ne.inputs[0];
            st = {core::EpilogueKind::kAddRows, 0.0f, other};
            foldable =
                extern_ok(other) &&
                nodes_[static_cast<std::size_t>(other)].shape == anchor.shape;
            break;
          }
          default:
            foldable = false;
            break;
        }
        if (!foldable) break;
        steps.push_back(st);
        chain.push_back(e);
        cur = e;
        if (terminal) break;
      }
      if (!chain.empty()) {
        for (std::size_t ci = 0; ci < chain.size(); ++ci) {
          const NodeId e = chain[ci];
          p.fused_into[static_cast<std::size_t>(e)] = a;
          // Mid-chain values are never materialized; the chain tail's value
          // IS the anchor's slot after the epilogue runs.
          p.alias[static_cast<std::size_t>(e)] =
              (ci + 1 == chain.size()) ? a : kNoNode;
        }
        p.alias[static_cast<std::size_t>(a)] = kNoNode;
        p.epilogue[static_cast<std::size_t>(a)] = std::move(steps);
      }
    }
  }

  // --- step order ------------------------------------------------------------
  std::int32_t s = 0;
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (nodes_[ui].op == LazyOp::kLeaf) continue;
    if (p.fused_into[ui] != kNoNode) {
      p.step[ui] = p.step[static_cast<std::size_t>(p.fused_into[ui])];
    } else {
      p.step[ui] = s++;
    }
  }
  p.num_steps = s;

  // --- pass 3 prerequisite: the backward keep-set ----------------------------
  if (options.training) {
    const auto mark = [&](NodeId j) {
      if (nodes_[static_cast<std::size_t>(j)].op == LazyOp::kLeaf) return;
      const NodeId r = p.alias[static_cast<std::size_t>(j)];
      FG_CHECK(r != kNoNode);  // vjps never read unmaterialized values
      p.keep[static_cast<std::size_t>(r)] = 1;
    };
    for (NodeId i = 0; i < n; ++i) {
      const LazyNode& nd = nodes_[static_cast<std::size_t>(i)];
      if (nd.op == LazyOp::kLeaf) continue;
      const auto needs = [&](int idx) {
        return nodes_[static_cast<std::size_t>(
                          nd.inputs[static_cast<std::size_t>(idx)])]
            .needs_grad;
      };
      switch (nd.op) {
        case LazyOp::kMatmul:
          if (needs(0)) mark(nd.inputs[1]);
          if (needs(1)) mark(nd.inputs[0]);
          break;
        case LazyOp::kRelu:
        case LazyOp::kLeakyRelu:
        case LazyOp::kLogSoftmax:
        case LazyOp::kEdgeSoftmax:
          if (needs(0)) mark(i);
          break;
        case LazyOp::kSpmmUMulE:
          if (needs(0)) mark(nd.inputs[1]);
          if (needs(1)) mark(nd.inputs[0]);
          break;
        case LazyOp::kSddmmDot:
        case LazyOp::kGatAttention:
          if (needs(0)) mark(nd.inputs[0]);
          break;
        default:
          break;
      }
    }
  }

  // --- pass 2: liveness + buffer-reuse plan ----------------------------------
  // Reads: every executed node reads the slots its inputs resolve to at its
  // own step; a fused node's extern operands are read at the ANCHOR's step
  // (p.step already says so).
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (nodes_[ui].op == LazyOp::kLeaf) continue;
    for (NodeId j : nodes_[ui].inputs) {
      const NodeId r = p.alias[static_cast<std::size_t>(j)];
      if (r == kNoNode || nodes_[static_cast<std::size_t>(r)].op == LazyOp::kLeaf)
        continue;
      p.last_use[static_cast<std::size_t>(r)] =
          std::max(p.last_use[static_cast<std::size_t>(r)], p.step[ui]);
    }
  }
  // Kept slots and graph outputs (zero-consumer slots) live past the final
  // step: last_use == num_steps keeps them out of every release/reuse list.
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (nodes_[ui].op == LazyOp::kLeaf || p.fused_into[ui] != kNoNode)
      continue;
    if (p.keep[ui] || p.last_use[ui] < 0)
      p.last_use[ui] = static_cast<std::int32_t>(p.num_steps);
  }

  // In-place detection: an eligible elementwise op whose primary input slot
  // is a dying, non-kept intermediate takes over that buffer (live ranges
  // touch at the handoff step — the property tests' `a.last_use <= b.step`
  // convention). The linear scan below then treats the pair as one buffer.
  std::vector<char> transferred(sz, 0);
  if (options.reuse_buffers) {
    for (NodeId i = 0; i < n; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      const LazyNode& nd = nodes_[ui];
      if (nd.op == LazyOp::kLeaf || p.fused_into[ui] != kNoNode) continue;
      if (!in_place_eligible(nd.op)) continue;
      const NodeId pr = p.alias[static_cast<std::size_t>(nd.inputs[0])];
      if (pr == kNoNode) continue;
      const std::size_t upr = static_cast<std::size_t>(pr);
      if (nodes_[upr].op == LazyOp::kLeaf || p.keep[upr]) continue;
      if (transferred[upr]) continue;
      if (p.last_use[upr] != p.step[ui]) continue;
      if (shape_numel(nodes_[upr].shape) != shape_numel(nd.shape)) continue;
      p.in_place[ui] = 1;
      transferred[upr] = 1;
    }

    // Linear scan over slot definitions (id order == step order), exact-size
    // free list. Buffers free strictly AFTER their last use (equality is the
    // in-place transfer, handled above).
    std::map<std::int64_t, std::vector<NodeId>> free_bufs;
    std::vector<NodeId> active;
    NodeId next_buf = 0;
    for (NodeId i = 0; i < n; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      const LazyNode& nd = nodes_[ui];
      if (nd.op == LazyOp::kLeaf || p.fused_into[ui] != kNoNode) continue;
      if (p.keep[ui] || p.last_use[ui] >= p.num_steps) continue;
      if (p.in_place[ui]) {
        p.buffer_id[ui] =
            p.buffer_id[static_cast<std::size_t>(p.alias[static_cast<std::size_t>(
                nd.inputs[0])])];
        active.push_back(i);
        continue;
      }
      // Expire buffers whose owner died before this step.
      for (auto it = active.begin(); it != active.end();) {
        const std::size_t us = static_cast<std::size_t>(*it);
        if (p.last_use[us] < p.step[ui] && !transferred[us]) {
          if (p.buffer_id[us] != kNoNode)
            free_bufs[shape_numel(nodes_[us].shape)].push_back(
                p.buffer_id[us]);
          it = active.erase(it);
        } else {
          ++it;
        }
      }
      const std::int64_t bytes_key = shape_numel(nd.shape);
      auto fit = free_bufs.find(bytes_key);
      if (fit != free_bufs.end() && !fit->second.empty()) {
        p.buffer_id[ui] = fit->second.back();
        fit->second.pop_back();
      } else {
        p.buffer_id[ui] = next_buf++;
      }
      active.push_back(i);
    }
    p.num_buffers = next_buf;
  }

  // Peak bytes: high-water of live slot bytes over the step timeline. An
  // in-place slot starts one step late (its storage IS its input's until the
  // handoff), so shared buffers are never double-counted. Kept/output slots
  // stay live through the last step. Same model with reuse off — recycling
  // changes allocator traffic, not the live-byte high-water.
  if (p.num_steps > 0) {
    std::vector<std::int64_t> delta(static_cast<std::size_t>(p.num_steps) + 1,
                                    0);
    for (NodeId i = 0; i < n; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      if (nodes_[ui].op == LazyOp::kLeaf || p.fused_into[ui] != kNoNode)
        continue;
      std::int64_t s0 = p.step[ui] + (p.in_place[ui] ? 1 : 0);
      std::int64_t s1 =
          std::min<std::int64_t>(p.last_use[ui], p.num_steps - 1);
      if (s0 > s1) continue;
      const std::int64_t bytes = shape_numel(nodes_[ui].shape) * 4;
      delta[static_cast<std::size_t>(s0)] += bytes;
      delta[static_cast<std::size_t>(s1) + 1] -= bytes;
    }
    std::int64_t live = 0;
    for (std::int64_t st = 0; st < p.num_steps; ++st) {
      live += delta[static_cast<std::size_t>(st)];
      p.peak_bytes = std::max(p.peak_bytes, live);
    }
  }
  return p;
}

// --- execution ---------------------------------------------------------------

Var LazyGraph::run(ExecContext& ctx, NodeId root) {
  const auto n = static_cast<NodeId>(nodes_.size());
  const auto sz = static_cast<std::size_t>(n);
  FG_CHECK(root >= 0 && root < n);
  if (nodes_[static_cast<std::size_t>(root)].op == LazyOp::kLeaf)
    return nodes_[static_cast<std::size_t>(root)].leaf;

  PlanOptions po;
  po.fuse = ctx.device == Device::kCpu &&
            ctx.backend == SparseBackend::kFused && ctx.fuse_epilogues;
  po.reuse_buffers = ctx.plan_buffers;
  po.training = nodes_[static_cast<std::size_t>(root)].needs_grad;
  LazyPlan lp = plan(po);
  ctx.peak_bytes =
      std::max(ctx.peak_bytes, static_cast<double>(lp.peak_bytes));

  // Plan-shape metrics: how much the op-graph compiler actually bought.
  {
    std::int64_t fused = 0;
    std::int64_t buffered = 0;
    for (std::size_t ui = 0; ui < sz; ++ui) {
      if (lp.fused_into[ui] != kNoNode) ++fused;
      if (lp.buffer_id[ui] != kNoNode) ++buffered;
    }
    static obs::Counter& obs_runs =
        obs::Registry::global().counter("lazy.run.count");
    static obs::Counter& obs_fused =
        obs::Registry::global().counter("lazy.fusion.count");
    static obs::Counter& obs_reused =
        obs::Registry::global().counter("lazy.buffer.reused");
    static obs::Gauge& obs_peak =
        obs::Registry::global().gauge("lazy.peak_bytes");
    obs_runs.add(1);
    obs_fused.add(fused);
    // Nodes sharing a recycled slot beyond the first occupant of each.
    obs_reused.add(std::max<std::int64_t>(0, buffered - lp.num_buffers));
    obs_peak.set_max(lp.peak_bytes);
  }
  FG_TRACE_SCOPE("lazy.run", obs::arg("steps", lp.num_steps),
                 obs::arg("buffers", lp.num_buffers),
                 obs::arg("peak_bytes", lp.peak_bytes));

  std::vector<Tensor> vals(sz);
  std::vector<SideData> side(sz);

  // Eager release: after the step that last reads a slot, drop its handle.
  std::vector<std::vector<NodeId>> release_after(
      static_cast<std::size_t>(std::max<std::int64_t>(lp.num_steps, 1)));
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (nodes_[ui].op == LazyOp::kLeaf || lp.fused_into[ui] != kNoNode)
      continue;
    if (lp.last_use[ui] >= 0 && lp.last_use[ui] < lp.num_steps)
      release_after[static_cast<std::size_t>(lp.last_use[ui])].push_back(i);
  }

  const auto ev = [&](NodeId j) -> const Tensor& {
    const NodeId r = lp.alias[static_cast<std::size_t>(j)];
    FG_CHECK(r != kNoNode);
    const Tensor& t = vals[static_cast<std::size_t>(r)];
    FG_CHECK(t.defined());
    return t;
  };

  // Leaves load up front (shared views, never deep copies): an anchor's
  // epilogue may reference a bias leaf that was RECORDED after it.
  for (NodeId i = 0; i < n; ++i) {
    if (nodes_[static_cast<std::size_t>(i)].op == LazyOp::kLeaf)
      vals[static_cast<std::size_t>(i)] =
          nodes_[static_cast<std::size_t>(i)].leaf->value();
  }

  for (NodeId i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    const LazyNode& nd = nodes_[ui];
    if (nd.op == LazyOp::kLeaf || lp.fused_into[ui] != kNoNode) continue;

    // Resolve this anchor's epilogue program: symbolic operands become data
    // pointers into already-materialized slots, then the peephole folds
    // trailing bias+relu into one pass.
    core::EpilogueOps ep;
    const core::EpilogueOps* ep_ptr = nullptr;
    if (!lp.epilogue[ui].empty()) {
      for (const EpiloguePlanStep& ps : lp.epilogue[ui]) {
        core::EpilogueStep es;
        es.kind = ps.kind;
        es.scalar = ps.scalar;
        if (ps.operand != kNoNode) {
          const Tensor& o = ev(ps.operand);
          es.data = o.data();
          if (ps.kind == core::EpilogueKind::kAddRows)
            es.stride = o.row_size();
        }
        ep.steps.push_back(es);
      }
      ep.peephole();
      ep_ptr = &ep;
    }

    switch (nd.op) {
      case LazyOp::kLeaf:
        break;
      case LazyOp::kMatmul: {
        const Tensor& a = ev(nd.inputs[0]);
        const Tensor& b = ev(nd.inputs[1]);
        const std::int64_t m = a.shape(0), k = a.shape(1), nn = b.shape(1);
        vals[ui] = tensor::matmul(a, b, ctx.num_threads);
        charge_dense(ctx, 2.0 * m * k * nn,
                     4.0 * (static_cast<double>(m) * k +
                            static_cast<double>(k) * nn +
                            static_cast<double>(m) * nn));
        if (ep_ptr != nullptr) apply_epilogue_rows(ctx, vals[ui], *ep_ptr);
        break;
      }
      case LazyOp::kAddBias: {
        const Tensor& b = ev(nd.inputs[1]);
        if (lp.in_place[ui]) {
          Tensor t = vals[static_cast<std::size_t>(
              lp.alias[static_cast<std::size_t>(nd.inputs[0])])];
          const std::int64_t c = t.shape(1);
          const float* bp = b.data();
          for (std::int64_t r = 0; r < t.shape(0); ++r) {
            float* tr = t.row(r);
            for (std::int64_t j = 0; j < c; ++j) tr[j] = tr[j] + bp[j];
          }
          vals[ui] = std::move(t);
        } else {
          vals[ui] = tensor::add_bias(ev(nd.inputs[0]), b);
        }
        charge_dense(ctx, static_cast<double>(shape_numel(nd.shape)),
                     static_cast<double>(shape_numel(nd.shape)) * 8.0);
        break;
      }
      case LazyOp::kRelu: {
        if (lp.in_place[ui]) {
          Tensor t = vals[static_cast<std::size_t>(
              lp.alias[static_cast<std::size_t>(nd.inputs[0])])];
          float* pt = t.data();
          for (std::int64_t e = 0; e < t.numel(); ++e)
            pt[e] = pt[e] > 0 ? pt[e] : 0;
          vals[ui] = std::move(t);
        } else {
          vals[ui] = tensor::relu(ev(nd.inputs[0]));
        }
        charge_dense(ctx, static_cast<double>(shape_numel(nd.shape)),
                     static_cast<double>(shape_numel(nd.shape)) * 8.0);
        break;
      }
      case LazyOp::kLeakyRelu: {
        if (lp.in_place[ui]) {
          Tensor t = vals[static_cast<std::size_t>(
              lp.alias[static_cast<std::size_t>(nd.inputs[0])])];
          float* pt = t.data();
          const float sl = nd.scalar;
          for (std::int64_t e = 0; e < t.numel(); ++e)
            pt[e] = pt[e] > 0 ? pt[e] : sl * pt[e];
          vals[ui] = std::move(t);
        } else {
          vals[ui] = tensor::leaky_relu(ev(nd.inputs[0]), nd.scalar);
        }
        charge_dense(ctx, static_cast<double>(shape_numel(nd.shape)),
                     static_cast<double>(shape_numel(nd.shape)) * 8.0);
        break;
      }
      case LazyOp::kAdd: {
        if (lp.in_place[ui]) {
          const Tensor& b = ev(nd.inputs[1]);
          Tensor t = vals[static_cast<std::size_t>(
              lp.alias[static_cast<std::size_t>(nd.inputs[0])])];
          float* pt = t.data();
          const float* pb = b.data();
          for (std::int64_t e = 0; e < t.numel(); ++e) pt[e] = pt[e] + pb[e];
          vals[ui] = std::move(t);
        } else {
          vals[ui] = tensor::add(ev(nd.inputs[0]), ev(nd.inputs[1]));
        }
        charge_dense(ctx, static_cast<double>(shape_numel(nd.shape)),
                     static_cast<double>(shape_numel(nd.shape)) * 12.0);
        break;
      }
      case LazyOp::kScale: {
        if (lp.in_place[ui]) {
          Tensor t = vals[static_cast<std::size_t>(
              lp.alias[static_cast<std::size_t>(nd.inputs[0])])];
          float* pt = t.data();
          const float s = nd.scalar;
          for (std::int64_t e = 0; e < t.numel(); ++e) pt[e] = pt[e] * s;
          vals[ui] = std::move(t);
        } else {
          vals[ui] = tensor::scale(ev(nd.inputs[0]), nd.scalar);
        }
        charge_dense(ctx, static_cast<double>(shape_numel(nd.shape)),
                     static_cast<double>(shape_numel(nd.shape)) * 8.0);
        break;
      }
      case LazyOp::kLogSoftmax:
        vals[ui] = tensor::log_softmax_rows(ev(nd.inputs[0]));
        charge_dense(ctx, 4.0 * static_cast<double>(shape_numel(nd.shape)),
                     static_cast<double>(shape_numel(nd.shape)) * 8.0);
        break;
      case LazyOp::kNllLoss: {
        const Tensor& lpv = ev(nd.inputs[0]);
        double loss = 0.0;
        for (std::int64_t r : *nd.rows)
          loss -= lpv.at(r, (*nd.labels)[static_cast<std::size_t>(r)]);
        Tensor value({1});
        value.at(0) =
            static_cast<float>(loss / static_cast<double>(nd.rows->size()));
        vals[ui] = std::move(value);
        charge_dense(ctx, static_cast<double>(nd.rows->size()),
                     static_cast<double>(nd.rows->size()) * 8.0);
        break;
      }
      case LazyOp::kSliceRows: {
        const std::int64_t begin = (*nd.rows)[0], count = (*nd.rows)[1];
        const Tensor& x = ev(nd.inputs[0]);
        const std::int64_t d = x.row_size();
        Tensor value({count, d});
        std::memcpy(value.data(), x.data() + begin * d,
                    static_cast<std::size_t>(count * d) * sizeof(float));
        vals[ui] = std::move(value);
        charge_dense(ctx, 0.0, 2.0 * static_cast<double>(count) * d * 4.0);
        break;
      }
      case LazyOp::kSpmmCopyU:
      case LazyOp::kBlockSpmmCopyU: {
        const bool is_block = nd.op == LazyOp::kBlockSpmmCopyU;
        FG_CHECK_MSG(!is_block || nd.block_adj != nullptr,
                     "a recorded block op must run before its Block dies");
        const graph::Csr& adj =
            is_block ? *nd.block_adj : nd.g->in_csr();
        const Tensor& x = ev(nd.inputs[0]);
        const std::int64_t d = x.row_size();
        if (nd.reduce == "max") {
          if (is_block || ctx.backend == SparseBackend::kFused) {
            // Fused max with argmax tracking; the argmax holds source ids in
            // `adj`'s column space — exactly what the gradient scatter needs
            // for full graphs and blocks alike.
            side[ui].arg_src = std::make_shared<std::vector<vid_t>>();
            vals[ui] = core::spmm_copy_u_max_arg(
                adj, x, side[ui].arg_src.get(), ctx.num_threads);
            if (ctx.device == Device::kGpuSim) {
              // Same traffic as a fused max-SpMM; charge it.
              core::GpuSpmmSchedule gsched;
              auto r = gpusim::spmm_gpu(adj, "copy_u", "max", gsched,
                                        {&x, nullptr, nullptr}, ctx.gpu);
              ctx.sim_seconds += r.cost.total_s;
            }
          } else {
            // Materialize: gather messages, segment-max with edge arg.
            Tensor msgs = gather_rows(ctx, x, nd.g->coo().src);
            side[ui].arg_eid = std::make_shared<std::vector<eid_t>>();
            vals[ui] = segment_reduce(ctx, nd.g->in_csr(), msgs, "max",
                                      side[ui].arg_eid.get());
          }
        } else if (is_block || ctx.backend == SparseBackend::kFused) {
          // Block aggregation always runs the fused kernels (the block
          // adjacency is a drop-in Csr; serving never materializes
          // messages). The epilogue — when the fusion pass attached one —
          // runs inside the same row sweep.
          vals[ui] = run_spmm(ctx, adj, "copy_u", nd.reduce,
                              {&x, nullptr, nullptr}, d, ep_ptr);
        } else {
          Tensor msgs = gather_rows(ctx, x, nd.g->coo().src);
          vals[ui] =
              segment_reduce(ctx, nd.g->in_csr(), msgs, nd.reduce, nullptr);
        }
        break;
      }
      case LazyOp::kSpmmUMulE: {
        const Tensor& x = ev(nd.inputs[0]);
        const Tensor& w = ev(nd.inputs[1]);
        const std::int64_t d = x.row_size();
        if (ctx.backend == SparseBackend::kFused) {
          vals[ui] = run_spmm(ctx, nd.g->in_csr(), "u_mul_e", "sum",
                              {&x, &w, nullptr}, d, ep_ptr);
        } else {
          Tensor msgs = gather_rows(ctx, x, nd.g->coo().src);
          for (eid_t e = 0; e < nd.g->num_edges(); ++e) {
            float* me = msgs.row(e);
            const float we = w.at(e);
            for (std::int64_t j = 0; j < d; ++j) me[j] *= we;
          }
          charge_dense(ctx, static_cast<double>(nd.g->num_edges()) * d,
                       static_cast<double>(nd.g->num_edges()) * d * 8.0);
          vals[ui] = segment_reduce(ctx, nd.g->in_csr(), msgs, "sum", nullptr);
        }
        break;
      }
      case LazyOp::kSddmmDot: {
        const Tensor& x = ev(nd.inputs[0]);
        const std::int64_t d = x.row_size();
        if (ctx.backend == SparseBackend::kFused) {
          vals[ui] = run_sddmm_dot(ctx, nd.g->coo(), x, x);
        } else {
          Tensor xu = gather_rows(ctx, x, nd.g->coo().src);
          Tensor xv = gather_rows(ctx, x, nd.g->coo().dst);
          Tensor value({nd.g->num_edges()});
          for (eid_t e = 0; e < nd.g->num_edges(); ++e) {
            const float* a = xu.row(e);
            const float* b = xv.row(e);
            float s = 0.0f;
            for (std::int64_t j = 0; j < d; ++j) s += a[j] * b[j];
            value.at(e) = s;
          }
          charge_dense(ctx, static_cast<double>(nd.g->num_edges()) * d * 2.0,
                       static_cast<double>(nd.g->num_edges()) * d * 8.0);
          vals[ui] = std::move(value);
        }
        break;
      }
      case LazyOp::kEdgeSoftmax:
        // Fused threaded segment softmax (core/attention.hpp), shared by
        // both sparse backends. The keep-set retains the output for the
        // backward sweep — no defensive clone anymore.
        vals[ui] = core::edge_softmax(nd.g->in_csr(), ev(nd.inputs[0]),
                                      ctx.num_threads);
        charge_dense(ctx, 3.0 * static_cast<double>(nd.g->num_edges()),
                     6.0 * static_cast<double>(nd.g->num_edges()) * 4.0);
        break;
      case LazyOp::kGatAttention: {
        FG_CHECK_MSG(ctx.backend == SparseBackend::kFused,
                     "gat_attention is the fused kernel; the materialize "
                     "backend runs the composed chain");
        const Tensor& z = ev(nd.inputs[0]);
        const std::int64_t d = z.row_size();
        core::AttentionOperands operands;
        operands.src_feat = &z;  // query/key default to src_feat
        operands.logit_scale = nd.scalar;
        if (ctx.device == Device::kGpuSim) {
          // One fused grid-stride kernel on the simulated device: one
          // traversal, one launch, zero atomics (gpusim/attention_gpu.hpp).
          core::GpuSpmmSchedule gsched;
          gsched.num_blocks =
              std::max<std::int64_t>(1024, nd.g->in_csr().num_rows / 4);
          auto r = gpusim::attention_gpu(nd.g->in_csr(), "copy_u", gsched,
                                         operands, ctx.gpu);
          ctx.sim_seconds += r.cost.total_s;
          vals[ui] = std::move(r.out);
          side[ui].alpha = std::make_shared<Tensor>(std::move(r.alpha));
        } else {
          const core::CpuSpmmSchedule sched = core::heuristic_spmm_schedule(
              nd.g->in_csr(), d, ctx.num_threads);
          core::AttentionResult res =
              core::attention(nd.g->in_csr(), "copy_u", sched, operands);
          vals[ui] = std::move(res.out);
          side[ui].alpha = std::make_shared<Tensor>(std::move(res.alpha));
        }
        break;
      }
    }

    for (NodeId r : release_after[static_cast<std::size_t>(lp.step[ui])]) {
      if (r != i) vals[static_cast<std::size_t>(r)] = Tensor();
    }
  }

  // Retain what backward reads, then surface the root's value.
  std::vector<Tensor> kept(sz);
  for (NodeId i = 0; i < n; ++i) {
    if (lp.keep[static_cast<std::size_t>(i)])
      kept[static_cast<std::size_t>(i)] = vals[static_cast<std::size_t>(i)];
  }
  const NodeId result_slot = lp.alias[static_cast<std::size_t>(root)];
  FG_CHECK(result_slot != kNoNode);
  Tensor out_value = vals[static_cast<std::size_t>(result_slot)];
  FG_CHECK(out_value.defined());

  if (!nodes_[static_cast<std::size_t>(root)].needs_grad) {
    nodes_.clear();
    return make_leaf(std::move(out_value), false, "lazy_graph");
  }

  std::vector<Var> leaf_vars;
  for (const LazyNode& nd : nodes_)
    if (nd.op == LazyOp::kLeaf) leaf_vars.push_back(nd.leaf);

  auto state = std::make_shared<BackwardState>();
  state->nodes = std::move(nodes_);
  state->plan = std::move(lp);
  state->kept = std::move(kept);
  state->side = std::move(side);
  state->ctx = &ctx;
  state->root = root;
  // Borrowed block adjacencies are dead once the caller's Block goes away;
  // backward only touches the record-time derived rev/inv-deg payloads.
  for (LazyNode& nd : state->nodes) nd.block_adj = nullptr;
  return make_op(
      std::move(out_value), std::move(leaf_vars),
      [state](Node& node) { run_lazy_backward(*state, node); }, "lazy_graph");
}

}  // namespace featgraph::minidgl
