#include "minidgl/data.hpp"

#include "graph/generators.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace featgraph::minidgl {

ClassificationData make_sbm_classification(graph::vid_t n, double avg_degree,
                                           std::int64_t num_classes,
                                           double p_in, std::int64_t feat_dim,
                                           float signal, std::uint64_t seed) {
  FG_CHECK(num_classes >= 2 && feat_dim >= num_classes);
  // gen_community assigns communities as contiguous blocks; labels follow.
  graph::Coo coo = graph::gen_community(n, avg_degree,
                                        static_cast<int>(num_classes), p_in,
                                        seed);
  const graph::vid_t comm_size =
      static_cast<graph::vid_t>((n + num_classes - 1) / num_classes);

  ClassificationData data{graph::Graph(std::move(coo)),
                          tensor::Tensor::randn({n, feat_dim}, seed + 1),
                          {}, {}, {}, {}, num_classes};
  data.labels.resize(static_cast<std::size_t>(n));
  for (graph::vid_t v = 0; v < n; ++v) {
    const auto cls = static_cast<std::int32_t>(
        std::min<std::int64_t>(v / comm_size, num_classes - 1));
    data.labels[static_cast<std::size_t>(v)] = cls;
    data.features.at(v, cls) += signal;
  }

  // 65/10/25 split, deterministic.
  support::Rng rng(seed + 2);
  for (graph::vid_t v = 0; v < n; ++v) {
    const double r = rng.uniform_real();
    if (r < 0.65) {
      data.train_rows.push_back(v);
    } else if (r < 0.75) {
      data.val_rows.push_back(v);
    } else {
      data.test_rows.push_back(v);
    }
  }
  return data;
}

double accuracy(const tensor::Tensor& log_probs,
                const std::vector<std::int32_t>& labels,
                const std::vector<std::int64_t>& rows) {
  if (rows.empty()) return 0.0;
  std::int64_t correct = 0;
  const std::int64_t c = log_probs.row_size();
  for (std::int64_t v : rows) {
    const float* lp = log_probs.row(v);
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j)
      if (lp[j] > lp[best]) best = j;
    if (best == labels[static_cast<std::size_t>(v)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

}  // namespace featgraph::minidgl
