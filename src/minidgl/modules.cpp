#include "minidgl/modules.hpp"

#include <cmath>

#include "support/check.hpp"

namespace featgraph::minidgl {

namespace {

using tensor::Tensor;

/// Glorot-style scaled normal initialization.
Tensor glorot(std::int64_t in_dim, std::int64_t out_dim, std::uint64_t seed) {
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_dim + out_dim));
  return Tensor::randn({in_dim, out_dim}, seed, stddev);
}

}  // namespace

Linear::Linear(std::int64_t in_dim, std::int64_t out_dim, std::uint64_t seed)
    : w_(make_leaf(glorot(in_dim, out_dim, seed), true, "weight")),
      b_(make_leaf(Tensor::zeros({out_dim}), true, "bias")) {}

Var Linear::forward(ExecContext& ctx, const Var& x) const {
  return add_bias(ctx, matmul(ctx, x, w_), b_);
}

NodeId Linear::record(LazyGraph& g, NodeId x) const {
  return g.add_bias(g.matmul(x, g.leaf(w_)), g.leaf(b_));
}

GcnLayer::GcnLayer(std::int64_t in_dim, std::int64_t out_dim, bool final_layer,
                   std::uint64_t seed, std::string normalization)
    : linear_(in_dim, out_dim, seed),
      final_layer_(final_layer),
      normalization_(std::move(normalization)) {
  FG_CHECK_MSG(normalization_ == "mean" || normalization_ == "sym",
               "gcn normalization must be mean or sym");
}

NodeId GcnLayer::record(LazyGraph& g, const graph::Graph& gr, NodeId x) const {
  // Dense-first: agg(x) W == agg(x W) for the linear mean/sym aggregations,
  // and running the matmul first leaves bias+ReLU directly behind the SpMM
  // anchor — the fusion pass folds them into the aggregation's row sweep
  // (GCN's epilogue never makes a second |V| x d pass).
  const NodeId z = g.matmul(x, g.leaf(linear_.w()));
  NodeId agg;
  if (normalization_ == "mean") {
    agg = g.spmm_copy_u(gr, z, "mean");
  } else {
    if (cached_graph_uid_ != gr.coo().uid) {
      cached_norm_ = make_leaf(symmetric_norm_weights(gr), false, "gcn_norm");
      cached_graph_uid_ = gr.coo().uid;
    }
    agg = g.spmm_u_mul_e(gr, z, g.leaf(cached_norm_));
  }
  const NodeId h = g.add_bias(agg, g.leaf(linear_.b()));
  return final_layer_ ? h : g.relu(h);
}

NodeId GcnLayer::record(LazyGraph& g, const sample::Block& block,
                        NodeId x) const {
  FG_CHECK_MSG(normalization_ == "mean",
               "block forward supports mean normalization only");
  const NodeId z = g.matmul(x, g.leaf(linear_.w()));
  const NodeId agg = g.block_spmm_copy_u(block, z, "mean");
  const NodeId h = g.add_bias(agg, g.leaf(linear_.b()));
  return final_layer_ ? h : g.relu(h);
}

Var GcnLayer::forward(ExecContext& ctx, const graph::Graph& g,
                      const Var& x) const {
  LazyGraph lg;
  return lg.run(ctx, record(lg, g, lg.leaf(x)));
}

SageLayer::SageLayer(std::int64_t in_dim, std::int64_t out_dim,
                     std::string aggregator, bool final_layer,
                     std::uint64_t seed)
    : self_(in_dim, out_dim, seed),
      neigh_(in_dim, out_dim, seed + 1),
      aggregator_(std::move(aggregator)),
      final_layer_(final_layer) {
  FG_CHECK_MSG(aggregator_ == "mean" || aggregator_ == "max",
               "sage aggregator must be mean or max");
}

Var GcnLayer::forward(ExecContext& ctx, const sample::Block& block,
                      const Var& x) const {
  LazyGraph lg;
  return lg.run(ctx, record(lg, block, lg.leaf(x)));
}

NodeId SageLayer::record(LazyGraph& g, const graph::Graph& gr,
                         NodeId x) const {
  // Self term first: by the time the neighbor branch's matmul anchor runs,
  // the self activations are materialized, so `+ self` and the trailing
  // ReLU both fold into the neighbor matmul's epilogue.
  const NodeId self_h = self_.record(g, x);
  const NodeId agg = g.spmm_copy_u(gr, x, aggregator_);
  const NodeId h = g.add(self_h, neigh_.record(g, agg));
  return final_layer_ ? h : g.relu(h);
}

NodeId SageLayer::record(LazyGraph& g, const sample::Block& block,
                         NodeId x) const {
  // dst-then-src: the destinations' own features are x's first num_dst rows.
  const NodeId x_dst = g.slice_rows(x, 0, block.num_dst());
  const NodeId self_h = self_.record(g, x_dst);
  const NodeId agg = g.block_spmm_copy_u(block, x, aggregator_);
  const NodeId h = g.add(self_h, neigh_.record(g, agg));
  return final_layer_ ? h : g.relu(h);
}

Var SageLayer::forward(ExecContext& ctx, const graph::Graph& g,
                       const Var& x) const {
  LazyGraph lg;
  return lg.run(ctx, record(lg, g, lg.leaf(x)));
}

Var SageLayer::forward(ExecContext& ctx, const sample::Block& block,
                       const Var& x) const {
  LazyGraph lg;
  return lg.run(ctx, record(lg, block, lg.leaf(x)));
}

std::vector<Var> SageLayer::parameters() const {
  std::vector<Var> params = self_.parameters();
  for (const auto& p : neigh_.parameters()) params.push_back(p);
  return params;
}

GatLayer::GatLayer(std::int64_t in_dim, std::int64_t out_dim, bool final_layer,
                   std::uint64_t seed, int num_heads)
    : final_layer_(final_layer) {
  FG_CHECK(num_heads >= 1);
  heads_.reserve(static_cast<std::size_t>(num_heads));
  for (int h = 0; h < num_heads; ++h)
    heads_.emplace_back(in_dim, out_dim,
                        seed + static_cast<std::uint64_t>(h) * 97);
}

std::vector<Var> GatLayer::parameters() const {
  std::vector<Var> params;
  for (const auto& head : heads_)
    for (const auto& p : head.parameters()) params.push_back(p);
  return params;
}

NodeId GatLayer::record(const ExecContext& ctx, LazyGraph& g,
                        const graph::Graph& gr, NodeId x) const {
  NodeId sum = kNoNode;
  for (const auto& head : heads_) {
    const NodeId z = head.record(g, x);
    // Scaled dot-product attention (Sec. II-A / Fig. 4a) — scaling by
    // 1/sqrt(d) keeps the softmax in a trainable range.
    const float s = 1.0f / std::sqrt(static_cast<float>(
                        g.nodes()[static_cast<std::size_t>(z)].shape[1]));
    NodeId h;
    if (ctx.backend == SparseBackend::kFused) {
      // One fused SDDMM -> edge-softmax -> SpMM pass per destination row —
      // the core engine on kCpu, the fused gpusim kernel on kGpuSim (one
      // simulated launch and traversal instead of three).
      h = g.gat_attention(gr, z, s);
    } else {
      // Composed chain: the materialize baseline (Table VI).
      const NodeId logits = g.scale(g.sddmm_dot(gr, z), s);
      const NodeId alpha = g.edge_softmax(gr, logits);
      h = g.spmm_u_mul_e(gr, z, alpha);
    }
    sum = sum == kNoNode ? h : g.add(sum, h);
  }
  const NodeId h =
      heads_.size() == 1
          ? sum
          : g.scale(sum, 1.0f / static_cast<float>(heads_.size()));
  return final_layer_ ? h : g.relu(h);
}

Var GatLayer::forward(ExecContext& ctx, const graph::Graph& g,
                      const Var& x) const {
  LazyGraph lg;
  return lg.run(ctx, record(ctx, lg, g, lg.leaf(x)));
}

Model::Model(const std::string& kind, std::int64_t in_dim, std::int64_t hidden,
             std::int64_t num_classes, std::uint64_t seed)
    : kind_(kind) {
  if (kind == "gcn") {
    gcn1_ = std::make_shared<GcnLayer>(in_dim, hidden, false, seed);
    gcn2_ = std::make_shared<GcnLayer>(hidden, num_classes, true, seed + 10);
    for (const auto& p : gcn1_->parameters()) params_.push_back(p);
    for (const auto& p : gcn2_->parameters()) params_.push_back(p);
  } else if (kind == "sage-mean" || kind == "sage-max") {
    const std::string agg = kind == "sage-mean" ? "mean" : "max";
    sage1_ = std::make_shared<SageLayer>(in_dim, hidden, agg, false, seed);
    sage2_ =
        std::make_shared<SageLayer>(hidden, num_classes, agg, true, seed + 10);
    for (const auto& p : sage1_->parameters()) params_.push_back(p);
    for (const auto& p : sage2_->parameters()) params_.push_back(p);
  } else if (kind == "gat") {
    gat1_ = std::make_shared<GatLayer>(in_dim, hidden, false, seed);
    gat2_ = std::make_shared<GatLayer>(hidden, num_classes, true, seed + 10);
    for (const auto& p : gat1_->parameters()) params_.push_back(p);
    for (const auto& p : gat2_->parameters()) params_.push_back(p);
  } else {
    FG_CHECK_MSG(false, "unknown model kind (gcn/sage-mean/sage-max/gat)");
  }
}

Var Model::forward(ExecContext& ctx, const graph::Graph& g,
                   const Var& x) const {
  // One LazyGraph for the whole model: both layers plus the log-softmax
  // compile together, so the planner sees cross-layer liveness and one
  // autograd node carries the full derived backward.
  LazyGraph lg;
  const NodeId x0 = lg.leaf(x);
  NodeId h;
  if (gcn1_) {
    h = gcn2_->record(lg, g, gcn1_->record(lg, g, x0));
  } else if (sage1_) {
    h = sage2_->record(lg, g, sage1_->record(lg, g, x0));
  } else {
    h = gat2_->record(ctx, lg, g, gat1_->record(ctx, lg, g, x0));
  }
  return lg.run(ctx, lg.log_softmax(h));
}

Var Model::forward(ExecContext& ctx, const sample::MinibatchBlocks& mfg,
                   const Var& x) const {
  FG_CHECK_MSG(mfg.blocks.size() == 2,
               "2-layer models need exactly 2 blocks per minibatch");
  LazyGraph lg;
  const NodeId x0 = lg.leaf(x);
  NodeId h;
  if (gcn1_) {
    h = gcn2_->record(lg, mfg.blocks[1],
                      gcn1_->record(lg, mfg.blocks[0], x0));
  } else if (sage1_) {
    h = sage2_->record(lg, mfg.blocks[1],
                       sage1_->record(lg, mfg.blocks[0], x0));
  } else {
    FG_CHECK_MSG(false,
                 "minibatch block inference supports gcn and sage models");
  }
  return lg.run(ctx, lg.log_softmax(h));
}

}  // namespace featgraph::minidgl
