#include "minidgl/modules.hpp"

#include <cmath>

#include "support/check.hpp"

namespace featgraph::minidgl {

namespace {

using tensor::Tensor;

/// Glorot-style scaled normal initialization.
Tensor glorot(std::int64_t in_dim, std::int64_t out_dim, std::uint64_t seed) {
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_dim + out_dim));
  return Tensor::randn({in_dim, out_dim}, seed, stddev);
}

}  // namespace

Linear::Linear(std::int64_t in_dim, std::int64_t out_dim, std::uint64_t seed)
    : w_(make_leaf(glorot(in_dim, out_dim, seed), true, "weight")),
      b_(make_leaf(Tensor::zeros({out_dim}), true, "bias")) {}

Var Linear::forward(ExecContext& ctx, const Var& x) const {
  return add_bias(ctx, matmul(ctx, x, w_), b_);
}

GcnLayer::GcnLayer(std::int64_t in_dim, std::int64_t out_dim, bool final_layer,
                   std::uint64_t seed, std::string normalization)
    : linear_(in_dim, out_dim, seed),
      final_layer_(final_layer),
      normalization_(std::move(normalization)) {
  FG_CHECK_MSG(normalization_ == "mean" || normalization_ == "sym",
               "gcn normalization must be mean or sym");
}

Var GcnLayer::forward(ExecContext& ctx, const graph::Graph& g,
                      const Var& x) const {
  Var agg;
  if (normalization_ == "mean") {
    agg = spmm_copy_u(ctx, g, x, "mean");
  } else {
    if (cached_graph_uid_ != g.coo().uid) {
      cached_norm_ = make_leaf(symmetric_norm_weights(g), false, "gcn_norm");
      cached_graph_uid_ = g.coo().uid;
    }
    agg = spmm_u_mul_e(ctx, g, x, cached_norm_);
  }
  Var h = linear_.forward(ctx, agg);
  return final_layer_ ? h : relu(ctx, h);
}

SageLayer::SageLayer(std::int64_t in_dim, std::int64_t out_dim,
                     std::string aggregator, bool final_layer,
                     std::uint64_t seed)
    : self_(in_dim, out_dim, seed),
      neigh_(in_dim, out_dim, seed + 1),
      aggregator_(std::move(aggregator)),
      final_layer_(final_layer) {
  FG_CHECK_MSG(aggregator_ == "mean" || aggregator_ == "max",
               "sage aggregator must be mean or max");
}

Var GcnLayer::forward(ExecContext& ctx, const sample::Block& block,
                      const Var& x) const {
  FG_CHECK_MSG(normalization_ == "mean",
               "block forward supports mean normalization only");
  Var agg = block_spmm_copy_u(ctx, block, x, "mean");
  Var h = linear_.forward(ctx, agg);
  return final_layer_ ? h : relu(ctx, h);
}

Var SageLayer::forward(ExecContext& ctx, const graph::Graph& g,
                       const Var& x) const {
  Var agg = spmm_copy_u(ctx, g, x, aggregator_);
  Var h = add(ctx, self_.forward(ctx, x), neigh_.forward(ctx, agg));
  return final_layer_ ? h : relu(ctx, h);
}

Var SageLayer::forward(ExecContext& ctx, const sample::Block& block,
                       const Var& x) const {
  Var agg = block_spmm_copy_u(ctx, block, x, aggregator_);
  // dst-then-src: the destinations' own features are x's first num_dst rows.
  Var x_dst = slice_rows(ctx, x, 0, block.num_dst());
  Var h = add(ctx, self_.forward(ctx, x_dst), neigh_.forward(ctx, agg));
  return final_layer_ ? h : relu(ctx, h);
}

std::vector<Var> SageLayer::parameters() const {
  std::vector<Var> params = self_.parameters();
  for (const auto& p : neigh_.parameters()) params.push_back(p);
  return params;
}

GatLayer::GatLayer(std::int64_t in_dim, std::int64_t out_dim, bool final_layer,
                   std::uint64_t seed, int num_heads)
    : final_layer_(final_layer) {
  FG_CHECK(num_heads >= 1);
  heads_.reserve(static_cast<std::size_t>(num_heads));
  for (int h = 0; h < num_heads; ++h)
    heads_.emplace_back(in_dim, out_dim,
                        seed + static_cast<std::uint64_t>(h) * 97);
}

std::vector<Var> GatLayer::parameters() const {
  std::vector<Var> params;
  for (const auto& head : heads_)
    for (const auto& p : head.parameters()) params.push_back(p);
  return params;
}

Var GatLayer::forward(ExecContext& ctx, const graph::Graph& g,
                      const Var& x) const {
  Var sum;
  for (const auto& head : heads_) {
    Var z = head.forward(ctx, x);
    // Scaled dot-product attention (Sec. II-A / Fig. 4a) — scaling by
    // 1/sqrt(d) keeps the softmax in a trainable range.
    const float s =
        1.0f / std::sqrt(static_cast<float>(z->value().row_size()));
    Var h;
    if (ctx.backend == SparseBackend::kFused) {
      // One fused SDDMM -> edge-softmax -> SpMM pass per destination row —
      // the core engine on kCpu, the fused gpusim kernel on kGpuSim (one
      // simulated launch and traversal instead of three).
      h = gat_attention(ctx, g, z, s);
    } else {
      // Composed chain: the materialize baseline (Table VI).
      Var logits = scale(ctx, sddmm_dot(ctx, g, z), s);
      Var alpha = edge_softmax(ctx, g, logits);
      h = spmm_u_mul_e(ctx, g, z, alpha);
    }
    sum = sum == nullptr ? h : add(ctx, sum, h);
  }
  Var h = heads_.size() == 1
              ? sum
              : scale(ctx, sum, 1.0f / static_cast<float>(heads_.size()));
  return final_layer_ ? h : relu(ctx, h);
}

Model::Model(const std::string& kind, std::int64_t in_dim, std::int64_t hidden,
             std::int64_t num_classes, std::uint64_t seed)
    : kind_(kind) {
  if (kind == "gcn") {
    gcn1_ = std::make_shared<GcnLayer>(in_dim, hidden, false, seed);
    gcn2_ = std::make_shared<GcnLayer>(hidden, num_classes, true, seed + 10);
    for (const auto& p : gcn1_->parameters()) params_.push_back(p);
    for (const auto& p : gcn2_->parameters()) params_.push_back(p);
  } else if (kind == "sage-mean" || kind == "sage-max") {
    const std::string agg = kind == "sage-mean" ? "mean" : "max";
    sage1_ = std::make_shared<SageLayer>(in_dim, hidden, agg, false, seed);
    sage2_ =
        std::make_shared<SageLayer>(hidden, num_classes, agg, true, seed + 10);
    for (const auto& p : sage1_->parameters()) params_.push_back(p);
    for (const auto& p : sage2_->parameters()) params_.push_back(p);
  } else if (kind == "gat") {
    gat1_ = std::make_shared<GatLayer>(in_dim, hidden, false, seed);
    gat2_ = std::make_shared<GatLayer>(hidden, num_classes, true, seed + 10);
    for (const auto& p : gat1_->parameters()) params_.push_back(p);
    for (const auto& p : gat2_->parameters()) params_.push_back(p);
  } else {
    FG_CHECK_MSG(false, "unknown model kind (gcn/sage-mean/sage-max/gat)");
  }
}

Var Model::forward(ExecContext& ctx, const graph::Graph& g,
                   const Var& x) const {
  Var h;
  if (gcn1_) {
    h = gcn2_->forward(ctx, g, gcn1_->forward(ctx, g, x));
  } else if (sage1_) {
    h = sage2_->forward(ctx, g, sage1_->forward(ctx, g, x));
  } else {
    h = gat2_->forward(ctx, g, gat1_->forward(ctx, g, x));
  }
  return log_softmax(ctx, h);
}

Var Model::forward(ExecContext& ctx, const sample::MinibatchBlocks& mfg,
                   const Var& x) const {
  FG_CHECK_MSG(mfg.blocks.size() == 2,
               "2-layer models need exactly 2 blocks per minibatch");
  Var h;
  if (gcn1_) {
    h = gcn2_->forward(ctx, mfg.blocks[1],
                       gcn1_->forward(ctx, mfg.blocks[0], x));
  } else if (sage1_) {
    h = sage2_->forward(ctx, mfg.blocks[1],
                        sage1_->forward(ctx, mfg.blocks[0], x));
  } else {
    FG_CHECK_MSG(false,
                 "minibatch block inference supports gcn and sage models");
  }
  return log_softmax(ctx, h);
}

}  // namespace featgraph::minidgl
