// Full-batch training / inference driver for the end-to-end experiments
// (paper Table VI and the Sec. V-E accuracy check).
#pragma once

#include <string>
#include <vector>

#include "minidgl/data.hpp"
#include "minidgl/modules.hpp"
#include "minidgl/optim.hpp"
#include "sample/pipeline.hpp"

namespace featgraph::minidgl {

struct EpochResult {
  float loss = 0.0f;
  double train_accuracy = 0.0;
  /// Wall-clock seconds on CPU; simulated seconds on kGpuSim.
  double seconds = 0.0;
  /// Materialized message bytes this epoch (0 for the fused backend).
  double materialized_bytes = 0.0;
};

/// Knobs of one minibatch block-inference epoch (the serving loop).
struct MinibatchInferOptions {
  /// Per-layer fanouts, input layer first; {-1, -1} = full fanout (exactly
  /// reproduces full-graph inference, bit for bit).
  sample::SamplerConfig sampler{{-1, -1}, false, 1};
  std::int64_t batch_size = 256;
  int queue_capacity = 2;
  /// Overlap sampling + gather of batch i+1 with block compute of batch i.
  bool pipelined = true;
  /// Grid-tune the first block of each shape class (default: O(1)
  /// heuristic). Either way the winner is memoized in the shape-class
  /// schedule cache, so tuning cost amortizes across the batch stream.
  bool tune_schedules = false;
};

struct MinibatchInferResult {
  /// Accuracy over the seed rows this epoch inferred.
  double accuracy = 0.0;
  /// Wall-clock seconds on CPU; simulated seconds on kGpuSim.
  double seconds = 0.0;
  /// Per-seed log-probabilities, row i for seed rows[i].
  tensor::Tensor log_probs;
  sample::PipelineStats pipeline;
  std::int64_t schedule_cache_hits = 0;
  std::int64_t schedule_cache_misses = 0;
};

class Trainer {
 public:
  Trainer(const ClassificationData& data, Model model, ExecContext ctx,
          float lr = 0.01f);

  /// One full-batch training epoch (forward + loss + backward + Adam step).
  EpochResult train_epoch();

  /// One inference pass (forward only), reporting test accuracy.
  EpochResult infer();

  /// Minibatch block inference over the seed vertices `rows` (default: the
  /// test split): neighbor sampling + SIMD feature gather feed the pipelined
  /// serving loop; each batch runs the model's block forward. GCN and
  /// GraphSage models only.
  MinibatchInferResult infer_minibatch(const MinibatchInferOptions& options,
                                       const std::vector<std::int64_t>& rows);
  MinibatchInferResult infer_minibatch(const MinibatchInferOptions& options);

  /// Test accuracy of the current parameters.
  double test_accuracy();

  ExecContext& context() { return ctx_; }
  const Model& model() const { return model_; }

 private:
  const ClassificationData* data_;
  Model model_;
  ExecContext ctx_;
  Adam optimizer_;
};

/// Trains for `epochs` and returns per-epoch results.
std::vector<EpochResult> train(Trainer& trainer, int epochs);

}  // namespace featgraph::minidgl
