// Full-batch training / inference driver for the end-to-end experiments
// (paper Table VI and the Sec. V-E accuracy check).
#pragma once

#include <string>
#include <vector>

#include "minidgl/data.hpp"
#include "minidgl/modules.hpp"
#include "minidgl/optim.hpp"

namespace featgraph::minidgl {

struct EpochResult {
  float loss = 0.0f;
  double train_accuracy = 0.0;
  /// Wall-clock seconds on CPU; simulated seconds on kGpuSim.
  double seconds = 0.0;
  /// Materialized message bytes this epoch (0 for the fused backend).
  double materialized_bytes = 0.0;
};

class Trainer {
 public:
  Trainer(const ClassificationData& data, Model model, ExecContext ctx,
          float lr = 0.01f);

  /// One full-batch training epoch (forward + loss + backward + Adam step).
  EpochResult train_epoch();

  /// One inference pass (forward only), reporting test accuracy.
  EpochResult infer();

  /// Test accuracy of the current parameters.
  double test_accuracy();

  ExecContext& context() { return ctx_; }
  const Model& model() const { return model_; }

 private:
  const ClassificationData* data_;
  Model model_;
  ExecContext ctx_;
  Adam optimizer_;
};

/// Trains for `epochs` and returns per-epoch results.
std::vector<EpochResult> train(Trainer& trainer, int epochs);

}  // namespace featgraph::minidgl
