// Full-batch training / inference driver for the end-to-end experiments
// (paper Table VI and the Sec. V-E accuracy check).
#pragma once

#include <string>
#include <vector>

#include "minidgl/data.hpp"
#include "minidgl/modules.hpp"
#include "minidgl/optim.hpp"
#include "sample/pipeline.hpp"
#include "serve/feature_cache.hpp"
#include "serve/server.hpp"

namespace featgraph::minidgl {

struct EpochResult {
  float loss = 0.0f;
  double train_accuracy = 0.0;
  /// Wall-clock seconds on CPU; simulated seconds on kGpuSim.
  double seconds = 0.0;
  /// Materialized message bytes this epoch (0 for the fused backend).
  double materialized_bytes = 0.0;
  /// High-water of planned live intermediate bytes (lazy-graph buffer
  /// planner) across the epoch's forward runs.
  double peak_bytes = 0.0;
};

/// Knobs of one minibatch block-inference epoch (the serving loop).
struct MinibatchInferOptions {
  /// Per-layer fanouts, input layer first; {-1, -1} = full fanout (exactly
  /// reproduces full-graph inference, bit for bit).
  sample::SamplerConfig sampler{{-1, -1}, false, 1};
  std::int64_t batch_size = 256;
  int queue_capacity = 2;
  /// Overlap sampling + gather of batch i+1 with block compute of batch i.
  bool pipelined = true;
  /// Grid-tune the first block of each shape class (default: O(1)
  /// heuristic). Either way the winner is memoized in the shape-class
  /// schedule cache, so tuning cost amortizes across the batch stream.
  bool tune_schedules = false;
};

struct MinibatchInferResult {
  /// Accuracy over the seed rows this epoch inferred.
  double accuracy = 0.0;
  /// Wall-clock seconds on CPU; simulated seconds on kGpuSim.
  double seconds = 0.0;
  /// Per-seed log-probabilities, row i for seed rows[i].
  tensor::Tensor log_probs;
  sample::PipelineStats pipeline;
  std::int64_t schedule_cache_hits = 0;
  std::int64_t schedule_cache_misses = 0;
  /// High-water of planned live intermediate bytes over the block forwards.
  double peak_bytes = 0.0;
};

/// Knobs of the multi-tenant per-request serving path (src/serve).
struct ServeRequestsOptions {
  /// Sampler config every request is served under; admission.rng_stream is
  /// the shared batch_index (solo == coalesced by the per-vertex stream
  /// contract).
  sample::SamplerConfig sampler{{-1, -1}, false, 1};
  serve::ServeOptions admission;
  /// false = serve every request as its own batch (the solo baseline the
  /// coalesced path is pinned bit-identical against).
  bool coalesce = true;
  /// Hot-vertex feature cache in front of the input gather; 0 disables.
  std::int64_t feature_cache_rows = 4096;
  /// Grid-tune the first block of each shape class (as infer_minibatch).
  bool tune_schedules = false;
  /// Schedule-IR program every served block launch runs under (set as
  /// ExecContext::block_schedule_ir for the duration of the call, then
  /// restored). A shard(S) program here runs the serving path
  /// shard-parallel with work stealing (parallel/shard_exec.hpp) — S is
  /// clamped to each block's row count, so one program serves every coalesced
  /// batch shape; outputs stay bit-identical to the unsharded baseline.
  std::shared_ptr<const core::ScheduleIr> block_schedule_ir;
};

struct ServeRequestsResult {
  /// outputs[r]: per-seed log-probabilities of request r, row k for seed k.
  std::vector<tensor::Tensor> outputs;
  serve::ServeStats stats;
  serve::FeatureCache::Stats cache;
  std::int64_t schedule_cache_hits = 0;
  std::int64_t schedule_cache_misses = 0;
  double seconds = 0.0;
};

class Trainer {
 public:
  Trainer(const ClassificationData& data, Model model, ExecContext ctx,
          float lr = 0.01f);

  /// One full-batch training epoch (forward + loss + backward + Adam step).
  EpochResult train_epoch();

  /// One inference pass (forward only), reporting test accuracy.
  EpochResult infer();

  /// Minibatch block inference over the seed vertices `rows` (default: the
  /// test split): neighbor sampling + SIMD feature gather feed the pipelined
  /// serving loop; each batch runs the model's block forward. GCN and
  /// GraphSage models only.
  MinibatchInferResult infer_minibatch(const MinibatchInferOptions& options,
                                       const std::vector<std::int64_t>& rows);
  MinibatchInferResult infer_minibatch(const MinibatchInferOptions& options);

  /// Multi-tenant per-request inference (src/serve): each entry of
  /// `request_seeds` is one tenant query (a duplicate-free seed set); with
  /// options.coalesce the requests are merged into shared minibatches under
  /// the admission caps, sampled/gathered/computed ONCE, and scattered back
  /// — each request's output rows bit-identical to serving it alone
  /// (options.coalesce = false), feature cache on or off. GCN and GraphSage
  /// models only (same block-forward constraint as infer_minibatch).
  ServeRequestsResult serve_requests(
      const ServeRequestsOptions& options,
      const std::vector<std::vector<std::int64_t>>& request_seeds);

  /// Builds the serving compute callback over this trainer's model +
  /// context (block forward -> log-probabilities per merged seed), for
  /// callers wiring their own serve::ServingEngine / serve::Server. The
  /// callback borrows the trainer; it must not outlive it. `schedule_cache`
  /// (optional) routes the block launches through a shape-class memo as
  /// infer_minibatch does.
  serve::BatchComputeFn make_serve_compute(
      sample::BlockScheduleCache* schedule_cache, bool tune_schedules);

  /// Test accuracy of the current parameters.
  double test_accuracy();

  ExecContext& context() { return ctx_; }
  const Model& model() const { return model_; }

 private:
  const ClassificationData* data_;
  Model model_;
  ExecContext ctx_;
  Adam optimizer_;
};

/// Trains for `epochs` and returns per-epoch results.
std::vector<EpochResult> train(Trainer& trainer, int epochs);

}  // namespace featgraph::minidgl
