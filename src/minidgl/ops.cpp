#include "minidgl/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/attention.hpp"
#include "core/schedule_ir.hpp"
#include "core/sddmm.hpp"
#include "core/spmm.hpp"
#include "core/tuner.hpp"
#include "gpusim/attention_gpu.hpp"
#include "gpusim/sddmm_gpu.hpp"
#include "gpusim/spmm_gpu.hpp"
#include "parallel/parallel_for.hpp"
#include "sample/block.hpp"
#include "sample/pipeline.hpp"
#include "support/check.hpp"
#include "tensor/ops.hpp"

namespace featgraph::minidgl {

namespace {

using graph::eid_t;
using graph::vid_t;
using tensor::Tensor;

void charge_dense(ExecContext& ctx, double flops, double bytes) {
  if (ctx.device == Device::kGpuSim)
    ctx.sim_seconds += gpusim::dense_op_seconds(flops, bytes, ctx.gpu);
}

/// Fused generalized SpMM: native on CPU, functional + simulated cost on
/// gpusim. `adj` may be the in-CSR (forward) or out-CSR (gradients).
Tensor run_spmm(ExecContext& ctx, const graph::Csr& adj,
                std::string_view msg_op, std::string_view reduce_op,
                const core::SpmmOperands& operands, std::int64_t d_out) {
  if (ctx.device == Device::kGpuSim) {
    core::GpuSpmmSchedule sched;
    sched.num_blocks = std::max<std::int64_t>(1024, adj.num_rows / 4);
    // 256 threads regardless of feature width: narrow features pack
    // multiple rows per block, so the grid always fills the device.
    sched.threads_per_block = 256;
    auto result = gpusim::spmm_gpu(adj, msg_op, reduce_op, sched, operands,
                                   ctx.gpu);
    ctx.sim_seconds += result.cost.total_s;
    return std::move(result.out);
  }
  core::CpuSpmmSchedule sched;
  if (ctx.schedule_cache != nullptr) {
    // Shape-class memo (the minibatch pipeline): the tuner/heuristic runs
    // once per (log2 rows, log2 nnz, width, threads, program) class, then
    // the stream of same-shaped blocks reuses the winner. The context's
    // Schedule-IR program (or the empty default) hashes into the key so two
    // programs over one geometry get distinct entries. num_partitions is
    // pinned to 1 (see ExecContext::schedule_cache) — also what keeps
    // full-fanout block inference bit-identical to the unpartitioned
    // full-graph path.
    core::CpuSpmmSchedule probe;
    probe.ir = ctx.block_schedule_ir;
    sched = ctx.schedule_cache->schedule_for(
        adj.num_rows, adj.nnz(), d_out, ctx.num_threads,
        core::schedule_program_hash(probe), [&] {
          if (ctx.tune_block_schedules) {
            return core::tune_spmm(adj, msg_op, reduce_op, operands,
                                   core::default_spmm_candidates(
                                       d_out, ctx.num_threads))
                .best;
          }
          return core::heuristic_spmm_schedule(adj, d_out, ctx.num_threads);
        });
    sched.num_partitions = 1;
  } else {
    sched = core::heuristic_spmm_schedule(adj, d_out, ctx.num_threads);
  }
  // The context's IR program, when present, overrides the flat knobs above
  // (lowering treats an attached program as authoritative).
  if (ctx.block_schedule_ir != nullptr) sched.ir = ctx.block_schedule_ir;
  return core::spmm(adj, msg_op, reduce_op, sched, operands);
}

Tensor run_sddmm_dot(ExecContext& ctx, const graph::Coo& coo, const Tensor& a,
                     const Tensor& b) {
  core::SddmmOperands ops{&a, &b};
  if (ctx.device == Device::kGpuSim) {
    core::GpuSddmmSchedule sched;  // tree reduction on by default
    auto result = gpusim::sddmm_gpu(coo, "dot", sched, ops, ctx.gpu);
    ctx.sim_seconds += result.cost.total_s;
    return std::move(result.out);
  }
  core::CpuSddmmSchedule sched;
  sched.num_threads = ctx.num_threads;
  return core::sddmm(coo, "dot", sched, ops);
}

// --- materialize-backend primitives (the DGL-without-FeatGraph path) -------

/// M[e, :] = x[idx[e], :]. Books the materialized tensor and its traffic.
Tensor gather_rows(ExecContext& ctx, const Tensor& x,
                   const std::vector<vid_t>& idx) {
  const std::int64_t d = x.row_size();
  const auto m = static_cast<std::int64_t>(idx.size());
  Tensor out({m, d});
  parallel::parallel_for_ranges(
      0, m, ctx.num_threads, [&](std::int64_t e0, std::int64_t e1) {
        for (std::int64_t e = e0; e < e1; ++e) {
          const float* src = x.row(idx[static_cast<std::size_t>(e)]);
          float* dst = out.row(e);
          for (std::int64_t j = 0; j < d; ++j) dst[j] = src[j];
        }
      });
  const double bytes = static_cast<double>(m) * d * 4.0;
  ctx.materialized_bytes += bytes;
  charge_dense(ctx, 0.0, 2.0 * bytes + m * 4.0);
  return out;
}

/// out[v, :] = reduce over in-edges e of M[edge_id(e), :]. For max, records
/// the winning edge id per output element in `arg_eid` when non-null.
Tensor segment_reduce(ExecContext& ctx, const graph::Csr& in_csr,
                      const Tensor& msgs, const std::string& reduce,
                      std::vector<eid_t>* arg_eid) {
  const std::int64_t d = msgs.row_size();
  const std::int64_t n = in_csr.num_rows;
  Tensor out({n, d});
  if (arg_eid != nullptr) arg_eid->assign(static_cast<std::size_t>(n * d), -1);
  parallel::parallel_for_ranges(
      0, n, ctx.num_threads, [&](std::int64_t v0, std::int64_t v1) {
        for (std::int64_t v = v0; v < v1; ++v) {
          float* ov = out.row(v);
          const std::int64_t lo = in_csr.indptr[v], hi = in_csr.indptr[v + 1];
          if (lo == hi) {
            for (std::int64_t j = 0; j < d; ++j) ov[j] = 0.0f;
            continue;
          }
          const bool is_max = reduce == "max";
          for (std::int64_t j = 0; j < d; ++j)
            ov[j] = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;
          for (std::int64_t i = lo; i < hi; ++i) {
            const eid_t e = in_csr.edge_ids[static_cast<std::size_t>(i)];
            const float* me = msgs.row(e);
            for (std::int64_t j = 0; j < d; ++j) {
              if (is_max) {
                if (me[j] > ov[j]) {
                  ov[j] = me[j];
                  if (arg_eid != nullptr)
                    (*arg_eid)[static_cast<std::size_t>(v * d + j)] = e;
                }
              } else {
                ov[j] += me[j];
              }
            }
          }
          if (reduce == "mean") {
            const float inv = 1.0f / static_cast<float>(hi - lo);
            for (std::int64_t j = 0; j < d; ++j) ov[j] *= inv;
          }
        }
      });
  charge_dense(ctx, static_cast<double>(in_csr.nnz()) * d,
               static_cast<double>(in_csr.nnz()) * d * 4.0 +
                   static_cast<double>(n) * d * 4.0);
  return out;
}

/// dx[u, :] = sum over out-edges e of u of dM[edge_id(e), :] — the backward
/// of gather_rows-by-source, computed race-free over the out-CSR.
Tensor scatter_rows_by_src(ExecContext& ctx, const graph::Csr& out_csr,
                           const Tensor& d_msgs) {
  const std::int64_t d = d_msgs.row_size();
  Tensor out = Tensor::zeros({out_csr.num_rows, d});
  parallel::parallel_for_ranges(
      0, out_csr.num_rows, ctx.num_threads,
      [&](std::int64_t u0, std::int64_t u1) {
        for (std::int64_t u = u0; u < u1; ++u) {
          float* ou = out.row(u);
          for (std::int64_t i = out_csr.indptr[u]; i < out_csr.indptr[u + 1];
               ++i) {
            const float* me =
                d_msgs.row(out_csr.edge_ids[static_cast<std::size_t>(i)]);
            for (std::int64_t j = 0; j < d; ++j) ou[j] += me[j];
          }
        }
      });
  charge_dense(ctx, static_cast<double>(out_csr.nnz()) * d,
               static_cast<double>(out_csr.nnz()) * d * 4.0 +
                   static_cast<double>(out_csr.num_rows) * d * 4.0);
  return out;
}

/// Scales each row v of `t` (n x d) by s[v].
Tensor scale_rows(const Tensor& t, const std::vector<float>& s) {
  Tensor out(t.shape());
  const std::int64_t d = t.row_size();
  for (std::int64_t v = 0; v < t.rows(); ++v) {
    const float* src = t.row(v);
    float* dst = out.row(v);
    for (std::int64_t j = 0; j < d; ++j) dst[j] = src[j] * s[static_cast<std::size_t>(v)];
  }
  return out;
}

std::vector<float> inverse_in_degrees(const graph::Csr& in_csr) {
  std::vector<float> inv(static_cast<std::size_t>(in_csr.num_rows), 0.0f);
  for (vid_t v = 0; v < in_csr.num_rows; ++v) {
    const auto deg = in_csr.degree(v);
    if (deg > 0) inv[static_cast<std::size_t>(v)] = 1.0f / static_cast<float>(deg);
  }
  return inv;
}

}  // namespace

// --- dense ops --------------------------------------------------------------

Var matmul(ExecContext& ctx, const Var& a, const Var& b) {
  const std::int64_t m = a->value().shape(0), k = a->value().shape(1),
                     n = b->value().shape(1);
  Tensor value = tensor::matmul(a->value(), b->value(), ctx.num_threads);
  charge_dense(ctx, 2.0 * m * k * n,
               4.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n +
                      static_cast<double>(m) * n));
  ExecContext* c = &ctx;
  return make_op(
      std::move(value), {a, b},
      [a, b, c, m, k, n](Node& node) {
        if (a->requires_grad()) {
          a->accumulate_grad(
              tensor::matmul_transposed(node.grad(), b->value(), c->num_threads));
          charge_dense(*c, 2.0 * m * k * n, 0.0);
        }
        if (b->requires_grad()) {
          Tensor at = tensor::transpose(a->value());
          b->accumulate_grad(tensor::matmul(at, node.grad(), c->num_threads));
          charge_dense(*c, 2.0 * m * k * n, 0.0);
        }
      },
      "matmul");
}

Var add_bias(ExecContext& ctx, const Var& a, const Var& bias) {
  Tensor value = tensor::add_bias(a->value(), bias->value());
  charge_dense(ctx, a->value().numel(), a->value().numel() * 8.0);
  return make_op(
      std::move(value), {a, bias},
      [a, bias](Node& node) {
        if (a->requires_grad()) a->accumulate_grad(node.grad());
        if (bias->requires_grad()) {
          const std::int64_t n = node.grad().shape(1);
          Tensor db = Tensor::zeros({n});
          for (std::int64_t i = 0; i < node.grad().shape(0); ++i) {
            const float* g = node.grad().row(i);
            for (std::int64_t j = 0; j < n; ++j) db.at(j) += g[j];
          }
          bias->accumulate_grad(db);
        }
      },
      "add_bias");
}

Var relu(ExecContext& ctx, const Var& x) {
  Tensor value = tensor::relu(x->value());
  charge_dense(ctx, x->value().numel(), x->value().numel() * 8.0);
  return make_op(
      std::move(value), {x},
      [x](Node& node) {
        x->accumulate_grad(tensor::relu_backward(node.grad(), x->value()));
      },
      "relu");
}

Var leaky_relu(ExecContext& ctx, const Var& x, float slope) {
  Tensor value = tensor::leaky_relu(x->value(), slope);
  charge_dense(ctx, x->value().numel(), x->value().numel() * 8.0);
  return make_op(
      std::move(value), {x},
      [x, slope](Node& node) {
        x->accumulate_grad(
            tensor::leaky_relu_backward(node.grad(), x->value(), slope));
      },
      "leaky_relu");
}

Var add(ExecContext& ctx, const Var& a, const Var& b) {
  Tensor value = tensor::add(a->value(), b->value());
  charge_dense(ctx, a->value().numel(), a->value().numel() * 12.0);
  return make_op(
      std::move(value), {a, b},
      [a, b](Node& node) {
        if (a->requires_grad()) a->accumulate_grad(node.grad());
        if (b->requires_grad()) b->accumulate_grad(node.grad());
      },
      "add");
}

Var scale(ExecContext& ctx, const Var& a, float s) {
  Tensor value = tensor::scale(a->value(), s);
  charge_dense(ctx, a->value().numel(), a->value().numel() * 8.0);
  return make_op(
      std::move(value), {a},
      [a, s](Node& node) {
        a->accumulate_grad(tensor::scale(node.grad(), s));
      },
      "scale");
}

Var log_softmax(ExecContext& ctx, const Var& x) {
  Tensor value = tensor::log_softmax_rows(x->value());
  charge_dense(ctx, 4.0 * x->value().numel(), x->value().numel() * 8.0);
  Tensor ls = value.clone();
  return make_op(
      std::move(value), {x},
      [x, ls = std::move(ls)](Node& node) {
        // dx = dY - softmax(x) * rowsum(dY)
        const std::int64_t n = ls.shape(0), c = ls.shape(1);
        Tensor dx({n, c});
        for (std::int64_t i = 0; i < n; ++i) {
          const float* g = node.grad().row(i);
          const float* l = ls.row(i);
          float gsum = 0.0f;
          for (std::int64_t j = 0; j < c; ++j) gsum += g[j];
          float* d = dx.row(i);
          for (std::int64_t j = 0; j < c; ++j)
            d[j] = g[j] - std::exp(l[j]) * gsum;
        }
        x->accumulate_grad(dx);
      },
      "log_softmax");
}

Var nll_loss(ExecContext& ctx, const Var& log_probs,
             const std::vector<std::int32_t>& labels,
             const std::vector<std::int64_t>& rows) {
  FG_CHECK(!rows.empty());
  double loss = 0.0;
  for (std::int64_t r : rows)
    loss -= log_probs->value().at(r, labels[static_cast<std::size_t>(r)]);
  Tensor value({1});
  value.at(0) = static_cast<float>(loss / static_cast<double>(rows.size()));
  charge_dense(ctx, static_cast<double>(rows.size()), rows.size() * 8.0);
  return make_op(
      std::move(value), {log_probs},
      [log_probs, labels, rows](Node& node) {
        const float seed = node.grad().at(0);
        Tensor d = Tensor::zeros(log_probs->value().shape());
        const float inv = seed / static_cast<float>(rows.size());
        for (std::int64_t r : rows)
          d.at(r, labels[static_cast<std::size_t>(r)]) -= inv;
        log_probs->accumulate_grad(d);
      },
      "nll_loss");
}

// --- sparse ops ---------------------------------------------------------

namespace {

/// Fused copy_u/max with argmax tracking over any destination-major CSR —
/// shared by the full-graph and block paths (the adjacency is the only
/// difference). The argmax holds source ids in `adj`'s column space, which
/// is what the gradient scatter needs in both cases.
Var fused_copy_u_max(ExecContext& ctx, const graph::Csr& adj, const Var& x,
                     std::string op_name) {
  const std::int64_t d = x->value().row_size();
  ExecContext* c = &ctx;
  auto arg = std::make_shared<std::vector<vid_t>>();
  Tensor value =
      core::spmm_copy_u_max_arg(adj, x->value(), arg.get(), ctx.num_threads);
  if (ctx.device == Device::kGpuSim) {
    // Same traffic as a fused max-SpMM; charge it.
    core::GpuSpmmSchedule sched;
    auto r = gpusim::spmm_gpu(adj, "copy_u", "max", sched,
                              {&x->value(), nullptr, nullptr}, ctx.gpu);
    ctx.sim_seconds += r.cost.total_s;
  }
  return make_op(
      std::move(value), {x},
      [x, arg, c, d](Node& node) {
        Tensor dx = Tensor::zeros(x->value().shape());
        const std::int64_t n = node.grad().rows();
        for (std::int64_t v = 0; v < n; ++v) {
          const float* gv = node.grad().row(v);
          for (std::int64_t j = 0; j < d; ++j) {
            const vid_t u = (*arg)[static_cast<std::size_t>(v * d + j)];
            if (u >= 0) dx.at(u, j) += gv[j];
          }
        }
        charge_dense(*c, 0.0, node.grad().numel() * 12.0);
        x->accumulate_grad(dx);
      },
      std::move(op_name));
}

}  // namespace

Var spmm_copy_u(ExecContext& ctx, const graph::Graph& g, const Var& x,
                const std::string& reduce) {
  FG_CHECK_MSG(reduce == "sum" || reduce == "mean" || reduce == "max",
               "spmm_copy_u supports sum/mean/max");
  const std::int64_t d = x->value().row_size();
  ExecContext* c = &ctx;
  const graph::Graph* gp = &g;

  if (reduce == "max") {
    // Both backends need the argmax for the gradient; the fused kernel
    // tracks the winning source, the materialize path the winning edge.
    if (ctx.backend == SparseBackend::kFused) {
      return fused_copy_u_max(ctx, g.in_csr(), x, "spmm_copy_u_max");
    }
    // Materialize: gather messages, segment-max with edge arg.
    Tensor msgs = gather_rows(ctx, x->value(), g.coo().src);
    auto arg = std::make_shared<std::vector<eid_t>>();
    Tensor value = segment_reduce(ctx, g.in_csr(), msgs, "max", arg.get());
    return make_op(
        std::move(value), {x},
        [x, arg, c, gp, d](Node& node) {
          const auto m = gp->num_edges();
          Tensor d_msgs = Tensor::zeros({m, d});
          c->materialized_bytes += static_cast<double>(m) * d * 4.0;
          const std::int64_t n = node.grad().rows();
          for (std::int64_t v = 0; v < n; ++v) {
            const float* gv = node.grad().row(v);
            for (std::int64_t j = 0; j < d; ++j) {
              const eid_t e = (*arg)[static_cast<std::size_t>(v * d + j)];
              if (e >= 0) d_msgs.at(e * d + j) += gv[j];
            }
          }
          x->accumulate_grad(scatter_rows_by_src(*c, gp->out_csr(), d_msgs));
        },
        "spmm_copy_u_max_mat");
  }

  // sum / mean.
  Tensor value;
  if (ctx.backend == SparseBackend::kFused) {
    value = run_spmm(ctx, g.in_csr(), "copy_u", reduce,
                     {&x->value(), nullptr, nullptr}, d);
  } else {
    Tensor msgs = gather_rows(ctx, x->value(), g.coo().src);
    value = segment_reduce(ctx, g.in_csr(), msgs, reduce, nullptr);
  }
  const bool is_mean = reduce == "mean";
  return make_op(
      std::move(value), {x},
      [x, c, gp, d, is_mean](Node& node) {
        // d(loss)/dx[u] = sum over out-edges (u->v) of dout[v] (scaled by
        // 1/in-deg(v) for mean): an SpMM over the reversed graph.
        Tensor dout = node.grad();
        if (is_mean)
          dout = scale_rows(node.grad(), inverse_in_degrees(gp->in_csr()));
        if (c->backend == SparseBackend::kFused) {
          x->accumulate_grad(run_spmm(*c, gp->out_csr(), "copy_u", "sum",
                                      {&dout, nullptr, nullptr}, d));
        } else {
          Tensor d_msgs = gather_rows(*c, dout, gp->coo().dst);
          x->accumulate_grad(scatter_rows_by_src(*c, gp->out_csr(), d_msgs));
        }
      },
      "spmm_copy_u_" + reduce);
}

Var block_spmm_copy_u(ExecContext& ctx, const sample::Block& block,
                      const Var& x, const std::string& reduce) {
  FG_CHECK_MSG(reduce == "sum" || reduce == "mean" || reduce == "max",
               "block_spmm_copy_u supports sum/mean/max");
  FG_CHECK_MSG(x->value().rows() == block.num_src(),
               "x must hold one row per block source node");
  const std::int64_t d = x->value().row_size();
  ExecContext* c = &ctx;
  const graph::Csr& adj = block.adj;

  if (reduce == "max") {
    // Same fused max-with-argmax kernel the full-graph path runs; the
    // argmax holds block-LOCAL source ids, exactly what the shared
    // gradient scatter needs.
    return fused_copy_u_max(ctx, adj, x, "block_spmm_copy_u_max");
  }

  // sum / mean: block aggregation always runs the fused kernels (the block
  // adjacency is a drop-in Csr for generalized_spmm; materialized_bytes
  // stays 0 — serving never materializes messages).
  Tensor value = run_spmm(ctx, adj, "copy_u", reduce,
                          {&x->value(), nullptr, nullptr}, d);
  const bool is_mean = reduce == "mean";
  // The tape must not dangle into the caller's Block (batches are destroyed
  // right after the forward in the serving loop), so backward captures its
  // own copy of the adjacency — taken only when a gradient can actually
  // flow; pure inference pays nothing.
  std::shared_ptr<const graph::Csr> adj_copy =
      x->requires_grad() ? std::make_shared<graph::Csr>(adj) : nullptr;
  return make_op(
      std::move(value), {x},
      [x, c, d, is_mean, adj_copy](Node& node) {
        FG_CHECK_MSG(adj_copy != nullptr,
                     "block_spmm_copy_u backward without requires_grad input");
        Tensor dout = node.grad();
        if (is_mean) dout = scale_rows(node.grad(), inverse_in_degrees(*adj_copy));
        // d(loss)/dx[u] = sum over block out-edges (u->v) of dout[v]: an
        // SpMM over the transposed block adjacency.
        const graph::Csr rev = graph::transpose(*adj_copy);
        x->accumulate_grad(
            run_spmm(*c, rev, "copy_u", "sum", {&dout, nullptr, nullptr}, d));
      },
      "block_spmm_copy_u_" + reduce);
}

Var slice_rows(ExecContext& ctx, const Var& x, std::int64_t begin,
               std::int64_t count) {
  FG_CHECK(begin >= 0 && count >= 0 && begin + count <= x->value().rows());
  const std::int64_t d = x->value().row_size();
  Tensor value({count, d});
  std::memcpy(value.data(), x->value().data() + begin * d,
              static_cast<std::size_t>(count * d) * sizeof(float));
  charge_dense(ctx, 0.0, 2.0 * static_cast<double>(count) * d * 4.0);
  return make_op(
      std::move(value), {x},
      [x, begin, count, d](Node& node) {
        Tensor dx = Tensor::zeros(x->value().shape());
        std::memcpy(dx.data() + begin * d, node.grad().data(),
                    static_cast<std::size_t>(count * d) * sizeof(float));
        x->accumulate_grad(dx);
      },
      "slice_rows");
}

Var spmm_u_mul_e(ExecContext& ctx, const graph::Graph& g, const Var& x,
                 const Var& w) {
  FG_CHECK(w->value().numel() == g.num_edges());
  const std::int64_t d = x->value().row_size();
  ExecContext* c = &ctx;
  const graph::Graph* gp = &g;

  Tensor value;
  if (ctx.backend == SparseBackend::kFused) {
    value = run_spmm(ctx, g.in_csr(), "u_mul_e", "sum",
                     {&x->value(), &w->value(), nullptr}, d);
  } else {
    Tensor msgs = gather_rows(ctx, x->value(), g.coo().src);
    for (eid_t e = 0; e < g.num_edges(); ++e) {
      float* me = msgs.row(e);
      const float we = w->value().at(e);
      for (std::int64_t j = 0; j < d; ++j) me[j] *= we;
    }
    charge_dense(ctx, static_cast<double>(g.num_edges()) * d,
                 static_cast<double>(g.num_edges()) * d * 8.0);
    value = segment_reduce(ctx, g.in_csr(), msgs, "sum", nullptr);
  }
  return make_op(
      std::move(value), {x, w},
      [x, w, c, gp, d](Node& node) {
        if (x->requires_grad()) {
          // dx[u] = sum over out-edges of w_e * dout[v]: u_mul_e SpMM on the
          // reversed graph (edge ids are shared between orientations).
          if (c->backend == SparseBackend::kFused) {
            x->accumulate_grad(run_spmm(*c, gp->out_csr(), "u_mul_e", "sum",
                                        {&node.grad(), &w->value(), nullptr},
                                        d));
          } else {
            Tensor d_msgs = gather_rows(*c, node.grad(), gp->coo().dst);
            for (eid_t e = 0; e < gp->num_edges(); ++e) {
              float* me = d_msgs.row(e);
              const float we = w->value().at(e);
              for (std::int64_t j = 0; j < d; ++j) me[j] *= we;
            }
            x->accumulate_grad(scatter_rows_by_src(*c, gp->out_csr(), d_msgs));
          }
        }
        if (w->requires_grad()) {
          // dw_e = <x[u], dout[v]>: the SDDMM pattern (Sec. II-A).
          if (c->backend == SparseBackend::kFused) {
            w->accumulate_grad(
                run_sddmm_dot(*c, gp->coo(), x->value(), node.grad()));
          } else {
            Tensor xu = gather_rows(*c, x->value(), gp->coo().src);
            Tensor gv = gather_rows(*c, node.grad(), gp->coo().dst);
            Tensor dw({gp->num_edges()});
            for (eid_t e = 0; e < gp->num_edges(); ++e) {
              const float* a = xu.row(e);
              const float* b = gv.row(e);
              float acc = 0.0f;
              for (std::int64_t j = 0; j < d; ++j) acc += a[j] * b[j];
              dw.at(e) = acc;
            }
            charge_dense(*c, static_cast<double>(gp->num_edges()) * d * 2.0,
                         static_cast<double>(gp->num_edges()) * d * 8.0);
            w->accumulate_grad(dw);
          }
        }
      },
      "spmm_u_mul_e");
}

Var sddmm_dot(ExecContext& ctx, const graph::Graph& g, const Var& x) {
  const std::int64_t d = x->value().row_size();
  ExecContext* c = &ctx;
  const graph::Graph* gp = &g;

  Tensor value;
  if (ctx.backend == SparseBackend::kFused) {
    value = run_sddmm_dot(ctx, g.coo(), x->value(), x->value());
  } else {
    Tensor xu = gather_rows(ctx, x->value(), g.coo().src);
    Tensor xv = gather_rows(ctx, x->value(), g.coo().dst);
    value = Tensor({g.num_edges()});
    for (eid_t e = 0; e < g.num_edges(); ++e) {
      const float* a = xu.row(e);
      const float* b = xv.row(e);
      float acc = 0.0f;
      for (std::int64_t j = 0; j < d; ++j) acc += a[j] * b[j];
      value.at(e) = acc;
    }
    charge_dense(ctx, static_cast<double>(g.num_edges()) * d * 2.0,
                 static_cast<double>(g.num_edges()) * d * 8.0);
  }
  return make_op(
      std::move(value), {x},
      [x, c, gp, d](Node& node) {
        // d x[u] += g_e x[v] over out-edges; d x[v] += g_e x[u] over
        // in-edges: two u_mul_e SpMMs (the SpMM pattern, Sec. II-A).
        if (c->backend == SparseBackend::kFused) {
          x->accumulate_grad(run_spmm(*c, gp->out_csr(), "u_mul_e", "sum",
                                      {&x->value(), &node.grad(), nullptr}, d));
          x->accumulate_grad(run_spmm(*c, gp->in_csr(), "u_mul_e", "sum",
                                      {&x->value(), &node.grad(), nullptr}, d));
        } else {
          Tensor xv = gather_rows(*c, x->value(), gp->coo().dst);
          Tensor xu = gather_rows(*c, x->value(), gp->coo().src);
          for (eid_t e = 0; e < gp->num_edges(); ++e) {
            const float ge = node.grad().at(e);
            float* pv = xv.row(e);
            float* pu = xu.row(e);
            for (std::int64_t j = 0; j < d; ++j) {
              pv[j] *= ge;
              pu[j] *= ge;
            }
          }
          // xv rows scatter to sources, xu rows scatter to destinations.
          x->accumulate_grad(scatter_rows_by_src(*c, gp->out_csr(), xv));
          Tensor to_dst = scatter_rows_by_src(*c, gp->in_csr(), xu);
          x->accumulate_grad(to_dst);
        }
      },
      "sddmm_dot");
}

Var edge_softmax(ExecContext& ctx, const graph::Graph& g, const Var& logits) {
  FG_CHECK(logits->value().numel() == g.num_edges());
  // Fused threaded segment softmax (core/attention.hpp) — same values as
  // the former scalar triple sweep, shared by both sparse backends (the
  // materialize/fused split concerns |E| x d messages, not |E| scalars).
  Tensor value =
      core::edge_softmax(g.in_csr(), logits->value(), ctx.num_threads);
  charge_dense(ctx, 3.0 * static_cast<double>(g.num_edges()),
               6.0 * static_cast<double>(g.num_edges()) * 4.0);

  Tensor alpha = value.clone();
  ExecContext* c = &ctx;
  const graph::Graph* gp = &g;
  return make_op(
      std::move(value), {logits},
      [logits, alpha = std::move(alpha), c, gp](Node& node) {
        // dlogit_e = alpha_e * (dalpha_e - sum_{e' in segment} alpha_e'
        // dalpha_e'), per destination segment — the fused softmax backward.
        Tensor d = core::edge_softmax_backward(gp->in_csr(), alpha,
                                               node.grad(), c->num_threads);
        charge_dense(*c, 3.0 * static_cast<double>(gp->num_edges()),
                     6.0 * static_cast<double>(gp->num_edges()) * 4.0);
        logits->accumulate_grad(d);
      },
      "edge_softmax");
}

Var gat_attention(ExecContext& ctx, const graph::Graph& g, const Var& z,
                  float logit_scale) {
  FG_CHECK_MSG(ctx.backend == SparseBackend::kFused,
               "gat_attention is the fused kernel; the materialize backend "
               "runs the composed chain");
  const std::int64_t d = z->value().row_size();
  core::AttentionOperands operands;
  operands.src_feat = &z->value();  // query/key default to src_feat
  operands.logit_scale = logit_scale;
  Tensor value;
  std::shared_ptr<Tensor> alpha;
  if (ctx.device == Device::kGpuSim) {
    // One fused grid-stride kernel on the simulated device: one traversal,
    // one launch, zero atomics — versus the composed three-launch chain
    // (gpusim/attention_gpu.hpp). Output stays bit-identical to the CPU
    // fused kernel; nothing |E| x d is materialized on either device.
    core::GpuSpmmSchedule sched;
    sched.num_blocks = std::max<std::int64_t>(1024, g.in_csr().num_rows / 4);
    auto r = gpusim::attention_gpu(g.in_csr(), "copy_u", sched, operands,
                                   ctx.gpu);
    ctx.sim_seconds += r.cost.total_s;
    value = std::move(r.out);
    alpha = std::make_shared<Tensor>(std::move(r.alpha));
  } else {
    const core::CpuSpmmSchedule sched =
        core::heuristic_spmm_schedule(g.in_csr(), d, ctx.num_threads);
    core::AttentionResult res =
        core::attention(g.in_csr(), "copy_u", sched, operands);
    value = std::move(res.out);
    alpha = std::make_shared<Tensor>(std::move(res.alpha));
  }

  ExecContext* c = &ctx;
  const graph::Graph* gp = &g;
  return make_op(
      std::move(value), {z},
      [z, alpha, c, gp, d, logit_scale](Node& node) {
        if (!z->requires_grad()) return;
        // Chain rule over the fused pipeline, every term a fused sparse
        // kernel (Sec. II-A duality; nothing |E| x d is materialized):
        //   dz[u] += sum_out-edges alpha_e * dOut[v]       (u_mul_e SpMM)
        z->accumulate_grad(run_spmm(*c, gp->out_csr(), "u_mul_e", "sum",
                                    {&node.grad(), alpha.get(), nullptr}, d));
        //   dalpha_e = <z_u, dOut_v>                       (SDDMM dot)
        Tensor dalpha =
            run_sddmm_dot(*c, gp->coo(), z->value(), node.grad());
        //   dlogit = softmax backward, then the logit scale
        Tensor dlogit = core::edge_softmax_backward(
            gp->in_csr(), *alpha, dalpha, c->num_threads);
        charge_dense(*c, 3.0 * static_cast<double>(gp->num_edges()),
                     6.0 * static_cast<double>(gp->num_edges()) * 4.0);
        if (logit_scale != 1.0f) {
          for (std::int64_t i = 0; i < dlogit.numel(); ++i)
            dlogit.at(i) *= logit_scale;
        }
        //   logits = scale * <z_u, z_v>: dz[u] += dl_e z_v over out-edges,
        //   dz[v] += dl_e z_u over in-edges (two u_mul_e SpMMs).
        z->accumulate_grad(run_spmm(*c, gp->out_csr(), "u_mul_e", "sum",
                                    {&z->value(), &dlogit, nullptr}, d));
        z->accumulate_grad(run_spmm(*c, gp->in_csr(), "u_mul_e", "sum",
                                    {&z->value(), &dlogit, nullptr}, d));
      },
      "gat_attention");
}

Tensor symmetric_norm_weights(const graph::Graph& g) {
  const graph::Csr& in = g.in_csr();
  const graph::Csr& out = g.out_csr();
  Tensor w({g.num_edges()});
  const graph::Coo& coo = g.coo();
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const auto du = out.degree(coo.src[static_cast<std::size_t>(e)]);
    const auto dv = in.degree(coo.dst[static_cast<std::size_t>(e)]);
    w.at(e) = (du > 0 && dv > 0)
                  ? 1.0f / std::sqrt(static_cast<float>(du) *
                                     static_cast<float>(dv))
                  : 0.0f;
  }
  return w;
}

}  // namespace featgraph::minidgl
