// The op library is now a thin veneer over the lazy op-graph
// (minidgl/lazy_graph.{hpp,cpp}): each free function records a one-node
// LazyGraph and runs it. Multi-op callers (modules.cpp's layer `record`
// methods, Model::forward) record WHOLE chains into one graph instead, which
// is where cross-op fusion and planned buffer reuse actually pay — but the
// single-op spelling stays available and chains across graphs through
// ordinary Var edges, so mixed eager/lazy code keeps composing.
//
// Every hand-written per-op tape closure that used to live here is gone; the
// backward of every op is derived from the recorded DAG by lazy_graph.cpp's
// vjp switch. The execution semantics (backend split, gpusim cost charges,
// materialized-bytes accounting, Sec. II-A gradient duality) moved verbatim.
#include "minidgl/ops.hpp"

#include <cmath>

#include "minidgl/lazy_graph.hpp"
#include "sample/block.hpp"
#include "support/check.hpp"

namespace featgraph::minidgl {

using graph::eid_t;
using tensor::Tensor;

// --- dense ops -------------------------------------------------------------

Var matmul(ExecContext& ctx, const Var& a, const Var& b) {
  LazyGraph g;
  return g.run(ctx, g.matmul(g.leaf(a), g.leaf(b)));
}

Var add_bias(ExecContext& ctx, const Var& a, const Var& bias) {
  LazyGraph g;
  return g.run(ctx, g.add_bias(g.leaf(a), g.leaf(bias)));
}

Var relu(ExecContext& ctx, const Var& x) {
  LazyGraph g;
  return g.run(ctx, g.relu(g.leaf(x)));
}

Var leaky_relu(ExecContext& ctx, const Var& x, float slope) {
  LazyGraph g;
  return g.run(ctx, g.leaky_relu(g.leaf(x), slope));
}

Var add(ExecContext& ctx, const Var& a, const Var& b) {
  LazyGraph g;
  return g.run(ctx, g.add(g.leaf(a), g.leaf(b)));
}

Var scale(ExecContext& ctx, const Var& a, float s) {
  LazyGraph g;
  return g.run(ctx, g.scale(g.leaf(a), s));
}

Var log_softmax(ExecContext& ctx, const Var& x) {
  LazyGraph g;
  return g.run(ctx, g.log_softmax(g.leaf(x)));
}

Var nll_loss(ExecContext& ctx, const Var& log_probs,
             const std::vector<std::int32_t>& labels,
             const std::vector<std::int64_t>& rows) {
  LazyGraph g;
  return g.run(ctx, g.nll_loss(g.leaf(log_probs), labels, rows));
}

// --- sparse (message passing) ops -------------------------------------------

Var spmm_copy_u(ExecContext& ctx, const graph::Graph& gr, const Var& x,
                const std::string& reduce) {
  LazyGraph g;
  return g.run(ctx, g.spmm_copy_u(gr, g.leaf(x), reduce));
}

Var block_spmm_copy_u(ExecContext& ctx, const sample::Block& block,
                      const Var& x, const std::string& reduce) {
  LazyGraph g;
  return g.run(ctx, g.block_spmm_copy_u(block, g.leaf(x), reduce));
}

Var slice_rows(ExecContext& ctx, const Var& x, std::int64_t begin,
               std::int64_t count) {
  LazyGraph g;
  return g.run(ctx, g.slice_rows(g.leaf(x), begin, count));
}

Var spmm_u_mul_e(ExecContext& ctx, const graph::Graph& gr, const Var& x,
                 const Var& w) {
  LazyGraph g;
  return g.run(ctx, g.spmm_u_mul_e(gr, g.leaf(x), g.leaf(w)));
}

Var sddmm_dot(ExecContext& ctx, const graph::Graph& gr, const Var& x) {
  LazyGraph g;
  return g.run(ctx, g.sddmm_dot(gr, g.leaf(x)));
}

Var edge_softmax(ExecContext& ctx, const graph::Graph& gr, const Var& logits) {
  LazyGraph g;
  return g.run(ctx, g.edge_softmax(gr, g.leaf(logits)));
}

Var gat_attention(ExecContext& ctx, const graph::Graph& gr, const Var& z,
                  float logit_scale) {
  LazyGraph g;
  return g.run(ctx, g.gat_attention(gr, g.leaf(z), logit_scale));
}

Tensor symmetric_norm_weights(const graph::Graph& g) {
  const graph::Csr& in = g.in_csr();
  const graph::Csr& out = g.out_csr();
  Tensor w({g.num_edges()});
  const graph::Coo& coo = g.coo();
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    const auto du = out.degree(coo.src[static_cast<std::size_t>(e)]);
    const auto dv = in.degree(coo.dst[static_cast<std::size_t>(e)]);
    w.at(e) = (du > 0 && dv > 0)
                  ? 1.0f / std::sqrt(static_cast<float>(du) *
                                     static_cast<float>(dv))
                  : 0.0f;
  }
  return w;
}

}  // namespace featgraph::minidgl
