// GNN layers and the paper's three evaluation models (Sec. V-E):
//   * GCN       — 2 layers, hidden 512: mean aggregation then linear+ReLU;
//                 generalized SpMM forward and backward;
//   * GraphSage — 2 layers, hidden 256: self + neighbor aggregation
//                 (mean or max), exercising the flexible-reducer claim;
//   * GAT       — 2 layers, hidden 256: dot-product attention (Sec. V-E),
//                 exercising both generalized SpMM and SDDMM per layer.
//
// Every layer is backend-agnostic: the ExecContext picks Fused (FeatGraph)
// vs Materialize (DGL-without-FeatGraph) and CPU vs simulated GPU.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "minidgl/lazy_graph.hpp"
#include "minidgl/ops.hpp"
#include "sample/block.hpp"

namespace featgraph::minidgl {

/// Dense layer: y = x W + b.
class Linear {
 public:
  Linear(std::int64_t in_dim, std::int64_t out_dim, std::uint64_t seed);
  Var forward(ExecContext& ctx, const Var& x) const;
  /// Records x W + b into `g` without executing.
  NodeId record(LazyGraph& g, NodeId x) const;
  std::vector<Var> parameters() const { return {w_, b_}; }
  const Var& w() const { return w_; }
  const Var& b() const { return b_; }

 private:
  Var w_;
  Var b_;
};

/// GCN layer: h = ReLU?(agg(x) W + b). `normalization` picks the
/// aggregation: "mean" (row-normalized, a plain generalized SpMM) or "sym"
/// (Kipf-Welling symmetric normalization D^-1/2 A D^-1/2, expressed as a
/// u_mul_e SpMM over precomputed edge weights).
class GcnLayer {
 public:
  GcnLayer(std::int64_t in_dim, std::int64_t out_dim, bool final_layer,
           std::uint64_t seed, std::string normalization = "mean");
  Var forward(ExecContext& ctx, const graph::Graph& g, const Var& x) const;
  /// Minibatch forward over a sampled block: x holds one row per block
  /// SOURCE node, the result one row per block destination. "mean"
  /// normalization only (symmetric normalization needs global degrees a
  /// block does not carry). With a full-fanout block this is bit-identical
  /// to the full-graph forward restricted to the block's destinations.
  Var forward(ExecContext& ctx, const sample::Block& block, const Var& x) const;
  /// Records the layer into `g`. The dense transform runs BEFORE the
  /// aggregation (z = x W, then agg(z), then + b, then ReLU) — legal by
  /// linearity of mean/sym aggregation, and it puts bias+ReLU directly after
  /// the SpMM anchor, where the fusion pass folds them into the kernel's own
  /// row sweep.
  NodeId record(LazyGraph& g, const graph::Graph& gr, NodeId x) const;
  NodeId record(LazyGraph& g, const sample::Block& block, NodeId x) const;
  std::vector<Var> parameters() const { return linear_.parameters(); }

 private:
  Linear linear_;
  bool final_layer_;
  std::string normalization_;
  // Norm weights depend only on the topology; cached per graph uid.
  mutable std::uint64_t cached_graph_uid_ = 0;
  mutable Var cached_norm_;
};

/// GraphSage layer: h = ReLU?(x W_self + agg(x) W_neigh + b),
/// agg in {"mean", "max"}.
class SageLayer {
 public:
  SageLayer(std::int64_t in_dim, std::int64_t out_dim, std::string aggregator,
            bool final_layer, std::uint64_t seed);
  Var forward(ExecContext& ctx, const graph::Graph& g, const Var& x) const;
  /// Minibatch forward over a sampled block. The self term reads the first
  /// num_dst rows of x — the block's dst-then-src relabeling invariant puts
  /// the destinations' own features exactly there.
  Var forward(ExecContext& ctx, const sample::Block& block, const Var& x) const;
  /// Records the layer. The self term is recorded FIRST so the neighbor
  /// branch's matmul anchor can fold `+ self` (and the trailing ReLU) into
  /// its epilogue — the self term is materialized by the time the anchor
  /// runs. The aggregation stays before the dense transform: max is
  /// nonlinear, so the GCN-style reorder is illegal here.
  NodeId record(LazyGraph& g, const graph::Graph& gr, NodeId x) const;
  NodeId record(LazyGraph& g, const sample::Block& block, NodeId x) const;
  std::vector<Var> parameters() const;

 private:
  Linear self_;
  Linear neigh_;
  std::string aggregator_;
  bool final_layer_;
};

/// GAT layer with (multi-head) dot-product attention. Per head h:
///   z_h = x W_h;  logit_e = <z_u, z_v> / sqrt(d);  alpha = edge_softmax;
///   out_h = sum_e alpha_e z_u;  output = ReLU?(mean over heads).
/// Head averaging (rather than concat) keeps the output width equal to
/// out_dim for any head count.
class GatLayer {
 public:
  GatLayer(std::int64_t in_dim, std::int64_t out_dim, bool final_layer,
           std::uint64_t seed, int num_heads = 1);
  Var forward(ExecContext& ctx, const graph::Graph& g, const Var& x) const;
  /// Records the layer; the fused/composed attention choice follows
  /// ctx.backend, exactly as forward() does.
  NodeId record(const ExecContext& ctx, LazyGraph& g, const graph::Graph& gr,
                NodeId x) const;
  std::vector<Var> parameters() const;
  int num_heads() const { return static_cast<int>(heads_.size()); }

 private:
  std::vector<Linear> heads_;
  bool final_layer_;
};

/// A 2-layer model of homogeneous layers ending in log-softmax.
class Model {
 public:
  /// kind in {"gcn", "sage-mean", "sage-max", "gat"}.
  Model(const std::string& kind, std::int64_t in_dim, std::int64_t hidden,
        std::int64_t num_classes, std::uint64_t seed);

  /// Returns per-vertex log-probabilities (n x num_classes). The WHOLE
  /// 2-layer forward is recorded into one LazyGraph and compiled/run as a
  /// unit: cross-op fusion sees every layer boundary, the buffer planner
  /// sees the full liveness horizon, and one autograd node carries the
  /// DAG-derived backward for the entire model.
  Var forward(ExecContext& ctx, const graph::Graph& g, const Var& x) const;

  /// Minibatch forward over the blocks of one sampled batch: layer l runs
  /// over mfg.blocks[l]; x holds the gathered input features of
  /// mfg.input_nodes(). Returns log-probabilities for the batch seeds
  /// (mfg.output_nodes()), row for row. GCN and GraphSage only — GAT's
  /// attention needs whole in-neighborhoods to softmax over, which sampled
  /// blocks truncate.
  Var forward(ExecContext& ctx, const sample::MinibatchBlocks& mfg,
              const Var& x) const;
  std::vector<Var> parameters() const { return params_; }
  const std::string& kind() const { return kind_; }

 private:
  std::string kind_;
  std::shared_ptr<GcnLayer> gcn1_, gcn2_;
  std::shared_ptr<SageLayer> sage1_, sage2_;
  std::shared_ptr<GatLayer> gat1_, gat2_;
  std::vector<Var> params_;
};

}  // namespace featgraph::minidgl
