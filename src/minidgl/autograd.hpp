// Miniature tape-based autograd over featgraph::tensor::Tensor.
//
// Stands in for the deep-learning framework under DGL (paper Sec. IV-B):
// the GNN layers build a dataflow graph of Variables; backward() walks it in
// reverse topological order. Gradients of the sparse ops follow the paper's
// Sec. II-A observation — the gradient of generalized SpMM w.r.t. the
// adjacency values is an SDDMM and vice versa — so training exercises both
// templates in both directions.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace featgraph::minidgl {

class Node;
using Var = std::shared_ptr<Node>;

class Node {
 public:
  Node(tensor::Tensor value, bool requires_grad, std::string op)
      : value_(std::move(value)),
        requires_grad_(requires_grad),
        op_(std::move(op)) {}

  const tensor::Tensor& value() const { return value_; }
  tensor::Tensor& mutable_value() { return value_; }
  bool requires_grad() const { return requires_grad_; }
  const std::string& op() const { return op_; }

  /// Gradient w.r.t. this node; zeros-shaped lazily on first accumulation.
  const tensor::Tensor& grad() const { return grad_; }
  bool has_grad() const { return grad_.defined(); }
  void accumulate_grad(const tensor::Tensor& g);
  /// Move form: a freshly computed gradient is adopted on first
  /// accumulation instead of deep-copied.
  void accumulate_grad(tensor::Tensor&& g);
  void zero_grad() { grad_ = tensor::Tensor(); }

  const std::vector<Var>& inputs() const { return inputs_; }

  /// Wires an op node: `backward` reads this node's grad and accumulates
  /// into the inputs' grads.
  void set_edges(std::vector<Var> inputs,
                 std::function<void(Node&)> backward) {
    inputs_ = std::move(inputs);
    backward_ = std::move(backward);
  }

  void run_backward() {
    if (backward_) backward_(*this);
  }

 private:
  tensor::Tensor value_;
  tensor::Tensor grad_;
  bool requires_grad_;
  std::string op_;
  std::vector<Var> inputs_;
  std::function<void(Node&)> backward_;
};

/// Leaf variable (inputs, parameters).
Var make_leaf(tensor::Tensor value, bool requires_grad,
              std::string name = "leaf");

/// Interior op node; requires_grad is inherited from any input.
Var make_op(tensor::Tensor value, std::vector<Var> inputs,
            std::function<void(Node&)> backward, std::string op);

/// Reverse-mode sweep from `root` (seed gradient = ones unless provided).
/// Clears nothing: call zero_grad on parameters between steps.
void backward(const Var& root, const tensor::Tensor* seed = nullptr);

}  // namespace featgraph::minidgl
