// Optimizers over autograd parameters.
#pragma once

#include <vector>

#include "minidgl/autograd.hpp"

namespace featgraph::minidgl {

/// Plain SGD: p -= lr * grad.
class Sgd {
 public:
  Sgd(std::vector<Var> params, float lr) : params_(std::move(params)), lr_(lr) {}
  void step();
  void zero_grad();

 private:
  std::vector<Var> params_;
  float lr_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step();
  void zero_grad();

 private:
  std::vector<Var> params_;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
  float lr_, beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
};

}  // namespace featgraph::minidgl
