#include "minidgl/autograd.hpp"

#include <unordered_set>

#include "support/check.hpp"

namespace featgraph::minidgl {

void Node::accumulate_grad(const tensor::Tensor& g) {
  FG_CHECK(g.numel() == value_.numel());
  if (!grad_.defined()) {
    grad_ = g.clone();
    return;
  }
  float* dst = grad_.data();
  const float* src = g.data();
  for (std::int64_t i = 0; i < grad_.numel(); ++i) dst[i] += src[i];
}

void Node::accumulate_grad(tensor::Tensor&& g) {
  FG_CHECK(g.numel() == value_.numel());
  if (!grad_.defined()) {
    grad_ = std::move(g);
    return;
  }
  float* dst = grad_.data();
  const float* src = g.data();
  for (std::int64_t i = 0; i < grad_.numel(); ++i) dst[i] += src[i];
}

Var make_leaf(tensor::Tensor value, bool requires_grad, std::string name) {
  return std::make_shared<Node>(std::move(value), requires_grad,
                                std::move(name));
}

Var make_op(tensor::Tensor value, std::vector<Var> inputs,
            std::function<void(Node&)> backward, std::string op) {
  bool needs_grad = false;
  for (const auto& in : inputs) needs_grad = needs_grad || in->requires_grad();
  auto node =
      std::make_shared<Node>(std::move(value), needs_grad, std::move(op));
  if (needs_grad) node->set_edges(std::move(inputs), std::move(backward));
  return node;
}

namespace {

void topo_visit(const Var& node, std::unordered_set<Node*>& seen,
                std::vector<Var>& order) {
  if (!node || !node->requires_grad() || seen.count(node.get())) return;
  seen.insert(node.get());
  for (const auto& in : node->inputs()) topo_visit(in, seen, order);
  order.push_back(node);
}

}  // namespace

void backward(const Var& root, const tensor::Tensor* seed) {
  FG_CHECK(root != nullptr);
  std::unordered_set<Node*> seen;
  std::vector<Var> order;
  topo_visit(root, seen, order);

  if (seed != nullptr) {
    root->accumulate_grad(*seed);
  } else {
    root->accumulate_grad(tensor::Tensor::full(root->value().shape(), 1.0f));
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->has_grad()) (*it)->run_backward();
  }
}

}  // namespace featgraph::minidgl
