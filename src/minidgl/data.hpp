// Vertex-classification datasets for the end-to-end experiments (Sec. V-E).
//
// The paper trains on reddit (vertex classification, 153K/24K/56K
// train/val/test split). We regenerate the task synthetically: a stochastic
// block model whose communities are both the graph structure AND the label,
// with class-correlated noisy features — so a GNN that aggregates neighbor
// features genuinely learns, accuracy is meaningful, and the fused-vs-
// materialized equivalence check has teeth.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace featgraph::minidgl {

struct ClassificationData {
  graph::Graph graph;
  tensor::Tensor features;           // n x feat_dim
  std::vector<std::int32_t> labels;  // n
  std::vector<std::int64_t> train_rows;
  std::vector<std::int64_t> val_rows;
  std::vector<std::int64_t> test_rows;
  std::int64_t num_classes = 0;
};

/// SBM with `num_classes` equal communities; edges stay in-community with
/// probability `p_in`; features = one-hot(class) * signal + N(0, 1) noise.
/// Split fractions mirror the paper's reddit split (65% / 10% / 25%).
ClassificationData make_sbm_classification(graph::vid_t n, double avg_degree,
                                           std::int64_t num_classes,
                                           double p_in, std::int64_t feat_dim,
                                           float signal, std::uint64_t seed);

/// Fraction of rows whose argmax log-probability matches the label.
double accuracy(const tensor::Tensor& log_probs,
                const std::vector<std::int32_t>& labels,
                const std::vector<std::int64_t>& rows);

}  // namespace featgraph::minidgl
