#include "minidgl/train.hpp"

#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sample/neighbor_sampler.hpp"
#include "support/timer.hpp"

namespace featgraph::minidgl {

Trainer::Trainer(const ClassificationData& data, Model model, ExecContext ctx,
                 float lr)
    : data_(&data),
      model_(std::move(model)),
      ctx_(ctx),
      optimizer_(model_.parameters(), lr) {}

EpochResult Trainer::train_epoch() {
  static obs::Counter& obs_epochs =
      obs::Registry::global().counter("train.epoch.count");
  obs_epochs.add(1);
  FG_TRACE_SCOPE("train.epoch");
  EpochResult result;
  ctx_.reset_accounting();
  support::Timer timer;

  // Shared-storage view: Tensor copies alias the buffer, the leaf never
  // requires grad, and no lazy-graph step mutates leaf storage — so the
  // former defensive clone() was a pure |V| x d copy per epoch.
  Var x = make_leaf(data_->features, false, "features");
  Var log_probs = model_.forward(ctx_, data_->graph, x);
  Var loss = nll_loss(ctx_, log_probs, data_->labels, data_->train_rows);
  optimizer_.zero_grad();
  backward(loss);
  optimizer_.step();

  result.loss = loss->value().at(0);
  result.train_accuracy =
      accuracy(log_probs->value(), data_->labels, data_->train_rows);
  result.seconds =
      ctx_.device == Device::kGpuSim ? ctx_.sim_seconds : timer.seconds();
  result.materialized_bytes = ctx_.materialized_bytes;
  result.peak_bytes = ctx_.peak_bytes;
  return result;
}

EpochResult Trainer::infer() {
  static obs::Counter& obs_infers =
      obs::Registry::global().counter("train.infer.count");
  obs_infers.add(1);
  FG_TRACE_SCOPE("train.infer");
  EpochResult result;
  ctx_.reset_accounting();
  support::Timer timer;

  // Shared-storage view: Tensor copies alias the buffer, the leaf never
  // requires grad, and no lazy-graph step mutates leaf storage — so the
  // former defensive clone() was a pure |V| x d copy per epoch.
  Var x = make_leaf(data_->features, false, "features");
  Var log_probs = model_.forward(ctx_, data_->graph, x);

  result.loss = 0.0f;
  result.train_accuracy =
      accuracy(log_probs->value(), data_->labels, data_->test_rows);
  result.seconds =
      ctx_.device == Device::kGpuSim ? ctx_.sim_seconds : timer.seconds();
  result.materialized_bytes = ctx_.materialized_bytes;
  result.peak_bytes = ctx_.peak_bytes;
  return result;
}

MinibatchInferResult Trainer::infer_minibatch(
    const MinibatchInferOptions& options,
    const std::vector<std::int64_t>& rows) {
  MinibatchInferResult result;
  ctx_.reset_accounting();
  support::Timer timer;

  std::vector<graph::vid_t> seeds;
  seeds.reserve(rows.size());
  for (const std::int64_t r : rows)
    seeds.push_back(static_cast<graph::vid_t>(r));

  sample::NeighborSampler sampler(data_->graph.in_csr(), options.sampler);
  sample::PipelineOptions popts;
  popts.batch_size = options.batch_size;
  popts.queue_capacity = options.queue_capacity;
  popts.pipelined = options.pipelined;
  popts.gather_threads = ctx_.num_threads;

  const std::int64_t num_classes = data_->num_classes;
  result.log_probs =
      tensor::Tensor({static_cast<std::int64_t>(seeds.size()), num_classes});

  // Route the consumer's sparse launches through one shape-class schedule
  // cache for the whole epoch; restore the context afterwards so full-batch
  // paths keep their per-launch heuristic.
  sample::BlockScheduleCache schedule_cache;
  sample::BlockScheduleCache* prev_cache = ctx_.schedule_cache;
  const bool prev_tune = ctx_.tune_block_schedules;
  ctx_.schedule_cache = &schedule_cache;
  ctx_.tune_block_schedules = options.tune_schedules;

  std::int64_t out_row = 0;
  result.pipeline = sample::run_pipeline(
      sampler, data_->features, seeds, popts,
      [&](sample::PreparedBatch& batch) {
        Var x = make_leaf(std::move(batch.input_feats), false, "block_feats");
        Var lp = model_.forward(ctx_, batch.blocks, x);
        const tensor::Tensor& v = lp->value();
        std::memcpy(result.log_probs.row(out_row), v.data(),
                    static_cast<std::size_t>(v.numel()) * sizeof(float));
        out_row += v.rows();
      });

  ctx_.schedule_cache = prev_cache;
  ctx_.tune_block_schedules = prev_tune;
  result.schedule_cache_hits = schedule_cache.hits();
  result.schedule_cache_misses = schedule_cache.misses();

  // Seed rows were consumed in order, so log_probs row i belongs to rows[i].
  std::size_t correct = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const float* lp = result.log_probs.row(static_cast<std::int64_t>(i));
    std::int64_t best = 0;
    for (std::int64_t cls = 1; cls < num_classes; ++cls)
      if (lp[cls] > lp[best]) best = cls;
    if (best == data_->labels[static_cast<std::size_t>(rows[i])]) ++correct;
  }
  result.accuracy = rows.empty()
                        ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(rows.size());
  result.seconds =
      ctx_.device == Device::kGpuSim ? ctx_.sim_seconds : timer.seconds();
  result.peak_bytes = ctx_.peak_bytes;
  return result;
}

MinibatchInferResult Trainer::infer_minibatch(
    const MinibatchInferOptions& options) {
  return infer_minibatch(options, data_->test_rows);
}

serve::BatchComputeFn Trainer::make_serve_compute(
    sample::BlockScheduleCache* schedule_cache, bool tune_schedules) {
  return [this, schedule_cache, tune_schedules](
             const sample::MinibatchBlocks& blocks,
             tensor::Tensor input_feats) {
    // Route the block launches through the shape-class memo for the call,
    // then restore — mirrors infer_minibatch's discipline (schedules served
    // from the cache pin num_partitions == 1, part of the solo-vs-coalesced
    // bit-identity contract: partitioned folds regroup a destination row's
    // accumulation by source bucket, which depends on the merged block's
    // column count).
    sample::BlockScheduleCache* prev_cache = ctx_.schedule_cache;
    const bool prev_tune = ctx_.tune_block_schedules;
    ctx_.schedule_cache = schedule_cache;
    ctx_.tune_block_schedules = tune_schedules;
    Var x = make_leaf(std::move(input_feats), false, "request_feats");
    Var lp = model_.forward(ctx_, blocks, x);
    ctx_.schedule_cache = prev_cache;
    ctx_.tune_block_schedules = prev_tune;
    return lp->value();
  };
}

ServeRequestsResult Trainer::serve_requests(
    const ServeRequestsOptions& options,
    const std::vector<std::vector<std::int64_t>>& request_seeds) {
  ServeRequestsResult result;
  ctx_.reset_accounting();
  support::Timer timer;

  sample::NeighborSampler sampler(data_->graph.in_csr(), options.sampler);
  serve::FeatureCache cache(options.feature_cache_rows,
                            data_->features.row_size());
  sample::BlockScheduleCache schedule_cache;

  // Run every served block launch under the caller's Schedule-IR program
  // (e.g. shard(S) for the shard-parallel serving path), restored on exit —
  // the same set/restore discipline make_serve_compute applies to the
  // schedule cache. The program hash keys the cache, so batches served
  // under different programs never alias one shape class.
  std::shared_ptr<const core::ScheduleIr> prev_ir = ctx_.block_schedule_ir;
  if (options.block_schedule_ir != nullptr)
    ctx_.block_schedule_ir = options.block_schedule_ir;

  serve::ServeOptions admission = options.admission;
  admission.num_threads = ctx_.num_threads;
  serve::ServingEngine engine(
      sampler, data_->features,
      make_serve_compute(&schedule_cache, options.tune_schedules), admission,
      options.feature_cache_rows > 0 ? &cache : nullptr);

  // Deterministic grouping: coalesce packs requests into batches in order
  // under the admission caps (what a fully-loaded live server converges
  // to); solo serves each alone — the baseline the coalesced outputs are
  // pinned bitwise against.
  std::vector<serve::Request> pending;
  pending.reserve(request_seeds.size());
  for (std::size_t r = 0; r < request_seeds.size(); ++r) {
    serve::Request req;
    req.id = static_cast<std::int64_t>(r);
    req.seeds.reserve(request_seeds[r].size());
    for (const std::int64_t s : request_seeds[r])
      req.seeds.push_back(static_cast<graph::vid_t>(s));
    pending.push_back(std::move(req));
  }

  result.outputs.reserve(pending.size());
  std::size_t i = 0;
  while (i < pending.size()) {
    std::vector<serve::Request> group;
    std::int64_t seeds_taken = 0;
    while (i < pending.size() &&
           static_cast<int>(group.size()) <
               (options.coalesce ? admission.max_requests_per_batch : 1) &&
           (group.empty() ||
            seeds_taken + static_cast<std::int64_t>(pending[i].seeds.size()) <=
                admission.max_seeds_per_batch)) {
      seeds_taken += static_cast<std::int64_t>(pending[i].seeds.size());
      group.push_back(std::move(pending[i]));
      ++i;
    }
    std::vector<tensor::Tensor> outs = engine.serve_batch(std::move(group));
    for (auto& o : outs) result.outputs.push_back(std::move(o));
  }

  ctx_.block_schedule_ir = prev_ir;
  result.stats = engine.stats();
  result.cache = cache.stats();
  result.schedule_cache_hits = schedule_cache.hits();
  result.schedule_cache_misses = schedule_cache.misses();
  result.seconds =
      ctx_.device == Device::kGpuSim ? ctx_.sim_seconds : timer.seconds();
  return result;
}

double Trainer::test_accuracy() {
  // Shared-storage view: Tensor copies alias the buffer, the leaf never
  // requires grad, and no lazy-graph step mutates leaf storage — so the
  // former defensive clone() was a pure |V| x d copy per epoch.
  Var x = make_leaf(data_->features, false, "features");
  Var log_probs = model_.forward(ctx_, data_->graph, x);
  return accuracy(log_probs->value(), data_->labels, data_->test_rows);
}

std::vector<EpochResult> train(Trainer& trainer, int epochs) {
  std::vector<EpochResult> history;
  history.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) history.push_back(trainer.train_epoch());
  return history;
}

}  // namespace featgraph::minidgl
