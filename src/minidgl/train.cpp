#include "minidgl/train.hpp"

#include "support/timer.hpp"

namespace featgraph::minidgl {

Trainer::Trainer(const ClassificationData& data, Model model, ExecContext ctx,
                 float lr)
    : data_(&data),
      model_(std::move(model)),
      ctx_(ctx),
      optimizer_(model_.parameters(), lr) {}

EpochResult Trainer::train_epoch() {
  EpochResult result;
  ctx_.reset_accounting();
  support::Timer timer;

  Var x = make_leaf(data_->features.clone(), false, "features");
  Var log_probs = model_.forward(ctx_, data_->graph, x);
  Var loss = nll_loss(ctx_, log_probs, data_->labels, data_->train_rows);
  optimizer_.zero_grad();
  backward(loss);
  optimizer_.step();

  result.loss = loss->value().at(0);
  result.train_accuracy =
      accuracy(log_probs->value(), data_->labels, data_->train_rows);
  result.seconds =
      ctx_.device == Device::kGpuSim ? ctx_.sim_seconds : timer.seconds();
  result.materialized_bytes = ctx_.materialized_bytes;
  return result;
}

EpochResult Trainer::infer() {
  EpochResult result;
  ctx_.reset_accounting();
  support::Timer timer;

  Var x = make_leaf(data_->features.clone(), false, "features");
  Var log_probs = model_.forward(ctx_, data_->graph, x);

  result.loss = 0.0f;
  result.train_accuracy =
      accuracy(log_probs->value(), data_->labels, data_->test_rows);
  result.seconds =
      ctx_.device == Device::kGpuSim ? ctx_.sim_seconds : timer.seconds();
  result.materialized_bytes = ctx_.materialized_bytes;
  return result;
}

double Trainer::test_accuracy() {
  Var x = make_leaf(data_->features.clone(), false, "features");
  Var log_probs = model_.forward(ctx_, data_->graph, x);
  return accuracy(log_probs->value(), data_->labels, data_->test_rows);
}

std::vector<EpochResult> train(Trainer& trainer, int epochs) {
  std::vector<EpochResult> history;
  history.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) history.push_back(trainer.train_epoch());
  return history;
}

}  // namespace featgraph::minidgl
