#include "minidgl/optim.hpp"

#include <cmath>

namespace featgraph::minidgl {

void Sgd::step() {
  for (auto& p : params_) {
    if (!p->has_grad()) continue;
    float* w = p->mutable_value().data();
    const float* g = p->grad().data();
    for (std::int64_t i = 0; i < p->value().numel(); ++i) w[i] -= lr_ * g[i];
  }
}

void Sgd::zero_grad() {
  for (auto& p : params_) p->zero_grad();
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  for (const auto& p : params_) {
    m_.push_back(tensor::Tensor::zeros(p->value().shape()));
    v_.push_back(tensor::Tensor::zeros(p->value().shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    if (!p->has_grad()) continue;
    float* w = p->mutable_value().data();
    const float* g = p->grad().data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    for (std::int64_t i = 0; i < p->value().numel(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float m_hat = m[i] / bc1;
      const float v_hat = v[i] / bc2;
      w[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

void Adam::zero_grad() {
  for (auto& p : params_) p->zero_grad();
}

}  // namespace featgraph::minidgl
