// Differentiable operator library for minidgl.
//
// Every op takes an ExecContext that selects
//   * the sparse backend: kFused runs FeatGraph kernels (messages are never
//     materialized); kMaterialize gathers per-edge message tensors and
//     segment-reduces them — what DGL does WITHOUT FeatGraph (Sec. IV-B),
//     Table VI's baseline;
//   * the device: kCpu executes natively (wall-clock measured outside);
//     kGpuSim executes functionally on the host while accumulating
//     simulated V100 time and materialized-memory bookkeeping in the
//     context (Table VI's GPU rows; the paper's GAT-OOM footnote).
//
// Gradient routing follows the paper's Sec. II-A duality: the backward of
// generalized SpMM w.r.t. edge values is an SDDMM, the backward of SDDMM is
// an SpMM over the reversed graph.
#pragma once

#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "gpusim/device.hpp"
#include "graph/csr.hpp"
#include "minidgl/autograd.hpp"

namespace featgraph::sample {
class BlockScheduleCache;
struct Block;
}  // namespace featgraph::sample

namespace featgraph::minidgl {

enum class SparseBackend { kFused, kMaterialize };
enum class Device { kCpu, kGpuSim };

struct ExecContext {
  SparseBackend backend = SparseBackend::kFused;
  Device device = Device::kCpu;
  int num_threads = 2;
  gpusim::DeviceSpec gpu;

  /// When set, CPU sparse ops resolve their schedule through this
  /// shape-class memo (sample/pipeline.hpp) instead of re-deriving it per
  /// launch — the minibatch pipeline's "consult the tuner once per shape
  /// class" contract. Schedules served from it pin num_partitions == 1:
  /// blocks are minibatch-sized (no LLC pressure to partition away) and the
  /// per-uid partition cache would grow without bound over a stream of
  /// short-lived block adjacencies.
  sample::BlockScheduleCache* schedule_cache = nullptr;
  /// With schedule_cache set: consult the grid tuner (tune_spmm over the
  /// default candidate grid, timed on the first block of each shape class)
  /// instead of the O(1) heuristic.
  bool tune_block_schedules = false;
  /// When set, CPU SpMM launches run this Schedule-IR program (attached to
  /// whatever schedule the cache/heuristic served — the program is
  /// authoritative for every loop-nest decision except num_threads), and
  /// its core::schedule_program_hash is folded into the schedule-cache key
  /// so launches under different programs never alias one shape class. The
  /// program must stay legal for every block shape it will see (e.g. no
  /// chunk(C) beyond the smallest block's row count).
  std::shared_ptr<const core::ScheduleIr> block_schedule_ir;

  /// Fold recorded elementwise chains into SpMM / matmul epilogues (lazy
  /// graph pass 1). Effective on the CPU fused backend only; flip off to
  /// force the eager plan (the fused-vs-eager bit-identity baseline).
  bool fuse_epilogues = true;
  /// Run the linear-scan buffer-reuse / eager-release plan (lazy graph
  /// pass 2). Off = every intermediate stays live to the end of the run.
  bool plan_buffers = true;

  /// Simulated GPU seconds accumulated across ops (kGpuSim only).
  double sim_seconds = 0.0;
  /// Total bytes of materialized per-edge message tensors this epoch —
  /// drives the paper's "GAT training runs out of GPU memory" observation.
  double materialized_bytes = 0.0;
  /// High-water of planned live intermediate bytes across lazy-graph runs
  /// since the last reset — the buffer-reuse pass's figure of merit.
  double peak_bytes = 0.0;

  void reset_accounting() {
    sim_seconds = 0.0;
    materialized_bytes = 0.0;
    peak_bytes = 0.0;
  }
};

// --- dense ops -------------------------------------------------------------

Var matmul(ExecContext& ctx, const Var& a, const Var& b);
Var add_bias(ExecContext& ctx, const Var& a, const Var& bias);
Var relu(ExecContext& ctx, const Var& x);
Var leaky_relu(ExecContext& ctx, const Var& x, float slope);
Var add(ExecContext& ctx, const Var& a, const Var& b);
Var scale(ExecContext& ctx, const Var& a, float s);
Var log_softmax(ExecContext& ctx, const Var& x);

/// Mean NLL over `rows` of log-probabilities; returns a scalar variable.
Var nll_loss(ExecContext& ctx, const Var& log_probs,
             const std::vector<std::int32_t>& labels,
             const std::vector<std::int64_t>& rows);

// --- sparse (message passing) ops -------------------------------------------

/// h[v] = reduce over in-edges of x[u];  reduce in {"sum", "mean", "max"}.
Var spmm_copy_u(ExecContext& ctx, const graph::Graph& g, const Var& x,
                const std::string& reduce);

/// Minibatch (MFG) form of spmm_copy_u: aggregates over a sampled block's
/// local adjacency (sample/block.hpp). `x` holds one row per block SOURCE
/// node; the result has one row per block destination. Backward routes the
/// gradient through the transposed block adjacency, which is derived at
/// record time — and only when an input requires grad; inference pays
/// nothing. The block must outlive the forward call only: backward reads the
/// derived transpose/inverse-degrees, never the block itself (the old tape's
/// unconditional deep copy of the whole adjacency is gone).
Var block_spmm_copy_u(ExecContext& ctx, const sample::Block& block,
                      const Var& x, const std::string& reduce);

/// Rows [begin, begin + count) of x as a new Var; backward scatters the
/// gradient back into the sliced range. With a block's dst-then-src
/// invariant, slice_rows(x, 0, block.num_dst()) is the destination
/// (self-term) feature tensor.
Var slice_rows(ExecContext& ctx, const Var& x, std::int64_t begin,
               std::int64_t count);

/// h[v] = sum over in-edges of w_e * x[u]; w is an edge-scalar variable of
/// shape {|E|} (attention-weighted aggregation).
Var spmm_u_mul_e(ExecContext& ctx, const graph::Graph& g, const Var& x,
                 const Var& w);

/// logits_e = <x[u], x[v]> (dot-product attention scores).
Var sddmm_dot(ExecContext& ctx, const graph::Graph& g, const Var& x);

/// alpha = softmax of edge scalars over each destination's in-edges.
/// Forward and backward run the fused core kernels (core/attention.hpp):
/// threaded segment sweeps on the span engine, replacing the former
/// single-threaded scalar triple sweep.
Var edge_softmax(ExecContext& ctx, const graph::Graph& g, const Var& logits);

/// The whole GAT attention pipeline as ONE op on the fused attention kernel:
///   logit_e = <z_u, z_v> * logit_scale; alpha = edge_softmax(logits);
///   out[v]  = sum alpha_e * z_u
/// Forward is a single fused pass per destination row (no |E| x d tensor and
/// no intermediate logits/alpha Vars); backward routes through the
/// SpMM/SDDMM duality (u_mul_e SpMMs + an SDDMM dot + the fused softmax
/// backward). kFused on either device: kCpu runs the core engine, kGpuSim
/// runs the fused gpusim kernel (gpusim/attention_gpu.hpp — one simulated
/// launch/traversal, bit-identical output, cost accrued in sim_seconds).
/// The composed chain remains the kMaterialize path.
Var gat_attention(ExecContext& ctx, const graph::Graph& g, const Var& z,
                  float logit_scale);

/// Edge weights w_e = 1 / sqrt(deg_out(u) * deg_in(v)) — the symmetric GCN
/// normalization A_hat = D^-1/2 A D^-1/2 (Kipf & Welling); combine with
/// spmm_u_mul_e. Zero-degree endpoints produce weight 0.
tensor::Tensor symmetric_norm_weights(const graph::Graph& g);

}  // namespace featgraph::minidgl
