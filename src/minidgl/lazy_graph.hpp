// Lazy op-graph for minidgl: the forward pass is RECORDED as a small op DAG
// (sparse anchors — SpMM / SDDMM / attention — plus the elementwise ops
// around them), then COMPILED by three passes before anything executes:
//
//   1. Fusion: elementwise chains that follow an SpMM or matmul anchor fold
//      into a per-row epilogue program (core/epilogue.hpp) applied inside
//      the kernel's own row-finalize sweep — GCN's bias+ReLU never makes a
//      second |V|×d pass. Legality: only single-consumer chains fold; an
//      activation always terminates its chain (its output is then the
//      anchor's materialized value, which its vjp reads as the mask);
//      log-softmax, slices and reductions anchor at materialization.
//   2. Buffer reuse: a linear scan over DAG liveness assigns dead
//      intermediates' buffers to later values of the same size, so peak
//      memory stops scaling with chain depth; values a vjp will read are
//      excluded (the keep set). The plan reports peak_bytes.
//   3. Backward derivation: ONE autograd node is wired per run; its
//      backward walks the recorded DAG in reverse and applies a per-op vjp
//      switch — there are no hand-written per-op tape closures anymore.
//
// The standing invariant: a fused plan's outputs (and gradients) are
// bit-identical to executing the same recorded chain eagerly, per ISA ×
// schedule program × thread count. Every epilogue step is exact-class span
// arithmetic, activation masks are derivable from outputs (y > 0 ⟺ x > 0),
// and IEEE addition is commutative, so folding changes where work happens,
// never what it computes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/epilogue.hpp"
#include "graph/csr.hpp"
#include "minidgl/ops.hpp"

namespace featgraph::sample {
struct Block;
}

namespace featgraph::minidgl {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

enum class LazyOp : int {
  kLeaf = 0,
  kMatmul,
  kAddBias,
  kRelu,
  kLeakyRelu,
  kAdd,
  kScale,
  kLogSoftmax,
  kNllLoss,
  kSliceRows,
  kSpmmCopyU,
  kBlockSpmmCopyU,
  kSpmmUMulE,
  kSddmmDot,
  kEdgeSoftmax,
  kGatAttention,
};

/// One recorded op. Payload fields are op-specific; graph pointers are
/// BORROWED with the same lifetime contract the old tape closures had (the
/// graph must outlive backward). The block adjacency is borrowed only until
/// run() returns — what backward actually needs (the transposed adjacency
/// and inverse in-degrees) is derived at record time, and only when a
/// gradient can flow, instead of deep-copying the whole operand onto the
/// tape.
struct LazyNode {
  LazyOp op = LazyOp::kLeaf;
  std::vector<NodeId> inputs;
  std::vector<std::int64_t> shape;  ///< inferred output shape
  bool needs_grad = false;
  Var leaf;                          ///< kLeaf only
  float scalar = 0.0f;               ///< scale factor / slope / logit_scale
  std::string reduce;                ///< spmm reducer name
  const graph::Graph* g = nullptr;   ///< full-graph sparse ops
  const graph::Csr* block_adj = nullptr;          ///< valid during run() only
  std::shared_ptr<const graph::Csr> block_rev;    ///< transposed block adj
  std::shared_ptr<const std::vector<float>> block_inv_deg;
  std::shared_ptr<const std::vector<std::int32_t>> labels;  ///< kNllLoss
  std::shared_ptr<const std::vector<std::int64_t>> rows;    ///< kNllLoss
};

/// One symbolic epilogue step: the operand is a DAG node resolved to a data
/// pointer at execution time.
struct EpiloguePlanStep {
  core::EpilogueKind kind;
  float scalar = 0.0f;
  NodeId operand = kNoNode;
};

struct PlanOptions {
  /// Fold eligible chains into anchor epilogues (run() derives this from
  /// the ExecContext: CPU device, fused sparse backend, fuse_epilogues).
  bool fuse = true;
  /// Recycle dead intermediates' buffers via the linear-scan plan.
  bool reuse_buffers = true;
  /// Apply the backward keep-set (run() uses the root's needs_grad).
  bool training = true;
};

/// The compiled execution plan. Pure data — tests introspect it directly
/// (fusion legality, liveness-disjointness, peak-byte scaling) without
/// executing anything.
struct LazyPlan {
  /// Per node: kNoNode, or the anchor this node's op was folded into.
  std::vector<NodeId> fused_into;
  /// Per node: the materialized node holding this node's value — itself,
  /// the anchor (for a fused chain's tail), or kNoNode (mid-chain values
  /// are never materialized; no vjp reads them).
  std::vector<NodeId> alias;
  /// Per anchor node: its resolved epilogue program (empty otherwise).
  std::vector<std::vector<EpiloguePlanStep>> epilogue;
  /// Per node: value retained for the backward walk.
  std::vector<char> keep;
  /// Per node: execution step index (fused nodes inherit their anchor's;
  /// leaves are step -1).
  std::vector<std::int32_t> step;
  /// Per node: last step whose execution reads this node's value.
  std::vector<std::int32_t> last_use;
  /// Per node: recycled buffer slot, or kNoNode (leaves, kept values).
  std::vector<NodeId> buffer_id;
  /// Per node: true when the op runs in place inside its input's buffer.
  std::vector<char> in_place;
  std::int64_t num_buffers = 0;
  /// Pool high-water: bytes of all distinct reuse buffers plus every kept
  /// value — what the executor actually holds live at once.
  std::int64_t peak_bytes = 0;
  /// Executed (non-leaf, non-fused) node count.
  std::int64_t num_steps = 0;
};

class LazyGraph {
 public:
  // --- recording -----------------------------------------------------------
  NodeId leaf(const Var& v);
  NodeId matmul(NodeId a, NodeId b);
  NodeId add_bias(NodeId a, NodeId bias);
  NodeId relu(NodeId x);
  NodeId leaky_relu(NodeId x, float slope);
  NodeId add(NodeId a, NodeId b);
  NodeId scale(NodeId a, float s);
  NodeId log_softmax(NodeId x);
  NodeId nll_loss(NodeId log_probs, std::vector<std::int32_t> labels,
                  std::vector<std::int64_t> rows);
  NodeId slice_rows(NodeId x, std::int64_t begin, std::int64_t count);
  NodeId spmm_copy_u(const graph::Graph& g, NodeId x,
                     const std::string& reduce);
  NodeId block_spmm_copy_u(const sample::Block& block, NodeId x,
                           const std::string& reduce);
  NodeId spmm_u_mul_e(const graph::Graph& g, NodeId x, NodeId w);
  NodeId sddmm_dot(const graph::Graph& g, NodeId x);
  NodeId edge_softmax(const graph::Graph& g, NodeId logits);
  NodeId gat_attention(const graph::Graph& g, NodeId z, float logit_scale);

  const std::vector<LazyNode>& nodes() const { return nodes_; }

  // --- compilation ---------------------------------------------------------
  LazyPlan plan(const PlanOptions& options) const;

  // --- execution -----------------------------------------------------------
  /// Compiles (fusion gated on the context: CPU + fused backend +
  /// ctx.fuse_epilogues), executes the plan, charges accounting
  /// (sim_seconds / materialized_bytes / peak_bytes), and wires ONE
  /// autograd node whose backward replays the DAG through the vjp switch.
  /// The graph is consumed: record once, run once. The context is BORROWED
  /// by the wired backward (same contract the old tape closures had): it
  /// must stay alive until backward() on the returned Var has run.
  Var run(ExecContext& ctx, NodeId root);

 private:
  NodeId push(LazyNode node);
  std::vector<LazyNode> nodes_;
};

}  // namespace featgraph::minidgl
