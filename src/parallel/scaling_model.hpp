// Deterministic multicore scaling model used for the paper's Figure 10.
//
// The paper measures 1..16-thread speedups on an 18-core Xeon with a 25 MB
// LLC. This repository may run on a machine with fewer cores, so the
// scalability *figure* is produced by a model instead of oversubscribed
// timing: kernels are decomposed into the same work chunks the real runtime
// schedules, each chunk's cost is *measured* single-threaded, and the model
// then schedules those measured costs onto k virtual workers.
//
// Mechanisms represented (and nothing else):
//  * load balance    — LPT (longest-processing-time-first) makespan over the
//    measured chunk costs; skewed chunk lists scale worse, exactly as on
//    real hardware;
//  * LLC contention  — when threads work on unrelated chunks the aggregate
//    working set is the sum of chunk working sets; the model inflates time
//    once that exceeds LLC capacity. FeatGraph's cooperative scheduling
//    (all threads on one graph partition at a time, Sec. IV-A) keeps the
//    aggregate working set at ONE partition, so it dodges this penalty;
//  * scheduling cost — a fixed per-launch + per-chunk dispatch overhead.
#pragma once

#include <cstdint>
#include <vector>

namespace featgraph::parallel {

/// One schedulable unit of a kernel: its measured single-thread runtime and
/// the DRAM bytes it streams through the cache.
struct WorkChunk {
  double seconds = 0.0;
  double bytes = 0.0;
};

struct ScalingModelParams {
  double llc_bytes = 25.0 * 1024 * 1024;  // paper machine: 25 MB LLC
  /// Slowdown per multiple of LLC overflow (calibrated; see DESIGN.md §1).
  double contention_per_overflow = 0.25;
  /// Per-launch dispatch overhead in seconds and per-chunk handoff cost.
  double launch_overhead_s = 5e-6;
  double per_chunk_overhead_s = 2e-7;
  /// Memory-bandwidth roofline (c5.9xlarge-like): one thread can stream
  /// ~7 GB/s; the socket saturates at ~80 GB/s. Bandwidth-bound kernels
  /// therefore stop scaling near 80/7 ~ 11x, which is what pins all three
  /// systems' Fig. 10 curves below linear.
  double per_thread_bw_bytes_per_s = 7e9;
  double socket_bw_bytes_per_s = 80e9;
};

enum class SchedulingMode {
  /// Each thread takes whole chunks independently (Ligra / MKL style):
  /// aggregate working set = k concurrent chunk working sets.
  kIndependent,
  /// All threads cooperate inside one chunk at a time (FeatGraph style):
  /// aggregate working set = one chunk working set.
  kCooperative,
};

/// Predicted wall-clock seconds for running `chunks` on `threads` workers.
double predict_parallel_seconds(const std::vector<WorkChunk>& chunks,
                                int threads, SchedulingMode mode,
                                const ScalingModelParams& params = {});

}  // namespace featgraph::parallel
