#include "parallel/scaling_model.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace featgraph::parallel {

namespace {

/// LPT makespan: sort descending, always give the next chunk to the least
/// loaded worker. Classic 4/3-approximation; deterministic.
double lpt_makespan(std::vector<double> costs, int threads) {
  std::sort(costs.begin(), costs.end(), std::greater<>());
  std::priority_queue<double, std::vector<double>, std::greater<>> load;
  for (int t = 0; t < threads; ++t) load.push(0.0);
  for (double c : costs) {
    double least = load.top();
    load.pop();
    load.push(least + c);
  }
  double makespan = 0.0;
  while (!load.empty()) {
    makespan = load.top();
    load.pop();
  }
  return makespan;
}

}  // namespace

double predict_parallel_seconds(const std::vector<WorkChunk>& chunks,
                                int threads, SchedulingMode mode,
                                const ScalingModelParams& params) {
  FG_CHECK(threads >= 1);
  if (chunks.empty()) return params.launch_overhead_s;

  double total_bytes = 0.0;
  std::vector<double> costs;
  costs.reserve(chunks.size());
  for (const auto& c : chunks) {
    costs.push_back(c.seconds);
    total_bytes += c.bytes;
  }
  const double avg_chunk_bytes = total_bytes / static_cast<double>(chunks.size());

  double makespan;
  double concurrent_ws;  // bytes resident across threads at any instant
  if (mode == SchedulingMode::kCooperative) {
    // Threads split each chunk evenly; chunk boundaries are barriers, so the
    // time is the sum of per-chunk times, each divided by k — PLUS the
    // barrier itself. Every boundary makes all k threads rendezvous before
    // the next chunk starts, and the rendezvous cost grows with the number
    // of arrivals: charge per_chunk_overhead_s per extra thread per barrier
    // (k == 1 has no barrier and pays nothing, matching the serial path).
    // Without this term the model was optimistic exactly where the shard
    // engine operates — many small chunks at high thread counts.
    makespan = 0.0;
    for (double c : costs) makespan += c / threads;
    makespan += params.per_chunk_overhead_s *
                static_cast<double>(threads - 1) *
                static_cast<double>(costs.size());
    concurrent_ws = avg_chunk_bytes;
  } else {
    makespan = lpt_makespan(costs, threads);
    concurrent_ws = avg_chunk_bytes * std::min<double>(threads, chunks.size());
  }

  double contention = 1.0;
  double effective_bytes = total_bytes;
  if (threads > 1 && concurrent_ws > params.llc_bytes) {
    const double overflow = concurrent_ws / params.llc_bytes - 1.0;
    // Thrashing shows up both as lost time per chunk and as extra DRAM
    // traffic (lines evicted before reuse); both saturate. Caps calibrated
    // against Fig. 10's 16-thread efficiencies (see DESIGN.md §1).
    contention += std::min(0.5, params.contention_per_overflow * overflow);
    effective_bytes *=
        1.0 + std::min(0.25, 0.25 * params.contention_per_overflow * overflow);
  }

  // Bandwidth roofline: k streams saturate the socket near
  // socket_bw / per_thread_bw threads.
  const double bw = std::min(
      static_cast<double>(threads) * params.per_thread_bw_bytes_per_s,
      params.socket_bw_bytes_per_s);
  const double bw_floor_s = effective_bytes / bw;

  return std::max(makespan * contention, bw_floor_s) +
         params.launch_overhead_s +
         params.per_chunk_overhead_s * static_cast<double>(chunks.size());
}

}  // namespace featgraph::parallel
